package agilepaging

import (
	"reflect"
	"testing"

	"agilepaging/internal/cpu"
	"agilepaging/internal/repcache"
)

// lifecycleScenario builds a replay that exercises COW snapshots, large-page
// promotion, reclaim, and multi-process switching — the state a pooled
// machine must shed between runs.
func lifecycleScenario() *Scenario {
	base := uint64(0x4000_0000)
	s := NewScenario()
	s.Map(0, base, 2<<20, Page4K).Populate(0, base)
	s.TouchRange(0, base, 2<<20, Page4K)
	s.AddProcess(1).Map(1, base, 64<<12, Page4K).Switch(1)
	s.WriteRange(1, base, 64<<12, Page4K)
	s.Snapshot(1, base)
	s.Write(1, base+5<<12) // COW break
	s.Switch(0)
	s.Promote(0, base)
	s.TouchRange(0, base, 2<<20, Page4K)
	s.Reclaim(0, 32)
	s.Touch(0, base+9<<12)
	return s
}

// TestScenarioReplayPooledEquivalence pins the facade-level lifecycle
// contract: replaying a scenario on a pooled (reset) machine produces a
// result identical to the first, freshly constructed, run — for every
// technique.
func TestScenarioReplayPooledEquivalence(t *testing.T) {
	cpu.ResetMachinePool()
	// Disable the report cache: this test is about pooled-machine replays, so
	// every Run must really re-simulate rather than return a stored report.
	repcache.SetBudget(0)
	t.Cleanup(func() {
		cpu.ResetMachinePool()
		cpu.SetMachinePoolCapacity(cpu.DefaultMachinePoolCapacity)
		repcache.Reset()
		repcache.SetBudget(repcache.DefaultBudgetBytes)
	})
	for _, tech := range []Technique{Native, Nested, Shadow, Agile} {
		t.Run(tech.String(), func(t *testing.T) {
			cfg := ScenarioConfig{Technique: tech, PageSize: Page4K}
			first, err := lifecycleScenario().Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 3; i++ {
				again, err := lifecycleScenario().Run(cfg)
				if err != nil {
					t.Fatalf("replay %d: %v", i, err)
				}
				if !reflect.DeepEqual(first, again) {
					t.Fatalf("replay %d on pooled machine diverged\nfresh:  %+v\nreplay: %+v", i, first, again)
				}
			}
		})
	}
	hits, misses, _, _ := cpu.MachinePoolStats()
	if hits == 0 || misses == 0 {
		t.Errorf("scenario replays did not exercise the pool: hits=%d misses=%d", hits, misses)
	}
}
