package agilepaging

import (
	"fmt"

	"agilepaging/internal/cpu"
	"agilepaging/internal/repcache"
	"agilepaging/internal/workload"
)

// Scenario builds a custom guest execution script for cases the packaged
// workloads don't cover: it records OS-level operations (map regions, touch
// memory, snapshot copy-on-write, reclaim, switch processes) and replays
// them on a simulated machine under any technique.
//
// Operations are recorded against process IDs; the first CreateProcess'd
// PID runs first and Switch changes the scheduled process.
type Scenario struct {
	ops []workload.Op
}

// NewScenario starts an empty scenario with one process (PID 0) created and
// scheduled.
func NewScenario() *Scenario {
	s := &Scenario{}
	s.ops = append(s.ops,
		workload.Op{Kind: workload.OpCreateProcess, PID: 0},
		workload.Op{Kind: workload.OpCtxSwitch, PID: 0},
	)
	return s
}

// AddProcess creates another guest process.
func (s *Scenario) AddProcess(pid int) *Scenario {
	s.ops = append(s.ops, workload.Op{Kind: workload.OpCreateProcess, PID: pid})
	return s
}

// Switch schedules process pid on core 0.
func (s *Scenario) Switch(pid int) *Scenario { return s.SwitchOn(0, pid) }

// SwitchOn schedules process pid on the given core (SMP scenarios).
func (s *Scenario) SwitchOn(core, pid int) *Scenario {
	s.ops = append(s.ops, workload.Op{Kind: workload.OpCtxSwitch, PID: pid, Core: core})
	return s
}

// Map registers a demand-paged region of length bytes at base for pid.
func (s *Scenario) Map(pid int, base, length uint64, ps PageSize) *Scenario {
	s.ops = append(s.ops, workload.Op{Kind: workload.OpMmap, PID: pid, VA: base, Len: length, Size: ps.size()})
	return s
}

// Populate eagerly maps (and dirties) every page of the region at base.
func (s *Scenario) Populate(pid int, base uint64) *Scenario {
	s.ops = append(s.ops, workload.Op{Kind: workload.OpPopulate, PID: pid, VA: base})
	return s
}

// Unmap removes the region containing base.
func (s *Scenario) Unmap(pid int, base uint64) *Scenario {
	s.ops = append(s.ops, workload.Op{Kind: workload.OpMunmap, PID: pid, VA: base})
	return s
}

// Touch performs one load at va on core 0.
func (s *Scenario) Touch(pid int, va uint64) *Scenario { return s.TouchOn(0, pid, va) }

// TouchOn performs one load at va on the given core.
func (s *Scenario) TouchOn(core, pid int, va uint64) *Scenario {
	s.ops = append(s.ops, workload.Op{Kind: workload.OpAccess, PID: pid, VA: va, Core: core})
	return s
}

// Write performs one store at va on core 0.
func (s *Scenario) Write(pid int, va uint64) *Scenario { return s.WriteOn(0, pid, va) }

// WriteOn performs one store at va on the given core.
func (s *Scenario) WriteOn(core, pid int, va uint64) *Scenario {
	s.ops = append(s.ops, workload.Op{Kind: workload.OpAccess, PID: pid, VA: va, Write: true, Core: core})
	return s
}

// Fetch performs one instruction fetch at va on core 0 (I-TLB path).
func (s *Scenario) Fetch(pid int, va uint64) *Scenario {
	s.ops = append(s.ops, workload.Op{Kind: workload.OpAccess, PID: pid, VA: va, Fetch: true})
	return s
}

// TouchRange loads one address per page across [base, base+length).
func (s *Scenario) TouchRange(pid int, base, length uint64, ps PageSize) *Scenario {
	for off := uint64(0); off < length; off += ps.size().Bytes() {
		s.Touch(pid, base+off)
	}
	return s
}

// WriteRange stores one address per page across [base, base+length).
func (s *Scenario) WriteRange(pid int, base, length uint64, ps PageSize) *Scenario {
	for off := uint64(0); off < length; off += ps.size().Bytes() {
		s.Write(pid, base+off)
	}
	return s
}

// Snapshot write-protects the region containing base copy-on-write, as a
// fork or snapshot does (the paper's §II-B/§V COW scenario).
func (s *Scenario) Snapshot(pid int, base uint64) *Scenario {
	s.ops = append(s.ops, workload.Op{Kind: workload.OpMarkCOW, PID: pid, VA: base})
	return s
}

// Promote collapses the 2M-aligned range at va from 512 4K mappings into
// one 2M mapping, as transparent huge pages do (the paper's §V large-page
// support).
func (s *Scenario) Promote(pid int, va uint64) *Scenario {
	s.ops = append(s.ops, workload.Op{Kind: workload.OpCollapse, PID: pid, VA: va})
	return s
}

// Reclaim runs the guest clock reclaimer over n pages (the paper's §V
// memory-pressure scenario).
func (s *Scenario) Reclaim(pid, n int) *Scenario {
	s.ops = append(s.ops, workload.Op{Kind: workload.OpReclaim, PID: pid, N: n})
	return s
}

// Len reports the number of recorded operations.
func (s *Scenario) Len() int { return len(s.ops) }

// ScenarioConfig tunes scenario execution.
type ScenarioConfig struct {
	Technique Technique
	PageSize  PageSize
	// Cores is the number of simulated CPU cores (private TLBs, shared
	// VMM); 0 or 1 = uniprocessor.
	Cores int
	// HardwareAD and CtxSwitchCacheEntries enable the §IV optimizations.
	HardwareAD            bool
	CtxSwitchCacheEntries int
	// DisableMMUCaches removes PWC and nested TLB.
	DisableMMUCaches bool
}

// Run replays the scenario under the given configuration.
//
// Replays are memoized like experiment cells: a scenario is a pure function
// of its op list and configuration, so re-running an identical scenario
// (policy studies that replay one script under many knob settings revisit
// the same cells constantly) returns the stored report. The key covers
// every op verbatim — append one op and the cell misses.
func (s *Scenario) Run(cfg ScenarioConfig) (Result, error) {
	mc := cpu.DefaultConfig(cfg.Technique.mode(), cfg.PageSize.size())
	mc.Cores = cfg.Cores
	mc.HardwareAD = cfg.HardwareAD
	mc.CtxSwitchCache = cfg.CtxSwitchCacheEntries
	mc.EnablePWC = !cfg.DisableMMUCaches
	mc.EnableNTLB = !cfg.DisableMMUCaches
	rep, err := repcache.Do(repcache.KeyForOps(mc, "scenario", s.ops), func() (cpu.Report, error) {
		m, err := cpu.AcquireMachine(mc)
		if err != nil {
			return cpu.Report{}, err
		}
		if err := m.Run(workload.NewFromOps("scenario", s.ops)); err != nil {
			// A failed replay leaves the machine mid-scenario; let the GC
			// have it rather than pool suspect state.
			return cpu.Report{}, fmt.Errorf("agilepaging: scenario: %w", err)
		}
		rep := m.Report("scenario")
		cpu.ReleaseMachine(m)
		return rep, nil
	})
	if err != nil {
		return Result{}, err
	}
	return Result{
		Workload:         "scenario",
		Technique:        cfg.Technique,
		PageSize:         cfg.PageSize,
		WalkOverhead:     rep.WalkOverhead(),
		VMMOverhead:      rep.VMMOverhead(),
		TotalOverhead:    rep.TotalOverhead(),
		Accesses:         rep.Machine.Accesses,
		TLBMisses:        rep.Machine.TLBMisses,
		WalkRefs:         rep.Machine.WalkRefs,
		VMExits:          rep.VMM.TotalTraps(),
		GuestFaults:      rep.Machine.GuestPageFaults,
		AvgRefsPerMiss:   rep.AvgRefsPerMiss(),
		RefsP50:          rep.RefsP50,
		RefsP95:          rep.RefsP95,
		MPKI:             rep.MPKI(),
		SwitchesToNested: rep.Agile.SwitchesToNested,
		SwitchesToShadow: rep.Agile.SwitchesToShadow,
	}, nil
}
