// Package agilepaging is a simulator-based reproduction of "Agile Paging:
// Exceeding the Best of Nested and Shadow Paging" (Gandhi, Hill, Swift —
// ISCA 2016).
//
// It models the full memory-virtualization stack the paper studies — x86-64
// four-level page tables, a Sandy-Bridge-style TLB hierarchy, page walk
// caches, the nested/shadow/agile hardware page-walk state machines, a
// guest OS, and a VMM with shadow page table coherence and VM-exit
// accounting — and regenerates every table and figure of the paper's
// evaluation.
//
// Quick use:
//
//	res, err := agilepaging.Run(agilepaging.Config{
//	    Workload:  "dedup",
//	    Technique: agilepaging.Agile,
//	    PageSize:  agilepaging.Page4K,
//	})
//	fmt.Printf("walk %.1f%% vmm %.1f%%\n", 100*res.WalkOverhead, 100*res.VMMOverhead)
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured record.
package agilepaging

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"agilepaging/internal/core"
	"agilepaging/internal/experiments"
	"agilepaging/internal/pagetable"
	"agilepaging/internal/sweep"
	"agilepaging/internal/walker"
	"agilepaging/internal/workload"
)

// Technique selects the memory-virtualization technique (paper Table I).
type Technique int

// The four techniques the paper compares.
const (
	// Native is unvirtualized execution with a 1D page walk.
	Native Technique = iota
	// Nested is hardware 2D paging (up to 24 references per walk).
	Nested
	// Shadow is VMM-maintained shadow paging (native-speed walks, VM exits
	// on page table updates).
	Shadow
	// Agile is the paper's contribution: walks start in shadow mode and
	// may switch mid-walk to nested mode.
	Agile
)

// String names the technique.
func (t Technique) String() string { return t.mode().String() }

// MarshalJSON encodes the technique by name.
func (t Technique) MarshalJSON() ([]byte, error) { return json.Marshal(t.String()) }

// UnmarshalJSON decodes a technique name accepted by ParseTechnique, so
// Technique round-trips through JSON.
func (t *Technique) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	parsed, err := ParseTechnique(s)
	if err != nil {
		return err
	}
	*t = parsed
	return nil
}

// ParseTechnique parses a technique name as written by Technique.String,
// case insensitively, with the single-letter and "base" aliases. The CLI
// -technique flags and JSON decoding share this parser.
func ParseTechnique(s string) (Technique, error) {
	mode, err := walker.ParseMode(s)
	if err != nil {
		return 0, fmt.Errorf("agilepaging: %w", err)
	}
	switch mode {
	case walker.ModeNative:
		return Native, nil
	case walker.ModeNested:
		return Nested, nil
	case walker.ModeShadow:
		return Shadow, nil
	default:
		return Agile, nil
	}
}

func (t Technique) mode() walker.Mode {
	switch t {
	case Native:
		return walker.ModeNative
	case Nested:
		return walker.ModeNested
	case Shadow:
		return walker.ModeShadow
	case Agile:
		return walker.ModeAgile
	}
	panic(fmt.Sprintf("agilepaging: invalid technique %d", int(t)))
}

// Techniques lists all four techniques in the paper's order.
func Techniques() []Technique { return []Technique{Native, Nested, Shadow, Agile} }

// PageSize selects the page-size policy (used by the guest OS and, when
// virtualized, by the VMM's host table — the paper evaluates 4K and 2M).
type PageSize int

// Page sizes.
const (
	Page4K PageSize = iota
	Page2M
	// Page1G is supported by the table, walker, and TLB layers (paper §V
	// notes agile paging supports 1G pages); the packaged workloads only
	// sweep 4K and 2M as the paper's evaluation does, but scenarios can
	// map 1G regions.
	Page1G
)

// String names the page size.
func (p PageSize) String() string { return p.size().String() }

// MarshalJSON encodes the page size by name.
func (p PageSize) MarshalJSON() ([]byte, error) { return json.Marshal(p.String()) }

// UnmarshalJSON decodes a page-size name accepted by ParsePageSize, so
// PageSize round-trips through JSON.
func (p *PageSize) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	parsed, err := ParsePageSize(s)
	if err != nil {
		return err
	}
	*p = parsed
	return nil
}

// ParsePageSize parses a page-size name as written by PageSize.String,
// case insensitively, with "KB"/"MB"/"GB" suffix forms. The CLI -pagesize
// flags and JSON decoding share this parser.
func ParsePageSize(s string) (PageSize, error) {
	size, err := pagetable.ParseSize(s)
	if err != nil {
		return 0, fmt.Errorf("agilepaging: %w", err)
	}
	switch size {
	case pagetable.Size4K:
		return Page4K, nil
	case pagetable.Size2M:
		return Page2M, nil
	default:
		return Page1G, nil
	}
}

func (p PageSize) size() pagetable.Size {
	switch p {
	case Page4K:
		return pagetable.Size4K
	case Page2M:
		return pagetable.Size2M
	case Page1G:
		return pagetable.Size1G
	}
	panic(fmt.Sprintf("agilepaging: invalid page size %d", int(p)))
}

// RevertPolicy selects the agile Nested⇒Shadow policy (paper §III-C).
type RevertPolicy int

// Revert policies.
const (
	// RevertDirtyScan is the paper's effective dirty-bit-scanning policy
	// (the default).
	RevertDirtyScan RevertPolicy = iota
	// RevertReset is the simple periodic full reset.
	RevertReset
	// RevertNone never converts nested parts back.
	RevertNone
)

// String names the policy as the paper describes it.
func (p RevertPolicy) String() string { return p.core().String() }

// MarshalJSON encodes the policy by name.
func (p RevertPolicy) MarshalJSON() ([]byte, error) { return json.Marshal(p.String()) }

// UnmarshalJSON decodes a policy name accepted by ParseRevertPolicy, so
// RevertPolicy round-trips through JSON.
func (p *RevertPolicy) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	parsed, err := ParseRevertPolicy(s)
	if err != nil {
		return err
	}
	*p = parsed
	return nil
}

// ParseRevertPolicy parses a policy name as written by RevertPolicy.String
// ("none", "reset", "dirty-scan"), case insensitively.
func ParseRevertPolicy(s string) (RevertPolicy, error) {
	policy, err := core.ParseRevertPolicy(s)
	if err != nil {
		return 0, fmt.Errorf("agilepaging: %w", err)
	}
	// The facade orders the enum by preference (dirty-scan first, as the
	// paper's default); map explicitly rather than by value.
	switch policy {
	case core.RevertNone:
		return RevertNone, nil
	case core.RevertReset:
		return RevertReset, nil
	default:
		return RevertDirtyScan, nil
	}
}

func (p RevertPolicy) core() core.RevertPolicy {
	switch p {
	case RevertDirtyScan:
		return core.RevertDirtyScan
	case RevertReset:
		return core.RevertReset
	case RevertNone:
		return core.RevertNone
	}
	panic(fmt.Sprintf("agilepaging: invalid revert policy %d", int(p)))
}

// Config parameterizes one simulation run.
type Config struct {
	// Workload names one of the paper's eight evaluation workloads; see
	// Workloads().
	Workload string
	// Technique and PageSize select the configuration (a Figure 5 bar).
	Technique Technique
	PageSize  PageSize

	// Accesses is the number of measured steady-phase memory accesses.
	//
	// Zero-value semantics: 0 selects the default of 120000 — there is no
	// way to request a zero-access run. Negative values are invalid;
	// RunAll rejects them up front and Run fails inside the simulator.
	Accesses int
	// Warmup overrides the pre-measurement warmup length. It is
	// sign-encoded: 0 selects the default of Accesses/2, a positive value
	// is used as given, and a NEGATIVE value (any) disables warmup
	// entirely — there is no way to request a literal zero-length warmup
	// except by passing a negative number.
	Warmup int
	// Seed makes the run reproducible.
	//
	// Zero-value semantics: Seed 0 silently becomes the default seed 42 —
	// a literal zero seed cannot be requested. Pass any other value for a
	// distinct deterministic run.
	Seed int64

	// DisableMMUCaches removes the page walk caches and nested TLB,
	// exposing architectural walk costs (paper Table VI's setting).
	DisableMMUCaches bool
	// HardwareAD enables the paper's §IV trap-free accessed/dirty-bit
	// propagation.
	HardwareAD bool
	// CtxSwitchCacheEntries sizes the §IV context-switch pointer cache
	// (0 = disabled).
	CtxSwitchCacheEntries int
	// Revert selects the agile Nested⇒Shadow policy.
	Revert RevertPolicy
	// DisableStartNested turns off the short-lived/small-process policy
	// (§III-C) under which agile processes begin fully nested.
	DisableStartNested bool
	// SHSPBaseline replaces the agile manager with the prior-work SHSP
	// controller (paper §VII.C): whole-process temporal switching between
	// nested and shadow paging. Requires Technique == Agile (it uses the
	// same mechanisms).
	SHSPBaseline bool
}

// Result is the measurement record of one run.
type Result struct {
	Workload  string
	Technique Technique
	PageSize  PageSize

	// Execution-time overhead relative to ideal (translation-free)
	// execution, decomposed as in the paper's Figure 5.
	WalkOverhead  float64
	VMMOverhead   float64
	TotalOverhead float64

	// Raw counters.
	Accesses       uint64
	TLBMisses      uint64
	WalkRefs       uint64
	VMExits        uint64
	GuestFaults    uint64
	AvgRefsPerMiss float64
	RefsP50        int
	RefsP95        int
	MPKI           float64

	// Agile decision counters (zero unless Technique == Agile).
	SwitchesToNested uint64
	SwitchesToShadow uint64
}

// Workloads lists the available workload names (paper Table V).
func Workloads() []string { return workload.Names() }

// options translates the facade config into the experiments layer's run
// options. Run and RunAllContext share this so a Config always maps to the
// same simulation cell however it is submitted.
func (cfg Config) options() experiments.Options {
	o := experiments.DefaultOptions(cfg.Technique.mode(), cfg.PageSize.size())
	if cfg.Accesses > 0 {
		o.Accesses = cfg.Accesses
	}
	if cfg.Warmup != 0 {
		o.Warmup = cfg.Warmup
	}
	if cfg.Seed != 0 {
		o.Seed = cfg.Seed
	}
	o.DisablePWC = cfg.DisableMMUCaches
	o.DisableNTLB = cfg.DisableMMUCaches
	o.HardwareAD = cfg.HardwareAD
	o.CtxSwitchCache = cfg.CtxSwitchCacheEntries
	o.RevertPolicy = cfg.Revert.core()
	o.AgileStartNested = !cfg.DisableStartNested
	o.UseSHSP = cfg.SHSPBaseline
	return o
}

// Run simulates one workload under one configuration.
func Run(cfg Config) (Result, error) {
	if cfg.Workload == "" {
		return Result{}, fmt.Errorf("agilepaging: no workload named; pick one of %v", Workloads())
	}
	rep, err := experiments.RunProfile(cfg.Workload, cfg.options())
	if err != nil {
		return Result{}, err
	}
	return Result{
		Workload:         cfg.Workload,
		Technique:        cfg.Technique,
		PageSize:         cfg.PageSize,
		WalkOverhead:     rep.WalkOverhead(),
		VMMOverhead:      rep.VMMOverhead(),
		TotalOverhead:    rep.TotalOverhead(),
		Accesses:         rep.Machine.Accesses,
		TLBMisses:        rep.Machine.TLBMisses,
		WalkRefs:         rep.Machine.WalkRefs,
		VMExits:          rep.VMM.TotalTraps(),
		GuestFaults:      rep.Machine.GuestPageFaults,
		AvgRefsPerMiss:   rep.AvgRefsPerMiss(),
		RefsP50:          rep.RefsP50,
		RefsP95:          rep.RefsP95,
		MPKI:             rep.MPKI(),
		SwitchesToNested: rep.Agile.SwitchesToNested + rep.SHSP.ToNested,
		SwitchesToShadow: rep.Agile.SwitchesToShadow + rep.SHSP.ToShadow,
	}, nil
}

// validateConfigs rejects obviously bad specs before any simulation starts,
// reporting every offending job index in a single error.
func validateConfigs(cfgs []Config) error {
	var bad []string
	for i, cfg := range cfgs {
		switch {
		case cfg.Workload == "":
			bad = append(bad, fmt.Sprintf("job %d: empty workload (pick one of %v)", i, Workloads()))
		case cfg.Accesses < 0:
			bad = append(bad, fmt.Sprintf("job %d (%s): negative accesses %d", i, cfg.Workload, cfg.Accesses))
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("agilepaging: invalid configs: %s", strings.Join(bad, "; "))
	}
	return nil
}

// RunAllOptions controls how a batch executes: worker count, error
// policy, and retry. The zero value matches historical RunAll behavior
// (one worker per CPU, fail fast, no retry).
type RunAllOptions struct {
	// Workers bounds the worker pool; <= 0 selects one worker per CPU.
	Workers int
	// CollectAll runs every config even after failures and returns a
	// joined error attributing each failed cell; the default fails fast.
	CollectAll bool
	// Retries re-executes a failed config up to this many extra times.
	Retries int
	// RetryBackoff is the wait before the first retry, doubling per
	// subsequent retry (0 = retry immediately).
	RetryBackoff time.Duration
}

// sweepConfig translates the batch options into the sweep layer's config.
func (o RunAllOptions) sweepConfig() sweep.Config {
	cfg := sweep.Config{Workers: o.Workers}
	if o.CollectAll {
		cfg.ErrorPolicy = sweep.CollectAll
	}
	if o.Retries > 0 {
		cfg.Retry = sweep.Retry{Attempts: o.Retries, Backoff: o.RetryBackoff}
	}
	return cfg
}

// RunAll simulates every config concurrently (one worker per CPU) and
// returns the results in the order the configs were given — identical to
// running each through Run serially. Invalid specs (empty Workload,
// negative Accesses) are rejected up front, before any simulation runs,
// with one error naming every bad job index.
func RunAll(cfgs []Config) ([]Result, error) {
	return RunAllContext(context.Background(), 0, cfgs)
}

// RunAllContext is RunAll with explicit cancellation and worker-count
// control. workers <= 0 selects one worker per CPU. On failure the first
// observed error is returned, wrapped with the failing job's index and
// key; use RunAllWith for fault-tolerant batches.
func RunAllContext(ctx context.Context, workers int, cfgs []Config) ([]Result, error) {
	results, _, err := RunAllWith(ctx, RunAllOptions{Workers: workers}, cfgs)
	return results, err
}

// RunAllWith is RunAllContext with an explicit execution policy. The
// results slice always has len(cfgs) slots in declaration order; completed
// reports which slots hold real measurements (the rest are zero Results —
// failed or, after a cancellation or fail-fast stop, never ran). Under
// CollectAll every config executes despite failures and the returned error
// joins one attributed entry per failed cell, so healthy cells of a long
// campaign survive a bad one.
func RunAllWith(ctx context.Context, opts RunAllOptions, cfgs []Config) (results []Result, completed []bool, err error) {
	if err := validateConfigs(cfgs); err != nil {
		return nil, nil, err
	}
	jobs := make([]sweep.Job[Config], len(cfgs))
	for i, cfg := range cfgs {
		o := cfg.options()
		// The cell key covers every result-determining input — two configs
		// differing only in Accesses or Seed (which the readable prefix
		// cannot show) get distinct keys, and two spellings of the same cell
		// (say Seed 0 versus the default 42) share one. The same key is the
		// DedupKey, so duplicate configs in one list simulate once.
		dedup, cacheable := experiments.CellKey(cfg.Workload, o)
		key := fmt.Sprintf("%s/%s/%s", cfg.Workload, cfg.PageSize, cfg.Technique)
		if cacheable {
			key = fmt.Sprintf("%s#%.8s", key, dedup)
		}
		jobs[i] = sweep.Job[Config]{
			Key:      key,
			Workload: cfg.Workload,
			Options:  cfg,
			DedupKey: dedup,
		}
	}
	out := sweep.Execute(ctx, opts.sweepConfig(), jobs,
		func(_ context.Context, j sweep.Job[Config]) (Result, error) {
			return Run(j.Options)
		})
	return out.Results, out.Completed, out.Err
}

// Compare runs one workload under every technique at the given page size
// (concurrently, one worker per CPU) and returns the results in
// Techniques() order.
func Compare(workloadName string, ps PageSize, accesses int, seed int64) ([]Result, error) {
	return CompareContext(context.Background(), 0, workloadName, ps, accesses, seed)
}

// CompareContext is Compare with explicit cancellation and worker-count
// control (workers <= 0 selects one worker per CPU).
func CompareContext(ctx context.Context, workers int, workloadName string, ps PageSize, accesses int, seed int64) ([]Result, error) {
	return RunAllContext(ctx, workers, compareConfigs(workloadName, ps, accesses, seed))
}

// CompareWith is Compare with an explicit execution policy; see RunAllWith
// for the completed-mask contract.
func CompareWith(ctx context.Context, opts RunAllOptions, workloadName string, ps PageSize, accesses int, seed int64) ([]Result, []bool, error) {
	return RunAllWith(ctx, opts, compareConfigs(workloadName, ps, accesses, seed))
}

// compareConfigs builds the per-technique configs Compare runs.
func compareConfigs(workloadName string, ps PageSize, accesses int, seed int64) []Config {
	cfgs := make([]Config, 0, 4)
	for _, tech := range Techniques() {
		cfgs = append(cfgs, Config{
			Workload: workloadName, Technique: tech, PageSize: ps,
			Accesses: accesses, Seed: seed,
		})
	}
	return cfgs
}
