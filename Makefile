GO ?= go

.PHONY: all check vet build test race faults diffcheck lint bench bench-micro bench-compare bench-parallel clean

all: check

# check runs everything CI runs.
check: vet build test race faults lint

vet:
	$(GO) vet ./...

# lint mirrors CI's lint job. staticcheck and govulncheck are not vendored
# and must not be auto-installed here (the build environment is offline);
# when a tool is absent the target says so and moves on rather than failing.
lint:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)"; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race exercises the concurrency-sensitive packages under the race
# detector: the sweep runner itself, the refactored experiment drivers,
# the simulator core they drive, and the memoized report cache.
race:
	$(GO) test -race ./internal/sweep ./internal/experiments ./internal/cpu ./internal/diffcheck ./internal/repcache

# faults runs the fault-injection suite — panic recovery, retry/backoff,
# CollectAll error policy, cancellation attribution, and disk-cache
# integrity across interrupts — under the race detector.
faults:
	$(GO) test -race -run 'Fault|Panic|Retr|CollectAll|Cancel|Interrupt|Injector' \
		./internal/sweep ./internal/experiments ./cmd/paperbench .

# diffcheck runs the four-technique differential-equivalence harness
# (identical op scripts with THP collapse, COW, and reclaim must produce
# page-for-page identical end state under native/nested/shadow/agile)
# under the race detector.
diffcheck:
	$(GO) test -race -v ./internal/diffcheck

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# bench-micro runs the per-layer hot-path microbenchmarks of PR 2 (entry
# reads, hardware walks, TLB probes, end-to-end accesses); all of them
# must report 0 allocs/op.
bench-micro:
	$(GO) test -bench . -run '^$$' -count 5 \
		./internal/memsim ./internal/walker ./internal/tlb ./internal/cpu

# bench-compare diffs the current tree's microbenchmarks against the
# baseline recorded in BENCH_PR9.json (BENCH_PR7.json, BENCH_PR6.json,
# BENCH_PR4.json and BENCH_PR2.json stay in the tree as history; replay
# one with `go run ./cmd/benchbaseline -file BENCH_PR4.json`).
# Uses benchstat when installed; otherwise prints both result sets for
# eyeball comparison.
bench-compare:
	@$(GO) run ./cmd/benchbaseline > /tmp/bench_baseline.txt
	@$(GO) test -bench . -run '^$$' -count 5 \
		./internal/memsim ./internal/walker ./internal/tlb ./internal/cpu \
		> /tmp/bench_current.txt
	@if command -v benchstat >/dev/null 2>&1; then \
		benchstat /tmp/bench_baseline.txt /tmp/bench_current.txt; \
	else \
		echo "benchstat not installed; baseline (BENCH_PR9.json) vs current:"; \
		echo "--- baseline ---"; grep -E '^Benchmark' /tmp/bench_baseline.txt; \
		echo "--- current ---"; grep -E '^Benchmark' /tmp/bench_current.txt; \
	fi

# bench-parallel compares the serial and parallel Figure 5 sweeps; on a
# multi-core machine the parallel run should be >= 2x faster.
bench-parallel:
	$(GO) test -bench 'BenchmarkFigure5(Serial|Parallel)$$' -benchtime 1x -run '^$$' .

clean:
	$(GO) clean ./...
