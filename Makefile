GO ?= go

.PHONY: all check vet build test race bench bench-parallel clean

all: check

# check runs everything CI runs.
check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race exercises the concurrency-sensitive packages under the race
# detector: the sweep runner itself, the refactored experiment drivers,
# and the simulator core they drive.
race:
	$(GO) test -race ./internal/sweep ./internal/experiments ./internal/cpu

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# bench-parallel compares the serial and parallel Figure 5 sweeps; on a
# multi-core machine the parallel run should be >= 2x faster.
bench-parallel:
	$(GO) test -bench 'BenchmarkFigure5(Serial|Parallel)$$' -benchtime 1x -run '^$$' .

clean:
	$(GO) clean ./...
