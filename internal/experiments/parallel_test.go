package experiments

import (
	"context"
	"reflect"
	"testing"

	"agilepaging/internal/repcache"
	"agilepaging/internal/sweep"
)

// The parallel sweeps must be bit-identical to serial execution: every
// simulation owns all of its state, so worker count can only change wall
// time, never results. These tests run a reduced sweep twice — Workers=1
// (serial) and Workers=8 (heavily interleaved even on one P, since jobs
// yield at channel/mutex boundaries) — and require deep equality plus
// byte-identical formatted output.
//
// The report cache is reset between the two arms: without that, the second
// sweep would replay the first's stored reports and the comparison would be
// trivially true instead of exercising parallel execution.

func TestFigure5SerialParallelEquivalence(t *testing.T) {
	workloads := []string{"dedup", "mcf"}
	const accesses, seed = 4000, 42

	serial, err := Figure5Sweep(context.Background(), sweep.Config{Workers: 1}, workloads, accesses, seed)
	if err != nil {
		t.Fatal(err)
	}
	repcache.Reset()
	parallel, err := Figure5Sweep(context.Background(), sweep.Config{Workers: 8}, workloads, accesses, seed)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("Figure5 results differ between serial and parallel runs")
	}
	if a, b := FormatFigure5(serial), FormatFigure5(parallel); a != b {
		t.Fatalf("formatted Figure 5 output differs:\n--- serial ---\n%s\n--- parallel ---\n%s", a, b)
	}
}

func TestAblationsSerialParallelEquivalence(t *testing.T) {
	const accesses, seed = 2000, 42

	serial, err := AblationsSweep(context.Background(), sweep.Config{Workers: 1}, accesses, seed)
	if err != nil {
		t.Fatal(err)
	}
	repcache.Reset()
	parallel, err := AblationsSweep(context.Background(), sweep.Config{Workers: 8}, accesses, seed)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("ablation results differ between serial and parallel runs")
	}
	if a, b := FormatAblations(serial), FormatAblations(parallel); a != b {
		t.Fatalf("formatted ablation output differs:\n--- serial ---\n%s\n--- parallel ---\n%s", a, b)
	}
}

func TestSensitivitySerialParallelEquivalence(t *testing.T) {
	serial, err := SensitivitySweep(context.Background(), sweep.Config{Workers: 1}, 1500, 42)
	if err != nil {
		t.Fatal(err)
	}
	repcache.Reset()
	parallel, err := SensitivitySweep(context.Background(), sweep.Config{Workers: 8}, 1500, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("sensitivity results differ between serial and parallel runs")
	}
}

func TestTableISerialParallelEquivalence(t *testing.T) {
	serial, err := TableISweep(context.Background(), sweep.Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	repcache.Reset()
	parallel, err := TableISweep(context.Background(), sweep.Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("Table I rows differ between serial and parallel runs")
	}
}

func TestSHSPSerialParallelEquivalence(t *testing.T) {
	workloads := []string{"memcached"}
	serial, err := SHSPComparisonSweep(context.Background(), sweep.Config{Workers: 1}, workloads, 3000, 42)
	if err != nil {
		t.Fatal(err)
	}
	repcache.Reset()
	parallel, err := SHSPComparisonSweep(context.Background(), sweep.Config{Workers: 4}, workloads, 3000, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("SHSP rows differ between serial and parallel runs")
	}
}
