package experiments

import (
	"context"

	"agilepaging/internal/sweep"
	"agilepaging/internal/trace"
	"agilepaging/internal/vmm"
	"agilepaging/internal/walker"
)

// TableIRow is one column of paper Table I, measured.
type TableIRow struct {
	Technique walker.Mode
	// TLBHit is the translation a TLB hit provides (qualitative; all four
	// techniques hit at full speed).
	TLBHit string
	// MaxRefs and AvgRefs are measured memory accesses per TLB miss on the
	// thrash microbenchmark (PWC disabled to expose the architectural walk).
	MaxRefs int
	AvgRefs float64
	// UpdateCycles is the measured VMM cycles per guest page-table update
	// on the churn microbenchmark (0 = fast direct updates).
	UpdateCycles float64
	UpdateMode   string
	// Hardware is the page-walk hardware the technique requires.
	Hardware string
}

// TableI reproduces paper Table I: the qualitative trade-off between the
// techniques, with the quantitative cells measured on microbenchmarks.
func TableI() ([]TableIRow, error) {
	return TableISweep(context.Background(), sweep.Config{})
}

// TableISweep is TableI on an explicit sweep configuration: one job per
// technique, each running both microbenchmarks. On error the returned rows
// hold whatever techniques completed.
func TableISweep(ctx context.Context, cfg sweep.Config) ([]TableIRow, error) {
	jobs := make([]sweep.Job[walker.Mode], 0, 4)
	for _, tech := range Techniques() {
		jobs = append(jobs, sweep.Job[walker.Mode]{Key: "table1/" + tech.String(), Options: tech})
	}
	out := sweep.Execute(ctx, cfg, jobs, func(_ context.Context, j sweep.Job[walker.Mode]) (TableIRow, error) {
		return tableIRow(j.Options)
	})
	rows, _ := partialOutcome(jobs, out)
	return rows, out.Err
}

// tableIRow measures one technique's Table I cells.
func tableIRow(tech walker.Mode) (TableIRow, error) {
	row := TableIRow{Technique: tech}
	switch tech {
	case walker.ModeNative:
		row.TLBHit, row.Hardware = "fast (VA=>PA)", "1D page walk"
	case walker.ModeNested:
		row.TLBHit, row.Hardware = "fast (gVA=>hPA)", "2D+1D page walk"
	case walker.ModeShadow:
		row.TLBHit, row.Hardware = "fast (gVA=>hPA)", "1D page walk"
	case walker.ModeAgile:
		row.TLBHit, row.Hardware = "fast (gVA=>hPA)", "2D+1D walk with switching"
	}

	// Walk cost: thrash a region far beyond TLB reach with periodic
	// page-table churn in a side region, no MMU caches. Under agile the
	// churned subtree runs nested, producing the 4–5 average of Table I.
	var misses trace.MissLog
	o := DefaultOptions(tech, 0)
	o.DisablePWC, o.DisableNTLB = true, true
	o.AgileStartNested = false
	o.MissLog = &misses
	if _, _, err := RunOps("table1-walk", mixedOps(1024, 30_000, 1500, 16), o); err != nil {
		return TableIRow{}, err
	}
	s := misses.Summary()
	row.AvgRefs = s.AvgRefs()
	for _, rec := range misses.Records {
		if int(rec.Refs) > row.MaxRefs {
			row.MaxRefs = int(rec.Refs)
		}
	}

	// Update cost: page-table churn; cycles of update-servicing traps
	// per guest page-table update.
	var traps trace.TrapLog
	o2 := DefaultOptions(tech, 0)
	o2.AgileStartNested = false
	o2.TrapLog = &traps
	rep, _, err := RunOps("table1-update", ptUpdateOps(64, 32), o2)
	if err != nil {
		return TableIRow{}, err
	}
	updates := rep.OS.MapsInstalled + rep.OS.Unmapped
	costs := vmm.DefaultCostModel()
	mediated := traps.Counts[vmm.TrapPTWrite]*costs.Cycles[vmm.TrapPTWrite] +
		traps.Counts[vmm.TrapTLBFlush]*costs.Cycles[vmm.TrapTLBFlush]
	if updates > 0 {
		row.UpdateCycles = float64(mediated) / float64(updates)
	}
	switch {
	case row.UpdateCycles == 0:
		row.UpdateMode = "fast direct"
	case row.UpdateCycles < 500:
		row.UpdateMode = "fast direct (after adaptation)"
	default:
		row.UpdateMode = "slow, mediated by VMM"
	}
	return row, nil
}
