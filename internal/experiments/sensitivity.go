package experiments

import (
	"context"
	"fmt"
	"strings"
	"text/tabwriter"

	"agilepaging/internal/cpu"
	"agilepaging/internal/pagetable"
	"agilepaging/internal/sweep"
	"agilepaging/internal/vmm"
	"agilepaging/internal/walker"
	"agilepaging/internal/workload"
)

// SensitivityRow reports one point of the cost-model sensitivity sweep.
type SensitivityRow struct {
	// TrapScale multiplies every VM-exit cost; RefScale multiplies the
	// page-walk memory-reference costs.
	TrapScale float64
	RefScale  float64
	// Total overheads for the probe workload under each technique.
	Nested, Shadow, Agile float64
	// AgileWins reports whether agile still beats the best constituent.
	AgileWins bool
}

// Sensitivity sweeps the two calibrated cost parameters — VM-exit cycles
// and walk-reference cycles — across an order of magnitude and checks
// whether the paper's conclusion (agile ≤ best of nested and shadow) is an
// artifact of the calibration or robust to it. The probe workload is
// dedup, where both constituents are expensive in different ways.
func Sensitivity(accesses int, seed int64) ([]SensitivityRow, error) {
	return SensitivitySweep(context.Background(), sweep.Config{}, accesses, seed)
}

// sensitivitySpec is one (cost scaling, technique) point of the sweep. The
// perturbed machine configuration is built at declaration time so the job
// can carry its canonical cell key (DedupKey) and the run executes exactly
// the configuration that was keyed.
type sensitivitySpec struct {
	trapScale, refScale float64
	opts                Options
	cfg                 cpu.Config
}

// sensitivityTechs are the techniques each calibration cell measures.
var sensitivityTechs = [...]walker.Mode{walker.ModeNested, walker.ModeShadow, walker.ModeAgile}

// SensitivitySweep is Sensitivity on an explicit sweep configuration. All
// 27 (trap scale × ref scale × technique) simulations run as one sweep and
// are folded back into the 9 calibration rows in declaration order.
func SensitivitySweep(ctx context.Context, cfg sweep.Config, accesses int, seed int64) ([]SensitivityRow, error) {
	prof, _ := workload.ProfileByName("dedup")
	var jobs []sweep.Job[sensitivitySpec]
	for _, trapScale := range []float64{0.3, 1, 3} {
		for _, refScale := range []float64{0.5, 1, 2} {
			for _, tech := range sensitivityTechs {
				o := DefaultOptions(tech, pagetable.Size4K)
				o.Accesses = accesses
				o.Seed = seed
				mcfg := machineConfig(o)
				costs := vmm.DefaultCostModel()
				for k := range costs.Cycles {
					costs.Cycles[k] = uint64(float64(costs.Cycles[k]) * trapScale)
				}
				mcfg.TrapCosts = costs
				mcfg.MemRefCycles = uint64(float64(mcfg.MemRefCycles) * refScale)
				mcfg.HostRefCycles = uint64(float64(mcfg.HostRefCycles) * refScale)
				if mcfg.HostRefCycles < 1 {
					mcfg.HostRefCycles = 1
				}
				jobs = append(jobs, sweep.Job[sensitivitySpec]{
					Key:      fmt.Sprintf("dedup/trap×%.1f/ref×%.1f/%s", trapScale, refScale, tech),
					Workload: prof.Name,
					Options:  sensitivitySpec{trapScale: trapScale, refScale: refScale, opts: o, cfg: mcfg},
					// The ×1.0 row's cells are exactly the unperturbed
					// baseline cells, so keying on the perturbed config
					// lets them share reports with Figure 5's.
					DedupKey: cellKey(prof, mcfg, o),
				})
			}
		}
	}
	out := sweep.Execute(ctx, cfg, jobs, func(_ context.Context, j sweep.Job[sensitivitySpec]) (float64, error) {
		rep, err := runScaled(prof, j.Options.cfg, j.Options.opts)
		if err != nil {
			return 0, err
		}
		return rep.TotalOverhead(), nil
	})
	// A calibration row needs all three of its technique cells; rows with a
	// failed or never-ran cell are dropped rather than reported half-zero.
	var rows []SensitivityRow
	for i := 0; i < len(jobs); i += len(sensitivityTechs) {
		if !out.Completed[i] || !out.Completed[i+1] || !out.Completed[i+2] {
			continue
		}
		row := SensitivityRow{
			TrapScale: jobs[i].Options.trapScale,
			RefScale:  jobs[i].Options.refScale,
			Nested:    out.Results[i],
			Shadow:    out.Results[i+1],
			Agile:     out.Results[i+2],
		}
		best := row.Nested
		if row.Shadow < best {
			best = row.Shadow
		}
		row.AgileWins = row.Agile <= best*1.02+0.005 // ties allowed
		rows = append(rows, row)
	}
	return rows, out.Err
}

// FormatSensitivity renders the sweep.
func FormatSensitivity(rows []SensitivityRow) string {
	var b strings.Builder
	b.WriteString("Sensitivity: does agile still win if the cost calibration is wrong?\n")
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "trap cost x\twalk ref cost x\tnested%\tshadow%\tagile%\tagile wins")
	for _, r := range rows {
		fmt.Fprintf(w, "%.1f\t%.1f\t%.1f\t%.1f\t%.1f\t%v\n",
			r.TrapScale, r.RefScale, 100*r.Nested, 100*r.Shadow, 100*r.Agile, r.AgileWins)
	}
	w.Flush()
	return b.String()
}
