package experiments

import (
	"bytes"
	"reflect"
	"testing"

	"agilepaging/internal/pagetable"
	"agilepaging/internal/telemetry"
	"agilepaging/internal/trace"
	"agilepaging/internal/walker"
)

// TestTelemetryPurity pins the observability contract: attaching the epoch
// recorder and the walk-event ring must leave every simulated counter
// bit-identical. A telemetry layer that perturbs results would silently
// invalidate every golden number.
func TestTelemetryPurity(t *testing.T) {
	for _, tech := range Techniques() {
		t.Run(tech.String(), func(t *testing.T) {
			run := func(o Options) (interface{}, *telemetry.Recorder) {
				rep, err := RunProfile("dedup", o)
				if err != nil {
					t.Fatal(err)
				}
				return rep, o.Metrics
			}
			base := DefaultOptions(tech, pagetable.Size4K)
			base.Accesses = 30_000

			plain, _ := run(base)

			instrumented := base
			instrumented.Metrics = telemetry.NewRecorder(2_000)
			instrumented.WalkEvents = telemetry.NewEventRing(256)
			withTel, rec := run(instrumented)

			if !reflect.DeepEqual(plain, withTel) {
				t.Errorf("telemetry perturbed the %s report:\nplain: %+v\nwith:  %+v", tech, plain, withTel)
			}
			if len(rec.Series().Epochs) == 0 {
				t.Error("recorder captured no epochs")
			}
		})
	}
}

// TestTelemetryEpochAccounting: the epoch series must tile the measured
// window — interval access counts sum to the run's accesses, boundaries
// chain, and clocks are monotone.
func TestTelemetryEpochAccounting(t *testing.T) {
	rec := telemetry.NewRecorder(1_000)
	o := DefaultOptions(walker.ModeAgile, pagetable.Size4K)
	o.Accesses = 10_500
	o.Metrics = rec
	rep, err := RunProfile("dedup", o)
	if err != nil {
		t.Fatal(err)
	}
	s := rec.Series()
	// 10 full epochs plus the flushed partial tail.
	if len(s.Epochs) != 11 {
		t.Fatalf("epochs = %d, want 11", len(s.Epochs))
	}
	var accesses uint64
	for i, e := range s.Epochs {
		accesses += e.Delta.Accesses
		if i > 0 {
			prev := s.Epochs[i-1]
			if e.StartAccesses != prev.EndAccesses || e.StartClock != prev.EndClock {
				t.Errorf("epoch %d does not chain: %+v after %+v", i, e, prev)
			}
		}
		if e.EndClock < e.StartClock {
			t.Errorf("epoch %d clock not monotone", i)
		}
		if i < 10 && e.Delta.Accesses != 1_000 {
			t.Errorf("epoch %d accesses = %d, want 1000", i, e.Delta.Accesses)
		}
	}
	// Machine accesses exceed the op count (instruction fetches translate
	// too); the series must tile exactly whatever the machine measured.
	if accesses != rep.Machine.Accesses {
		t.Errorf("epoch accesses sum to %d, machine measured %d", accesses, rep.Machine.Accesses)
	}
}

// TestMissLogWriteBitsSurviveRoundTrip is the regression test for the
// dropped write bit: a write-heavy run must produce write-flagged records,
// and the flags must survive a save/load cycle.
func TestMissLogWriteBitsSurviveRoundTrip(t *testing.T) {
	var miss trace.MissLog
	o := DefaultOptions(walker.ModeShadow, pagetable.Size4K)
	o.AgileStartNested = false
	o.MissLog = &miss
	// readThenWriteOps stores to every page after reading it, so write
	// misses (and shadow write-protect retries) are guaranteed.
	if _, _, err := RunOps("write-heavy", readThenWriteOps(64), o); err != nil {
		t.Fatal(err)
	}
	s := miss.Summary()
	if s.Writes == 0 {
		t.Fatal("write-heavy run produced no write-flagged records (write bit dropped again?)")
	}
	var buf bytes.Buffer
	if err := miss.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := trace.LoadMissLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	ls := loaded.Summary()
	if ls.Writes != s.Writes || ls.Retries != s.Retries || ls.Total != s.Total {
		t.Errorf("round trip changed summary: %+v -> %+v", s, ls)
	}
}

// TestAdaptationCurveConverges: the tentpole's headline claim. Under the
// churn microbenchmark the per-epoch page-table update cost must start in
// the VMM-mediated range (the shadowed subtree traps every update) and
// converge toward direct-write cost once the write threshold flips the
// churned subtree to nested mode — Table I's agile cell, resolved in time.
func TestAdaptationCurveConverges(t *testing.T) {
	ring := telemetry.NewEventRing(512)
	s, err := AdaptationCurve(2_000, 10, ring)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Epochs) < 4 {
		t.Fatalf("epochs = %d", len(s.Epochs))
	}
	// Epoch 0 is diluted by the setup-phase populate (tables not yet
	// shadowed write direct); epoch 1 is pure churn and fully mediated.
	early := s.Epochs[1].UpdateCost()
	last := s.Epochs[len(s.Epochs)-1].UpdateCost()
	if early <= last {
		t.Errorf("update cost did not fall: epoch 1 = %.0f, final = %.0f", early, last)
	}
	if early < 500 {
		t.Errorf("pre-adaptation update cost = %.0f cycles/update, want VMM-mediated (>= 500)", early)
	}
	// After adaptation the churned subtree is nested: updates go direct and
	// the residual mediated cost per update is far below a single trap.
	if last >= 500 {
		t.Errorf("final update cost = %.0f cycles/update, want < 500 after adaptation", last)
	}
	var flips uint64
	for _, e := range s.Epochs {
		flips += e.Delta.SwitchesToNested
	}
	if flips == 0 {
		t.Error("series shows no Shadow=>Nested switch decisions")
	}
	if ring.Total() == 0 {
		t.Error("event ring captured no walks")
	}
	if FormatAdaptation(s) == "" {
		t.Error("empty adaptation rendering")
	}
}
