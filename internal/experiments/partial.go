package experiments

import (
	"errors"
	"strings"

	"agilepaging/internal/sweep"
)

// FailedCell identifies one sweep cell that produced no result, with a
// one-line cause. Drivers running under sweep.CollectAll return the rows
// that did complete alongside these, so a long campaign with a few bad
// cells still yields a (partial) table.
type FailedCell struct {
	Key string
	Err string
}

// partialOutcome splits a sweep outcome into the completed rows (in
// declaration order) and the attributed failures. Cells that never ran —
// cancellation casualties, or jobs unclaimed after a FailFast cancel —
// appear in neither list: they did not fail, they were interrupted.
func partialOutcome[O, R any](jobs []sweep.Job[O], out sweep.Outcome[R]) ([]R, []FailedCell) {
	done := make([]R, 0, len(jobs))
	var failed []FailedCell
	for i := range jobs {
		switch {
		case out.Completed[i]:
			done = append(done, out.Results[i])
		case out.JobErrors[i] != nil:
			failed = append(failed, FailedCell{Key: jobs[i].Key, Err: cellCause(out.JobErrors[i])})
		}
	}
	return done, failed
}

// cellCause reduces a job error to a single line. The sweep wraps failures
// in a JobError that repeats the key; the cell already carries its key, so
// report the bare cause.
func cellCause(err error) string {
	var je *sweep.JobError
	if errors.As(err, &je) {
		err = je.Err
	}
	s := err.Error()
	if nl := strings.IndexByte(s, '\n'); nl >= 0 {
		s = s[:nl]
	}
	return s
}
