package experiments

import (
	"agilepaging/internal/pagetable"
	"agilepaging/internal/workload"
)

// Microbenchmark op streams used by Table I and the ablations.
//
// Every builder here is a pure function of its arguments: it allocates a
// fresh []workload.Op per call and touches no shared state, so sweep jobs
// may build identical streams concurrently. Keep it that way — memoizing
// these would introduce sharing across parallel jobs for no measurable
// saving (stream construction is ~0.1% of a simulation).

// tlbThrashOps maps `pages` 4K pages and strides through them `iters`
// times: with pages well beyond TLB reach every access misses, exposing the
// per-miss walk cost of each technique.
func tlbThrashOps(pages, iters int) []workload.Op {
	base := uint64(0x4000_0000)
	ops := []workload.Op{
		{Kind: workload.OpCreateProcess, PID: 0},
		{Kind: workload.OpMmap, PID: 0, VA: base, Len: uint64(pages) << 12, Size: pagetable.Size4K},
		{Kind: workload.OpPopulate, PID: 0, VA: base},
		{Kind: workload.OpCtxSwitch, PID: 0},
	}
	for it := 0; it < iters; it++ {
		for p := 0; p < pages; p++ {
			ops = append(ops, workload.Op{Kind: workload.OpAccess, PID: 0, VA: base + uint64(p)<<12})
		}
	}
	return ops
}

// ptUpdateOps performs `rounds` of page-table churn: a region is mapped,
// its pages touched (demand faults write PTEs), then unmapped. The per-
// update cost separates direct updates (native/nested, agile steady state)
// from VMM-mediated updates (shadow).
func ptUpdateOps(pages, rounds int) []workload.Op {
	ops := []workload.Op{
		{Kind: workload.OpCreateProcess, PID: 0},
		{Kind: workload.OpCtxSwitch, PID: 0},
	}
	for r := 0; r < rounds; r++ {
		base := uint64(0x4000_0000) + uint64(r)<<32
		ops = append(ops, workload.Op{Kind: workload.OpMmap, PID: 0, VA: base, Len: uint64(pages) << 12, Size: pagetable.Size4K})
		for p := 0; p < pages; p++ {
			ops = append(ops, workload.Op{Kind: workload.OpAccess, PID: 0, VA: base + uint64(p)<<12, Write: true})
		}
		ops = append(ops, workload.Op{Kind: workload.OpMunmap, PID: 0, VA: base})
	}
	return ops
}

// readThenWriteOps demand-reads `pages` pages (shadow entries are created
// clean and write-protected for dirty tracking) and then writes each one —
// the access pattern that maximizes A/D-propagation VM exits (§IV).
func readThenWriteOps(pages int) []workload.Op {
	base := uint64(0x4000_0000)
	ops := []workload.Op{
		{Kind: workload.OpCreateProcess, PID: 0},
		{Kind: workload.OpMmap, PID: 0, VA: base, Len: uint64(pages) << 12, Size: pagetable.Size4K},
		{Kind: workload.OpCtxSwitch, PID: 0},
	}
	for p := 0; p < pages; p++ {
		ops = append(ops, workload.Op{Kind: workload.OpAccess, PID: 0, VA: base + uint64(p)<<12})
	}
	for p := 0; p < pages; p++ {
		ops = append(ops, workload.Op{Kind: workload.OpAccess, PID: 0, VA: base + uint64(p)<<12, Write: true})
	}
	return ops
}

// mixedOps is the Table I walk-cost microbenchmark: a large static region
// thrashed with a TLB-hostile stride, interleaved with periodic page-table
// churn in a small dynamic region. Static workloads show each technique's
// baseline walk cost; the dynamic section exercises agile's switched walks
// so its 4–5 average (paper Table I) emerges.
func mixedOps(staticPages, accesses, churnEvery, churnPages int) []workload.Op {
	static := uint64(0x4000_0000)
	churn := uint64(0x8000_0000)
	ops := []workload.Op{
		{Kind: workload.OpCreateProcess, PID: 0},
		{Kind: workload.OpMmap, PID: 0, VA: static, Len: uint64(staticPages) << 12, Size: pagetable.Size4K},
		{Kind: workload.OpPopulate, PID: 0, VA: static},
		{Kind: workload.OpCtxSwitch, PID: 0},
	}
	churnLive := false
	for i := 0; i < accesses; i++ {
		if churnEvery > 0 && i%churnEvery == 0 {
			if churnLive {
				ops = append(ops, workload.Op{Kind: workload.OpMunmap, PID: 0, VA: churn})
			}
			ops = append(ops, workload.Op{Kind: workload.OpMmap, PID: 0, VA: churn, Len: uint64(churnPages) << 12, Size: pagetable.Size4K})
			churnLive = true
			for p := 0; p < churnPages; p++ {
				ops = append(ops, workload.Op{Kind: workload.OpAccess, PID: 0, VA: churn + uint64(p)<<12, Write: true})
			}
		}
		ops = append(ops, workload.Op{Kind: workload.OpAccess, PID: 0, VA: static + uint64(i%staticPages)<<12})
	}
	return ops
}

// ctxSwitchOps bounces between two processes, each touching one page per
// quantum — the context-switch microbenchmark for the §IV hardware cache.
func ctxSwitchOps(switches int) []workload.Op {
	ops := []workload.Op{
		{Kind: workload.OpCreateProcess, PID: 0},
		{Kind: workload.OpCreateProcess, PID: 1},
		{Kind: workload.OpMmap, PID: 0, VA: 0x4000_0000, Len: 16 << 12, Size: pagetable.Size4K},
		{Kind: workload.OpMmap, PID: 1, VA: 0x5000_0000, Len: 16 << 12, Size: pagetable.Size4K},
		{Kind: workload.OpPopulate, PID: 0, VA: 0x4000_0000},
		{Kind: workload.OpPopulate, PID: 1, VA: 0x5000_0000},
	}
	for i := 0; i < switches; i++ {
		pid := i % 2
		base := uint64(0x4000_0000) + uint64(pid)<<28
		ops = append(ops,
			workload.Op{Kind: workload.OpCtxSwitch, PID: pid},
			workload.Op{Kind: workload.OpAccess, PID: pid, VA: base + uint64(i%16)<<12},
		)
	}
	return ops
}
