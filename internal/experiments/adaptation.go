package experiments

import (
	"fmt"

	"agilepaging/internal/telemetry"
	"agilepaging/internal/walker"
)

// AdaptationCurve resolves Table I's agile update-cost cell in time: it
// runs the churn microbenchmark (a TLB-hostile static region plus a small,
// repeatedly remapped dynamic region) under agile paging with an epoch
// recorder attached and returns the epoch series. Early epochs pay
// VMM-mediated page-table updates (the churned subtree is still shadowed);
// once the write-threshold policy flips it to nested mode, updates go
// direct and the per-epoch update cost falls toward 0 — the paper's
// "converges to the best of both" claim, observable per epoch.
//
// epochLen is the sampling interval in accesses (non-positive selects
// 2000); epochs the number of full epochs to run (non-positive selects
// 12). ring, when non-nil, additionally records per-walk events. The run
// starts in agile (not fully nested) mode so the series shows the
// Shadow⇒Nested adaptation itself, not the short-lived-process policy.
func AdaptationCurve(epochLen, epochs int, ring *telemetry.EventRing) (*telemetry.Series, error) {
	if epochLen <= 0 {
		epochLen = 2_000
	}
	if epochs <= 0 {
		epochs = 12
	}
	rec := telemetry.NewRecorder(epochLen)
	o := DefaultOptions(walker.ModeAgile, 0)
	o.AgileStartNested = false
	o.Metrics = rec
	o.WalkEvents = ring
	// Churn every quarter epoch so every epoch contains page-table updates
	// to price; 16 churned pages matches the Table I microbenchmark.
	const churnPages = 16
	churnEvery := epochLen / 4
	if churnEvery < 1 {
		churnEvery = 1
	}
	// With the paper's write threshold (2) the churned subtree flips to
	// nested within the first churn round — correct, but invisible at epoch
	// granularity. Stretch the threshold so the flip lands ~40% into the
	// run: each churn round intercepts about 2 writes per churned page
	// (demand-fault PTE install + unmap clear) on the same leaf table.
	rounds := epochLen * epochs / churnEvery
	o.AgileWriteThreshold = rounds * churnPages * 2 * 2 / 5
	if _, _, err := RunOps("adaptation", mixedOps(1024, epochLen*epochs, churnEvery, churnPages), o); err != nil {
		return nil, fmt.Errorf("experiments: adaptation: %w", err)
	}
	return rec.Series(), nil
}

// FormatAdaptation renders the adaptation curve with a verdict line: the
// measured update cost of the first and last epochs (Table I resolved in
// time).
func FormatAdaptation(s *telemetry.Series) string {
	out := s.Table()
	if len(s.Epochs) >= 2 {
		first, last := s.Epochs[0], s.Epochs[len(s.Epochs)-1]
		out += fmt.Sprintf("update cost: %.0f cycles/update (epoch 0) -> %.0f cycles/update (epoch %d)\n",
			first.UpdateCost(), last.UpdateCost(), last.Index)
	}
	return out
}
