package experiments

import (
	"strings"
	"testing"

	"agilepaging/internal/pagetable"
	"agilepaging/internal/walker"
)

func TestTableIIExactRefCounts(t *testing.T) {
	rows, err := TableII()
	if err != nil {
		t.Fatal(err)
	}
	want := []int{4, 8, 12, 16, 20, 24} // paper Table II / Table VI header
	if len(rows) != len(want) {
		t.Fatalf("got %d rows", len(rows))
	}
	for i, r := range rows {
		if r.Refs != want[i] {
			t.Errorf("%s: refs = %d, want %d", r.Degree, r.Refs, want[i])
		}
		if len(r.Accesses) != r.Refs {
			t.Errorf("%s: trace has %d accesses for %d refs", r.Degree, len(r.Accesses), r.Refs)
		}
	}
	out := FormatTableII(rows)
	if !strings.Contains(out, "nested only") || !strings.Contains(out, "24") {
		t.Errorf("FormatTableII output incomplete:\n%s", out)
	}
}

func TestWalkTracesMatchFigure1(t *testing.T) {
	traces, err := WalkTraces()
	if err != nil {
		t.Fatal(err)
	}
	wantLens := map[string]int{"native": 4, "shadow": 4, "nested": 24, "agile": 8}
	for name, n := range wantLens {
		if got := len(traces[name]); got != n {
			t.Errorf("%s trace has %d accesses, want %d", name, got, n)
		}
	}
	// The nested trace starts with 4 host references (gptr translation).
	for i := 0; i < 4; i++ {
		if traces["nested"][i].Table != walker.TableHost {
			t.Errorf("nested access %d in %v, want hPT", i, traces["nested"][i].Table)
		}
	}
	// The agile trace is 3 sPT refs, then gPT, then 4 hPT refs (Fig 3b).
	agile := traces["agile"]
	for i := 0; i < 3; i++ {
		if agile[i].Table != walker.TableShadow {
			t.Errorf("agile access %d in %v, want sPT", i, agile[i].Table)
		}
	}
	if agile[3].Table != walker.TableGuest {
		t.Errorf("agile access 3 in %v, want gPT", agile[3].Table)
	}
	if out := FormatWalkTraces(traces); !strings.Contains(out, "sPT") {
		t.Error("FormatWalkTraces output incomplete")
	}
}

func TestTableIShape(t *testing.T) {
	rows, err := TableI()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	byTech := map[walker.Mode]TableIRow{}
	for _, r := range rows {
		byTech[r.Technique] = r
	}
	// Max refs per miss: native 4, nested 24, shadow 4, agile in [4, 24].
	if byTech[walker.ModeNative].MaxRefs != 4 {
		t.Errorf("native max refs = %d", byTech[walker.ModeNative].MaxRefs)
	}
	if byTech[walker.ModeNested].MaxRefs != 24 {
		t.Errorf("nested max refs = %d", byTech[walker.ModeNested].MaxRefs)
	}
	if byTech[walker.ModeShadow].MaxRefs != 4 {
		t.Errorf("shadow max refs = %d", byTech[walker.ModeShadow].MaxRefs)
	}
	agile := byTech[walker.ModeAgile]
	if agile.MaxRefs < 8 || agile.MaxRefs > 24 {
		t.Errorf("agile max refs = %d, want in [8,24]", agile.MaxRefs)
	}
	if agile.AvgRefs < 4 || agile.AvgRefs > 6 {
		t.Errorf("agile avg refs = %.2f, want ~4-5 (paper Table I)", agile.AvgRefs)
	}
	// Update costs: shadow mediated, others fast.
	if byTech[walker.ModeShadow].UpdateCycles <= byTech[walker.ModeNested].UpdateCycles {
		t.Errorf("shadow update cost %.0f not above nested %.0f",
			byTech[walker.ModeShadow].UpdateCycles, byTech[walker.ModeNested].UpdateCycles)
	}
	if byTech[walker.ModeNative].UpdateCycles != 0 || byTech[walker.ModeNested].UpdateCycles != 0 {
		t.Error("native/nested updates should be free of VMM cycles")
	}
	if agile.UpdateCycles >= byTech[walker.ModeShadow].UpdateCycles {
		t.Errorf("agile update cost %.0f not below shadow %.0f", agile.UpdateCycles, byTech[walker.ModeShadow].UpdateCycles)
	}
	if out := FormatTableI(rows); !strings.Contains(out, "Agile") {
		t.Error("FormatTableI output incomplete")
	}
}

const testAccesses = 60_000

func TestFigure5ShapeSingleWorkload(t *testing.T) {
	res, err := Figure5([]string{"dedup"}, testAccesses, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 8 {
		t.Fatalf("rows = %d, want 8 (2 sizes x 4 techniques)", len(res.Rows))
	}
	sh4, _ := res.Get("dedup", pagetable.Size4K, walker.ModeShadow)
	ne4, _ := res.Get("dedup", pagetable.Size4K, walker.ModeNested)
	ag4, _ := res.Get("dedup", pagetable.Size4K, walker.ModeAgile)
	ba4, _ := res.Get("dedup", pagetable.Size4K, walker.ModeNative)
	// dedup: allocation-heavy => shadow has a large VMM component; nested
	// has none; agile's is far below shadow's (paper Fig. 5).
	if sh4.VMMOv < 0.05 {
		t.Errorf("dedup shadow VMM overhead = %.3f, expected substantial", sh4.VMMOv)
	}
	if ne4.VMMOv != 0 {
		t.Errorf("nested VMM overhead = %.3f, want 0", ne4.VMMOv)
	}
	if ag4.VMMOv > sh4.VMMOv/2 {
		t.Errorf("agile VMM overhead %.3f not well below shadow %.3f", ag4.VMMOv, sh4.VMMOv)
	}
	// Nested pays more walk overhead than native.
	if ne4.WalkOv <= ba4.WalkOv {
		t.Errorf("nested walk %.3f not above native %.3f", ne4.WalkOv, ba4.WalkOv)
	}
	// Agile beats the best of the two constituents.
	best := sh4.TotalOv()
	if ne4.TotalOv() < best {
		best = ne4.TotalOv()
	}
	if ag4.TotalOv() >= best {
		t.Errorf("agile total %.3f does not beat best constituent %.3f", ag4.TotalOv(), best)
	}
	if out := FormatFigure5(res); !strings.Contains(out, "dedup") {
		t.Error("FormatFigure5 output incomplete")
	}
	h := Headline(res)
	if len(h.Rows) != 2 {
		t.Fatalf("headline rows = %d", len(h.Rows))
	}
	if out := FormatHeadline(h); !strings.Contains(out, "geomean") {
		t.Error("FormatHeadline output incomplete")
	}
}

func TestFigure5StaticWorkloadShape(t *testing.T) {
	res, err := Figure5([]string{"mcf"}, testAccesses, 1)
	if err != nil {
		t.Fatal(err)
	}
	sh4, _ := res.Get("mcf", pagetable.Size4K, walker.ModeShadow)
	ne4, _ := res.Get("mcf", pagetable.Size4K, walker.ModeNative)
	ag4, _ := res.Get("mcf", pagetable.Size4K, walker.ModeAgile)
	// Static workload: shadow ≈ native walk cost, tiny VMM component after
	// warmup; agile ≈ shadow.
	if sh4.VMMOv > 0.10 {
		t.Errorf("mcf shadow VMM overhead = %.3f, expected small", sh4.VMMOv)
	}
	if ag4.TotalOv() > sh4.TotalOv()+0.05 {
		t.Errorf("agile %.3f much worse than shadow %.3f on static workload", ag4.TotalOv(), sh4.TotalOv())
	}
	_ = ne4
	// 2M pages reduce native walk overhead.
	ba2, _ := res.Get("mcf", pagetable.Size2M, walker.ModeNative)
	ba4, _ := res.Get("mcf", pagetable.Size4K, walker.ModeNative)
	if ba2.WalkOv >= ba4.WalkOv {
		t.Errorf("2M native walk %.3f not below 4K %.3f", ba2.WalkOv, ba4.WalkOv)
	}
}

func TestTableVIShape(t *testing.T) {
	rows, err := TableVI([]string{"mcf", "dedup"}, testAccesses, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		sum := 0.0
		for _, f := range r.Fractions {
			sum += f
		}
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("%s: fractions sum to %.4f", r.Workload, sum)
		}
		if r.AvgRefs < 4 || r.AvgRefs > 24 {
			t.Errorf("%s: avg refs = %.2f", r.Workload, r.AvgRefs)
		}
		// Most misses are served in shadow mode (paper: >80%).
		if r.Fractions[0] < 0.5 {
			t.Errorf("%s: shadow fraction = %.2f, expected dominant", r.Workload, r.Fractions[0])
		}
	}
	// mcf is static: nearly all shadow, avg refs near 4 (paper: 99.1%, 4.04).
	if rows[0].Fractions[0] < 0.95 {
		t.Errorf("mcf shadow fraction = %.3f, want > 0.95", rows[0].Fractions[0])
	}
	if rows[0].AvgRefs > 5.0 {
		t.Errorf("mcf avg refs = %.2f, want near 4", rows[0].AvgRefs)
	}
	if out := FormatTableVI(rows); !strings.Contains(out, "avg refs") {
		t.Error("FormatTableVI output incomplete")
	}
}

func TestAblationsShape(t *testing.T) {
	rows, err := Ablations(testAccesses, 1)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]AblationRow{}
	for _, r := range rows {
		byName[r.Name+"/"+r.Workload] = r
	}
	// Hardware A/D reduces VMM overhead on dedup (agile and shadow).
	// Hardware A/D must never hurt agile (agile's write-threshold policy
	// already converts A/D-churning tables to nested mode, so the two can
	// tie) and must strictly help pure shadow.
	if byName["agile + hw A/D/read-then-write µbench"].VMMOv > byName["agile baseline/read-then-write µbench"].VMMOv {
		t.Error("hw A/D increased agile VMM overhead")
	}
	if byName["shadow + hw A/D/read-then-write µbench"].VMMOv >= byName["shadow baseline/read-then-write µbench"].VMMOv {
		t.Error("hw A/D did not reduce shadow VMM overhead")
	}
	// Context-switch cache reduces traps on gcc.
	if byName["agile + ctx cache(8)/ctx-switch µbench"].Traps >= byName["agile, no ctx cache/ctx-switch µbench"].Traps {
		t.Error("ctx cache did not reduce traps")
	}
	// PWC/NTLB reduce walk overhead on graph500.
	if byName["agile, PWC+NTLB/graph500"].WalkOv >= byName["agile, no PWC/NTLB/graph500"].WalkOv {
		t.Error("MMU caches did not reduce walk overhead")
	}
	if out := FormatAblations(rows); !strings.Contains(out, "ctx cache") {
		t.Error("FormatAblations output incomplete")
	}
	if out := FormatTrapCosts(); !strings.Contains(out, "pt-write") {
		t.Error("FormatTrapCosts output incomplete")
	}
}

func TestValidateModelAgreement(t *testing.T) {
	v, err := ValidateModel("canneal", testAccesses, 1)
	if err != nil {
		t.Fatal(err)
	}
	// The Table-IV projection is conservative (paper: "leads to higher
	// overheads for agile paging than with real hardware"), so it should
	// bound the direct measurement from above-or-near on the walk side.
	if v.ProjectedWalkOv < 0.8*v.DirectWalkOv-0.02 {
		t.Errorf("projection %.3f far below direct %.3f", v.ProjectedWalkOv, v.DirectWalkOv)
	}
	if v.ProjectedWalkOv > 3*v.DirectWalkOv+0.05 {
		t.Errorf("projection %.3f far above direct %.3f", v.ProjectedWalkOv, v.DirectWalkOv)
	}
	if out := FormatModelValidation(v); !strings.Contains(out, "canneal") {
		t.Error("FormatModelValidation output incomplete")
	}
}

func TestRunProfileUnknownWorkload(t *testing.T) {
	if _, err := RunProfile("nope", DefaultOptions(walker.ModeNative, pagetable.Size4K)); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestSHSPApproximatesBestAgileExceeds(t *testing.T) {
	rows, err := SHSPComparison([]string{"mcf", "dedup"}, 120_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// SHSP lands near the best constituent (within 25% relative —
		// paper §VII.C: "SHSP can achieve approximately the best of the
		// two techniques").
		if r.SHSP > r.Best()*1.25+0.05 {
			t.Errorf("%s: SHSP %.3f far above best constituent %.3f", r.Workload, r.SHSP, r.Best())
		}
		// Agile paging exceeds SHSP (the paper's central §VII.C claim).
		if r.Agile > r.SHSP+0.01 {
			t.Errorf("%s: agile %.3f does not exceed SHSP %.3f", r.Workload, r.Agile, r.SHSP)
		}
	}
	if out := FormatSHSP(rows); !strings.Contains(out, "SHSP") {
		t.Error("FormatSHSP output incomplete")
	}
}

func TestFormatFigure5Chart(t *testing.T) {
	res := &Figure5Result{Rows: []Figure5Row{
		{Workload: "dedup", PageSize: pagetable.Size4K, Technique: walker.ModeShadow, WalkOv: 0.4, VMMOv: 7.0},
		{Workload: "dedup", PageSize: pagetable.Size4K, Technique: walker.ModeAgile, WalkOv: 0.4, VMMOv: 0.01},
	}}
	out := FormatFigure5Chart(res)
	if !strings.Contains(out, "dedup") || !strings.Contains(out, "#") || !strings.Contains(out, "=") {
		t.Errorf("chart output incomplete:\n%s", out)
	}
	// Empty sweep must not divide by zero.
	if out := FormatFigure5Chart(&Figure5Result{}); out == "" {
		t.Error("empty chart")
	}
}

func TestTableVWorkloadsQualify(t *testing.T) {
	rows, err := TableV(testAccesses, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// The paper selects workloads above 5 MPKI.
		if r.MPKI < 5 {
			t.Errorf("%s: MPKI = %.1f, below the paper's selection bar", r.Workload, r.MPKI)
		}
		if r.FootprintBytes == 0 || r.Pattern == "" {
			t.Errorf("%s: incomplete row %+v", r.Workload, r)
		}
	}
	if out := FormatTableV(rows); !strings.Contains(out, "MPKI") {
		t.Error("FormatTableV output incomplete")
	}
}

func TestCSVExports(t *testing.T) {
	res := &Figure5Result{Rows: []Figure5Row{{
		Workload: "mcf", PageSize: pagetable.Size4K, Technique: walker.ModeAgile,
		WalkOv: 0.8, VMMOv: 0.01,
	}}}
	var buf strings.Builder
	if err := WriteFigure5CSV(&buf, res); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "workload,page_size") || !strings.Contains(out, "mcf,4K,agile") {
		t.Errorf("figure5 csv:\n%s", out)
	}
	var buf2 strings.Builder
	rows := []TableVIRow{{Workload: "mcf", Fractions: [6]float64{1, 0, 0, 0, 0, 0}, AvgRefs: 4}}
	if err := WriteTableVICSV(&buf2, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf2.String(), "mcf,1.000000") {
		t.Errorf("table6 csv:\n%s", buf2.String())
	}
}

func TestTableIIIDescribesMachine(t *testing.T) {
	out := TableIII()
	for _, want := range []string{"L1 DTLB", "L2 TLB", "Nested TLB", "VM-exit costs", "Cycle model"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table III missing %q:\n%s", want, out)
		}
	}
}

// TestNestedToNativeRatioBand is the calibration regression net: the paper
// reports nested paging's translation overheads at roughly 2.5x native
// (geometric mean, 4K). The simulator must stay in a 1.5x-3.5x band.
func TestNestedToNativeRatioBand(t *testing.T) {
	for _, name := range []string{"mcf", "dedup", "canneal"} {
		oN := DefaultOptions(walker.ModeNested, pagetable.Size4K)
		oN.Accesses = testAccesses
		oB := DefaultOptions(walker.ModeNative, pagetable.Size4K)
		oB.Accesses = testAccesses
		repN, err := RunProfile(name, oN)
		if err != nil {
			t.Fatal(err)
		}
		repB, err := RunProfile(name, oB)
		if err != nil {
			t.Fatal(err)
		}
		if repB.WalkOverhead() == 0 {
			t.Fatalf("%s: no native walk overhead", name)
		}
		ratio := repN.WalkOverhead() / repB.WalkOverhead()
		if ratio < 1.5 || ratio > 3.5 {
			t.Errorf("%s: nested/native walk ratio = %.2f, outside the published band", name, ratio)
		}
	}
}

func TestSensitivityAgileRobust(t *testing.T) {
	rows, err := Sensitivity(60_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if !r.AgileWins {
			t.Errorf("agile loses at trap x%.1f / ref x%.1f: N=%.2f S=%.2f A=%.2f",
				r.TrapScale, r.RefScale, r.Nested, r.Shadow, r.Agile)
		}
	}
	if out := FormatSensitivity(rows); !strings.Contains(out, "agile wins") {
		t.Error("FormatSensitivity output incomplete")
	}
}
