package experiments

import (
	"context"
	"fmt"

	"agilepaging/internal/pagetable"
	"agilepaging/internal/sweep"
	"agilepaging/internal/walker"
	"agilepaging/internal/workload"
)

// SHSPRow compares one workload under the SHSP prior-work baseline against
// agile paging and the constituent techniques (paper §VII.C).
type SHSPRow struct {
	Workload string
	// Total execution-time overheads.
	Nested, Shadow, SHSP, Agile float64
	// SHSPSwitches counts SHSP's whole-process mode changes.
	SHSPSwitches uint64
}

// Best returns the better constituent's overhead.
func (r SHSPRow) Best() float64 {
	if r.Nested < r.Shadow {
		return r.Nested
	}
	return r.Shadow
}

// shspSpec is one (workload, configuration) cell of the comparison.
type shspSpec struct {
	tech walker.Mode
	shsp bool
}

// shspResult is one cell's measurement.
type shspResult struct {
	overhead float64
	switches uint64
}

// shspConfigs are the four configurations measured per workload, in the
// order the SHSPRow fields are filled: nested, shadow, SHSP, agile.
var shspConfigs = [...]shspSpec{
	{walker.ModeNested, false},
	{walker.ModeShadow, false},
	{walker.ModeAgile, true},
	{walker.ModeAgile, false},
}

// SHSPComparison reproduces the paper's §VII.C discussion: SHSP, switching
// an entire guest process temporally between the techniques, approaches the
// best of the two, while agile paging — temporal *and* spatial — exceeds
// it. Runs at 4K pages where the techniques differ most.
func SHSPComparison(workloads []string, accesses int, seed int64) ([]SHSPRow, error) {
	return SHSPComparisonSweep(context.Background(), sweep.Config{}, workloads, accesses, seed)
}

// SHSPComparisonSweep is SHSPComparison on an explicit sweep configuration:
// every (workload, configuration) cell is an independent job.
func SHSPComparisonSweep(ctx context.Context, cfg sweep.Config, workloads []string, accesses int, seed int64) ([]SHSPRow, error) {
	if workloads == nil {
		workloads = workload.Names()
	}
	var jobs []sweep.Job[Options]
	for _, name := range workloads {
		for _, c := range shspConfigs {
			label := c.tech.String()
			if c.shsp {
				label = "shsp"
			}
			o := DefaultOptions(c.tech, pagetable.Size4K)
			o.Accesses = accesses
			o.Seed = seed
			o.UseSHSP = c.shsp
			// SHSP converges coarsely (whole-process sampling + rebuild);
			// give every configuration a full-length warmup so the steady
			// states are compared, as the paper's to-completion runs do.
			o.Warmup = accesses
			dedup, _ := CellKey(name, o)
			jobs = append(jobs, sweep.Job[Options]{
				Key:      fmt.Sprintf("%s/%s", name, label),
				Workload: name,
				Options:  o,
				DedupKey: dedup,
			})
		}
	}
	out := sweep.Execute(ctx, cfg, jobs, func(_ context.Context, j sweep.Job[Options]) (shspResult, error) {
		rep, err := RunProfile(j.Workload, j.Options)
		if err != nil {
			return shspResult{}, err
		}
		return shspResult{
			overhead: rep.TotalOverhead(),
			switches: rep.SHSP.ToShadow + rep.SHSP.ToNested,
		}, nil
	})
	// A comparison row needs all four of its configuration cells; workloads
	// with a failed or never-ran cell are dropped from the partial table.
	rows := make([]SHSPRow, 0, len(workloads))
	for i, name := range workloads {
		base := i * len(shspConfigs)
		complete := true
		for k := 0; k < len(shspConfigs); k++ {
			complete = complete && out.Completed[base+k]
		}
		if !complete {
			continue
		}
		c := out.Results[base:]
		rows = append(rows, SHSPRow{
			Workload:     name,
			Nested:       c[0].overhead,
			Shadow:       c[1].overhead,
			SHSP:         c[2].overhead,
			Agile:        c[3].overhead,
			SHSPSwitches: c[2].switches,
		})
	}
	return rows, out.Err
}
