package experiments

import (
	"agilepaging/internal/pagetable"
	"agilepaging/internal/walker"
	"agilepaging/internal/workload"
)

// SHSPRow compares one workload under the SHSP prior-work baseline against
// agile paging and the constituent techniques (paper §VII.C).
type SHSPRow struct {
	Workload string
	// Total execution-time overheads.
	Nested, Shadow, SHSP, Agile float64
	// SHSPSwitches counts SHSP's whole-process mode changes.
	SHSPSwitches uint64
}

// Best returns the better constituent's overhead.
func (r SHSPRow) Best() float64 {
	if r.Nested < r.Shadow {
		return r.Nested
	}
	return r.Shadow
}

// SHSPComparison reproduces the paper's §VII.C discussion: SHSP, switching
// an entire guest process temporally between the techniques, approaches the
// best of the two, while agile paging — temporal *and* spatial — exceeds
// it. Runs at 4K pages where the techniques differ most.
func SHSPComparison(workloads []string, accesses int, seed int64) ([]SHSPRow, error) {
	if workloads == nil {
		workloads = workload.Names()
	}
	rows := make([]SHSPRow, 0, len(workloads))
	for _, name := range workloads {
		row := SHSPRow{Workload: name}
		for _, cfg := range []struct {
			tech walker.Mode
			shsp bool
			dst  *float64
		}{
			{walker.ModeNested, false, &row.Nested},
			{walker.ModeShadow, false, &row.Shadow},
			{walker.ModeAgile, true, &row.SHSP},
			{walker.ModeAgile, false, &row.Agile},
		} {
			o := DefaultOptions(cfg.tech, pagetable.Size4K)
			o.Accesses = accesses
			o.Seed = seed
			o.UseSHSP = cfg.shsp
			// SHSP converges coarsely (whole-process sampling + rebuild);
			// give every configuration a full-length warmup so the steady
			// states are compared, as the paper's to-completion runs do.
			o.Warmup = accesses
			rep, err := RunProfile(name, o)
			if err != nil {
				return nil, err
			}
			*cfg.dst = rep.TotalOverhead()
			if cfg.shsp {
				row.SHSPSwitches = rep.SHSP.ToShadow + rep.SHSP.ToNested
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}
