package experiments

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"agilepaging/internal/cpu"
	"agilepaging/internal/pagetable"
	"agilepaging/internal/vmm"
	"agilepaging/internal/walker"
)

// TableIII describes the simulated machine configuration — the analog of
// the paper's Table III (system configuration and per-core TLB hierarchy),
// with this reproduction's scaling and cost model made explicit.
func TableIII() string {
	cfg := cpu.DefaultConfig(walker.ModeAgile, pagetable.Size4K)
	t := cfg.TLB.Scaled(cfg.TLBScale)
	costs := vmm.DefaultCostModel()
	var b strings.Builder
	b.WriteString("Table III: simulated system configuration\n")
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "Baseline machine\tIntel Sandy Bridge geometry (paper Table III), TLB 4K arrays scaled 1/%d\n", cfg.TLBScale)
	fmt.Fprintf(w, "L1 DTLB\t4K: %d-entry %d-way; 2M: %d-entry %d-way; 1G: %d-entry\n",
		t.L1D4K.Entries, t.L1D4K.Ways, t.L1D2M.Entries, t.L1D2M.Ways, t.L1D1G.Entries)
	fmt.Fprintf(w, "L1 ITLB\t4K: %d-entry %d-way; 2M: %d-entry\n", t.L1I4K.Entries, t.L1I4K.Ways, t.L1I2M.Entries)
	fmt.Fprintf(w, "L2 TLB\t4K: %d-entry %d-way\n", t.L24K.Entries, t.L24K.Ways)
	fmt.Fprintf(w, "Page walk caches\tskip-1/2/3 arrays of %d entries, %d-way, with agile mode bit\n",
		cfg.PWC.Entries[0], cfg.PWC.Ways)
	fmt.Fprintf(w, "Nested TLB\t%d entries, 4-way\n", cfg.NTLBEntries)
	fmt.Fprintf(w, "Cycle model\taccess %d cycles; guest/shadow table ref %d; host table ref %d\n",
		cfg.AccessCycles, cfg.MemRefCycles, cfg.HostRefCycles)
	fmt.Fprintf(w, "VM-exit costs\tfill %d, PT-write %d, A/D %d, ctx-switch %d, flush %d, host fault %d cycles\n",
		costs.Cycles[vmm.TrapShadowFill], costs.Cycles[vmm.TrapPTWrite], costs.Cycles[vmm.TrapADUpdate],
		costs.Cycles[vmm.TrapContextSwitch], costs.Cycles[vmm.TrapTLBFlush], costs.Cycles[vmm.TrapHostFault])
	fmt.Fprintf(w, "Guest RAM / host memory\t%d MB / %d MB (footprints scaled ~60x from the paper's)\n",
		cfg.GuestRAMBytes>>20, cfg.MemBytes>>20)
	w.Flush()
	return b.String()
}
