package experiments

import (
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"agilepaging/internal/walker"
)

// The golden-equivalence test pins the simulator's observable outputs —
// every counter and derived overhead of Figure 5, Table II, and Table VI —
// to values captured before the PR 2 hot-path optimizations. Optimizations
// must be observably pure: same seeds in, bit-identical counters out. Run
// with -update only when a PR intentionally changes simulated behaviour.
var updateGolden = flag.Bool("update", false, "rewrite golden files from the current implementation")

const (
	goldenAccesses = 30_000
	goldenSeed     = 42
	goldenFile     = "testdata/golden_pr2.json"
)

// goldenFigure5Row records one Figure 5 bar. Overheads are stored as
// math.Float64bits so JSON round-tripping cannot lose precision: equality
// means bit identity, not approximate equality.
type goldenFigure5Row struct {
	Workload  string
	PageSize  string
	Technique string

	WalkOvBits uint64
	VMMOvBits  uint64

	Accesses        uint64
	Writes          uint64
	TLBMisses       uint64
	WalkRefs        uint64
	GuestPageFaults uint64
	WriteProtFaults uint64
	CtxSwitches     uint64

	IdealCycles uint64
	WalkCycles  uint64
	VMMCycles   uint64

	TLBLookups uint64
	TLBL1Hits  uint64
	TLBL2Hits  uint64

	WalkerWalks    uint64
	WalkerRefs     uint64
	ByNestedLevels [5]uint64
	FullNested     uint64

	RefsP50 int
	RefsP95 int
	RefsMax int
}

// goldenTableIIRow records one Table II walk with its full reference trace.
type goldenTableIIRow struct {
	Degree       string
	NestedLevels int
	Refs         int
	Accesses     []walker.Access
}

// goldenTableVIRow records one Table VI row, fractions as Float64bits.
type goldenTableVIRow struct {
	Workload      string
	FractionsBits [6]uint64
	AvgRefsBits   uint64
}

type goldenData struct {
	Accesses int
	Seed     int64
	Figure5  []goldenFigure5Row
	Headline [4]uint64 // geomean bits: best4K, native4K, best2M, native2M
	TableII  []goldenTableIIRow
	TableVI  []goldenTableVIRow
}

// captureGolden runs the three experiments and converts their results.
func captureGolden(t *testing.T) goldenData {
	t.Helper()
	g := goldenData{Accesses: goldenAccesses, Seed: goldenSeed}

	f5, err := Figure5(nil, goldenAccesses, goldenSeed)
	if err != nil {
		t.Fatalf("Figure5: %v", err)
	}
	for _, r := range f5.Rows {
		rep := r.Report
		g.Figure5 = append(g.Figure5, goldenFigure5Row{
			Workload:        r.Workload,
			PageSize:        r.PageSize.String(),
			Technique:       r.Technique.String(),
			WalkOvBits:      math.Float64bits(r.WalkOv),
			VMMOvBits:       math.Float64bits(r.VMMOv),
			Accesses:        rep.Machine.Accesses,
			Writes:          rep.Machine.Writes,
			TLBMisses:       rep.Machine.TLBMisses,
			WalkRefs:        rep.Machine.WalkRefs,
			GuestPageFaults: rep.Machine.GuestPageFaults,
			WriteProtFaults: rep.Machine.WriteProtFaults,
			CtxSwitches:     rep.Machine.CtxSwitches,
			IdealCycles:     rep.IdealCycles,
			WalkCycles:      rep.WalkCycles,
			VMMCycles:       rep.VMMCycles,
			TLBLookups:      rep.TLB.Lookups,
			TLBL1Hits:       rep.TLB.L1Hits,
			TLBL2Hits:       rep.TLB.L2Hits,
			WalkerWalks:     rep.Walker.Walks,
			WalkerRefs:      rep.Walker.Refs,
			ByNestedLevels:  rep.Walker.ByNestedLevels,
			FullNested:      rep.Walker.FullNested,
			RefsP50:         rep.RefsP50,
			RefsP95:         rep.RefsP95,
			RefsMax:         rep.RefsMax,
		})
	}
	h := Headline(f5)
	g.Headline = [4]uint64{
		math.Float64bits(h.GeoAgileVsBest4K),
		math.Float64bits(h.GeoAgileVsNative4K),
		math.Float64bits(h.GeoAgileVsBest2M),
		math.Float64bits(h.GeoAgileVsNative2M),
	}

	t2, err := TableII()
	if err != nil {
		t.Fatalf("TableII: %v", err)
	}
	for _, r := range t2 {
		g.TableII = append(g.TableII, goldenTableIIRow{
			Degree:       r.Degree,
			NestedLevels: r.NestedLevels,
			Refs:         r.Refs,
			Accesses:     r.Accesses,
		})
	}

	t6, err := TableVI(nil, goldenAccesses, goldenSeed)
	if err != nil {
		t.Fatalf("TableVI: %v", err)
	}
	for _, r := range t6 {
		row := goldenTableVIRow{Workload: r.Workload, AvgRefsBits: math.Float64bits(r.AvgRefs)}
		for i, f := range r.Fractions {
			row.FractionsBits[i] = math.Float64bits(f)
		}
		g.TableVI = append(g.TableVI, row)
	}
	return g
}

// TestGoldenEquivalence verifies that Figure 5, Table II, and Table VI are
// bit-identical to the pre-optimization implementation: same seeds, same
// counters, same floating-point overheads to the last bit.
func TestGoldenEquivalence(t *testing.T) {
	got := captureGolden(t)

	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenFile), 0o755); err != nil {
			t.Fatal(err)
		}
		buf, err := json.MarshalIndent(got, "", "\t")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenFile, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d figure5 rows)", goldenFile, len(got.Figure5))
		return
	}

	buf, err := os.ReadFile(goldenFile)
	if err != nil {
		t.Fatalf("reading golden file (run with -update to create): %v", err)
	}
	var want goldenData
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatalf("parsing %s: %v", goldenFile, err)
	}

	if got.Accesses != want.Accesses || got.Seed != want.Seed {
		t.Fatalf("golden parameters changed: got %d/%d, want %d/%d",
			got.Accesses, got.Seed, want.Accesses, want.Seed)
	}
	if len(got.Figure5) != len(want.Figure5) {
		t.Fatalf("Figure5 rows = %d, want %d", len(got.Figure5), len(want.Figure5))
	}
	for i := range want.Figure5 {
		if !reflect.DeepEqual(got.Figure5[i], want.Figure5[i]) {
			t.Errorf("Figure5 row %s/%s/%s diverged:\n got  %+v\n want %+v",
				want.Figure5[i].Workload, want.Figure5[i].PageSize, want.Figure5[i].Technique,
				got.Figure5[i], want.Figure5[i])
		}
	}
	if got.Headline != want.Headline {
		t.Errorf("Headline geomeans diverged: got %v, want %v", got.Headline, want.Headline)
	}
	if !reflect.DeepEqual(got.TableII, want.TableII) {
		t.Errorf("TableII diverged:\n got  %+v\n want %+v", got.TableII, want.TableII)
	}
	if !reflect.DeepEqual(got.TableVI, want.TableVI) {
		t.Errorf("TableVI diverged:\n got  %+v\n want %+v", got.TableVI, want.TableVI)
	}
}
