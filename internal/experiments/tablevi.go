package experiments

import (
	"context"

	"agilepaging/internal/pagetable"
	"agilepaging/internal/sweep"
	"agilepaging/internal/trace"
	"agilepaging/internal/walker"
	"agilepaging/internal/workload"
)

// TableVIRow is one row of paper Table VI: the fraction of TLB misses
// served at each agile switch level while using 4K pages, assuming no page
// walk caches, plus the resulting average memory accesses per miss.
type TableVIRow struct {
	Workload string
	// Fractions[0] = full shadow, [1..4] = switch at L4..L1 (1..4 trailing
	// nested levels), [5] = fully nested.
	Fractions [6]float64
	AvgRefs   float64
}

// TableVI reproduces paper Table VI by running every workload under agile
// paging at 4K with the page walk caches and nested TLB disabled, and
// classifying every TLB miss (the BadgerTrap step).
func TableVI(workloads []string, accesses int, seed int64) ([]TableVIRow, error) {
	return TableVISweep(context.Background(), sweep.Config{}, workloads, accesses, seed)
}

// TableVISweep is TableVI on an explicit sweep configuration: one job per
// workload, each with its own private miss log. On error the returned rows
// hold whatever workloads completed.
func TableVISweep(ctx context.Context, cfg sweep.Config, workloads []string, accesses int, seed int64) ([]TableVIRow, error) {
	if workloads == nil {
		workloads = workload.Names()
	}
	jobs := make([]sweep.Job[Options], 0, len(workloads))
	for _, name := range workloads {
		o := DefaultOptions(walker.ModeAgile, pagetable.Size4K)
		o.Accesses = accesses
		o.Seed = seed
		o.DisablePWC = true
		o.DisableNTLB = true
		jobs = append(jobs, sweep.Job[Options]{Key: "table6/" + name, Workload: name, Options: o})
	}
	out := sweep.Execute(ctx, cfg, jobs, func(_ context.Context, j sweep.Job[Options]) (TableVIRow, error) {
		// The miss log is created inside the job so concurrent jobs never
		// share an observer.
		var miss trace.MissLog
		o := j.Options
		o.MissLog = &miss
		if _, err := RunProfile(j.Workload, o); err != nil {
			return TableVIRow{}, err
		}
		s := miss.Summary()
		row := TableVIRow{Workload: j.Workload, AvgRefs: s.AvgRefs()}
		for c := 0; c < 6; c++ {
			row.Fractions[c] = s.Fraction(c)
		}
		return row, nil
	})
	rows, _ := partialOutcome(jobs, out)
	return rows, out.Err
}
