package experiments

import (
	"agilepaging/internal/core"
	"agilepaging/internal/pagetable"
	"agilepaging/internal/vmm"
	"agilepaging/internal/walker"
)

// AblationRow reports one design-choice ablation.
type AblationRow struct {
	Name     string
	Workload string
	WalkOv   float64
	VMMOv    float64
	Traps    uint64
	Notes    string
}

// Ablations quantifies the paper's individual design choices:
//
//   - the §IV hardware A/D optimization (trap-free dirty tracking)
//   - the §IV context-switch pointer cache
//   - the two nested⇒shadow revert policies of §III-C against no revert
//   - the MMU caches (PWC + nested TLB) the walk costs assume
func Ablations(accesses int, seed int64) ([]AblationRow, error) {
	var rows []AblationRow
	add := func(name, wl string, o Options, notes string) error {
		o.Accesses = accesses
		o.Seed = seed
		rep, err := RunProfile(wl, o)
		if err != nil {
			return err
		}
		rows = append(rows, AblationRow{
			Name: name, Workload: wl,
			WalkOv: rep.WalkOverhead(), VMMOv: rep.VMMOverhead(),
			Traps: rep.VMM.TotalTraps(), Notes: notes,
		})
		return nil
	}

	// The §IV hardware A/D optimization: a read-then-write microbenchmark
	// maximizes dirty-tracking traps (every page is first shadowed clean,
	// then written).
	addAD := func(name string, o Options, notes string) error {
		o.Accesses = accesses
		o.Seed = seed
		rep, _, err := RunOps(name, readThenWriteOps(512), o)
		if err != nil {
			return err
		}
		rows = append(rows, AblationRow{
			Name: name, Workload: "read-then-write µbench",
			WalkOv: rep.WalkOverhead(), VMMOv: rep.VMMOverhead(),
			Traps: rep.VMM.TotalTraps(), Notes: notes,
		})
		return nil
	}
	base := DefaultOptions(walker.ModeAgile, pagetable.Size4K)
	base.AgileStartNested = false
	if err := addAD("agile baseline", base, "dirty tracking via VM exits"); err != nil {
		return nil, err
	}
	hwad := base
	hwad.HardwareAD = true
	if err := addAD("agile + hw A/D", hwad, "§IV: A/D via extra walk, no trap"); err != nil {
		return nil, err
	}
	shadowBase := DefaultOptions(walker.ModeShadow, pagetable.Size4K)
	if err := addAD("shadow baseline", shadowBase, "for reference"); err != nil {
		return nil, err
	}
	shadowHW := shadowBase
	shadowHW.HardwareAD = true
	if err := addAD("shadow + hw A/D", shadowHW, "§IV opt applied to pure shadow"); err != nil {
		return nil, err
	}

	// Context-switch cache: a switch-heavy microbenchmark (the §IV target).
	addOps := func(name string, o Options, notes string) error {
		o.Accesses = accesses
		o.Seed = seed
		rep, _, err := RunOps(name, ctxSwitchOps(2000), o)
		if err != nil {
			return err
		}
		rows = append(rows, AblationRow{
			Name: name, Workload: "ctx-switch µbench",
			WalkOv: rep.WalkOverhead(), VMMOv: rep.VMMOverhead(),
			Traps: rep.VMM.Traps[vmm.TrapContextSwitch], Notes: notes,
		})
		return nil
	}
	ctxBase := DefaultOptions(walker.ModeAgile, pagetable.Size4K)
	ctxBase.AgileStartNested = false
	if err := addOps("agile, no ctx cache", ctxBase, "every CR3 write exits"); err != nil {
		return nil, err
	}
	ctxCache := ctxBase
	ctxCache.CtxSwitchCache = 8
	if err := addOps("agile + ctx cache(8)", ctxCache, "§IV: gptr=>sptr hardware cache"); err != nil {
		return nil, err
	}

	// Revert policies.
	for _, p := range []core.RevertPolicy{core.RevertNone, core.RevertReset, core.RevertDirtyScan} {
		o := DefaultOptions(walker.ModeAgile, pagetable.Size4K)
		o.RevertPolicy = p
		if err := add("agile revert="+p.String(), "memcached", o, "§III-C nested=>shadow policy"); err != nil {
			return nil, err
		}
	}

	// MMU caches.
	noPWC := DefaultOptions(walker.ModeAgile, pagetable.Size4K)
	noPWC.DisablePWC = true
	noPWC.DisableNTLB = true
	if err := add("agile, no PWC/NTLB", "graph500", noPWC, "architectural walk costs"); err != nil {
		return nil, err
	}
	withPWC := DefaultOptions(walker.ModeAgile, pagetable.Size4K)
	if err := add("agile, PWC+NTLB", "graph500", withPWC, ""); err != nil {
		return nil, err
	}
	return rows, nil
}

// trapCostReference exposes the cost model used by the ablations (for
// documentation output).
func trapCostReference() vmm.CostModel { return vmm.DefaultCostModel() }
