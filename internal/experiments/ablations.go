package experiments

import (
	"context"

	"agilepaging/internal/core"
	"agilepaging/internal/cpu"
	"agilepaging/internal/pagetable"
	"agilepaging/internal/sweep"
	"agilepaging/internal/vmm"
	"agilepaging/internal/walker"
)

// AblationRow reports one design-choice ablation.
type AblationRow struct {
	Name     string
	Workload string
	WalkOv   float64
	VMMOv    float64
	Traps    uint64
	Notes    string
}

// ablationKind selects how an ablation job is executed.
type ablationKind int

const (
	// ablationProfile runs a named synthetic workload profile.
	ablationProfile ablationKind = iota
	// ablationReadThenWrite runs the A/D-trap microbenchmark op stream.
	ablationReadThenWrite
	// ablationCtxSwitch runs the context-switch microbenchmark op stream.
	ablationCtxSwitch
)

// ablationSpec is the options payload of one ablation job.
type ablationSpec struct {
	kind  ablationKind
	opts  Options
	notes string
}

// Ablations quantifies the paper's individual design choices:
//
//   - the §IV hardware A/D optimization (trap-free dirty tracking)
//   - the §IV context-switch pointer cache
//   - the two nested⇒shadow revert policies of §III-C against no revert
//   - the MMU caches (PWC + nested TLB) the walk costs assume
func Ablations(accesses int, seed int64) ([]AblationRow, error) {
	return AblationsSweep(context.Background(), sweep.Config{}, accesses, seed)
}

// AblationsSweep is Ablations on an explicit sweep configuration. Rows come
// back in declaration order regardless of worker count.
func AblationsSweep(ctx context.Context, cfg sweep.Config, accesses int, seed int64) ([]AblationRow, error) {
	var jobs []sweep.Job[ablationSpec]
	add := func(name, wl string, kind ablationKind, o Options, notes string) {
		o.Accesses = accesses
		o.Seed = seed
		// Only profile-based ablations are canonical cells; the µbench
		// kinds build their own op streams outside the stream cache and
		// are keyed by nothing.
		var dedup string
		if kind == ablationProfile {
			dedup, _ = CellKey(wl, o)
		}
		jobs = append(jobs, sweep.Job[ablationSpec]{
			Key:      name,
			Workload: wl,
			Options:  ablationSpec{kind: kind, opts: o, notes: notes},
			DedupKey: dedup,
		})
	}

	// The §IV hardware A/D optimization: a read-then-write microbenchmark
	// maximizes dirty-tracking traps (every page is first shadowed clean,
	// then written).
	base := DefaultOptions(walker.ModeAgile, pagetable.Size4K)
	base.AgileStartNested = false
	add("agile baseline", "read-then-write µbench", ablationReadThenWrite, base, "dirty tracking via VM exits")
	hwad := base
	hwad.HardwareAD = true
	add("agile + hw A/D", "read-then-write µbench", ablationReadThenWrite, hwad, "§IV: A/D via extra walk, no trap")
	shadowBase := DefaultOptions(walker.ModeShadow, pagetable.Size4K)
	add("shadow baseline", "read-then-write µbench", ablationReadThenWrite, shadowBase, "for reference")
	shadowHW := shadowBase
	shadowHW.HardwareAD = true
	add("shadow + hw A/D", "read-then-write µbench", ablationReadThenWrite, shadowHW, "§IV opt applied to pure shadow")

	// Context-switch cache: a switch-heavy microbenchmark (the §IV target).
	ctxBase := DefaultOptions(walker.ModeAgile, pagetable.Size4K)
	ctxBase.AgileStartNested = false
	add("agile, no ctx cache", "ctx-switch µbench", ablationCtxSwitch, ctxBase, "every CR3 write exits")
	ctxCache := ctxBase
	ctxCache.CtxSwitchCache = 8
	add("agile + ctx cache(8)", "ctx-switch µbench", ablationCtxSwitch, ctxCache, "§IV: gptr=>sptr hardware cache")

	// Revert policies.
	for _, p := range []core.RevertPolicy{core.RevertNone, core.RevertReset, core.RevertDirtyScan} {
		o := DefaultOptions(walker.ModeAgile, pagetable.Size4K)
		o.RevertPolicy = p
		add("agile revert="+p.String(), "memcached", ablationProfile, o, "§III-C nested=>shadow policy")
	}

	// MMU caches.
	noPWC := DefaultOptions(walker.ModeAgile, pagetable.Size4K)
	noPWC.DisablePWC = true
	noPWC.DisableNTLB = true
	add("agile, no PWC/NTLB", "graph500", ablationProfile, noPWC, "architectural walk costs")
	withPWC := DefaultOptions(walker.ModeAgile, pagetable.Size4K)
	add("agile, PWC+NTLB", "graph500", ablationProfile, withPWC, "")

	out := sweep.Execute(ctx, cfg, jobs, runAblation)
	rows, _ := partialOutcome(jobs, out)
	return rows, out.Err
}

// runAblation executes one ablation job.
func runAblation(_ context.Context, j sweep.Job[ablationSpec]) (AblationRow, error) {
	s := j.Options
	var rep cpu.Report
	var err error
	switch s.kind {
	case ablationProfile:
		rep, err = RunProfile(j.Workload, s.opts)
	case ablationReadThenWrite:
		rep, _, err = RunOps(j.Key, readThenWriteOps(512), s.opts)
	case ablationCtxSwitch:
		rep, _, err = RunOps(j.Key, ctxSwitchOps(2000), s.opts)
	}
	if err != nil {
		return AblationRow{}, err
	}
	traps := rep.VMM.TotalTraps()
	if s.kind == ablationCtxSwitch {
		traps = rep.VMM.Traps[vmm.TrapContextSwitch]
	}
	return AblationRow{
		Name: j.Key, Workload: j.Workload,
		WalkOv: rep.WalkOverhead(), VMMOv: rep.VMMOverhead(),
		Traps: traps, Notes: s.notes,
	}, nil
}

// trapCostReference exposes the cost model used by the ablations (for
// documentation output).
func trapCostReference() vmm.CostModel { return vmm.DefaultCostModel() }
