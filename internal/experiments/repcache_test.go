package experiments

import (
	"context"
	"reflect"
	"testing"

	"agilepaging/internal/pagetable"
	"agilepaging/internal/repcache"
	"agilepaging/internal/sweep"
	"agilepaging/internal/trace"
	"agilepaging/internal/walker"
)

// The report cache must be invisible in results: a warm re-run of any
// driver returns bit-identical output to its cold run, with the second run
// served from stored reports. Each subtest runs its driver cold (cache
// reset), then warm, deep-compares, and asserts the warm run actually hit.

func TestCachedVsFreshBitIdentity(t *testing.T) {
	const accesses, seed = 2000, 42
	drivers := []struct {
		name string
		run  func() (any, error)
		// uncached drivers run real simulations every time (µbench or
		// instrumented jobs) but must still produce identical results.
		wantHits bool
	}{
		{"Figure5", func() (any, error) {
			return Figure5Sweep(context.Background(), sweep.Config{}, []string{"dedup", "mcf"}, accesses, seed)
		}, true},
		{"TableV", func() (any, error) {
			return TableVSweep(context.Background(), sweep.Config{}, accesses, seed)
		}, true},
		{"Sensitivity", func() (any, error) {
			return SensitivitySweep(context.Background(), sweep.Config{}, accesses, seed)
		}, true},
		{"SHSP", func() (any, error) {
			return SHSPComparisonSweep(context.Background(), sweep.Config{}, []string{"memcached"}, accesses, seed)
		}, true},
		{"Ablations", func() (any, error) {
			return AblationsSweep(context.Background(), sweep.Config{}, accesses, seed)
		}, true},
		{"ValidateModel", func() (any, error) {
			return ValidateModelSweep(context.Background(), sweep.Config{}, "dedup", accesses, seed)
		}, true},
		{"TableVI", func() (any, error) {
			return TableVISweep(context.Background(), sweep.Config{}, []string{"dedup"}, accesses, seed)
		}, false},
		{"TableI", func() (any, error) {
			return TableISweep(context.Background(), sweep.Config{})
		}, false},
	}
	for _, d := range drivers {
		t.Run(d.name, func(t *testing.T) {
			repcache.Reset()
			cold, err := d.run()
			if err != nil {
				t.Fatal(err)
			}
			warm, err := d.run()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(cold, warm) {
				t.Fatal("warm (cached) results differ from cold run")
			}
			hits, _, _ := repcache.Stats()
			if d.wantHits && hits == 0 {
				t.Fatal("warm run recorded no cache hits")
			}
			if !d.wantHits && hits != 0 {
				t.Fatalf("uncacheable driver recorded %d cache hits", hits)
			}
		})
	}
}

// TestInstrumentedRunsBypassCache pins the bypass-by-construction property:
// a run with any observer attached never consults or populates the report
// cache (its observers must fire on every run), and CellKey refuses to key
// it.
func TestInstrumentedRunsBypassCache(t *testing.T) {
	repcache.Reset()
	o := DefaultOptions(walker.ModeAgile, pagetable.Size4K)
	o.Accesses = 1500

	if _, ok := CellKey("dedup", o); !ok {
		t.Fatal("plain options should be cacheable")
	}
	withMiss := o
	withMiss.MissLog = &trace.MissLog{}
	if _, ok := CellKey("dedup", withMiss); ok {
		t.Fatal("CellKey accepted an instrumented cell")
	}

	// Two instrumented runs: both must simulate (the log fills twice) and
	// neither may touch the cache.
	var firstEntries, secondEntries int
	for i := 0; i < 2; i++ {
		var log trace.MissLog
		run := o
		run.MissLog = &log
		if _, err := RunProfile("dedup", run); err != nil {
			t.Fatal(err)
		}
		n := log.Summary().Total
		if n == 0 {
			t.Fatalf("run %d: miss log empty — the run did not really simulate", i)
		}
		if i == 0 {
			firstEntries = int(n)
		} else {
			secondEntries = int(n)
		}
	}
	if firstEntries != secondEntries {
		t.Fatalf("instrumented runs diverged: %d vs %d logged misses", firstEntries, secondEntries)
	}
	if info := repcache.Info(); info.Hits != 0 || info.Misses != 0 || info.Reports != 0 {
		t.Fatalf("instrumented runs touched the report cache: %+v", info)
	}

	// An uninstrumented run of the same cell populates the cache, and a
	// later instrumented run still bypasses the now-present entry.
	if _, err := RunProfile("dedup", o); err != nil {
		t.Fatal(err)
	}
	if info := repcache.Info(); info.Misses != 1 || info.Reports != 1 {
		t.Fatalf("uninstrumented run did not populate the cache: %+v", info)
	}
	var log trace.MissLog
	run := o
	run.MissLog = &log
	if _, err := RunProfile("dedup", run); err != nil {
		t.Fatal(err)
	}
	if log.Summary().Total == 0 {
		t.Fatal("instrumented run was served from cache (log empty)")
	}
	if info := repcache.Info(); info.Hits != 0 {
		t.Fatalf("instrumented run consumed a cache hit: %+v", info)
	}
}

// TestSweepDedupSharesCells verifies Figure5Sweep's DedupKeys fold repeat
// cells: the same sweep run twice back-to-back after a reset costs one
// simulation per unique cell in total (second run all hits), and a single
// sweep's job count equals its unique cell count (native is per-page-size
// distinct, so all 8 cells of one workload are unique here).
func TestSweepDedupSharesCells(t *testing.T) {
	repcache.Reset()
	if _, err := Figure5Sweep(context.Background(), sweep.Config{}, []string{"dedup"}, 1500, 42); err != nil {
		t.Fatal(err)
	}
	_, misses, _ := repcache.Stats()
	if misses != 8 {
		t.Fatalf("cold Figure5 sweep simulated %d cells, want 8", misses)
	}
	if _, err := Figure5Sweep(context.Background(), sweep.Config{}, []string{"dedup"}, 1500, 42); err != nil {
		t.Fatal(err)
	}
	hits, misses2, _ := repcache.Stats()
	if misses2 != 8 || hits != 8 {
		t.Fatalf("warm sweep: %d hits / %d misses, want 8/8", hits, misses2)
	}
}

// TestCrossExperimentCellSharing pins the tentpole motivation: the
// sensitivity sweep's unperturbed (×1.0/×1.0) cells are the same cells
// Figure 5 measures, so running sensitivity after Figure 5 (same accesses
// and seed) reuses those reports instead of re-simulating them.
func TestCrossExperimentCellSharing(t *testing.T) {
	repcache.Reset()
	const accesses, seed = 1500, 42
	if _, err := Figure5Sweep(context.Background(), sweep.Config{}, []string{"dedup"}, accesses, seed); err != nil {
		t.Fatal(err)
	}
	hitsBefore, _, _ := repcache.Stats()
	if _, err := SensitivitySweep(context.Background(), sweep.Config{}, accesses, seed); err != nil {
		t.Fatal(err)
	}
	hitsAfter, _, _ := repcache.Stats()
	// The ×1.0/×1.0 row measures nested, shadow, agile at 4K — all three
	// already simulated by Figure 5.
	if got := hitsAfter - hitsBefore; got < 3 {
		t.Fatalf("sensitivity reused %d Figure 5 cells, want >= 3", got)
	}
}
