package experiments

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"agilepaging/internal/vmm"
	"agilepaging/internal/walker"
)

// FormatTableI renders Table I in the paper's layout.
func FormatTableI(rows []TableIRow) string {
	var b strings.Builder
	b.WriteString("Table I: trade-offs of the memory-virtualization techniques (measured)\n")
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "\tBase Native\tNested Paging\tShadow Paging\tAgile Paging")
	cell := func(f func(TableIRow) string) string {
		parts := make([]string, len(rows))
		for i, r := range rows {
			parts[i] = f(r)
		}
		return strings.Join(parts, "\t")
	}
	fmt.Fprintf(w, "TLB hit\t%s\n", cell(func(r TableIRow) string { return r.TLBHit }))
	fmt.Fprintf(w, "Max mem access on TLB miss\t%s\n", cell(func(r TableIRow) string { return fmt.Sprintf("%d", r.MaxRefs) }))
	fmt.Fprintf(w, "Avg mem access on TLB miss\t%s\n", cell(func(r TableIRow) string { return fmt.Sprintf("%.2f", r.AvgRefs) }))
	fmt.Fprintf(w, "Page table updates\t%s\n", cell(func(r TableIRow) string { return r.UpdateMode }))
	fmt.Fprintf(w, "  (VMM cycles per update)\t%s\n", cell(func(r TableIRow) string { return fmt.Sprintf("%.0f", r.UpdateCycles) }))
	fmt.Fprintf(w, "Hardware support\t%s\n", cell(func(r TableIRow) string { return r.Hardware }))
	w.Flush()
	return b.String()
}

// FormatTableII renders Table II.
func FormatTableII(rows []TableIIRow) string {
	var b strings.Builder
	b.WriteString("Table II: memory references per walk by degree of nesting\n")
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "degree\tnested levels\tmem refs")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%d\t%d\n", r.Degree, r.NestedLevels, r.Refs)
	}
	w.Flush()
	return b.String()
}

// FormatWalkTraces renders the Figure 1 access sequences.
func FormatWalkTraces(traces map[string][]walker.Access) string {
	var b strings.Builder
	b.WriteString("Figure 1: chronological page-walk accesses per technique\n")
	for _, name := range []string{"native", "nested", "shadow", "agile"} {
		accs, ok := traces[name]
		if !ok {
			continue
		}
		fmt.Fprintf(&b, "%-8s (%2d refs): ", name, len(accs))
		for i, a := range accs {
			if i > 0 {
				b.WriteString(" -> ")
			}
			fmt.Fprintf(&b, "%s.L%d", a.Table, 4-a.Level)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// FormatFigure5 renders the Figure 5 sweep as a table of overhead
// percentages (walk + VMM components). Cells that failed (a partial sweep
// under sweep.CollectAll) are appended with their one-line causes.
func FormatFigure5(f *Figure5Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5: execution time overheads (page walk + VMM), %d accesses/run\n", f.Accesses)
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "workload\tconfig\twalk%\tvmm%\ttotal%")
	for _, r := range f.Rows {
		fmt.Fprintf(w, "%s\t%s:%s\t%.1f\t%.1f\t%.1f\n",
			r.Workload, r.PageSize, shortTech(r.Technique),
			100*r.WalkOv, 100*r.VMMOv, 100*r.TotalOv())
	}
	w.Flush()
	if len(f.Failed) > 0 {
		fmt.Fprintf(&b, "FAILED cells (%d):\n", len(f.Failed))
		for _, c := range f.Failed {
			fmt.Fprintf(&b, "  %s\tFAILED: %s\n", c.Key, c.Err)
		}
	}
	return b.String()
}

func shortTech(m walker.Mode) string {
	switch m {
	case walker.ModeNative:
		return "B"
	case walker.ModeNested:
		return "N"
	case walker.ModeShadow:
		return "S"
	case walker.ModeAgile:
		return "A"
	}
	return "?"
}

// FormatHeadline renders the §VII.A summary.
func FormatHeadline(h HeadlineResult) string {
	var b strings.Builder
	b.WriteString("Headline (paper §VII.A): agile vs best constituent and vs native\n")
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "workload\tpage\tagile vs best(N,S)\tagile vs native\tbest other")
	for _, r := range h.Rows {
		fmt.Fprintf(w, "%s\t%s\t%+.1f%%\t%+.1f%%\t%s\n",
			r.Workload, r.PageSize, 100*r.AgileVsBest, 100*r.AgileVsNative, r.BestOther)
	}
	fmt.Fprintf(w, "geomean 4K\t\t%+.1f%%\t%+.1f%%\t\n", 100*h.GeoAgileVsBest4K, 100*h.GeoAgileVsNative4K)
	fmt.Fprintf(w, "geomean 2M\t\t%+.1f%%\t%+.1f%%\t\n", 100*h.GeoAgileVsBest2M, 100*h.GeoAgileVsNative2M)
	w.Flush()
	return b.String()
}

// FormatTableVI renders Table VI.
func FormatTableVI(rows []TableVIRow) string {
	var b strings.Builder
	b.WriteString("Table VI: TLB misses by agile mode (4K pages, no PWC/NTLB)\n")
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "workload\tshadow\tL4\tL3\tL2\tL1\tnested\tavg refs")
	fmt.Fprintln(w, "(mem accesses)\t4\t8\t12\t16\t20\t24\t")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%.1f%%\t%.1f%%\t%.1f%%\t%.1f%%\t%.1f%%\t%.1f%%\t%.2f\n",
			r.Workload,
			100*r.Fractions[0], 100*r.Fractions[1], 100*r.Fractions[2],
			100*r.Fractions[3], 100*r.Fractions[4], 100*r.Fractions[5],
			r.AvgRefs)
	}
	w.Flush()
	return b.String()
}

// FormatAblations renders the ablation sweep.
func FormatAblations(rows []AblationRow) string {
	var b strings.Builder
	b.WriteString("Ablations: design choices of §III-C and §IV\n")
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "configuration\tworkload\twalk%\tvmm%\ttraps\tnotes")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%s\t%.1f\t%.1f\t%d\t%s\n",
			r.Name, r.Workload, 100*r.WalkOv, 100*r.VMMOv, r.Traps, r.Notes)
	}
	w.Flush()
	return b.String()
}

// FormatModelValidation renders a direct-vs-projected comparison.
func FormatModelValidation(v ModelValidation) string {
	return fmt.Sprintf(
		"Model validation (%s): direct walk %.1f%% vmm %.1f%% | Table-IV projection walk %.1f%% vmm %.1f%%\n",
		v.Workload, 100*v.DirectWalkOv, 100*v.DirectVMMOv,
		100*v.ProjectedWalkOv, 100*v.ProjectedVMMOv)
}

// FormatTrapCosts documents the VMtrap cost model in effect.
func FormatTrapCosts() string {
	c := trapCostReference()
	var b strings.Builder
	b.WriteString("VMtrap cost model (cycles; paper §II-B/§VI band):\n")
	for k := vmm.TrapKind(0); k < vmm.NumTrapKinds; k++ {
		fmt.Fprintf(&b, "  %-16s %d\n", k.String(), c.Cycles[k])
	}
	return b.String()
}

// FormatSHSP renders the §VII.C comparison.
func FormatSHSP(rows []SHSPRow) string {
	var b strings.Builder
	b.WriteString("SHSP comparison (paper §VII.C): temporal-only switching vs agile, 4K pages\n")
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "workload\tnested%\tshadow%\tSHSP%\tagile%\tSHSP switches")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%.1f\t%.1f\t%.1f\t%.1f\t%d\n",
			r.Workload, 100*r.Nested, 100*r.Shadow, 100*r.SHSP, 100*r.Agile, r.SHSPSwitches)
	}
	w.Flush()
	return b.String()
}

// FormatFigure5Chart renders the Figure 5 sweep as stacked horizontal bars
// (the paper's visual form): '=' is the page-walk component, '#' the VMM
// component, on a shared scale.
func FormatFigure5Chart(f *Figure5Result) string {
	const width = 60
	maxTotal := 0.0
	for _, r := range f.Rows {
		if t := r.TotalOv(); t > maxTotal {
			maxTotal = t
		}
	}
	if maxTotal == 0 {
		maxTotal = 1
	}
	var b strings.Builder
	b.WriteString("Figure 5 (chart): execution time overheads; '='=page walk, '#'=VMM\n")
	lastWorkload := ""
	for _, r := range f.Rows {
		if r.Workload != lastWorkload {
			if lastWorkload != "" {
				b.WriteString("\n")
			}
			fmt.Fprintf(&b, "%s\n", r.Workload)
			lastWorkload = r.Workload
		}
		walkCols := int(r.WalkOv / maxTotal * width)
		vmmCols := int(r.VMMOv / maxTotal * width)
		if r.VMMOv > 0 && vmmCols == 0 {
			vmmCols = 1
		}
		fmt.Fprintf(&b, "  %s:%s |%s%s%s %.0f%%\n",
			r.PageSize, shortTech(r.Technique),
			strings.Repeat("=", walkCols), strings.Repeat("#", vmmCols),
			strings.Repeat(" ", width+1-walkCols-vmmCols),
			100*r.TotalOv())
	}
	return b.String()
}

// FormatTableV renders the workload characterization.
func FormatTableV(rows []TableVRow) string {
	var b strings.Builder
	b.WriteString("Table V: workload characteristics (measured on base native, 4K)\n")
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "workload\tfootprint\tpattern\tprocs\tMPKI\tmiss ratio\twalk ov%\tPT updates")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%dMB\t%s\t%d\t%.0f\t%.2f\t%.1f\t%d\n",
			r.Workload, r.FootprintBytes>>20, r.Pattern, r.Processes,
			r.MPKI, r.MissRatio, 100*r.WalkOverhead, r.PTUpdateEvents)
	}
	w.Flush()
	return b.String()
}
