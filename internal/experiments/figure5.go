package experiments

import (
	"context"
	"fmt"
	"math"

	"agilepaging/internal/cpu"
	"agilepaging/internal/pagetable"
	"agilepaging/internal/perfmodel"
	"agilepaging/internal/sweep"
	"agilepaging/internal/trace"
	"agilepaging/internal/vmm"
	"agilepaging/internal/walker"
	"agilepaging/internal/workload"
)

// Figure5Row is one bar of paper Figure 5: execution-time overhead split
// into page-walk and VMM-intervention components.
type Figure5Row struct {
	Workload  string
	PageSize  pagetable.Size
	Technique walker.Mode
	WalkOv    float64
	VMMOv     float64
	Report    cpu.Report
}

// TotalOv is the bar height.
func (r Figure5Row) TotalOv() float64 { return r.WalkOv + r.VMMOv }

// Figure5Result holds the full sweep. Under sweep.CollectAll a failing
// cell does not empty the result: Rows holds every completed cell and
// Failed attributes the rest, so the figure renders partially alongside
// the returned error.
type Figure5Result struct {
	Rows     []Figure5Row
	Failed   []FailedCell
	Accesses int
	Seed     int64
}

// Get returns the row for (workload, page size, technique).
func (f *Figure5Result) Get(w string, ps pagetable.Size, tech walker.Mode) (Figure5Row, bool) {
	for _, r := range f.Rows {
		if r.Workload == w && r.PageSize == ps && r.Technique == tech {
			return r, true
		}
	}
	return Figure5Row{}, false
}

// Figure5 runs the full evaluation sweep of paper Figure 5: every workload
// of Table V under the eight configurations {4K,2M} × {base native, nested,
// shadow, agile}. workloads == nil runs all eight. The sweep runs on the
// default worker pool; use Figure5Sweep for cancellation, a worker bound,
// or progress reporting.
func Figure5(workloads []string, accesses int, seed int64) (*Figure5Result, error) {
	return Figure5Sweep(context.Background(), sweep.Config{}, workloads, accesses, seed)
}

// Figure5Sweep is Figure5 on an explicit sweep configuration. Results are
// in declaration order (workload-major, then page size, then technique),
// identical to a serial run for any worker count. On error the result is
// still non-nil and carries whatever cells completed (plus their failure
// attributions) — under cfg.ErrorPolicy == sweep.CollectAll that is every
// healthy cell.
func Figure5Sweep(ctx context.Context, cfg sweep.Config, workloads []string, accesses int, seed int64) (*Figure5Result, error) {
	if workloads == nil {
		workloads = workload.Names()
	}
	var jobs []sweep.Job[Options]
	for _, name := range workloads {
		for _, ps := range PageSizes() {
			for _, tech := range Techniques() {
				o := DefaultOptions(tech, ps)
				o.Accesses = accesses
				o.Seed = seed
				dedup, _ := CellKey(name, o)
				jobs = append(jobs, sweep.Job[Options]{
					Key:      fmt.Sprintf("%s/%s/%s", name, ps, tech),
					Workload: name,
					Options:  o,
					DedupKey: dedup,
				})
			}
		}
	}
	out := sweep.Execute(ctx, cfg, jobs, func(_ context.Context, j sweep.Job[Options]) (Figure5Row, error) {
		rep, err := RunProfile(j.Workload, j.Options)
		if err != nil {
			return Figure5Row{}, err
		}
		return Figure5Row{
			Workload:  j.Workload,
			PageSize:  j.Options.PageSize,
			Technique: j.Options.Technique,
			WalkOv:    rep.WalkOverhead(),
			VMMOv:     rep.VMMOverhead(),
			Report:    rep,
		}, nil
	})
	rows, failed := partialOutcome(jobs, out)
	return &Figure5Result{Rows: rows, Failed: failed, Accesses: accesses, Seed: seed}, out.Err
}

// HeadlineRow summarizes the paper's §VII.A claims for one workload and
// page size.
type HeadlineRow struct {
	Workload string
	PageSize pagetable.Size
	// AgileVsBest is the execution-time improvement of agile paging over
	// the better of nested and shadow (positive = agile faster).
	AgileVsBest float64
	// AgileVsNative is the slowdown of agile relative to base native
	// (positive = agile slower; the paper reports <4% for all workloads).
	AgileVsNative float64
	BestOther     walker.Mode
}

// HeadlineResult aggregates the per-workload rows.
type HeadlineResult struct {
	Rows []HeadlineRow
	// Geometric means over workloads, per page size.
	GeoAgileVsBest4K   float64
	GeoAgileVsNative4K float64
	GeoAgileVsBest2M   float64
	GeoAgileVsNative2M float64
}

// Headline derives the §VII.A headline numbers from a Figure 5 sweep.
func Headline(f *Figure5Result) HeadlineResult {
	var out HeadlineResult
	type acc struct {
		best, native []float64
	}
	byPS := map[pagetable.Size]*acc{pagetable.Size4K: {}, pagetable.Size2M: {}}
	seen := map[[2]string]bool{}
	for _, r := range f.Rows {
		key := [2]string{r.Workload, r.PageSize.String()}
		if seen[key] {
			continue
		}
		seen[key] = true
		native, _ := f.Get(r.Workload, r.PageSize, walker.ModeNative)
		nested, _ := f.Get(r.Workload, r.PageSize, walker.ModeNested)
		shadow, _ := f.Get(r.Workload, r.PageSize, walker.ModeShadow)
		agile, ok := f.Get(r.Workload, r.PageSize, walker.ModeAgile)
		if !ok {
			continue
		}
		best, bestTech := nested.TotalOv(), walker.ModeNested
		if shadow.TotalOv() < best {
			best, bestTech = shadow.TotalOv(), walker.ModeShadow
		}
		row := HeadlineRow{
			Workload:      r.Workload,
			PageSize:      r.PageSize,
			AgileVsBest:   (1+best)/(1+agile.TotalOv()) - 1,
			AgileVsNative: (1+agile.TotalOv())/(1+native.TotalOv()) - 1,
			BestOther:     bestTech,
		}
		out.Rows = append(out.Rows, row)
		a := byPS[r.PageSize]
		a.best = append(a.best, 1+row.AgileVsBest)
		a.native = append(a.native, 1+row.AgileVsNative)
	}
	out.GeoAgileVsBest4K = geomean(byPS[pagetable.Size4K].best) - 1
	out.GeoAgileVsNative4K = geomean(byPS[pagetable.Size4K].native) - 1
	out.GeoAgileVsBest2M = geomean(byPS[pagetable.Size2M].best) - 1
	out.GeoAgileVsNative2M = geomean(byPS[pagetable.Size2M].native) - 1
	return out
}

func geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	s := 0.0
	for _, x := range xs {
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// ModelValidation compares directly-simulated agile paging with the
// paper's two-step linear-model projection (Table IV) for one workload.
type ModelValidation struct {
	Workload        string
	DirectWalkOv    float64
	DirectVMMOv     float64
	ProjectedWalkOv float64
	ProjectedVMMOv  float64
}

// ValidateModel runs the paper's methodology end to end for one workload at
// 4K: measure native/nested/shadow, collect the agile run's miss and trap
// logs (the BadgerTrap and trace-cmd analogs), project agile performance
// with the Table IV model, and report it against direct simulation. The
// four constituent measurements are independent and run as one sweep.
func ValidateModel(name string, accesses int, seed int64) (ModelValidation, error) {
	return ValidateModelSweep(context.Background(), sweep.Config{}, name, accesses, seed)
}

// validateRun is one ValidateModel measurement plus the logs it collected.
type validateRun struct {
	rep   cpu.Report
	miss  trace.MissLog
	traps trace.TrapLog
}

// ValidateModelSweep is ValidateModel on an explicit sweep configuration.
func ValidateModelSweep(ctx context.Context, cfg sweep.Config, name string, accesses int, seed int64) (ModelValidation, error) {
	type spec struct {
		opts        Options
		miss, traps bool
	}
	mk := func(tech walker.Mode) Options {
		o := DefaultOptions(tech, pagetable.Size4K)
		o.Accesses = accesses
		o.Seed = seed
		return o
	}
	// The native and nested measurements are plain cells and carry their
	// content key for sweep dedup and report caching; the shadow and agile
	// jobs attach logs at run time, which makes them instrumented — they
	// must simulate for real, so they declare no DedupKey.
	dedup := func(o Options) string { k, _ := CellKey(name, o); return k }
	nativeOpts, nestedOpts := mk(walker.ModeNative), mk(walker.ModeNested)
	jobs := []sweep.Job[spec]{
		{Key: name + "/native", Workload: name, Options: spec{opts: nativeOpts}, DedupKey: dedup(nativeOpts)},
		{Key: name + "/nested", Workload: name, Options: spec{opts: nestedOpts}, DedupKey: dedup(nestedOpts)},
		{Key: name + "/shadow", Workload: name, Options: spec{opts: mk(walker.ModeShadow), traps: true}},
		{Key: name + "/agile", Workload: name, Options: spec{opts: mk(walker.ModeAgile), miss: true, traps: true}},
	}
	runs, err := sweep.Run(ctx, cfg, jobs, func(_ context.Context, j sweep.Job[spec]) (validateRun, error) {
		var out validateRun
		o := j.Options.opts
		if j.Options.miss {
			o.MissLog = &out.miss
		}
		if j.Options.traps {
			o.TrapLog = &out.traps
		}
		rep, err := RunProfile(j.Workload, o)
		if err != nil {
			return validateRun{}, err
		}
		out.rep = rep
		return out, nil
	})
	if err != nil {
		return ModelValidation{}, err
	}
	nativeRep, nestedRep, shadowRep, agileRep := runs[0].rep, runs[1].rep, runs[2].rep, runs[3].rep
	shadowTraps := runs[2].traps
	agileMiss, agileTraps := runs[3].miss, runs[3].traps

	ideal := nativeRep.IdealCycles
	toMeasured := func(r cpu.Report) perfmodel.Measured {
		return perfmodel.Measured{
			ExecCycles:       r.ExecCycles(),
			TLBMissCycles:    r.WalkCycles,
			TLBMisses:        r.Machine.TLBMisses,
			HypervisorCycles: r.VMMCycles,
		}
	}
	avoided := trace.AvoidedCycles(&shadowTraps, &agileTraps, vmm.DefaultCostModel())
	proj, err := perfmodel.ProjectAgile(
		toMeasured(nestedRep), toMeasured(shadowRep), ideal,
		agileMiss.Summary().NestedFractions(),
		nativeRep.Machine.TLBMisses, avoided,
	)
	if err != nil {
		return ModelValidation{}, fmt.Errorf("experiments: %s projection: %w", name, err)
	}
	return ModelValidation{
		Workload:        name,
		DirectWalkOv:    agileRep.WalkOverhead(),
		DirectVMMOv:     agileRep.VMMOverhead(),
		ProjectedWalkOv: proj.PageWalk,
		ProjectedVMMOv:  proj.VMM,
	}, nil
}
