package experiments

import (
	"agilepaging/internal/pagetable"
	"agilepaging/internal/walker"
	"agilepaging/internal/workload"
)

// TableVRow characterizes one workload as paper Table V does, extended with
// the measured properties that qualified workloads for the study: the
// paper selects workloads "with high TLB-miss overhead (more than 5 MPKI)".
type TableVRow struct {
	Workload       string
	FootprintBytes uint64
	Pattern        string
	Processes      int
	// Measured on the base-native 4K configuration.
	MPKI           float64
	MissRatio      float64
	WalkOverhead   float64
	PTUpdateEvents uint64 // guest page-table update events (maps + unmaps)
}

// TableV measures the workload-characterization table.
func TableV(accesses int, seed int64) ([]TableVRow, error) {
	rows := make([]TableVRow, 0, len(workload.Profiles))
	for _, prof := range workload.Profiles {
		o := DefaultOptions(walker.ModeNative, pagetable.Size4K)
		o.Accesses = accesses
		o.Seed = seed
		rep, err := RunProfile(prof.Name, o)
		if err != nil {
			return nil, err
		}
		missRatio := 0.0
		if rep.Machine.Accesses > 0 {
			missRatio = float64(rep.Machine.TLBMisses) / float64(rep.Machine.Accesses)
		}
		procs := prof.Processes
		if procs == 0 {
			procs = 1
		}
		rows = append(rows, TableVRow{
			Workload:       prof.Name,
			FootprintBytes: prof.FootprintBytes,
			Pattern:        prof.Pattern.String(),
			Processes:      procs,
			MPKI:           rep.MPKI(),
			MissRatio:      missRatio,
			WalkOverhead:   rep.WalkOverhead(),
			PTUpdateEvents: rep.OS.MapsInstalled + rep.OS.Unmapped,
		})
	}
	return rows, nil
}
