package experiments

import (
	"context"

	"agilepaging/internal/pagetable"
	"agilepaging/internal/sweep"
	"agilepaging/internal/walker"
	"agilepaging/internal/workload"
)

// TableVRow characterizes one workload as paper Table V does, extended with
// the measured properties that qualified workloads for the study: the
// paper selects workloads "with high TLB-miss overhead (more than 5 MPKI)".
type TableVRow struct {
	Workload       string
	FootprintBytes uint64
	Pattern        string
	Processes      int
	// Measured on the base-native 4K configuration.
	MPKI           float64
	MissRatio      float64
	WalkOverhead   float64
	PTUpdateEvents uint64 // guest page-table update events (maps + unmaps)
}

// TableV measures the workload-characterization table.
func TableV(accesses int, seed int64) ([]TableVRow, error) {
	return TableVSweep(context.Background(), sweep.Config{}, accesses, seed)
}

// TableVSweep is TableV on an explicit sweep configuration: one
// base-native job per workload profile. On error the returned rows hold
// whatever workloads completed (all healthy ones under CollectAll).
func TableVSweep(ctx context.Context, cfg sweep.Config, accesses int, seed int64) ([]TableVRow, error) {
	profiles := workload.Profiles()
	jobs := make([]sweep.Job[Options], 0, len(profiles))
	for _, prof := range profiles {
		o := DefaultOptions(walker.ModeNative, pagetable.Size4K)
		o.Accesses = accesses
		o.Seed = seed
		dedup, _ := CellKey(prof.Name, o)
		jobs = append(jobs, sweep.Job[Options]{Key: "table5/" + prof.Name, Workload: prof.Name, Options: o, DedupKey: dedup})
	}
	out := sweep.Execute(ctx, cfg, jobs, func(_ context.Context, j sweep.Job[Options]) (TableVRow, error) {
		prof, _ := workload.ProfileByName(j.Workload)
		rep, err := RunProfile(j.Workload, j.Options)
		if err != nil {
			return TableVRow{}, err
		}
		missRatio := 0.0
		if rep.Machine.Accesses > 0 {
			missRatio = float64(rep.Machine.TLBMisses) / float64(rep.Machine.Accesses)
		}
		procs := prof.Processes
		if procs == 0 {
			procs = 1
		}
		return TableVRow{
			Workload:       prof.Name,
			FootprintBytes: prof.FootprintBytes,
			Pattern:        prof.Pattern.String(),
			Processes:      procs,
			MPKI:           rep.MPKI(),
			MissRatio:      missRatio,
			WalkOverhead:   rep.WalkOverhead(),
			PTUpdateEvents: rep.OS.MapsInstalled + rep.OS.Unmapped,
		}, nil
	})
	rows, _ := partialOutcome(jobs, out)
	return rows, out.Err
}
