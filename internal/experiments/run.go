// Package experiments contains one driver per table and figure of the
// paper's evaluation (§VI–§VII), mapping simulator output to the same rows
// and series the paper reports. See DESIGN.md for the per-experiment index.
package experiments

import (
	"fmt"

	"agilepaging/internal/core"
	"agilepaging/internal/cpu"
	"agilepaging/internal/pagetable"
	"agilepaging/internal/repcache"
	"agilepaging/internal/telemetry"
	"agilepaging/internal/trace"
	"agilepaging/internal/walker"
	"agilepaging/internal/workload"
)

// Options parameterizes one simulation run.
type Options struct {
	Technique walker.Mode
	PageSize  pagetable.Size
	Accesses  int
	Seed      int64

	// Warmup is the number of steady-phase accesses executed before all
	// statistics are reset, so measurements reflect steady state (the
	// paper's runs-to-completion amortize cold shadow construction the same
	// way). 0 selects Accesses/2; negative disables warmup.
	Warmup int

	// AgileStartNested enables the paper's short-lived/small-process policy
	// (§III-C): agile processes start fully nested and build shadow state
	// only once TLB-miss overhead justifies it. DefaultOptions enables it;
	// microbenchmarks that study walk structure disable it.
	AgileStartNested bool

	// UseSHSP replaces agile paging's manager with the prior-work SHSP
	// baseline (paper §VII.C): whole-process temporal switching.
	UseSHSP bool

	// Structural knobs (zero values = paper baseline).
	DisablePWC     bool
	DisableNTLB    bool
	HardwareAD     bool
	CtxSwitchCache int
	RevertPolicy   core.RevertPolicy // used when Technique is agile
	TLBScale       int               // 0 = default

	// AgileWriteThreshold overrides the Shadow⇒Nested write threshold
	// (0 = paper default of 2). The adaptation-curve experiment raises it
	// to stretch the learning window over several epochs so the sampled
	// series shows the mediated⇒direct transition.
	AgileWriteThreshold int

	// Optional instrumentation.
	MissLog *trace.MissLog
	TrapLog *trace.TrapLog

	// Metrics attaches an epoch-based telemetry recorder; like the logs it
	// attaches at the start of the measured window (after warmup) and its
	// final partial epoch is flushed when the run ends. WalkEvents attaches
	// a bounded per-walk event ring for Chrome-trace export. Neither
	// perturbs simulated results (see TestTelemetryPurity).
	Metrics    *telemetry.Recorder
	WalkEvents *telemetry.EventRing
}

// DefaultOptions returns the baseline run options for a technique and page
// size. The default run length keeps the full Figure 5 sweep in the tens of
// seconds; scale Accesses up for tighter statistics.
func DefaultOptions(tech walker.Mode, ps pagetable.Size) Options {
	return Options{
		Technique:        tech,
		PageSize:         ps,
		Accesses:         120_000,
		Seed:             42,
		RevertPolicy:     core.RevertDirtyScan,
		AgileStartNested: true,
	}
}

// warmupCount resolves the warmup policy.
func warmupCount(o Options) int {
	if o.Warmup < 0 {
		return 0
	}
	if o.Warmup == 0 {
		return o.Accesses / 2
	}
	return o.Warmup
}

// machineConfig translates Options into a cpu.Config.
func machineConfig(o Options) cpu.Config {
	cfg := cpu.DefaultConfig(o.Technique, o.PageSize)
	cfg.EnablePWC = !o.DisablePWC
	cfg.EnableNTLB = !o.DisableNTLB
	cfg.HardwareAD = o.HardwareAD
	cfg.CtxSwitchCache = o.CtxSwitchCache
	cfg.Agile.Revert = o.RevertPolicy
	if o.AgileWriteThreshold > 0 {
		cfg.Agile.WriteThreshold = o.AgileWriteThreshold
	}
	if o.UseSHSP {
		cfg.UseSHSP = true
		cfg.SHSP = core.DefaultSHSP()
	}
	if o.AgileStartNested {
		cfg.Agile.StartNested = true
		cfg.Agile.StartDelayCycles = 500_000
		cfg.Agile.MissOverheadThreshold = 0.06
	}
	if o.TLBScale > 0 {
		cfg.TLBScale = o.TLBScale
	}
	return cfg
}

// instrumented reports whether o attaches an observer (miss/trap log,
// telemetry recorder, walk-event ring). Instrumented runs must simulate for
// real every time — their value is the observer's side effects, which a
// cached report cannot replay — so they bypass the report cache entirely.
func instrumented(o Options) bool {
	return o.MissLog != nil || o.TrapLog != nil || o.Metrics != nil || o.WalkEvents != nil
}

// cellKey derives the canonical report-cache key for one simulation cell:
// the machine configuration as the run will actually use it (after the
// one-core-per-thread bump runCell applies) plus the stream identity and
// warmup split. Keep this in lockstep with runCell.
func cellKey(prof workload.Profile, cfg cpu.Config, o Options) string {
	if prof.Threads > cfg.Cores {
		cfg.Cores = prof.Threads
	}
	warm := warmupCount(o)
	return repcache.KeyFor(cfg, prof, warm+o.Accesses, warm, o.Seed)
}

// CellKey returns the canonical content key of the simulation cell
// (workload, o) — the key RunProfile memoizes its report under — and
// whether the cell is memoizable at all. Instrumented cells (attached
// logs, telemetry) and unknown workloads report false: they never enter
// the cache, so they must not be deduplicated against anything either.
// Sweep drivers use this as the sweep.Job DedupKey.
func CellKey(name string, o Options) (string, bool) {
	if instrumented(o) {
		return "", false
	}
	prof, ok := workload.ProfileByName(name)
	if !ok {
		return "", false
	}
	return cellKey(prof, machineConfig(o), o), true
}

// RunProfile simulates one named workload under the given options and
// returns the measurement report.
func RunProfile(name string, o Options) (cpu.Report, error) {
	prof, ok := workload.ProfileByName(name)
	if !ok {
		return cpu.Report{}, fmt.Errorf("experiments: unknown workload %q", name)
	}
	return runScaled(prof, machineConfig(o), o)
}

// runScaled is RunProfile with an explicit machine configuration (the
// sensitivity sweep perturbs cost-model fields before running). It is the
// funnel every profile-based cell goes through, and therefore where report
// memoization happens: an uninstrumented cell asks the report cache first
// and simulates only on a miss, so a cell revisited by a later experiment
// (or a concurrent sweep job, via singleflight) costs a map lookup instead
// of a simulation. The machine is a pure function of (cfg, stream), pinned
// by the golden and equivalence tests, so the cached report is bit-identical
// to re-running. Instrumented runs simulate unconditionally.
func runScaled(prof workload.Profile, cfg cpu.Config, o Options) (cpu.Report, error) {
	if instrumented(o) {
		return runCell(prof, cfg, o)
	}
	return repcache.Do(cellKey(prof, cfg, o), func() (cpu.Report, error) {
		return runCell(prof, cfg, o)
	})
}

// runCell executes one simulation cell for real.
func runCell(prof workload.Profile, cfg cpu.Config, o Options) (cpu.Report, error) {
	if prof.Threads > cfg.Cores {
		// Multithreaded workloads get one core per thread (private TLBs,
		// shared address space), as on the paper's 24-vCPU machine.
		cfg.Cores = prof.Threads
	}
	// Sweeps revisit a handful of geometries thousands of times; acquiring
	// from the machine pool replaces full stack construction with an
	// allocation-free Reset on repeat visits (see internal/cpu/pool.go).
	m, err := cpu.AcquireMachine(cfg)
	if err != nil {
		return cpu.Report{}, err
	}
	rep, err := runStream(m, prof, o)
	if err == nil {
		// Only clean runs recycle; a failed run's machine state is suspect.
		cpu.ReleaseMachine(m)
	}
	return rep, err
}

// runStream replays the shared op stream for (prof, o) on m: warmup ops,
// measurement reset, measured ops, telemetry flush. Every technique and
// sweep cell asking for the same (profile, page size, accesses, seed)
// replays one cached packed stream (workload.SharedStream), so stream
// generation is paid once per sweep instead of once per run. Consumption
// is chunked: decoded chunks feed the machine's batched fast path through
// one reusable buffer, and — because SharedStream publishes chunks as the
// generator produces them — the head of a cold stream executes while its
// tail is still generating. The warmup/measure split lands exactly after
// the warm-th OpAccess, wherever in a chunk that falls, matching the
// whole-slice AccessBoundary split this replaces (pinned by the golden
// test).
func runStream(m *cpu.Machine, prof workload.Profile, o Options) (cpu.Report, error) {
	warm := warmupCount(o)
	stream := workload.SharedStream(prof, o.PageSize, warm+o.Accesses, o.Seed)
	r := stream.Reader()
	defer r.Close()
	fail := func(err error) (cpu.Report, error) {
		return cpu.Report{}, fmt.Errorf("experiments: %s/%v/%v: %w", prof.Name, o.Technique, o.PageSize, err)
	}
	if warm <= 0 {
		attachLogs(m, o)
	}
	base, pending := 0, warm
	for pending > 0 {
		ops, ok := r.Next()
		if !ok {
			// Stream shorter than the warmup window: everything above was
			// warmup (the old split == Len() case).
			break
		}
		idx, seen := splitAfterAccesses(ops, pending)
		if seen < pending {
			pending -= seen
			if err := m.RunOps(ops, base); err != nil {
				return fail(err)
			}
			base += len(ops)
			continue
		}
		if err := m.RunOps(ops[:idx], base); err != nil {
			return fail(err)
		}
		pending = 0
		// End of warmup: measure steady state only. Logs attach here so
		// traces cover the measured window.
		m.ResetMeasurement()
		attachLogs(m, o)
		if err := m.RunOps(ops[idx:], base+idx); err != nil {
			return fail(err)
		}
		base += len(ops)
	}
	if pending > 0 {
		m.ResetMeasurement()
		attachLogs(m, o)
	}
	if err := m.RunChunks(r.Next, base); err != nil {
		return fail(err)
	}
	m.FlushTelemetry()
	return m.Report(prof.Name), nil
}

// splitAfterAccesses returns the index just past the n-th OpAccess in ops
// and the number of accesses seen (seen == n when the boundary lies within
// the chunk; otherwise idx == len(ops)).
func splitAfterAccesses(ops []workload.Op, n int) (idx, seen int) {
	for i := range ops {
		if ops[i].Kind == workload.OpAccess {
			seen++
			if seen == n {
				return i + 1, seen
			}
		}
	}
	return len(ops), seen
}

// RunOps simulates a fixed op stream (microbenchmarks).
func RunOps(name string, ops []workload.Op, o Options) (cpu.Report, *cpu.Machine, error) {
	m, err := cpu.New(machineConfig(o))
	if err != nil {
		return cpu.Report{}, nil, err
	}
	attachLogs(m, o)
	if err := m.RunOps(ops, 0); err != nil {
		return cpu.Report{}, nil, err
	}
	m.FlushTelemetry()
	return m.Report(name), m, nil
}

func attachLogs(m *cpu.Machine, o Options) {
	if o.MissLog != nil {
		m.SetMissObserver(o.MissLog.Observer())
	}
	if o.TrapLog != nil && m.VM != nil {
		m.VM.SetTrapObserver(o.TrapLog.Observer())
	}
	if o.Metrics != nil {
		m.SetTelemetry(o.Metrics)
	}
	if o.WalkEvents != nil {
		m.SetWalkEventRing(o.WalkEvents)
	}
}

// Techniques lists the four configurations of Figure 5 in paper order.
// It returns a fresh slice each call so concurrent sweep jobs can never
// observe a caller's mutation (the drivers run on the sweep worker pool).
func Techniques() []walker.Mode {
	return []walker.Mode{walker.ModeNative, walker.ModeNested, walker.ModeShadow, walker.ModeAgile}
}

// PageSizes lists the two page-size policies of Figure 5. Like Techniques
// it returns a fresh slice per call.
func PageSizes() []pagetable.Size {
	return []pagetable.Size{pagetable.Size4K, pagetable.Size2M}
}
