package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
)

// WriteFigure5CSV emits the Figure 5 sweep as CSV (one row per bar) for
// external plotting.
func WriteFigure5CSV(w io.Writer, f *Figure5Result) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"workload", "page_size", "technique",
		"walk_overhead", "vmm_overhead", "total_overhead",
		"tlb_misses", "walk_refs", "vm_exits", "avg_refs_per_miss", "mpki",
	}); err != nil {
		return err
	}
	for _, r := range f.Rows {
		rec := []string{
			r.Workload, r.PageSize.String(), r.Technique.String(),
			fmt.Sprintf("%.6f", r.WalkOv),
			fmt.Sprintf("%.6f", r.VMMOv),
			fmt.Sprintf("%.6f", r.TotalOv()),
			fmt.Sprintf("%d", r.Report.Machine.TLBMisses),
			fmt.Sprintf("%d", r.Report.Machine.WalkRefs),
			fmt.Sprintf("%d", r.Report.VMM.TotalTraps()),
			fmt.Sprintf("%.4f", r.Report.AvgRefsPerMiss()),
			fmt.Sprintf("%.4f", r.Report.MPKI()),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTableVICSV emits the Table VI classification as CSV.
func WriteTableVICSV(w io.Writer, rows []TableVIRow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"workload", "shadow", "l4", "l3", "l2", "l1", "nested", "avg_refs",
	}); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{r.Workload}
		for c := 0; c < 6; c++ {
			rec = append(rec, fmt.Sprintf("%.6f", r.Fractions[c]))
		}
		rec = append(rec, fmt.Sprintf("%.4f", r.AvgRefs))
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
