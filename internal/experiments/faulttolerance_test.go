package experiments

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"agilepaging/internal/cpu"
	"agilepaging/internal/repcache"
	"agilepaging/internal/sweep"
	"agilepaging/internal/workload"
)

// faultCells builds the eight dedup cells ({4K,2M} × four techniques) the
// way Figure5Sweep declares them, so fault tests drive real simulation
// jobs through the same repcache funnel.
func faultCells(accesses int, seed int64) []sweep.Job[Options] {
	var jobs []sweep.Job[Options]
	for _, ps := range PageSizes() {
		for _, tech := range Techniques() {
			o := DefaultOptions(tech, ps)
			o.Accesses = accesses
			o.Seed = seed
			dedup, _ := CellKey("dedup", o)
			jobs = append(jobs, sweep.Job[Options]{
				Key:      fmt.Sprintf("dedup/%s/%s", ps, tech),
				Workload: "dedup",
				Options:  o,
				DedupKey: dedup,
			})
		}
	}
	return jobs
}

func runFaultCell(_ context.Context, j sweep.Job[Options]) (cpu.Report, error) {
	return RunProfile(j.Workload, j.Options)
}

// TestCollectAllRetryAcceptance is the issue's acceptance scenario: a sweep
// with one permanently panicking cell and one transiently failing cell,
// under CollectAll + Retry{Attempts: 2}, completes without crashing the
// process, retries the flake to success, and returns every healthy cell
// bit-identical to a clean serial run.
func TestCollectAllRetryAcceptance(t *testing.T) {
	jobs := faultCells(3000, 42)

	repcache.Reset()
	baseline := sweep.Execute(context.Background(), sweep.Config{Workers: 1}, jobs, runFaultCell)
	if baseline.Err != nil {
		t.Fatal(baseline.Err)
	}
	repcache.Reset()

	panicKey, flakeKey := jobs[2].Key, jobs[5].Key
	inj := sweep.NewInjector(
		sweep.FaultSpec{Key: panicKey, Kind: sweep.FaultPanic},
		sweep.FaultSpec{Key: flakeKey, Execution: 1, Kind: sweep.FaultError},
		sweep.FaultSpec{Key: flakeKey, Execution: 2, Kind: sweep.FaultError},
	)
	cfg := sweep.Config{Workers: 4, ErrorPolicy: sweep.CollectAll, Retry: sweep.Retry{Attempts: 2}}
	out := sweep.Execute(context.Background(), cfg, jobs, sweep.InjectFaults(inj, runFaultCell))

	if out.Err == nil {
		t.Fatal("panicking cell not reported")
	}
	for i, j := range jobs {
		if j.Key == panicKey {
			if out.Completed[i] {
				t.Errorf("%s: panicking cell marked completed", j.Key)
			}
			var pe *sweep.PanicError
			if !errors.As(out.JobErrors[i], &pe) {
				t.Errorf("%s: error is not a recovered panic: %v", j.Key, out.JobErrors[i])
			}
			continue
		}
		if !out.Completed[i] {
			t.Errorf("%s: healthy cell did not complete", j.Key)
			continue
		}
		if !reflect.DeepEqual(out.Results[i], baseline.Results[i]) {
			t.Errorf("%s: result differs from clean serial run", j.Key)
		}
	}
	if n := inj.Executions(flakeKey); n != 3 {
		t.Errorf("flaky cell executed %d times, want 3 (two injected failures + success)", n)
	}
	if n := inj.Executions(panicKey); n != 3 {
		t.Errorf("panicking cell executed %d times, want 3 (retry budget exhausted)", n)
	}
}

// TestFigure5CollectAllPartialTable verifies the driver-level contract: a
// Figure 5 sweep with a bad cell still returns every healthy row, marks
// the failure, and the formatted output carries both.
func TestFigure5CollectAllPartialTable(t *testing.T) {
	repcache.Reset()
	clean, err := Figure5Sweep(context.Background(), sweep.Config{Workers: 1}, []string{"dedup"}, 2000, 42)
	if err != nil {
		t.Fatal(err)
	}
	repcache.Reset()

	// Figure5Sweep owns its run function, so inject the failure through
	// its inputs: an unknown workload fails all eight of its cells while
	// dedup's eight complete.
	cfg := sweep.Config{Workers: 4, ErrorPolicy: sweep.CollectAll}
	res, err := Figure5Sweep(context.Background(), cfg, []string{"dedup", "nosuchworkload"}, 2000, 42)
	if err == nil {
		t.Fatal("unknown workload did not fail")
	}
	if res == nil {
		t.Fatal("partial result is nil")
	}
	if len(res.Rows) != len(clean.Rows) {
		t.Fatalf("partial rows = %d, want %d healthy rows", len(res.Rows), len(clean.Rows))
	}
	if !reflect.DeepEqual(res.Rows, clean.Rows) {
		t.Fatal("healthy rows differ from clean run")
	}
	if len(res.Failed) != 8 {
		t.Fatalf("failed cells = %d, want 8", len(res.Failed))
	}
	for _, c := range res.Failed {
		if c.Err == "" {
			t.Errorf("failed cell %s has no cause", c.Key)
		}
	}
	formatted := FormatFigure5(res)
	if !strings.Contains(formatted, "FAILED cells (8):") ||
		!strings.Contains(formatted, "nosuchworkload/4K/agile") {
		t.Errorf("formatted partial figure missing failure section:\n%s", formatted)
	}
}

// TestInterruptLeavesDiskCachesIntact simulates ^C mid-sweep with both
// disk cache tiers enabled and proves neither is corrupted: a fresh run
// over the same directories loads cleanly (zero disk errors, which would
// count validation failures) and reproduces the clean baseline exactly.
func TestInterruptLeavesDiskCachesIntact(t *testing.T) {
	const accesses, seed = 2000, 43

	repcache.Reset()
	workload.ResetStreamCache()
	clean, err := Figure5Sweep(context.Background(), sweep.Config{Workers: 1}, []string{"dedup"}, accesses, seed)
	if err != nil {
		t.Fatal(err)
	}

	repcache.SetDir(t.TempDir())
	workload.SetStreamCacheDir(t.TempDir())
	defer func() {
		repcache.SetDir("")
		workload.SetStreamCacheDir("")
		repcache.Reset()
		workload.ResetStreamCache()
	}()
	repcache.Reset()
	workload.ResetStreamCache()

	// Interrupt after two cells: the external cancellation stops the sweep
	// mid-flight while disk writes are underway.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := sweep.Config{
		Workers: 2,
		OnProgress: func(p sweep.Progress) {
			if p.Done >= 2 {
				cancel()
			}
		},
	}
	if _, err := Figure5Sweep(ctx, cfg, []string{"dedup"}, accesses, seed); !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted sweep err = %v, want context.Canceled", err)
	}

	// A fresh process over the same cache directories: memory tiers drop,
	// disk tiers must serve whatever the interrupted run persisted and
	// regenerate the rest — with zero validation failures.
	repcache.Reset()
	workload.ResetStreamCache()
	after, err := Figure5Sweep(context.Background(), sweep.Config{Workers: 1}, []string{"dedup"}, accesses, seed)
	if err != nil {
		t.Fatal(err)
	}
	if n := repcache.Info().DiskErrors; n != 0 {
		t.Errorf("report disk cache: %d errors after interrupt", n)
	}
	if n := workload.StreamCacheInfo().DiskErrors; n != 0 {
		t.Errorf("stream disk cache: %d errors after interrupt", n)
	}
	if !reflect.DeepEqual(after.Rows, clean.Rows) {
		t.Fatal("post-interrupt rows differ from the clean baseline")
	}
	if a, b := FormatFigure5(after), FormatFigure5(clean); a != b {
		t.Fatalf("formatted output differs after interrupt:\n--- after ---\n%s\n--- clean ---\n%s", a, b)
	}
}
