package experiments

import (
	"context"
	"fmt"

	"agilepaging/internal/memsim"
	"agilepaging/internal/pagetable"
	"agilepaging/internal/sweep"
	"agilepaging/internal/vmm"
	"agilepaging/internal/walker"
)

// TableIIRow is one row of paper Table II / one configuration of Figure 3:
// the memory references of a single virtualized walk at each degree of
// nesting.
type TableIIRow struct {
	Degree string // "shadow", "switch@L4".."switch@L1", "nested"
	// NestedLevels is the number of guest levels handled nested (0..4; 4
	// with GptrTranslated for full nested).
	NestedLevels int
	Refs         int
	// Accesses is the chronological reference trace (Figure 1/3 arrows).
	Accesses []walker.Access
}

// degreeFixture builds one VM + process with a single mapped page and the
// requested agile configuration, then performs one recorded hardware walk.
func degreeFixture(nestedLevels int, fullNested bool) (TableIIRow, error) {
	mem := memsim.New(256 << 20)
	cfg := vmm.DefaultConfig(walker.ModeAgile)
	cfg.RAMBytes = 64 << 20
	vm, err := vmm.New(mem, vmm.NopMMU{}, 1, cfg)
	if err != nil {
		return TableIIRow{}, err
	}
	ctx, err := vm.NewProcess(1)
	if err != nil {
		return TableIIRow{}, err
	}
	gva := uint64(0x7f12_3456_7000)
	gpa, err := vm.AllocGPA(pagetable.Size4K)
	if err != nil {
		return TableIIRow{}, err
	}
	if err := ctx.GPT().Map(gva, gpa, pagetable.Size4K, pagetable.FlagWrite|pagetable.FlagUser); err != nil {
		return TableIIRow{}, err
	}

	switch {
	case fullNested:
		ctx.SetFullNested(true)
	case nestedLevels == 0:
		if _, err := ctx.HandleShadowFault(gva, false); err != nil {
			return TableIIRow{}, err
		}
	default:
		// The node with 4-d trailing nested levels sits at level 4-d.
		nodeLevel := 4 - nestedLevels
		var node uint64
		if nodeLevel == 0 {
			node = ctx.GPT().Root()
		} else {
			e, err := ctx.GPT().EntryAt(gva, nodeLevel-1)
			if err != nil {
				return TableIIRow{}, err
			}
			node = e.Addr()
		}
		// Shadow-cover the upper levels first, then plant the switch.
		if _, err := ctx.HandleShadowFault(gva, false); err != nil {
			return TableIIRow{}, err
		}
		if err := ctx.PlantSwitch(node); err != nil {
			return TableIIRow{}, err
		}
	}

	w := walker.New(mem, nil, nil)
	w.SetRecording(true)
	res, fault := w.Walk(ctx.Regs(), gva, false)
	if fault != nil {
		return TableIIRow{}, fmt.Errorf("experiments: degree %d walk faulted: %w", nestedLevels, fault)
	}
	return TableIIRow{
		NestedLevels: res.NestedLevels,
		Refs:         res.Refs,
		Accesses:     res.Accesses,
	}, nil
}

// degreeSpec selects one walk fixture of Table II.
type degreeSpec struct {
	nested     int
	fullNested bool
}

// TableII reproduces paper Table II (and the access sequences of Figure 3):
// the number of memory references with each degree of nesting, from full
// shadow (4) through the four switch levels (8, 12, 16, 20) to full nested
// (24).
func TableII() ([]TableIIRow, error) {
	return TableIISweep(context.Background(), sweep.Config{})
}

// TableIISweep is TableII on an explicit sweep configuration: one job per
// degree of nesting, each building its own VM fixture.
func TableIISweep(ctx context.Context, cfg sweep.Config) ([]TableIIRow, error) {
	degrees := []struct {
		name string
		spec degreeSpec
	}{
		{"shadow only", degreeSpec{0, false}},
		{"switched at 4th level", degreeSpec{1, false}},
		{"switched at 3rd level", degreeSpec{2, false}},
		{"switched at 2nd level", degreeSpec{3, false}},
		{"switched at 1st level", degreeSpec{4, false}},
		{"nested only", degreeSpec{4, true}},
	}
	jobs := make([]sweep.Job[degreeSpec], 0, len(degrees))
	for _, d := range degrees {
		jobs = append(jobs, sweep.Job[degreeSpec]{Key: d.name, Options: d.spec})
	}
	out := sweep.Execute(ctx, cfg, jobs, func(_ context.Context, j sweep.Job[degreeSpec]) (TableIIRow, error) {
		row, err := degreeFixture(j.Options.nested, j.Options.fullNested)
		if err != nil {
			return TableIIRow{}, fmt.Errorf("%s: %w", j.Key, err)
		}
		row.Degree = j.Key
		return row, nil
	})
	rows, _ := partialOutcome(jobs, out)
	return rows, out.Err
}

// WalkTraces reproduces the numbered access sequences of paper Figure 1:
// one recorded walk per technique (native, nested, shadow, and agile with
// the leaf level nested — the blue escape path of Figure 1d).
func WalkTraces() (map[string][]walker.Access, error) {
	out := make(map[string][]walker.Access)

	// Native.
	mem := memsim.New(64 << 20)
	pt, err := pagetable.New(mem, pagetable.HostSpace{Mem: mem})
	if err != nil {
		return nil, err
	}
	if err := pt.Map(0x7f00_0000_0000, 0xabc000, pagetable.Size4K, pagetable.FlagWrite); err != nil {
		return nil, err
	}
	w := walker.New(mem, nil, nil)
	w.SetRecording(true)
	res, fault := w.Walk(walker.Regs{Mode: walker.ModeNative, Root: pt.Root()}, 0x7f00_0000_0000, false)
	if fault != nil {
		return nil, fault
	}
	out["native"] = res.Accesses

	// Virtualized techniques from the Table II fixtures.
	shadow, err := degreeFixture(0, false)
	if err != nil {
		return nil, err
	}
	out["shadow"] = shadow.Accesses
	nested, err := degreeFixture(4, true)
	if err != nil {
		return nil, err
	}
	out["nested"] = nested.Accesses
	agile, err := degreeFixture(1, false)
	if err != nil {
		return nil, err
	}
	out["agile"] = agile.Accesses
	return out, nil
}
