package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"agilepaging/internal/perfmodel"
	"agilepaging/internal/walker"
)

// MissRecord is one TLB miss as BadgerTrap would observe it: the faulting
// address plus the walk's classification.
type MissRecord struct {
	VA             uint64
	Refs           uint16
	NestedLevels   uint8 // 0 = full shadow, 1..4 = trailing nested levels
	GptrTranslated bool  // full nested walk (paid the gptr translation)
	Write          bool
	// Retry marks a re-walk of the same logical access: a store that missed
	// and then hit a read-only entry re-walks after the write-protection
	// upgrade, so one access can log twice. The retry record is kept (it is
	// a real walk the hardware performed, and Table VI counts it) but
	// marked, so consumers can separate logical accesses from walks.
	Retry bool
}

// MissLog accumulates TLB-miss records.
type MissLog struct {
	Records []MissRecord
}

// Observer returns a cpu.Machine miss-observer that appends to the log.
// write is the access's store bit; retry marks a repeated walk of the same
// logical access (see MissRecord.Retry).
func (l *MissLog) Observer() func(va uint64, write, retry bool, res walker.Result) {
	return func(va uint64, write, retry bool, res walker.Result) {
		l.Records = append(l.Records, MissRecord{
			VA:             va,
			Refs:           uint16(res.Refs),
			NestedLevels:   uint8(res.NestedLevels),
			GptrTranslated: res.GptrTranslated,
			Write:          write,
			Retry:          retry,
		})
	}
}

// MissSummary is the classification the paper's Table VI reports.
type MissSummary struct {
	Total uint64
	// ByClass[0] = full shadow, [1..4] = switch with d trailing nested
	// levels (the paper's L4..L1 columns), [5] = full nested.
	ByClass [6]uint64
	SumRefs uint64
	// Writes and Retries count the records carrying those flags; they ride
	// alongside the Table VI classes (which count every walk, retries
	// included, as the paper's BadgerTrap step does).
	Writes  uint64
	Retries uint64
}

// Fraction returns ByClass[c] / Total.
func (s MissSummary) Fraction(c int) float64 {
	if s.Total == 0 {
		return 0
	}
	return float64(s.ByClass[c]) / float64(s.Total)
}

// WriteFraction returns the share of misses caused by stores.
func (s MissSummary) WriteFraction() float64 {
	if s.Total == 0 {
		return 0
	}
	return float64(s.Writes) / float64(s.Total)
}

// RetryFraction returns the share of records that are write-upgrade
// re-walks of an already-logged access.
func (s MissSummary) RetryFraction() float64 {
	if s.Total == 0 {
		return 0
	}
	return float64(s.Retries) / float64(s.Total)
}

// AvgRefs is the average memory accesses per miss (Table VI last column).
func (s MissSummary) AvgRefs() float64 {
	if s.Total == 0 {
		return 0
	}
	return float64(s.SumRefs) / float64(s.Total)
}

// NestedFractions converts the summary into the perfmodel's F_Ni form:
// index i = fraction switching with the switch at level i (1 = top, which
// is NestedLevels == 4; 4 = leaf-only, NestedLevels == 1). Full-nested
// misses count toward F_N1 as the paper's most conservative class.
func (s MissSummary) NestedFractions() perfmodel.NestedFractions {
	var f perfmodel.NestedFractions
	if s.Total == 0 {
		return f
	}
	f[1] = s.Fraction(4) + s.Fraction(5) // switched at top level / fully nested
	f[2] = s.Fraction(3)
	f[3] = s.Fraction(2)
	f[4] = s.Fraction(1)
	return f
}

// Summary classifies the log.
func (l *MissLog) Summary() MissSummary {
	var s MissSummary
	for _, r := range l.Records {
		s.Total++
		s.SumRefs += uint64(r.Refs)
		if r.Write {
			s.Writes++
		}
		if r.Retry {
			s.Retries++
		}
		switch {
		case r.GptrTranslated:
			s.ByClass[5]++
		case r.NestedLevels == 0:
			s.ByClass[0]++
		default:
			d := int(r.NestedLevels)
			if d > 4 {
				d = 4
			}
			s.ByClass[d]++
		}
	}
	return s
}

// Save serializes the log.
func (l *MissLog) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if err := binary.Write(bw, binary.LittleEndian, missMagic); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(len(l.Records))); err != nil {
		return err
	}
	for _, r := range l.Records {
		var flags uint8
		if r.GptrTranslated {
			flags |= 1
		}
		if r.Write {
			flags |= 2
		}
		if r.Retry {
			flags |= 4
		}
		rec := missRecord{VA: r.VA, Refs: r.Refs, Nested: r.NestedLevels, Flags: flags}
		if err := binary.Write(bw, binary.LittleEndian, rec); err != nil {
			return err
		}
	}
	return bw.Flush()
}

type missRecord struct {
	VA     uint64
	Refs   uint16
	Nested uint8
	Flags  uint8
	_      uint32
}

// LoadMissLog deserializes a log written by Save.
func LoadMissLog(r io.Reader) (*MissLog, error) {
	br := bufio.NewReader(r)
	var magic uint32
	if err := binary.Read(br, binary.LittleEndian, &magic); err != nil {
		return nil, err
	}
	if magic != missMagic {
		return nil, fmt.Errorf("%w: magic %#x", ErrBadFormat, magic)
	}
	var n uint64
	if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	// The count is untrusted input: cap the pre-allocation and let append
	// grow the slice as records actually decode, so a forged header cannot
	// allocate unbounded memory (a truncated stream fails at the first
	// missing record instead).
	capHint := n
	if capHint > 1<<16 {
		capHint = 1 << 16
	}
	l := &MissLog{Records: make([]MissRecord, 0, capHint)}
	for i := uint64(0); i < n; i++ {
		var rec missRecord
		if err := binary.Read(br, binary.LittleEndian, &rec); err != nil {
			return nil, fmt.Errorf("trace: miss %d: %w", i, err)
		}
		l.Records = append(l.Records, MissRecord{
			VA: rec.VA, Refs: rec.Refs, NestedLevels: rec.Nested,
			GptrTranslated: rec.Flags&1 != 0, Write: rec.Flags&2 != 0,
			Retry: rec.Flags&4 != 0,
		})
	}
	return l, nil
}
