package trace

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"agilepaging/internal/pagetable"
	"agilepaging/internal/vmm"
	"agilepaging/internal/walker"
	"agilepaging/internal/workload"
)

func TestOpsRoundTrip(t *testing.T) {
	prof, _ := workload.ProfileByName("gcc")
	ops := workload.Collect(workload.New(prof, pagetable.Size2M, 500, 3), 0)
	var buf bytes.Buffer
	if err := WriteOps(&buf, ops); err != nil {
		t.Fatal(err)
	}
	got, err := ReadOps(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ops) {
		t.Fatalf("len %d != %d", len(got), len(ops))
	}
	for i := range ops {
		if got[i] != ops[i] {
			t.Fatalf("op %d: %+v != %+v", i, got[i], ops[i])
		}
	}
}

func TestOpsBadMagic(t *testing.T) {
	if _, err := ReadOps(bytes.NewReader([]byte{1, 2, 3, 4, 0, 0, 0, 0, 0, 0, 0, 0})); !errors.Is(err, ErrBadFormat) {
		t.Errorf("err = %v", err)
	}
	if _, err := ReadOps(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
}

func TestMissLogObserverAndSummary(t *testing.T) {
	var l MissLog
	obs := l.Observer()
	obs(0x1000, false, false, walker.Result{Refs: 4, NestedLevels: 0})
	obs(0x2000, true, false, walker.Result{Refs: 8, NestedLevels: 1})
	obs(0x3000, false, false, walker.Result{Refs: 20, NestedLevels: 4})
	obs(0x4000, true, true, walker.Result{Refs: 24, NestedLevels: 4, GptrTranslated: true})
	s := l.Summary()
	if s.Total != 4 {
		t.Fatalf("total = %d", s.Total)
	}
	// The observer must carry the access's write bit into the records (it
	// was silently dropped before) and the retry marker alongside it.
	if s.Writes != 2 || s.Retries != 1 {
		t.Errorf("writes/retries = %d/%d, want 2/1", s.Writes, s.Retries)
	}
	if s.WriteFraction() != 0.5 || s.RetryFraction() != 0.25 {
		t.Errorf("write/retry fractions = %v/%v", s.WriteFraction(), s.RetryFraction())
	}
	if !l.Records[1].Write || l.Records[1].Retry {
		t.Errorf("record 1 = %+v, want write-only", l.Records[1])
	}
	if !l.Records[3].Write || !l.Records[3].Retry {
		t.Errorf("record 3 = %+v, want write+retry", l.Records[3])
	}
	if s.ByClass[0] != 1 || s.ByClass[1] != 1 || s.ByClass[4] != 1 || s.ByClass[5] != 1 {
		t.Errorf("classes = %v", s.ByClass)
	}
	if s.AvgRefs() != 14 {
		t.Errorf("AvgRefs = %v", s.AvgRefs())
	}
	f := s.NestedFractions()
	if math.Abs(f[1]-0.5) > 1e-9 { // top-level switch + full nested
		t.Errorf("F_N1 = %v", f[1])
	}
	if math.Abs(f[4]-0.25) > 1e-9 { // leaf switch
		t.Errorf("F_N4 = %v", f[4])
	}
	if math.Abs(s.Fraction(0)-0.25) > 1e-9 {
		t.Errorf("shadow fraction = %v", s.Fraction(0))
	}
}

func TestMissLogRoundTrip(t *testing.T) {
	l := &MissLog{Records: []MissRecord{
		{VA: 0x7f0000001000, Refs: 4},
		{VA: 0x2000, Refs: 8, NestedLevels: 1, Write: true},
		{VA: 0x3000, Refs: 24, NestedLevels: 4, GptrTranslated: true},
		{VA: 0x4000, Refs: 9, NestedLevels: 2, Write: true, Retry: true},
	}}
	var buf bytes.Buffer
	if err := l.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadMissLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Records) != 4 {
		t.Fatalf("records = %d", len(got.Records))
	}
	for i := range l.Records {
		if got.Records[i] != l.Records[i] {
			t.Errorf("record %d: %+v != %+v", i, got.Records[i], l.Records[i])
		}
	}
	if _, err := LoadMissLog(bytes.NewReader([]byte{9, 9, 9, 9})); !errors.Is(err, ErrBadFormat) {
		t.Errorf("bad magic err = %v", err)
	}
}

func TestEmptySummaries(t *testing.T) {
	var l MissLog
	s := l.Summary()
	if s.AvgRefs() != 0 || s.Fraction(0) != 0 {
		t.Error("empty summary should be zero")
	}
	if s.NestedFractions().Sum() != 0 {
		t.Error("empty fractions")
	}
}

func TestTrapLogAvoidedCycles(t *testing.T) {
	shadow := &TrapLog{}
	agile := &TrapLog{}
	obs := shadow.Observer()
	for i := 0; i < 10; i++ {
		obs(vmm.TrapPTWrite)
	}
	obs(vmm.TrapTLBFlush)
	agile.Counts[vmm.TrapPTWrite] = 2
	agile.Counts[vmm.TrapShadowFill] = 5 // agile can have *more* of a kind
	costs := vmm.DefaultCostModel()
	want := 8*costs.Cycles[vmm.TrapPTWrite] + 1*costs.Cycles[vmm.TrapTLBFlush]
	if got := AvoidedCycles(shadow, agile, costs); got != want {
		t.Errorf("AvoidedCycles = %d, want %d", got, want)
	}
	f := FractionAvoided(shadow, agile)
	if math.Abs(f[vmm.TrapPTWrite]-0.8) > 1e-9 {
		t.Errorf("F_V(pt-write) = %v", f[vmm.TrapPTWrite])
	}
	if f[vmm.TrapShadowFill] != 0 {
		t.Error("excess agile traps must not produce negative fractions")
	}
	if shadow.Total() != 11 {
		t.Errorf("Total = %d", shadow.Total())
	}
}

func TestTrapLogRoundTrip(t *testing.T) {
	l := &TrapLog{}
	l.Counts[vmm.TrapShadowFill] = 42
	l.Counts[vmm.TrapContextSwitch] = 7
	var buf bytes.Buffer
	if err := l.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadTrapLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if *got != *l {
		t.Errorf("round trip: %+v != %+v", got, l)
	}
	if _, err := LoadTrapLog(bytes.NewReader([]byte{0, 0, 0, 0, 0, 0, 0, 0})); !errors.Is(err, ErrBadFormat) {
		t.Errorf("bad magic err = %v", err)
	}
}
