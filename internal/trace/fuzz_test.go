package trace

import (
	"bytes"
	"testing"

	"agilepaging/internal/pagetable"
	"agilepaging/internal/workload"
)

// FuzzReadOps: arbitrary bytes must never panic the op-stream decoder, and
// anything it accepts must re-encode.
func FuzzReadOps(f *testing.F) {
	var seed bytes.Buffer
	_ = WriteOps(&seed, []workload.Op{
		{Kind: workload.OpCreateProcess},
		{Kind: workload.OpMmap, VA: 0x1000, Len: 4096, Size: pagetable.Size4K},
		{Kind: workload.OpAccess, VA: 0x1000, Write: true},
	})
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0x31, 0x4f, 0x50, 0x41, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		ops, err := ReadOps(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteOps(&buf, ops); err != nil {
			t.Fatalf("re-encode of accepted stream failed: %v", err)
		}
	})
}

// FuzzLoadMissLog: same robustness contract for the miss-log decoder.
func FuzzLoadMissLog(f *testing.F) {
	var seed bytes.Buffer
	l := &MissLog{Records: []MissRecord{{VA: 0x1000, Refs: 4}}}
	_ = l.Save(&seed)
	f.Add(seed.Bytes())
	// A record exercising every flag bit (full-nested | write | retry).
	var flagged bytes.Buffer
	fl := &MissLog{Records: []MissRecord{
		{VA: 0x2000, Refs: 24, NestedLevels: 4, GptrTranslated: true, Write: true, Retry: true},
	}}
	_ = fl.Save(&flagged)
	f.Add(flagged.Bytes())
	f.Add([]byte{1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		log, err := LoadMissLog(bytes.NewReader(data))
		if err != nil {
			return
		}
		log.Summary() // must not panic
	})
}
