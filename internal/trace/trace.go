// Package trace records and replays the two artifact streams of the
// paper's evaluation methodology (§VI):
//
//   - Step 1 (trace-cmd + instrumented KVM): a log of VMM interventions by
//     type, from which the fraction of traps agile paging eliminates (F_Vi)
//     is derived.
//   - Step 2 (BadgerTrap): a log of TLB misses with their per-miss walk
//     classification, from which the fraction of misses served at each
//     agile switch level (F_Ni, paper Table VI) is derived.
//
// It also serializes workload op streams so runs can be captured once and
// replayed bit-identically across configurations (cmd/tracegen).
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"agilepaging/internal/pagetable"
	"agilepaging/internal/workload"
)

const (
	opMagic   = uint32(0x41504f31) // "APO1"
	missMagic = uint32(0x41504d31) // "APM1"
	trapMagic = uint32(0x41505431) // "APT1"
)

// ErrBadFormat reports a corrupt or foreign trace file.
var ErrBadFormat = errors.New("trace: bad file format")

// WriteOps serializes an op stream.
func WriteOps(w io.Writer, ops []workload.Op) error {
	bw := bufio.NewWriter(w)
	if err := binary.Write(bw, binary.LittleEndian, opMagic); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(len(ops))); err != nil {
		return err
	}
	for _, op := range ops {
		rec := opRecord{
			Kind: uint8(op.Kind), PID: int32(op.PID), VA: op.VA, Len: op.Len,
			Size: uint8(op.Size), N: int32(op.N), Core: int32(op.Core),
		}
		if op.Write {
			rec.Flags |= 1
		}
		if op.Fetch {
			rec.Flags |= 2
		}
		if err := binary.Write(bw, binary.LittleEndian, rec); err != nil {
			return err
		}
	}
	return bw.Flush()
}

type opRecord struct {
	Kind  uint8
	Size  uint8
	Flags uint8
	_     uint8
	PID   int32
	VA    uint64
	Len   uint64
	N     int32
	Core  int32
}

// ReadOps deserializes an op stream written by WriteOps.
func ReadOps(r io.Reader) ([]workload.Op, error) {
	br := bufio.NewReader(r)
	var magic uint32
	if err := binary.Read(br, binary.LittleEndian, &magic); err != nil {
		return nil, err
	}
	if magic != opMagic {
		return nil, fmt.Errorf("%w: magic %#x", ErrBadFormat, magic)
	}
	var n uint64
	if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	const maxOps = 1 << 30
	if n > maxOps {
		return nil, fmt.Errorf("%w: unreasonable op count %d", ErrBadFormat, n)
	}
	// Cap the pre-allocation: the count is untrusted, so grow incrementally
	// and let a truncated stream fail at the first missing record.
	capHint := n
	if capHint > 1<<16 {
		capHint = 1 << 16
	}
	ops := make([]workload.Op, 0, capHint)
	for i := uint64(0); i < n; i++ {
		var rec opRecord
		if err := binary.Read(br, binary.LittleEndian, &rec); err != nil {
			return nil, fmt.Errorf("trace: op %d: %w", i, err)
		}
		ops = append(ops, workload.Op{
			Kind: workload.OpKind(rec.Kind), PID: int(rec.PID), VA: rec.VA,
			Len: rec.Len, Size: pagetable.Size(rec.Size), Write: rec.Flags&1 != 0,
			N: int(rec.N), Core: int(rec.Core), Fetch: rec.Flags&2 != 0,
		})
	}
	return ops, nil
}
