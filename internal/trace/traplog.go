package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"agilepaging/internal/vmm"
)

// TrapLog counts VM exits by kind — the step-1 artifact from which the
// paper derives the fraction of VMM interventions agile paging eliminates
// (F_Vi in Table IV).
type TrapLog struct {
	Counts [vmm.NumTrapKinds]uint64
}

// Observer returns a vmm trap-observer that updates the log.
func (l *TrapLog) Observer() func(vmm.TrapKind) {
	return func(k vmm.TrapKind) { l.Counts[k]++ }
}

// Total sums all trap counts.
func (l *TrapLog) Total() uint64 {
	var n uint64
	for _, c := range l.Counts {
		n += c
	}
	return n
}

// AvoidedCycles computes Σ F_Vi·CE_i given the shadow-run log and the
// agile-run log for the same workload: the cycles of the interventions
// agile paging eliminated, valued with the cost model.
func AvoidedCycles(shadow, agile *TrapLog, costs vmm.CostModel) uint64 {
	var cycles uint64
	for k := vmm.TrapKind(0); k < vmm.NumTrapKinds; k++ {
		if shadow.Counts[k] > agile.Counts[k] {
			cycles += (shadow.Counts[k] - agile.Counts[k]) * costs.Cycles[k]
		}
	}
	return cycles
}

// FractionAvoided reports the per-kind F_Vi: the fraction of shadow-run
// traps of each kind that the agile run does not take.
func FractionAvoided(shadow, agile *TrapLog) [vmm.NumTrapKinds]float64 {
	var f [vmm.NumTrapKinds]float64
	for k := range shadow.Counts {
		if shadow.Counts[k] == 0 {
			continue
		}
		if agile.Counts[k] >= shadow.Counts[k] {
			continue
		}
		f[k] = float64(shadow.Counts[k]-agile.Counts[k]) / float64(shadow.Counts[k])
	}
	return f
}

// Save serializes the log.
func (l *TrapLog) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if err := binary.Write(bw, binary.LittleEndian, trapMagic); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(vmm.NumTrapKinds)); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, l.Counts); err != nil {
		return err
	}
	return bw.Flush()
}

// LoadTrapLog deserializes a log written by Save.
func LoadTrapLog(r io.Reader) (*TrapLog, error) {
	br := bufio.NewReader(r)
	var magic uint32
	if err := binary.Read(br, binary.LittleEndian, &magic); err != nil {
		return nil, err
	}
	if magic != trapMagic {
		return nil, fmt.Errorf("%w: magic %#x", ErrBadFormat, magic)
	}
	var n uint32
	if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if n != uint32(vmm.NumTrapKinds) {
		return nil, fmt.Errorf("%w: trap kind count %d", ErrBadFormat, n)
	}
	l := &TrapLog{}
	if err := binary.Read(br, binary.LittleEndian, &l.Counts); err != nil {
		return nil, err
	}
	return l, nil
}
