package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"agilepaging/internal/vmm"
)

func TestCountersDiff(t *testing.T) {
	prev := Counters{
		Clock: 1000, Accesses: 100, Writes: 10,
		TLBMisses: 5, Walks: 5, WalkRefs: 40,
		TrapCycles: 7000, MapsInstalled: 3,
		NestedNodes: 2, ProtectedPages: 8,
	}
	prev.WalksByNestedLevels[1] = 2
	prev.RefsByNestedLevels[1] = 16
	prev.VMExits[vmm.TrapPTWrite] = 4

	cur := Counters{
		Clock: 5000, Accesses: 300, Writes: 50,
		TLBMisses: 9, Walks: 9, WalkRefs: 70,
		TrapCycles: 9000, MapsInstalled: 5,
		NestedNodes: 6, ProtectedPages: 3,
	}
	cur.WalksByNestedLevels[1] = 7
	cur.RefsByNestedLevels[1] = 51
	cur.VMExits[vmm.TrapPTWrite] = 11

	d := cur.Diff(prev)
	if d.Clock != 4000 || d.Accesses != 200 || d.Writes != 40 {
		t.Errorf("clock/accesses/writes = %d/%d/%d", d.Clock, d.Accesses, d.Writes)
	}
	if d.TLBMisses != 4 || d.WalkRefs != 30 {
		t.Errorf("misses/refs = %d/%d", d.TLBMisses, d.WalkRefs)
	}
	if d.WalksByNestedLevels[1] != 5 || d.RefsByNestedLevels[1] != 35 {
		t.Errorf("by-level deltas = %d/%d", d.WalksByNestedLevels[1], d.RefsByNestedLevels[1])
	}
	if d.VMExits[vmm.TrapPTWrite] != 7 || d.VMExitTotal() != 7 {
		t.Errorf("vm exits = %v", d.VMExits)
	}
	// Gauges keep the end-of-interval value, not a (meaningless) difference.
	if d.NestedNodes != 6 || d.ProtectedPages != 3 {
		t.Errorf("gauges = %d/%d, want end values 6/3", d.NestedNodes, d.ProtectedPages)
	}
}

func TestEpochDerivedRates(t *testing.T) {
	e := Epoch{Delta: Counters{
		Accesses: 1000, TLBMisses: 50, WalkRefs: 600,
		MapsInstalled: 4, Unmapped: 1, PTUpdateTrapCycles: 17_250,
	}}
	if e.MissRate() != 0.05 {
		t.Errorf("MissRate = %v", e.MissRate())
	}
	if e.AvgRefsPerWalk() != 12 {
		t.Errorf("AvgRefsPerWalk = %v", e.AvgRefsPerWalk())
	}
	if e.PTUpdates() != 5 {
		t.Errorf("PTUpdates = %d", e.PTUpdates())
	}
	if e.UpdateCost() != 3450 {
		t.Errorf("UpdateCost = %v", e.UpdateCost())
	}
	var empty Epoch
	if empty.MissRate() != 0 || empty.AvgRefsPerWalk() != 0 || empty.UpdateCost() != 0 {
		t.Error("empty epoch rates must be zero")
	}
}

func TestRecorderEpochBoundaries(t *testing.T) {
	r := NewRecorder(3)
	if r.EpochLen() != 3 {
		t.Fatalf("EpochLen = %d", r.EpochLen())
	}
	r.Rebase(Counters{Clock: 100, Accesses: 10})
	for i := 0; i < 2; i++ {
		if r.OnAccess() {
			t.Fatalf("boundary reported after %d accesses", i+1)
		}
	}
	if !r.OnAccess() {
		t.Fatal("no boundary after epochLen accesses")
	}
	r.Sample(Counters{Clock: 400, Accesses: 13})
	s := r.Series()
	if len(s.Epochs) != 1 {
		t.Fatalf("epochs = %d", len(s.Epochs))
	}
	e := s.Epochs[0]
	if e.Index != 0 || e.StartAccesses != 10 || e.EndAccesses != 13 {
		t.Errorf("epoch bounds = %+v", e)
	}
	if e.StartClock != 100 || e.EndClock != 400 || e.Delta.Clock != 300 {
		t.Errorf("epoch clocks = %+v", e)
	}

	// Flush with no accesses since the boundary is a no-op...
	r.Flush(Counters{Clock: 500, Accesses: 13})
	if len(r.Series().Epochs) != 1 {
		t.Error("Flush appended an empty epoch")
	}
	// ...but a partial epoch is flushed.
	r.OnAccess()
	r.Flush(Counters{Clock: 600, Accesses: 14})
	if len(r.Series().Epochs) != 2 {
		t.Fatal("partial epoch not flushed")
	}
	if got := r.Series().Epochs[1]; got.Delta.Accesses != 1 || got.Index != 1 {
		t.Errorf("flushed epoch = %+v", got)
	}

	// Rebase discards in-progress progress and resets the baseline.
	r.OnAccess()
	r.OnAccess()
	r.Rebase(Counters{Clock: 1000, Accesses: 20})
	r.Flush(Counters{Clock: 1100, Accesses: 21})
	if len(r.Series().Epochs) != 2 {
		t.Error("Rebase did not discard the partial epoch")
	}
}

func TestNewRecorderDefault(t *testing.T) {
	if got := NewRecorder(0).EpochLen(); got != 10_000 {
		t.Errorf("default epoch len = %d", got)
	}
}

func TestSeriesExports(t *testing.T) {
	r := NewRecorder(2)
	r.Rebase(Counters{})
	r.OnAccess()
	r.OnAccess()
	c := Counters{Clock: 900, Accesses: 2, TLBMisses: 1, WalkRefs: 24, MapsInstalled: 2, PTUpdateTrapCycles: 6900}
	c.VMExits[vmm.TrapPTWrite] = 2
	r.Sample(c)
	s := r.Series()

	var jsonBuf bytes.Buffer
	if err := s.WriteJSON(&jsonBuf); err != nil {
		t.Fatal(err)
	}
	var decoded Series
	if err := json.Unmarshal(jsonBuf.Bytes(), &decoded); err != nil {
		t.Fatalf("exported JSON does not parse: %v", err)
	}
	if decoded.EpochLen != 2 || len(decoded.Epochs) != 1 {
		t.Errorf("decoded = %+v", decoded)
	}
	if len(decoded.TrapKinds) != int(vmm.NumTrapKinds) || decoded.TrapKinds[vmm.TrapPTWrite] != vmm.TrapPTWrite.String() {
		t.Errorf("TrapKinds = %v", decoded.TrapKinds)
	}
	if decoded.Epochs[0].Delta.VMExits[vmm.TrapPTWrite] != 2 {
		t.Errorf("decoded epoch = %+v", decoded.Epochs[0])
	}

	var csvBuf bytes.Buffer
	if err := s.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csvBuf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("csv lines = %d", len(lines))
	}
	if lines[0] != strings.Join(csvHeader, ",") {
		t.Errorf("csv header = %q", lines[0])
	}
	fields := strings.Split(lines[1], ",")
	if len(fields) != len(csvHeader) {
		t.Fatalf("csv row has %d fields, header %d", len(fields), len(csvHeader))
	}
	// update_cost column: 6900 cycles / 2 updates.
	if fields[13] != "3450.0" {
		t.Errorf("update_cost cell = %q", fields[13])
	}

	table := s.Table()
	if !strings.Contains(table, "upd-cost") || !strings.Contains(table, "3450") {
		t.Errorf("table output missing expected cells:\n%s", table)
	}
}

func TestEventRingWraparound(t *testing.T) {
	r := NewEventRing(4)
	if r.Cap() != 4 {
		t.Fatalf("cap = %d", r.Cap())
	}
	for i := 0; i < 6; i++ {
		r.Record(WalkEvent{VA: uint64(0x1000 * (i + 1)), Clock: uint64(100 * (i + 1)), Cycles: 10})
	}
	if r.Total() != 6 {
		t.Errorf("total = %d", r.Total())
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("retained = %d", len(evs))
	}
	// Oldest-first: events 2..5 survive, with ring-assigned Seq.
	for i, ev := range evs {
		want := uint64(i + 2)
		if ev.Seq != want || ev.VA != 0x1000*(want+1) {
			t.Errorf("event %d = %+v, want seq %d", i, ev, want)
		}
	}
}

func TestEventRingDefaultCap(t *testing.T) {
	if got := NewEventRing(0).Cap(); got != 4096 {
		t.Errorf("default cap = %d", got)
	}
}

func TestWalkEventClass(t *testing.T) {
	cases := []struct {
		ev   WalkEvent
		want string
	}{
		{WalkEvent{FullNested: true, NestedLevels: 4}, "full-nested"},
		{WalkEvent{NestedLevels: 0}, "full-shadow"},
		{WalkEvent{NestedLevels: 4}, "switch-L1"},
		{WalkEvent{NestedLevels: 1}, "switch-L4"},
	}
	for _, c := range cases {
		if got := c.ev.class(); got != c.want {
			t.Errorf("class(%+v) = %q, want %q", c.ev, got, c.want)
		}
	}
}

func TestWriteChromeTrace(t *testing.T) {
	r := NewEventRing(8)
	r.Record(WalkEvent{Clock: 500, Core: 0, VA: 0x1000, Refs: 4, Cycles: 160})
	r.Record(WalkEvent{Clock: 900, Core: 1, VA: 0x2000, Refs: 24, NestedLevels: 4, FullNested: true, Write: true, Cycles: 960})
	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("trace JSON does not parse: %v", err)
	}
	if len(events) != 2 {
		t.Fatalf("events = %d", len(events))
	}
	first := events[0]
	if first["ph"] != "X" || first["cat"] != "full-shadow" {
		t.Errorf("first event = %v", first)
	}
	// ts = completion clock − charged cycles, dur = cycles.
	if first["ts"].(float64) != 340 || first["dur"].(float64) != 160 {
		t.Errorf("first timing = ts %v dur %v", first["ts"], first["dur"])
	}
	second := events[1]
	if second["cat"] != "full-nested" || second["tid"].(float64) != 2 {
		t.Errorf("second event = %v", second)
	}
	if second["args"].(map[string]any)["write"].(float64) != 1 {
		t.Errorf("second args = %v", second["args"])
	}
}
