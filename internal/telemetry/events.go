package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
)

// WalkEvent is one completed hardware page walk — the per-event record the
// bounded ring keeps for flamegraph-style inspection of where walk cycles
// go. The struct is flat so recording is a single array-slot copy.
type WalkEvent struct {
	Seq          uint64 // 0-based index in the run's walk order
	Clock        uint64 // simulated cycle at walk completion
	Core         int
	VA           uint64
	Refs         int
	HostRefs     int
	NestedLevels int  // trailing guest levels handled nested (0..4)
	FullNested   bool // walk also translated gptr (fully nested)
	Write        bool
	Cycles       uint64 // cycles charged for the walk's references
}

// class names the walk's Table VI class for trace categorization.
func (e WalkEvent) class() string {
	switch {
	case e.FullNested:
		return "full-nested"
	case e.NestedLevels == 0:
		return "full-shadow"
	default:
		return fmt.Sprintf("switch-L%d", 5-e.NestedLevels)
	}
}

// EventRing is a bounded ring buffer of walk events. The buffer is
// allocated once at construction; Record overwrites the oldest event when
// full, so attaching a ring adds no allocation to the walk path.
type EventRing struct {
	buf []WalkEvent
	n   uint64 // total events ever recorded
}

// NewEventRing creates a ring holding the last `capacity` walk events
// (non-positive selects 4096).
func NewEventRing(capacity int) *EventRing {
	if capacity <= 0 {
		capacity = 4096
	}
	return &EventRing{buf: make([]WalkEvent, capacity)}
}

// Record appends one event, overwriting the oldest when the ring is full.
// ev.Seq is assigned by the ring.
func (r *EventRing) Record(ev WalkEvent) {
	ev.Seq = r.n
	r.buf[r.n%uint64(len(r.buf))] = ev
	r.n++
}

// Cap returns the ring capacity.
func (r *EventRing) Cap() int { return len(r.buf) }

// Total returns the number of events ever recorded (may exceed Cap).
func (r *EventRing) Total() uint64 { return r.n }

// Events returns the retained events oldest-first as a fresh slice.
func (r *EventRing) Events() []WalkEvent {
	kept := r.n
	if kept > uint64(len(r.buf)) {
		kept = uint64(len(r.buf))
	}
	out := make([]WalkEvent, 0, kept)
	start := r.n - kept
	for i := start; i < r.n; i++ {
		out = append(out, r.buf[i%uint64(len(r.buf))])
	}
	return out
}

// chromeEvent is one entry of the Chrome trace-event format ("X" complete
// events), loadable in chrome://tracing and Perfetto. Simulated cycles map
// 1:1 onto the format's microsecond timestamps.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	Ts   uint64            `json:"ts"`
	Dur  uint64            `json:"dur"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]uint64 `json:"args"`
}

// WriteChromeTrace exports the retained events as a Chrome trace-event
// JSON array. Each walk becomes a complete ("X") event on its core's
// track, with the walk's start inferred from its completion clock and
// charged cycles.
func (r *EventRing) WriteChromeTrace(w io.Writer) error {
	events := r.Events()
	out := make([]chromeEvent, 0, len(events))
	for _, ev := range events {
		start := ev.Clock - ev.Cycles
		var write uint64
		if ev.Write {
			write = 1
		}
		out = append(out, chromeEvent{
			Name: "walk",
			Cat:  ev.class(),
			Ph:   "X",
			Ts:   start,
			Dur:  ev.Cycles,
			Pid:  1,
			Tid:  ev.Core + 1,
			Args: map[string]uint64{
				"seq":          ev.Seq,
				"va":           ev.VA,
				"refs":         uint64(ev.Refs),
				"hostRefs":     uint64(ev.HostRefs),
				"nestedLevels": uint64(ev.NestedLevels),
				"write":        write,
			},
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
