// Package telemetry is the simulator's epoch-based observability layer.
// The paper's central dynamic claim is temporal — agile paging *converges*,
// moving churning page-table subtrees to nested mode so update cost falls
// from thousands of VMM cycles toward direct writes (Table I) — but
// end-of-run aggregates cannot show convergence. This package samples the
// machine's counters every N accesses into a time series of epochs, each
// holding the interval delta of every counter plus end-of-epoch gauges
// (shadow-vs-nested coverage per page-table level).
//
// Design constraints, inherited from the PR 2 hot-path work:
//
//   - The per-access cost with telemetry attached is one branch and one
//     integer increment (Recorder.OnAccess). Counter assembly, interval
//     math, and slice growth happen only at epoch boundaries.
//   - The package never mutates simulator state; attaching a recorder must
//     leave every simulated counter bit-identical (pinned by the
//     experiments package's golden-equivalence and purity tests).
//
// The package depends only on vmm (for the VM-exit classification); the
// cpu package assembles Counters snapshots and drives the Recorder.
package telemetry

import "agilepaging/internal/vmm"

// Counters is one flat snapshot of every counter telemetry tracks, taken
// across all cores of a machine. Cumulative fields grow monotonically over
// a run; gauge fields (the Nested*/Protected* block) are point-in-time
// sizes of policy state. Keeping the struct flat and pointer-free means a
// snapshot is one struct copy — no allocation, no aliasing.
type Counters struct {
	Clock uint64 // simulated cycles

	// Access stream.
	Accesses uint64
	Writes   uint64

	// TLB hierarchy.
	TLBLookups uint64
	TLBL1Hits  uint64
	TLBL2Hits  uint64
	TLBMisses  uint64

	// Hardware walks, split by how many trailing guest levels ran nested
	// (0 = full shadow, 4 = switch at the root; the paper's Table VI
	// classes). RefsByNestedLevels splits the reference volume the same
	// way, so an epoch's refs/walk can be decomposed by switch depth.
	Walks               uint64
	WalkRefs            uint64
	WalksByNestedLevels [5]uint64
	RefsByNestedLevels  [5]uint64
	FullNestedWalks     uint64
	FullNestedRefs      uint64

	// MMU caches.
	PWCLookups  uint64
	PWCHits     uint64
	NTLBLookups uint64
	NTLBHits    uint64

	// VMM interventions by cause (vmm.TrapKind order) and their cycle
	// totals. PTUpdateTrapCycles isolates the update-servicing subset
	// (pt-write + tlb-flush traps) that Table I's update cost divides by
	// guest page-table updates.
	VMExits            [vmm.NumTrapKinds]uint64
	TrapCycles         uint64
	PTUpdateTrapCycles uint64

	// Faults and guest page-table churn.
	GuestPageFaults uint64
	WriteProtFaults uint64
	MapsInstalled   uint64
	Unmapped        uint64

	// Cycle decomposition.
	IdealCycles uint64
	WalkCycles  uint64

	// Agile policy decisions.
	SwitchesToNested uint64
	SwitchesToShadow uint64
	DirtyScans       uint64

	// Gauges: current shadow-vs-nested coverage of the guest page tables.
	// NestedNodesByLevel[l] counts guest table pages at level l (0 = root)
	// handled in nested mode; ProtectedByLevel[l] counts write-protected
	// (shadow-covered) table pages per level.
	NestedNodes        int
	ProtectedPages     int
	NestedNodesByLevel [4]int
	ProtectedByLevel   [4]int
}

// Diff returns the interval counters c − prev: cumulative fields are
// subtracted, gauge fields keep c's (end-of-interval) values.
func (c Counters) Diff(prev Counters) Counters {
	d := c
	d.Clock -= prev.Clock
	d.Accesses -= prev.Accesses
	d.Writes -= prev.Writes
	d.TLBLookups -= prev.TLBLookups
	d.TLBL1Hits -= prev.TLBL1Hits
	d.TLBL2Hits -= prev.TLBL2Hits
	d.TLBMisses -= prev.TLBMisses
	d.Walks -= prev.Walks
	d.WalkRefs -= prev.WalkRefs
	for i := range d.WalksByNestedLevels {
		d.WalksByNestedLevels[i] -= prev.WalksByNestedLevels[i]
		d.RefsByNestedLevels[i] -= prev.RefsByNestedLevels[i]
	}
	d.FullNestedWalks -= prev.FullNestedWalks
	d.FullNestedRefs -= prev.FullNestedRefs
	d.PWCLookups -= prev.PWCLookups
	d.PWCHits -= prev.PWCHits
	d.NTLBLookups -= prev.NTLBLookups
	d.NTLBHits -= prev.NTLBHits
	for i := range d.VMExits {
		d.VMExits[i] -= prev.VMExits[i]
	}
	d.TrapCycles -= prev.TrapCycles
	d.PTUpdateTrapCycles -= prev.PTUpdateTrapCycles
	d.GuestPageFaults -= prev.GuestPageFaults
	d.WriteProtFaults -= prev.WriteProtFaults
	d.MapsInstalled -= prev.MapsInstalled
	d.Unmapped -= prev.Unmapped
	d.IdealCycles -= prev.IdealCycles
	d.WalkCycles -= prev.WalkCycles
	d.SwitchesToNested -= prev.SwitchesToNested
	d.SwitchesToShadow -= prev.SwitchesToShadow
	d.DirtyScans -= prev.DirtyScans
	return d
}

// VMExitTotal sums the VM exits of the snapshot or interval.
func (c Counters) VMExitTotal() uint64 {
	var n uint64
	for _, v := range c.VMExits {
		n += v
	}
	return n
}

// Epoch is one sampling interval of the time series.
type Epoch struct {
	Index int

	// Start/End are the cumulative access count and simulated clock at the
	// epoch's boundaries.
	StartAccesses uint64
	EndAccesses   uint64
	StartClock    uint64
	EndClock      uint64

	// Delta holds the interval counters (gauges are end-of-epoch values).
	Delta Counters
}

// MissRate is the epoch's TLB miss rate (misses per access).
func (e Epoch) MissRate() float64 {
	if e.Delta.Accesses == 0 {
		return 0
	}
	return float64(e.Delta.TLBMisses) / float64(e.Delta.Accesses)
}

// AvgRefsPerWalk is the epoch's mean page-walk references per TLB miss.
func (e Epoch) AvgRefsPerWalk() float64 {
	if e.Delta.TLBMisses == 0 {
		return 0
	}
	return float64(e.Delta.WalkRefs) / float64(e.Delta.TLBMisses)
}

// PTUpdates is the number of guest page-table updates in the epoch.
func (e Epoch) PTUpdates() uint64 { return e.Delta.MapsInstalled + e.Delta.Unmapped }

// UpdateCost is the epoch's VMM cycles per guest page-table update — the
// Table I update-cost cell, resolved in time. Under agile paging it starts
// in the VMM-mediated thousands and falls toward 0 as the write-threshold
// policy moves churning subtrees to nested mode.
func (e Epoch) UpdateCost() float64 {
	u := e.PTUpdates()
	if u == 0 {
		return 0
	}
	return float64(e.Delta.PTUpdateTrapCycles) / float64(u)
}

// Recorder accumulates the epoch series. The hot-path contract: OnAccess
// is the only method called per access; it allocates nothing and does no
// counter work. When it reports an epoch boundary the caller assembles a
// Counters snapshot and passes it to Sample, which closes the epoch.
type Recorder struct {
	epochLen uint64
	since    uint64
	prev     Counters
	series   Series
}

// NewRecorder creates a recorder sampling every epochLen accesses
// (non-positive selects 10 000).
func NewRecorder(epochLen int) *Recorder {
	if epochLen <= 0 {
		epochLen = 10_000
	}
	return &Recorder{epochLen: uint64(epochLen), series: Series{EpochLen: epochLen}}
}

// EpochLen returns the sampling interval in accesses.
func (r *Recorder) EpochLen() int { return int(r.epochLen) }

// OnAccess counts one access and reports whether the epoch is complete and
// the caller must Sample. It is the per-access hot path: one increment, one
// compare, no allocation.
func (r *Recorder) OnAccess() bool {
	r.since++
	return r.since >= r.epochLen
}

// Rebase sets the baseline snapshot future epochs diff against, discarding
// the partial epoch in progress. The machine calls it when the recorder is
// attached and again when measurement counters are reset after warmup, so
// epochs never mix pre- and post-reset counter spaces.
func (r *Recorder) Rebase(c Counters) {
	r.prev = c
	r.since = 0
}

// Sample closes the current epoch at snapshot c: it appends the interval
// delta against the previous boundary and starts the next epoch. Called at
// epoch boundaries only, so its slice append never touches the per-access
// path.
func (r *Recorder) Sample(c Counters) {
	r.series.Epochs = append(r.series.Epochs, Epoch{
		Index:         len(r.series.Epochs),
		StartAccesses: r.prev.Accesses,
		EndAccesses:   c.Accesses,
		StartClock:    r.prev.Clock,
		EndClock:      c.Clock,
		Delta:         c.Diff(r.prev),
	})
	r.prev = c
	r.since = 0
}

// Flush closes a final partial epoch at snapshot c, if any accesses were
// recorded since the last boundary. Runs call it once at the end so the
// tail of the run is not silently dropped.
func (r *Recorder) Flush(c Counters) {
	if r.since == 0 {
		return
	}
	r.Sample(c)
}

// Series returns the accumulated time series.
func (r *Recorder) Series() *Series { return &r.series }
