package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"text/tabwriter"

	"agilepaging/internal/vmm"
)

// Series is the full epoch time series of one run.
type Series struct {
	// EpochLen is the sampling interval in accesses.
	EpochLen int
	// TrapKinds names the VMExits array indices, so exported files are
	// self-describing. Filled on export.
	TrapKinds []string `json:",omitempty"`
	Epochs    []Epoch
}

// trapKindNames lists the vmm.TrapKind names in index order.
func trapKindNames() []string {
	names := make([]string, vmm.NumTrapKinds)
	for k := vmm.TrapKind(0); k < vmm.NumTrapKinds; k++ {
		names[k] = k.String()
	}
	return names
}

// WriteJSON exports the series as indented JSON.
func (s *Series) WriteJSON(w io.Writer) error {
	out := *s
	out.TrapKinds = trapKindNames()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// csvHeader is the column set of WriteCSV: the raw interval counts plus
// the derived per-epoch rates the adaptation analysis reads.
var csvHeader = []string{
	"epoch", "end_accesses", "end_clock",
	"accesses", "writes", "tlb_misses", "miss_rate",
	"walk_refs", "refs_per_walk",
	"vm_exits", "trap_cycles",
	"pt_updates", "pt_update_trap_cycles", "update_cost",
	"guest_faults", "writeprot_faults",
	"switches_to_nested", "switches_to_shadow",
	"nested_nodes", "protected_pages",
}

// WriteCSV exports the series as one row per epoch.
func (s *Series) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, strings.Join(csvHeader, ",")); err != nil {
		return err
	}
	for _, e := range s.Epochs {
		d := e.Delta
		_, err := fmt.Fprintf(w, "%d,%d,%d,%d,%d,%d,%.6f,%d,%.3f,%d,%d,%d,%d,%.1f,%d,%d,%d,%d,%d,%d\n",
			e.Index, e.EndAccesses, e.EndClock,
			d.Accesses, d.Writes, d.TLBMisses, e.MissRate(),
			d.WalkRefs, e.AvgRefsPerWalk(),
			d.VMExitTotal(), d.TrapCycles,
			e.PTUpdates(), d.PTUpdateTrapCycles, e.UpdateCost(),
			d.GuestPageFaults, d.WriteProtFaults,
			d.SwitchesToNested, d.SwitchesToShadow,
			d.NestedNodes, d.ProtectedPages)
		if err != nil {
			return err
		}
	}
	return nil
}

// Table renders the series as a human-readable adaptation table: one row
// per epoch with the rates that show agile paging converging (update cost
// falling, nested coverage growing over the churned parts).
func (s *Series) Table() string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "epoch\taccesses\tmiss%\trefs/walk\tvm-exits\tpt-updates\tupd-cost\t->nested\t->shadow\tnested\tprotected")
	for _, e := range s.Epochs {
		d := e.Delta
		fmt.Fprintf(w, "%d\t%d\t%.2f\t%.2f\t%d\t%d\t%.0f\t%d\t%d\t%d\t%d\n",
			e.Index, d.Accesses, 100*e.MissRate(), e.AvgRefsPerWalk(),
			d.VMExitTotal(), e.PTUpdates(), e.UpdateCost(),
			d.SwitchesToNested, d.SwitchesToShadow,
			d.NestedNodes, d.ProtectedPages)
	}
	w.Flush()
	return b.String()
}
