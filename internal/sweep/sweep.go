// Package sweep is the deterministic parallel job runner underneath the
// experiments layer.
//
// Every experiment driver in this repository is structurally the same
// program: enumerate a configuration space (workload × page size ×
// technique × knobs), simulate each point independently, and assemble the
// results into a table. The simulations share nothing — each cpu.Machine
// owns its memory, page tables, TLBs and statistics — so the sweep is
// embarrassingly parallel. This package factors the orchestration out of
// the drivers: a sweep is declared as an ordered []Job and executed on a
// bounded worker pool, and Run returns results in declaration order, so
// parallel output is bit-identical to a serial run regardless of
// scheduling.
//
// Determinism contract: the caller's run function must derive its result
// only from the job it is handed (plus its own seeded state). Under that
// contract Run(jobs, fn) with any worker count returns exactly what a
// serial loop over jobs would; the experiments package's equivalence tests
// and -race runs enforce it.
//
// Fault tolerance: a job that panics does not kill the process — the panic
// is recovered into a *PanicError and treated as that job's failure.
// Config.ErrorPolicy selects what a failure does to the rest of the sweep
// (FailFast cancels it, CollectAll keeps running and joins every failure),
// and Config.Retry re-executes failed jobs. Execute exposes the full
// outcome, including a per-job completion mask, so callers can render
// partial result tables; Run is the errors-only view.
package sweep

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"
)

// Job describes one point of a sweep: an identifying key (used in progress
// reporting and error messages), the workload it simulates, and the
// driver-specific options the run function consumes.
type Job[O any] struct {
	// Key identifies the job in progress output and wrapped errors
	// (e.g. "dedup/4K/agile").
	Key string
	// Workload names the workload the job simulates ("" for
	// microbenchmark jobs that build their own op streams).
	Workload string
	// Options carries the driver-specific run parameters.
	Options O
	// DedupKey, when non-empty, is the job's canonical content key: two
	// jobs with equal DedupKeys are declared to produce identical results,
	// so Run executes only the first and copies its result to the rest.
	// "" (the default) opts the job out of deduplication. The experiments
	// layer sets this to the repcache cell key for uninstrumented
	// simulation cells and leaves it empty for everything else.
	DedupKey string
}

// Progress is a snapshot delivered to Config.OnProgress after each job
// completes successfully.
type Progress struct {
	// Done and Total count successfully completed and executed jobs.
	// Deduplicated jobs are not executed, so Total is the unique-job
	// count, not len(jobs). Failed jobs never report progress, so under
	// CollectAll a sweep with failures finishes with Done < Total.
	Done, Total int
	// Deduped is the number of declared jobs folded into another job's
	// execution by DedupKey (constant across one sweep).
	Deduped int
	// Key is the key of the job that just finished.
	Key string
	// Elapsed is that job's wall-clock run time, including retries.
	Elapsed time.Duration
}

// ErrorPolicy selects how a sweep responds to job failures.
type ErrorPolicy int

const (
	// FailFast — the zero value and historical behavior — cancels the
	// sweep on the first observed failure: running jobs see their context
	// canceled, unstarted jobs never start, and the sweep error is that
	// first failure wrapped in a *JobError. "First observed" is a
	// wall-clock race, not declaration order: when two jobs fail
	// concurrently, which one wins depends on scheduling. Callers needing
	// a deterministic error set must use CollectAll.
	FailFast ErrorPolicy = iota
	// CollectAll runs every job regardless of failures and returns the
	// failures joined (errors.Join) in declaration order, each wrapped in
	// a *JobError — deterministic under any scheduling. Completed jobs
	// keep their results; Execute's Completed mask says which slots hold
	// real results.
	CollectAll
)

// Retry re-executes failed jobs. The zero value disables retry.
type Retry struct {
	// Attempts is the maximum number of re-executions after a failed
	// attempt: a job runs at most Attempts+1 times. 0 disables retry.
	Attempts int
	// Backoff is the wait before the first retry, doubling on each
	// further retry. The wait aborts immediately if the sweep is
	// canceled. 0 retries without waiting.
	Backoff time.Duration
	// Transient reports whether an error is worth retrying. nil retries
	// every failure, including recovered panics (filter with errors.As on
	// *PanicError to exclude them). Cancellation casualties — errors
	// matching the sweep context's own error after cancellation — never
	// retry regardless.
	Transient func(error) bool
}

// Config parameterizes a sweep execution. The zero value runs on
// runtime.GOMAXPROCS(0) workers with no progress reporting, the FailFast
// error policy, and no retry.
type Config struct {
	// Workers bounds the worker pool; <= 0 selects runtime.GOMAXPROCS(0).
	Workers int
	// OnProgress, when non-nil, is invoked after each job completes.
	// Invocations are serialized (the callback needs no locking) but
	// arrive in completion order, not declaration order. A panic in the
	// callback does not poison the sweep: it is recovered, further
	// callbacks are suppressed, and the panic surfaces in the sweep error
	// once the pool drains.
	OnProgress func(Progress)
	// ErrorPolicy selects the response to job failures (default FailFast).
	ErrorPolicy ErrorPolicy
	// Retry re-executes failed jobs before they count as failures.
	Retry Retry
}

func (c Config) workers(jobs int) int {
	n := c.Workers
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > jobs {
		n = jobs
	}
	return n
}

// PanicError is a panic recovered from a sweep job (or from the OnProgress
// callback), converted into an ordinary error so one bad cell cannot kill
// the process.
type PanicError struct {
	// Value is the value the job panicked with.
	Value any
	// Stack is the panicking goroutine's stack, captured at the recovery
	// point (debug.Stack). It is not part of Error() — error strings stay
	// single-line and deterministic — so callers wanting the trace must
	// errors.As the sweep error and read it here.
	Stack []byte
}

func (e *PanicError) Error() string { return fmt.Sprintf("panic: %v", e.Value) }

// JobError attributes a job failure to its declaration index and key.
// Every job failure a sweep reports is wrapped in one.
type JobError struct {
	// Index is the job's position in the declared job list.
	Index int
	// Key is the job's Key field ("" if the job declared none).
	Key string
	// Err is the failure itself (possibly a *PanicError).
	Err error
}

func (e *JobError) Error() string {
	if e.Key != "" {
		return fmt.Sprintf("sweep: job %d (%s): %v", e.Index, e.Key, e.Err)
	}
	return fmt.Sprintf("sweep: job %d: %v", e.Index, e.Err)
}

func (e *JobError) Unwrap() error { return e.Err }

// Outcome is the full record of a sweep execution, indexed by job
// declaration order.
type Outcome[R any] struct {
	// Results holds every job's result in declaration order. Slots whose
	// jobs failed or never ran hold zero values — consult Completed to
	// tell a real zero-valued result from an absent one.
	Results []R
	// Completed[i] reports whether Results[i] holds a real result: the
	// job (or the representative it deduplicated into) ran to success.
	Completed []bool
	// JobErrors[i] is job i's failure as a *JobError, nil if the job
	// completed or never ran. A deduplicated job's failure is recorded on
	// its representative only; its aliases stay nil with Completed false.
	// Under FailFast the set is best-effort (jobs canceled by the first
	// failure record nothing); under CollectAll it is complete and
	// deterministic.
	JobErrors []error
	// Err is the sweep verdict; see Run for the policy-specific contract.
	Err error
}

// CompletedCount returns how many declared jobs hold real results.
func (o Outcome[R]) CompletedCount() int {
	n := 0
	for _, c := range o.Completed {
		if c {
			n++
		}
	}
	return n
}

// Run executes fn for every job on a bounded worker pool and returns the
// results in job declaration order. It is Execute reduced to the classic
// (results, error) shape; callers that need the per-job completion mask or
// error attribution use Execute directly.
//
// Deduplication: jobs sharing a non-empty DedupKey execute once — the
// first declaration-order occurrence is the representative; after the
// sweep completes its result is copied to every duplicate's slot. The
// worker pool only ever sees unique jobs, so a sweep whose tail is all
// duplicates finishes when its unique jobs do (no stragglers), and
// Progress.Total counts unique jobs.
//
// Panics: a panicking job does not crash the process; the panic is
// recovered into a *PanicError carrying the stack and handled as that
// job's failure (retried and reported like any other error).
//
// Errors and cancellation, under FailFast (the default): the first
// observed failure — a scheduling race when several jobs fail
// concurrently, so NOT guaranteed deterministic — cancels the context
// passed to still-running jobs, prevents unstarted jobs from starting,
// and is returned wrapped in a *JobError with its job index and key.
// Under CollectAll every job runs; the returned error joins every failure
// in declaration order (deterministic under any scheduling), each wrapped
// in a *JobError.
//
// External cancellation: if ctx is canceled from outside, Run stops
// claiming jobs and returns ctx.Err(). A job that returns the
// cancellation error (or wraps it) after cancellation is a casualty, not
// a failure — it is never attributed as a job error. Job failures that
// happened before or despite the cancellation still win under FailFast
// and join the cancellation under CollectAll.
//
// On error the returned slice still holds the results of the jobs that
// completed; unfinished entries are zero values.
func Run[O, R any](ctx context.Context, cfg Config, jobs []Job[O], fn func(context.Context, Job[O]) (R, error)) ([]R, error) {
	out := Execute(ctx, cfg, jobs, fn)
	return out.Results, out.Err
}

// Execute is Run returning the full Outcome: declaration-ordered results,
// the completion mask, per-job error attribution, and the sweep verdict.
func Execute[O, R any](ctx context.Context, cfg Config, jobs []Job[O], fn func(context.Context, Job[O]) (R, error)) Outcome[R] {
	out := Outcome[R]{
		Results:   make([]R, len(jobs)),
		Completed: make([]bool, len(jobs)),
		JobErrors: make([]error, len(jobs)),
	}
	if fn == nil {
		out.Err = errors.New("sweep: nil run function")
		return out
	}
	if len(jobs) == 0 {
		out.Err = ctx.Err()
		return out
	}

	// Dedup pass: order lists the indexes that actually execute, in
	// declaration order; alias maps every folded index to its
	// representative. A representative is always the first occurrence of
	// its DedupKey, so alias targets precede their sources.
	order := make([]int, 0, len(jobs))
	var alias map[int]int
	firstByKey := make(map[string]int, len(jobs))
	for i, j := range jobs {
		if j.DedupKey != "" {
			if rep, ok := firstByKey[j.DedupKey]; ok {
				if alias == nil {
					alias = make(map[int]int)
				}
				alias[i] = rep
				continue
			}
			firstByKey[j.DedupKey] = i
		}
		order = append(order, i)
	}
	deduped := len(jobs) - len(order)

	parent := ctx
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		next int64 = -1 // atomically claimed cursor into order
		wg   sync.WaitGroup
		mu   sync.Mutex // guards done/firstFailure/progress* and serializes OnProgress
		done int
		// firstFailure is the first failure any worker observed; under
		// FailFast it is the sweep error.
		firstFailure *JobError
		// progressPanic records a panicking OnProgress callback;
		// progressDead suppresses further invocations once it happens so
		// the pool keeps draining.
		progressPanic *PanicError
		progressDead  bool
	)

	// attempt runs fn once, converting a panic into a *PanicError.
	attempt := func(j Job[O]) (r R, err error) {
		defer func() {
			if v := recover(); v != nil {
				var zero R
				r, err = zero, &PanicError{Value: v, Stack: debug.Stack()}
			}
		}()
		return fn(ctx, j)
	}

	// runJob is attempt plus the retry policy: failed attempts re-execute
	// up to Retry.Attempts extra times with doubling backoff, unless the
	// error is a cancellation casualty or Transient rejects it.
	runJob := func(j Job[O]) (R, error) {
		r, err := attempt(j)
		backoff := cfg.Retry.Backoff
		for extra := 0; err != nil && extra < cfg.Retry.Attempts; extra++ {
			if cerr := ctx.Err(); cerr != nil && errors.Is(err, cerr) {
				break // canceled, not failed: retrying cannot help
			}
			if cfg.Retry.Transient != nil && !cfg.Retry.Transient(err) {
				break
			}
			if backoff > 0 {
				t := time.NewTimer(backoff)
				select {
				case <-ctx.Done():
					t.Stop()
					return r, err
				case <-t.C:
				}
				backoff *= 2
			}
			r, err = attempt(j)
		}
		return r, err
	}

	// reportProgress serializes the user callback and shields the pool
	// from callback panics: the lock is released normally (the recover
	// stops the unwind inside the closure), the callback is disabled, and
	// the panic surfaces in the sweep error after the pool drains.
	reportProgress := func(key string, elapsed time.Duration) {
		mu.Lock()
		done++
		p := Progress{Done: done, Total: len(order), Deduped: deduped, Key: key, Elapsed: elapsed}
		if !progressDead {
			func() {
				defer func() {
					if v := recover(); v != nil {
						progressDead = true
						progressPanic = &PanicError{Value: v, Stack: debug.Stack()}
					}
				}()
				cfg.OnProgress(p)
			}()
		}
		mu.Unlock()
	}

	worker := func() {
		defer wg.Done()
		for {
			o := int(atomic.AddInt64(&next, 1))
			if o >= len(order) {
				return
			}
			// A failed (FailFast) or canceled sweep starts no further
			// jobs; claimed indexes keep their zero results.
			if ctx.Err() != nil {
				return
			}
			i := order[o]
			start := time.Now()
			r, err := runJob(jobs[i])
			if err != nil {
				// A job reporting the context's own error after
				// cancellation is a casualty of the cancellation, not a
				// failing job: record nothing and let the pool drain.
				if cerr := ctx.Err(); cerr != nil && errors.Is(err, cerr) {
					continue
				}
				je := &JobError{Index: i, Key: jobs[i].Key, Err: err}
				mu.Lock()
				out.JobErrors[i] = je
				if firstFailure == nil {
					firstFailure = je
				}
				mu.Unlock()
				if cfg.ErrorPolicy == FailFast {
					cancel()
					return
				}
				continue
			}
			out.Results[i] = r
			out.Completed[i] = true
			if cfg.OnProgress != nil {
				reportProgress(jobs[i].Key, time.Since(start))
			}
		}
	}
	n := cfg.workers(len(order))
	wg.Add(n)
	for w := 0; w < n; w++ {
		go worker()
	}
	wg.Wait()

	// Fan deduplicated results back out. Representatives precede their
	// aliases; a failed representative leaves its aliases zero-valued and
	// incomplete.
	for i, rep := range alias {
		if out.Completed[rep] {
			out.Results[i] = out.Results[rep]
			out.Completed[i] = true
		}
	}

	out.Err = verdict(cfg.ErrorPolicy, out.JobErrors, firstFailure, progressPanic, parent.Err())
	return out
}

// verdict assembles the sweep error from the recorded failures, the parent
// context's state, and any OnProgress panic.
func verdict(policy ErrorPolicy, jobErrors []error, firstFailure *JobError, progressPanic *PanicError, parentErr error) error {
	var progressErr error
	if progressPanic != nil {
		progressErr = fmt.Errorf("sweep: OnProgress callback: %w", progressPanic)
	}
	if policy == FailFast {
		switch {
		case firstFailure != nil && progressErr != nil:
			return errors.Join(firstFailure, progressErr)
		case firstFailure != nil:
			return firstFailure
		case parentErr != nil && progressErr != nil:
			return errors.Join(parentErr, progressErr)
		case parentErr != nil:
			return parentErr
		default:
			return progressErr // nil when nothing went wrong
		}
	}
	// CollectAll: join every failure in declaration order — deterministic
	// under any scheduling — then the external cancellation (so
	// errors.Is(err, context.Canceled) holds for interrupted sweeps) and
	// the callback panic. A lone cancellation returns bare, per the
	// external-cancellation contract.
	var joined []error
	for _, je := range jobErrors {
		if je != nil {
			joined = append(joined, je)
		}
	}
	if parentErr != nil {
		joined = append(joined, parentErr)
	}
	if progressErr != nil {
		joined = append(joined, progressErr)
	}
	switch len(joined) {
	case 0:
		return nil
	case 1:
		return joined[0]
	default:
		return errors.Join(joined...)
	}
}
