// Package sweep is the deterministic parallel job runner underneath the
// experiments layer.
//
// Every experiment driver in this repository is structurally the same
// program: enumerate a configuration space (workload × page size ×
// technique × knobs), simulate each point independently, and assemble the
// results into a table. The simulations share nothing — each cpu.Machine
// owns its memory, page tables, TLBs and statistics — so the sweep is
// embarrassingly parallel. This package factors the orchestration out of
// the drivers: a sweep is declared as an ordered []Job and executed on a
// bounded worker pool, and Run returns results in declaration order, so
// parallel output is bit-identical to a serial run regardless of
// scheduling.
//
// Determinism contract: the caller's run function must derive its result
// only from the job it is handed (plus its own seeded state). Under that
// contract Run(jobs, fn) with any worker count returns exactly what a
// serial loop over jobs would; the experiments package's equivalence tests
// and -race runs enforce it.
package sweep

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Job describes one point of a sweep: an identifying key (used in progress
// reporting and error messages), the workload it simulates, and the
// driver-specific options the run function consumes.
type Job[O any] struct {
	// Key identifies the job in progress output and wrapped errors
	// (e.g. "dedup/4K/agile").
	Key string
	// Workload names the workload the job simulates ("" for
	// microbenchmark jobs that build their own op streams).
	Workload string
	// Options carries the driver-specific run parameters.
	Options O
	// DedupKey, when non-empty, is the job's canonical content key: two
	// jobs with equal DedupKeys are declared to produce identical results,
	// so Run executes only the first and copies its result to the rest.
	// "" (the default) opts the job out of deduplication. The experiments
	// layer sets this to the repcache cell key for uninstrumented
	// simulation cells and leaves it empty for everything else.
	DedupKey string
}

// Progress is a snapshot delivered to Config.OnProgress after each job
// completes.
type Progress struct {
	// Done and Total count completed and executed jobs. Deduplicated jobs
	// are not executed, so Total is the unique-job count, not len(jobs).
	Done, Total int
	// Deduped is the number of declared jobs folded into another job's
	// execution by DedupKey (constant across one sweep).
	Deduped int
	// Key is the key of the job that just finished.
	Key string
	// Elapsed is that job's wall-clock run time.
	Elapsed time.Duration
}

// Config parameterizes a sweep execution. The zero value runs on
// runtime.GOMAXPROCS(0) workers with no progress reporting.
type Config struct {
	// Workers bounds the worker pool; <= 0 selects runtime.GOMAXPROCS(0).
	Workers int
	// OnProgress, when non-nil, is invoked after each job completes.
	// Invocations are serialized (the callback needs no locking) but
	// arrive in completion order, not declaration order.
	OnProgress func(Progress)
}

func (c Config) workers(jobs int) int {
	n := c.Workers
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > jobs {
		n = jobs
	}
	return n
}

// Run executes fn for every job on a bounded worker pool and returns the
// results in job declaration order.
//
// Deduplication: jobs sharing a non-empty DedupKey execute once — the
// first declaration-order occurrence is the representative; after the
// sweep completes its result is copied to every duplicate's slot. The
// worker pool only ever sees unique jobs, so a sweep whose tail is all
// duplicates finishes when its unique jobs do (no stragglers), and
// Progress.Total counts unique jobs.
//
// Cancellation and errors: the first job error (by declaration order, so
// the returned error is deterministic under any scheduling) cancels the
// context passed to still-running jobs and prevents unstarted jobs from
// starting; Run then returns that error, wrapped with the job's key. A
// representative's error is attributed to it, not its duplicates, and its
// duplicates keep zero results. If ctx is canceled externally, Run stops
// starting jobs and returns ctx.Err() (unless some job also failed, in
// which case the job error wins). On error the returned slice still holds
// the results of the jobs that completed; unfinished entries are zero
// values.
func Run[O, R any](ctx context.Context, cfg Config, jobs []Job[O], fn func(context.Context, Job[O]) (R, error)) ([]R, error) {
	if fn == nil {
		return nil, errors.New("sweep: nil run function")
	}
	if len(jobs) == 0 {
		return nil, ctx.Err()
	}

	// Dedup pass: order lists the indexes that actually execute, in
	// declaration order; alias maps every folded index to its
	// representative. A representative is always the first occurrence of
	// its DedupKey, so alias targets precede their sources.
	order := make([]int, 0, len(jobs))
	var alias map[int]int
	firstByKey := make(map[string]int, len(jobs))
	for i, j := range jobs {
		if j.DedupKey != "" {
			if rep, ok := firstByKey[j.DedupKey]; ok {
				if alias == nil {
					alias = make(map[int]int)
				}
				alias[i] = rep
				continue
			}
			firstByKey[j.DedupKey] = i
		}
		order = append(order, i)
	}
	deduped := len(jobs) - len(order)

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make([]R, len(jobs))
	errs := make([]error, len(jobs))

	var (
		next int64 = -1 // atomically claimed cursor into order
		wg   sync.WaitGroup
		mu   sync.Mutex // guards done and serializes OnProgress
		done int
	)
	worker := func() {
		defer wg.Done()
		for {
			o := int(atomic.AddInt64(&next, 1))
			if o >= len(order) {
				return
			}
			// A failed or canceled sweep starts no further jobs; claimed
			// indexes keep their zero results.
			if ctx.Err() != nil {
				return
			}
			i := order[o]
			start := time.Now()
			r, err := fn(ctx, jobs[i])
			if err != nil {
				errs[i] = err
				cancel()
				return
			}
			results[i] = r
			if cfg.OnProgress != nil {
				mu.Lock()
				done++
				cfg.OnProgress(Progress{
					Done:    done,
					Total:   len(order),
					Deduped: deduped,
					Key:     jobs[i].Key,
					Elapsed: time.Since(start),
				})
				mu.Unlock()
			}
		}
	}
	n := cfg.workers(len(order))
	wg.Add(n)
	for w := 0; w < n; w++ {
		go worker()
	}
	wg.Wait()

	// Fan deduplicated results back out. Representatives precede their
	// aliases, and a failed representative leaves its aliases zero (the
	// sweep is returning an error anyway).
	for i, rep := range alias {
		if errs[rep] == nil {
			results[i] = results[rep]
		}
	}

	for i, err := range errs {
		if err != nil {
			if jobs[i].Key != "" {
				return results, fmt.Errorf("sweep: job %d (%s): %w", i, jobs[i].Key, err)
			}
			return results, fmt.Errorf("sweep: job %d: %w", i, err)
		}
	}
	if err := ctx.Err(); err != nil {
		return results, err
	}
	return results, nil
}
