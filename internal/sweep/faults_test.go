package sweep

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// okFn is the trivially healthy run function the fault tests inject into.
func okFn(_ context.Context, j Job[int]) (int, error) { return j.Options * 10, nil }

// TestInjectorScripts pins the injector semantics the other tests rely on:
// per-key execution counting, 1-based Nth-execution matching, and
// Execution 0 matching every execution.
func TestInjectorScripts(t *testing.T) {
	boom := errors.New("boom")
	inj := NewInjector(
		FaultSpec{Key: "a", Execution: 2, Kind: FaultError, Err: boom},
		FaultSpec{Key: "b", Kind: FaultError},
	)
	fn := InjectFaults(inj, okFn)
	ctx := context.Background()
	if _, err := fn(ctx, Job[int]{Key: "a"}); err != nil {
		t.Fatalf("execution 1 of a faulted: %v", err)
	}
	if _, err := fn(ctx, Job[int]{Key: "a"}); !errors.Is(err, boom) {
		t.Fatalf("execution 2 of a = %v, want boom", err)
	}
	if _, err := fn(ctx, Job[int]{Key: "a"}); err != nil {
		t.Fatalf("execution 3 of a faulted: %v", err)
	}
	for i := 0; i < 3; i++ {
		if _, err := fn(ctx, Job[int]{Key: "b"}); err == nil {
			t.Fatalf("execution %d of b did not fault (Execution 0 = every)", i+1)
		}
	}
	if got := inj.Executions("a"); got != 3 {
		t.Fatalf("Executions(a) = %d, want 3", got)
	}
	if got := inj.Executions("unseen"); got != 0 {
		t.Fatalf("Executions(unseen) = %d, want 0", got)
	}
	if got := InjectFaults[int, int](nil, okFn); got == nil {
		t.Fatal("nil injector returned nil fn")
	}
}

// TestPanicRecovered proves a panicking job cannot kill the process: the
// panic comes back as a *PanicError (with the stack captured) inside a
// *JobError naming the cell.
func TestPanicRecovered(t *testing.T) {
	inj := NewInjector(FaultSpec{Key: "job-3", Kind: FaultPanic})
	_, err := Run(context.Background(), Config{Workers: 2}, jobList(8), InjectFaults(inj, okFn))
	if err == nil {
		t.Fatal("panic did not surface as an error")
	}
	var je *JobError
	if !errors.As(err, &je) || je.Index != 3 || je.Key != "job-3" {
		t.Fatalf("attribution wrong: %v", err)
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("no PanicError in chain: %v", err)
	}
	if !strings.Contains(fmt.Sprint(pe.Value), "injected panic: job-3") {
		t.Fatalf("panic value = %v", pe.Value)
	}
	if len(pe.Stack) == 0 || !strings.Contains(string(pe.Stack), "sweep") {
		t.Fatalf("stack not captured: %q", pe.Stack)
	}
	if strings.Contains(err.Error(), "goroutine") {
		t.Fatalf("error string leaks the stack: %q", err.Error())
	}
}

// TestCollectAllRunsEverything verifies CollectAll executes every job
// despite failures, fills the completion mask exactly, attributes each
// failure, and keeps every success's result.
func TestCollectAllRunsEverything(t *testing.T) {
	for _, workers := range []int{1, 4} {
		inj := NewInjector(
			FaultSpec{Key: "job-2", Kind: FaultError},
			FaultSpec{Key: "job-5", Kind: FaultPanic},
		)
		var ran int64
		out := Execute(context.Background(), Config{Workers: workers, ErrorPolicy: CollectAll},
			jobList(8), InjectFaults(inj, func(_ context.Context, j Job[int]) (int, error) {
				atomic.AddInt64(&ran, 1)
				return j.Options * 10, nil
			}))
		if out.Err == nil {
			t.Fatalf("workers=%d: failures not reported", workers)
		}
		if got := atomic.LoadInt64(&ran); got != 6 {
			t.Fatalf("workers=%d: %d healthy jobs ran, want 6", workers, got)
		}
		for i := 0; i < 8; i++ {
			failed := i == 2 || i == 5
			if out.Completed[i] == failed {
				t.Errorf("workers=%d: Completed[%d] = %v", workers, i, out.Completed[i])
			}
			if failed {
				var je *JobError
				if !errors.As(out.JobErrors[i], &je) || je.Index != i {
					t.Errorf("workers=%d: JobErrors[%d] = %v", workers, i, out.JobErrors[i])
				}
				if out.Results[i] != 0 {
					t.Errorf("workers=%d: failed slot %d holds %d", workers, i, out.Results[i])
				}
			} else if out.Results[i] != i*10 {
				t.Errorf("workers=%d: Results[%d] = %d, want %d", workers, i, out.Results[i], i*10)
			}
		}
		if got := out.CompletedCount(); got != 6 {
			t.Fatalf("workers=%d: CompletedCount = %d, want 6", workers, got)
		}
		if msg := out.Err.Error(); !strings.Contains(msg, "sweep: job 2 (job-2):") ||
			!strings.Contains(msg, "sweep: job 5 (job-5): panic:") {
			t.Fatalf("workers=%d: joined error = %q", workers, msg)
		}
	}
}

// TestCollectAllErrorDeterministic verifies the CollectAll error set is
// identical under any scheduling: the joined message — failures in
// declaration order — matches byte-for-byte across worker counts.
func TestCollectAllErrorDeterministic(t *testing.T) {
	run := func(workers int) string {
		inj := NewInjector(
			FaultSpec{Key: "job-1", Kind: FaultError},
			FaultSpec{Key: "job-4", Kind: FaultError},
			FaultSpec{Key: "job-6", Kind: FaultError},
		)
		_, err := Run(context.Background(), Config{Workers: workers, ErrorPolicy: CollectAll},
			jobList(8), InjectFaults(inj, func(_ context.Context, j Job[int]) (int, error) {
				// Scramble completion order so declaration-order joining
				// is doing real work.
				time.Sleep(time.Duration(8-j.Options) * 200 * time.Microsecond)
				return j.Options, nil
			}))
		if err == nil {
			t.Fatalf("workers=%d: no error", workers)
		}
		return err.Error()
	}
	want := run(1)
	for _, workers := range []int{2, 8} {
		if got := run(workers); got != want {
			t.Fatalf("workers=%d error differs:\n%q\nvs serial:\n%q", workers, got, want)
		}
	}
}

// TestRetryUntilTransientClears verifies a job whose first executions fail
// succeeds once the flake clears within Retry.Attempts, and fails for good
// when the budget is one attempt too small.
func TestRetryUntilTransientClears(t *testing.T) {
	mk := func() *Injector {
		return NewInjector(
			FaultSpec{Key: "job-1", Execution: 1, Kind: FaultError},
			FaultSpec{Key: "job-1", Execution: 2, Kind: FaultError},
		)
	}
	inj := mk()
	got, err := Run(context.Background(), Config{Workers: 2, Retry: Retry{Attempts: 2}},
		jobList(4), InjectFaults(inj, okFn))
	if err != nil {
		t.Fatalf("flake did not clear: %v", err)
	}
	if got[1] != 10 {
		t.Fatalf("results[1] = %d after retries, want 10", got[1])
	}
	if n := inj.Executions("job-1"); n != 3 {
		t.Fatalf("flaky job executed %d times, want 3", n)
	}

	inj = mk()
	_, err = Run(context.Background(), Config{Workers: 2, Retry: Retry{Attempts: 1}},
		jobList(4), InjectFaults(inj, okFn))
	if err == nil {
		t.Fatal("Attempts=1 cleared a two-failure flake")
	}
	if n := inj.Executions("job-1"); n != 2 {
		t.Fatalf("flaky job executed %d times under Attempts=1, want 2", n)
	}
}

// TestRetryTransientFilter verifies Transient gates retry: a permanent
// error runs once no matter the attempt budget.
func TestRetryTransientFilter(t *testing.T) {
	permanent := errors.New("permanent")
	inj := NewInjector(FaultSpec{Key: "job-0", Kind: FaultError, Err: permanent})
	cfg := Config{Workers: 1, Retry: Retry{
		Attempts:  5,
		Transient: func(err error) bool { return !errors.Is(err, permanent) },
	}}
	_, err := Run(context.Background(), cfg, jobList(2), InjectFaults(inj, okFn))
	if !errors.Is(err, permanent) {
		t.Fatalf("err = %v", err)
	}
	if n := inj.Executions("job-0"); n != 1 {
		t.Fatalf("permanent failure executed %d times, want 1", n)
	}
}

// TestRetryBackoffAbortsOnCancel verifies a retry backoff does not outlive
// the sweep: cancellation during the wait returns promptly.
func TestRetryBackoffAbortsOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	inj := NewInjector(FaultSpec{Key: "job-0", Kind: FaultError})
	start := time.Now()
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	_, err := Run(ctx, Config{Workers: 1, Retry: Retry{Attempts: 3, Backoff: time.Hour}},
		jobList(1), InjectFaults(inj, okFn))
	if err == nil {
		t.Fatal("no error")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("backoff ignored cancellation (%v elapsed)", elapsed)
	}
	if n := inj.Executions("job-0"); n != 1 {
		t.Fatalf("job executed %d times, want 1 (backoff aborted)", n)
	}
}

// TestExternalCancelNotAttributed pins the cancellation-attribution fix: a
// job that returns the canceled context's error — bare or wrapped — after
// an external cancellation is a casualty, and Run returns the bare
// cancellation instead of blaming the job.
func TestExternalCancelNotAttributed(t *testing.T) {
	for _, policy := range []ErrorPolicy{FailFast, CollectAll} {
		ctx, cancel := context.WithCancel(context.Background())
		fn := func(ctx context.Context, j Job[int]) (int, error) {
			if j.Options == 0 {
				cancel() // the "user hit ^C" moment
			}
			<-ctx.Done()
			if j.Options%2 == 0 {
				return 0, ctx.Err() // bare
			}
			return 0, fmt.Errorf("stream copy: %w", ctx.Err()) // wrapped
		}
		_, err := Run(ctx, Config{Workers: 4, ErrorPolicy: policy}, jobList(4), fn)
		if err != context.Canceled {
			t.Errorf("policy=%v: err = %v, want bare context.Canceled", policy, err)
		}
		var je *JobError
		if errors.As(err, &je) {
			t.Errorf("policy=%v: cancellation misattributed to job %d", policy, je.Index)
		}
		cancel()
	}
}

// TestOwnCanceledErrorIsFailure is the flip side of the attribution fix: a
// job returning context.Canceled of its own accord — no cancellation
// pending — is a genuine job failure, not a casualty.
func TestOwnCanceledErrorIsFailure(t *testing.T) {
	fn := func(_ context.Context, j Job[int]) (int, error) {
		if j.Options == 1 {
			return 0, context.Canceled // a bug in the job, not our cancel
		}
		return j.Options, nil
	}
	_, err := Run(context.Background(), Config{Workers: 2}, jobList(3), fn)
	var je *JobError
	if !errors.As(err, &je) || je.Index != 1 {
		t.Fatalf("self-inflicted Canceled not attributed: %v", err)
	}
}

// TestOnProgressPanicKeepsDraining is the regression test for the poisoned
// progress lock: a panicking callback must not hang the pool — every job
// still runs, results are intact, and the panic surfaces in the error.
func TestOnProgressPanicKeepsDraining(t *testing.T) {
	var ran int64
	cfg := Config{
		Workers:    2,
		OnProgress: func(Progress) { panic("callback boom") },
	}
	got, err := Run(context.Background(), cfg, jobList(8),
		func(_ context.Context, j Job[int]) (int, error) {
			atomic.AddInt64(&ran, 1)
			return j.Options * 10, nil
		})
	if n := atomic.LoadInt64(&ran); n != 8 {
		t.Fatalf("pool stopped draining: %d of 8 jobs ran", n)
	}
	for i, r := range got {
		if r != i*10 {
			t.Fatalf("results[%d] = %d, want %d", i, r, i*10)
		}
	}
	if err == nil || !strings.Contains(err.Error(), "OnProgress") {
		t.Fatalf("callback panic not surfaced: %v", err)
	}
	var pe *PanicError
	if !errors.As(err, &pe) || fmt.Sprint(pe.Value) != "callback boom" {
		t.Fatalf("PanicError missing from chain: %v", err)
	}
}

// TestHangFaultUnstuckByCancel drives the graceful-interrupt shape: one
// cell hangs forever, the caller cancels once everything else completed,
// and the sweep returns the cancellation with every finished result
// intact and the hung slot marked incomplete.
func TestHangFaultUnstuckByCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	inj := NewInjector(FaultSpec{Key: "job-2", Kind: FaultHang})
	cfg := Config{
		Workers: 4,
		OnProgress: func(p Progress) {
			if p.Done == 7 { // all but the hung cell
				cancel()
			}
		},
	}
	out := Execute(ctx, cfg, jobList(8), InjectFaults(inj, okFn))
	if !errors.Is(out.Err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", out.Err)
	}
	for i := 0; i < 8; i++ {
		if i == 2 {
			if out.Completed[i] {
				t.Error("hung job marked completed")
			}
			if out.JobErrors[i] != nil {
				t.Errorf("hung job blamed for the cancellation: %v", out.JobErrors[i])
			}
			continue
		}
		if !out.Completed[i] || out.Results[i] != i*10 {
			t.Errorf("slot %d lost its result: completed=%v r=%d", i, out.Completed[i], out.Results[i])
		}
	}
}

// TestCollectAllDedupMask verifies the completion mask through dedup
// fan-out: aliases of a completed representative count as completed;
// aliases of a failed one stay incomplete with no error of their own.
func TestCollectAllDedupMask(t *testing.T) {
	jobs := []Job[int]{
		{Key: "ok-rep", Options: 1, DedupKey: "OK"},
		{Key: "bad-rep", Options: 2, DedupKey: "BAD"},
		{Key: "ok-dup", Options: 3, DedupKey: "OK"},
		{Key: "bad-dup", Options: 4, DedupKey: "BAD"},
	}
	inj := NewInjector(FaultSpec{Key: "bad-rep", Kind: FaultError})
	out := Execute(context.Background(), Config{Workers: 2, ErrorPolicy: CollectAll},
		jobs, InjectFaults(inj, okFn))
	if out.Err == nil {
		t.Fatal("failure not reported")
	}
	wantCompleted := []bool{true, false, true, false}
	for i, want := range wantCompleted {
		if out.Completed[i] != want {
			t.Errorf("Completed[%d] = %v, want %v", i, out.Completed[i], want)
		}
	}
	if out.Results[0] != 10 || out.Results[2] != 10 {
		t.Errorf("dedup fan-out lost results: %v", out.Results)
	}
	if out.JobErrors[1] == nil {
		t.Error("failed representative has no error")
	}
	if out.JobErrors[3] != nil {
		t.Errorf("alias blamed for its representative's failure: %v", out.JobErrors[3])
	}
}

// TestFailFastWithRetrySemantics verifies FailFast only fires after the
// retry budget is exhausted — a flake that clears never cancels the sweep.
func TestFailFastWithRetrySemantics(t *testing.T) {
	inj := NewInjector(FaultSpec{Key: "job-0", Execution: 1, Kind: FaultError})
	var ran int64
	got, err := Run(context.Background(), Config{Workers: 1, Retry: Retry{Attempts: 1}},
		jobList(4), InjectFaults(inj, func(_ context.Context, j Job[int]) (int, error) {
			atomic.AddInt64(&ran, 1)
			return j.Options * 10, nil
		}))
	if err != nil {
		t.Fatalf("cleared flake failed the sweep: %v", err)
	}
	if atomic.LoadInt64(&ran) != 4 {
		t.Fatalf("%d healthy executions, want 4", ran)
	}
	for i, r := range got {
		if r != i*10 {
			t.Fatalf("results[%d] = %d", i, r)
		}
	}
}
