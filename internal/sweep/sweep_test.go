package sweep

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func jobList(n int) []Job[int] {
	jobs := make([]Job[int], n)
	for i := range jobs {
		jobs[i] = Job[int]{Key: fmt.Sprintf("job-%d", i), Options: i}
	}
	return jobs
}

// TestOrdering verifies results come back in declaration order even when
// completion order is scrambled.
func TestOrdering(t *testing.T) {
	jobs := jobList(32)
	for _, workers := range []int{1, 4, 32} {
		got, err := Run(context.Background(), Config{Workers: workers}, jobs,
			func(_ context.Context, j Job[int]) (int, error) {
				// Early jobs sleep longest so completion order inverts
				// declaration order under parallelism.
				time.Sleep(time.Duration(len(jobs)-j.Options) * 100 * time.Microsecond)
				return j.Options * 10, nil
			})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, r := range got {
			if r != i*10 {
				t.Fatalf("workers=%d: results[%d] = %d, want %d", workers, i, r, i*10)
			}
		}
	}
}

// TestWorkerCapOne proves Workers=1 never overlaps two jobs.
func TestWorkerCapOne(t *testing.T) {
	var inflight, maxInflight int64
	_, err := Run(context.Background(), Config{Workers: 1}, jobList(16),
		func(_ context.Context, j Job[int]) (int, error) {
			cur := atomic.AddInt64(&inflight, 1)
			for {
				old := atomic.LoadInt64(&maxInflight)
				if cur <= old || atomic.CompareAndSwapInt64(&maxInflight, old, cur) {
					break
				}
			}
			time.Sleep(200 * time.Microsecond)
			atomic.AddInt64(&inflight, -1)
			return 0, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if got := atomic.LoadInt64(&maxInflight); got != 1 {
		t.Fatalf("max in-flight jobs = %d with Workers=1", got)
	}
}

// TestWorkerCapN proves N workers genuinely run concurrently: each job
// blocks until all N are in flight, so anything less than N workers would
// deadlock (bounded here by the test timeout).
func TestWorkerCapN(t *testing.T) {
	const n = 4
	var started sync.WaitGroup
	started.Add(n)
	_, err := Run(context.Background(), Config{Workers: n}, jobList(n),
		func(_ context.Context, j Job[int]) (int, error) {
			started.Done()
			started.Wait() // requires all n jobs in flight at once
			return j.Options, nil
		})
	if err != nil {
		t.Fatal(err)
	}
}

// TestErrorPropagation checks the FailFast contract: the first observed
// failure wins (which of several concurrent failures that is depends on
// scheduling), and it always comes back wrapped in a *JobError naming its
// own index and key.
func TestErrorPropagation(t *testing.T) {
	boom := errors.New("boom")
	jobs := jobList(8)
	_, err := Run(context.Background(), Config{Workers: 8}, jobs,
		func(_ context.Context, j Job[int]) (int, error) {
			if j.Options == 3 || j.Options == 5 {
				return 0, fmt.Errorf("cell %d: %w", j.Options, boom)
			}
			time.Sleep(5 * time.Millisecond)
			return 0, nil
		})
	if err == nil {
		t.Fatal("no error propagated")
	}
	if !errors.Is(err, boom) {
		t.Fatalf("error chain broken: %v", err)
	}
	var je *JobError
	if !errors.As(err, &je) {
		t.Fatalf("error is not a *JobError: %v", err)
	}
	if je.Index != 3 && je.Index != 5 {
		t.Fatalf("winner index = %d, want a failing job (3 or 5)", je.Index)
	}
	if want := fmt.Sprintf("job-%d", je.Index); je.Key != want {
		t.Fatalf("winner key = %q does not match its index %d", je.Key, je.Index)
	}
	if !strings.Contains(err.Error(), fmt.Sprintf("sweep: job %d (job-%d):", je.Index, je.Index)) {
		t.Fatalf("error does not name the failed job: %v", err)
	}
}

// TestErrorStopsUnstartedJobs verifies first-error propagation halts the
// sweep: with one worker, jobs after the failure never run.
func TestErrorStopsUnstartedJobs(t *testing.T) {
	var ran int64
	_, err := Run(context.Background(), Config{Workers: 1}, jobList(10),
		func(_ context.Context, j Job[int]) (int, error) {
			atomic.AddInt64(&ran, 1)
			if j.Options == 2 {
				return 0, errors.New("stop here")
			}
			return 0, nil
		})
	if err == nil {
		t.Fatal("expected error")
	}
	if got := atomic.LoadInt64(&ran); got != 3 {
		t.Fatalf("ran %d jobs after failure at index 2, want 3", got)
	}
}

// TestCancellationMidSweep cancels the context from inside a job and
// verifies the sweep stops early and reports the cancellation.
func TestCancellationMidSweep(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var ran int64
	results, err := Run(ctx, Config{Workers: 1}, jobList(100),
		func(_ context.Context, j Job[int]) (int, error) {
			atomic.AddInt64(&ran, 1)
			if j.Options == 4 {
				cancel()
			}
			return j.Options + 1, nil
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := atomic.LoadInt64(&ran); got != 5 {
		t.Fatalf("ran %d jobs, want 5 (cancel after index 4)", got)
	}
	// Completed jobs keep their results; unstarted ones stay zero.
	for i := 0; i <= 4; i++ {
		if results[i] != i+1 {
			t.Errorf("results[%d] = %d, want %d", i, results[i], i+1)
		}
	}
	for i := 5; i < 100; i++ {
		if results[i] != 0 {
			t.Errorf("results[%d] = %d for unstarted job, want 0", i, results[i])
		}
	}
}

// TestCanceledBeforeStart runs nothing when the context is already dead.
func TestCanceledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran int64
	_, err := Run(ctx, Config{}, jobList(8),
		func(context.Context, Job[int]) (int, error) {
			atomic.AddInt64(&ran, 1)
			return 0, nil
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if got := atomic.LoadInt64(&ran); got != 0 {
		t.Fatalf("ran %d jobs under a dead context", got)
	}
}

// TestProgress verifies Done counts monotonically to Total, every key is
// reported exactly once, and job wall times are populated.
func TestProgress(t *testing.T) {
	jobs := jobList(12)
	seen := map[string]bool{}
	last := 0
	_, err := Run(context.Background(), Config{
		Workers: 4,
		OnProgress: func(p Progress) {
			// Callbacks are serialized, so no locking here — -race
			// verifies that claim.
			if p.Total != len(jobs) {
				t.Errorf("Total = %d, want %d", p.Total, len(jobs))
			}
			if p.Done != last+1 {
				t.Errorf("Done = %d after %d", p.Done, last)
			}
			last = p.Done
			if seen[p.Key] {
				t.Errorf("key %q reported twice", p.Key)
			}
			seen[p.Key] = true
			if p.Elapsed < 0 {
				t.Errorf("negative elapsed %v", p.Elapsed)
			}
		},
	}, jobs, func(_ context.Context, j Job[int]) (int, error) {
		time.Sleep(100 * time.Microsecond)
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if last != len(jobs) || len(seen) != len(jobs) {
		t.Fatalf("progress incomplete: last=%d keys=%d", last, len(seen))
	}
}

// TestEmptyAndNil covers the degenerate inputs.
func TestEmptyAndNil(t *testing.T) {
	got, err := Run(context.Background(), Config{}, nil,
		func(context.Context, Job[int]) (int, error) { return 0, nil })
	if err != nil || len(got) != 0 {
		t.Fatalf("empty sweep: %v, %v", got, err)
	}
	if _, err := Run[int, int](context.Background(), Config{}, jobList(1), nil); err == nil {
		t.Fatal("nil run function accepted")
	}
}

// TestDefaultWorkers just exercises the GOMAXPROCS default path.
func TestDefaultWorkers(t *testing.T) {
	got, err := Run(context.Background(), Config{}, jobList(5),
		func(_ context.Context, j Job[int]) (int, error) { return j.Options, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range got {
		if r != i {
			t.Fatalf("results[%d] = %d", i, r)
		}
	}
}

// TestDedupExecutesOncePerKey verifies jobs sharing a DedupKey run once,
// their results fan out to every duplicate slot, and jobs without a
// DedupKey never deduplicate.
func TestDedupExecutesOncePerKey(t *testing.T) {
	jobs := []Job[int]{
		{Key: "a0", Options: 0, DedupKey: "A"},
		{Key: "b0", Options: 1, DedupKey: "B"},
		{Key: "a1", Options: 2, DedupKey: "A"},
		{Key: "plain0", Options: 3},
		{Key: "plain1", Options: 4},
		{Key: "a2", Options: 5, DedupKey: "A"},
		{Key: "b1", Options: 6, DedupKey: "B"},
	}
	for _, workers := range []int{1, 4} {
		var runs int64
		ranOptions := make(map[int]bool)
		var mu sync.Mutex
		got, err := Run(context.Background(), Config{Workers: workers}, jobs,
			func(_ context.Context, j Job[int]) (int, error) {
				atomic.AddInt64(&runs, 1)
				mu.Lock()
				ranOptions[j.Options] = true
				mu.Unlock()
				return j.Options * 10, nil
			})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got := atomic.LoadInt64(&runs); got != 4 {
			t.Fatalf("workers=%d: %d executions, want 4 (A, B, plain0, plain1)", workers, got)
		}
		// Representatives are the first declaration of each key.
		for _, opt := range []int{0, 1, 3, 4} {
			if !ranOptions[opt] {
				t.Errorf("workers=%d: representative with Options=%d did not run", workers, opt)
			}
		}
		// Duplicates receive the representative's result.
		want := []int{0, 10, 0, 30, 40, 0, 10}
		for i, r := range got {
			if r != want[i] {
				t.Errorf("workers=%d: results[%d] = %d, want %d", workers, i, r, want[i])
			}
		}
	}
}

// TestDedupProgressTotals verifies Total reflects unique jobs and Deduped
// the folded count.
func TestDedupProgressTotals(t *testing.T) {
	jobs := []Job[int]{
		{Key: "x0", DedupKey: "X"},
		{Key: "x1", DedupKey: "X"},
		{Key: "x2", DedupKey: "X"},
		{Key: "y", DedupKey: "Y"},
	}
	var calls int
	_, err := Run(context.Background(), Config{
		Workers: 2,
		OnProgress: func(p Progress) {
			calls++
			if p.Total != 2 {
				t.Errorf("Total = %d, want 2 unique jobs", p.Total)
			}
			if p.Deduped != 2 {
				t.Errorf("Deduped = %d, want 2", p.Deduped)
			}
		},
	}, jobs, func(_ context.Context, j Job[int]) (int, error) { return 1, nil })
	if err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Fatalf("OnProgress called %d times, want 2", calls)
	}
}

// TestDedupErrorAttribution verifies a failing representative is reported
// under its own key and duplicates stay zero.
func TestDedupErrorAttribution(t *testing.T) {
	boom := errors.New("boom")
	jobs := []Job[int]{
		{Key: "ok", DedupKey: "OK"},
		{Key: "bad-rep", DedupKey: "BAD"},
		{Key: "bad-dup", DedupKey: "BAD"},
	}
	results, err := Run(context.Background(), Config{Workers: 1}, jobs,
		func(_ context.Context, j Job[int]) (int, error) {
			if j.DedupKey == "BAD" {
				return 0, boom
			}
			return 7, nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if !strings.Contains(err.Error(), "bad-rep") {
		t.Fatalf("error blames wrong job: %v", err)
	}
	if results[0] != 7 || results[1] != 0 || results[2] != 0 {
		t.Fatalf("results = %v", results)
	}
}
