package sweep

import (
	"context"
	"fmt"
	"sync"
)

// Fault injection for testing a sweep's failure paths. An Injector scripts
// faults against job keys — fail the Nth execution of this key, panic on
// that one, hang a third until cancellation — and InjectFaults splices it
// in front of any run function. The sweep and experiments tests drive the
// panic-recovery, retry, error-policy, and interrupt paths with it (under
// -race); production code never constructs one.

// FaultKind selects what an injected fault does.
type FaultKind int

const (
	// FaultError makes the execution return an error.
	FaultError FaultKind = iota
	// FaultPanic makes the execution panic.
	FaultPanic
	// FaultHang blocks the execution until its context is canceled, then
	// returns the context's error — a hung cell that only an external
	// cancellation (or FailFast from another failure) can unstick.
	FaultHang
)

// FaultSpec scripts one fault: inject Kind on the Execution-th execution
// (1-based) of the job with Key; Execution 0 faults every execution of
// that key. For FaultError, Err overrides the injected error when non-nil.
type FaultSpec struct {
	Key       string
	Execution int
	Kind      FaultKind
	Err       error
}

// Injector counts executions per job key and serves the scripted faults.
// Safe for concurrent use by sweep workers.
type Injector struct {
	mu     sync.Mutex
	counts map[string]int
	specs  []FaultSpec
}

// NewInjector builds an injector from fault scripts.
func NewInjector(specs ...FaultSpec) *Injector {
	return &Injector{counts: make(map[string]int), specs: specs}
}

// Executions reports how many times jobs with the given key have started
// executing (retries count as separate executions).
func (inj *Injector) Executions(key string) int {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.counts[key]
}

// next records one execution of key and returns the fault scripted for it,
// if any.
func (inj *Injector) next(key string) (FaultSpec, int, bool) {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	inj.counts[key]++
	n := inj.counts[key]
	for _, s := range inj.specs {
		if s.Key == key && (s.Execution == 0 || s.Execution == n) {
			return s, n, true
		}
	}
	return FaultSpec{}, n, false
}

// InjectFaults wraps fn so every execution first consults the injector: a
// matching fault fires instead of fn; everything else passes through. A
// nil injector returns fn unchanged.
func InjectFaults[O, R any](inj *Injector, fn func(context.Context, Job[O]) (R, error)) func(context.Context, Job[O]) (R, error) {
	if inj == nil {
		return fn
	}
	return func(ctx context.Context, j Job[O]) (R, error) {
		spec, n, ok := inj.next(j.Key)
		if !ok {
			return fn(ctx, j)
		}
		var zero R
		switch spec.Kind {
		case FaultPanic:
			panic(fmt.Sprintf("injected panic: %s (execution %d)", j.Key, n))
		case FaultHang:
			<-ctx.Done()
			return zero, ctx.Err()
		default:
			if spec.Err != nil {
				return zero, spec.Err
			}
			return zero, fmt.Errorf("injected error: %s (execution %d)", j.Key, n)
		}
	}
}
