// Package perfmodel implements the paper's linear performance model
// (Table IV). The paper does not measure agile paging on real hardware —
// no such hardware exists; instead it projects agile performance from
// measured counters of the constituent techniques plus two trace-derived
// fraction sets:
//
//	F_Ni — fraction of TLB misses served in nested mode with the switch at
//	       level i (from the BadgerTrap step)
//	F_Vi — fraction of VMM interventions of type i that agile eliminates
//	       (from the KVM trace step)
//
// The simulator measures agile paging directly, but reproducing the model
// lets us validate the paper's methodology against direct simulation.
package perfmodel

import (
	"errors"
	"fmt"
)

// ErrZeroIdeal reports an overhead computation against zero ideal cycles —
// a malformed Measured that would otherwise masquerade as 0% overhead.
var ErrZeroIdeal = errors.New("perfmodel: zero ideal cycles")

// Measured holds the performance-counter values of one run, as the paper
// collects with Linux perf (§VI): total execution cycles E, cycles spent on
// TLB misses T, number of TLB misses M, and cycles spent in the hypervisor
// H (zero for base native).
type Measured struct {
	ExecCycles       uint64 // E
	TLBMissCycles    uint64 // T
	TLBMisses        uint64 // M
	HypervisorCycles uint64 // H
}

// Ideal computes E_ideal = E − T from a base-native run (Table IV row 1;
// the paper uses the native 2M configuration). A run reporting more
// TLB-miss cycles than execution cycles is malformed — silently clamping
// it to 0 used to let every downstream overhead read as a plausible 0%,
// so it is an error instead.
func Ideal(native Measured) (uint64, error) {
	if native.TLBMissCycles > native.ExecCycles {
		return 0, fmt.Errorf("perfmodel: TLB-miss cycles %d exceed execution cycles %d",
			native.TLBMissCycles, native.ExecCycles)
	}
	return native.ExecCycles - native.TLBMissCycles, nil
}

// Overheads is the two-component decomposition Figure 5 plots.
type Overheads struct {
	PageWalk float64 // PW = [E − E_ideal − H] / E_ideal
	VMM      float64 // VMM = H / E_ideal
}

// Total is the combined overhead.
func (o Overheads) Total() float64 { return o.PageWalk + o.VMM }

// Compute applies Table IV rows 2-3 to a measured run. A zero ideal would
// divide away into zero Overheads, hiding the malformed input, so it
// returns ErrZeroIdeal instead.
func Compute(m Measured, ideal uint64) (Overheads, error) {
	if ideal == 0 {
		return Overheads{}, ErrZeroIdeal
	}
	var pw float64
	if m.ExecCycles > ideal+m.HypervisorCycles {
		pw = float64(m.ExecCycles-ideal-m.HypervisorCycles) / float64(ideal)
	}
	return Overheads{
		PageWalk: pw,
		VMM:      float64(m.HypervisorCycles) / float64(ideal),
	}, nil
}

// CyclesPerMiss is Table IV row 4: C = T / M.
func CyclesPerMiss(m Measured) float64 {
	if m.TLBMisses == 0 {
		return 0
	}
	return float64(m.TLBMissCycles) / float64(m.TLBMisses)
}

// NestedFractions holds F_Ni: index 1..4 is the fraction of TLB misses
// whose translation switches to nested mode at level i (1 = top); index 0
// is unused. The full-shadow fraction is 1 − ΣF_Ni.
type NestedFractions [5]float64

// Sum returns ΣF_Ni (the nested-touched fraction of misses).
func (f NestedFractions) Sum() float64 {
	s := 0.0
	for i := 1; i <= 4; i++ {
		s += f[i]
	}
	return s
}

// ProjectWalkOverhead is Table IV row 5: the projected page-walk overhead
// of agile paging,
//
//	PW_A = [C_N·ΣF_N{2..4} + C_S·(1−ΣF_Ni) + (C_N+C_S)·0.5·F_N1] · M_B / E_ideal
//
// where C_N and C_S are the per-miss cycle costs of nested and shadow
// paging and M_B the base-native miss count. As in the paper, a switch at
// the top level (F_N1) is conservatively charged half the nested cost
// beyond shadow, and deeper switches pay the full nested cost.
func ProjectWalkOverhead(cN, cS float64, f NestedFractions, baseMisses, ideal uint64) float64 {
	if ideal == 0 {
		return 0
	}
	deep := f[2] + f[3] + f[4]
	cycles := (cN*deep + cS*(1-f.Sum()) + (cN+cS)*0.5*f[1]) * float64(baseMisses)
	return cycles / float64(ideal)
}

// ProjectVMMOverhead is Table IV row 6: the projected VMM overhead of agile
// paging, VMM_A = O_S − Σ(F_Vi · CE_i)/E_ideal: the shadow VMM overhead
// minus the interventions agile eliminates. avoidedCycles is Σ F_Vi·CE_i,
// the cycle total of eliminated traps.
func ProjectVMMOverhead(shadowVMM float64, avoidedCycles, ideal uint64) float64 {
	if ideal == 0 {
		return 0
	}
	o := shadowVMM - float64(avoidedCycles)/float64(ideal)
	if o < 0 {
		return 0
	}
	return o
}

// ProjectAgile combines rows 5 and 6 into the full agile projection.
func ProjectAgile(nested, shadow Measured, ideal uint64, f NestedFractions, baseMisses, avoidedTrapCycles uint64) (Overheads, error) {
	cN := CyclesPerMiss(nested)
	cS := CyclesPerMiss(shadow)
	sOv, err := Compute(shadow, ideal)
	if err != nil {
		return Overheads{}, err
	}
	return Overheads{
		PageWalk: ProjectWalkOverhead(cN, cS, f, baseMisses, ideal),
		VMM:      ProjectVMMOverhead(sOv.VMM, avoidedTrapCycles, ideal),
	}, nil
}
