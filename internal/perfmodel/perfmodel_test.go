package perfmodel

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestIdeal(t *testing.T) {
	got, err := Ideal(Measured{ExecCycles: 1000, TLBMissCycles: 200})
	if err != nil || got != 800 {
		t.Errorf("Ideal = %d, %v", got, err)
	}
	// A run claiming more TLB-miss cycles than execution cycles is
	// malformed and must be reported, not clamped to a plausible 0.
	if _, err := Ideal(Measured{ExecCycles: 100, TLBMissCycles: 200}); err == nil {
		t.Error("degenerate Measured accepted")
	}
	// The T == E boundary is valid (ideal 0 is then a true measurement).
	if got, err := Ideal(Measured{ExecCycles: 200, TLBMissCycles: 200}); err != nil || got != 0 {
		t.Errorf("boundary Ideal = %d, %v", got, err)
	}
}

func TestComputeOverheads(t *testing.T) {
	m := Measured{ExecCycles: 1500, TLBMissCycles: 300, HypervisorCycles: 200}
	o, err := Compute(m, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(o.PageWalk, 0.3) {
		t.Errorf("PageWalk = %v", o.PageWalk)
	}
	if !almostEqual(o.VMM, 0.2) {
		t.Errorf("VMM = %v", o.VMM)
	}
	if !almostEqual(o.Total(), 0.5) {
		t.Errorf("Total = %v", o.Total())
	}
	// Zero ideal used to silently produce zero Overheads — a plausible
	// "0% overhead" from malformed input. It must error now.
	if _, err := Compute(m, 0); !errors.Is(err, ErrZeroIdeal) {
		t.Errorf("Compute with zero ideal: err = %v, want ErrZeroIdeal", err)
	}
	// Hypervisor cycles exceeding the gap clamp page-walk overhead at 0
	// (this clamp is legitimate: rounding can push H past E − E_ideal).
	o, err = Compute(Measured{ExecCycles: 1100, HypervisorCycles: 200}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if o.PageWalk != 0 {
		t.Errorf("clamped PageWalk = %v", o.PageWalk)
	}
	if !almostEqual(o.VMM, 0.2) {
		t.Errorf("clamped-branch VMM = %v", o.VMM)
	}
}

func TestCyclesPerMiss(t *testing.T) {
	if got := CyclesPerMiss(Measured{TLBMissCycles: 900, TLBMisses: 30}); got != 30 {
		t.Errorf("CyclesPerMiss = %v", got)
	}
	if CyclesPerMiss(Measured{}) != 0 {
		t.Error("zero misses")
	}
}

func TestNestedFractionsSum(t *testing.T) {
	f := NestedFractions{0, 0.1, 0.2, 0.0, 0.05}
	if !almostEqual(f.Sum(), 0.35) {
		t.Errorf("Sum = %v", f.Sum())
	}
}

// TestProjectWalkBounds: the agile projection must lie between pure shadow
// and pure nested costs for any fraction split.
func TestProjectWalkBounds(t *testing.T) {
	const cN, cS = 24 * 40.0, 4 * 40.0
	const misses, ideal = 1_000, 1_000_000
	shadowOnly := ProjectWalkOverhead(cN, cS, NestedFractions{}, misses, ideal)
	nestedOnly := ProjectWalkOverhead(cN, cS, NestedFractions{0, 0, 0, 0, 1}, misses, ideal)
	if !almostEqual(shadowOnly, cS*misses/ideal) {
		t.Errorf("shadow-only projection = %v", shadowOnly)
	}
	if !almostEqual(nestedOnly, cN*misses/ideal) {
		t.Errorf("nested-only projection = %v", nestedOnly)
	}
	err := quick.Check(func(a, b, c, d uint8) bool {
		tot := float64(a) + float64(b) + float64(c) + float64(d)
		if tot == 0 {
			return true
		}
		// Random split scaled to sum <= 1.
		scale := 1 / math.Max(tot, 255)
		f := NestedFractions{0, float64(a) * scale, float64(b) * scale, float64(c) * scale, float64(d) * scale}
		p := ProjectWalkOverhead(cN, cS, f, misses, ideal)
		return p >= shadowOnly-1e-9 && p <= nestedOnly+1e-9
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestProjectWalkHalfCostAtTopLevel(t *testing.T) {
	// Per the paper's conservative assumption, F_N1 pays (C_N+C_S)/2.
	const cN, cS = 100.0, 10.0
	got := ProjectWalkOverhead(cN, cS, NestedFractions{0, 1, 0, 0, 0}, 10, 100)
	want := (cN + cS) * 0.5 * 10 / 100
	if !almostEqual(got, want) {
		t.Errorf("F_N1 projection = %v, want %v", got, want)
	}
}

func TestProjectVMMOverhead(t *testing.T) {
	if got := ProjectVMMOverhead(0.5, 300_000, 1_000_000); !almostEqual(got, 0.2) {
		t.Errorf("VMM projection = %v", got)
	}
	// Cannot go negative.
	if got := ProjectVMMOverhead(0.1, 1_000_000, 1_000_000); got != 0 {
		t.Errorf("negative projection = %v", got)
	}
	if ProjectVMMOverhead(0.5, 1, 0) != 0 {
		t.Error("zero ideal")
	}
}

func TestProjectAgileCombines(t *testing.T) {
	nested := Measured{ExecCycles: 2_000_000, TLBMissCycles: 960_000, TLBMisses: 1000}
	shadow := Measured{ExecCycles: 1_700_000, TLBMissCycles: 160_000, TLBMisses: 1000, HypervisorCycles: 500_000}
	ideal := uint64(1_000_000)
	// 90% of misses full shadow, 10% switch at the leaf.
	f := NestedFractions{0, 0, 0, 0, 0.1}
	o, err := ProjectAgile(nested, shadow, ideal, f, 1000, 400_000)
	if err != nil {
		t.Fatal(err)
	}
	sOv, err := Compute(shadow, ideal)
	if err != nil {
		t.Fatal(err)
	}
	if o.VMM >= sOv.VMM {
		t.Errorf("agile VMM %v should beat shadow %v", o.VMM, sOv.VMM)
	}
	nOv, err := Compute(nested, ideal)
	if err != nil {
		t.Fatal(err)
	}
	if o.PageWalk >= nOv.PageWalk {
		t.Errorf("agile walk %v should beat nested %v", o.PageWalk, nOv.PageWalk)
	}
	if o.Total() <= 0 {
		t.Error("empty projection")
	}
	// The zero-ideal error propagates through the combined projection.
	if _, err := ProjectAgile(nested, shadow, 0, f, 1000, 400_000); !errors.Is(err, ErrZeroIdeal) {
		t.Errorf("ProjectAgile with zero ideal: err = %v, want ErrZeroIdeal", err)
	}
}
