package core

import (
	"agilepaging/internal/pagetable"
	"agilepaging/internal/vmm"
)

// SHSPConfig parameterizes selective hardware/software paging.
type SHSPConfig struct {
	// IntervalCycles is the monitoring period after which the mode
	// decision is reconsidered (SHSP uses periodic sampling).
	IntervalCycles uint64
	// SwitchMargin is the hysteresis factor: switch modes only when the
	// other mode's (remembered or predicted) overhead is below the current
	// mode's by this factor.
	SwitchMargin float64
	// Smoothing is the EWMA weight given to the newest observation.
	Smoothing float64
	// WalkRatio predicts shadow walk overhead from nested walk overhead
	// (a shadow walk costs roughly half a nested walk's cycles).
	WalkRatio float64
	// FaultCostFactor predicts shadow's VMM overhead from the guest
	// page-fault rate: overhead ≈ faults/access × factor (two-plus VM
	// exits of thousands of cycles per fault versus tens of cycles per
	// access). SHSP monitors exactly these two signals — TLB misses and
	// guest page faults (paper §I).
	FaultCostFactor float64
}

// DefaultSHSP returns parameters in the spirit of the SHSP paper's
// miss/fault cost balancing: sample each mode, remember its cost, and run
// whichever is cheaper with hysteresis against oscillation.
func DefaultSHSP() SHSPConfig {
	return SHSPConfig{
		IntervalCycles:  2_000_000,
		SwitchMargin:    0.8,
		Smoothing:       0.5,
		WalkRatio:       0.5,
		FaultCostFactor: 110,
	}
}

// SHSPStats counts SHSP decisions.
type SHSPStats struct {
	ToShadow uint64 // whole-process switches nested ⇒ shadow
	ToNested uint64 // whole-process switches shadow ⇒ nested
	Rebuilds uint64 // shadow-table rebuilds triggered by switching to shadow
}

// SHSP implements the paper's prior-work comparison point, selective
// hardware/software paging (Wang et al., VEE 2011; paper §I, §VII.C): the
// VMM monitors TLB misses and VMM interventions and periodically switches
// the *entire* guest process between nested and shadow paging. It is a
// temporal-only policy — the paper's criticism is that switching to shadow
// mode requires (re)building the entire shadow page table, and that a
// single mode must fit the whole address space.
//
// SHSP runs on the same VMM mechanisms as agile paging: "all nested" is
// the context's full-nested state; "all shadow" is agile mode with no
// switching bits planted. It never uses partial (spatial) switching.
type SHSP struct {
	ctx *vmm.Context
	cfg SHSPConfig

	intervalStart uint64
	// Remembered per-mode translation overhead (EWMA); negative = untried.
	nestedScore float64
	shadowScore float64
	// faultEWMA smooths the bursty guest page-fault rate; samples counts
	// observation intervals so the first decision waits for a stable
	// picture of the workload.
	faultEWMA float64
	samples   int
	stats     SHSPStats
}

// NewSHSP attaches an SHSP controller to a context (which must have a
// shadow table). The process starts in nested mode, as SHSP recommends for
// unknown processes.
func NewSHSP(ctx *vmm.Context, cfg SHSPConfig) (*SHSP, error) {
	if ctx.SPT() == nil {
		return nil, vmm.ErrNotShadowed
	}
	if cfg.IntervalCycles == 0 {
		cfg = DefaultSHSP()
	}
	s := &SHSP{ctx: ctx, cfg: cfg, nestedScore: -1, shadowScore: -1}
	ctx.SetFullNested(true)
	return s, nil
}

// Stats returns the decision counters.
func (s *SHSP) Stats() SHSPStats { return s.stats }

// InShadow reports whether the process currently runs under shadow paging.
func (s *SHSP) InShadow() bool { return !s.ctx.FullNested() }

// Tick reconsiders the mode. missOverhead and trapOverhead are the
// fractions of recent cycles spent on TLB misses and on VMM interventions,
// and faultRate the guest page faults per access — the counters SHSP
// monitors ("It monitored TLB misses and guest page faults to periodically
// consider switching to the best mode", paper §I). The controller compares
// the current mode's observed overhead against the other mode's remembered
// or predicted overhead, with hysteresis against oscillation.
func (s *SHSP) Tick(now uint64, missOverhead, trapOverhead, faultRate float64) {
	if now-s.intervalStart < s.cfg.IntervalCycles {
		return
	}
	s.intervalStart = now
	cur := missOverhead + trapOverhead
	inShadow := s.InShadow()
	score := &s.nestedScore
	if inShadow {
		score = &s.shadowScore
	}
	if *score < 0 {
		*score = cur
	} else {
		*score = s.cfg.Smoothing*cur + (1-s.cfg.Smoothing)*(*score)
	}
	s.faultEWMA = s.cfg.Smoothing*faultRate + (1-s.cfg.Smoothing)*s.faultEWMA
	s.samples++
	if s.samples < 3 {
		return // wait for a stable picture before the first decision
	}
	if inShadow {
		// Nested was the starting mode, so its cost is always remembered.
		if s.nestedScore >= 0 && s.nestedScore < *score*s.cfg.SwitchMargin {
			s.switchMode(false)
		}
		return
	}
	// Predict shadow's cost from the monitored counters: native-speed
	// walks, but every guest page fault implies VMM interventions.
	est := s.shadowScore
	if est < 0 {
		est = missOverhead*s.cfg.WalkRatio + s.faultEWMA*s.cfg.FaultCostFactor
	}
	if est < cur*s.cfg.SwitchMargin {
		s.switchMode(true)
	}
}

// switchMode moves the whole process to shadow (toShadow) or nested mode.
func (s *SHSP) switchMode(toShadow bool) {
	if toShadow {
		// Moving to shadow paging rebuilds the shadow table from scratch:
		// every entry must be re-merged on demand — the cost the paper's
		// Section I calls "expensive for multi-GB to TB workloads".
		s.ctx.SetFullNested(false)
		s.rebuildShadow()
		s.stats.ToShadow++
		return
	}
	s.ctx.SetFullNested(true)
	s.stats.ToNested++
}

// rebuildShadow drops all shadow state so the table rebuilds on demand
// (charging the hidden-fault VM exits that constitute SHSP's switching
// cost).
func (s *SHSP) rebuildShadow() {
	s.stats.Rebuilds++
	spt := s.ctx.SPT()
	var leaves []pagetable.Leaf
	spt.VisitLeaves(func(l pagetable.Leaf) bool {
		leaves = append(leaves, l)
		return true
	})
	for _, l := range leaves {
		_ = spt.SetEntryAt(l.VA, l.Size.LeafLevel(), 0)
	}
	spt.FreeEmpty()
	s.ctx.FlushHW()
}
