package core

import (
	"testing"

	"agilepaging/internal/memsim"
	"agilepaging/internal/pagetable"
	"agilepaging/internal/vmm"
	"agilepaging/internal/walker"
)

type fixture struct {
	t   *testing.T
	mem *memsim.Memory
	vm  *vmm.VM
	ctx *vmm.Context
	mgr *Manager
	w   *walker.Walker
}

func newFixture(t *testing.T, cfg PolicyConfig) *fixture {
	t.Helper()
	mem := memsim.New(512 << 20)
	vmCfg := vmm.DefaultConfig(walker.ModeAgile)
	vmCfg.RAMBytes = 64 << 20
	vm, err := vmm.New(mem, vmm.NopMMU{}, 1, vmCfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := vm.NewProcess(9)
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := NewManager(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{t: t, mem: mem, vm: vm, ctx: ctx, mgr: mgr, w: walker.New(mem, nil, nil)}
}

// mapPage maps a fresh guest page at gva and returns its gpa.
func (f *fixture) mapPage(gva uint64) uint64 {
	f.t.Helper()
	gpa, err := f.vm.AllocGPA(pagetable.Size4K)
	if err != nil {
		f.t.Fatal(err)
	}
	if err := f.ctx.GPT().Map(gva, gpa, pagetable.Size4K, pagetable.FlagWrite|pagetable.FlagUser); err != nil {
		f.t.Fatal(err)
	}
	return gpa
}

// access simulates one memory access: walk, service faults, walk again.
func (f *fixture) access(gva uint64, write bool) walker.Result {
	f.t.Helper()
	for i := 0; i < 8; i++ {
		r, fault := f.w.Walk(f.ctx.Regs(), gva, write)
		if fault == nil {
			if write && !r.Flags.Writable() {
				resolved, err := f.ctx.HandleWriteProtect(gva)
				if err != nil {
					f.t.Fatal(err)
				}
				if !resolved {
					f.t.Fatalf("unexpected guest protection fault at %#x", gva)
				}
				continue
			}
			return r
		}
		switch fault.Kind {
		case walker.FaultNotPresent:
			out, err := f.ctx.HandleShadowFault(gva, write)
			if err != nil {
				f.t.Fatal(err)
			}
			if out != vmm.OutcomeRetry {
				f.t.Fatalf("guest fault for mapped page %#x", gva)
			}
		default:
			f.t.Fatalf("unexpected fault %v", fault)
		}
	}
	f.t.Fatalf("access to %#x did not converge", gva)
	return walker.Result{}
}

func TestManagerRequiresShadowTable(t *testing.T) {
	mem := memsim.New(64 << 20)
	vm, err := vmm.New(mem, vmm.NopMMU{}, 1, vmm.DefaultConfig(walker.ModeNested))
	if err != nil {
		t.Fatal(err)
	}
	ctx, _ := vm.NewProcess(1)
	if _, err := NewManager(ctx, DefaultPolicy()); err == nil {
		t.Fatal("manager attached to nested-only context")
	}
}

func TestWriteThresholdSwitchesLeafNodeToNested(t *testing.T) {
	f := newFixture(t, DefaultPolicy())
	gva := uint64(0x7f00_0000_0000)
	f.mapPage(gva)
	r := f.access(gva, false)
	if r.Refs != 4 || r.NestedLevels != 0 {
		t.Fatalf("initial access should be full shadow: %+v", r)
	}
	// The guest OS churns PTEs in the same leaf table: two intercepted
	// writes cross the threshold.
	f.mapPage(gva + 0x1000) // write 1 to the leaf table page
	f.mapPage(gva + 0x2000) // write 2 — node switches to nested
	if f.mgr.NestedNodes() == 0 {
		t.Fatal("no node switched to nested after threshold writes")
	}
	r = f.access(gva, false)
	if r.Refs != 8 || r.NestedLevels != 1 {
		t.Errorf("post-switch walk refs=%d nested=%d, want 8/1 (leaf nested)", r.Refs, r.NestedLevels)
	}
	// Further PT churn in that leaf table is now trap-free.
	before := f.vm.Stats().Traps[vmm.TrapPTWrite]
	f.mapPage(gva + 0x3000)
	if got := f.vm.Stats().Traps[vmm.TrapPTWrite] - before; got != 0 {
		t.Errorf("nested-node PT writes trapped %d times", got)
	}
	if f.mgr.Stats().SwitchesToNested == 0 {
		t.Error("switch not counted")
	}
}

func TestInteriorEntryChurnSwitchesChildSubtree(t *testing.T) {
	f := newFixture(t, DefaultPolicy())
	base := uint64(0x7f00_0000_0000)
	// Two leaf tables under one L2 node; only one of them sits under a
	// churning interior entry.
	f.mapPage(base)
	f.mapPage(base + (1 << 21)) // second leaf table, different L2 entry
	f.access(base, false)       // shadow-covers and protects the path
	f.access(base+(1<<21), false)
	leaf, err := f.ctx.GPT().EntryAt(base, 2)
	if err != nil {
		t.Fatal(err)
	}
	// The guest OS rewrites the same interior (L2) entry twice — e.g.
	// tearing down and reinstalling a leaf table. Entry-granular counting
	// converts the child subtree under that entry, not the whole L2 span.
	if err := f.ctx.GPT().SetEntryAt(base, 2, leaf); err != nil {
		t.Fatal(err)
	}
	if err := f.ctx.GPT().SetEntryAt(base, 2, leaf); err != nil {
		t.Fatal(err)
	}
	if !f.mgr.NodeNested(9, leaf.Addr()) {
		t.Fatal("child leaf table not switched to nested")
	}
	// The churned entry's child (the leaf table) runs nested: 3 sPT refs +
	// 1 nested leaf level = 8 refs...
	r := f.access(base, false)
	if r.Refs != 8 || r.NestedLevels != 1 {
		t.Errorf("refs=%d nested=%d, want 8/1", r.Refs, r.NestedLevels)
	}
	// ...while the sibling under the same L2 page stays full shadow.
	r = f.access(base+(1<<21), false)
	if r.Refs != 4 || r.NestedLevels != 0 {
		t.Errorf("sibling refs=%d nested=%d, want 4/0", r.Refs, r.NestedLevels)
	}
	for _, p := range f.ctx.SubtreePages(leaf.Addr()) {
		if f.ctx.IsProtected(p) {
			t.Errorf("nested subtree page %#x still protected", p)
		}
	}
}

func TestRevertResetPolicy(t *testing.T) {
	cfg := DefaultPolicy()
	cfg.Revert = RevertReset
	cfg.IntervalCycles = 1000
	f := newFixture(t, cfg)
	gva := uint64(0x7f00_0000_0000)
	f.mapPage(gva)
	f.access(gva, false)
	f.mapPage(gva + 0x1000)
	f.mapPage(gva + 0x2000)
	if f.mgr.NestedNodes() == 0 {
		t.Fatal("setup: no nested nodes")
	}
	f.mgr.Tick(5000, 0)
	if f.mgr.NestedNodes() != 0 {
		t.Errorf("reset left %d nested nodes", f.mgr.NestedNodes())
	}
	if f.mgr.Stats().IntervalResets != 1 || f.mgr.Stats().SwitchesToShadow == 0 {
		t.Errorf("stats = %+v", f.mgr.Stats())
	}
	// After refill, walks are full shadow again.
	r := f.access(gva, false)
	if r.Refs != 4 || r.NestedLevels != 0 {
		t.Errorf("post-reset walk refs=%d nested=%d, want 4/0", r.Refs, r.NestedLevels)
	}
}

func TestRevertDirtyScanKeepsHotPartsNested(t *testing.T) {
	cfg := DefaultPolicy()
	cfg.Revert = RevertDirtyScan
	cfg.IntervalCycles = 1000
	f := newFixture(t, cfg)
	hot := uint64(0x7f00_0000_0000)
	cold := uint64(0x0000_1000_0000)
	f.mapPage(hot)
	f.mapPage(cold)
	f.access(hot, false)
	f.access(cold, false)
	// Push both leaf nodes to nested.
	f.mapPage(hot + 0x1000)
	f.mapPage(hot + 0x2000)
	f.mapPage(cold + 0x1000)
	f.mapPage(cold + 0x2000)
	hotNode, _ := f.ctx.GPT().EntryAt(hot, 2)
	coldNode, _ := f.ctx.GPT().EntryAt(cold, 2)
	if !f.mgr.NodeNested(9, hotNode.Addr()) || !f.mgr.NodeNested(9, coldNode.Addr()) {
		t.Fatal("setup: nodes not nested")
	}
	// First scan clears dirty bits (both were just written).
	f.mgr.Tick(2000, 0)
	if !f.mgr.NodeNested(9, hotNode.Addr()) || !f.mgr.NodeNested(9, coldNode.Addr()) {
		t.Fatal("first scan should keep recently-written nodes nested")
	}
	// Keep the hot node changing; leave the cold node quiet.
	f.mapPage(hot + 0x3000)
	f.mgr.Tick(4000, 0)
	if !f.mgr.NodeNested(9, hotNode.Addr()) {
		t.Error("hot node reverted despite activity")
	}
	if f.mgr.NodeNested(9, coldNode.Addr()) {
		t.Error("cold node stayed nested despite quiescence")
	}
	if f.mgr.Stats().DirtyScans != 2 {
		t.Errorf("dirty scans = %d", f.mgr.Stats().DirtyScans)
	}
	// Cold region back to full shadow; hot still switches at the leaf.
	if r := f.access(cold, false); r.Refs != 4 {
		t.Errorf("cold refs = %d, want 4", r.Refs)
	}
	if r := f.access(hot, false); r.Refs != 8 {
		t.Errorf("hot refs = %d, want 8", r.Refs)
	}
}

func TestShortLivedPolicyStartsNested(t *testing.T) {
	cfg := DefaultPolicy()
	cfg.StartNested = true
	cfg.StartDelayCycles = 10_000
	cfg.MissOverheadThreshold = 0.05
	f := newFixture(t, cfg)
	gva := uint64(0x1000)
	f.mapPage(gva)
	if !f.ctx.FullNested() || f.mgr.Started() {
		t.Fatal("process should start fully nested")
	}
	r := f.access(gva, false)
	if r.Refs != 24 {
		t.Fatalf("fully nested walk refs = %d, want 24", r.Refs)
	}
	// Low overhead: stays nested.
	f.mgr.Tick(20_000, 0.01)
	if f.mgr.Started() {
		t.Fatal("agile enabled despite low TLB overhead")
	}
	// High overhead after the delay: agile turns on.
	f.mgr.Tick(30_000, 0.10)
	if !f.mgr.Started() || f.ctx.FullNested() {
		t.Fatal("agile not enabled despite high TLB overhead")
	}
	if f.mgr.Stats().AgileEnabled != 1 {
		t.Errorf("AgileEnabled = %d", f.mgr.Stats().AgileEnabled)
	}
	r = f.access(gva, false)
	if r.Refs != 4 {
		t.Errorf("post-enable walk refs = %d, want 4 (shadow)", r.Refs)
	}
}

func TestRootEntryChurnSwitchesTopSubtree(t *testing.T) {
	f := newFixture(t, DefaultPolicy())
	gva := uint64(0x1000)
	f.mapPage(gva)
	f.access(gva, false) // root becomes protected
	// The same root entry is rewritten twice: the L1 subtree under it goes
	// nested (the walk switches at the first level below the root: 1 sPT
	// ref + 3 nested levels = 16 refs). The root itself stays shadow —
	// upper levels only fully nest via the short-lived-process policy.
	rootEntry, err := f.ctx.GPT().EntryAt(gva, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.ctx.GPT().SetEntryAt(gva, 0, rootEntry); err != nil {
		t.Fatal(err)
	}
	if err := f.ctx.GPT().SetEntryAt(gva, 0, rootEntry); err != nil {
		t.Fatal(err)
	}
	if !f.mgr.NodeNested(9, rootEntry.Addr()) {
		t.Fatal("L1 subtree not switched after root-entry churn")
	}
	if f.ctx.RootSwitch() {
		t.Fatal("root itself must stay in shadow mode")
	}
	r := f.access(gva, false)
	if r.Refs != 16 || r.NestedLevels != 3 {
		t.Errorf("refs=%d nested=%d, want 16/3", r.Refs, r.NestedLevels)
	}
	// Dirty-scan eventually reverts the subtree when quiet: the first tick
	// clears dirty bits, the second converts parents, later ones children.
	for i := uint64(1); i <= 6; i++ {
		f.mgr.Tick(i*(f.mgr.cfg.IntervalCycles+1), 0)
	}
	if f.mgr.NodeNested(9, rootEntry.Addr()) {
		t.Error("subtree not reverted by dirty scan")
	}
	r = f.access(gva, false)
	if r.Refs != 4 || r.NestedLevels != 0 {
		t.Errorf("post-revert refs=%d nested=%d, want 4/0", r.Refs, r.NestedLevels)
	}
}

func TestWriteCountsResetEachInterval(t *testing.T) {
	cfg := DefaultPolicy()
	cfg.IntervalCycles = 1000
	f := newFixture(t, cfg)
	gva := uint64(0x7f00_0000_0000)
	f.mapPage(gva)
	f.access(gva, false)
	f.mapPage(gva + 0x1000) // one write this interval
	f.mgr.Tick(2000, 0)     // interval rolls: count forgotten
	f.mapPage(gva + 0x2000) // one write next interval: below threshold
	if f.mgr.NestedNodes() != 0 {
		t.Error("node switched despite writes being in different intervals")
	}
}

func TestRevertPolicyStrings(t *testing.T) {
	for p, want := range map[RevertPolicy]string{RevertNone: "none", RevertReset: "reset", RevertDirtyScan: "dirty-scan"} {
		if p.String() != want {
			t.Errorf("%d.String() = %s", int(p), p.String())
		}
	}
}

func newSHSPFixture(t *testing.T, cfg SHSPConfig) (*fixture, *SHSP) {
	t.Helper()
	mem := memsim.New(512 << 20)
	vmCfg := vmm.DefaultConfig(walker.ModeAgile)
	vmCfg.RAMBytes = 64 << 20
	vm, err := vmm.New(mem, vmm.NopMMU{}, 1, vmCfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := vm.NewProcess(9)
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := NewSHSP(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	f := &fixture{t: t, mem: mem, vm: vm, ctx: ctx, w: walker.New(mem, nil, nil)}
	return f, ctl
}

func TestSHSPRequiresShadowTable(t *testing.T) {
	mem := memsim.New(64 << 20)
	vm, err := vmm.New(mem, vmm.NopMMU{}, 1, vmm.DefaultConfig(walker.ModeNested))
	if err != nil {
		t.Fatal(err)
	}
	ctx, _ := vm.NewProcess(1)
	if _, err := NewSHSP(ctx, DefaultSHSP()); err == nil {
		t.Fatal("SHSP attached to nested-only context")
	}
}

func TestSHSPStartsNestedAndSwitchesWhole(t *testing.T) {
	cfg := DefaultSHSP()
	cfg.IntervalCycles = 1000
	f, ctl := newSHSPFixture(t, cfg)
	gva := uint64(0x7f00_0000_0000)
	f.mapPage(gva)
	if ctl.InShadow() {
		t.Fatal("SHSP should start nested")
	}
	r := f.access(gva, false)
	if r.Refs != 24 {
		t.Fatalf("nested-mode walk refs = %d, want 24", r.Refs)
	}
	// High TLB-miss overhead: switch the whole process to shadow.
	for i := uint64(1); i <= 3; i++ { // needs 3 observation intervals
		ctl.Tick(i*10_000, 0.50, 0, 0)
	}
	if !ctl.InShadow() {
		t.Fatal("SHSP did not switch to shadow under miss pressure")
	}
	if ctl.Stats().ToShadow != 1 || ctl.Stats().Rebuilds != 1 {
		t.Errorf("stats = %+v", ctl.Stats())
	}
	r = f.access(gva, false)
	if r.Refs != 4 {
		t.Fatalf("shadow-mode walk refs = %d, want 4", r.Refs)
	}
	// Shadow observed far worse than nested's remembered cost: the whole
	// process moves back to nested.
	ctl.Tick(40_000, 0, 2.00, 0)
	if ctl.InShadow() {
		t.Fatal("SHSP did not switch to nested under trap pressure")
	}
	r = f.access(gva, false)
	if r.Refs != 24 {
		t.Fatalf("post-switch walk refs = %d, want 24", r.Refs)
	}
	if ctl.Stats().ToNested != 1 {
		t.Errorf("stats = %+v", ctl.Stats())
	}
	// Hysteresis: with shadow remembered as expensive, moderate nested
	// overhead does not flip back (no oscillation).
	ctl.Tick(50_000, 0.50, 0, 0)
	if ctl.InShadow() {
		t.Fatal("SHSP oscillated back to shadow despite remembered cost")
	}
}

func TestSHSPRebuildDropsShadowState(t *testing.T) {
	cfg := DefaultSHSP()
	cfg.IntervalCycles = 1000
	f, ctl := newSHSPFixture(t, cfg)
	gva := uint64(0x1000)
	f.mapPage(gva)
	for i := uint64(1); i <= 3; i++ {
		ctl.Tick(i*10_000, 0.50, 0, 0) // to shadow after 3 samples
	}
	f.access(gva, false) // fills shadow state
	if _, err := f.ctx.SPT().Lookup(gva); err != nil {
		t.Fatal("shadow state missing after fill")
	}
	fillsBefore := f.vm.Stats().Traps[vmm.TrapShadowFill]
	ctl.Tick(40_000, 0, 2.00, 0) // to nested (shadow observed expensive)
	ctl.Tick(50_000, 5.00, 0, 0) // nested now far worse: back to shadow, full rebuild
	if _, err := f.ctx.SPT().Lookup(gva); err == nil {
		t.Fatal("shadow state survived rebuild")
	}
	f.access(gva, false) // must re-fill: the rebuild cost
	if got := f.vm.Stats().Traps[vmm.TrapShadowFill] - fillsBefore; got == 0 {
		t.Error("rebuild did not charge refill exits")
	}
	if ctl.Stats().Rebuilds != 2 {
		t.Errorf("rebuilds = %d", ctl.Stats().Rebuilds)
	}
}

func TestSHSPHonorsInterval(t *testing.T) {
	cfg := DefaultSHSP()
	cfg.IntervalCycles = 1_000_000
	_, ctl := newSHSPFixture(t, cfg)
	ctl.Tick(500, 0.99, 0, 0) // interval not elapsed
	ctl.Tick(600, 0.99, 0, 0)
	ctl.Tick(700, 0.99, 0, 0)
	if ctl.InShadow() {
		t.Fatal("SHSP switched before its interval elapsed")
	}
	for i := uint64(1); i <= 3; i++ {
		ctl.Tick(i*1_000_001, 0.99, 0, 0)
	}
	if !ctl.InShadow() {
		t.Fatal("SHSP did not switch after interval")
	}
}

func TestAgile2MGuestPagesSwitch(t *testing.T) {
	f := newFixture(t, DefaultPolicy())
	gva := uint64(0x4000_0000) // 2M-aligned
	mapBig := func() {
		f.t.Helper()
		gpa, err := f.vm.AllocGPA(pagetable.Size2M)
		if err != nil {
			f.t.Fatal(err)
		}
		if err := f.ctx.GPT().Map(gva, gpa, pagetable.Size2M, pagetable.FlagWrite|pagetable.FlagDirty|pagetable.FlagAccessed); err != nil {
			f.t.Fatal(err)
		}
	}
	mapBig()
	r := f.access(gva, false)
	if r.NestedLevels != 0 {
		t.Fatalf("initial 2M access not shadow: %+v", r)
	}
	// The guest OS remaps the 2M page twice (huge-page churn): the L2
	// table page holding the huge entries goes nested.
	if err := f.ctx.GPT().Unmap(gva, pagetable.Size2M); err != nil {
		t.Fatal(err)
	}
	mapBig()
	r = f.access(gva, false)
	if r.NestedLevels == 0 {
		t.Fatalf("L2 page with churning 2M entries stayed shadow: %+v", r)
	}
	// Further 2M remaps are now direct.
	before := f.vm.Stats().Traps[vmm.TrapPTWrite]
	if err := f.ctx.GPT().Unmap(gva, pagetable.Size2M); err != nil {
		t.Fatal(err)
	}
	mapBig()
	if got := f.vm.Stats().Traps[vmm.TrapPTWrite] - before; got != 0 {
		t.Errorf("nested 2M churn trapped %d times", got)
	}
}
