// Package core implements the paper's primary contribution: the agile
// paging manager. It tracks, per guest process, which guest page-table
// nodes are handled in shadow mode and which in nested mode, and runs the
// VMM policies of paper §III-C:
//
//   - Shadow⇒Nested: a small write threshold (two intercepted writes to a
//     guest page-table page within a time interval) moves that node and
//     everything below it to nested mode.
//   - Nested⇒Shadow: either a simple periodic reset of all nested parts, or
//     the more effective host-dirty-bit scan that returns only the parts
//     that stopped changing, converting parents before children.
//   - Short-lived/small processes: optionally start fully nested and enable
//     agile paging only once TLB-miss overhead justifies shadow state.
//
// The mechanisms (switching-bit placement, write interception, shadow
// zapping) live in package vmm; this package supplies the decisions.
package core

import (
	"fmt"
	"sort"
	"strings"

	"agilepaging/internal/pagetable"
	"agilepaging/internal/vmm"
)

// RevertPolicy selects the Nested⇒Shadow policy of paper §III-C.
type RevertPolicy int

// Revert policies.
const (
	// RevertNone never converts nested parts back to shadow mode.
	RevertNone RevertPolicy = iota
	// RevertReset moves every nested part back to shadow mode at each
	// interval (the paper's "first simple online policy").
	RevertReset
	// RevertDirtyScan uses host-page-table dirty bits over the guest page
	// table's pages to return only quiescent parts to shadow mode (the
	// paper's "second more complex but effective policy").
	RevertDirtyScan
)

// String names the policy.
func (p RevertPolicy) String() string {
	switch p {
	case RevertNone:
		return "none"
	case RevertReset:
		return "reset"
	case RevertDirtyScan:
		return "dirty-scan"
	}
	return fmt.Sprintf("RevertPolicy(%d)", int(p))
}

// ParseRevertPolicy parses a policy name as written by
// RevertPolicy.String, case insensitively, accepting "dirtyscan" and
// "dirty" as aliases for the dirty-scan policy. It is the one parser every
// flag and JSON decoder in the repository routes through.
func ParseRevertPolicy(s string) (RevertPolicy, error) {
	switch strings.ToLower(s) {
	case "none":
		return RevertNone, nil
	case "reset":
		return RevertReset, nil
	case "dirty-scan", "dirtyscan", "dirty":
		return RevertDirtyScan, nil
	}
	return 0, fmt.Errorf("unknown revert policy %q (none|reset|dirty-scan)", s)
}

// PolicyConfig parameterizes the agile manager.
type PolicyConfig struct {
	// WriteThreshold is the number of intercepted writes to one guest
	// page-table page within an interval that triggers Shadow⇒Nested.
	// The paper uses "a small threshold like the one used in branch
	// predictors": two.
	WriteThreshold int
	// IntervalCycles is the policy interval in simulated cycles (the
	// paper's 1-second interval, scaled to the simulation).
	IntervalCycles uint64
	// Revert selects the Nested⇒Shadow policy.
	Revert RevertPolicy
	// StartNested starts the process fully nested (short-lived-process
	// policy): agile/shadow state is built only if, after StartDelay
	// cycles, TLB-miss overhead exceeds MissOverheadThreshold.
	StartNested           bool
	StartDelayCycles      uint64
	MissOverheadThreshold float64
}

// DefaultPolicy returns the paper's policy settings scaled to simulation
// time.
func DefaultPolicy() PolicyConfig {
	return PolicyConfig{
		WriteThreshold:        2,
		IntervalCycles:        2_000_000,
		Revert:                RevertDirtyScan,
		MissOverheadThreshold: 0.02,
	}
}

// Stats counts manager decisions.
type Stats struct {
	SwitchesToNested uint64 // node conversions Shadow⇒Nested
	SwitchesToShadow uint64 // node conversions Nested⇒Shadow
	RootSwitches     uint64 // conversions involving the root (full nesting)
	IntervalResets   uint64
	DirtyScans       uint64
	AgileEnabled     uint64 // short-lived policy upgrades to agile mode
}

// Manager is the agile paging manager for one guest process. It implements
// vmm.ModeOracle.
type Manager struct {
	ctx *vmm.Context
	cfg PolicyConfig

	nested      map[uint64]bool  // guest table page (gPA) ⇒ handled nested
	writeCounts map[writeKey]int // intercepted writes this interval

	intervalStart uint64
	started       bool // short-lived policy: agile state enabled

	stats Stats
}

// NewManager attaches an agile manager to a VMM context. The context must
// belong to a VM running the agile technique (it needs a shadow table).
func NewManager(ctx *vmm.Context, cfg PolicyConfig) (*Manager, error) {
	if ctx.SPT() == nil {
		return nil, vmm.ErrNotShadowed
	}
	if cfg.WriteThreshold <= 0 {
		cfg.WriteThreshold = 2
	}
	m := &Manager{
		ctx:         ctx,
		cfg:         cfg,
		nested:      make(map[uint64]bool),
		writeCounts: make(map[writeKey]int),
		started:     !cfg.StartNested,
	}
	ctx.SetOracle(m)
	ctx.SetWriteListener(m.onProtectedWrite)
	ctx.SetFreeListener(m.GuestTableFreed)
	if cfg.StartNested {
		ctx.SetFullNested(true)
	}
	return m, nil
}

// Stats returns the accumulated decision counters.
func (m *Manager) Stats() Stats { return m.stats }

// NestedNodes reports how many guest page-table nodes are under nested mode.
func (m *Manager) NestedNodes() int { return len(m.nested) }

// NestedNodesByLevel splits the nested node count by guest page-table
// level (0 = root). Nodes whose table page was freed since the switch are
// skipped; the next interval's bookkeeping drops them. Telemetry samples
// this at epoch boundaries to show shadow-vs-nested coverage over time.
func (m *Manager) NestedNodesByLevel() [4]int {
	var out [4]int
	for page := range m.nested {
		if info, ok := m.ctx.GPT().Info(page); ok && info.Level >= 0 && info.Level < len(out) {
			out[info.Level]++
		}
	}
	return out
}

// NodeNested implements vmm.ModeOracle.
func (m *Manager) NodeNested(asid uint16, gptPage uint64) bool {
	return m.nested[gptPage]
}

// GuestTableFreed implements the policy's half of the shadow-invalidation
// contract: when the guest OS frees a table page, its mode decision and
// pending write counts die with it. Without this, a recycled gPA would
// inherit the freed page's nested bit (the oracle would steer fresh shadow
// fills into planting switches over half-built tables) or its write tally.
func (m *Manager) GuestTableFreed(gptPage uint64) {
	delete(m.nested, gptPage)
	for k := range m.writeCounts {
		if k.page == gptPage {
			delete(m.writeCounts, k)
		}
	}
}

// writeKey identifies the dynamic part a write belongs to. Writes to a
// leaf-level page are attributed to the page (idx -1): the page's PTEs are
// the dynamic part. Writes to an interior entry are attributed to that
// entry: the dynamic part is the subtree under it, not the whole span of
// the interior page — at scaled footprints an entire workload can sit under
// one interior page, so page granularity there would over-convert.
type writeKey struct {
	page uint64
	idx  int
}

// onProtectedWrite implements the Shadow⇒Nested policy: two intercepted
// updates to the same dynamic part of the guest page table within an
// interval move that part — and all levels below it — to nested mode
// (paper §III-C).
func (m *Manager) onProtectedWrite(gptPage uint64, level, idx int, old, new pagetable.Entry) {
	key := writeKey{page: gptPage, idx: -1}
	target := gptPage
	if level < pagetable.NumLevels-1 && !old.Huge() && !new.Huge() {
		// Interior entry: the dynamic part is the child table under it.
		key.idx = idx
		switch {
		case new.Present():
			target = new.Addr()
		case old.Present():
			target = old.Addr()
		default:
			return
		}
		if _, isTable := m.ctx.GPT().Info(target); !isTable {
			return
		}
	}
	m.writeCounts[key]++
	if m.writeCounts[key] >= m.cfg.WriteThreshold {
		m.switchToNested(target)
		delete(m.writeCounts, key)
	}
}

func (m *Manager) switchToNested(gptPage uint64) {
	if m.nested[gptPage] {
		return
	}
	for _, p := range m.ctx.SubtreePages(gptPage) {
		if !m.nested[p] {
			m.nested[p] = true
			m.stats.SwitchesToNested++
		}
	}
	if err := m.ctx.PlantSwitch(gptPage); err == nil {
		if info, ok := m.ctx.GPT().Info(gptPage); ok && info.Level == 0 {
			m.stats.RootSwitches++
		}
	}
}

// Tick advances policy time. now is the current simulated cycle count and
// missOverhead the observed fraction of cycles lost to TLB misses since the
// last tick (used by the short-lived-process policy). The machine calls it
// periodically; interval work runs when IntervalCycles have elapsed.
func (m *Manager) Tick(now uint64, missOverhead float64) {
	if !m.started {
		if now >= m.cfg.StartDelayCycles && missOverhead > m.cfg.MissOverheadThreshold {
			m.started = true
			m.ctx.SetFullNested(false)
			m.stats.AgileEnabled++
		}
		return
	}
	if m.cfg.IntervalCycles == 0 || now-m.intervalStart < m.cfg.IntervalCycles {
		return
	}
	m.intervalStart = now
	m.writeCounts = make(map[writeKey]int)
	switch m.cfg.Revert {
	case RevertReset:
		m.revertAll()
	case RevertDirtyScan:
		m.dirtyScan()
	}
}

// Started reports whether agile (partial shadow) operation is enabled — it
// is false while the short-lived policy holds the process fully nested.
func (m *Manager) Started() bool { return m.started }

// revertAll implements the simple periodic-reset policy: every nested node
// returns to shadow mode; the write-threshold policy will re-derive the
// dynamic set.
func (m *Manager) revertAll() {
	m.stats.IntervalResets++
	for _, sp := range m.switchPoints() {
		_ = m.ctx.ClearSwitch(sp)
	}
	m.stats.SwitchesToShadow += uint64(len(m.nested))
	m.nested = make(map[uint64]bool)
}

// dirtyScan implements the dirty-bit policy: guest page-table pages whose
// backing host entries are clean this interval return to shadow mode,
// parents before children; dirty pages stay nested and their dirty bits are
// cleared for the next interval (paper §III-C).
func (m *Manager) dirtyScan() {
	m.stats.DirtyScans++
	hpt := m.ctx.VM().HPT()
	for _, sp := range m.switchPoints() {
		m.scanNode(hpt, sp, true)
	}
}

// scanNode converts node (and recursively its children) back to shadow if
// clean. isSwitchPoint marks nodes whose parent is shadow-handled: those
// carry the switching-bit entry that must be cleared on conversion. A node
// that stays nested while its parent converts becomes a new switch point
// lazily: the next shadow fill consults the oracle and re-plants the bit.
func (m *Manager) scanNode(hpt *pagetable.Table, node uint64, isSwitchPoint bool) {
	r, ok := hpt.TryLookup(node)
	if !ok {
		return
	}
	if r.Entry.Dirty() {
		// Still changing: stays nested; rearm the detector.
		_ = hpt.ClearFlags(node, pagetable.FlagDirty)
		return
	}
	// Quiescent: back to shadow mode.
	delete(m.nested, node)
	m.stats.SwitchesToShadow++
	if isSwitchPoint {
		_ = m.ctx.ClearSwitch(node)
	} else {
		m.ctx.Protect(node)
	}
	for _, child := range m.childTablePages(node) {
		if m.nested[child] {
			m.scanNode(hpt, child, false)
		}
	}
}

// switchPoints returns the topmost nested nodes (nested nodes whose parent
// is shadow-handled), parents before children, which are exactly the nodes
// carrying switching-bit entries.
func (m *Manager) switchPoints() []uint64 {
	type nodeInfo struct {
		page  uint64
		level int
	}
	var sps []nodeInfo
	for page := range m.nested {
		info, ok := m.ctx.GPT().Info(page)
		if !ok {
			delete(m.nested, page) // table page was freed
			continue
		}
		parent, hasParent := m.parentPage(info)
		if !hasParent || !m.nested[parent] {
			sps = append(sps, nodeInfo{page, info.Level})
		}
	}
	sort.Slice(sps, func(i, j int) bool {
		if sps[i].level != sps[j].level {
			return sps[i].level < sps[j].level
		}
		return sps[i].page < sps[j].page
	})
	out := make([]uint64, len(sps))
	for i, sp := range sps {
		out[i] = sp.page
	}
	return out
}

// parentPage returns the guest-physical address of the table page holding
// the entry that points at the given node.
func (m *Manager) parentPage(info pagetable.PageInfo) (uint64, bool) {
	if info.Level == 0 {
		return 0, false
	}
	if info.Level == 1 {
		return m.ctx.GPT().Root(), true
	}
	e, err := m.ctx.GPT().EntryAt(info.VABase, info.Level-2)
	if err != nil || !e.Present() {
		return 0, false
	}
	return e.Addr(), true
}

// childTablePages lists the table pages directly below node.
func (m *Manager) childTablePages(node uint64) []uint64 {
	var out []uint64
	for _, p := range m.ctx.SubtreePages(node) {
		if p == node {
			continue
		}
		info, ok := m.ctx.GPT().Info(p)
		if !ok {
			continue
		}
		nodeInfo, _ := m.ctx.GPT().Info(node)
		if info.Level == nodeInfo.Level+1 {
			out = append(out, p)
		}
	}
	return out
}
