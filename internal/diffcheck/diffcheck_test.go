package diffcheck

import (
	"testing"

	"agilepaging/internal/pagetable"
	"agilepaging/internal/workload"
)

// scriptedOps is a hand-built stream hitting every structural-edit hazard at
// once: two processes, a THP collapse of a write-hot COW'd span, reclaim
// pressure that evicts and refaults pages, and a munmap/remap cycle that
// recycles freed frames — followed by enough traffic to surface any stale
// translation state the edits left behind.
func scriptedOps() []workload.Op {
	span := pagetable.Size2M.Bytes()
	baseA := uint64(0x4000_0000)
	baseB := uint64(0x8000_0000)
	scratch := uint64(0xa000_0000)

	ops := []workload.Op{
		{Kind: workload.OpCreateProcess, PID: 0},
		{Kind: workload.OpCreateProcess, PID: 1},
		{Kind: workload.OpMmap, PID: 0, VA: baseA, Len: 2 * span, Size: pagetable.Size4K},
		{Kind: workload.OpPopulate, PID: 0, VA: baseA},
		{Kind: workload.OpMmap, PID: 1, VA: baseB, Len: span, Size: pagetable.Size4K},
		{Kind: workload.OpPopulate, PID: 1, VA: baseB},
		{Kind: workload.OpCtxSwitch, PID: 0},
	}
	// Write-hammer the first span: shadow write-protect traps pile up and
	// agile's per-node counters cross their adaptation thresholds.
	for off := uint64(0); off < span; off += 4096 {
		ops = append(ops, workload.Op{Kind: workload.OpAccess, PID: 0, VA: baseA + off, Write: true})
	}
	// Pending COW over the span, with half of it broken by writes, so the
	// collapse must resolve live COW state.
	ops = append(ops, workload.Op{Kind: workload.OpMarkCOW, PID: 0, VA: baseA})
	for off := uint64(0); off < span/2; off += 4096 {
		ops = append(ops, workload.Op{Kind: workload.OpAccess, PID: 0, VA: baseA + off, Write: true})
	}
	ops = append(ops, workload.Op{Kind: workload.OpCollapse, PID: 0, VA: baseA})
	// Process 1 interleaves: reclaim evicts clock-cold pages, then refault.
	ops = append(ops, workload.Op{Kind: workload.OpCtxSwitch, PID: 1})
	for off := uint64(0); off < span; off += 8192 {
		ops = append(ops, workload.Op{Kind: workload.OpAccess, PID: 1, VA: baseB + off, Write: off%16384 == 0})
	}
	ops = append(ops,
		workload.Op{Kind: workload.OpReclaim, PID: 1, N: 32},
		workload.Op{Kind: workload.OpAccess, PID: 1, VA: baseB, Write: true},
		workload.Op{Kind: workload.OpAccess, PID: 1, VA: baseB + span/2},
	)
	// A scratch region is mapped, written, and unmapped, then a fresh region
	// takes its frames — stale translations to recycled frames would alias.
	ops = append(ops,
		workload.Op{Kind: workload.OpCtxSwitch, PID: 0},
		workload.Op{Kind: workload.OpMmap, PID: 0, VA: scratch, Len: 64 << 12, Size: pagetable.Size4K},
		workload.Op{Kind: workload.OpPopulate, PID: 0, VA: scratch},
	)
	for off := uint64(0); off < 64<<12; off += 4096 {
		ops = append(ops, workload.Op{Kind: workload.OpAccess, PID: 0, VA: scratch + off, Write: true})
	}
	ops = append(ops,
		workload.Op{Kind: workload.OpMunmap, PID: 0, VA: scratch},
		workload.Op{Kind: workload.OpMmap, PID: 0, VA: scratch + (1 << 30), Len: 64 << 12, Size: pagetable.Size4K},
		workload.Op{Kind: workload.OpPopulate, PID: 0, VA: scratch + (1 << 30)},
	)
	// Post-edit traffic over everything that survived, reads and writes, so
	// any stale shadow or TLB state has to show itself.
	for off := uint64(0); off < span; off += 4096 {
		ops = append(ops, workload.Op{Kind: workload.OpAccess, PID: 0, VA: baseA + off, Write: off%8192 == 0})
	}
	for off := uint64(0); off < 64<<12; off += 4096 {
		ops = append(ops, workload.Op{Kind: workload.OpAccess, PID: 0, VA: scratch + (1 << 30) + off, Write: true})
	}
	// Collapse the second span of process 0's region after the recycling
	// churn, then touch it.
	ops = append(ops, workload.Op{Kind: workload.OpCollapse, PID: 0, VA: baseA + span})
	for off := uint64(0); off < span; off += 4096 {
		ops = append(ops, workload.Op{Kind: workload.OpAccess, PID: 0, VA: baseA + span + off})
	}
	return ops
}

// TestDiffEquivalenceScripted is the acceptance pin for the shadow
// translation coherence work: one script with THP collapse, pending COW, and
// reclaim produces page-for-page identical end state under all four
// techniques, and the shadow tables pass the coherence audit.
func TestDiffEquivalenceScripted(t *testing.T) {
	ops := scriptedOps()
	if err := Equivalent(ops, Options{PolicyTickOps: 200}); err != nil {
		t.Fatal(err)
	}
	// Guard against a vacuous pass: the reference state must really contain
	// the structures the script builds.
	st, err := Run(Techniques[0], ops, Options{PolicyTickOps: 200})
	if err != nil {
		t.Fatal(err)
	}
	huge := 0
	for _, l := range st.Leaves[0] {
		if l.Size == pagetable.Size2M {
			huge++
		}
	}
	if huge != 2 {
		t.Errorf("reference state has %d 2M leaves for pid 0, want 2 (both collapses)", huge)
	}
	if len(st.Chains) == 0 || len(st.Groups) == 0 {
		t.Errorf("reference state is empty: %d chains, %d groups", len(st.Chains), len(st.Groups))
	}
	if len(st.Leaves[1]) == 0 {
		t.Error("reference state lost process 1's mappings")
	}
}

// TestDiffEquivalenceGenerated drives the harness with the synthetic
// generator's structural-edit knobs — the same profile family the sweeps
// measure — rather than a hand-built script.
func TestDiffEquivalenceGenerated(t *testing.T) {
	prof := workload.Profile{
		Name: "diff-thp", FootprintBytes: 4 << 20, Pattern: workload.PatternZipf,
		ZipfS: 1.1, WriteRatio: 0.4, Processes: 2, CtxSwitchEvery: 120,
		CollapseEvery: 300, CowEvery: 450, CowRegionBytes: 64 << 10,
		ReclaimEvery: 600, ReclaimPages: 16,
	}
	ops := workload.Collect(workload.New(prof, pagetable.Size4K, 2500, 17), -1)
	if err := Equivalent(ops, Options{PolicyTickOps: 300}); err != nil {
		t.Fatal(err)
	}
}

// FuzzDiffEquivalence lets the fuzzer pick the structural-edit mix. Every
// generated stream includes collapses unless the fuzzer disables them.
func FuzzDiffEquivalence(f *testing.F) {
	f.Add(int64(3), uint16(900), uint8(35), uint8(1), uint16(250), uint16(400), uint16(0), uint16(0))
	f.Add(int64(11), uint16(1200), uint8(50), uint8(2), uint16(350), uint16(500), uint16(600), uint16(0))
	f.Add(int64(29), uint16(700), uint8(20), uint8(2), uint16(200), uint16(0), uint16(450), uint16(300))
	f.Fuzz(func(t *testing.T, seed int64, accesses uint16, writePct, procs uint8, collapseEvery, cowEvery, reclaimEvery, churnEvery uint16) {
		prof := workload.Profile{
			Name:           "diff-fuzz",
			FootprintBytes: 4 << 20,
			Pattern:        workload.PatternZipf,
			ZipfS:          1.1,
			WriteRatio:     float64(writePct%101) / 100,
			Processes:      1 + int(procs%3),
			CollapseEvery:  int(collapseEvery % 1024),
			CowEvery:       int(cowEvery % 1024),
			ReclaimEvery:   int(reclaimEvery % 1024),
			MmapChurnEvery: int(churnEvery % 1024),
		}
		if prof.Processes > 1 {
			prof.CtxSwitchEvery = 96
		}
		if prof.CowEvery > 0 {
			prof.CowRegionBytes = 32 << 10
		}
		if prof.MmapChurnEvery > 0 {
			prof.ChurnRegionBytes, prof.ChurnRegions = 32<<10, 2
		}
		if prof.ReclaimEvery > 0 {
			prof.ReclaimPages = 16
		}
		ops := workload.Collect(workload.New(prof, pagetable.Size4K, 300+int(accesses%1500), seed), -1)
		if err := Equivalent(ops, Options{PolicyTickOps: 300}); err != nil {
			t.Fatal(err)
		}
	})
}
