// Package diffcheck is a differential-equivalence harness for the four
// translation techniques (native, nested, shadow, agile). It executes one op
// script on four machines that differ only in technique and asserts the final
// architectural state agrees page for page:
//
//   - the per-process page tables hold the same leaves (VA, page size,
//     permission bits),
//   - the same pages carry pending-COW marks and the same regions exist,
//   - per-page write histories match — every machine retired the same
//     accesses in the same order with the same read/write outcomes,
//   - the frame-sharing partition matches: two virtual pages share a physical
//     frame in one machine iff they share one in every machine (physical
//     addresses themselves are technique-specific and never compared), and
//   - on shadow-capable machines, every shadow leaf agrees with the composed
//     guest∘host translation — no stale shadow state survives the run.
//
// The harness exists because structural guest-table edits (THP collapse,
// table pruning) historically corrupted shadow state in ways only visible as
// divergence between techniques; see the shadow-invalidation contract in
// DESIGN.md.
package diffcheck

import (
	"fmt"
	"reflect"
	"sort"
	"strings"

	"agilepaging/internal/cpu"
	"agilepaging/internal/guest"
	"agilepaging/internal/pagetable"
	"agilepaging/internal/vmm"
	"agilepaging/internal/walker"
	"agilepaging/internal/workload"
)

// permMask selects the leaf-entry bits every technique must agree on.
// Accessed/Dirty are hardware-set and depend on how each technique walks;
// Huge is implied by the compared page size.
const permMask = pagetable.FlagPresent | pagetable.FlagWrite | pagetable.FlagUser | pagetable.FlagNX

// Techniques is the comparison set: native is the reference semantics, the
// three virtualized techniques must be indistinguishable from it.
var Techniques = []walker.Mode{walker.ModeNative, walker.ModeNested, walker.ModeShadow, walker.ModeAgile}

// Options tunes the machines the script runs on.
type Options struct {
	PageSize      pagetable.Size // guest page-size policy; zero means 4K
	PolicyTickOps int            // agile adaptation period; zero keeps the config default
}

// PageKey names one 4K virtual page of one process.
type PageKey struct {
	PID int
	VA  uint64
}

func (k PageKey) String() string { return fmt.Sprintf("pid%d:%#x", k.PID, k.VA) }

// LeafInfo is one page-table leaf in technique-neutral form.
type LeafInfo struct {
	VA   uint64
	Size pagetable.Size
	Perm pagetable.Entry
}

// State is the architectural end state of one machine, reduced to the parts
// that must be technique-invariant.
type State struct {
	Tech    walker.Mode
	Leaves  map[int][]LeafInfo
	COW     map[PageKey]bool
	Regions map[int][]guest.Region
	Chains  map[PageKey]uint64 // per-page write-history hash
	Groups  map[PageKey]string // frame-sharing partition, in VA space
}

// mix folds one write event into a page's history hash.
func mix(prev, va, seq uint64) uint64 {
	const prime = 1099511628211
	h := (prev ^ va) * prime
	return (h ^ seq) * prime
}

// pidsOf returns the PIDs the script creates, in order.
func pidsOf(ops []workload.Op) []int {
	var pids []int
	seen := map[int]bool{}
	for _, op := range ops {
		if op.Kind == workload.OpCreateProcess && !seen[op.PID] {
			seen[op.PID] = true
			pids = append(pids, op.PID)
		}
	}
	return pids
}

// Run executes ops under one technique and captures its end state. The L0
// memo is disabled so the access observer sees every retired access.
func Run(tech walker.Mode, ops []workload.Op, opt Options) (*State, error) {
	ps := opt.PageSize
	if ps == 0 {
		ps = pagetable.Size4K
	}
	cfg := cpu.DefaultConfig(tech, ps)
	cfg.MemBytes = 512 << 20
	cfg.GuestRAMBytes = 128 << 20
	cfg.DisableL0Memo = true
	if opt.PolicyTickOps > 0 {
		cfg.PolicyTickOps = opt.PolicyTickOps
	}
	m, err := cpu.New(cfg)
	if err != nil {
		return nil, err
	}

	st := &State{
		Tech:    tech,
		Leaves:  map[int][]LeafInfo{},
		COW:     map[PageKey]bool{},
		Regions: map[int][]guest.Region{},
		Chains:  map[PageKey]uint64{},
		Groups:  map[PageKey]string{},
	}
	var (
		curPID  int
		readout bool
		seq     uint64
		frames  = map[PageKey]uint64{}
	)
	m.SetAccessObserver(func(va uint64, write bool, pa uint64, size pagetable.Size) {
		if readout {
			frames[PageKey{curPID, va &^ 0xfff}] = pa &^ 0xfff
			return
		}
		seq++
		if write {
			k := PageKey{curPID, va &^ 0xfff}
			st.Chains[k] = mix(st.Chains[k], va, seq)
		}
	})

	for i := range ops {
		curPID = ops[i].PID
		if err := m.Exec(ops[i]); err != nil {
			return nil, fmt.Errorf("%v: op %d (%v): %w", tech, i, ops[i].Kind, err)
		}
	}

	// End-state capture: page-table leaves, COW marks, regions, and — via a
	// read-only pass with the observer in readout mode — which frame backs
	// each live page, for the sharing partition.
	readout = true
	for _, pid := range pidsOf(ops) {
		p, err := m.OS.Process(pid)
		if err != nil {
			return nil, fmt.Errorf("%v: process %d: %w", tech, pid, err)
		}
		var leaves []LeafInfo
		p.PT.VisitLeaves(func(l pagetable.Leaf) bool {
			leaves = append(leaves, LeafInfo{l.VA, l.Size, l.Entry.Flags() & permMask})
			return true
		})
		st.Leaves[pid] = leaves
		regions := p.Regions()
		sort.Slice(regions, func(i, j int) bool { return regions[i].Base < regions[j].Base })
		st.Regions[pid] = regions

		curPID = pid
		if err := m.Exec(workload.Op{Kind: workload.OpCtxSwitch, PID: pid}); err != nil {
			return nil, fmt.Errorf("%v: readout switch to %d: %w", tech, pid, err)
		}
		for _, l := range leaves {
			for off := uint64(0); off < l.Size.Bytes(); off += pagetable.Size4K.Bytes() {
				page := l.VA + off
				if p.IsCOW(page) {
					st.COW[PageKey{pid, page}] = true
				}
				if err := m.Exec(workload.Op{Kind: workload.OpAccess, PID: pid, VA: page}); err != nil {
					return nil, fmt.Errorf("%v: readout access pid %d va %#x: %w", tech, pid, page, err)
				}
			}
		}
	}

	// Reduce frame identities to the partition they induce on virtual pages.
	byFrame := map[uint64][]PageKey{}
	for k, f := range frames {
		byFrame[f] = append(byFrame[f], k)
	}
	for _, group := range byFrame {
		sort.Slice(group, func(i, j int) bool {
			if group[i].PID != group[j].PID {
				return group[i].PID < group[j].PID
			}
			return group[i].VA < group[j].VA
		})
		names := make([]string, len(group))
		for i, k := range group {
			names[i] = k.String()
		}
		label := strings.Join(names, ",")
		for _, k := range group {
			st.Groups[k] = label
		}
	}

	if err := auditShadow(m); err != nil {
		return nil, fmt.Errorf("%v: %w", tech, err)
	}
	return st, nil
}

// auditShadow checks shadow-translation coherence: every leaf the shadow
// table resolves must equal the composed guest∘host translation, and must
// not grant write access the guest translation withholds. Switching entries
// (agile) bound the audit to the shadow-covered part of the tree.
func auditShadow(m *cpu.Machine) error {
	if m.VM == nil {
		return nil
	}
	var err error
	m.VM.EachContext(func(ctx *vmm.Context) {
		if err != nil || ctx.SPT() == nil {
			return
		}
		ctx.SPT().VisitLeaves(func(l pagetable.Leaf) bool {
			for off := uint64(0); off < l.Size.Bytes(); off += pagetable.Size4K.Bytes() {
				gva := l.VA + off
				gres, ok := ctx.GPT().TryLookup(gva)
				if !ok {
					err = fmt.Errorf("shadow coherence: asid %d gva %#x shadowed but not guest-mapped", ctx.ASID(), gva)
					return false
				}
				hpa, hostWritable, terr := m.VM.TranslateGPA(gres.PA)
				if terr != nil {
					err = fmt.Errorf("shadow coherence: asid %d gva %#x gpa %#x unbacked: %w", ctx.ASID(), gva, gres.PA, terr)
					return false
				}
				if got := l.Entry.Addr() + off; got != hpa {
					err = fmt.Errorf("shadow coherence: asid %d gva %#x: shadow hPA %#x != guest∘host hPA %#x",
						ctx.ASID(), gva, got, hpa)
					return false
				}
				if l.Entry.Writable() && !(gres.Entry.Writable() && hostWritable) {
					err = fmt.Errorf("shadow coherence: asid %d gva %#x: shadow grants write the guest/host denies", ctx.ASID(), gva)
					return false
				}
			}
			return true
		})
	})
	return err
}

// Equivalent runs ops under all four techniques and returns an error naming
// the first divergence from the native reference state.
func Equivalent(ops []workload.Op, opt Options) error {
	states := make([]*State, len(Techniques))
	for i, tech := range Techniques {
		st, err := Run(tech, ops, opt)
		if err != nil {
			return err
		}
		states[i] = st
	}
	ref := states[0]
	for _, st := range states[1:] {
		if err := diff(ref, st); err != nil {
			return err
		}
	}
	return nil
}

// diff compares two end states section by section.
func diff(a, b *State) error {
	for pid, la := range a.Leaves {
		lb := b.Leaves[pid]
		if len(la) != len(lb) {
			return fmt.Errorf("%v vs %v: pid %d has %d leaves vs %d", a.Tech, b.Tech, pid, len(la), len(lb))
		}
		for i := range la {
			if la[i] != lb[i] {
				return fmt.Errorf("%v vs %v: pid %d leaf %d differs: %+v vs %+v", a.Tech, b.Tech, pid, i, la[i], lb[i])
			}
		}
	}
	if len(a.Leaves) != len(b.Leaves) {
		return fmt.Errorf("%v vs %v: process sets differ", a.Tech, b.Tech)
	}
	if !reflect.DeepEqual(a.COW, b.COW) {
		return fmt.Errorf("%v vs %v: pending-COW page sets differ: %d vs %d pages", a.Tech, b.Tech, len(a.COW), len(b.COW))
	}
	if !reflect.DeepEqual(a.Regions, b.Regions) {
		return fmt.Errorf("%v vs %v: region lists differ", a.Tech, b.Tech)
	}
	for k, ca := range a.Chains {
		if cb, ok := b.Chains[k]; !ok || ca != cb {
			return fmt.Errorf("%v vs %v: write history of %v differs (%#x vs %#x)", a.Tech, b.Tech, k, ca, cb)
		}
	}
	if len(a.Chains) != len(b.Chains) {
		return fmt.Errorf("%v vs %v: written-page sets differ (%d vs %d)", a.Tech, b.Tech, len(a.Chains), len(b.Chains))
	}
	for k, ga := range a.Groups {
		if gb, ok := b.Groups[k]; !ok || ga != gb {
			return fmt.Errorf("%v vs %v: frame sharing of %v differs:\n  %v: [%s]\n  %v: [%s]",
				a.Tech, b.Tech, k, a.Tech, ga, b.Tech, gb)
		}
	}
	if len(a.Groups) != len(b.Groups) {
		return fmt.Errorf("%v vs %v: live-page sets differ (%d vs %d)", a.Tech, b.Tech, len(a.Groups), len(b.Groups))
	}
	return nil
}
