package workload

import (
	"encoding/binary"
	"fmt"
	"sync"

	"agilepaging/internal/pagetable"
)

// Packed op streams.
//
// A generated stream stored as []Op costs ~64 bytes per op, which caps how
// many streams the shared cache can retain and makes cold generation the
// dominant allocator in sweep benchmarks. PackedStream instead stores ops
// as delta/varint-encoded bytes in fixed-size chunks: the dominant case —
// an OpAccess on the same PID/core as its predecessor with a small VA
// delta — packs to a handful of bytes. Chunks are also the unit of
// pipelining: the generator publishes each chunk as soon as it is encoded,
// so the first consumer starts executing ops while the tail of the stream
// is still being generated, and the unit of decoding: a StreamReader
// decodes one chunk at a time into a pooled fixed-size buffer, keeping
// steady-state replay allocation-free.
//
// Wire format (one op), kept deliberately self-contained so the disk cache
// can persist chunks verbatim:
//
//	tag byte:  kind (low 4 bits; 0xF escapes to a zigzag varint for
//	           out-of-range kinds) | flagWrite | flagFetch | flagCtx |
//	           flagExtra (high 4 bits)
//	[flagCtx]  zigzag varint PID, zigzag varint Core
//	[flagExtra] uvarint Len, zigzag varint Size, zigzag varint N
//	always     zigzag varint VA delta from the previous op's VA
//
// The decoder carries (prevVA, PID, Core) as running state; flagCtx marks
// the ops that change PID or Core, so the common same-process access needs
// neither. Running state resets at every chunk boundary, making each chunk
// independently decodable. Any change here must bump packedEncoderVersion
// so stale disk-cache files regenerate instead of misdecoding.

// PackedChunkOps is the number of ops encoded per chunk: large enough to
// amortize the chunk-boundary state reset and the per-chunk publish
// handshake, small enough that pipelined consumers start executing well
// before generation finishes (a full stream is hundreds of chunks).
const PackedChunkOps = 4096

// packedEncoderVersion identifies the op wire format. It participates in
// the disk-cache content key and file header; bump it whenever the
// encoding changes shape.
const packedEncoderVersion = 1

// PackedEncoderVersion exposes the op wire-format version for content keys
// layered above this package (a format change alters the decoded ops a
// simulation replays, so any cache keyed on stream content must include it).
func PackedEncoderVersion() uint32 { return packedEncoderVersion }

// Tag-byte flag bits (high nibble).
const (
	flagWrite = 1 << 4
	flagFetch = 1 << 5
	flagCtx   = 1 << 6 // PID or Core differ from the running state
	flagExtra = 1 << 7 // Len, Size, or N is nonzero
)

// kindEscape in the tag's low nibble means the kind did not fit 4 bits and
// follows as a zigzag varint (never produced for the real OpKinds, but the
// encoder must round-trip arbitrary values for the property tests).
const kindEscape = 0xF

// packState is the running decoder/encoder state, reset per chunk.
type packState struct {
	prevVA uint64
	pid    int
	core   int
}

// packedChunk is one encoded run of up to PackedChunkOps ops. data is
// immutable once the chunk is published.
type packedChunk struct {
	data     []byte
	ops      int
	accesses int // OpAccess count within the chunk
}

// appendUvarint appends v in LEB128 form.
func appendUvarint(b []byte, v uint64) []byte {
	for v >= 0x80 {
		b = append(b, byte(v)|0x80)
		v >>= 7
	}
	return append(b, byte(v))
}

// appendZigzag appends a signed value in zigzag-LEB128 form.
func appendZigzag(b []byte, v int64) []byte {
	return appendUvarint(b, uint64(v)<<1^uint64(v>>63))
}

// appendOp encodes op given the running state, updating the state.
func appendOp(b []byte, op *Op, st *packState) []byte {
	var tag byte
	if k := int(op.Kind); k >= 0 && k < kindEscape {
		tag = byte(k)
	} else {
		tag = kindEscape
	}
	if op.Write {
		tag |= flagWrite
	}
	if op.Fetch {
		tag |= flagFetch
	}
	ctx := op.PID != st.pid || op.Core != st.core
	if ctx {
		tag |= flagCtx
	}
	extra := op.Len != 0 || op.Size != 0 || op.N != 0
	if extra {
		tag |= flagExtra
	}
	b = append(b, tag)
	if tag&0xF == kindEscape {
		b = appendZigzag(b, int64(op.Kind))
	}
	if ctx {
		b = appendZigzag(b, int64(op.PID))
		b = appendZigzag(b, int64(op.Core))
		st.pid, st.core = op.PID, op.Core
	}
	if extra {
		b = appendUvarint(b, op.Len)
		b = appendZigzag(b, int64(op.Size))
		b = appendZigzag(b, int64(op.N))
	}
	// The delta is computed in wraparound uint64 arithmetic, so every
	// (prevVA, VA) pair round-trips exactly.
	b = appendZigzag(b, int64(op.VA-st.prevVA))
	st.prevVA = op.VA
	return b
}

// errCorruptChunk reports a malformed encoded chunk. In-memory chunks are
// produced by appendOp and cannot be malformed; this surfaces only while
// validating disk-cache files, which must never panic on hostile bytes.
var errCorruptChunk = fmt.Errorf("workload: corrupt packed chunk")

// readUvarint is binary.Uvarint with explicit error reporting.
func readUvarint(b []byte) (uint64, int, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, 0, errCorruptChunk
	}
	return v, n, nil
}

// readZigzag decodes one zigzag-LEB128 value.
func readZigzag(b []byte) (int64, int, error) {
	u, n, err := readUvarint(b)
	if err != nil {
		return 0, 0, err
	}
	return int64(u>>1) ^ -int64(u&1), n, nil
}

// decodeChunkInto decodes data into buf[:want] and returns the op slice.
// want is the chunk's recorded op count; decoding fails if the bytes do
// not contain exactly that many well-formed ops. The loop is the warm
// replay hot path (~12 ns/op dominates a cached sweep's stream cost), so
// the per-op VA delta varint is decoded inline — the helper functions
// contain loops and do not inline — and only the rare tag flags take the
// out-of-line readers.
func decodeChunkInto(data []byte, buf *[PackedChunkOps]Op, want int) ([]Op, error) {
	if want < 0 || want > PackedChunkOps {
		return nil, errCorruptChunk
	}
	var prevVA uint64
	var pid, core int
	i := 0
	for n := 0; n < want; n++ {
		if i >= len(data) {
			return nil, errCorruptChunk
		}
		tag := data[i]
		i++
		op := &buf[n]
		kind := OpKind(tag & 0xF)
		if kind == kindEscape {
			k, n2, err := readZigzag(data[i:])
			if err != nil {
				return nil, err
			}
			kind = OpKind(k)
			i += n2
		}
		if tag&flagCtx != 0 {
			p, n2, err := readZigzag(data[i:])
			if err != nil {
				return nil, err
			}
			i += n2
			c, n3, err := readZigzag(data[i:])
			if err != nil {
				return nil, err
			}
			i += n3
			pid, core = int(p), int(c)
		}
		if tag&flagExtra != 0 {
			l, n2, err := readUvarint(data[i:])
			if err != nil {
				return nil, err
			}
			i += n2
			size, n3, err := readZigzag(data[i:])
			if err != nil {
				return nil, err
			}
			i += n3
			cnt, n4, err := readZigzag(data[i:])
			if err != nil {
				return nil, err
			}
			i += n4
			op.Len = l
			op.Size = pagetable.Size(size)
			op.N = int(cnt)
		} else {
			op.Len, op.Size, op.N = 0, 0, 0
		}
		// VA delta, inlined zigzag uvarint. Unlike binary.Uvarint this
		// accepts a non-minimal final byte (it masks instead of erroring);
		// the encoder only emits minimal forms, and for hostile disk bytes
		// acceptance is still deterministic and panic-free.
		var u uint64
		var sh uint
		for {
			if i >= len(data) {
				return nil, errCorruptChunk
			}
			c := data[i]
			i++
			u |= uint64(c&0x7f) << sh
			if c < 0x80 {
				break
			}
			sh += 7
			if sh >= 64 {
				return nil, errCorruptChunk
			}
		}
		prevVA += uint64(int64(u>>1) ^ -int64(u&1))
		op.Kind = kind
		op.PID, op.Core = pid, core
		op.VA = prevVA
		op.Write = tag&flagWrite != 0
		op.Fetch = tag&flagFetch != 0
	}
	if i != len(data) {
		return nil, errCorruptChunk
	}
	return buf[:want], nil
}

// chunkBufPool recycles decode buffers. A fixed-size array pointer (not a
// slice) is pooled so Put/Get never allocate a slice header.
var chunkBufPool = sync.Pool{New: func() any { return new([PackedChunkOps]Op) }}

// chunkEncoder accumulates ops into the current chunk.
type chunkEncoder struct {
	data     []byte
	ops      int
	accesses int
	st       packState
}

// encodedBytesPerOpHint pre-sizes chunk buffers: typical mixes encode to
// ~4–6 bytes per op, so 8 avoids regrowth without wasting much.
const encodedBytesPerOpHint = 8

func (e *chunkEncoder) reset() {
	if e.data == nil {
		e.data = make([]byte, 0, PackedChunkOps*encodedBytesPerOpHint)
	} else {
		e.data = e.data[:0]
	}
	e.ops = 0
	e.accesses = 0
	e.st = packState{}
}

func (e *chunkEncoder) add(op *Op) {
	e.data = appendOp(e.data, op, &e.st)
	e.ops++
	if op.Kind == OpAccess {
		e.accesses++
	}
}

// take snapshots the current chunk (copying the bytes to an exact-size
// slice, which is what the stream retains) and resets the encoder.
func (e *chunkEncoder) take() packedChunk {
	data := make([]byte, len(e.data))
	copy(data, e.data)
	ch := packedChunk{data: data, ops: e.ops, accesses: e.accesses}
	e.reset()
	return ch
}

// packedStream holds the encoded chunks plus the publish/subscribe state
// for pipelined generation. Readers wait on cond for the next chunk;
// the generator appends chunks as they are encoded and marks done when the
// stream is complete.
type packedStream struct {
	mu       sync.Mutex
	cond     sync.Cond
	chunks   []packedChunk
	done     bool
	numOps   int
	accesses int
	bytes    int64 // total encoded bytes across chunks
}

func newPackedStream() *packedStream {
	ps := &packedStream{}
	ps.cond.L = &ps.mu
	return ps
}

// publish appends one finished chunk and wakes waiting readers.
func (ps *packedStream) publish(ch packedChunk) {
	ps.mu.Lock()
	ps.chunks = append(ps.chunks, ch)
	ps.numOps += ch.ops
	ps.accesses += ch.accesses
	ps.bytes += int64(len(ch.data))
	ps.cond.Broadcast()
	ps.mu.Unlock()
}

// finish marks the stream complete and wakes readers blocked on the tail.
func (ps *packedStream) finish() {
	ps.mu.Lock()
	ps.done = true
	ps.cond.Broadcast()
	ps.mu.Unlock()
}

// waitDone blocks until generation has completed.
func (ps *packedStream) waitDone() {
	ps.mu.Lock()
	for !ps.done {
		ps.cond.Wait()
	}
	ps.mu.Unlock()
}

// chunkAt blocks until chunk i is published (returning it) or the stream
// finished with fewer chunks (ok false).
func (ps *packedStream) chunkAt(i int) (packedChunk, bool) {
	ps.mu.Lock()
	for i >= len(ps.chunks) && !ps.done {
		ps.cond.Wait()
	}
	if i >= len(ps.chunks) {
		ps.mu.Unlock()
		return packedChunk{}, false
	}
	ch := ps.chunks[i]
	ps.mu.Unlock()
	return ch, true
}

// encodeChunks drains gen into ps chunk by chunk, publishing each as soon
// as it is full so pipelined readers can start before generation
// completes. The caller marks the stream finished (after any bookkeeping
// that must be visible to waiters observing completion).
func (ps *packedStream) encodeChunks(gen Generator) {
	var e chunkEncoder
	e.reset()
	for {
		op, ok := gen.Next()
		if !ok {
			break
		}
		e.add(&op)
		if e.ops == PackedChunkOps {
			ps.publish(e.take())
		}
	}
	if e.ops > 0 {
		ps.publish(e.take())
	}
}

// encodeAll is encodeChunks plus completion (private, uncached streams).
func (ps *packedStream) encodeAll(gen Generator) {
	ps.encodeChunks(gen)
	ps.finish()
}

// packOps encodes a fixed op list into a completed packed stream (tests
// and the disk-cache validator).
func packOps(ops []Op) *packedStream {
	ps := newPackedStream()
	ps.encodeAll(NewFromOps("", ops))
	return ps
}

// StreamReader is a forward cursor over a stream's decoded chunks. Each
// reader owns one pooled decode buffer that every Next reuses, so
// steady-state replay performs no per-op or per-chunk allocation. Readers
// are not safe for concurrent use (take one per consumer); Close returns
// the buffer to the pool.
type StreamReader struct {
	ps   *packedStream
	next int
	buf  *[PackedChunkOps]Op
}

// Next decodes and returns the next chunk of ops, blocking while the
// generator is still producing it. ok is false once the stream is
// exhausted. The returned slice aliases the reader's reusable buffer: it
// is valid only until the following Next/Close call.
func (r *StreamReader) Next() ([]Op, bool) {
	ch, ok := r.ps.chunkAt(r.next)
	if !ok {
		return nil, false
	}
	r.next++
	if r.buf == nil {
		r.buf = chunkBufPool.Get().(*[PackedChunkOps]Op)
	}
	ops, err := decodeChunkInto(ch.data, r.buf, ch.ops)
	if err != nil {
		// In-memory chunks come from appendOp and disk-loaded chunks are
		// re-decoded during validation, so this is unreachable without an
		// encoder bug.
		panic(fmt.Sprintf("workload: packed chunk %d failed to decode: %v", r.next-1, err))
	}
	return ops, true
}

// Reset rewinds the reader to the first chunk, keeping its buffer.
func (r *StreamReader) Reset() { r.next = 0 }

// Close releases the reader's decode buffer back to the shared pool. The
// reader must not be used afterwards.
func (r *StreamReader) Close() {
	if r.buf != nil {
		chunkBufPool.Put(r.buf)
		r.buf = nil
	}
}
