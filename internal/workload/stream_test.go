package workload

import (
	"reflect"
	"sync"
	"testing"

	"agilepaging/internal/pagetable"
)

// freshCache isolates a test from global stream-cache state.
func freshCache(t testing.TB, budget int64) {
	t.Helper()
	ResetStreamCache()
	SetStreamCacheBudget(budget)
	t.Cleanup(func() {
		ResetStreamCache()
		SetStreamCacheBudget(DefaultStreamCacheBytes)
	})
}

func streamProfile(name string) Profile {
	return Profile{
		Name: name, FootprintBytes: 1 << 20, Pattern: PatternZipf,
		ZipfS: 1.1, WriteRatio: 0.3, MmapChurnEvery: 200,
		ChurnRegionBytes: 16 << 10, ChurnRegions: 2,
	}
}

func TestSharedStreamMatchesGenerator(t *testing.T) {
	freshCache(t, DefaultStreamCacheBytes)
	prof := streamProfile("shared")
	want := Collect(New(prof, pagetable.Size4K, 1000, 7), -1)
	s := SharedStream(prof, pagetable.Size4K, 1000, 7)
	if !reflect.DeepEqual(want, s.Ops()) {
		t.Fatal("SharedStream ops differ from a fresh generator's")
	}
	accesses := 0
	for _, op := range want {
		if op.Kind == OpAccess {
			accesses++
		}
	}
	if s.Accesses() != accesses {
		t.Errorf("Accesses() = %d, want %d", s.Accesses(), accesses)
	}
	// Replay must walk the identical sequence.
	got := Collect(s.Replay(), -1)
	if !reflect.DeepEqual(want, got) {
		t.Error("Replay() sequence differs")
	}
}

func TestSharedStreamCacheHit(t *testing.T) {
	freshCache(t, DefaultStreamCacheBytes)
	prof := streamProfile("hit")
	a := SharedStream(prof, pagetable.Size4K, 500, 1)
	b := SharedStream(prof, pagetable.Size4K, 500, 1)
	if a != b {
		t.Error("identical parameters returned distinct streams")
	}
	// Different seed, page size, or accesses must not share.
	if SharedStream(prof, pagetable.Size4K, 500, 2) == a {
		t.Error("different seed shared a stream")
	}
	if SharedStream(prof, pagetable.Size2M, 500, 1) == a {
		t.Error("different page size shared a stream")
	}
	hits, misses, bytes := StreamCacheStats()
	if hits != 1 || misses != 3 {
		t.Errorf("stats = %d hits / %d misses, want 1/3", hits, misses)
	}
	if bytes <= 0 {
		t.Errorf("cache bytes = %d, want > 0", bytes)
	}
	// Normalization: Processes/Threads 0 and 1 are the same workload.
	p0 := streamProfile("norm")
	p1 := p0
	p1.Processes, p1.Threads = 1, 1
	if SharedStream(p0, pagetable.Size4K, 100, 3) != SharedStream(p1, pagetable.Size4K, 100, 3) {
		t.Error("Processes/Threads normalization failed; equivalent profiles missed")
	}
}

func TestSharedStreamBudgetZeroDisables(t *testing.T) {
	freshCache(t, 0)
	prof := streamProfile("nocache")
	a := SharedStream(prof, pagetable.Size4K, 300, 1)
	b := SharedStream(prof, pagetable.Size4K, 300, 1)
	if a == b {
		t.Error("budget 0 should disable sharing")
	}
	if !reflect.DeepEqual(a.Ops(), b.Ops()) {
		t.Error("private streams differ for identical parameters")
	}
	if _, _, bytes := StreamCacheStats(); bytes != 0 {
		t.Errorf("disabled cache holds %d bytes, want 0", bytes)
	}
}

func TestStreamCacheEviction(t *testing.T) {
	// Budget sized to hold roughly one stream, so each new key evicts the
	// previous one.
	prof := streamProfile("evict")
	probe := SharedStream(prof, pagetable.Size4K, 2000, 1)
	one := int64(len(probe.Ops()))*opBytes + 512
	freshCache(t, one)

	a := SharedStream(prof, pagetable.Size4K, 2000, 1)
	SharedStream(prof, pagetable.Size4K, 2000, 2) // evicts a
	_, _, bytes := StreamCacheStats()
	if bytes > one {
		t.Errorf("cache bytes %d exceed budget %d after eviction", bytes, one)
	}
	if SharedStream(prof, pagetable.Size4K, 2000, 1) == a {
		t.Error("stream for seed 1 survived over-budget eviction")
	}

	// Unlimited budget never evicts.
	freshCache(t, -1)
	for seed := int64(0); seed < 8; seed++ {
		SharedStream(prof, pagetable.Size4K, 2000, seed)
	}
	if hits, misses, _ := StreamCacheStats(); hits != 0 || misses != 8 {
		t.Errorf("unbounded cache stats %d/%d, want 0 hits / 8 misses", hits, misses)
	}
	for seed := int64(0); seed < 8; seed++ {
		SharedStream(prof, pagetable.Size4K, 2000, seed)
	}
	if hits, _, _ := StreamCacheStats(); hits != 8 {
		t.Errorf("unbounded cache evicted: %d hits on re-request, want 8", hits)
	}
}

func TestSharedStreamConcurrent(t *testing.T) {
	freshCache(t, DefaultStreamCacheBytes)
	prof := streamProfile("conc")
	const goroutines = 16
	results := make([]*Stream, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = SharedStream(prof, pagetable.Size4K, 1500, 9)
		}(i)
	}
	wg.Wait()
	for i := 1; i < goroutines; i++ {
		if results[i] != results[0] {
			t.Fatalf("goroutine %d got a different stream instance", i)
		}
	}
	hits, misses, _ := StreamCacheStats()
	if misses != 1 || hits != goroutines-1 {
		t.Errorf("stats = %d hits / %d misses, want %d/1 (single generation)", hits, misses, goroutines-1)
	}
}

func TestAccessBoundary(t *testing.T) {
	freshCache(t, DefaultStreamCacheBytes)
	prof := streamProfile("boundary")
	s := SharedStream(prof, pagetable.Size4K, 1000, 5)
	if got := s.AccessBoundary(0); got != 0 {
		t.Errorf("AccessBoundary(0) = %d, want 0", got)
	}
	if got := s.AccessBoundary(-3); got != 0 {
		t.Errorf("AccessBoundary(-3) = %d, want 0", got)
	}
	if got := s.AccessBoundary(s.Accesses() + 10); got != s.Len() {
		t.Errorf("AccessBoundary(beyond) = %d, want Len %d", got, s.Len())
	}
	for _, n := range []int{1, 7, 100, s.Accesses() / 2, s.Accesses()} {
		b := s.AccessBoundary(n)
		seen := 0
		for _, op := range s.Ops()[:b] {
			if op.Kind == OpAccess {
				seen++
			}
		}
		if seen != n {
			t.Errorf("AccessBoundary(%d) = %d covers %d accesses", n, b, seen)
		}
		if b > 0 && s.Ops()[b-1].Kind != OpAccess {
			t.Errorf("AccessBoundary(%d): op %d is %v, want the n-th access itself", n, b-1, s.Ops()[b-1].Kind)
		}
		// Memoized second ask must agree.
		if again := s.AccessBoundary(n); again != b {
			t.Errorf("AccessBoundary(%d) memo = %d, first answer %d", n, again, b)
		}
	}
}

func BenchmarkSharedStreamHit(b *testing.B) {
	freshCache(b, DefaultStreamCacheBytes)
	prof := streamProfile("bench-hit")
	SharedStream(prof, pagetable.Size4K, 30_000, 42) // populate
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SharedStream(prof, pagetable.Size4K, 30_000, 42)
	}
}

func BenchmarkSharedStreamMiss(b *testing.B) {
	freshCache(b, -1)
	prof := streamProfile("bench-miss")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SharedStream(prof, pagetable.Size4K, 30_000, int64(i))
	}
}
