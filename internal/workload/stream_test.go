package workload

import (
	"reflect"
	"sync"
	"testing"

	"agilepaging/internal/pagetable"
)

// freshCache isolates a test from global stream-cache state.
func freshCache(t testing.TB, budget int64) {
	t.Helper()
	ResetStreamCache()
	SetStreamCacheBudget(budget)
	SetStreamCacheDir("")
	t.Cleanup(func() {
		ResetStreamCache()
		SetStreamCacheBudget(DefaultStreamCacheBytes)
		SetStreamCacheDir("")
	})
}

func streamProfile(name string) Profile {
	return Profile{
		Name: name, FootprintBytes: 1 << 20, Pattern: PatternZipf,
		ZipfS: 1.1, WriteRatio: 0.3, MmapChurnEvery: 200,
		ChurnRegionBytes: 16 << 10, ChurnRegions: 2,
	}
}

func TestSharedStreamMatchesGenerator(t *testing.T) {
	freshCache(t, DefaultStreamCacheBytes)
	prof := streamProfile("shared")
	want := Collect(New(prof, pagetable.Size4K, 1000, 7), -1)
	s := SharedStream(prof, pagetable.Size4K, 1000, 7)
	if !reflect.DeepEqual(want, s.Ops()) {
		t.Fatal("SharedStream ops differ from a fresh generator's")
	}
	accesses := 0
	for _, op := range want {
		if op.Kind == OpAccess {
			accesses++
		}
	}
	if s.Accesses() != accesses {
		t.Errorf("Accesses() = %d, want %d", s.Accesses(), accesses)
	}
	if s.Len() != len(want) {
		t.Errorf("Len() = %d, want %d", s.Len(), len(want))
	}
	// Replay must walk the identical sequence.
	got := Collect(s.Replay(), -1)
	if !reflect.DeepEqual(want, got) {
		t.Error("Replay() sequence differs")
	}
}

// TestStreamReaderChunks pins the Reader contract: chunks of at most
// PackedChunkOps ops that concatenate to exactly the generated stream,
// Reset rewinding to the first chunk, and a second reader (a late arrival
// attaching to already-published chunks) seeing the same sequence.
func TestStreamReaderChunks(t *testing.T) {
	freshCache(t, DefaultStreamCacheBytes)
	prof := streamProfile("chunks")
	const accesses = 10_000 // several chunks
	want := Collect(New(prof, pagetable.Size4K, accesses, 3), -1)
	s := SharedStream(prof, pagetable.Size4K, accesses, 3)

	drain := func(r *StreamReader) []Op {
		var got []Op
		chunks := 0
		for {
			ops, ok := r.Next()
			if !ok {
				break
			}
			if len(ops) == 0 || len(ops) > PackedChunkOps {
				t.Fatalf("chunk %d has %d ops", chunks, len(ops))
			}
			got = append(got, ops...)
			chunks++
		}
		if min := (len(want) + PackedChunkOps - 1) / PackedChunkOps; chunks != min {
			t.Fatalf("stream decoded in %d chunks, want %d", chunks, min)
		}
		return got
	}

	r := s.Reader()
	defer r.Close()
	if got := drain(r); !reflect.DeepEqual(want, got) {
		t.Fatal("Reader sequence differs from generator output")
	}
	r.Reset()
	if got := drain(r); !reflect.DeepEqual(want, got) {
		t.Fatal("Reader sequence differs after Reset")
	}
	late := s.Reader()
	defer late.Close()
	if got := drain(late); !reflect.DeepEqual(want, got) {
		t.Fatal("late reader sequence differs")
	}
}

// TestSharedStreamPipelinedConsumers starts several consumers immediately
// after the (asynchronous, chunk-publishing) generation kicks off; each
// must see the full identical stream regardless of how its reads interleave
// with generation.
func TestSharedStreamPipelinedConsumers(t *testing.T) {
	freshCache(t, DefaultStreamCacheBytes)
	prof := streamProfile("pipeline")
	const accesses = 20_000
	s := SharedStream(prof, pagetable.Size4K, accesses, 11)
	const consumers = 4
	lens := make([]int, consumers)
	sums := make([]uint64, consumers)
	var wg sync.WaitGroup
	for i := 0; i < consumers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r := s.Reader()
			defer r.Close()
			for {
				ops, ok := r.Next()
				if !ok {
					return
				}
				lens[i] += len(ops)
				for j := range ops {
					sums[i] += ops[j].VA + uint64(ops[j].Kind)
				}
			}
		}(i)
	}
	wg.Wait()
	for i := 1; i < consumers; i++ {
		if lens[i] != lens[0] || sums[i] != sums[0] {
			t.Fatalf("consumer %d saw %d ops (sum %d), consumer 0 saw %d (sum %d)",
				i, lens[i], sums[i], lens[0], sums[0])
		}
	}
	if lens[0] != s.Len() {
		t.Fatalf("consumers saw %d ops, stream Len() = %d", lens[0], s.Len())
	}
}

func TestSharedStreamCacheHit(t *testing.T) {
	freshCache(t, DefaultStreamCacheBytes)
	prof := streamProfile("hit")
	a := SharedStream(prof, pagetable.Size4K, 500, 1)
	b := SharedStream(prof, pagetable.Size4K, 500, 1)
	if a != b {
		t.Error("identical parameters returned distinct streams")
	}
	// Different seed, page size, or accesses must not share.
	if SharedStream(prof, pagetable.Size4K, 500, 2) == a {
		t.Error("different seed shared a stream")
	}
	if SharedStream(prof, pagetable.Size2M, 500, 1) == a {
		t.Error("different page size shared a stream")
	}
	hits, misses, _ := StreamCacheStats()
	if hits != 1 || misses != 3 {
		t.Errorf("stats = %d hits / %d misses, want 1/3", hits, misses)
	}
	// The budget is charged when generation completes (observing a
	// completed stream implies consistent statistics).
	a.PackedBytes()
	if _, _, bytes := StreamCacheStats(); bytes <= 0 {
		t.Errorf("cache bytes = %d after generation, want > 0", bytes)
	}
	// Normalization: Processes/Threads 0 and 1 are the same workload.
	p0 := streamProfile("norm")
	p1 := p0
	p1.Processes, p1.Threads = 1, 1
	if SharedStream(p0, pagetable.Size4K, 100, 3) != SharedStream(p1, pagetable.Size4K, 100, 3) {
		t.Error("Processes/Threads normalization failed; equivalent profiles missed")
	}
}

func TestSharedStreamBudgetZeroDisables(t *testing.T) {
	freshCache(t, 0)
	prof := streamProfile("nocache")
	a := SharedStream(prof, pagetable.Size4K, 300, 1)
	b := SharedStream(prof, pagetable.Size4K, 300, 1)
	if a == b {
		t.Error("budget 0 should disable sharing")
	}
	if !reflect.DeepEqual(a.Ops(), b.Ops()) {
		t.Error("private streams differ for identical parameters")
	}
	if _, _, bytes := StreamCacheStats(); bytes != 0 {
		t.Errorf("disabled cache holds %d bytes, want 0", bytes)
	}
}

func TestStreamCacheEviction(t *testing.T) {
	// Budget sized to hold roughly one packed stream, so each new key
	// evicts the previous one.
	prof := streamProfile("evict")
	freshCache(t, DefaultStreamCacheBytes)
	probe := SharedStream(prof, pagetable.Size4K, 2000, 1)
	one := probe.PackedBytes() + 2*streamEntryOverhead
	freshCache(t, one)

	a := SharedStream(prof, pagetable.Size4K, 2000, 1)
	a.PackedBytes()
	s2 := SharedStream(prof, pagetable.Size4K, 2000, 2) // evicts a when charged
	s2.PackedBytes()
	_, _, bytes := StreamCacheStats()
	if bytes > one {
		t.Errorf("cache bytes %d exceed budget %d after eviction", bytes, one)
	}
	if SharedStream(prof, pagetable.Size4K, 2000, 1) == a {
		t.Error("stream for seed 1 survived over-budget eviction")
	}

	// Unlimited budget never evicts.
	freshCache(t, -1)
	for seed := int64(0); seed < 8; seed++ {
		SharedStream(prof, pagetable.Size4K, 2000, seed).PackedBytes()
	}
	if hits, misses, _ := StreamCacheStats(); hits != 0 || misses != 8 {
		t.Errorf("unbounded cache stats %d/%d, want 0 hits / 8 misses", hits, misses)
	}
	for seed := int64(0); seed < 8; seed++ {
		SharedStream(prof, pagetable.Size4K, 2000, seed)
	}
	if hits, _, _ := StreamCacheStats(); hits != 8 {
		t.Errorf("unbounded cache evicted: %d hits on re-request, want 8", hits)
	}
}

// TestResetStreamCacheRewindsClock pins that a reset restores the cache to
// its fresh-process state: statistics zeroed and the LRU clock rewound, so
// lastUse stamps after a reset are deterministic.
func TestResetStreamCacheRewindsClock(t *testing.T) {
	freshCache(t, DefaultStreamCacheBytes)
	prof := streamProfile("clock")
	for seed := int64(0); seed < 5; seed++ {
		SharedStream(prof, pagetable.Size4K, 200, seed)
	}
	streamCache.mu.Lock()
	clockBefore := streamCache.clock
	streamCache.mu.Unlock()
	if clockBefore != 5 {
		t.Fatalf("clock = %d after 5 requests, want 5", clockBefore)
	}
	ResetStreamCache()
	streamCache.mu.Lock()
	clock := streamCache.clock
	streamCache.mu.Unlock()
	if clock != 0 {
		t.Fatalf("clock = %d after reset, want 0", clock)
	}
	s := SharedStream(prof, pagetable.Size4K, 200, 99)
	s.PackedBytes()
	streamCache.mu.Lock()
	var lastUse uint64
	for _, e := range streamCache.entries {
		lastUse = e.lastUse
	}
	streamCache.mu.Unlock()
	if lastUse != 1 {
		t.Fatalf("first post-reset entry lastUse = %d, want 1", lastUse)
	}
	info := StreamCacheInfo()
	if info.Hits != 0 || info.Misses != 1 || info.Streams != 1 {
		t.Fatalf("post-reset stats = %+v, want 0 hits / 1 miss / 1 stream", info)
	}
}

func TestSharedStreamConcurrent(t *testing.T) {
	freshCache(t, DefaultStreamCacheBytes)
	prof := streamProfile("conc")
	const goroutines = 16
	results := make([]*Stream, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = SharedStream(prof, pagetable.Size4K, 1500, 9)
		}(i)
	}
	wg.Wait()
	for i := 1; i < goroutines; i++ {
		if results[i] != results[0] {
			t.Fatalf("goroutine %d got a different stream instance", i)
		}
	}
	hits, misses, _ := StreamCacheStats()
	if misses != 1 || hits != goroutines-1 {
		t.Errorf("stats = %d hits / %d misses, want %d/1 (single generation)", hits, misses, goroutines-1)
	}
}

func TestAccessBoundary(t *testing.T) {
	freshCache(t, DefaultStreamCacheBytes)
	prof := streamProfile("boundary")
	s := SharedStream(prof, pagetable.Size4K, 1000, 5)
	if got := s.AccessBoundary(0); got != 0 {
		t.Errorf("AccessBoundary(0) = %d, want 0", got)
	}
	if got := s.AccessBoundary(-3); got != 0 {
		t.Errorf("AccessBoundary(-3) = %d, want 0", got)
	}
	if got := s.AccessBoundary(s.Accesses() + 10); got != s.Len() {
		t.Errorf("AccessBoundary(beyond) = %d, want Len %d", got, s.Len())
	}
	for _, n := range []int{1, 7, 100, s.Accesses() / 2, s.Accesses()} {
		b := s.AccessBoundary(n)
		seen := 0
		for _, op := range s.Ops()[:b] {
			if op.Kind == OpAccess {
				seen++
			}
		}
		if seen != n {
			t.Errorf("AccessBoundary(%d) = %d covers %d accesses", n, b, seen)
		}
		if b > 0 && s.Ops()[b-1].Kind != OpAccess {
			t.Errorf("AccessBoundary(%d): op %d is %v, want the n-th access itself", n, b-1, s.Ops()[b-1].Kind)
		}
		// Memoized second ask must agree.
		if again := s.AccessBoundary(n); again != b {
			t.Errorf("AccessBoundary(%d) memo = %d, first answer %d", n, again, b)
		}
	}
}

// TestAccessBoundaryAcrossChunks exercises splits on streams long enough
// that the boundary lands in a middle chunk and exactly at chunk edges.
func TestAccessBoundaryAcrossChunks(t *testing.T) {
	freshCache(t, DefaultStreamCacheBytes)
	prof := streamProfile("boundary-chunks")
	s := SharedStream(prof, pagetable.Size4K, 3*PackedChunkOps, 5)
	ops := s.Ops()
	cuts := []int{1, PackedChunkOps - 1, PackedChunkOps, PackedChunkOps + 1,
		2 * PackedChunkOps, s.Accesses() / 2, s.Accesses()}
	for _, n := range cuts {
		b := s.AccessBoundary(n)
		seen := 0
		for _, op := range ops[:b] {
			if op.Kind == OpAccess {
				seen++
			}
		}
		if seen != n {
			t.Errorf("AccessBoundary(%d) = %d covers %d accesses", n, b, seen)
		}
		if ops[b-1].Kind != OpAccess {
			t.Errorf("AccessBoundary(%d): boundary op is %v", n, ops[b-1].Kind)
		}
	}
}

func BenchmarkSharedStreamHit(b *testing.B) {
	freshCache(b, DefaultStreamCacheBytes)
	prof := streamProfile("bench-hit")
	SharedStream(prof, pagetable.Size4K, 30_000, 42).PackedBytes() // populate
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SharedStream(prof, pagetable.Size4K, 30_000, 42)
	}
}

func BenchmarkSharedStreamMiss(b *testing.B) {
	freshCache(b, -1)
	prof := streamProfile("bench-miss")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SharedStream(prof, pagetable.Size4K, 30_000, int64(i)).PackedBytes()
	}
}

// BenchmarkSharedStreamCold measures the full cold path a sweep's first
// consumer pays: pipelined generation plus a complete chunked read-through
// of the stream. Compare with BenchmarkSharedStreamMiss (generation only)
// and BenchmarkPackedDecode (decode only).
func BenchmarkSharedStreamCold(b *testing.B) {
	freshCache(b, -1)
	prof := streamProfile("bench-cold")
	b.ReportAllocs()
	b.ResetTimer()
	ops := 0
	for i := 0; i < b.N; i++ {
		s := SharedStream(prof, pagetable.Size4K, 30_000, int64(i))
		r := s.Reader()
		for {
			chunk, ok := r.Next()
			if !ok {
				break
			}
			ops += len(chunk)
		}
		r.Close()
	}
	if ops == 0 {
		b.Fatal("no ops read")
	}
}
