package workload

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"agilepaging/internal/pagetable"
)

// Persistent on-disk stream cache.
//
// Opt-in via SetStreamCacheDir (the CLIs' -stream-cache-dir flag): packed
// streams are written to <dir>/stream-<hash>.aps after generation and read
// back on later runs, so repeated bench/CLI invocations skip generation
// entirely. The filename hash covers every input that determines stream
// content — the full Profile, page size, access count, seed, and the
// packed encoder version — so a parameter or format change simply misses
// and regenerates; nothing is ever reused across keys.
//
// Files are validated defensively: magic, version, and geometry checks, a
// CRC-32C over the entire payload, and a full decode pass of every chunk
// against its recorded op/access counts. Any mismatch — truncation, bit
// rot, a stale or hostile file — silently falls back to regeneration
// (removing the bad file) and never panics: a corrupt cache must cost one
// generation, not a crash.

// streamFileMagic heads every cache file. The trailing version byte pair
// is redundant with the header's version field; it keeps utterly foreign
// files from even reaching the parser.
var streamFileMagic = [8]byte{'A', 'G', 'P', 'K', 'S', 'T', 'R', '1'}

// streamCacheKey returns the content-addressed filename for a stream.
func streamCacheKey(prof Profile, pageSize pagetable.Size, accesses int, seed int64) string {
	h := sha256.New()
	// Every Profile field, in declaration order. A new field changes this
	// string only when set, but packedEncoderVersion is bumped on format
	// changes and profile changes alter the fields themselves, so the hash
	// tracks content exactly.
	fmt.Fprintf(h, "v%d|%q|%d|%d|%g|%g|%t|%d|%d|%d|%d|%d|%d|%d|%d|%d|%d|%d",
		packedEncoderVersion,
		prof.Name, prof.FootprintBytes, prof.Pattern,
		prof.ZipfS, prof.WriteRatio, prof.PrePopulate,
		prof.Processes, prof.CtxSwitchEvery, prof.Threads,
		prof.MmapChurnEvery, prof.ChurnRegionBytes, prof.ChurnRegions,
		prof.CowEvery, prof.CowRegionBytes,
		prof.ReclaimEvery, prof.ReclaimPages, prof.CollapseEvery)
	fmt.Fprintf(h, "|ps%d|n%d|s%d", pageSize, accesses, seed)
	return fmt.Sprintf("stream-%x.aps", h.Sum(nil)[:16])
}

// encodeStreamFile serializes a completed packed stream:
//
//	magic[8] | u32 version | u32 chunkOps | u32 numChunks |
//	u64 numOps | u64 accesses |
//	numChunks × (u32 ops | u32 accesses | u32 dataLen | data) |
//	u32 CRC-32C of everything before it
func encodeStreamFile(ps *packedStream) []byte {
	buf := make([]byte, 0, 40+ps.bytes+int64(len(ps.chunks))*12)
	buf = append(buf, streamFileMagic[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, packedEncoderVersion)
	buf = binary.LittleEndian.AppendUint32(buf, PackedChunkOps)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(ps.chunks)))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(ps.numOps))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(ps.accesses))
	for _, ch := range ps.chunks {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(ch.ops))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(ch.accesses))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(ch.data)))
		buf = append(buf, ch.data...)
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, crcTable))
	return buf
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// decodeStreamFile parses and fully validates a cache file, returning the
// chunk set ready to publish. Every byte is covered by the checksum and
// every chunk is decoded once against its recorded counts, so a stream
// accepted here can never fail to decode during replay.
func decodeStreamFile(data []byte) (*packedStream, error) {
	const header = 8 + 4 + 4 + 4 + 8 + 8
	if len(data) < header+4 {
		return nil, fmt.Errorf("truncated header (%d bytes)", len(data))
	}
	if [8]byte(data[:8]) != streamFileMagic {
		return nil, fmt.Errorf("bad magic")
	}
	body, sum := data[:len(data)-4], binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.Checksum(body, crcTable) != sum {
		return nil, fmt.Errorf("checksum mismatch")
	}
	version := binary.LittleEndian.Uint32(data[8:])
	if version != packedEncoderVersion {
		return nil, fmt.Errorf("encoder version %d, want %d", version, packedEncoderVersion)
	}
	if chunkOps := binary.LittleEndian.Uint32(data[12:]); chunkOps != PackedChunkOps {
		return nil, fmt.Errorf("chunk geometry %d, want %d", chunkOps, PackedChunkOps)
	}
	numChunks := int(binary.LittleEndian.Uint32(data[16:]))
	numOps := int(binary.LittleEndian.Uint64(data[20:]))
	accesses := int(binary.LittleEndian.Uint64(data[28:]))

	ps := newPackedStream()
	buf := chunkBufPool.Get().(*[PackedChunkOps]Op)
	defer chunkBufPool.Put(buf)
	off := header
	var gotOps, gotAccesses int
	for c := 0; c < numChunks; c++ {
		if off+12 > len(body) {
			return nil, fmt.Errorf("truncated chunk %d header", c)
		}
		ops := int(binary.LittleEndian.Uint32(body[off:]))
		acc := int(binary.LittleEndian.Uint32(body[off+4:]))
		dataLen := int(binary.LittleEndian.Uint32(body[off+8:]))
		off += 12
		if dataLen < 0 || off+dataLen > len(body) {
			return nil, fmt.Errorf("truncated chunk %d body", c)
		}
		chunk := packedChunk{data: body[off : off+dataLen : off+dataLen], ops: ops, accesses: acc}
		off += dataLen
		decoded, err := decodeChunkInto(chunk.data, buf, ops)
		if err != nil {
			return nil, fmt.Errorf("chunk %d: %w", c, err)
		}
		n := 0
		for i := range decoded {
			if decoded[i].Kind == OpAccess {
				n++
			}
		}
		if n != acc {
			return nil, fmt.Errorf("chunk %d access count %d, recorded %d", c, n, acc)
		}
		gotOps += ops
		gotAccesses += acc
		ps.chunks = append(ps.chunks, chunk)
	}
	if off != len(body) {
		return nil, fmt.Errorf("%d trailing bytes", len(body)-off)
	}
	if gotOps != numOps || gotAccesses != accesses {
		return nil, fmt.Errorf("totals %d ops/%d accesses, header says %d/%d", gotOps, gotAccesses, numOps, accesses)
	}
	ps.numOps = numOps
	ps.accesses = accesses
	for _, ch := range ps.chunks {
		ps.bytes += int64(len(ch.data))
	}
	return ps, nil
}

// loadStreamFromDisk tries to satisfy a stream from the disk cache,
// publishing every chunk into ps at once on success (the caller marks the
// stream finished). On any validation failure the stale file is removed so
// the regenerated stream replaces it.
func loadStreamFromDisk(dir, key string, ps *packedStream) bool {
	path := filepath.Join(dir, key)
	data, err := os.ReadFile(path)
	if err != nil {
		return false
	}
	loaded, err := decodeStreamFile(data)
	if err != nil {
		os.Remove(path)
		return false
	}
	ps.mu.Lock()
	ps.chunks = loaded.chunks
	ps.numOps = loaded.numOps
	ps.accesses = loaded.accesses
	ps.bytes = loaded.bytes
	ps.cond.Broadcast()
	ps.mu.Unlock()
	return true
}

// writeStreamToDisk persists a completed stream atomically (temp file +
// rename, so a concurrent or killed writer can never leave a torn file at
// the final path). Failures are reported to the caller for stats but are
// otherwise silent: the disk cache is an optimization, not a dependency.
func writeStreamToDisk(dir, key string, ps *packedStream) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, key+".tmp-*")
	if err != nil {
		return err
	}
	data := encodeStreamFile(ps)
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, key)); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}
