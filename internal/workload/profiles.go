package workload

// The eight evaluation workloads of paper Table V, as synthetic profiles.
//
// Footprints are scaled down ~1000× from the paper's originals (the TLB
// hierarchy is scaled by the machine configuration to preserve miss
// ratios). Page-table-update behaviour is what separates the techniques,
// so each profile encodes the churn that drives its published result:
//
//   - graph500, mcf: huge static footprints, dependent traversals — many
//     TLB misses, almost no PT updates. Shadow ≈ native; nested pays the 2D
//     walk (paper: 41%/50% native 4K overhead, worst nested cases).
//   - canneal, astar, tigr: moderate footprints, few updates — shadow wins,
//     agile matches it.
//   - memcached: skewed key popularity, slab growth (demand faults + new
//     regions) and eviction — shadow pays VMM interventions (paper shows a
//     visible VMtrap component).
//   - gcc: two processes (driver/cc1), short-lived allocation churn and
//     context switches — both constituents poor; paper calls it out as a
//     high-VMM-overhead case for shadow.
//   - dedup: allocation-heavy pipeline with content-based sharing — the
//     paper's worst shadow case (57% of time in VMM servicing updates).
//
// Concurrency contract: profiles is written only at package init and is
// read-only thereafter — sweep jobs on the parallel runner read it
// concurrently. It is unexported so no caller can mutate it; Profiles()
// and ProfileByName hand out copies.
var profiles = []Profile{
	{
		Name:           "memcached",
		FootprintBytes: 32 << 20,
		Pattern:        PatternZipf,
		ZipfS:          1.25,
		WriteRatio:     0.30,
		PrePopulate:    true, // memcached preallocates slab memory
		Processes:      1,
		MmapChurnEvery: 12_000, ChurnRegionBytes: 256 << 10, ChurnRegions: 8,
		ReclaimEvery: 100_000, ReclaimPages: 64,
	},
	{
		Name:           "canneal",
		FootprintBytes: 20 << 20,
		Pattern:        PatternUniform,
		WriteRatio:     0.25,
		PrePopulate:    true,
		Threads:        4, // PARSEC shared-memory threads (paper Table V)
		MmapChurnEvery: 80_000, ChurnRegionBytes: 64 << 10, ChurnRegions: 4,
	},
	{
		Name:           "astar",
		FootprintBytes: 10 << 20,
		Pattern:        PatternZipf,
		ZipfS:          1.20,
		WriteRatio:     0.20,
		PrePopulate:    true,
		MmapChurnEvery: 50_000, ChurnRegionBytes: 64 << 10, ChurnRegions: 4,
	},
	{
		Name:           "gcc",
		FootprintBytes: 16 << 20,
		Pattern:        PatternZipf,
		ZipfS:          1.25,
		WriteRatio:     0.35,
		PrePopulate:    true, // compiler working set; churn models its allocation waves
		Processes:      2,
		CtxSwitchEvery: 25_000,
		MmapChurnEvery: 4_000, ChurnRegionBytes: 128 << 10, ChurnRegions: 6,
	},
	{
		Name:           "graph500",
		FootprintBytes: 32 << 20,
		Pattern:        PatternChase,
		WriteRatio:     0.10,
		PrePopulate:    true,
	},
	{
		Name:           "mcf",
		FootprintBytes: 24 << 20,
		Pattern:        PatternChase,
		WriteRatio:     0.15,
		PrePopulate:    true,
	},
	{
		Name:           "tigr",
		FootprintBytes: 20 << 20,
		Pattern:        PatternStream,
		WriteRatio:     0.10,
		PrePopulate:    true,
		MmapChurnEvery: 40_000, ChurnRegionBytes: 128 << 10, ChurnRegions: 4,
	},
	{
		Name:           "dedup",
		FootprintBytes: 32 << 20,
		Pattern:        PatternZipf,
		ZipfS:          1.20,
		WriteRatio:     0.40,
		PrePopulate:    true, // input corpus read up front; churn is in the pipeline stages
		Threads:        4,    // PARSEC pipeline stages (paper Table V)
		MmapChurnEvery: 2_500, ChurnRegionBytes: 192 << 10, ChurnRegions: 8,
		CowEvery: 15_000, CowRegionBytes: 512 << 10,
	},
}

// Profiles returns the eight evaluation profiles in paper order. The
// returned slice is a fresh copy, safe for the caller to modify.
func Profiles() []Profile {
	out := make([]Profile, len(profiles))
	copy(out, profiles)
	return out
}

// ProfileByName returns the named profile (a copy; Profile contains no
// reference types, so copies share nothing).
func ProfileByName(name string) (Profile, bool) {
	for _, p := range profiles {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// Names lists the profile names in evaluation order.
func Names() []string {
	out := make([]string, len(profiles))
	for i, p := range profiles {
		out[i] = p.Name
	}
	return out
}
