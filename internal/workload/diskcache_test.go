package workload

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"agilepaging/internal/pagetable"
)

// diskStream requests a stream with the disk cache rooted at dir and waits
// for generation (and therefore the cache-file write) to complete.
func diskStream(t *testing.T, dir string, seed int64) *Stream {
	t.Helper()
	freshCache(t, DefaultStreamCacheBytes)
	SetStreamCacheDir(dir)
	s := SharedStream(streamProfile("disk"), pagetable.Size4K, 5000, seed)
	s.PackedBytes()
	return s
}

// cacheFile returns the single stream file in dir.
func cacheFile(t *testing.T, dir string) string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "stream-*.aps"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("cache files in %s: %v (err %v), want exactly 1", dir, matches, err)
	}
	return matches[0]
}

func TestDiskCacheRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cold := diskStream(t, dir, 7)
	want := cold.Ops()
	if info := StreamCacheInfo(); info.DiskMisses != 1 || info.DiskHits != 0 {
		t.Fatalf("cold run disk stats %+v, want 1 miss / 0 hits", info)
	}
	path := cacheFile(t, dir)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() >= int64(len(want))*64 {
		t.Errorf("cache file %d bytes for %d ops — not packed?", fi.Size(), len(want))
	}

	// Warm: a fresh in-memory cache must load from disk, not regenerate,
	// and produce the identical stream.
	warm := diskStream(t, dir, 7)
	if info := StreamCacheInfo(); info.DiskHits != 1 || info.DiskMisses != 0 {
		t.Fatalf("warm run disk stats %+v, want 1 hit / 0 misses", info)
	}
	if got := warm.Ops(); !reflect.DeepEqual(want, got) {
		t.Fatal("disk-loaded stream differs from generated stream")
	}
}

// corruptAndReload corrupts the warm cache file with mutate, re-requests the
// stream, and asserts silent regeneration: correct ops, a disk miss, and a
// fresh valid file left behind.
func corruptAndReload(t *testing.T, mutate func(t *testing.T, path string)) {
	t.Helper()
	dir := t.TempDir()
	want := diskStream(t, dir, 3).Ops()
	path := cacheFile(t, dir)
	mutate(t, path)

	got := diskStream(t, dir, 3)
	if ops := got.Ops(); !reflect.DeepEqual(want, ops) {
		t.Fatal("regenerated stream differs from original")
	}
	info := StreamCacheInfo()
	if info.DiskHits != 0 || info.DiskMisses != 1 {
		t.Fatalf("disk stats after corruption %+v, want 0 hits / 1 miss (regenerated)", info)
	}
	// The bad file must have been replaced by a valid one.
	data, err := os.ReadFile(cacheFile(t, dir))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := decodeStreamFile(data); err != nil {
		t.Fatalf("rewritten cache file invalid: %v", err)
	}
}

func TestDiskCacheTruncated(t *testing.T) {
	corruptAndReload(t, func(t *testing.T, path string) {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
			t.Fatal(err)
		}
	})
}

func TestDiskCacheBadChecksum(t *testing.T) {
	corruptAndReload(t, func(t *testing.T, path string) {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)/2] ^= 0x40 // flip one payload bit
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	})
}

func TestDiskCacheStaleVersion(t *testing.T) {
	corruptAndReload(t, func(t *testing.T, path string) {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		// Patch the header version and recompute the CRC, so the file is
		// internally consistent but from a "different" encoder.
		binary.LittleEndian.PutUint32(data[8:], packedEncoderVersion+1)
		body := data[:len(data)-4]
		binary.LittleEndian.PutUint32(data[len(data)-4:], crc32.Checksum(body, crcTable))
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	})
}

func TestDiskCacheForgedCounts(t *testing.T) {
	corruptAndReload(t, func(t *testing.T, path string) {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		// Inflate the first chunk's recorded op count (offset 36 = header)
		// and fix up the CRC: the per-chunk decode validation must catch it.
		ops := binary.LittleEndian.Uint32(data[36:])
		binary.LittleEndian.PutUint32(data[36:], ops+1)
		body := data[:len(data)-4]
		binary.LittleEndian.PutUint32(data[len(data)-4:], crc32.Checksum(body, crcTable))
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	})
}

func TestDiskCacheGarbageFile(t *testing.T) {
	corruptAndReload(t, func(t *testing.T, path string) {
		if err := os.WriteFile(path, []byte("not a stream file at all"), 0o644); err != nil {
			t.Fatal(err)
		}
	})
}

// TestDiskCacheKeySensitivity pins that every keyed parameter lands in a
// distinct file.
func TestDiskCacheKeySensitivity(t *testing.T) {
	prof := streamProfile("keys")
	base := streamCacheKey(prof, pagetable.Size4K, 1000, 1)
	altProf := prof
	altProf.ZipfS = 1.2
	for name, other := range map[string]string{
		"page size": streamCacheKey(prof, pagetable.Size2M, 1000, 1),
		"accesses":  streamCacheKey(prof, pagetable.Size4K, 1001, 1),
		"seed":      streamCacheKey(prof, pagetable.Size4K, 1000, 2),
		"profile":   streamCacheKey(altProf, pagetable.Size4K, 1000, 1),
	} {
		if other == base {
			t.Errorf("%s change did not change the cache key", name)
		}
	}
	if again := streamCacheKey(prof, pagetable.Size4K, 1000, 1); again != base {
		t.Error("cache key not deterministic")
	}
}

// TestDiskCacheUnwritableDir pins that a failing write is counted but does
// not break the run.
func TestDiskCacheUnwritableDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "sub")
	if err := os.MkdirAll(dir, 0o555); err != nil {
		t.Fatal(err)
	}
	if f, err := os.CreateTemp(dir, "probe"); err == nil {
		// Running as root or on a permissive FS: mode bits don't bite.
		f.Close()
		t.Skip("directory writable despite 0555")
	}
	freshCache(t, DefaultStreamCacheBytes)
	SetStreamCacheDir(dir)
	s := SharedStream(streamProfile("rofs"), pagetable.Size4K, 1000, 1)
	if s.Len() == 0 {
		t.Fatal("stream empty")
	}
	if info := StreamCacheInfo(); info.DiskErrors != 1 {
		t.Errorf("disk errors = %d, want 1", info.DiskErrors)
	}
}
