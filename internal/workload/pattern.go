package workload

import "math/rand"

// PatternKind selects the access-locality model of a workload's steady
// phase.
type PatternKind int

// Access patterns.
const (
	// PatternUniform draws addresses uniformly over the footprint
	// (cache-hostile, like canneal's random swaps).
	PatternUniform PatternKind = iota
	// PatternZipf draws addresses from a Zipf distribution (skewed key
	// popularity, like memcached).
	PatternZipf
	// PatternChase follows a fixed pseudo-random permutation of the pages
	// (dependent pointer chasing, like mcf's arcs or graph500 traversal).
	PatternChase
	// PatternStream walks the footprint sequentially with occasional random
	// jumps (tigr's scan-then-probe behaviour).
	PatternStream
)

// String names the pattern.
func (p PatternKind) String() string {
	switch p {
	case PatternUniform:
		return "uniform"
	case PatternZipf:
		return "zipf"
	case PatternChase:
		return "chase"
	case PatternStream:
		return "stream"
	}
	return "unknown"
}

// pattern generates page-granular offsets within a footprint of n pages.
type pattern struct {
	kind  PatternKind
	n     uint64
	rng   *rand.Rand
	zipf  *rand.Zipf
	state uint64 // chase position / stream cursor
	// chase walks x -> (x + stride) mod n with gcd(stride, n) == 1: a
	// full-cycle permutation of the pages, so every page's reuse distance
	// equals the footprint — dependent pointer chasing with no TLB locality.
	chaseStride uint64
}

func newPattern(kind PatternKind, pages uint64, zipfS float64, rng *rand.Rand) *pattern {
	if pages == 0 {
		pages = 1
	}
	p := &pattern{kind: kind, n: pages, rng: rng}
	switch kind {
	case PatternZipf:
		if zipfS <= 1.0 {
			zipfS = 1.1
		}
		p.zipf = rand.NewZipf(rng, zipfS, 1, pages-1)
		// Permute rank -> page so popularity is uncorrelated with address
		// order, as heap placement is in practice.
		stride := pages*5/8 | 1
		for gcd(stride, pages) != 1 {
			stride += 2
		}
		p.chaseStride = stride
	case PatternChase:
		stride := pages/2 + uint64(rng.Int63n(int64(pages/2+1))) | 1
		for gcd(stride, pages) != 1 {
			stride += 2
		}
		p.chaseStride = stride
		p.state = uint64(rng.Int63()) % pages
	}
	return p
}

func gcd(a, b uint64) uint64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// next returns the next page index in [0, n).
func (p *pattern) next() uint64 {
	switch p.kind {
	case PatternUniform:
		return p.rng.Uint64() % p.n
	case PatternZipf:
		return (p.zipf.Uint64() * p.chaseStride) % p.n
	case PatternChase:
		p.state = (p.state + p.chaseStride) % p.n
		return p.state
	case PatternStream:
		// 1-in-64 random jump, otherwise sequential.
		if p.rng.Intn(64) == 0 {
			p.state = p.rng.Uint64() % p.n
		} else {
			p.state = (p.state + 1) % p.n
		}
		return p.state
	}
	panic("workload: invalid pattern")
}
