package workload

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"agilepaging/internal/pagetable"
)

// unpackAll decodes every chunk of a completed packed stream into one slice.
func unpackAll(t testing.TB, ps *packedStream) []Op {
	t.Helper()
	var out []Op
	buf := chunkBufPool.Get().(*[PackedChunkOps]Op)
	defer chunkBufPool.Put(buf)
	for _, ch := range ps.chunks {
		ops, err := decodeChunkInto(ch.data, buf, ch.ops)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		out = append(out, append([]Op(nil), ops...)...)
	}
	return out
}

// TestPackedRoundTripProfiles is the bit-identity acceptance check: for
// every registered profile and both page sizes, the packed stream decodes
// to exactly the ops a fresh generator produces.
func TestPackedRoundTripProfiles(t *testing.T) {
	const accesses = 20_000
	for _, prof := range Profiles() {
		for _, ps := range []pagetable.Size{pagetable.Size4K, pagetable.Size2M} {
			want := Collect(New(prof, ps, accesses, 42), -1)
			packed := packOps(want)
			got := unpackAll(t, packed)
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("%s/%v: packed round trip differs (%d vs %d ops)", prof.Name, ps, len(want), len(got))
			}
			if packed.numOps != len(want) {
				t.Fatalf("%s/%v: numOps %d, want %d", prof.Name, ps, packed.numOps, len(want))
			}
			// The whole point: packed must be far below 64 B/op.
			if perOp := float64(packed.bytes) / float64(len(want)); perOp > 16 {
				t.Errorf("%s/%v: %0.1f encoded bytes/op, want well under 64", prof.Name, ps, perOp)
			}
		}
	}
}

// TestPackedRoundTripExtremes drives every field of Op through hostile and
// extreme values: all OpKinds plus out-of-nibble kinds, max/min VAs with
// wraparound deltas, negative PIDs/cores/sizes, and max Len/N.
func TestPackedRoundTripExtremes(t *testing.T) {
	ops := []Op{
		{},
		{Kind: OpAccess, VA: math.MaxUint64, Write: true, Fetch: true},
		{Kind: OpAccess, VA: 0}, // delta -MaxUint64: wraparound
		{Kind: OpKind(14), VA: 1},
		{Kind: OpKind(15), VA: 2}, // escape boundary
		{Kind: OpKind(255), VA: 1 << 63},
		{Kind: OpKind(-1), VA: 4096, PID: -7, Core: -3},
		{Kind: OpMmap, VA: 0xFFFF_FFFF_F000, Len: math.MaxUint64, Size: pagetable.Size(math.MaxInt64), N: math.MaxInt},
		{Kind: OpMunmap, Len: 1, Size: pagetable.Size(math.MinInt64), N: math.MinInt},
		{Kind: OpCtxSwitch, PID: math.MaxInt, Core: math.MinInt},
		{Kind: OpCtxSwitch, PID: math.MinInt, Core: math.MaxInt},
		{Kind: OpCreateProcess, N: 1 << 40},
		{Kind: OpMarkCOW, VA: 1, Write: true},
		{Kind: OpReclaim, N: -12345},
		{Kind: OpAccess, VA: 1<<63 - 1},
		{Kind: OpAccess, VA: 1 << 63}, // delta exactly MinInt64
	}
	got := unpackAll(t, packOps(ops))
	if !reflect.DeepEqual(ops, got) {
		for i := range ops {
			if i < len(got) && ops[i] != got[i] {
				t.Errorf("op %d: encoded %+v decoded %+v", i, ops[i], got[i])
			}
		}
		t.Fatal("extreme-value round trip differs")
	}
}

// TestPackedChunkBoundaries pins behaviour at exact chunk-size lengths.
func TestPackedChunkBoundaries(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, PackedChunkOps - 1, PackedChunkOps, PackedChunkOps + 1, 2*PackedChunkOps + 7} {
		ops := make([]Op, n)
		for i := range ops {
			ops[i] = Op{Kind: OpAccess, VA: rng.Uint64(), Write: i%3 == 0, PID: i % 5, Core: i % 2}
		}
		packed := packOps(ops)
		wantChunks := (n + PackedChunkOps - 1) / PackedChunkOps
		if len(packed.chunks) != wantChunks {
			t.Fatalf("n=%d: %d chunks, want %d", n, len(packed.chunks), wantChunks)
		}
		got := unpackAll(t, packed)
		if n == 0 {
			if len(got) != 0 {
				t.Fatalf("n=0 decoded %d ops", len(got))
			}
			continue
		}
		if !reflect.DeepEqual(ops, got) {
			t.Fatalf("n=%d: round trip differs", n)
		}
	}
}

// TestDecodeChunkHostile feeds malformed bytes straight to the chunk
// decoder: every path must return errCorruptChunk, never panic or succeed.
func TestDecodeChunkHostile(t *testing.T) {
	buf := chunkBufPool.Get().(*[PackedChunkOps]Op)
	defer chunkBufPool.Put(buf)
	valid := packOps([]Op{{Kind: OpAccess, VA: 123, PID: 1}, {Kind: OpMmap, VA: 456, Len: 9}}).chunks[0]
	cases := map[string]struct {
		data []byte
		want int
	}{
		"empty with want":      {nil, 1},
		"negative want":        {valid.data, -1},
		"oversize want":        {valid.data, PackedChunkOps + 1},
		"count mismatch low":   {valid.data, 1},
		"count mismatch high":  {valid.data, 3},
		"truncated":            {valid.data[:len(valid.data)-1], valid.ops},
		"trailing garbage":     {append(append([]byte(nil), valid.data...), 0x00), valid.ops},
		"unterminated varint":  {[]byte{byte(OpAccess) | flagCtx, 0x80, 0x80}, 1},
		"varint overflow":      {[]byte{byte(OpAccess), 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x02}, 1},
		"escape kind cut":      {[]byte{kindEscape}, 1},
		"extra fields cut":     {[]byte{byte(OpMmap) | flagExtra, 0x05}, 1},
	}
	for name, tc := range cases {
		if _, err := decodeChunkInto(tc.data, buf, tc.want); err == nil {
			t.Errorf("%s: decode succeeded, want error", name)
		}
	}
}

// TestPackedDecodeZeroAllocs guards the steady-state replay contract: a
// reader re-walking an already-generated stream performs zero allocations
// per chunk, both through the raw chunk decoder and through a Reader.
// The name matches the CI alloc-guard pattern (ZeroAllocs).
func TestPackedDecodeZeroAllocs(t *testing.T) {
	freshCache(t, DefaultStreamCacheBytes)
	prof := streamProfile("zeroalloc")
	s := SharedStream(prof, pagetable.Size4K, 20_000, 4)
	s.PackedBytes() // generation complete

	// Raw chunked decode into a pooled buffer.
	packed := s.ps
	buf := chunkBufPool.Get().(*[PackedChunkOps]Op)
	defer chunkBufPool.Put(buf)
	avg := testing.AllocsPerRun(10, func() {
		for _, ch := range packed.chunks {
			if _, err := decodeChunkInto(ch.data, buf, ch.ops); err != nil {
				t.Fatal(err)
			}
		}
	})
	if avg != 0 {
		t.Errorf("chunked decode allocates %.1f times per pass, want 0", avg)
	}

	// Reader replay, after one warm pass binds the pooled buffer.
	r := s.Reader()
	defer r.Close()
	n := 0
	for {
		ops, ok := r.Next()
		if !ok {
			break
		}
		n += len(ops)
	}
	if n != s.Len() {
		t.Fatalf("warm pass yielded %d ops, want %d", n, s.Len())
	}
	avg = testing.AllocsPerRun(10, func() {
		r.Reset()
		for {
			if _, ok := r.Next(); !ok {
				break
			}
		}
	})
	if avg != 0 {
		t.Errorf("replay allocates %.1f times per pass, want 0", avg)
	}
}

// FuzzPackedRoundTrip throws arbitrary op field values at the encoder and
// requires exact round-tripping.
func FuzzPackedRoundTrip(f *testing.F) {
	f.Add(int64(0), uint64(0), false, false, 0, 0, uint64(0), int64(0), 0, uint64(1))
	f.Add(int64(1), uint64(4096), true, false, 1, 0, uint64(0), int64(0), 0, uint64(99))
	f.Add(int64(255), uint64(math.MaxUint64), true, true, -1, -1, uint64(math.MaxUint64), int64(math.MinInt64), math.MinInt, uint64(7))
	f.Add(int64(-9), uint64(1<<63), false, true, math.MaxInt, math.MinInt, uint64(3), int64(math.MaxInt64), math.MaxInt, uint64(5))
	f.Fuzz(func(t *testing.T, kind int64, va uint64, write, fetch bool,
		pid, core int, length uint64, size int64, n int, seed uint64) {
		rng := rand.New(rand.NewSource(int64(seed)))
		count := 1 + int(seed%200)
		ops := make([]Op, count)
		for i := range ops {
			// First op uses the fuzzed fields verbatim; the rest perturb
			// them so deltas and ctx changes both get exercised.
			ops[i] = Op{
				Kind: OpKind(kind + int64(i%3)), VA: va + uint64(i)*uint64(rng.Intn(1<<20)),
				Write: write != (i%2 == 0), Fetch: fetch,
				PID: pid + i%4, Core: core,
				Len: length, Size: pagetable.Size(size), N: n,
			}
			if i%5 == 4 {
				ops[i].Len, ops[i].Size, ops[i].N = 0, 0, 0
			}
		}
		got := unpackAll(t, packOps(ops))
		if !reflect.DeepEqual(ops, got) {
			t.Fatal("fuzzed round trip differs")
		}
	})
}

// FuzzStreamFileDecode feeds arbitrary bytes to the disk-cache file parser:
// it must reject or accept without ever panicking, and anything it accepts
// must re-encode to a valid file with the same totals (not necessarily the
// same bytes — the varint decoders tolerate non-minimal encodings that
// re-encode shorter).
func FuzzStreamFileDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(streamFileMagic[:])
	valid := encodeStreamFile(packOps(Collect(New(Profile{
		Name: "fuzz-seed", FootprintBytes: 1 << 16, Pattern: PatternStream,
	}, pagetable.Size4K, 500, 1), -1)))
	f.Add(valid)
	truncated := append([]byte(nil), valid[:len(valid)/2]...)
	f.Add(truncated)
	f.Fuzz(func(t *testing.T, data []byte) {
		ps, err := decodeStreamFile(data)
		if err != nil {
			return
		}
		again, err := decodeStreamFile(encodeStreamFile(ps))
		if err != nil {
			t.Fatalf("accepted file re-encodes to an invalid file: %v", err)
		}
		if again.numOps != ps.numOps || again.accesses != ps.accesses {
			t.Fatalf("re-encoded totals %d/%d, want %d/%d",
				again.numOps, again.accesses, ps.numOps, ps.accesses)
		}
	})
}

func BenchmarkPackedEncode(b *testing.B) {
	prof := streamProfile("bench-encode")
	ops := Collect(New(prof, pagetable.Size4K, 50_000, 42), -1)
	b.SetBytes(int64(len(ops)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		packOps(ops)
	}
}

func BenchmarkPackedDecode(b *testing.B) {
	prof := streamProfile("bench-decode")
	packed := packOps(Collect(New(prof, pagetable.Size4K, 50_000, 42), -1))
	buf := chunkBufPool.Get().(*[PackedChunkOps]Op)
	defer chunkBufPool.Put(buf)
	b.SetBytes(int64(packed.numOps))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, ch := range packed.chunks {
			if _, err := decodeChunkInto(ch.data, buf, ch.ops); err != nil {
				b.Fatal(err)
			}
		}
	}
}
