package workload

import (
	"sync"
	"unsafe"

	"agilepaging/internal/pagetable"
)

// Stream is one fully-generated workload op stream, immutable after
// construction and shared freely across concurrent runs. Every technique of
// a Compare or Figure 5 sweep replays the same (profile, page size,
// accesses, seed) stream, so generating it once removes the per-run RNG and
// FIFO cost that used to be paid N×M times (N techniques × M sweep cells).
//
// Concurrency contract: Ops returns the backing slice without copying;
// callers must treat it as read-only. All methods are safe for concurrent
// use.
type Stream struct {
	name     string
	ops      []Op
	accesses int // number of OpAccess ops in ops

	mu         sync.Mutex
	boundaries map[int]int // memoized AccessBoundary results
}

// newStream wraps a generated op list.
func newStream(name string, ops []Op) *Stream {
	s := &Stream{name: name, ops: ops}
	for i := range ops {
		if ops[i].Kind == OpAccess {
			s.accesses++
		}
	}
	return s
}

// Name identifies the workload the stream was generated from.
func (s *Stream) Name() string { return s.name }

// Ops returns the full op list. The slice is shared: read-only.
func (s *Stream) Ops() []Op { return s.ops }

// Len reports the total op count.
func (s *Stream) Len() int { return len(s.ops) }

// Accesses reports the number of OpAccess ops in the stream (steady-phase
// plus burst accesses — the count run drivers split warmup windows on).
func (s *Stream) Accesses() int { return s.accesses }

// Replay returns a fresh cursor over the stream for Generator consumers.
func (s *Stream) Replay() *FromOps { return NewFromOps(s.name, s.ops) }

// AccessBoundary returns the index just past the n-th OpAccess op (1-based),
// so ops[:boundary] executes exactly n accesses — the warmup/measure split.
// n <= 0 returns 0; n beyond the stream returns Len(). Results are memoized
// because sweeps ask for the same split on every technique.
func (s *Stream) AccessBoundary(n int) int {
	if n <= 0 {
		return 0
	}
	if n >= s.accesses {
		return len(s.ops)
	}
	s.mu.Lock()
	if b, ok := s.boundaries[n]; ok {
		s.mu.Unlock()
		return b
	}
	s.mu.Unlock()
	seen := 0
	boundary := len(s.ops)
	for i := range s.ops {
		if s.ops[i].Kind == OpAccess {
			seen++
			if seen == n {
				boundary = i + 1
				break
			}
		}
	}
	s.mu.Lock()
	if s.boundaries == nil {
		s.boundaries = make(map[int]int)
	}
	s.boundaries[n] = boundary
	s.mu.Unlock()
	return boundary
}

// streamKey identifies one generated stream. Profile contains only value
// fields, so the struct is comparable and two keys are equal exactly when
// New would produce identical streams.
type streamKey struct {
	prof     Profile
	pageSize pagetable.Size
	accesses int
	seed     int64
}

// streamEntry is one cache slot. The sync.Once dedupes concurrent
// generation of the same key without holding the cache lock across the
// (milliseconds-long) generation itself.
type streamEntry struct {
	once    sync.Once
	s       *Stream
	bytes   int64
	lastUse uint64
}

// opBytes is the in-memory footprint of one op, used for cache accounting.
const opBytes = int64(unsafe.Sizeof(Op{}))

// DefaultStreamCacheBytes bounds the shared stream cache: a full Figure 5
// sweep at the benchmark scale (8 workloads × 2 page sizes × 180k-access
// streams) fits with room to spare; larger sweeps evict least-recently-used
// streams and regenerate on demand.
const DefaultStreamCacheBytes = 256 << 20

// streamCache is the process-wide shared stream cache.
var streamCache = struct {
	mu      sync.Mutex
	entries map[streamKey]*streamEntry
	clock   uint64
	bytes   int64
	budget  int64
	hits    uint64
	misses  uint64
}{
	entries: make(map[streamKey]*streamEntry),
	budget:  DefaultStreamCacheBytes,
}

// StreamCacheStats reports cache effectiveness and current footprint.
// A hit means the requested stream was already generated (or being
// generated) when asked for.
func StreamCacheStats() (hits, misses uint64, bytes int64) {
	streamCache.mu.Lock()
	defer streamCache.mu.Unlock()
	return streamCache.hits, streamCache.misses, streamCache.bytes
}

// SetStreamCacheBudget sets the cache's byte budget. budget == 0 disables
// caching entirely (every SharedStream call generates a private stream);
// budget < 0 removes the bound. Shrinking evicts immediately.
func SetStreamCacheBudget(budget int64) {
	streamCache.mu.Lock()
	streamCache.budget = budget
	evictLocked(nil)
	streamCache.mu.Unlock()
}

// ResetStreamCache drops every cached stream and zeroes the statistics
// (tests and memory-sensitive callers).
func ResetStreamCache() {
	streamCache.mu.Lock()
	streamCache.entries = make(map[streamKey]*streamEntry)
	streamCache.bytes = 0
	streamCache.hits = 0
	streamCache.misses = 0
	streamCache.mu.Unlock()
}

// evictLocked drops generated streams, least recently used first, until the
// cache fits its budget. keep, if non-nil, is never evicted (the entry the
// caller is about to return). Entries still generating (s == nil) are
// skipped: their size is unknown and a waiter holds a reference anyway.
func evictLocked(keep *streamEntry) {
	c := &streamCache
	if c.budget < 0 {
		return
	}
	for c.bytes > c.budget {
		var victimKey streamKey
		var victim *streamEntry
		for k, e := range c.entries {
			if e == keep || e.s == nil {
				continue
			}
			if victim == nil || e.lastUse < victim.lastUse {
				victim, victimKey = e, k
			}
		}
		if victim == nil {
			return
		}
		delete(c.entries, victimKey)
		c.bytes -= victim.bytes
	}
}

// SharedStream returns the cached op stream for (prof, pageSize, accesses,
// seed), generating it once on first use. Identical parameters always
// return the same *Stream until it is evicted, so N techniques × M sweep
// cells replaying the same workload share one generation and one backing
// array. Safe for concurrent use; concurrent requests for the same key
// generate once and share the result.
func SharedStream(prof Profile, pageSize pagetable.Size, accesses int, seed int64) *Stream {
	// Normalize like New does so trivially-different Profiles (Processes 0
	// versus 1) share an entry.
	if prof.Processes < 1 {
		prof.Processes = 1
	}
	if prof.Threads < 1 {
		prof.Threads = 1
	}
	key := streamKey{prof: prof, pageSize: pageSize, accesses: accesses, seed: seed}

	c := &streamCache
	c.mu.Lock()
	if c.budget == 0 {
		c.misses++
		c.mu.Unlock()
		return newStream(prof.Name, Collect(New(prof, pageSize, accesses, seed), -1))
	}
	e, ok := c.entries[key]
	if ok {
		c.hits++
	} else {
		c.misses++
		e = &streamEntry{}
		c.entries[key] = e
	}
	c.clock++
	e.lastUse = c.clock
	c.mu.Unlock()

	e.once.Do(func() {
		e.s = newStream(prof.Name, Collect(New(prof, pageSize, accesses, seed), -1))
		e.bytes = int64(len(e.s.ops))*opBytes + int64(unsafe.Sizeof(Stream{}))
		c.mu.Lock()
		// The entry may have been evicted (or the cache reset) while we
		// generated; only charge entries still in the map.
		if c.entries[key] == e {
			c.bytes += e.bytes
			evictLocked(e)
		}
		c.mu.Unlock()
	})
	return e.s
}
