package workload

import (
	"sync"

	"agilepaging/internal/pagetable"
)

// Stream is one generated workload op stream, stored packed (see
// packed.go) and shared freely across concurrent runs. Every technique of
// a Compare or Figure 5 sweep replays the same (profile, page size,
// accesses, seed) stream, so generating it once removes the per-run RNG
// and FIFO cost that used to be paid N×M times (N techniques × M sweep
// cells).
//
// Generation is pipelined: SharedStream returns immediately and the
// stream's chunks are published as they are encoded, so a Reader can start
// replaying the head of the stream while the tail is still generating.
// Late arrivals attach to the already-published chunks. Methods that need
// stream totals (Len, Accesses, Ops, AccessBoundary) block until
// generation completes.
//
// Concurrency contract: all methods are safe for concurrent use, but each
// consumer must take its own Reader.
type Stream struct {
	name string
	ps   *packedStream

	mu         sync.Mutex
	boundaries map[int]int // memoized AccessBoundary results
}

// Name identifies the workload the stream was generated from.
func (s *Stream) Name() string { return s.name }

// Reader returns a fresh chunk cursor over the stream. The caller should
// Close it when done to recycle its decode buffer.
func (s *Stream) Reader() *StreamReader { return &StreamReader{ps: s.ps} }

// Len reports the total op count, blocking until generation completes.
func (s *Stream) Len() int {
	s.ps.waitDone()
	return s.ps.numOps
}

// Accesses reports the number of OpAccess ops in the stream (steady-phase
// plus burst accesses — the count run drivers split warmup windows on),
// blocking until generation completes.
func (s *Stream) Accesses() int {
	s.ps.waitDone()
	return s.ps.accesses
}

// PackedBytes reports the encoded in-memory footprint of the stream's
// chunks (the quantity the cache budget is charged with), blocking until
// generation completes.
func (s *Stream) PackedBytes() int64 {
	s.ps.waitDone()
	return s.ps.bytes
}

// Ops decodes the full op list into a fresh slice. It exists for tests and
// offline tooling: replay paths should consume chunks through Reader,
// which never materializes the 64-byte-per-op form.
func (s *Stream) Ops() []Op {
	s.ps.waitDone()
	out := make([]Op, 0, s.ps.numOps)
	r := s.Reader()
	defer r.Close()
	for {
		ops, ok := r.Next()
		if !ok {
			return out
		}
		out = append(out, ops...)
	}
}

// Replay returns a fresh cursor over the materialized stream for Generator
// consumers (tests; replay paths should use Reader).
func (s *Stream) Replay() *FromOps { return NewFromOps(s.name, s.Ops()) }

// AccessBoundary returns the index just past the n-th OpAccess op
// (1-based), so ops[:boundary] executes exactly n accesses — the
// warmup/measure split. n <= 0 returns 0; n beyond the stream returns
// Len(). Results are memoized because sweeps ask for the same split on
// every technique.
func (s *Stream) AccessBoundary(n int) int {
	if n <= 0 {
		return 0
	}
	s.ps.waitDone()
	if n >= s.ps.accesses {
		return s.ps.numOps
	}
	s.mu.Lock()
	if b, ok := s.boundaries[n]; ok {
		s.mu.Unlock()
		return b
	}
	s.mu.Unlock()

	// Walk chunk metadata to the chunk containing the n-th access, then
	// decode just that chunk to pin the exact op index.
	boundary := s.ps.numOps
	base, seen := 0, 0
	for i := range s.ps.chunks {
		ch := &s.ps.chunks[i]
		if seen+ch.accesses >= n {
			buf := chunkBufPool.Get().(*[PackedChunkOps]Op)
			ops, err := decodeChunkInto(ch.data, buf, ch.ops)
			if err != nil {
				panic("workload: packed chunk failed to decode: " + err.Error())
			}
			for j := range ops {
				if ops[j].Kind == OpAccess {
					seen++
					if seen == n {
						boundary = base + j + 1
						break
					}
				}
			}
			chunkBufPool.Put(buf)
			break
		}
		seen += ch.accesses
		base += ch.ops
	}
	s.mu.Lock()
	if s.boundaries == nil {
		s.boundaries = make(map[int]int)
	}
	s.boundaries[n] = boundary
	s.mu.Unlock()
	return boundary
}

// streamKey identifies one generated stream. Profile contains only value
// fields, so the struct is comparable and two keys are equal exactly when
// New would produce identical streams.
type streamKey struct {
	prof     Profile
	pageSize pagetable.Size
	accesses int
	seed     int64
}

// streamEntry is one cache slot. bytes stays 0 until generation completes
// and the entry is charged against the budget; eviction skips uncharged
// entries (their size is unknown and a waiter holds a reference anyway).
type streamEntry struct {
	s       *Stream
	bytes   int64
	lastUse uint64
}

// streamEntryOverhead approximates the fixed per-entry cost (Stream,
// packedStream, chunk headers) added to the encoded bytes when charging
// the budget.
const streamEntryOverhead = 512

// DefaultStreamCacheBytes bounds the shared stream cache. Packed encoding
// stores a stream in a few bytes per op instead of 64, so this budget now
// retains on the order of ten full Figure 5 sweeps at the benchmark scale;
// larger sweeps evict least-recently-used streams and regenerate on
// demand.
const DefaultStreamCacheBytes = 256 << 20

// streamCache is the process-wide shared stream cache.
var streamCache = struct {
	mu         sync.Mutex
	entries    map[streamKey]*streamEntry
	clock      uint64
	bytes      int64
	budget     int64
	dir        string // disk-cache directory ("" = disabled)
	hits       uint64
	misses     uint64
	diskHits   uint64
	diskMisses uint64
	diskErrs   uint64
}{
	entries: make(map[streamKey]*streamEntry),
	budget:  DefaultStreamCacheBytes,
}

// StreamCacheSnapshot is a point-in-time copy of the stream cache's
// counters. Hits/Misses count in-memory lookups (a hit means the stream
// was already generated, or generating, when asked for). DiskHits counts
// misses satisfied by a valid -stream-cache-dir file instead of
// generation; DiskMisses counts misses that generated (no usable file);
// DiskErrors counts failed cache-file writes. Bytes/Streams describe the
// current packed in-memory footprint.
type StreamCacheSnapshot struct {
	Hits, Misses                     uint64
	DiskHits, DiskMisses, DiskErrors uint64
	Bytes                            int64
	Streams                          int
}

// StreamCacheInfo reports cache effectiveness and current footprint.
func StreamCacheInfo() StreamCacheSnapshot {
	c := &streamCache
	c.mu.Lock()
	defer c.mu.Unlock()
	return StreamCacheSnapshot{
		Hits: c.hits, Misses: c.misses,
		DiskHits: c.diskHits, DiskMisses: c.diskMisses, DiskErrors: c.diskErrs,
		Bytes: c.bytes, Streams: len(c.entries),
	}
}

// StreamCacheStats reports the in-memory counters (see StreamCacheInfo for
// the full snapshot including the disk cache).
func StreamCacheStats() (hits, misses uint64, bytes int64) {
	info := StreamCacheInfo()
	return info.Hits, info.Misses, info.Bytes
}

// SetStreamCacheBudget sets the cache's byte budget. budget == 0 disables
// caching entirely (every SharedStream call generates a private stream);
// budget < 0 removes the bound. Shrinking evicts immediately.
func SetStreamCacheBudget(budget int64) {
	streamCache.mu.Lock()
	streamCache.budget = budget
	evictLocked(nil)
	streamCache.mu.Unlock()
}

// SetStreamCacheDir sets the persistent stream-cache directory. When
// non-empty, generated streams are written there and later SharedStream
// misses are satisfied from valid files instead of regenerating. "" (the
// default) disables persistence.
func SetStreamCacheDir(dir string) {
	streamCache.mu.Lock()
	streamCache.dir = dir
	streamCache.mu.Unlock()
}

// ResetStreamCache drops every cached stream and rewinds all cache state —
// statistics and the LRU clock included — so cache behaviour after a reset
// is exactly that of a fresh process (tests and memory-sensitive callers).
func ResetStreamCache() {
	c := &streamCache
	c.mu.Lock()
	c.entries = make(map[streamKey]*streamEntry)
	c.clock = 0
	c.bytes = 0
	c.hits, c.misses = 0, 0
	c.diskHits, c.diskMisses, c.diskErrs = 0, 0, 0
	c.mu.Unlock()
}

// evictLocked drops generated streams, least recently used first, until
// the cache fits its budget. keep, if non-nil, is never evicted (the entry
// the caller is about to return). Uncharged entries (bytes == 0, still
// generating) are skipped.
func evictLocked(keep *streamEntry) {
	c := &streamCache
	if c.budget < 0 {
		return
	}
	for c.bytes > c.budget {
		var victimKey streamKey
		var victim *streamEntry
		for k, e := range c.entries {
			if e == keep || e.bytes == 0 {
				continue
			}
			if victim == nil || e.lastUse < victim.lastUse {
				victim, victimKey = e, k
			}
		}
		if victim == nil {
			return
		}
		delete(c.entries, victimKey)
		c.bytes -= victim.bytes
	}
}

// SharedStream returns the cached op stream for (prof, pageSize, accesses,
// seed), starting pipelined generation on first use. Identical parameters
// always return the same *Stream until it is evicted, so N techniques × M
// sweep cells replaying the same workload share one generation and one
// packed backing store. The returned stream may still be generating:
// Reader consumers replay published chunks immediately and block only on
// the unpublished tail. Safe for concurrent use.
func SharedStream(prof Profile, pageSize pagetable.Size, accesses int, seed int64) *Stream {
	// Normalize like New does so trivially-different Profiles (Processes 0
	// versus 1) share an entry.
	if prof.Processes < 1 {
		prof.Processes = 1
	}
	if prof.Threads < 1 {
		prof.Threads = 1
	}
	key := streamKey{prof: prof, pageSize: pageSize, accesses: accesses, seed: seed}

	c := &streamCache
	c.mu.Lock()
	if c.budget == 0 {
		c.misses++
		c.mu.Unlock()
		// Sharing disabled: generate a private stream synchronously (this
		// is a debugging mode; pipelining matters only for shared use).
		s := &Stream{name: prof.Name, ps: newPackedStream()}
		s.ps.encodeAll(New(prof, pageSize, accesses, seed))
		return s
	}
	e, ok := c.entries[key]
	if ok {
		c.hits++
	} else {
		c.misses++
		e = &streamEntry{s: &Stream{name: prof.Name, ps: newPackedStream()}}
		c.entries[key] = e
		dir := c.dir
		go generateEntry(e, key, dir)
	}
	c.clock++
	e.lastUse = c.clock
	c.mu.Unlock()
	return e.s
}

// generateEntry fills e's stream — from the disk cache when possible,
// otherwise by running the generator with chunks published as encoded —
// charges the completed size against the in-memory budget, and only then
// marks the stream done. Anyone who has observed the stream complete
// (Len, Ops, a Reader reaching EOF) therefore also observes consistent
// cache statistics and an on-disk cache file, with no window in between.
func generateEntry(e *streamEntry, key streamKey, dir string) {
	c := &streamCache
	ps := e.s.ps
	fromDisk := false
	diskKey := ""
	if dir != "" {
		diskKey = streamCacheKey(key.prof, key.pageSize, key.accesses, key.seed)
		fromDisk = loadStreamFromDisk(dir, diskKey, ps)
	}
	diskErr := false
	if !fromDisk {
		ps.encodeChunks(New(key.prof, key.pageSize, key.accesses, key.seed))
		if dir != "" {
			// Persist before finish: readers are still draining the
			// published chunks, so the write overlaps the first replay
			// rather than delaying it.
			diskErr = writeStreamToDisk(dir, diskKey, ps) != nil
		}
	}

	size := ps.bytes + int64(len(ps.chunks))*32 + streamEntryOverhead
	c.mu.Lock()
	if dir != "" {
		if fromDisk {
			c.diskHits++
		} else {
			c.diskMisses++
		}
		if diskErr {
			c.diskErrs++
		}
	}
	// The entry may have been evicted (or the cache reset) while we
	// generated; only charge entries still in the map.
	if c.entries[key] == e {
		e.bytes = size
		c.bytes += size
		evictLocked(e)
	}
	c.mu.Unlock()
	ps.finish()
}
