package workload

import (
	"math/rand"
	"testing"

	"agilepaging/internal/pagetable"
)

func TestSyntheticSetupOpsComeFirst(t *testing.T) {
	prof, ok := ProfileByName("mcf")
	if !ok {
		t.Fatal("mcf profile missing")
	}
	g := New(prof, pagetable.Size4K, 100, 1)
	ops := Collect(g, 0)
	if ops[0].Kind != OpCreateProcess {
		t.Fatalf("first op = %v", ops[0].Kind)
	}
	var kinds []OpKind
	for _, op := range ops[:4] {
		kinds = append(kinds, op.Kind)
	}
	want := []OpKind{OpCreateProcess, OpMmap, OpPopulate, OpCtxSwitch}
	for i, k := range want {
		if kinds[i] != k {
			t.Errorf("setup op %d = %v, want %v", i, kinds[i], k)
		}
	}
	// Exactly 100 steady accesses for a churn-free profile.
	accesses := 0
	for _, op := range ops {
		if op.Kind == OpAccess {
			accesses++
		}
	}
	if accesses != 100 {
		t.Errorf("accesses = %d, want 100", accesses)
	}
}

func TestSyntheticDeterminism(t *testing.T) {
	prof, _ := ProfileByName("dedup")
	a := Collect(New(prof, pagetable.Size4K, 2000, 7), 0)
	b := Collect(New(prof, pagetable.Size4K, 2000, 7), 0)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	// Different seed differs somewhere.
	c := Collect(New(prof, pagetable.Size4K, 2000, 8), 0)
	same := len(a) == len(c)
	if same {
		same = false
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
			same = true
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestSyntheticReset(t *testing.T) {
	prof, _ := ProfileByName("gcc")
	g := New(prof, pagetable.Size4K, 500, 3)
	a := Collect(g, 0)
	g.Reset()
	b := Collect(g, 0)
	if len(a) != len(b) {
		t.Fatalf("reset stream length %d != %d", len(b), len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d differs after Reset", i)
		}
	}
	if _, ok := g.Next(); ok {
		t.Error("generator produced ops past the end")
	}
}

func TestSyntheticAccessesStayInFootprint(t *testing.T) {
	for _, prof := range Profiles() {
		g := New(prof, pagetable.Size4K, 3000, 11)
		for {
			op, ok := g.Next()
			if !ok {
				break
			}
			if op.Kind != OpAccess {
				continue
			}
			base := uint64(op.PID+1) << 41
			inMain := op.VA >= base && op.VA < base+prof.FootprintBytes
			inChurn := op.VA >= base+(1<<40) && op.VA < base+(1<<41)
			inCow := op.VA >= base+(1<<41) && op.VA < base+(1<<41)+prof.CowRegionBytes+prof.FootprintBytes
			if !inMain && !inChurn && !inCow {
				t.Fatalf("%s: access %#x (pid %d) outside any expected range", prof.Name, op.VA, op.PID)
			}
		}
	}
}

func TestSyntheticChurnLifecycle(t *testing.T) {
	prof := Profile{
		Name: "churny", FootprintBytes: 1 << 20, Pattern: PatternUniform,
		MmapChurnEvery: 100, ChurnRegionBytes: 16 << 10, ChurnRegions: 2,
	}
	g := New(prof, pagetable.Size4K, 1000, 5)
	mapped := map[uint64]bool{}
	var churnMmaps, churnMunmaps int
	for {
		op, ok := g.Next()
		if !ok {
			break
		}
		switch op.Kind {
		case OpMmap:
			if mapped[op.VA] {
				t.Fatalf("double mmap at %#x", op.VA)
			}
			mapped[op.VA] = true
			if op.VA >= (1<<41)+(1<<40) {
				churnMmaps++
			}
		case OpMunmap:
			if !mapped[op.VA] {
				t.Fatalf("munmap of unmapped %#x", op.VA)
			}
			delete(mapped, op.VA)
			churnMunmaps++
		}
	}
	if churnMmaps != 10 {
		t.Errorf("churn mmaps = %d, want 10", churnMmaps)
	}
	// Ring of 2: first two mmaps have no munmap.
	if churnMunmaps != churnMmaps-2 {
		t.Errorf("churn munmaps = %d, want %d", churnMunmaps, churnMmaps-2)
	}
}

func TestSyntheticCowEventsWriteThrough(t *testing.T) {
	prof := Profile{
		Name: "cowy", FootprintBytes: 1 << 20, Pattern: PatternUniform,
		CowEvery: 200, CowRegionBytes: 32 << 10,
	}
	g := New(prof, pagetable.Size4K, 1000, 5)
	cowMarks := 0
	writesAfterMark := 0
	expectWrites := 0
	for {
		op, ok := g.Next()
		if !ok {
			break
		}
		if op.Kind == OpMarkCOW {
			cowMarks++
			expectWrites = 8 // 32K / 4K pages
			continue
		}
		if expectWrites > 0 && op.Kind == OpAccess {
			if !op.Write {
				t.Fatal("post-COW access is not a write")
			}
			writesAfterMark++
			expectWrites--
		}
	}
	if cowMarks != 5 {
		t.Errorf("COW marks = %d, want 5", cowMarks)
	}
	if writesAfterMark != 5*8 {
		t.Errorf("COW write-throughs = %d, want 40", writesAfterMark)
	}
}

func TestMultiProcessCtxSwitches(t *testing.T) {
	prof := Profile{
		Name: "multi", FootprintBytes: 1 << 20, Pattern: PatternUniform,
		Processes: 3, CtxSwitchEvery: 100,
	}
	g := New(prof, pagetable.Size4K, 1000, 5)
	creates := 0
	switches := 0
	lastPID := -1
	for {
		op, ok := g.Next()
		if !ok {
			break
		}
		switch op.Kind {
		case OpCreateProcess:
			creates++
		case OpCtxSwitch:
			switches++
			lastPID = op.PID
		case OpAccess:
			if op.PID != lastPID {
				t.Fatalf("access pid %d but current is %d", op.PID, lastPID)
			}
		}
	}
	if creates != 3 {
		t.Errorf("creates = %d", creates)
	}
	if switches < 9 { // initial + 9 rotations
		t.Errorf("switches = %d", switches)
	}
}

func TestPatternsCoverAndRepeat(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, kind := range []PatternKind{PatternUniform, PatternZipf, PatternChase, PatternStream} {
		p := newPattern(kind, 64, 1.2, rng)
		seen := map[uint64]bool{}
		for i := 0; i < 4096; i++ {
			v := p.next()
			if v >= 64 {
				t.Fatalf("%v: index %d out of range", kind, v)
			}
			seen[v] = true
		}
		if len(seen) < 16 {
			t.Errorf("%v: only %d distinct pages in 4096 draws", kind, len(seen))
		}
		if kind.String() == "unknown" {
			t.Errorf("missing String for %d", int(kind))
		}
	}
}

func TestZipfIsSkewed(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p := newPattern(PatternZipf, 1024, 1.2, rng)
	counts := map[uint64]int{}
	for i := 0; i < 100_000; i++ {
		counts[p.next()]++
	}
	// The most popular page must dominate a uniform share by a wide margin.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < 100_000/1024*20 {
		t.Errorf("zipf max count %d not skewed", max)
	}
}

func TestProfilesRegistry(t *testing.T) {
	if len(Profiles()) != 8 {
		t.Fatalf("got %d profiles, want the paper's 8", len(Profiles()))
	}
	names := Names()
	for _, want := range []string{"memcached", "canneal", "astar", "gcc", "graph500", "mcf", "tigr", "dedup"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("missing profile %s", want)
		}
		if _, ok := ProfileByName(want); !ok {
			t.Errorf("ProfileByName(%s) failed", want)
		}
	}
	if _, ok := ProfileByName("nope"); ok {
		t.Error("unknown profile found")
	}
}

func TestFromOps(t *testing.T) {
	ops := []Op{{Kind: OpCreateProcess}, {Kind: OpAccess, VA: 4096}}
	g := NewFromOps("fixed", ops)
	if g.Name() != "fixed" {
		t.Error("name")
	}
	got := Collect(g, 0)
	if len(got) != 2 || got[1].VA != 4096 {
		t.Fatalf("got %+v", got)
	}
	g.Reset()
	if got := Collect(g, 1); len(got) != 1 {
		t.Fatal("reset/limit")
	}
}

func TestOpKindStrings(t *testing.T) {
	for k := OpCreateProcess; k <= OpReclaim; k++ {
		if s := k.String(); s == "" || s[0] == 'O' {
			t.Errorf("OpKind(%d).String() = %q", int(k), s)
		}
	}
}

func TestThreadsSpreadAccessesAcrossCores(t *testing.T) {
	prof := Profile{
		Name: "mt", FootprintBytes: 1 << 20, Pattern: PatternUniform,
		Threads: 4, PrePopulate: true,
	}
	g := New(prof, pagetable.Size4K, 400, 9)
	coreSeen := map[int]int{}
	switches := map[int]bool{}
	for {
		op, ok := g.Next()
		if !ok {
			break
		}
		switch op.Kind {
		case OpCtxSwitch:
			switches[op.Core] = true
		case OpAccess:
			if op.PID != 0 {
				t.Fatalf("thread access with pid %d", op.PID)
			}
			coreSeen[op.Core]++
		}
	}
	for c := 0; c < 4; c++ {
		if !switches[c] {
			t.Errorf("no context install on core %d", c)
		}
		if coreSeen[c] < 50 {
			t.Errorf("core %d saw only %d accesses", c, coreSeen[c])
		}
	}
	// Single-threaded profiles keep everything on core 0.
	g2 := New(Profile{Name: "st", FootprintBytes: 1 << 20, Pattern: PatternUniform}, pagetable.Size4K, 100, 9)
	for {
		op, ok := g2.Next()
		if !ok {
			break
		}
		if op.Core != 0 {
			t.Fatalf("single-threaded op on core %d", op.Core)
		}
	}
}
