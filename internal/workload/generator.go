package workload

import (
	"math/rand"

	"agilepaging/internal/pagetable"
)

// Profile parameterizes a synthetic workload.
type Profile struct {
	Name           string
	FootprintBytes uint64
	Pattern        PatternKind
	ZipfS          float64
	WriteRatio     float64
	// PrePopulate maps the main footprint eagerly during setup, so demand
	// faults do not dominate the steady phase (static workloads like mcf).
	PrePopulate bool

	// Processes round-robin on the CPU; CtxSwitchEvery accesses separate
	// switches (0 disables).
	Processes      int
	CtxSwitchEvery int

	// Threads spreads process 0's steady-phase accesses over this many
	// CPU cores (shared address space, per-core TLBs — the PARSEC
	// multithreaded workloads). 0 or 1 = single-threaded.
	Threads int

	// Mmap churn: every MmapChurnEvery accesses, the oldest of ChurnRegions
	// transient regions is unmapped and a fresh one mapped and touched —
	// allocation-heavy behaviour (dedup, gcc).
	MmapChurnEvery   int
	ChurnRegionBytes uint64
	ChurnRegions     int

	// COW churn: every CowEvery accesses, a CowRegionBytes region is marked
	// copy-on-write and then written through (content sharing / snapshot
	// behaviour).
	CowEvery       int
	CowRegionBytes uint64

	// Reclaim: every ReclaimEvery accesses the guest clock reclaimer scans
	// ReclaimPages pages (memory-pressure behaviour, paper §V).
	ReclaimEvery int
	ReclaimPages int

	// THP collapse: every CollapseEvery accesses, a rotating 2M-aligned
	// chunk of the current process's main footprint is fully written (so
	// khugepaged would deem it hot and fully populated) and then collapsed
	// into a 2M mapping — the structural page-table rewrite of paper §V
	// "Large Page Support". Only meaningful with a 4K page-size policy;
	// ignored otherwise. 0 disables.
	CollapseEvery int
}

// Synthetic is the deterministic op-stream generator for a Profile.
type Synthetic struct {
	prof     Profile
	pageSize pagetable.Size
	accesses int
	seed     int64

	rng *rand.Rand
	pat *pattern
	// queue/head form a FIFO: push appends, pop advances head, and the
	// buffer rewinds to its start whenever it drains. Burst ops (churn,
	// COW write-through) therefore reuse one steady-state allocation
	// instead of re-growing a sliding slice on every burst.
	queue    []Op
	head     int
	emitted  int // steady-phase accesses emitted so far
	curPID      int
	churnGen    map[int]int // churn events so far, per process
	collapseGen map[int]int // collapse events so far, per process
	cowBase     uint64
	cowReady    bool
	done        bool
}

// New creates a generator that will emit the setup ops for prof and then
// `accesses` steady-phase access ops at the given page-size policy.
func New(prof Profile, pageSize pagetable.Size, accesses int, seed int64) *Synthetic {
	if prof.Processes < 1 {
		prof.Processes = 1
	}
	if prof.Threads < 1 {
		prof.Threads = 1
	}
	g := &Synthetic{prof: prof, pageSize: pageSize, accesses: accesses, seed: seed}
	g.init()
	return g
}

func (g *Synthetic) init() {
	g.rng = rand.New(rand.NewSource(g.seed))
	pages := g.prof.FootprintBytes / g.pageSize.Bytes()
	g.pat = newPattern(g.prof.Pattern, pages, g.prof.ZipfS, g.rng)
	g.queue = g.queue[:0]
	g.head = 0
	g.emitted = 0
	g.curPID = 0
	g.churnGen = make(map[int]int)
	g.collapseGen = make(map[int]int)
	g.cowReady = false
	g.done = false

	for pid := 0; pid < g.prof.Processes; pid++ {
		g.push(Op{Kind: OpCreateProcess, PID: pid})
		g.push(Op{Kind: OpMmap, PID: pid, VA: g.mainBase(pid), Len: g.prof.FootprintBytes, Size: g.pageSize})
		if g.prof.PrePopulate {
			g.push(Op{Kind: OpPopulate, PID: pid, VA: g.mainBase(pid)})
		}
	}
	if g.prof.CowEvery > 0 && g.prof.CowRegionBytes > 0 {
		g.cowBase = g.mainBase(0) + (1 << 41)
		g.push(Op{Kind: OpMmap, PID: 0, VA: g.cowBase, Len: g.prof.CowRegionBytes, Size: g.pageSize})
		g.push(Op{Kind: OpPopulate, PID: 0, VA: g.cowBase})
		g.cowReady = true
	}
	g.push(Op{Kind: OpCtxSwitch, PID: 0})
	// Multithreaded workloads: install process 0 on every thread's core.
	for t := 1; t < g.prof.Threads; t++ {
		g.push(Op{Kind: OpCtxSwitch, PID: 0, Core: t})
	}
}

// Name implements Generator.
func (g *Synthetic) Name() string { return g.prof.Name }

// Reset implements Generator.
func (g *Synthetic) Reset() { g.init() }

// SizeHint implements Sizer: the setup ops plus the steady-phase accesses
// plus an upper-bound estimate of every periodic burst. Bursts gated on
// the current PID (COW) or that stop early are overestimated, never
// underestimated, so Collect allocates once.
func (g *Synthetic) SizeHint() int {
	p := g.prof
	n := g.accesses + p.Processes*3 + p.Threads + 3
	if p.MmapChurnEvery > 0 {
		n += g.accesses / p.MmapChurnEvery * (2 + int(p.ChurnRegionBytes/4096))
	}
	if p.CowEvery > 0 && p.CowRegionBytes > 0 {
		n += g.accesses / p.CowEvery * (1 + int(p.CowRegionBytes/g.pageSize.Bytes()))
	}
	if p.ReclaimEvery > 0 {
		n += g.accesses / p.ReclaimEvery
	}
	if p.CtxSwitchEvery > 0 {
		n += g.accesses / p.CtxSwitchEvery
	}
	if p.CollapseEvery > 0 && g.pageSize == pagetable.Size4K {
		n += g.accesses / p.CollapseEvery * (1 + 512)
	}
	return n
}

// mainBase places each process's footprint in a distinct 2 TiB slice.
func (g *Synthetic) mainBase(pid int) uint64 { return uint64(pid+1) << 41 }

func (g *Synthetic) push(ops ...Op) { g.queue = append(g.queue, ops...) }

func (g *Synthetic) pop() Op {
	op := g.queue[g.head]
	g.head++
	if g.head == len(g.queue) {
		g.queue = g.queue[:0]
		g.head = 0
	}
	return op
}

// Next implements Generator.
func (g *Synthetic) Next() (Op, bool) {
	if g.head < len(g.queue) {
		return g.pop(), true
	}
	if g.done || g.emitted >= g.accesses {
		g.done = true
		return Op{}, false
	}
	g.emitted++
	i := g.emitted

	// Schedule churn events due at this step; their ops run before the
	// access to keep the stream deterministic.
	if g.prof.CtxSwitchEvery > 0 && i%g.prof.CtxSwitchEvery == 0 {
		g.curPID = (g.curPID + 1) % g.prof.Processes
		g.push(Op{Kind: OpCtxSwitch, PID: g.curPID})
	}
	if g.prof.MmapChurnEvery > 0 && i%g.prof.MmapChurnEvery == 0 {
		g.pushMmapChurn()
	}
	if g.prof.CowEvery > 0 && g.cowReady && i%g.prof.CowEvery == 0 && g.curPID == 0 {
		g.pushCowEvent()
	}
	if g.prof.ReclaimEvery > 0 && i%g.prof.ReclaimEvery == 0 {
		g.push(Op{Kind: OpReclaim, PID: g.curPID, N: g.prof.ReclaimPages})
	}
	if g.prof.CollapseEvery > 0 && i%g.prof.CollapseEvery == 0 {
		g.pushCollapseEvent()
	}

	g.push(g.patternAccess())
	return g.pop(), true
}

// patternAccess draws one steady-phase access in the current process's
// footprint.
func (g *Synthetic) patternAccess() Op {
	page := g.pat.next()
	va := g.mainBase(g.curPID) + page*g.pageSize.Bytes() + uint64(g.rng.Intn(int(g.pageSize.Bytes()/64)))*64
	core := 0
	if g.curPID == 0 && g.prof.Threads > 1 {
		core = g.emitted % g.prof.Threads
	}
	return Op{
		Kind:  OpAccess,
		PID:   g.curPID,
		Core:  core,
		VA:    va,
		Write: g.rng.Float64() < g.prof.WriteRatio,
	}
}

// pushMmapChurn retires the oldest transient region and maps + touches a
// fresh one. Slots rotate over a fixed set of bases, as real allocators
// reuse freed address ranges; churn regions always use 4K pages (transient
// allocations).
func (g *Synthetic) pushMmapChurn() {
	pid := g.curPID
	churnBase := g.mainBase(pid) + (1 << 40)
	slots := g.prof.ChurnRegions
	if slots < 1 {
		slots = 1
	}
	slot := g.churnGen[pid] % slots
	base := churnBase + uint64(slot)*(g.prof.ChurnRegionBytes+pagetable.Size2M.Bytes())
	g.churnGen[pid]++
	if g.churnGen[pid] > slots {
		// The slot is occupied by the allocation from `slots` events ago.
		g.push(Op{Kind: OpMunmap, PID: pid, VA: base})
	}
	g.push(Op{Kind: OpMmap, PID: pid, VA: base, Len: g.prof.ChurnRegionBytes, Size: pagetable.Size4K})
	for off := uint64(0); off < g.prof.ChurnRegionBytes; off += 4096 {
		g.push(Op{Kind: OpAccess, PID: pid, VA: base + off, Write: true})
	}
}

// pushCollapseEvent writes every 4K page of a rotating 2M-aligned chunk of
// the current process's main footprint (khugepaged collapses hot, fully
// populated ranges) and then collapses it. Chunks past the first rotation
// are already 2M-mapped; the OS refuses those collapses as unsuitable, which
// costs the stream nothing. Requires a 4K page-size policy and a footprint
// of at least one 2M chunk.
func (g *Synthetic) pushCollapseEvent() {
	if g.pageSize != pagetable.Size4K || g.prof.FootprintBytes < pagetable.Size2M.Bytes() {
		return
	}
	pid := g.curPID
	chunks := g.prof.FootprintBytes / pagetable.Size2M.Bytes()
	base := g.mainBase(pid) + uint64(g.collapseGen[pid]%int(chunks))*pagetable.Size2M.Bytes()
	g.collapseGen[pid]++
	for off := uint64(0); off < pagetable.Size2M.Bytes(); off += 4096 {
		g.push(Op{Kind: OpAccess, PID: pid, VA: base + off, Write: true})
	}
	g.push(Op{Kind: OpCollapse, PID: pid, VA: base})
}

// pushCowEvent marks the COW region and writes through every page.
func (g *Synthetic) pushCowEvent() {
	g.push(Op{Kind: OpMarkCOW, PID: 0, VA: g.cowBase})
	for off := uint64(0); off < g.prof.CowRegionBytes; off += g.pageSize.Bytes() {
		g.push(Op{Kind: OpAccess, PID: 0, VA: g.cowBase + off, Write: true})
	}
}

// FromOps replays a fixed op list (used by microbenchmarks and tests).
type FromOps struct {
	name string
	ops  []Op
	i    int
}

// NewFromOps wraps a fixed op slice as a Generator.
func NewFromOps(name string, ops []Op) *FromOps {
	return &FromOps{name: name, ops: ops}
}

// Name implements Generator.
func (f *FromOps) Name() string { return f.name }

// Next implements Generator.
func (f *FromOps) Next() (Op, bool) {
	if f.i >= len(f.ops) {
		return Op{}, false
	}
	op := f.ops[f.i]
	f.i++
	return op, true
}

// Reset implements Generator.
func (f *FromOps) Reset() { f.i = 0 }

// SizeHint implements Sizer (exact for a fixed list).
func (f *FromOps) SizeHint() int { return len(f.ops) }

// Pos reports how many ops have been consumed so far.
func (f *FromOps) Pos() int { return f.i }

// TakeRest returns the unconsumed tail of the op list and marks it
// consumed. Batch executors use it to process the ops in place — one slice
// iteration instead of a per-op interface call and 64-byte copy. The
// returned slice aliases the stream's backing array: read-only.
func (f *FromOps) TakeRest() []Op {
	rest := f.ops[f.i:]
	f.i = len(f.ops)
	return rest
}
