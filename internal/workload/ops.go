// Package workload generates the operation streams the simulated machine
// executes. Each of the paper's eight evaluation workloads (Table V) has a
// synthetic profile that reproduces the characteristics driving the
// results: memory footprint (scaled down ~1000×), access locality, TLB
// miss pressure, and — critically for shadow versus nested paging —
// page-table update behaviour (demand faults, mmap/munmap churn,
// copy-on-write, context switches, reclaim scans).
package workload

import (
	"fmt"

	"agilepaging/internal/pagetable"
)

// OpKind identifies one machine operation.
type OpKind int

// Operation kinds.
const (
	// OpCreateProcess creates a guest process (PID doubles as ASID).
	OpCreateProcess OpKind = iota
	// OpCtxSwitch switches the CPU to process PID.
	OpCtxSwitch
	// OpMmap registers region [VA, VA+Len) with page size Size.
	OpMmap
	// OpPopulate eagerly maps the region containing VA.
	OpPopulate
	// OpMunmap removes the region containing VA.
	OpMunmap
	// OpMarkCOW write-protects the region containing VA copy-on-write.
	OpMarkCOW
	// OpAccess performs one load (Write=false) or store (Write=true) at VA.
	OpAccess
	// OpReclaim runs the clock reclaimer over N pages.
	OpReclaim
	// OpCollapse promotes the 2M range at VA from 4K mappings to one 2M
	// mapping (THP).
	OpCollapse
)

// String names the op kind.
func (k OpKind) String() string {
	switch k {
	case OpCreateProcess:
		return "create-process"
	case OpCtxSwitch:
		return "ctx-switch"
	case OpMmap:
		return "mmap"
	case OpPopulate:
		return "populate"
	case OpMunmap:
		return "munmap"
	case OpMarkCOW:
		return "mark-cow"
	case OpAccess:
		return "access"
	case OpReclaim:
		return "reclaim"
	case OpCollapse:
		return "collapse"
	}
	return fmt.Sprintf("OpKind(%d)", int(k))
}

// Op is one operation for the machine to execute.
type Op struct {
	Kind OpKind
	PID  int
	// Core selects the CPU core executing the op (thread affinity for
	// multithreaded workloads); out-of-range values clamp to core 0.
	Core  int
	VA    uint64
	Len   uint64
	Size  pagetable.Size
	Write bool
	// Fetch marks an instruction fetch (translated by the I-side TLBs).
	Fetch bool
	N     int
}

// Generator produces an op stream.
type Generator interface {
	// Name identifies the workload.
	Name() string
	// Next returns the next op; ok reports whether one was produced.
	Next() (op Op, ok bool)
	// Reset rewinds the generator to the beginning of its stream.
	Reset()
}

// Sizer is an optional Generator extension reporting the expected total
// op count, so collectors can pre-size buffers instead of growing them by
// repeated append (the dominant cold-generation allocation cost before
// streams were packed).
type Sizer interface {
	// SizeHint returns an estimate (ideally an upper bound) of the number
	// of ops the generator will produce. It must not consume the stream.
	SizeHint() int
}

// Collect drains up to limit ops from g (limit <= 0 means all). When g
// implements Sizer the output is allocated once at the hinted capacity.
func Collect(g Generator, limit int) []Op {
	var out []Op
	if s, ok := g.(Sizer); ok {
		hint := s.SizeHint()
		if limit > 0 && limit < hint {
			hint = limit
		}
		if hint > 0 {
			out = make([]Op, 0, hint)
		}
	}
	for {
		op, ok := g.Next()
		if !ok {
			return out
		}
		out = append(out, op)
		if limit > 0 && len(out) >= limit {
			return out
		}
	}
}
