package vmm

import (
	"errors"
	"fmt"

	"agilepaging/internal/memsim"
	"agilepaging/internal/pagetable"
	"agilepaging/internal/walker"
)

// MMU is the hardware-translation coherence interface the VMM drives: when
// page tables change, stale entries must leave the TLBs, page walk caches
// and nested TLB. Package cpu implements it over the real structures.
type MMU interface {
	// InvalidatePage drops TLB entries covering gva in address space asid.
	InvalidatePage(asid uint16, gva uint64)
	// FlushASID drops all non-global TLB entries of asid.
	FlushASID(asid uint16)
	// PWCInvalidateVA drops partial walk translations covering gva.
	PWCInvalidateVA(asid uint16, gva uint64)
	// PWCFlushASID drops all partial walk translations of asid.
	PWCFlushASID(asid uint16)
	// NTLBInvalidateGPA drops the nested-TLB entry of a guest-physical page.
	NTLBInvalidateGPA(vmid uint16, gpa uint64)
}

// NopMMU discards all invalidations; useful for unit tests and trace
// analysis where no hardware structures exist.
type NopMMU struct{}

// InvalidatePage implements MMU.
func (NopMMU) InvalidatePage(uint16, uint64) {}

// FlushASID implements MMU.
func (NopMMU) FlushASID(uint16) {}

// PWCInvalidateVA implements MMU.
func (NopMMU) PWCInvalidateVA(uint16, uint64) {}

// PWCFlushASID implements MMU.
func (NopMMU) PWCFlushASID(uint16) {}

// NTLBInvalidateGPA implements MMU.
func (NopMMU) NTLBInvalidateGPA(uint16, uint64) {}

// Config describes one virtual machine.
type Config struct {
	// Technique is the memory-virtualization technique the VM runs under:
	// walker.ModeNested, ModeShadow, or ModeAgile.
	Technique walker.Mode
	// RAMBytes is the guest-physical memory size.
	RAMBytes uint64
	// HostPageSize is the page size the VMM uses in the host page table.
	HostPageSize pagetable.Size
	// HardwareAD enables the paper's §IV optimization: the MMU propagates
	// accessed/dirty bits to all three tables with an extra nested walk
	// instead of a VM exit.
	HardwareAD bool
	// CtxSwitchCacheEntries sizes the paper's §IV gptr⇒sptr hardware
	// cache (4-8 entries suggested); 0 disables it.
	CtxSwitchCacheEntries int
	// Costs is the VMtrap cost model.
	Costs CostModel
}

// DefaultConfig returns a VM configuration matching the paper's baseline
// hardware: 4K host pages, no optional optimizations.
func DefaultConfig(technique walker.Mode) Config {
	return Config{
		Technique:    technique,
		RAMBytes:     1 << 30,
		HostPageSize: pagetable.Size4K,
		Costs:        DefaultCostModel(),
	}
}

// VM is one virtual machine: a guest-physical address space, its host page
// table, and the shadow contexts of its guest processes.
type VM struct {
	mem *memsim.Memory
	mmu MMU
	id  uint16
	cfg Config

	hpt      *pagetable.Table
	gpaNext  uint64
	gpaLimit uint64
	gpaFree  []uint64

	ctxs    map[uint16]*Context // by ASID
	current *Context

	// ctxCache models the §IV context-switch hardware cache: recently used
	// guest root gPAs whose shadow context can be installed without a trap.
	ctxCache []uint64

	observer func(TrapKind)

	stats Stats
}

// ErrGuestOOM is returned when the guest-physical address space is full.
var ErrGuestOOM = errors.New("vmm: guest physical memory exhausted")

// gpaBase is the first usable guest-physical address: guest page 0 stays
// unmapped so a zero gPA can mean "no page".
const gpaBase = 0x1000

// New creates a VM backed by mem, with its guest-physical space starting at
// a fixed base. The MMU hooks may be NopMMU for table-only tests.
func New(mem *memsim.Memory, mmu MMU, id uint16, cfg Config) (*VM, error) {
	if cfg.Technique != walker.ModeNested && cfg.Technique != walker.ModeShadow && cfg.Technique != walker.ModeAgile {
		return nil, fmt.Errorf("vmm: invalid technique %v", cfg.Technique)
	}
	hpt, err := pagetable.New(mem, pagetable.HostSpace{Mem: mem})
	if err != nil {
		return nil, err
	}
	return &VM{
		mem:      mem,
		mmu:      mmu,
		id:       id,
		cfg:      cfg,
		hpt:      hpt,
		gpaNext:  gpaBase,
		gpaLimit: gpaBase + cfg.RAMBytes,
		ctxs:     make(map[uint16]*Context),
	}, nil
}

// Reset restores the VM to its post-New state under cfg, which may differ
// from the construction config only in non-structural fields (cost model,
// hardware A/D, context-switch cache size): all guest contexts and shadow
// tables are dropped and the guest-physical allocator rewinds to its base.
// The caller must have reset the backing Memory first — Reset does not free
// the old host page table's frames individually, it re-roots a fresh one —
// so the frame-allocation sequence after Reset replays exactly as after New.
func (vm *VM) Reset(cfg Config) error {
	if cfg.Technique != walker.ModeNested && cfg.Technique != walker.ModeShadow && cfg.Technique != walker.ModeAgile {
		return fmt.Errorf("vmm: invalid technique %v", cfg.Technique)
	}
	vm.cfg = cfg
	if err := vm.hpt.Reset(); err != nil {
		return err
	}
	vm.gpaNext = gpaBase
	vm.gpaLimit = gpaBase + cfg.RAMBytes
	vm.gpaFree = vm.gpaFree[:0]
	clear(vm.ctxs)
	vm.current = nil
	vm.ctxCache = vm.ctxCache[:0]
	vm.observer = nil
	vm.stats = Stats{}
	return nil
}

// ID returns the VM identifier (nested-TLB tag).
func (vm *VM) ID() uint16 { return vm.id }

// Config returns the VM configuration.
func (vm *VM) Config() Config { return vm.cfg }

// HPT exposes the host page table (read-mostly; tests and the dirty-bit
// policy inspect it).
func (vm *VM) HPT() *pagetable.Table { return vm.hpt }

// Stats returns a copy of the accumulated VMM counters.
func (vm *VM) Stats() Stats { return vm.stats }

// ResetStats zeroes the VMM counters.
func (vm *VM) ResetStats() { vm.stats = Stats{} }

// SetTrapObserver installs a callback invoked on every VM exit — the
// analog of the paper's instrumented trace-cmd/KVM tracing (§VI step 1).
func (vm *VM) SetTrapObserver(fn func(TrapKind)) { vm.observer = fn }

// trap charges one VM exit of the given kind.
func (vm *VM) trap(kind TrapKind) {
	vm.stats.Traps[kind]++
	vm.stats.TrapCycles += vm.cfg.Costs.Cycles[kind]
	if vm.observer != nil {
		vm.observer(kind)
	}
}

// AllocGPA allocates one naturally-aligned guest-physical page of the given
// size and backs it with host memory. This models the guest OS's own frame
// allocator handing out guest RAM that the VMM backed at VM creation.
func (vm *VM) AllocGPA(size pagetable.Size) (uint64, error) {
	if size == pagetable.Size4K && len(vm.gpaFree) > 0 {
		gpa := vm.gpaFree[len(vm.gpaFree)-1]
		vm.gpaFree = vm.gpaFree[:len(vm.gpaFree)-1]
		return gpa, nil
	}
	gpa := (vm.gpaNext + size.Mask()) &^ size.Mask()
	if gpa+size.Bytes() > vm.gpaLimit {
		return 0, ErrGuestOOM
	}
	vm.gpaNext = gpa + size.Bytes()
	if err := vm.back(gpa, size); err != nil {
		return 0, err
	}
	return gpa, nil
}

// FreeGPA returns a 4K guest page to the guest allocator. Larger pages are
// not recycled (the workloads in this reproduction never need it).
func (vm *VM) FreeGPA(gpa uint64, size pagetable.Size) {
	if size == pagetable.Size4K {
		vm.gpaFree = append(vm.gpaFree, gpa)
	}
}

// back populates the host page table for [gpa, gpa+size) using the VM's
// host page size.
func (vm *VM) back(gpa uint64, size pagetable.Size) error {
	hps := vm.cfg.HostPageSize
	if hps.Bytes() > size.Bytes() {
		hps = size // never back a small guest page with a larger host page alone
	}
	for off := uint64(0); off < size.Bytes(); off += hps.Bytes() {
		g := gpa + off
		if _, ok := vm.hpt.TryLookup(g); ok {
			continue // already backed (e.g. inside an earlier 2M host page)
		}
		base := g &^ hps.Mask()
		if _, ok := vm.hpt.TryLookup(base); ok {
			continue
		}
		n := int(hps.Bytes() / memsim.FrameSize)
		f, err := vm.mem.AllocContiguousAligned(n, n)
		if err != nil {
			return err
		}
		if err := vm.hpt.Map(base, f.Addr(), hps, pagetable.FlagWrite); err != nil {
			return err
		}
	}
	return nil
}

// TranslateGPA software-walks the host page table.
func (vm *VM) TranslateGPA(gpa uint64) (hpa uint64, writable bool, err error) {
	r, ok := vm.hpt.TryLookup(gpa)
	if !ok {
		_, err = vm.hpt.Lookup(gpa) // build the descriptive miss error
		return 0, false, err
	}
	return r.PA, r.Entry.Writable(), nil
}

// translateGPA is TranslateGPA for hot callers that treat a miss as a
// boolean condition; it never allocates.
func (vm *VM) translateGPA(gpa uint64) (hpa uint64, writable, ok bool) {
	r, ok := vm.hpt.TryLookup(gpa)
	if !ok {
		return 0, false, false
	}
	return r.PA, r.Entry.Writable(), true
}

// HandleHostFault services a host page table violation (VM exit). With the
// default eager backing this only fires for guest-physical holes, which are
// guest bugs; it is exercised by the host copy-on-write path.
func (vm *VM) HandleHostFault(gpa uint64, write bool) error {
	vm.trap(TrapHostFault)
	if _, ok := vm.hpt.TryLookup(gpa); !ok {
		return vm.back(gpa&^vm.cfg.HostPageSize.Mask(), vm.cfg.HostPageSize)
	}
	if write {
		return vm.resolveHostCOW(gpa)
	}
	return nil
}

// WriteProtectHostPage makes the host mapping of gpa read-only, as the
// VMM's content-based page sharing does (paper §V). Affected shadow entries
// and cached translations are invalidated.
func (vm *VM) WriteProtectHostPage(gpa uint64) error {
	if err := vm.hpt.ClearFlags(gpa, pagetable.FlagWrite); err != nil {
		return err
	}
	vm.mmu.NTLBInvalidateGPA(vm.id, gpa)
	for _, ctx := range vm.ctxs {
		ctx.hostPageChanged(gpa)
	}
	return nil
}

// DedupPages implements the VMM side of content-based page sharing (paper
// §V): after a scan finds gpaA and gpaB hold identical content, gpaB's host
// mapping is pointed at gpaA's frame, both become read-only, and gpaB's old
// frame is reclaimed. The first guest write to either page breaks the
// sharing through the host copy-on-write path (a VM exit).
func (vm *VM) DedupPages(gpaA, gpaB uint64) error {
	ra, err := vm.hpt.Lookup(gpaA)
	if err != nil {
		return err
	}
	rb, err := vm.hpt.Lookup(gpaB)
	if err != nil {
		return err
	}
	if ra.Size != pagetable.Size4K || rb.Size != pagetable.Size4K {
		return fmt.Errorf("vmm: dedup of %s/%s pages not supported", ra.Size, rb.Size)
	}
	baseA := gpaA &^ pagetable.Size4K.Mask()
	baseB := gpaB &^ pagetable.Size4K.Mask()
	if baseA == baseB {
		return fmt.Errorf("vmm: dedup of a page with itself (gpa %#x)", baseA)
	}
	oldFrame := memsim.FrameOf(rb.Entry.Addr())
	if vm.mem.IsTable(oldFrame) {
		// Never reclaim a frame that holds a live page-table page.
		return fmt.Errorf("vmm: refusing to dedup guest page-table page %#x", baseB)
	}
	if err := vm.hpt.Remap(baseB, ra.Entry.Addr(), pagetable.Size4K, 0); err != nil {
		return err
	}
	if err := vm.hpt.ClearFlags(baseA, pagetable.FlagWrite); err != nil {
		return err
	}
	if err := vm.mem.FreeFrame(oldFrame); err != nil {
		return err
	}
	vm.stats.PagesDeduped++
	for _, gpa := range []uint64{baseA, baseB} {
		vm.mmu.NTLBInvalidateGPA(vm.id, gpa)
		for _, ctx := range vm.ctxs {
			ctx.hostPageChanged(gpa)
		}
	}
	return nil
}

// DedupAcrossVMs shares one host frame between gpaA in vmA and gpaB in vmB
// — inter-VM content-based sharing ("even between two virtual machines",
// paper §V). Both VMs must be built over the same host memory. Either
// guest's first write breaks the sharing through its own host COW exit.
func DedupAcrossVMs(vmA *VM, gpaA uint64, vmB *VM, gpaB uint64) error {
	if vmA.mem != vmB.mem {
		return errors.New("vmm: cross-VM dedup requires a shared host memory")
	}
	if vmA == vmB {
		return vmA.DedupPages(gpaA, gpaB)
	}
	ra, err := vmA.hpt.Lookup(gpaA)
	if err != nil {
		return err
	}
	rb, err := vmB.hpt.Lookup(gpaB)
	if err != nil {
		return err
	}
	if ra.Size != pagetable.Size4K || rb.Size != pagetable.Size4K {
		return fmt.Errorf("vmm: cross-VM dedup of %s/%s pages not supported", ra.Size, rb.Size)
	}
	baseA := gpaA &^ pagetable.Size4K.Mask()
	baseB := gpaB &^ pagetable.Size4K.Mask()
	oldFrame := memsim.FrameOf(rb.Entry.Addr())
	if vmB.mem.IsTable(oldFrame) {
		return fmt.Errorf("vmm: refusing to dedup guest page-table page %#x", baseB)
	}
	if err := vmB.hpt.Remap(baseB, ra.Entry.Addr(), pagetable.Size4K, 0); err != nil {
		return err
	}
	if err := vmA.hpt.ClearFlags(baseA, pagetable.FlagWrite); err != nil {
		return err
	}
	if err := vmB.mem.FreeFrame(oldFrame); err != nil {
		return err
	}
	vmA.stats.PagesDeduped++
	vmB.stats.PagesDeduped++
	vmA.mmu.NTLBInvalidateGPA(vmA.id, baseA)
	vmB.mmu.NTLBInvalidateGPA(vmB.id, baseB)
	for _, ctx := range vmA.ctxs {
		ctx.hostPageChanged(baseA)
	}
	for _, ctx := range vmB.ctxs {
		ctx.hostPageChanged(baseB)
	}
	return nil
}

// resolveHostCOW gives gpa a private writable host frame again.
func (vm *VM) resolveHostCOW(gpa uint64) error {
	f, err := vm.mem.AllocFrame()
	if err != nil {
		return err
	}
	base := gpa &^ pagetable.Size4K.Mask()
	r, err := vm.hpt.Lookup(base)
	if err != nil {
		return err
	}
	if r.Size != pagetable.Size4K {
		return fmt.Errorf("vmm: host COW on %s page not supported", r.Size)
	}
	if err := vm.hpt.Remap(base, f.Addr(), pagetable.Size4K, pagetable.FlagWrite); err != nil {
		return err
	}
	vm.mmu.NTLBInvalidateGPA(vm.id, base)
	for _, ctx := range vm.ctxs {
		ctx.hostPageChanged(base)
	}
	return nil
}

// ContextSwitch installs the context of the process whose guest page table
// root is gptRoot. Under nested paging the guest's CR3 write is not
// intercepted. Under shadow and agile paging it traps so the VMM can find
// the matching shadow root — unless the §IV context-switch cache holds the
// pair (paper §IV "Context-Switches").
func (vm *VM) ContextSwitch(asid uint16) (walker.Regs, error) {
	ctx, ok := vm.ctxs[asid]
	if !ok {
		return walker.Regs{}, fmt.Errorf("vmm: unknown context asid=%d", asid)
	}
	if vm.cfg.Technique != walker.ModeNested && !ctx.fullNested {
		if vm.ctxCacheHit(ctx.gpt.Root()) {
			vm.stats.CtxCacheHits++
		} else {
			vm.trap(TrapContextSwitch)
			vm.ctxCacheInsert(ctx.gpt.Root())
		}
	}
	vm.current = ctx
	return ctx.Regs(), nil
}

// Current returns the currently installed context, or nil.
func (vm *VM) Current() *Context { return vm.current }

// Context returns the context registered for asid.
func (vm *VM) Context(asid uint16) (*Context, bool) {
	ctx, ok := vm.ctxs[asid]
	return ctx, ok
}

// EachContext calls fn for every registered guest-process context, in
// unspecified order. Telemetry uses it to aggregate per-context gauges
// (order-independent sums) without exposing the context map.
func (vm *VM) EachContext(fn func(*Context)) {
	for _, ctx := range vm.ctxs {
		fn(ctx)
	}
}

func (vm *VM) ctxCacheHit(gptRoot uint64) bool {
	for i, g := range vm.ctxCache {
		if g == gptRoot {
			// Move to MRU position.
			copy(vm.ctxCache[1:i+1], vm.ctxCache[:i])
			vm.ctxCache[0] = gptRoot
			return true
		}
	}
	return false
}

func (vm *VM) ctxCacheInsert(gptRoot uint64) {
	n := vm.cfg.CtxSwitchCacheEntries
	if n <= 0 {
		return
	}
	vm.ctxCache = append([]uint64{gptRoot}, vm.ctxCache...)
	if len(vm.ctxCache) > n {
		vm.ctxCache = vm.ctxCache[:n]
	}
}

// guestPhysSpace adapts the VM's guest-physical memory to pagetable.Space
// so guest page tables can be built in guest RAM.
type guestPhysSpace struct{ vm *VM }

// FrameFor implements pagetable.Space.
func (g guestPhysSpace) FrameFor(pa uint64) (memsim.Frame, bool) {
	hpa, _, err := g.vm.TranslateGPA(pa)
	if err != nil {
		return 0, false
	}
	f := memsim.FrameOf(hpa)
	if !g.vm.mem.IsTable(f) {
		return 0, false
	}
	return f, true
}

// AllocTablePage implements pagetable.Space.
func (g guestPhysSpace) AllocTablePage() (uint64, error) {
	gpa, err := g.vm.AllocGPA(pagetable.Size4K)
	if err != nil {
		return 0, err
	}
	hpa, _, err := g.vm.TranslateGPA(gpa)
	if err != nil {
		return 0, err
	}
	if err := g.vm.mem.MaterializeTable(memsim.FrameOf(hpa)); err != nil {
		return 0, err
	}
	// The guest OS zeroes a page before using it as a page table. Guest
	// table frames stay materialized across FreeTablePage (the host frame
	// is still guest RAM), so a recycled gPA could otherwise resurface with
	// the previous table's entries.
	g.vm.mem.ZeroTable(memsim.FrameOf(hpa))
	return gpa, nil
}

// FreeTablePage implements pagetable.Space.
func (g guestPhysSpace) FreeTablePage(pa uint64) error {
	g.vm.FreeGPA(pa, pagetable.Size4K)
	return nil
}
