package vmm

import (
	"testing"

	"agilepaging/internal/pagetable"
	"agilepaging/internal/walker"
)

// buildShadow2MSpan maps n 4K guest pages at the start of gva's 2M span and
// faults them into the shadow table, returning the gPA of the guest leaf
// table page covering the span.
func buildShadow2MSpan(t *testing.T, vm *VM, ctx *Context, gva uint64, n int) (leafPage uint64) {
	t.Helper()
	for i := 0; i < n; i++ {
		va := gva + uint64(i)<<12
		gpa, err := vm.AllocGPA(pagetable.Size4K)
		if err != nil {
			t.Fatal(err)
		}
		if err := ctx.GPT().Map(va, gpa, pagetable.Size4K, pagetable.FlagWrite|pagetable.FlagUser); err != nil {
			t.Fatal(err)
		}
		if _, err := ctx.HandleShadowFault(va, false); err != nil {
			t.Fatal(err)
		}
	}
	page, _, _, _, ok := ctx.leafSlot(gva)
	if !ok {
		t.Fatal("no guest leaf slot after setup")
	}
	return page
}

// TestGuestTableFreeTearsDownShadowState pins the VMM half of the
// shadow-invalidation contract: when the guest prunes a leaf table page, the
// covering shadow subtree is zapped, write-protect tracking for the page is
// dropped, and the policy's free listener hears about it — all before the
// gPA can be recycled.
func TestGuestTableFreeTearsDownShadowState(t *testing.T) {
	vm, _ := newTestVM(t, walker.ModeShadow)
	ctx, err := vm.NewProcess(7)
	if err != nil {
		t.Fatal(err)
	}
	gva := uint64(0x7f00_0020_0000)
	leafPage := buildShadow2MSpan(t, vm, ctx, gva, 4)
	if !ctx.IsProtected(leafPage) {
		t.Fatal("guest leaf table not protected after shadow fill")
	}
	if _, ok := ctx.SPT().TryLookup(gva); !ok {
		t.Fatal("shadow translation missing after fill")
	}

	var freed []uint64
	ctx.SetFreeListener(func(page uint64) { freed = append(freed, page) })

	for i := 0; i < 4; i++ {
		if err := ctx.GPT().Unmap(gva+uint64(i)<<12, pagetable.Size4K); err != nil {
			t.Fatal(err)
		}
	}
	sptPagesBefore := len(ctx.SPT().TablePages())
	if ctx.GPT().FreeEmpty() == 0 {
		t.Fatal("FreeEmpty pruned nothing")
	}

	if ctx.IsProtected(leafPage) {
		t.Error("pruned guest table page still write-protected")
	}
	if _, ok := ctx.SPT().TryLookup(gva); ok {
		t.Error("shadow translation survived the guest table prune")
	}
	found := false
	for _, p := range freed {
		if p == leafPage {
			found = true
		}
	}
	if !found {
		t.Errorf("free listener did not hear about leaf page %#x (got %#x)", leafPage, freed)
	}
	if got := len(ctx.SPT().TablePages()); got >= sptPagesBefore {
		t.Errorf("shadow subtree pages not released: %d -> %d", sptPagesBefore, got)
	}
}

// TestStructuralEditZapsShadowAndTraps pins the advance-notice hook: a
// structural edit of a 2M span drops the covering shadow subtree, costs one
// TLB-flush VM exit under shadow-covered operation, and flushes hardware
// state.
func TestStructuralEditZapsShadowAndTraps(t *testing.T) {
	vm, mmu := newTestVM(t, walker.ModeShadow)
	ctx, err := vm.NewProcess(7)
	if err != nil {
		t.Fatal(err)
	}
	gva := uint64(0x7f00_0020_0000)
	buildShadow2MSpan(t, vm, ctx, gva, 4)

	zapsBefore := vm.Stats().ShadowEntriesZapped
	trapsBefore := vm.Stats().Traps[TrapTLBFlush]
	flushesBefore := mmu.flushes
	ctx.StructuralEdit(gva, pagetable.Size2M)

	if _, ok := ctx.SPT().TryLookup(gva); ok {
		t.Error("shadow translation survived StructuralEdit")
	}
	if got := vm.Stats().ShadowEntriesZapped; got != zapsBefore+1 {
		t.Errorf("ShadowEntriesZapped = %d, want %d", got, zapsBefore+1)
	}
	if got := vm.Stats().Traps[TrapTLBFlush]; got != trapsBefore+1 {
		t.Errorf("TLB-flush traps = %d, want %d", got, trapsBefore+1)
	}
	if mmu.flushes <= flushesBefore {
		t.Error("StructuralEdit did not flush hardware state")
	}

	// A second notice for the same (now shadow-free) span still flushes but
	// zaps nothing further.
	zapsBefore = vm.Stats().ShadowEntriesZapped
	ctx.StructuralEdit(gva, pagetable.Size2M)
	if got := vm.Stats().ShadowEntriesZapped; got != zapsBefore {
		t.Errorf("second StructuralEdit zapped %d entries, want 0", got-zapsBefore)
	}
}

// TestStructuralEditNestedNoTrap: under pure nested paging there is no
// shadow state to resync, so a structural edit costs no VM exit — the
// direct-update advantage the paper credits nested mode with.
func TestStructuralEditNestedNoTrap(t *testing.T) {
	vm, mmu := newTestVM(t, walker.ModeNested)
	ctx, err := vm.NewProcess(7)
	if err != nil {
		t.Fatal(err)
	}
	ctx.StructuralEdit(0x7f00_0020_0000, pagetable.Size2M)
	if got := vm.Stats().Traps[TrapTLBFlush]; got != 0 {
		t.Errorf("nested structural edit trapped %d times, want 0", got)
	}
	if mmu.flushes == 0 {
		t.Error("nested structural edit must still flush cached translations")
	}
}
