package vmm

import (
	"testing"

	"agilepaging/internal/memsim"
	"agilepaging/internal/pagetable"
	"agilepaging/internal/walker"
)

// recordingMMU records invalidations for assertions.
type recordingMMU struct {
	invalidates []uint64
	flushes     int
	ntlbDrops   []uint64
}

func (m *recordingMMU) InvalidatePage(asid uint16, gva uint64) {
	m.invalidates = append(m.invalidates, gva)
}
func (m *recordingMMU) FlushASID(asid uint16)                   { m.flushes++ }
func (m *recordingMMU) PWCInvalidateVA(asid uint16, gva uint64) {}
func (m *recordingMMU) PWCFlushASID(asid uint16)                {}
func (m *recordingMMU) NTLBInvalidateGPA(vmid uint16, gpa uint64) {
	m.ntlbDrops = append(m.ntlbDrops, gpa)
}

func newTestVM(t *testing.T, technique walker.Mode) (*VM, *recordingMMU) {
	t.Helper()
	mem := memsim.New(512 << 20)
	mmu := &recordingMMU{}
	cfg := DefaultConfig(technique)
	cfg.RAMBytes = 64 << 20
	vm, err := New(mem, mmu, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return vm, mmu
}

func TestNewVMRejectsNativeTechnique(t *testing.T) {
	mem := memsim.New(1 << 20)
	if _, err := New(mem, NopMMU{}, 1, DefaultConfig(walker.ModeNative)); err == nil {
		t.Fatal("native technique should be rejected")
	}
}

func TestAllocGPABacksMemory(t *testing.T) {
	vm, _ := newTestVM(t, walker.ModeNested)
	gpa, err := vm.AllocGPA(pagetable.Size4K)
	if err != nil {
		t.Fatal(err)
	}
	hpa, w, err := vm.TranslateGPA(gpa)
	if err != nil {
		t.Fatalf("TranslateGPA: %v", err)
	}
	if hpa == 0 || !w {
		t.Errorf("hpa=%#x writable=%v", hpa, w)
	}
	// Recycling.
	vm.FreeGPA(gpa, pagetable.Size4K)
	gpa2, _ := vm.AllocGPA(pagetable.Size4K)
	if gpa2 != gpa {
		t.Errorf("freed gpa not recycled: %#x vs %#x", gpa2, gpa)
	}
}

func TestAllocGPA2MHostBacking(t *testing.T) {
	mem := memsim.New(512 << 20)
	cfg := DefaultConfig(walker.ModeNested)
	cfg.RAMBytes = 64 << 20
	cfg.HostPageSize = pagetable.Size2M
	vm, err := New(mem, NopMMU{}, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	gpa, err := vm.AllocGPA(pagetable.Size2M)
	if err != nil {
		t.Fatal(err)
	}
	r, err := vm.HPT().Lookup(gpa)
	if err != nil {
		t.Fatal(err)
	}
	if r.Size != pagetable.Size2M {
		t.Errorf("host backing size = %v, want 2M", r.Size)
	}
	// A 4K guest allocation under a 2M host regime still works: backed at
	// host page size covering it.
	g2, err := vm.AllocGPA(pagetable.Size4K)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := vm.TranslateGPA(g2); err != nil {
		t.Errorf("4K gpa not backed: %v", err)
	}
}

func TestGuestOOM(t *testing.T) {
	mem := memsim.New(512 << 20)
	cfg := DefaultConfig(walker.ModeNested)
	cfg.RAMBytes = 16 << 12 // 16 pages
	vm, err := New(mem, NopMMU{}, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := vm.AllocGPA(pagetable.Size4K); err != nil {
			if err != ErrGuestOOM {
				t.Fatalf("err = %v, want ErrGuestOOM", err)
			}
			return
		}
	}
}

func TestShadowFillAndWalk(t *testing.T) {
	vm, _ := newTestVM(t, walker.ModeShadow)
	ctx, err := vm.NewProcess(7)
	if err != nil {
		t.Fatal(err)
	}
	gva := uint64(0x7f00_0000_0000)
	gpa, err := vm.AllocGPA(pagetable.Size4K)
	if err != nil {
		t.Fatal(err)
	}
	if err := ctx.GPT().Map(gva, gpa, pagetable.Size4K, pagetable.FlagWrite|pagetable.FlagUser); err != nil {
		t.Fatal(err)
	}
	// No shadow state yet: hardware walk faults, VMM fills.
	w := walker.New(memOf(vm), nil, nil)
	_, f := w.Walk(ctx.Regs(), gva, false)
	if f == nil || f.Kind != walker.FaultNotPresent {
		t.Fatalf("expected shadow not-present fault, got %v", f)
	}
	out, err := ctx.HandleShadowFault(gva, false)
	if err != nil || out != OutcomeRetry {
		t.Fatalf("HandleShadowFault = %v, %v", out, err)
	}
	r, f := w.Walk(ctx.Regs(), gva|0x123, false)
	if f != nil {
		t.Fatalf("walk after fill: %v", f)
	}
	hpa, _, _ := vm.TranslateGPA(gpa)
	if r.HPA != hpa|0x123 {
		t.Errorf("HPA = %#x, want %#x", r.HPA, hpa|0x123)
	}
	if r.Refs != 4 || !r.LeafShadow {
		t.Errorf("shadow walk result: %+v", r)
	}
	// The fill is a hidden VM exit.
	if vm.Stats().Traps[TrapShadowFill] != 1 {
		t.Errorf("shadow fill traps = %d", vm.Stats().Traps[TrapShadowFill])
	}
	// Guest accessed bit was propagated, dirty was not (read access), and
	// the shadow entry withholds write permission for dirty tracking.
	gr, _ := ctx.GPT().Lookup(gva)
	if !gr.Entry.Accessed() || gr.Entry.Dirty() {
		t.Errorf("guest A/D after fill: %v", gr.Entry)
	}
	if r.Flags.Writable() {
		t.Error("shadow entry should withhold write permission until first write")
	}
	// All four guest table pages on the path are now protected.
	if got := ctx.ProtectedPages(); got != 4 {
		t.Errorf("protected pages = %d, want 4", got)
	}
}

func TestShadowFaultOnUnmappedIsGuestFault(t *testing.T) {
	vm, _ := newTestVM(t, walker.ModeShadow)
	ctx, _ := vm.NewProcess(7)
	out, err := ctx.HandleShadowFault(0xdead_0000, false)
	if err != nil || out != OutcomeGuestFault {
		t.Fatalf("HandleShadowFault = %v, %v; want OutcomeGuestFault", out, err)
	}
}

func TestWriteProtectDirtyTracking(t *testing.T) {
	vm, mmu := newTestVM(t, walker.ModeShadow)
	ctx, _ := vm.NewProcess(7)
	gva := uint64(0x1000)
	gpa, _ := vm.AllocGPA(pagetable.Size4K)
	if err := ctx.GPT().Map(gva, gpa, pagetable.Size4K, pagetable.FlagWrite); err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.HandleShadowFault(gva, false); err != nil {
		t.Fatal(err)
	}
	resolved, err := ctx.HandleWriteProtect(gva)
	if err != nil || !resolved {
		t.Fatalf("HandleWriteProtect = %v, %v", resolved, err)
	}
	if vm.Stats().Traps[TrapADUpdate] != 1 {
		t.Errorf("AD-update traps = %d, want 1", vm.Stats().Traps[TrapADUpdate])
	}
	gr, _ := ctx.GPT().Lookup(gva)
	if !gr.Entry.Dirty() {
		t.Error("guest dirty bit not set")
	}
	sr, err := ctx.SPT().Lookup(gva)
	if err != nil || !sr.Entry.Writable() || !sr.Entry.Dirty() {
		t.Errorf("shadow entry after write grant: %v (%v)", sr.Entry, err)
	}
	if len(mmu.invalidates) == 0 {
		t.Error("TLB entry not invalidated after permission change")
	}
}

func TestWriteProtectHardwareADOptimization(t *testing.T) {
	mem := memsim.New(512 << 20)
	cfg := DefaultConfig(walker.ModeShadow)
	cfg.RAMBytes = 64 << 20
	cfg.HardwareAD = true
	vm, err := New(mem, NopMMU{}, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, _ := vm.NewProcess(7)
	gva := uint64(0x1000)
	gpa, _ := vm.AllocGPA(pagetable.Size4K)
	if err := ctx.GPT().Map(gva, gpa, pagetable.Size4K, pagetable.FlagWrite); err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.HandleShadowFault(gva, false); err != nil {
		t.Fatal(err)
	}
	resolved, err := ctx.HandleWriteProtect(gva)
	if err != nil || !resolved {
		t.Fatal(err)
	}
	s := vm.Stats()
	if s.Traps[TrapADUpdate] != 0 {
		t.Error("hardware A/D optimization should avoid the trap")
	}
	if s.HWADUpdates != 1 || s.HWADRefs != DefaultCostModel().HWADWalkRefs {
		t.Errorf("hw A/D accounting = %d updates, %d refs", s.HWADUpdates, s.HWADRefs)
	}
}

func TestWriteProtectGuestCOWIsGuestFault(t *testing.T) {
	vm, _ := newTestVM(t, walker.ModeShadow)
	ctx, _ := vm.NewProcess(7)
	gva := uint64(0x1000)
	gpa, _ := vm.AllocGPA(pagetable.Size4K)
	if err := ctx.GPT().Map(gva, gpa, pagetable.Size4K, 0); err != nil { // read-only (COW)
		t.Fatal(err)
	}
	if _, err := ctx.HandleShadowFault(gva, false); err != nil {
		t.Fatal(err)
	}
	resolved, err := ctx.HandleWriteProtect(gva)
	if err != nil {
		t.Fatal(err)
	}
	if resolved {
		t.Error("guest COW fault must be delivered to the guest OS")
	}
}

func TestProtectedPTWriteTrapsAndZaps(t *testing.T) {
	vm, _ := newTestVM(t, walker.ModeShadow)
	ctx, _ := vm.NewProcess(7)
	gva := uint64(0x2000)
	gpa, _ := vm.AllocGPA(pagetable.Size4K)
	if err := ctx.GPT().Map(gva, gpa, pagetable.Size4K, pagetable.FlagWrite); err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.HandleShadowFault(gva, false); err != nil {
		t.Fatal(err)
	}
	base := vm.Stats().Traps[TrapPTWrite]
	var events []uint64
	ctx.SetWriteListener(func(gptPage uint64, level, idx int, old, new pagetable.Entry) { events = append(events, gptPage) })
	// The guest OS updates the PTE (e.g. remaps the page).
	if err := ctx.GPT().Unmap(gva, pagetable.Size4K); err != nil {
		t.Fatal(err)
	}
	if got := vm.Stats().Traps[TrapPTWrite] - base; got != 1 {
		t.Fatalf("PT-write traps = %d, want 1", got)
	}
	if len(events) != 1 {
		t.Fatalf("listener events = %d", len(events))
	}
	// The shadow leaf must be gone.
	if _, err := ctx.SPT().Lookup(gva); err == nil {
		t.Error("shadow entry survived guest PT write")
	}
	if vm.Stats().ShadowEntriesZapped == 0 {
		t.Error("zap not accounted")
	}
}

func TestUnprotectedPTWriteDoesNotTrap(t *testing.T) {
	vm, _ := newTestVM(t, walker.ModeShadow)
	ctx, _ := vm.NewProcess(7)
	gva := uint64(0x2000)
	gpa, _ := vm.AllocGPA(pagetable.Size4K)
	// No shadow fill has happened: pages are unprotected, writes are free.
	if err := ctx.GPT().Map(gva, gpa, pagetable.Size4K, pagetable.FlagWrite); err != nil {
		t.Fatal(err)
	}
	if got := vm.Stats().Traps[TrapPTWrite]; got != 0 {
		t.Errorf("PT-write traps = %d, want 0", got)
	}
	// But the host table dirty bit was set by the guest store (hardware
	// effect), which the dirty-scan policy depends on.
	for pa := range ctx.GPT().TablePages() {
		r, err := vm.HPT().Lookup(pa)
		if err != nil {
			t.Fatalf("table page %#x unbacked: %v", pa, err)
		}
		if !r.Entry.Dirty() {
			t.Errorf("host dirty bit not set for written guest PT page %#x", pa)
		}
	}
}

func TestContextSwitchTrapsAndCache(t *testing.T) {
	vm, _ := newTestVM(t, walker.ModeShadow)
	a, _ := vm.NewProcess(1)
	b, _ := vm.NewProcess(2)
	_ = a
	_ = b
	base := vm.Stats().Traps[TrapContextSwitch]
	if _, err := vm.ContextSwitch(2); err != nil {
		t.Fatal(err)
	}
	if _, err := vm.ContextSwitch(1); err != nil {
		t.Fatal(err)
	}
	if got := vm.Stats().Traps[TrapContextSwitch] - base; got != 2 {
		t.Errorf("context-switch traps = %d, want 2 (no hw cache)", got)
	}
	if _, err := vm.ContextSwitch(99); err == nil {
		t.Error("unknown asid should fail")
	}
}

func TestContextSwitchHardwareCache(t *testing.T) {
	mem := memsim.New(512 << 20)
	cfg := DefaultConfig(walker.ModeShadow)
	cfg.RAMBytes = 64 << 20
	cfg.CtxSwitchCacheEntries = 4
	vm, err := New(mem, NopMMU{}, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	vm.NewProcess(1)
	vm.NewProcess(2)
	vm.ContextSwitch(1)
	vm.ContextSwitch(2)
	pre := vm.Stats()
	vm.ContextSwitch(1)
	vm.ContextSwitch(2)
	vm.ContextSwitch(1)
	post := vm.Stats()
	if post.Traps[TrapContextSwitch] != pre.Traps[TrapContextSwitch] {
		t.Errorf("warm context switches trapped: %d -> %d", pre.Traps[TrapContextSwitch], post.Traps[TrapContextSwitch])
	}
	if post.CtxCacheHits-pre.CtxCacheHits != 3 {
		t.Errorf("cache hits = %d, want 3", post.CtxCacheHits-pre.CtxCacheHits)
	}
}

func TestNestedContextSwitchNoTrap(t *testing.T) {
	vm, _ := newTestVM(t, walker.ModeNested)
	vm.NewProcess(1)
	vm.NewProcess(2)
	vm.ContextSwitch(1)
	vm.ContextSwitch(2)
	if got := vm.Stats().Traps[TrapContextSwitch]; got != 0 {
		t.Errorf("nested context switches trapped %d times", got)
	}
	regs, _ := vm.ContextSwitch(1)
	if regs.Mode != walker.ModeNested || regs.Root != 0 {
		t.Errorf("nested regs = %+v", regs)
	}
}

func TestGuestTLBFlushInterception(t *testing.T) {
	// Nested: INVLPG runs unintercepted.
	vm, _ := newTestVM(t, walker.ModeNested)
	ctx, _ := vm.NewProcess(1)
	ctx.GuestTLBFlush(0x1000, false)
	if got := vm.Stats().Traps[TrapTLBFlush]; got != 0 {
		t.Errorf("nested flush trapped %d times", got)
	}

	// Shadow: every INVLPG exits.
	vm, _ = newTestVM(t, walker.ModeShadow)
	ctx, _ = vm.NewProcess(1)
	ctx.GuestTLBFlush(0x1000, false)
	if got := vm.Stats().Traps[TrapTLBFlush]; got != 1 {
		t.Errorf("shadow flush traps = %d, want 1", got)
	}

	// Agile: only flushes of shadow-covered addresses exit.
	vm, _ = newTestVM(t, walker.ModeAgile)
	ctx, _ = vm.NewProcess(1)
	ctx.GuestTLBFlush(0x1000, false) // nothing shadow-covered yet
	if got := vm.Stats().Traps[TrapTLBFlush]; got != 0 {
		t.Errorf("agile flush of uncovered gva trapped %d times", got)
	}
	gva := uint64(0x1000)
	gpa, _ := vm.AllocGPA(pagetable.Size4K)
	if err := ctx.GPT().Map(gva, gpa, pagetable.Size4K, pagetable.FlagWrite); err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.HandleShadowFault(gva, false); err != nil {
		t.Fatal(err)
	}
	ctx.GuestTLBFlush(gva, false) // now shadow-covered
	if got := vm.Stats().Traps[TrapTLBFlush]; got != 1 {
		t.Errorf("agile flush of shadow-covered gva traps = %d, want 1", got)
	}
	// Full flush with shadow coverage exits too.
	ctx.GuestTLBFlush(0, true)
	if got := vm.Stats().Traps[TrapTLBFlush]; got != 2 {
		t.Errorf("agile full flush traps = %d, want 2", got)
	}

	// Fully nested agile context: no intercepts at all.
	vm, _ = newTestVM(t, walker.ModeAgile)
	ctx, _ = vm.NewProcess(1)
	ctx.SetFullNested(true)
	ctx.GuestTLBFlush(0, true)
	if got := vm.Stats().Traps[TrapTLBFlush]; got != 0 {
		t.Errorf("fully nested agile flush trapped %d times", got)
	}
}

func TestAgilePlantAndClearSwitch(t *testing.T) {
	vm, _ := newTestVM(t, walker.ModeAgile)
	ctx, _ := vm.NewProcess(3)
	gva := uint64(0x7f00_0000_0000)
	gpa, _ := vm.AllocGPA(pagetable.Size4K)
	if err := ctx.GPT().Map(gva, gpa, pagetable.Size4K, pagetable.FlagWrite); err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.HandleShadowFault(gva, false); err != nil {
		t.Fatal(err)
	}
	// Move the leaf-level guest table node to nested mode.
	leafNode, err := ctx.GPT().EntryAt(gva, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := ctx.PlantSwitch(leafNode.Addr()); err != nil {
		t.Fatalf("PlantSwitch: %v", err)
	}
	if ctx.IsProtected(leafNode.Addr()) {
		t.Error("nested node still write-protected")
	}
	// Hardware walk now switches at the leaf: 8 references (Table II).
	w := walker.New(memOf(vm), nil, nil)
	r, f := w.Walk(ctx.Regs(), gva, false)
	if f != nil {
		t.Fatalf("agile walk: %v", f)
	}
	if r.Refs != 8 || r.NestedLevels != 1 {
		t.Errorf("agile walk refs=%d nested=%d, want 8/1", r.Refs, r.NestedLevels)
	}
	// Guest PT writes to that node are now trap-free.
	base := vm.Stats().Traps[TrapPTWrite]
	if err := ctx.GPT().Unmap(gva, pagetable.Size4K); err != nil {
		t.Fatal(err)
	}
	if got := vm.Stats().Traps[TrapPTWrite] - base; got != 0 {
		t.Errorf("nested-node PT write trapped %d times", got)
	}
	if err := ctx.GPT().Map(gva, gpa, pagetable.Size4K, pagetable.FlagWrite); err != nil {
		t.Fatal(err)
	}
	// Convert back to shadow.
	if err := ctx.ClearSwitch(leafNode.Addr()); err != nil {
		t.Fatalf("ClearSwitch: %v", err)
	}
	if !ctx.IsProtected(leafNode.Addr()) {
		t.Error("node not re-protected after ClearSwitch")
	}
	// Walk faults (switch entry removed), refill in shadow, then 4 refs.
	if _, f := w.Walk(ctx.Regs(), gva, false); f == nil {
		t.Fatal("expected fault after ClearSwitch")
	}
	if _, err := ctx.HandleShadowFault(gva, false); err != nil {
		t.Fatal(err)
	}
	r, f = w.Walk(ctx.Regs(), gva, false)
	if f != nil {
		t.Fatal(f)
	}
	if r.Refs != 4 || r.NestedLevels != 0 {
		t.Errorf("after revert: refs=%d nested=%d, want 4/0", r.Refs, r.NestedLevels)
	}
}

func TestAgileRootSwitch(t *testing.T) {
	vm, _ := newTestVM(t, walker.ModeAgile)
	ctx, _ := vm.NewProcess(3)
	gva := uint64(0x1000)
	gpa, _ := vm.AllocGPA(pagetable.Size4K)
	if err := ctx.GPT().Map(gva, gpa, pagetable.Size4K, pagetable.FlagWrite); err != nil {
		t.Fatal(err)
	}
	if err := ctx.PlantSwitch(ctx.GPT().Root()); err != nil {
		t.Fatal(err)
	}
	if !ctx.RootSwitch() {
		t.Fatal("root switch not set")
	}
	w := walker.New(memOf(vm), nil, nil)
	r, f := w.Walk(ctx.Regs(), gva, false)
	if f != nil {
		t.Fatalf("root-switch walk: %v", f)
	}
	if r.Refs != 20 || r.NestedLevels != 4 || r.GptrTranslated {
		t.Errorf("root-switch walk refs=%d nested=%d gptr=%v, want 20/4/false", r.Refs, r.NestedLevels, r.GptrTranslated)
	}
	if err := ctx.ClearSwitch(ctx.GPT().Root()); err != nil {
		t.Fatal(err)
	}
	if ctx.RootSwitch() {
		t.Error("root switch not cleared")
	}
}

func TestSubtreePages(t *testing.T) {
	vm, _ := newTestVM(t, walker.ModeShadow)
	ctx, _ := vm.NewProcess(3)
	// Two leaves under distinct L3 tables within one L2 subtree.
	for _, gva := range []uint64{0x0000_0000_1000, 0x0000_0020_0000 + 0x1000} {
		gpa, _ := vm.AllocGPA(pagetable.Size4K)
		if err := ctx.GPT().Map(gva, gpa, pagetable.Size4K, 0); err != nil {
			t.Fatal(err)
		}
	}
	pages := ctx.SubtreePages(ctx.GPT().Root())
	// root + L2 + L3 + two leaf tables = 5.
	if len(pages) != 5 {
		t.Errorf("subtree pages = %d, want 5", len(pages))
	}
	// Subtree of the level-2 node: itself + 2 leaf tables.
	l2, err := ctx.GPT().EntryAt(0x1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	pages = ctx.SubtreePages(l2.Addr())
	if len(pages) != 3 {
		t.Errorf("L2 subtree pages = %d, want 3", len(pages))
	}
	if got := ctx.SubtreePages(0xdeadbeef000); got != nil {
		t.Error("unknown page should yield nil")
	}
}

func TestHostCOWFlow(t *testing.T) {
	vm, mmu := newTestVM(t, walker.ModeShadow)
	ctx, _ := vm.NewProcess(3)
	gva := uint64(0x1000)
	gpa, _ := vm.AllocGPA(pagetable.Size4K)
	if err := ctx.GPT().Map(gva, gpa, pagetable.Size4K, pagetable.FlagWrite); err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.HandleShadowFault(gva, true); err != nil {
		t.Fatal(err)
	}
	hpaBefore, _, _ := vm.TranslateGPA(gpa)
	// VMM dedups the page (content sharing): host write protection.
	if err := vm.WriteProtectHostPage(gpa); err != nil {
		t.Fatal(err)
	}
	if len(mmu.ntlbDrops) == 0 {
		t.Error("NTLB not invalidated on host protection change")
	}
	// The shadow leaf translating through that gpa must be zapped.
	if _, err := ctx.SPT().Lookup(gva); err == nil {
		t.Error("shadow leaf survived host page protection")
	}
	// Guest write: resolved by host COW break with a fresh frame.
	resolved, err := ctx.HandleWriteProtect(gva)
	if err != nil || !resolved {
		t.Fatalf("host COW resolution = %v, %v", resolved, err)
	}
	hpaAfter, w, _ := vm.TranslateGPA(gpa)
	if !w || hpaAfter == hpaBefore {
		t.Errorf("host COW not broken: hpa %#x -> %#x writable=%v", hpaBefore, hpaAfter, w)
	}
	if vm.Stats().Traps[TrapHostFault] != 1 {
		t.Errorf("host fault traps = %d", vm.Stats().Traps[TrapHostFault])
	}
}

func TestShadowFill2MGuestOn4KHostSplinters(t *testing.T) {
	vm, _ := newTestVM(t, walker.ModeShadow) // host page size 4K
	ctx, _ := vm.NewProcess(3)
	gva := uint64(0x4000_0000)
	gpa, err := vm.AllocGPA(pagetable.Size2M)
	if err != nil {
		t.Fatal(err)
	}
	if err := ctx.GPT().Map(gva, gpa, pagetable.Size2M, pagetable.FlagWrite); err != nil {
		t.Fatal(err)
	}
	target := gva + 5*4096
	if _, err := ctx.HandleShadowFault(target, false); err != nil {
		t.Fatal(err)
	}
	sr, err := ctx.SPT().Lookup(target)
	if err != nil {
		t.Fatalf("shadow lookup: %v", err)
	}
	if sr.Size != pagetable.Size4K {
		t.Errorf("shadow size = %v, want 4K splinter (paper §V)", sr.Size)
	}
	wantHPA, _, _ := vm.TranslateGPA(gpa + 5*4096)
	if sr.PA != wantHPA {
		t.Errorf("splintered PA = %#x, want %#x", sr.PA, wantHPA)
	}
}

func TestShadowFill2MGuestOn2MHost(t *testing.T) {
	mem := memsim.New(512 << 20)
	cfg := DefaultConfig(walker.ModeShadow)
	cfg.RAMBytes = 64 << 20
	cfg.HostPageSize = pagetable.Size2M
	vm, err := New(mem, NopMMU{}, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, _ := vm.NewProcess(3)
	gva := uint64(0x4000_0000)
	gpa, err := vm.AllocGPA(pagetable.Size2M)
	if err != nil {
		t.Fatal(err)
	}
	if err := ctx.GPT().Map(gva, gpa, pagetable.Size2M, pagetable.FlagWrite); err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.HandleShadowFault(gva+0x5000, false); err != nil {
		t.Fatal(err)
	}
	sr, err := ctx.SPT().Lookup(gva)
	if err != nil {
		t.Fatal(err)
	}
	if sr.Size != pagetable.Size2M {
		t.Errorf("shadow size = %v, want 2M", sr.Size)
	}
	// A 2M shadow walk takes 3 references.
	w := walker.New(mem, nil, nil)
	r, f := w.Walk(ctx.Regs(), gva+0x123, false)
	if f != nil {
		t.Fatal(f)
	}
	if r.Refs != 3 {
		t.Errorf("2M shadow walk refs = %d, want 3", r.Refs)
	}
}

func TestTrapKindStringsAndStats(t *testing.T) {
	for k := TrapKind(0); k < NumTrapKinds; k++ {
		if k.String() == "" || k.String()[0] == 'T' {
			t.Errorf("TrapKind(%d).String() = %q", int(k), k.String())
		}
	}
	var s Stats
	s.Traps[TrapPTWrite] = 3
	s.Traps[TrapTLBFlush] = 2
	if s.TotalTraps() != 5 {
		t.Errorf("TotalTraps = %d", s.TotalTraps())
	}
	vm, _ := newTestVM(t, walker.ModeShadow)
	vm.trap(TrapPTWrite)
	if vm.Stats().TrapCycles != DefaultCostModel().Cycles[TrapPTWrite] {
		t.Error("trap cycles not charged")
	}
	vm.ResetStats()
	if vm.Stats().TotalTraps() != 0 {
		t.Error("ResetStats")
	}
}

// memOf exposes the VM's memory for walker construction in tests.
func memOf(vm *VM) *memsim.Memory { return vm.mem }

func TestDedupPagesContentSharing(t *testing.T) {
	vm, mmu := newTestVM(t, walker.ModeShadow)
	ctx, _ := vm.NewProcess(3)
	gvaA, gvaB := uint64(0x1000), uint64(0x2000)
	gpaA, _ := vm.AllocGPA(pagetable.Size4K)
	gpaB, _ := vm.AllocGPA(pagetable.Size4K)
	if err := ctx.GPT().Map(gvaA, gpaA, pagetable.Size4K, pagetable.FlagWrite); err != nil {
		t.Fatal(err)
	}
	if err := ctx.GPT().Map(gvaB, gpaB, pagetable.Size4K, pagetable.FlagWrite); err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.HandleShadowFault(gvaA, false); err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.HandleShadowFault(gvaB, false); err != nil {
		t.Fatal(err)
	}
	framesBefore := memOf(vm).AllocatedFrames()
	if err := vm.DedupPages(gpaA, gpaB); err != nil {
		t.Fatalf("DedupPages: %v", err)
	}
	if got := memOf(vm).AllocatedFrames(); got != framesBefore-1 {
		t.Errorf("frames %d -> %d, want one reclaimed", framesBefore, got)
	}
	hpaA, wA, _ := vm.TranslateGPA(gpaA)
	hpaB, wB, _ := vm.TranslateGPA(gpaB)
	if hpaA != hpaB {
		t.Fatalf("pages not sharing a frame: %#x vs %#x", hpaA, hpaB)
	}
	if wA || wB {
		t.Error("shared pages must be read-only")
	}
	if vm.Stats().PagesDeduped != 1 {
		t.Errorf("PagesDeduped = %d", vm.Stats().PagesDeduped)
	}
	if len(mmu.ntlbDrops) == 0 {
		t.Error("NTLB not invalidated")
	}
	// A guest write breaks the sharing via host COW.
	resolved, err := ctx.HandleWriteProtect(gvaB)
	if err != nil || !resolved {
		t.Fatalf("COW break: %v %v", resolved, err)
	}
	hpaA2, _, _ := vm.TranslateGPA(gpaA)
	hpaB2, wB2, _ := vm.TranslateGPA(gpaB)
	if hpaA2 == hpaB2 || !wB2 {
		t.Errorf("sharing not broken: %#x vs %#x writable=%v", hpaA2, hpaB2, wB2)
	}
	if vm.Stats().Traps[TrapHostFault] != 1 {
		t.Errorf("host fault traps = %d", vm.Stats().Traps[TrapHostFault])
	}
}

func TestDedupPagesErrors(t *testing.T) {
	vm, _ := newTestVM(t, walker.ModeNested)
	gpa, _ := vm.AllocGPA(pagetable.Size4K)
	if err := vm.DedupPages(gpa, gpa); err == nil {
		t.Error("self-dedup accepted")
	}
	if err := vm.DedupPages(gpa, 0xdead0000); err == nil {
		t.Error("dedup of unbacked gpa accepted")
	}
	// Refuse to reclaim page-table pages.
	ctx, _ := vm.NewProcess(5)
	if err := ctx.GPT().Map(0x1000, gpa, pagetable.Size4K, 0); err != nil {
		t.Fatal(err)
	}
	rootGPA := ctx.GPT().Root()
	if err := vm.DedupPages(gpa, rootGPA); err == nil {
		t.Error("dedup of a guest page-table page accepted")
	}
}

func TestAccessorsAndObserver(t *testing.T) {
	vm, _ := newTestVM(t, walker.ModeAgile)
	if vm.ID() != 1 {
		t.Errorf("ID = %d", vm.ID())
	}
	if vm.Config().Technique != walker.ModeAgile {
		t.Error("Config")
	}
	var seen []TrapKind
	vm.SetTrapObserver(func(k TrapKind) { seen = append(seen, k) })
	ctx, err := vm.NewProcess(4)
	if err != nil {
		t.Fatal(err)
	}
	if ctx.ASID() != 4 || ctx.VM() != vm {
		t.Error("context accessors")
	}
	if ctx.FullNested() {
		t.Error("fresh agile context should not be fully nested")
	}
	if got, ok := vm.Context(4); !ok || got != ctx {
		t.Error("Context lookup")
	}
	if vm.Current() != ctx {
		t.Error("first process should be current")
	}
	ctx.GuestTLBFlush(0, true) // agile full flush with shadow ambitions: traps
	if len(seen) != 1 || seen[0] != TrapTLBFlush {
		t.Errorf("observer saw %v", seen)
	}
	// SetOracle with a nil-free custom oracle is honored during fills.
	ctx.SetOracle(alwaysNested{})
	gva := uint64(0x1000)
	gpa, _ := vm.AllocGPA(pagetable.Size4K)
	if err := ctx.GPT().Map(gva, gpa, pagetable.Size4K, pagetable.FlagWrite); err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.HandleShadowFault(gva, false); err != nil {
		t.Fatal(err)
	}
	// The oracle marks the root nested, so the fill plants a root switch.
	if !ctx.RootSwitch() {
		t.Error("oracle-driven root switch not planted")
	}
}

// alwaysNested marks every node nested.
type alwaysNested struct{}

func (alwaysNested) NodeNested(uint16, uint64) bool { return true }

func TestNopMMUAndDemandBacking(t *testing.T) {
	var n NopMMU
	n.InvalidatePage(1, 0)
	n.FlushASID(1)
	n.PWCInvalidateVA(1, 0)
	n.PWCFlushASID(1)
	n.NTLBInvalidateGPA(1, 0)

	// Host fault on an unbacked gpa demand-backs it.
	vm, _ := newTestVM(t, walker.ModeNested)
	hole := uint64(0x3f00_0000) // inside RAM bounds, never allocated
	if _, _, err := vm.TranslateGPA(hole); err == nil {
		t.Skip("gpa unexpectedly backed")
	}
	if err := vm.HandleHostFault(hole, false); err != nil {
		t.Fatalf("HandleHostFault: %v", err)
	}
	if _, _, err := vm.TranslateGPA(hole); err != nil {
		t.Errorf("gpa not backed after host fault: %v", err)
	}
	if vm.Stats().Traps[TrapHostFault] != 1 {
		t.Errorf("host fault traps = %d", vm.Stats().Traps[TrapHostFault])
	}
}

func TestGuestTableFreeRecyclesGPA(t *testing.T) {
	vm, _ := newTestVM(t, walker.ModeShadow)
	ctx, _ := vm.NewProcess(8)
	// Build a deep path, unmap it, and prune: table pages return to the
	// guest allocator via FreeTablePage.
	gva := uint64(0x7f00_0000_0000)
	gpa, _ := vm.AllocGPA(pagetable.Size4K)
	if err := ctx.GPT().Map(gva, gpa, pagetable.Size4K, 0); err != nil {
		t.Fatal(err)
	}
	if err := ctx.GPT().Unmap(gva, pagetable.Size4K); err != nil {
		t.Fatal(err)
	}
	freed := ctx.GPT().FreeEmpty()
	if freed == 0 {
		t.Fatal("nothing pruned")
	}
	// The freed gpa pages are recycled by the next allocations.
	next, err := vm.AllocGPA(pagetable.Size4K)
	if err != nil {
		t.Fatal(err)
	}
	if next >= vmGpaHighWater(vm) {
		t.Errorf("freed guest table page not recycled: got %#x", next)
	}
}

// vmGpaHighWater exposes the bump pointer for the recycle assertion.
func vmGpaHighWater(vm *VM) uint64 { return vm.gpaNext }

func TestDedupAcrossVMs(t *testing.T) {
	mem := memsim.New(512 << 20)
	mk := func(id uint16) *VM {
		cfg := DefaultConfig(walker.ModeNested)
		cfg.RAMBytes = 16 << 20
		vm, err := New(mem, NopMMU{}, id, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return vm
	}
	vmA, vmB := mk(1), mk(2)
	gpaA, _ := vmA.AllocGPA(pagetable.Size4K)
	gpaB, _ := vmB.AllocGPA(pagetable.Size4K)
	if err := DedupAcrossVMs(vmA, gpaA, vmB, gpaB); err != nil {
		t.Fatalf("DedupAcrossVMs: %v", err)
	}
	hpaA, wA, _ := vmA.TranslateGPA(gpaA)
	hpaB, wB, _ := vmB.TranslateGPA(gpaB)
	if hpaA != hpaB || wA || wB {
		t.Fatalf("not shared read-only: %#x/%v vs %#x/%v", hpaA, wA, hpaB, wB)
	}
	if vmA.Stats().PagesDeduped != 1 || vmB.Stats().PagesDeduped != 1 {
		t.Error("dedup not accounted on both VMs")
	}
	// VM B writes: its host COW break gives it a private frame; VM A's
	// mapping is untouched (still the shared frame, still read-only).
	if err := vmB.HandleHostFault(gpaB, true); err != nil {
		t.Fatal(err)
	}
	hpaA2, _, _ := vmA.TranslateGPA(gpaA)
	hpaB2, wB2, _ := vmB.TranslateGPA(gpaB)
	if hpaA2 != hpaA {
		t.Error("VM A's mapping moved")
	}
	if hpaB2 == hpaA || !wB2 {
		t.Errorf("VM B COW not broken: %#x writable=%v", hpaB2, wB2)
	}
	// Distinct memories refuse.
	other := memsim.New(1 << 20)
	cfg := DefaultConfig(walker.ModeNested)
	vmC, err := New(other, NopMMU{}, 3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := DedupAcrossVMs(vmA, gpaA, vmC, gpaB); err == nil {
		t.Error("cross-memory dedup accepted")
	}
	// Same-VM path delegates to DedupPages.
	g2, _ := vmA.AllocGPA(pagetable.Size4K)
	g3, _ := vmA.AllocGPA(pagetable.Size4K)
	if err := DedupAcrossVMs(vmA, g2, vmA, g3); err != nil {
		t.Errorf("same-VM delegate: %v", err)
	}
}

// TestShadowPrefetchSkipsAccessedClearEntries pins the A/D-emulation rule
// for speculative fills: a shadow-fill VM exit prefetches sibling guest
// entries only when the guest already marked them accessed. Prefetching an
// A-clear entry would either fabricate a reference the guest never made or
// hide the first real access from the VMM — both make the guest's clock
// reclaim see different accessed bits than it would natively (found by the
// diffcheck fuzzer as a native-vs-shadow eviction divergence).
func TestShadowPrefetchSkipsAccessedClearEntries(t *testing.T) {
	vm, _ := newTestVM(t, walker.ModeShadow)
	ctx, _ := vm.NewProcess(9)
	base := uint64(0x5000_0000) // aligned to the 8-entry prefetch block
	for i := uint64(0); i < prefetchNum; i++ {
		gpa, err := vm.AllocGPA(pagetable.Size4K)
		if err != nil {
			t.Fatal(err)
		}
		flags := pagetable.FlagWrite | pagetable.FlagUser
		if i%2 == 0 {
			flags |= pagetable.FlagAccessed
		}
		if err := ctx.GPT().Map(base+i*4096, gpa, pagetable.Size4K, flags); err != nil {
			t.Fatal(err)
		}
	}
	// Fault on entry 0 (A set): entries 2, 4, 6 prefetch; 1, 3, 5, 7 must
	// stay unfilled with guest A untouched.
	if _, err := ctx.HandleShadowFault(base, false); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < prefetchNum; i++ {
		gva := base + i*4096
		_, filled := ctx.SPT().TryLookup(gva)
		gr, _ := ctx.GPT().Lookup(gva)
		if i%2 == 0 {
			if !filled {
				t.Errorf("entry %d (A set) not prefetched", i)
			}
			continue
		}
		if filled {
			t.Errorf("entry %d (A clear) was prefetched", i)
		}
		if gr.Entry.Accessed() {
			t.Errorf("entry %d: prefetch set guest A for an untouched page", i)
		}
	}
	// The first real access to an A-clear sibling faults and sets guest A,
	// exactly when a native walk would have.
	if _, err := ctx.HandleShadowFault(base+3*4096, false); err != nil {
		t.Fatal(err)
	}
	gr, _ := ctx.GPT().Lookup(base + 3*4096)
	if !gr.Entry.Accessed() {
		t.Error("guest A not set by the demand fill")
	}
}

// TestGuestTLBFlushSpanSplintered pins the span-flush contract: when the
// host backs a 2M guest page with 4K pages, the hardware TLB can hold up
// to 512 splintered entries for the one guest mapping, so a guest
// invalidation of that page must drop every 4K sub-VA — but it is still a
// single guest instruction, so shadow paging charges exactly one VM exit.
func TestGuestTLBFlushSpanSplintered(t *testing.T) {
	vm, mmu := newTestVM(t, walker.ModeShadow) // host page size 4K
	ctx, _ := vm.NewProcess(4)
	before := vm.Stats().Traps[TrapTLBFlush]
	ctx.GuestTLBFlushSpan(0x4000_0123, pagetable.Size2M)
	if got := len(mmu.invalidates); got != 512 {
		t.Errorf("invalidated %d sub-VAs, want 512", got)
	}
	if len(mmu.invalidates) > 0 {
		if mmu.invalidates[0] != 0x4000_0000 {
			t.Errorf("first invalidation %#x, want span base 0x40000000", mmu.invalidates[0])
		}
	}
	if got := vm.Stats().Traps[TrapTLBFlush] - before; got != 1 {
		t.Errorf("TLB-flush traps = %d, want 1 (one guest instruction)", got)
	}
}

// TestGuestTLBFlushSpanUnsplintered: with the host backing at the guest's
// size there is one hardware entry and the span flush degenerates to the
// single-page GuestTLBFlush.
func TestGuestTLBFlushSpanUnsplintered(t *testing.T) {
	mem := memsim.New(512 << 20)
	mmu := &recordingMMU{}
	cfg := DefaultConfig(walker.ModeShadow)
	cfg.RAMBytes = 64 << 20
	cfg.HostPageSize = pagetable.Size2M
	vm, err := New(mem, mmu, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, _ := vm.NewProcess(4)
	ctx.GuestTLBFlushSpan(0x4000_0123, pagetable.Size2M)
	if got := len(mmu.invalidates); got != 1 {
		t.Errorf("invalidated %d VAs, want 1", got)
	}
}
