package vmm

import (
	"errors"
	"fmt"

	"agilepaging/internal/pagetable"
	"agilepaging/internal/walker"
)

// ModeOracle tells the VMM which guest page-table nodes are under nested
// mode. The agile paging manager (package core) implements it; a nil oracle
// means full shadow paging.
type ModeOracle interface {
	// NodeNested reports whether the guest table page at guest-physical
	// address gptPage is handled in nested mode.
	NodeNested(asid uint16, gptPage uint64) bool
}

// WriteListener observes VM exits caused by guest updates to shadow-covered
// page-table state — write-protection traps on guest PT pages and the
// VMM's own A/D propagation into guest PTEs. The agile policy uses these
// events to find the dynamic parts of the guest page table (paper §III-C,
// "Shadow⇒Nested mode"). old and new are the entry values (equal for A/D
// propagation events).
type WriteListener func(gptPage uint64, level, idx int, old, new pagetable.Entry)

// FreeListener observes the guest OS freeing a guest page-table page (a
// structural edit: table pruning after unmap or THP collapse). The agile
// policy must drop its per-page mode state so a recycled gPA starts clean.
type FreeListener func(gptPage uint64)

// FaultOutcome is the disposition of a shadow-fault VM exit.
type FaultOutcome int

// Fault outcomes.
const (
	// OutcomeRetry means the VMM repaired translation state; the access
	// should be retried.
	OutcomeRetry FaultOutcome = iota
	// OutcomeGuestFault means the fault must be delivered to the guest OS
	// (the guest page table has no mapping).
	OutcomeGuestFault
)

// Context is the VMM state for one guest process: its guest page table and,
// under shadow or agile paging, the shadow page table and write-protection
// bookkeeping.
type Context struct {
	vm   *VM
	asid uint16
	gpt  *pagetable.Table
	spt  *pagetable.Table // nil under pure nested paging

	oracle       ModeOracle
	listener     WriteListener
	freeListener FreeListener

	// protected holds guest-physical addresses of guest PT pages the VMM
	// intercepts writes to (the shadow-covered parts, paper §III-B).
	protected map[uint64]bool

	// rmap maps a guest-physical data page to the gVAs whose shadow leaf
	// entries translate through it, for host-side invalidations.
	rmap map[uint64][]uint64

	// suppress disables the write hook while the VMM itself updates the
	// guest table (A/D propagation).
	suppress bool

	fullNested bool
	rootSwitch bool
}

// NewProcess registers a guest process with the VMM: it builds the guest
// page table in guest RAM and, under shadow or agile paging, an empty
// shadow table with write interception on the guest table.
func (vm *VM) NewProcess(asid uint16) (*Context, error) {
	if _, dup := vm.ctxs[asid]; dup {
		return nil, fmt.Errorf("vmm: duplicate asid %d", asid)
	}
	gpt, err := pagetable.New(vm.mem, guestPhysSpace{vm})
	if err != nil {
		return nil, err
	}
	ctx := &Context{
		vm:        vm,
		asid:      asid,
		gpt:       gpt,
		protected: make(map[uint64]bool),
		rmap:      make(map[uint64][]uint64),
	}
	if vm.cfg.Technique != walker.ModeNested {
		spt, err := pagetable.New(vm.mem, pagetable.HostSpace{Mem: vm.mem})
		if err != nil {
			return nil, err
		}
		ctx.spt = spt
		gpt.SetWriteHook(ctx.onGuestPTWrite)
		gpt.SetFreeHook(ctx.onGuestTableFree)
	}
	vm.ctxs[asid] = ctx
	if vm.current == nil {
		vm.current = ctx
	}
	return ctx, nil
}

// GPT returns the process's guest page table.
func (ctx *Context) GPT() *pagetable.Table { return ctx.gpt }

// SPT returns the shadow page table (nil under nested paging).
func (ctx *Context) SPT() *pagetable.Table { return ctx.spt }

// ASID returns the process's address-space identifier.
func (ctx *Context) ASID() uint16 { return ctx.asid }

// VM returns the owning virtual machine.
func (ctx *Context) VM() *VM { return ctx.vm }

// SetOracle installs the mode oracle (the agile manager).
func (ctx *Context) SetOracle(o ModeOracle) { ctx.oracle = o }

// SetWriteListener installs the protected-write observer.
func (ctx *Context) SetWriteListener(l WriteListener) { ctx.listener = l }

// SetFreeListener installs the guest-table-free observer.
func (ctx *Context) SetFreeListener(l FreeListener) { ctx.freeListener = l }

// FullNested reports whether the context currently runs fully nested.
func (ctx *Context) FullNested() bool { return ctx.fullNested }

// RootSwitch reports whether the walk starts nested at the guest root.
func (ctx *Context) RootSwitch() bool { return ctx.rootSwitch }

// SetFullNested switches the whole context between full nested operation
// and (partial) shadow operation — the paper's short-lived-process policy
// start state (§III-C).
func (ctx *Context) SetFullNested(v bool) {
	if ctx.fullNested == v {
		return
	}
	ctx.fullNested = v
	ctx.FlushHW()
}

// IsProtected reports whether the guest table page at gptPage is
// write-protected.
func (ctx *Context) IsProtected(gptPage uint64) bool { return ctx.protected[gptPage] }

// Protect begins intercepting writes to the guest table page at gptPage.
func (ctx *Context) Protect(gptPage uint64) { ctx.protected[gptPage] = true }

// Unprotect stops intercepting writes to the guest table page at gptPage,
// allowing fast direct updates (nested-mode handling).
func (ctx *Context) Unprotect(gptPage uint64) { delete(ctx.protected, gptPage) }

// ProtectedPages returns the number of write-protected guest table pages.
func (ctx *Context) ProtectedPages() int { return len(ctx.protected) }

// ProtectedPagesByLevel splits the write-protected guest table pages by
// page-table level (0 = root) — the shadow-covered complement of the agile
// manager's nested coverage. Telemetry samples it at epoch boundaries.
func (ctx *Context) ProtectedPagesByLevel() [4]int {
	var out [4]int
	for page := range ctx.protected {
		if info, ok := ctx.gpt.Info(page); ok && info.Level >= 0 && info.Level < len(out) {
			out[info.Level]++
		}
	}
	return out
}

// Regs assembles the hardware register state for this context.
func (ctx *Context) Regs() walker.Regs {
	regs := walker.Regs{
		Mode:    ctx.vm.cfg.Technique,
		GPTRoot: ctx.gpt.Root(),
		HPTRoot: ctx.vm.hpt.Root(),
		ASID:    ctx.asid,
		VMID:    ctx.vm.id,
	}
	switch ctx.vm.cfg.Technique {
	case walker.ModeNested:
		// gptr/hptr only.
	case walker.ModeShadow:
		regs.Root = ctx.spt.Root()
	case walker.ModeAgile:
		regs.FullNested = ctx.fullNested
		regs.RootSwitch = ctx.rootSwitch
		regs.Root = ctx.spt.Root()
		if ctx.rootSwitch && !ctx.fullNested {
			if hpa, _, err := ctx.vm.TranslateGPA(ctx.gpt.Root()); err == nil {
				regs.Root = hpa
			}
		}
	}
	return regs
}

// FlushHW drops all cached translation state of this context.
func (ctx *Context) FlushHW() {
	ctx.vm.mmu.FlushASID(ctx.asid)
	ctx.vm.mmu.PWCFlushASID(ctx.asid)
}

// onGuestPTWrite is the write hook installed on the guest page table. It
// models both the hardware effect of the guest's store (A/D bits in the
// host table for the written page) and the write-protection VM exit with
// shadow resync when the page is shadow-covered.
func (ctx *Context) onGuestPTWrite(pageAddr uint64, level, idx int, old, new pagetable.Entry) {
	if ctx.suppress {
		return
	}
	// Hardware sets A/D in the host table for any guest store to its RAM.
	_ = ctx.vm.hpt.SetFlags(pageAddr, pagetable.FlagAccessed|pagetable.FlagDirty)
	if !ctx.protected[pageAddr] {
		return // direct update: nested-mode or not-yet-shadowed part
	}
	ctx.vm.trap(TrapPTWrite)
	info, ok := ctx.gpt.Info(pageAddr)
	if ok {
		gva := info.VABase | uint64(idx)*pagetable.SpanAtLevel(level)
		ctx.zapShadow(gva, level)
	}
	if ctx.listener != nil {
		ctx.listener(pageAddr, level, idx, old, new)
	}
}

// zapShadow invalidates the shadow state (and hardware caches) covering the
// given gVA at the given level. Because an interior guest entry summarizes a
// whole subtree, the invalidation is a subtree zap: the covering shadow
// entry is cleared and every shadow table page reachable only through it is
// freed, so no shadow state derived from the edited guest subtree survives.
func (ctx *Context) zapShadow(gva uint64, level int) {
	if ctx.spt == nil {
		return
	}
	if zapped, _ := ctx.spt.ZapSubtree(gva, level); zapped {
		ctx.vm.stats.ShadowEntriesZapped++
	}
	if level == pagetable.NumLevels-1 {
		ctx.vm.mmu.InvalidatePage(ctx.asid, gva)
		ctx.vm.mmu.PWCInvalidateVA(ctx.asid, gva)
	} else {
		// An interior change invalidates a whole range; flush the space.
		ctx.FlushHW()
	}
}

// onGuestTableFree is the free hook installed on the guest page table: the
// VMM's half of the shadow-invalidation contract for structural guest edits.
// When the guest OS prunes a table page, the VMM must (1) stop intercepting
// writes to the now-recyclable gPA, (2) drop the shadow subtree that was
// derived from it — including a switching entry pointing at it — and (3)
// tell the agile policy to forget the page's mode state. The hook runs
// before the gPA returns to the guest allocator, so nothing can recycle it
// while stale state remains.
func (ctx *Context) onGuestTableFree(pageAddr uint64, level int, vaBase uint64) {
	ctx.Unprotect(pageAddr)
	if ctx.spt != nil {
		if level == 0 {
			// The root itself is going away (process teardown); any
			// root-switch state dies with it.
			ctx.rootSwitch = false
			ctx.FlushHW()
		} else if zapped, _ := ctx.spt.ZapSubtree(vaBase, level-1); zapped {
			// The covering shadow entry sat in the parent slot pointing at
			// this guest page's span — clear it and everything below.
			ctx.vm.stats.ShadowEntriesZapped++
			if level-1 == pagetable.NumLevels-1 {
				ctx.vm.mmu.InvalidatePage(ctx.asid, vaBase)
				ctx.vm.mmu.PWCInvalidateVA(ctx.asid, vaBase)
			} else {
				ctx.FlushHW()
			}
		}
	}
	if ctx.freeListener != nil {
		ctx.freeListener(pageAddr)
	}
}

// StructuralEdit is the guest OS's advance notice of a structural page-table
// edit (THP collapse): the span [va, va+size) is about to be rebuilt at a
// different level. The VMM drops the covering shadow subtree and cached
// hardware translations for the span. Under shadow (and shadow-covered
// agile) operation the accompanying range invalidation is a VM exit, like
// the full-flush a real guest issues when a range invalidation exceeds the
// batching ceiling. The per-entry unmap writes still trap individually —
// that per-edit interception cost is exactly what the paper charges shadow
// paging for.
func (ctx *Context) StructuralEdit(va uint64, size pagetable.Size) {
	base := va &^ size.Mask()
	if ctx.spt != nil {
		if zapped, _ := ctx.spt.ZapSubtree(base, size.LeafLevel()); zapped {
			ctx.vm.stats.ShadowEntriesZapped++
		}
		if !ctx.fullNested && !ctx.rootSwitch {
			ctx.vm.trap(TrapTLBFlush)
		}
	}
	ctx.FlushHW()
}

// ErrNotShadowed reports a shadow operation on a context without a shadow
// table.
var ErrNotShadowed = errors.New("vmm: context has no shadow table")

// HandleShadowFault services a hardware not-present fault on the shadow (or
// agile) walk: the hidden VM exit in which the VMM extends the shadow table
// by merging the guest and host tables for gva (paper §III-B). It returns
// OutcomeGuestFault when the guest table itself has no mapping, in which
// case the fault is the guest OS's to handle.
func (ctx *Context) HandleShadowFault(gva uint64, write bool) (FaultOutcome, error) {
	if ctx.spt == nil {
		return 0, ErrNotShadowed
	}
	ctx.vm.trap(TrapShadowFill)
	node := ctx.gpt.Root() // guest-physical address of current guest table page
	for level := 0; level < pagetable.NumLevels; level++ {
		if ctx.oracle != nil && ctx.oracle.NodeNested(ctx.asid, node) {
			// This node runs nested: plant the switch and let the hardware
			// walk continue in nested mode.
			if err := ctx.PlantSwitch(node); err != nil {
				return 0, err
			}
			return OutcomeRetry, nil
		}
		ctx.Protect(node)
		e, err := ctx.gpt.EntryAt(gva, level)
		if err != nil {
			return OutcomeGuestFault, nil
		}
		if !e.Present() {
			return OutcomeGuestFault, nil
		}
		size, leafOK := pagetable.SizeAtLevel(level)
		if level == pagetable.NumLevels-1 || (e.Huge() && leafOK) {
			if err := ctx.fillShadowLeaf(gva, level, size, e, write); err != nil {
				return 0, err
			}
			ctx.prefetchFill(gva, level, size)
			return OutcomeRetry, nil
		}
		node = e.Addr()
	}
	panic("vmm: unreachable")
}

// prefetchNum is how many aligned sibling entries one shadow-fill VM exit
// populates alongside the faulting one, as KVM's shadow MMU pte prefetch
// does (PTE_PREFETCH_NUM = 8). Without it, every page of a large working
// set costs its own hidden fault.
const prefetchNum = 8

// prefetchFill speculatively fills, within the same VM exit, the empty
// shadow slots of gva's aligned prefetch block whose guest entries are
// already present.
func (ctx *Context) prefetchFill(gva uint64, level int, size pagetable.Size) {
	block := uint64(prefetchNum) * size.Bytes()
	base := gva &^ (block - 1)
	for va := base; va < base+block; va += size.Bytes() {
		if va == gva&^size.Mask() {
			continue
		}
		if se, err := ctx.spt.EntryAt(va, level); err == nil && se.Present() {
			continue
		}
		ge, err := ctx.gpt.EntryAt(va, level)
		if err != nil || !ge.Present() {
			continue
		}
		if _, leafOK := pagetable.SizeAtLevel(level); level != pagetable.NumLevels-1 && (!ge.Huge() || !leafOK) {
			continue
		}
		// Only prefetch entries the guest already marked accessed. The VMM
		// emulates guest A/D bits for shadow-covered leaves, and a
		// speculative fill must not fabricate an access the guest never
		// made: filling an A-clear entry would either set guest A for an
		// untouched page or create a mapping whose first real access the
		// VMM can no longer observe. Either way the guest's clock reclaim
		// sees different reference bits than it would natively. A-clear
		// entries take the ordinary shadow fault on first touch, which
		// sets guest A exactly when a native walk would.
		if !ge.Accessed() {
			continue
		}
		_ = ctx.fillShadowLeaf(va, level, size, ge, false)
	}
}

// fillShadowLeaf merges one guest leaf entry with the host table into the
// shadow table. Write permission is withheld until the first write so the
// VMM can maintain dirty bits (paper §III-B, "Accessed and Dirty Bits");
// a leaf whose guest dirty bit is already set skips that round trip.
func (ctx *Context) fillShadowLeaf(gva uint64, level int, guestSize pagetable.Size, ge pagetable.Entry, write bool) error {
	// If the host backs this guest page at a smaller size, shadow at the
	// smaller size (paper §V: mixed sizes splinter for the TLB).
	gpaPage := ge.Addr() | (gva & guestSize.Mask() &^ pagetable.Size4K.Mask())
	hr, ok := ctx.vm.hpt.TryLookup(gpaPage)
	if !ok {
		// Host hole: service it as a host fault, then retry the fill.
		if err := ctx.vm.HandleHostFault(gpaPage, write); err != nil {
			return err
		}
		if hr, ok = ctx.vm.hpt.TryLookup(gpaPage); !ok {
			_, err := ctx.vm.hpt.Lookup(gpaPage)
			return err
		}
	}
	effSize := guestSize
	effLevel := level
	if hr.Size.Bytes() < guestSize.Bytes() {
		effSize = hr.Size
		effLevel = effSize.LeafLevel()
	}
	effVA := gva &^ effSize.Mask()
	effGPA := ge.Addr() | (gva & guestSize.Mask() &^ effSize.Mask())
	hpa, hostW, ok := ctx.vm.translateGPA(effGPA)
	if !ok {
		_, _, err := ctx.vm.TranslateGPA(effGPA)
		return err
	}

	sflags := pagetable.FlagPresent | pagetable.FlagAccessed |
		ge.Flags()&(pagetable.FlagUser|pagetable.FlagGlobal|pagetable.FlagNX)
	if effSize != pagetable.Size4K {
		sflags |= pagetable.FlagHuge
	}
	guestFlags := pagetable.FlagAccessed
	if ge.Writable() && hostW && (ge.Dirty() || write) {
		sflags |= pagetable.FlagWrite | pagetable.FlagDirty
		if write {
			guestFlags |= pagetable.FlagDirty
		}
	}
	ctx.setGuestLeafFlags(gva, guestFlags)

	if _, err := ctx.spt.EnsurePath(effVA, effLevel); err != nil {
		return err
	}
	if err := ctx.spt.SetEntryAt(effVA, effLevel, pagetable.MakeEntry(hpa, sflags)); err != nil {
		return err
	}
	ctx.vm.stats.ShadowEntriesFilled++
	key := effGPA &^ pagetable.Size4K.Mask()
	ctx.rmap[key] = append(ctx.rmap[key], effVA)
	return nil
}

// setGuestLeafFlags ORs flags into the guest leaf entry for gva without
// triggering the write-protection hook (the VMM writes the guest table
// directly from host context).
func (ctx *Context) setGuestLeafFlags(gva uint64, flags pagetable.Entry) {
	ctx.suppress = true
	defer func() { ctx.suppress = false }()
	_ = ctx.gpt.SetFlags(gva, flags)
}

// HandleWriteProtect services a write to a translation whose cached entry
// lacks write permission. It distinguishes the VMM's own dirty-bit tracking
// (resolved here, with either a VM exit or the §IV hardware A/D update)
// from a genuine guest-level protection fault such as copy-on-write
// (returned to the guest OS as resolved == false).
func (ctx *Context) HandleWriteProtect(gva uint64) (resolved bool, err error) {
	gr, ok := ctx.gpt.TryLookup(gva)
	if !ok {
		return false, nil // stale translation; guest fault path re-maps
	}
	if !gr.Entry.Writable() {
		return false, nil // guest-level protection fault (e.g. guest COW)
	}
	gpa := gr.PA
	_, hostW, tok := ctx.vm.translateGPA(gpa)
	if !tok || !hostW {
		// Host-level refusal: host COW resolution is a VM exit.
		if err := ctx.vm.HandleHostFault(gpa, true); err != nil {
			return false, err
		}
		ctx.invalidateGVA(gva)
		return true, nil
	}
	if ctx.spt != nil {
		if _, ok := ctx.spt.TryLookup(gva); ok {
			// Shadow-covered page: propagate A/D and grant write.
			if ctx.vm.cfg.HardwareAD {
				ctx.vm.stats.HWADUpdates++
				ctx.vm.stats.HWADRefs += ctx.vm.cfg.Costs.HWADWalkRefs
			} else {
				ctx.vm.trap(TrapADUpdate)
			}
			ctx.setGuestLeafFlags(gva, pagetable.FlagAccessed|pagetable.FlagDirty)
			_ = ctx.spt.SetFlags(gva, pagetable.FlagWrite|pagetable.FlagDirty)
			ctx.invalidateGVA(gva)
			// A/D propagation is a guest page-table update the VMM performed
			// on the guest's behalf; the agile policy counts it when looking
			// for dynamic parts (paper §III-C, §V "Memory pressure").
			if ctx.listener != nil {
				if page, level, idx, e, ok := ctx.leafSlot(gva); ok {
					ctx.listener(page, level, idx, e, e)
				}
			}
			return true, nil
		}
	}
	// Nested-covered translation with guest and host both writable: the
	// cached entry is stale.
	ctx.invalidateGVA(gva)
	return true, nil
}

func (ctx *Context) invalidateGVA(gva uint64) {
	ctx.vm.mmu.InvalidatePage(ctx.asid, gva)
	ctx.vm.mmu.PWCInvalidateVA(ctx.asid, gva)
}

// GuestTLBFlush models a guest INVLPG (single gva) or full flush
// (all == true). Under nested paging the instruction runs unintercepted;
// under shadow paging it is a VM exit so the VMM can resync the shadow
// table; under agile paging only flushes of *shadow-covered* addresses
// exit — addresses whose translation switches to nested mode have no
// shadow state to resync, so their updates and invalidations stay direct
// (paper §III: "reduces the costly VMM interventions by allowing fast
// direct updates").
func (ctx *Context) GuestTLBFlush(gva uint64, all bool) {
	trap := false
	switch ctx.vm.cfg.Technique {
	case walker.ModeShadow:
		trap = true
	case walker.ModeAgile:
		if all {
			trap = !ctx.fullNested && !ctx.rootSwitch
		} else {
			trap = ctx.shadowCovered(gva)
		}
	}
	if trap {
		ctx.vm.trap(TrapTLBFlush)
	}
	if all {
		ctx.FlushHW()
		return
	}
	ctx.invalidateGVA(gva)
}

// GuestTLBFlushSpan models a guest invalidation of one page whose mapping
// covers [gva, gva+size). When the host backs the guest page at its full
// size a single hardware entry caches the translation and this degenerates
// to GuestTLBFlush. When the host page size is smaller — a collapsed 2M
// guest page over 4K host pages — the hardware TLB holds up to 512
// *splintered* entries for the one guest mapping, and invalidating only the
// base VA would leave the rest serving stale (or freed) translations. The
// guest issues one logical invalidation, so the trap decision is made once
// for the whole span, then every splintered sub-VA is dropped.
func (ctx *Context) GuestTLBFlushSpan(gva uint64, size pagetable.Size) {
	base := pagetable.PageBase(gva, size)
	if size == pagetable.Size4K || ctx.vm.cfg.HostPageSize.Bytes() >= size.Bytes() {
		ctx.GuestTLBFlush(base, false)
		return
	}
	trap := false
	switch ctx.vm.cfg.Technique {
	case walker.ModeShadow:
		trap = true
	case walker.ModeAgile:
		trap = ctx.shadowCovered(base)
	}
	if trap {
		ctx.vm.trap(TrapTLBFlush)
	}
	step := pagetable.Size4K.Bytes()
	for off := uint64(0); off < size.Bytes(); off += step {
		ctx.invalidateGVA(base + off)
	}
}

// leafSlot locates the guest leaf entry mapping gva: the guest-physical
// address of the table page holding it, its level and index, and the entry.
func (ctx *Context) leafSlot(gva uint64) (page uint64, level, idx int, e pagetable.Entry, ok bool) {
	page = ctx.gpt.Root()
	for level = 0; level < pagetable.NumLevels; level++ {
		e, err := ctx.gpt.EntryAt(gva, level)
		if err != nil || !e.Present() {
			return 0, 0, 0, 0, false
		}
		size, leafOK := pagetable.SizeAtLevel(level)
		_ = size
		if level == pagetable.NumLevels-1 || (e.Huge() && leafOK) {
			return page, level, pagetable.IndexAt(gva, level), e, true
		}
		page = e.Addr()
	}
	return 0, 0, 0, 0, false
}

// shadowCovered reports whether gva's translation terminates in the shadow
// table (as opposed to switching to nested mode or being unbuilt).
func (ctx *Context) shadowCovered(gva uint64) bool {
	if ctx.spt == nil || ctx.fullNested || ctx.rootSwitch {
		return false
	}
	for level := 0; level < pagetable.NumLevels; level++ {
		e, err := ctx.spt.EntryAt(gva, level)
		if err != nil || !e.Present() {
			return false
		}
		if e.Switching() {
			return false
		}
		size, leafOK := pagetable.SizeAtLevel(level)
		_ = size
		if level == pagetable.NumLevels-1 || (e.Huge() && leafOK) {
			return true
		}
	}
	return false
}

// PlantSwitch moves the guest page-table node at gptPage (and implicitly
// its subtree) under nested mode: the parent shadow entry gets the
// switching bit and the host-physical address of the node (paper §III-A),
// and the node plus all descendants stop being write-protected.
func (ctx *Context) PlantSwitch(gptPage uint64) error {
	if ctx.spt == nil {
		return ErrNotShadowed
	}
	info, ok := ctx.gpt.Info(gptPage)
	if !ok {
		return fmt.Errorf("vmm: %#x is not a guest table page", gptPage)
	}
	for _, p := range ctx.SubtreePages(gptPage) {
		ctx.Unprotect(p)
	}
	if info.Level == 0 {
		ctx.rootSwitch = true
		ctx.FlushHW()
		return nil
	}
	hpa, _, err := ctx.vm.TranslateGPA(gptPage)
	if err != nil {
		return err
	}
	if _, err := ctx.spt.EnsurePath(info.VABase, info.Level-1); err != nil {
		return err
	}
	e := pagetable.MakeEntry(hpa, pagetable.FlagPresent|pagetable.FlagSwitch)
	if err := ctx.spt.SetEntryAt(info.VABase, info.Level-1, e); err != nil {
		return err
	}
	ctx.vm.stats.ShadowEntriesZapped++
	ctx.FlushHW()
	return nil
}

// ClearSwitch moves the node at gptPage back toward shadow mode: the
// switching entry is removed (the next walk refaults and the VMM refills in
// shadow mode per the oracle) and the node is re-protected. Descendants
// stay under whatever mode the oracle reports — the paper requires parents
// to convert before children (§III-C).
func (ctx *Context) ClearSwitch(gptPage uint64) error {
	if ctx.spt == nil {
		return ErrNotShadowed
	}
	info, ok := ctx.gpt.Info(gptPage)
	if !ok {
		return fmt.Errorf("vmm: %#x is not a guest table page", gptPage)
	}
	if info.Level == 0 {
		ctx.rootSwitch = false
	} else if e, err := ctx.spt.EntryAt(info.VABase, info.Level-1); err == nil && e.Switching() {
		if err := ctx.spt.SetEntryAt(info.VABase, info.Level-1, 0); err != nil {
			return err
		}
	}
	ctx.Protect(gptPage)
	ctx.FlushHW()
	return nil
}

// SubtreePages lists the guest-physical addresses of the guest table page
// at gptPage and every table page below it.
func (ctx *Context) SubtreePages(gptPage uint64) []uint64 {
	info, ok := ctx.gpt.Info(gptPage)
	if !ok {
		return nil
	}
	var out []uint64
	var visit func(page uint64, level int)
	visit = func(page uint64, level int) {
		out = append(out, page)
		if level >= pagetable.NumLevels-1 {
			return
		}
		f, ok := ctx.gpt.Space().FrameFor(page)
		if !ok {
			return
		}
		for idx := 0; idx < 512; idx++ {
			e := pagetable.Entry(ctx.vm.mem.ReadEntry(f, idx))
			if e.Present() && !e.Huge() {
				if _, isTable := ctx.gpt.Info(e.Addr()); isTable {
					visit(e.Addr(), level+1)
				}
			}
		}
	}
	visit(gptPage, info.Level)
	return out
}

// hostPageChanged zaps shadow leaves translating through the guest-physical
// page gpa after the VMM changed its host mapping.
func (ctx *Context) hostPageChanged(gpa uint64) {
	key := gpa &^ pagetable.Size4K.Mask()
	gvas := ctx.rmap[key]
	if len(gvas) == 0 {
		return
	}
	delete(ctx.rmap, key)
	for _, gva := range gvas {
		if ctx.spt != nil {
			if r, ok := ctx.spt.TryLookup(gva); ok {
				_ = ctx.spt.SetEntryAt(gva, r.Level, 0)
				ctx.vm.stats.ShadowEntriesZapped++
			}
		}
		ctx.invalidateGVA(gva)
	}
}
