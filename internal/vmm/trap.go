// Package vmm implements the hypervisor of the reproduction: per-VM host
// page tables, shadow page table construction and coherence, guest page
// table write interception, VM-exit (VMtrap) accounting, and the two
// optional hardware optimizations of paper §IV. The agile paging policies
// live in package core; this package supplies the mechanisms they drive.
package vmm

import "fmt"

// TrapKind classifies VMM interventions. The paper defines VMtrap latency
// as "the cycles required for a VMexit trap and its return plus the work
// done by the VMM in response to the VMexit" (§II-B).
type TrapKind int

// Trap kinds, mirroring the events the paper's step-1 trace records.
const (
	// TrapShadowFill is the hidden page fault taken when the hardware walk
	// finds a not-present shadow entry and the VMM fills it from the guest
	// and host tables.
	TrapShadowFill TrapKind = iota
	// TrapPTWrite is a guest write to a write-protected guest page table
	// page, emulated by the VMM while it re-syncs the shadow table.
	TrapPTWrite
	// TrapADUpdate is the protection fault the VMM takes to propagate
	// accessed/dirty bits for shadow-covered pages (paper §III-B).
	TrapADUpdate
	// TrapContextSwitch is the guest CR3 write intercept under shadow or
	// agile paging (paper §III-B "Context-Switches").
	TrapContextSwitch
	// TrapTLBFlush is a guest-initiated INVLPG/flush intercepted so the VMM
	// can keep the shadow table coherent.
	TrapTLBFlush
	// TrapHostFault is a VM exit caused by a host page table violation
	// (demand backing or host copy-on-write).
	TrapHostFault

	// NumTrapKinds is the number of trap kinds.
	NumTrapKinds
)

// String names the trap kind.
func (k TrapKind) String() string {
	switch k {
	case TrapShadowFill:
		return "shadow-fill"
	case TrapPTWrite:
		return "pt-write"
	case TrapADUpdate:
		return "ad-update"
	case TrapContextSwitch:
		return "context-switch"
	case TrapTLBFlush:
		return "tlb-flush"
	case TrapHostFault:
		return "host-fault"
	}
	return fmt.Sprintf("TrapKind(%d)", int(k))
}

// CostModel assigns a cycle cost to each trap kind. The paper measures
// these with LMbench and microbenchmarks and reports "1000s of cycles"
// (§II-B, §VI); the defaults sit in that band.
type CostModel struct {
	Cycles [NumTrapKinds]uint64
	// HWADWalkRefs is the number of extra page-walk memory references
	// charged when the hardware A/D optimization (paper §IV) updates all
	// three tables instead of trapping: "up to 24 memory accesses".
	HWADWalkRefs uint64
}

// DefaultCostModel returns trap costs in the band the paper reports.
func DefaultCostModel() CostModel {
	var c CostModel
	c.Cycles[TrapShadowFill] = 3000
	c.Cycles[TrapPTWrite] = 2700
	c.Cycles[TrapADUpdate] = 2300
	c.Cycles[TrapContextSwitch] = 2000
	c.Cycles[TrapTLBFlush] = 1500
	c.Cycles[TrapHostFault] = 4000
	c.HWADWalkRefs = 24
	return c
}

// Stats accumulates VMM activity.
type Stats struct {
	Traps      [NumTrapKinds]uint64
	TrapCycles uint64

	// HWADUpdates counts A/D propagations performed by the hardware
	// optimization instead of a trap; HWADRefs is the extra walk
	// references they cost.
	HWADUpdates uint64
	HWADRefs    uint64

	// CtxCacheHits counts context switches absorbed by the gptr⇒sptr
	// hardware cache (paper §IV) without a VM exit.
	CtxCacheHits uint64

	// ShadowEntriesFilled and ShadowEntriesZapped size the shadow-table
	// churn.
	ShadowEntriesFilled uint64
	ShadowEntriesZapped uint64

	// PagesDeduped counts content-based sharing merges (paper §V).
	PagesDeduped uint64
}

// TotalTraps sums all trap counts.
func (s Stats) TotalTraps() uint64 {
	var n uint64
	for _, v := range s.Traps {
		n += v
	}
	return n
}
