package guest

import (
	"errors"
	"testing"

	"agilepaging/internal/memsim"
	"agilepaging/internal/pagetable"
)

// failPlatform is fakePlatform plus fault injection: one-shot failure of the
// next page-table page allocation (to force Map to fail mid-collapse) or of
// the next 2M data-page allocation.
type failPlatform struct {
	fakePlatform
	failNextTableAlloc bool
	failNext2MAlloc    bool
}

var errBoom = errors.New("boom")

type failingSpace struct {
	pagetable.Space
	plat *failPlatform
}

func (s failingSpace) AllocTablePage() (uint64, error) {
	if s.plat.failNextTableAlloc {
		s.plat.failNextTableAlloc = false
		return 0, errBoom
	}
	return s.Space.AllocTablePage()
}

func (f *failPlatform) NewProcessTable(asid uint16) (*pagetable.Table, error) {
	return pagetable.New(f.mem, failingSpace{Space: pagetable.HostSpace{Mem: f.mem}, plat: f})
}

func (f *failPlatform) AllocPage(size pagetable.Size) (uint64, error) {
	if size == pagetable.Size2M && f.failNext2MAlloc {
		f.failNext2MAlloc = false
		return 0, errBoom
	}
	return f.fakePlatform.AllocPage(size)
}

func newFailOS(t *testing.T) (*OS, *failPlatform) {
	t.Helper()
	p := &failPlatform{fakePlatform: fakePlatform{mem: memsim.New(256 << 20)}}
	o := New(p)
	if _, err := o.CreateProcess(1, 1); err != nil {
		t.Fatal(err)
	}
	return o, p
}

// collapseSetup maps and populates one 2M range of 4K pages and returns its
// base and the original 512 leaf entries.
func collapseSetup(t *testing.T, o *OS) (base uint64, old [512]pagetable.Entry) {
	t.Helper()
	base = 0x4000_0000
	if _, err := o.Mmap(1, base, 2<<20, pagetable.Size4K, true); err != nil {
		t.Fatal(err)
	}
	if err := o.Populate(1, base); err != nil {
		t.Fatal(err)
	}
	p, _ := o.Process(1)
	for i := range old {
		res, ok := p.PT.TryLookup(base + uint64(i)<<12)
		if !ok {
			t.Fatalf("page %d not populated", i)
		}
		old[i] = res.Entry
	}
	return base, old
}

// TestCollapseResolvesCOW pins the COW-hazard fix: collapsing a range with
// pending COW pages must not free the shared frames and must not leave COW
// marks behind; the new 2M page is a private copy.
func TestCollapseResolvesCOW(t *testing.T) {
	o, plat := newFailOS(t)
	base, old := collapseSetup(t, o)
	if err := o.MarkCOW(1, base); err != nil {
		t.Fatal(err)
	}
	p, _ := o.Process(1)
	if !p.IsCOW(base) {
		t.Fatal("setup: range not COW")
	}
	if err := o.Collapse(1, base); err != nil {
		t.Fatalf("Collapse of COW range: %v", err)
	}
	// Shared frames stay alive for their other referents.
	freed := make(map[uint64]bool)
	for _, pa := range plat.freed {
		freed[pa] = true
	}
	for i, e := range old {
		if freed[e.Addr()] {
			t.Fatalf("COW-shared frame %#x (page %d) was freed", e.Addr(), i)
		}
	}
	// COW marks in the range are resolved by the copy.
	for i := 0; i < 512; i++ {
		if p.IsCOW(base + uint64(i)<<12) {
			t.Fatalf("page %d still marked COW after collapse", i)
		}
	}
	// The private 2M copy of a writable region is writable and dirty.
	res, err := p.PT.Lookup(base)
	if err != nil {
		t.Fatal(err)
	}
	if res.Size != pagetable.Size2M || !res.Entry.Writable() || !res.Entry.Dirty() {
		t.Errorf("collapsed entry = size %v flags %v, want private writable 2M", res.Size, res.Entry)
	}
}

// TestCollapseReadOnlyRegionStaysReadOnly: the old code granted FlagWrite
// unconditionally; the paper's guest OS must preserve region permissions.
func TestCollapseReadOnlyRegionStaysReadOnly(t *testing.T) {
	o, _ := newFailOS(t)
	base := uint64(0x4000_0000)
	if _, err := o.Mmap(1, base, 2<<20, pagetable.Size4K, false); err != nil {
		t.Fatal(err)
	}
	if err := o.Populate(1, base); err != nil {
		t.Fatal(err)
	}
	if err := o.Collapse(1, base); err != nil {
		t.Fatal(err)
	}
	p, _ := o.Process(1)
	res, err := p.PT.Lookup(base)
	if err != nil {
		t.Fatal(err)
	}
	if res.Entry.Writable() {
		t.Error("collapse of a read-only region produced a writable 2M entry")
	}
}

// TestCollapseAllocFailureLeavesStateUntouched: a failed 2M allocation is
// decided before any table edit, so the range is untouched and retryable.
func TestCollapseAllocFailureLeavesStateUntouched(t *testing.T) {
	o, plat := newFailOS(t)
	base, old := collapseSetup(t, o)
	plat.failNext2MAlloc = true
	if err := o.Collapse(1, base); !errors.Is(err, errBoom) {
		t.Fatalf("Collapse = %v, want injected alloc failure", err)
	}
	p, _ := o.Process(1)
	for i, e := range old {
		res, ok := p.PT.TryLookup(base + uint64(i)<<12)
		if !ok || res.Size != pagetable.Size4K || res.Entry.Addr() != e.Addr() {
			t.Fatalf("page %d disturbed by failed collapse", i)
		}
	}
	if len(plat.structuralEdits) != 0 {
		t.Error("failed allocation still sent a structural-edit notice")
	}
	if o.Stats().Collapses != 0 {
		t.Errorf("Collapses = %d after failed collapse", o.Stats().Collapses)
	}
	// The range remains collapsible.
	if err := o.Collapse(1, base); err != nil {
		t.Fatalf("retry after failed alloc: %v", err)
	}
}

// TestCollapseMapFailureRollsBack pins the error-path fix: when the 2M
// install fails mid-rewrite, the prior 4K mappings are restored entry for
// entry and the fresh 2M frame is freed — no leak, no half-unmapped range.
func TestCollapseMapFailureRollsBack(t *testing.T) {
	o, plat := newFailOS(t)
	base, old := collapseSetup(t, o)
	// The prune frees the whole table chain under the 2M slot, so the 2M
	// Map's first table allocation is the next one; fail it.
	plat.failNextTableAlloc = true
	err := o.Collapse(1, base)
	if !errors.Is(err, errBoom) {
		t.Fatalf("Collapse = %v, want injected map failure", err)
	}
	p, _ := o.Process(1)
	for i, e := range old {
		res, ok := p.PT.TryLookup(base + uint64(i)<<12)
		if !ok {
			t.Fatalf("page %d left unmapped after rollback", i)
		}
		if res.Size != pagetable.Size4K || res.Entry.Addr() != e.Addr() {
			t.Fatalf("page %d = %v %#x, want restored 4K %#x", i, res.Size, res.Entry.Addr(), e.Addr())
		}
		if res.Entry.Flags() != e.Flags() {
			t.Fatalf("page %d flags = %v, want %v", i, res.Entry.Flags(), e.Flags())
		}
	}
	// The 2M frame was released (it is the only 2M-sized free).
	found := false
	for _, pa := range plat.freed {
		if pa%pagetable.Size2M.Bytes() == 0 && pa >= 0 {
			found = true
		}
	}
	if !found {
		t.Error("fresh 2M frame leaked on map failure")
	}
	if o.Stats().Collapses != 0 {
		t.Errorf("Collapses = %d after failed collapse", o.Stats().Collapses)
	}
	// The range remains collapsible once the fault clears.
	if err := o.Collapse(1, base); err != nil {
		t.Fatalf("retry after rollback: %v", err)
	}
	if o.Stats().Collapses != 1 {
		t.Errorf("Collapses = %d after retry", o.Stats().Collapses)
	}
}

// TestCollapseUnsuitableCases: every refusal is decided before mutation and
// reports ErrCollapseUnsuitable, so the machine layer can skip deterministically.
func TestCollapseUnsuitableCases(t *testing.T) {
	o, _ := newFailOS(t)
	base := uint64(0x4000_0000)
	// Region smaller than the 2M span.
	if _, err := o.Mmap(1, base, 64<<12, pagetable.Size4K, true); err != nil {
		t.Fatal(err)
	}
	if err := o.Populate(1, base); err != nil {
		t.Fatal(err)
	}
	if err := o.Collapse(1, base); !errors.Is(err, ErrCollapseUnsuitable) {
		t.Errorf("collapse crossing region end = %v, want ErrCollapseUnsuitable", err)
	}
	// No region at all.
	if err := o.Collapse(1, 0x9000_0000); !errors.Is(err, ErrCollapseUnsuitable) {
		t.Errorf("collapse outside regions = %v, want ErrCollapseUnsuitable", err)
	}
	if o.Stats().Collapses != 0 {
		t.Errorf("Collapses = %d", o.Stats().Collapses)
	}
}

// TestCollapseNotifiesBeforeRewrite: the structural-edit notice precedes the
// first table edit, so a VMM drops shadow state before it can go stale.
func TestCollapseNotifiesBeforeRewrite(t *testing.T) {
	o, plat := newFailOS(t)
	base, _ := collapseSetup(t, o)
	if err := o.Collapse(1, base); err != nil {
		t.Fatal(err)
	}
	if len(plat.structuralEdits) != 1 || plat.structuralEdits[0] != base {
		t.Errorf("structural edits = %#v, want [%#x]", plat.structuralEdits, base)
	}
}
