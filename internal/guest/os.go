// Package guest implements the guest operating system of the simulation:
// processes with region-based address spaces, demand paging, copy-on-write,
// munmap/remap churn, a clock-style page reclaimer and context switches —
// the sources of the page-table updates whose cost the paper's techniques
// trade off.
//
// The same OS runs both natively and inside a VM: the Platform interface
// abstracts where backing pages come from and how TLB invalidations reach
// the hardware (directly when native, possibly via VM exits when shadowed).
package guest

import (
	"errors"
	"fmt"
	"sort"

	"agilepaging/internal/pagetable"
)

// Platform abstracts the layer below the OS.
type Platform interface {
	// NewProcessTable creates the page table for a new process in the
	// appropriate address space (host space natively, guest-physical space
	// in a VM, with VMM write interception installed).
	NewProcessTable(asid uint16) (*pagetable.Table, error)
	// AllocPage allocates a naturally-aligned backing page.
	AllocPage(size pagetable.Size) (uint64, error)
	// FreePage returns a backing page.
	FreePage(pa uint64, size pagetable.Size)
	// TLBInvalidate is the OS's INVLPG for one page of asid.
	TLBInvalidate(asid uint16, va uint64)
	// TLBInvalidateSpan invalidates every cached translation for the single
	// page mapping [va, va+size). Natively one TLB entry covers the whole
	// page, so this is a plain INVLPG; a hypervisor platform must also cover
	// splintered entries when the host backs the page at a smaller size
	// (a collapsed 2M guest page over 4K host pages caches up to 512
	// distinct hardware translations).
	TLBInvalidateSpan(asid uint16, va uint64, size pagetable.Size)
	// TLBFlush is the OS's full TLB flush for asid.
	TLBFlush(asid uint16)
	// StructuralEdit is the OS's advance notice that [va, va+size) is about
	// to be rebuilt at a different page-table level (THP collapse). Natively
	// it is a range invalidation; under a VMM it additionally drops the
	// covering shadow subtree before the guest tables change underneath it.
	StructuralEdit(asid uint16, va uint64, size pagetable.Size)
}

// Stats counts guest OS activity.
type Stats struct {
	PageFaults     uint64 // demand-paging faults served
	COWBreaks      uint64 // copy-on-write resolutions
	MapsInstalled  uint64 // leaf mappings created
	Unmapped       uint64 // leaf mappings removed
	ReclaimScanned uint64 // pages visited by the clock hand
	ReclaimEvicted uint64
	CtxSwitches    uint64
	Collapses      uint64 // THP promotions (4K x512 -> 2M)
}

// Errors.
//
// Concurrency contract: these are the package's only package-level
// variables; they are assigned once at init and never written again, so
// concurrent simulations (one OS per cpu.Machine, driven in parallel by
// internal/sweep) may compare against them freely.
var (
	ErrNoProcess = errors.New("guest: no such process")
	ErrNoRegion  = errors.New("guest: address outside any region")
	ErrOverlap   = errors.New("guest: region overlaps existing mapping")
	// ErrCollapseUnsuitable reports a THP collapse refused before any state
	// changed: the range is not fully 4K-mapped, crosses a region boundary,
	// or has no region at all. khugepaged simply skips such ranges.
	ErrCollapseUnsuitable = errors.New("guest: range unsuitable for collapse")
)

// Region is a VMA: a contiguous range of the process address space with a
// page-size policy.
type Region struct {
	Base     uint64
	Length   uint64
	PageSize pagetable.Size
	Writable bool
}

// End returns the first address past the region.
func (r Region) End() uint64 { return r.Base + r.Length }

// Process is one guest process.
type Process struct {
	PID  int
	ASID uint16
	PT   *pagetable.Table

	regions map[uint64]*Region // by base
	sorted  []uint64           // sorted bases, rebuilt on change

	// cow marks page bases currently shared copy-on-write.
	cow map[uint64]bool

	// clockHand remembers the reclaim scan position.
	clockHand int

	// nextBase is a simple bump allocator for AllocRegion.
	nextBase uint64
}

// OS is the guest operating system.
type OS struct {
	plat    Platform
	procs   map[int]*Process
	current *Process
	stats   Stats
}

// New creates an OS on the given platform.
func New(plat Platform) *OS {
	return &OS{plat: plat, procs: make(map[int]*Process)}
}

// Stats returns accumulated counters.
func (o *OS) Stats() Stats { return o.stats }

// ResetStats zeroes the counters.
func (o *OS) ResetStats() { o.stats = Stats{} }

// Reset tears down every process and restores the OS to its post-New
// state. It does not free the processes' pages or page tables individually:
// Reset is part of whole-machine recycling, where the backing Memory is
// reset wholesale and per-page frees would be wasted work on frames already
// reclaimed.
func (o *OS) Reset() {
	clear(o.procs)
	o.current = nil
	o.stats = Stats{}
}

// CreateProcess registers a new process. The first process created becomes
// current.
func (o *OS) CreateProcess(pid int, asid uint16) (*Process, error) {
	if _, dup := o.procs[pid]; dup {
		return nil, fmt.Errorf("guest: duplicate pid %d", pid)
	}
	pt, err := o.plat.NewProcessTable(asid)
	if err != nil {
		return nil, err
	}
	p := &Process{
		PID:      pid,
		ASID:     asid,
		PT:       pt,
		regions:  make(map[uint64]*Region),
		cow:      make(map[uint64]bool),
		nextBase: 0x0000_1000_0000,
	}
	o.procs[pid] = p
	if o.current == nil {
		o.current = p
	}
	return p, nil
}

// Process returns the process with the given pid.
func (o *OS) Process(pid int) (*Process, error) {
	p, ok := o.procs[pid]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrNoProcess, pid)
	}
	return p, nil
}

// Current returns the running process.
func (o *OS) Current() *Process { return o.current }

// ContextSwitch makes pid current and returns the process. The machine
// layer performs the platform-specific CR3 handling.
func (o *OS) ContextSwitch(pid int) (*Process, error) {
	p, err := o.Process(pid)
	if err != nil {
		return nil, err
	}
	if p != o.current {
		o.stats.CtxSwitches++
		o.current = p
	}
	return p, nil
}

// Mmap registers a region [addr, addr+length) with the given page-size
// policy. Pages are demand-faulted; use Populate for eager mapping.
func (o *OS) Mmap(pid int, addr, length uint64, size pagetable.Size, writable bool) (*Region, error) {
	p, err := o.Process(pid)
	if err != nil {
		return nil, err
	}
	addr = pagetable.PageBase(addr, size)
	length = (length + size.Mask()) &^ size.Mask()
	if length == 0 {
		return nil, errors.New("guest: zero-length mmap")
	}
	for _, r := range p.regions {
		if addr < r.End() && addr+length > r.Base {
			return nil, fmt.Errorf("%w: [%#x,%#x)", ErrOverlap, addr, addr+length)
		}
	}
	r := &Region{Base: addr, Length: length, PageSize: size, Writable: writable}
	p.regions[addr] = r
	p.rebuildIndex()
	return r, nil
}

// AllocRegion places a region of the given length at an OS-chosen address.
func (o *OS) AllocRegion(pid int, length uint64, size pagetable.Size, writable bool) (*Region, error) {
	p, err := o.Process(pid)
	if err != nil {
		return nil, err
	}
	base := (p.nextBase + size.Mask()) &^ size.Mask()
	length = (length + size.Mask()) &^ size.Mask()
	p.nextBase = base + length + size.Bytes() // guard gap
	return o.Mmap(pid, base, length, size, writable)
}

// Munmap removes the region containing addr, unmapping every populated page
// (each unmap is a guest page-table write) and invalidating the TLB.
func (o *OS) Munmap(pid int, addr uint64) error {
	p, err := o.Process(pid)
	if err != nil {
		return err
	}
	r := p.regionAt(addr)
	if r == nil {
		return fmt.Errorf("%w: %#x", ErrNoRegion, addr)
	}
	for va := r.Base; va < r.End(); va += r.PageSize.Bytes() {
		res, ok := p.PT.TryLookup(va)
		if !ok {
			continue
		}
		// The mapping may be larger than the region's page-size policy if
		// pages were collapsed (THP); unmap at the mapped granularity.
		base := pagetable.PageBase(va, res.Size)
		if err := p.PT.Unmap(base, res.Size); err != nil {
			return err
		}
		o.plat.FreePage(res.Entry.Addr(), res.Size)
		o.plat.TLBInvalidateSpan(p.ASID, base, res.Size)
		o.stats.Unmapped++
		delete(p.cow, base)
	}
	delete(p.regions, r.Base)
	p.rebuildIndex()
	return nil
}

// Collapse promotes the 512 4K mappings covering the 2M-aligned address
// va into a single 2M mapping, as transparent-huge-page support does
// (paper §V "Large Page Support", §VI's THP setting). Every page of the
// range must currently be mapped at 4K. The promotion rewrites the page
// table — 512 unmaps, a table prune, and a 2M install — which is exactly
// the kind of burst that is cheap under nested paging and expensive under
// shadow paging.
func (o *OS) Collapse(pid int, va uint64) error {
	p, err := o.Process(pid)
	if err != nil {
		return err
	}
	base := pagetable.PageBase(va, pagetable.Size2M)
	r := p.regionAt(base)
	if r == nil {
		return fmt.Errorf("%w: %w: %#x", ErrCollapseUnsuitable, ErrNoRegion, base)
	}
	if base < r.Base || base+pagetable.Size2M.Bytes() > r.End() {
		return fmt.Errorf("%w: %#x crosses the boundary of region [%#x,%#x)",
			ErrCollapseUnsuitable, base, r.Base, r.End())
	}
	// Verify the whole range is 4K-mapped, and record the old entries so a
	// mid-rewrite failure can restore them. COW-shared pages are resolved by
	// the copy the collapse itself performs (khugepaged collapses such
	// ranges by copying into the new huge page): the old shared frames stay
	// alive for their other referents and the 2M page comes up private.
	var old [512]pagetable.Entry
	for i := range old {
		off := uint64(i) * pagetable.Size4K.Bytes()
		res, ok := p.PT.TryLookup(base + off)
		if !ok {
			return fmt.Errorf("%w: %#x is not mapped", ErrCollapseUnsuitable, base+off)
		}
		if res.Size != pagetable.Size4K {
			return fmt.Errorf("%w: %#x already mapped at %s", ErrCollapseUnsuitable, base+off, res.Size)
		}
		old[i] = res.Entry
	}
	pa, err := o.plat.AllocPage(pagetable.Size2M)
	if err != nil {
		return err
	}
	// Notify the platform before the first table edit: under shadow or
	// agile paging the VMM must drop the shadow subtree covering the range
	// (and natively the whole range's TLB entries go) before the guest
	// table is rebuilt underneath it.
	o.plat.StructuralEdit(p.ASID, base, pagetable.Size2M)
	restore := func(n int) {
		for i := 0; i < n; i++ {
			off := uint64(i) * pagetable.Size4K.Bytes()
			_ = p.PT.Map(base+off, old[i].Addr(), pagetable.Size4K, old[i].Flags())
		}
		o.plat.FreePage(pa, pagetable.Size2M)
		o.plat.TLBFlush(p.ASID)
	}
	for i := range old {
		if err := p.PT.Unmap(base+uint64(i)*pagetable.Size4K.Bytes(), pagetable.Size4K); err != nil {
			restore(i)
			return err
		}
	}
	p.PT.FreeEmpty() // release the now-empty leaf table so the slot can hold a 2M entry
	flags := pagetable.FlagUser | pagetable.FlagAccessed
	if r.Writable {
		// The copy into the new huge page dirties it; a read-only region's
		// collapse stays read-only (and the next write faults as usual).
		flags |= pagetable.FlagWrite | pagetable.FlagDirty
	}
	if err := p.PT.Map(base, pa, pagetable.Size2M, flags); err != nil {
		restore(len(old))
		return err
	}
	for i, e := range old {
		off := uint64(i) * pagetable.Size4K.Bytes()
		if p.cow[base+off] {
			// Still shared with another snapshot; not ours to free.
			delete(p.cow, base+off)
			continue
		}
		o.plat.FreePage(e.Addr(), pagetable.Size4K)
	}
	o.stats.Collapses++
	return nil
}

// Populate eagerly maps every page of the region containing addr.
func (o *OS) Populate(pid int, addr uint64) error {
	p, err := o.Process(pid)
	if err != nil {
		return err
	}
	r := p.regionAt(addr)
	if r == nil {
		return fmt.Errorf("%w: %#x", ErrNoRegion, addr)
	}
	for va := r.Base; va < r.End(); va += r.PageSize.Bytes() {
		if _, ok := p.PT.TryLookup(va); ok {
			continue
		}
		// Populated pages model initialized data: the program wrote them
		// while building its working set, so they are accessed and dirty.
		if err := o.mapOne(p, r, va, true); err != nil {
			return err
		}
	}
	return nil
}

// HandlePageFault services a page fault at va: demand allocation for
// unmapped pages inside a region, copy-on-write resolution for writes to
// COW pages. It returns ErrNoRegion for a true segmentation fault.
func (o *OS) HandlePageFault(pid int, va uint64, write bool) error {
	p, err := o.Process(pid)
	if err != nil {
		return err
	}
	r := p.regionAt(va)
	if r == nil {
		return fmt.Errorf("%w: %#x", ErrNoRegion, va)
	}
	o.stats.PageFaults++
	base := pagetable.PageBase(va, r.PageSize)
	if res, ok := p.PT.TryLookup(base); ok {
		if write && p.cow[base] {
			return o.breakCOW(p, r, base, res)
		}
		// Mapped and not COW: spurious fault (stale TLB state); nothing to do.
		return nil
	}
	return o.mapOne(p, r, base, write)
}

// mapOne demand-allocates one page of region r at va.
func (o *OS) mapOne(p *Process, r *Region, va uint64, write bool) error {
	pa, err := o.plat.AllocPage(r.PageSize)
	if err != nil {
		return err
	}
	flags := pagetable.FlagUser
	if r.Writable {
		flags |= pagetable.FlagWrite
	}
	if write {
		flags |= pagetable.FlagDirty | pagetable.FlagAccessed
	}
	if err := p.PT.Map(va, pa, r.PageSize, flags); err != nil {
		return err
	}
	o.stats.MapsInstalled++
	return nil
}

// MarkCOW write-protects every populated page of the region containing
// addr, as fork or a snapshot does. Each page costs a guest page-table
// write plus a TLB invalidation — the exact sequence the paper cites as
// requiring two VMtraps per page under shadow paging (§II-B).
func (o *OS) MarkCOW(pid int, addr uint64) error {
	p, err := o.Process(pid)
	if err != nil {
		return err
	}
	r := p.regionAt(addr)
	if r == nil {
		return fmt.Errorf("%w: %#x", ErrNoRegion, addr)
	}
	for va := r.Base; va < r.End(); va += r.PageSize.Bytes() {
		if _, ok := p.PT.TryLookup(va); !ok {
			continue
		}
		if err := p.PT.ClearFlags(va, pagetable.FlagWrite); err != nil {
			return err
		}
		p.cow[va] = true
		o.plat.TLBInvalidate(p.ASID, va)
	}
	return nil
}

// breakCOW gives va a private writable copy.
func (o *OS) breakCOW(p *Process, r *Region, va uint64, res pagetable.WalkResult) error {
	pa, err := o.plat.AllocPage(r.PageSize)
	if err != nil {
		return err
	}
	flags := pagetable.FlagUser | pagetable.FlagWrite | pagetable.FlagDirty | pagetable.FlagAccessed
	if err := p.PT.Remap(va, pa, res.Size, flags); err != nil {
		return err
	}
	delete(p.cow, va)
	o.plat.TLBInvalidateSpan(p.ASID, pagetable.PageBase(va, res.Size), res.Size)
	o.stats.COWBreaks++
	return nil
}

// ReclaimScan runs the clock algorithm over up to n populated pages of the
// current process: referenced pages get their accessed bit cleared (a
// page-table write plus invalidation); unreferenced pages are evicted.
// This is the paper's memory-pressure scenario (§V).
func (o *OS) ReclaimScan(pid int, n int) (evicted int, err error) {
	p, perr := o.Process(pid)
	if perr != nil {
		return 0, perr
	}
	var leaves []pagetable.Leaf
	p.PT.VisitLeaves(func(l pagetable.Leaf) bool {
		leaves = append(leaves, l)
		return true
	})
	if len(leaves) == 0 {
		return 0, nil
	}
	if n > len(leaves) {
		// Never revisit a leaf within one scan: a page evicted earlier in
		// the pass must not be touched again through the stale snapshot.
		n = len(leaves)
	}
	for i := 0; i < n; i++ {
		l := leaves[(p.clockHand+i)%len(leaves)]
		o.stats.ReclaimScanned++
		if l.Entry.Accessed() {
			if err := p.PT.ClearFlags(l.VA, pagetable.FlagAccessed); err != nil {
				return evicted, err
			}
			o.plat.TLBInvalidateSpan(p.ASID, l.VA, l.Size)
			continue
		}
		if err := p.PT.Unmap(l.VA, l.Size); err != nil {
			return evicted, err
		}
		o.plat.FreePage(l.Entry.Addr(), l.Size)
		o.plat.TLBInvalidateSpan(p.ASID, l.VA, l.Size)
		o.stats.Unmapped++
		o.stats.ReclaimEvicted++
		evicted++
	}
	p.clockHand = (p.clockHand + n) % len(leaves)
	return evicted, nil
}

// Region lookup helpers.

func (p *Process) regionAt(va uint64) *Region {
	i := sort.Search(len(p.sorted), func(i int) bool { return p.sorted[i] > va })
	if i == 0 {
		return nil
	}
	r := p.regions[p.sorted[i-1]]
	if va >= r.Base && va < r.End() {
		return r
	}
	return nil
}

func (p *Process) rebuildIndex() {
	p.sorted = p.sorted[:0]
	for b := range p.regions {
		p.sorted = append(p.sorted, b)
	}
	sort.Slice(p.sorted, func(i, j int) bool { return p.sorted[i] < p.sorted[j] })
}

// Regions returns the process's regions in address order.
func (p *Process) Regions() []Region {
	out := make([]Region, 0, len(p.sorted))
	for _, b := range p.sorted {
		out = append(out, *p.regions[b])
	}
	return out
}

// RegionContaining returns the region covering va.
func (p *Process) RegionContaining(va uint64) (Region, bool) {
	r := p.regionAt(va)
	if r == nil {
		return Region{}, false
	}
	return *r, true
}

// IsCOW reports whether the page at va is currently marked copy-on-write.
func (p *Process) IsCOW(va uint64) bool { return p.cow[va] }
