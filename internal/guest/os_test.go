package guest

import (
	"errors"
	"testing"

	"agilepaging/internal/memsim"
	"agilepaging/internal/pagetable"
)

// fakePlatform backs pages from simulated memory and records invalidations.
type fakePlatform struct {
	mem             *memsim.Memory
	invalidates     []uint64
	flushes         int
	freed           []uint64
	structuralEdits []uint64
}

func newFakePlatform() *fakePlatform {
	return &fakePlatform{mem: memsim.New(256 << 20)}
}

func (f *fakePlatform) NewProcessTable(asid uint16) (*pagetable.Table, error) {
	return pagetable.New(f.mem, pagetable.HostSpace{Mem: f.mem})
}

func (f *fakePlatform) AllocPage(size pagetable.Size) (uint64, error) {
	n := int(size.Bytes() / memsim.FrameSize)
	fr, err := f.mem.AllocContiguousAligned(n, n)
	if err != nil {
		return 0, err
	}
	return fr.Addr(), nil
}

func (f *fakePlatform) FreePage(pa uint64, size pagetable.Size) {
	f.freed = append(f.freed, pa)
}

func (f *fakePlatform) TLBInvalidate(asid uint16, va uint64) {
	f.invalidates = append(f.invalidates, va)
}

func (f *fakePlatform) TLBInvalidateSpan(asid uint16, va uint64, size pagetable.Size) {
	f.invalidates = append(f.invalidates, va)
}

func (f *fakePlatform) TLBFlush(asid uint16) { f.flushes++ }

func (f *fakePlatform) StructuralEdit(asid uint16, va uint64, size pagetable.Size) {
	f.structuralEdits = append(f.structuralEdits, va)
}

func newOS(t *testing.T) (*OS, *fakePlatform) {
	t.Helper()
	p := newFakePlatform()
	o := New(p)
	if _, err := o.CreateProcess(1, 1); err != nil {
		t.Fatal(err)
	}
	return o, p
}

func TestCreateProcess(t *testing.T) {
	o, _ := newOS(t)
	if o.Current() == nil || o.Current().PID != 1 {
		t.Fatal("first process not current")
	}
	if _, err := o.CreateProcess(1, 2); err == nil {
		t.Error("duplicate pid accepted")
	}
	if _, err := o.Process(99); !errors.Is(err, ErrNoProcess) {
		t.Errorf("err = %v", err)
	}
}

func TestMmapAndDemandFault(t *testing.T) {
	o, _ := newOS(t)
	r, err := o.Mmap(1, 0x4000_0000, 64<<12, pagetable.Size4K, true)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := o.Process(1)
	// Nothing mapped yet (demand paging).
	if _, err := p.PT.Lookup(r.Base); err == nil {
		t.Error("page mapped before fault")
	}
	if err := o.HandlePageFault(1, r.Base+0x123, false); err != nil {
		t.Fatalf("HandlePageFault: %v", err)
	}
	res, err := p.PT.Lookup(r.Base)
	if err != nil {
		t.Fatalf("page not mapped after fault: %v", err)
	}
	if !res.Entry.Writable() || !res.Entry.User() {
		t.Errorf("flags = %v", res.Entry)
	}
	if o.Stats().PageFaults != 1 || o.Stats().MapsInstalled != 1 {
		t.Errorf("stats = %+v", o.Stats())
	}
	// Fault outside any region is a segfault.
	if err := o.HandlePageFault(1, 0xdead_0000_0000, false); !errors.Is(err, ErrNoRegion) {
		t.Errorf("err = %v, want ErrNoRegion", err)
	}
}

func TestMmapOverlapRejected(t *testing.T) {
	o, _ := newOS(t)
	if _, err := o.Mmap(1, 0x1000_0000, 1<<20, pagetable.Size4K, true); err != nil {
		t.Fatal(err)
	}
	if _, err := o.Mmap(1, 0x1000_8000, 1<<20, pagetable.Size4K, true); !errors.Is(err, ErrOverlap) {
		t.Errorf("err = %v, want ErrOverlap", err)
	}
	if _, err := o.Mmap(1, 0x2000_0000, 0, pagetable.Size4K, true); err == nil {
		t.Error("zero-length mmap accepted")
	}
}

func TestAllocRegionNonOverlapping(t *testing.T) {
	o, _ := newOS(t)
	var regions []*Region
	for i := 0; i < 10; i++ {
		r, err := o.AllocRegion(1, 1<<21, pagetable.Size4K, true)
		if err != nil {
			t.Fatal(err)
		}
		regions = append(regions, r)
	}
	for i := range regions {
		for j := i + 1; j < len(regions); j++ {
			a, b := regions[i], regions[j]
			if a.Base < b.End() && b.Base < a.End() {
				t.Fatalf("regions %d and %d overlap", i, j)
			}
		}
	}
}

func TestPopulateAndMunmap(t *testing.T) {
	o, plat := newOS(t)
	r, _ := o.Mmap(1, 0x4000_0000, 16<<12, pagetable.Size4K, true)
	if err := o.Populate(1, r.Base); err != nil {
		t.Fatal(err)
	}
	p, _ := o.Process(1)
	if got := p.PT.CountLeaves(); got != 16 {
		t.Fatalf("populated %d pages, want 16", got)
	}
	if err := o.Munmap(1, r.Base+0x3000); err != nil {
		t.Fatal(err)
	}
	if got := p.PT.CountLeaves(); got != 0 {
		t.Errorf("%d leaves after munmap", got)
	}
	if len(plat.invalidates) < 16 {
		t.Errorf("only %d TLB invalidations for 16-page munmap", len(plat.invalidates))
	}
	if len(plat.freed) != 16 {
		t.Errorf("%d pages freed", len(plat.freed))
	}
	if _, ok := p.RegionContaining(r.Base); ok {
		t.Error("region survived munmap")
	}
	if err := o.Munmap(1, r.Base); !errors.Is(err, ErrNoRegion) {
		t.Errorf("double munmap: %v", err)
	}
}

func TestCOWLifecycle(t *testing.T) {
	o, plat := newOS(t)
	r, _ := o.Mmap(1, 0x4000_0000, 8<<12, pagetable.Size4K, true)
	if err := o.Populate(1, r.Base); err != nil {
		t.Fatal(err)
	}
	p, _ := o.Process(1)
	before, _ := p.PT.Lookup(r.Base)

	if err := o.MarkCOW(1, r.Base); err != nil {
		t.Fatal(err)
	}
	res, _ := p.PT.Lookup(r.Base)
	if res.Entry.Writable() {
		t.Fatal("COW page still writable")
	}
	if !p.IsCOW(r.Base) {
		t.Fatal("page not marked COW")
	}
	inv := len(plat.invalidates)
	if inv < 8 {
		t.Errorf("MarkCOW invalidated %d pages, want >= 8", inv)
	}

	// Read fault on a COW page: nothing to do.
	if err := o.HandlePageFault(1, r.Base, false); err != nil {
		t.Fatal(err)
	}
	if p.IsCOW(r.Base) == false {
		t.Fatal("read fault broke COW")
	}

	// Write fault: private copy.
	if err := o.HandlePageFault(1, r.Base, true); err != nil {
		t.Fatal(err)
	}
	after, _ := p.PT.Lookup(r.Base)
	if !after.Entry.Writable() || after.Entry.Addr() == before.Entry.Addr() {
		t.Errorf("COW not broken: %v -> %v", before.Entry, after.Entry)
	}
	if p.IsCOW(r.Base) {
		t.Error("page still marked COW after break")
	}
	if o.Stats().COWBreaks != 1 {
		t.Errorf("COWBreaks = %d", o.Stats().COWBreaks)
	}
}

func TestReclaimClockSecondChance(t *testing.T) {
	o, _ := newOS(t)
	r, _ := o.Mmap(1, 0x4000_0000, 8<<12, pagetable.Size4K, true)
	if err := o.Populate(1, r.Base); err != nil {
		t.Fatal(err)
	}
	p, _ := o.Process(1)
	// Mark all pages referenced.
	for va := r.Base; va < r.End(); va += 4096 {
		if err := p.PT.SetFlags(va, pagetable.FlagAccessed); err != nil {
			t.Fatal(err)
		}
	}
	// First pass: all referenced, so A bits cleared and nothing evicted.
	evicted, err := o.ReclaimScan(1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if evicted != 0 {
		t.Fatalf("first pass evicted %d", evicted)
	}
	for va := r.Base; va < r.End(); va += 4096 {
		res, _ := p.PT.Lookup(va)
		if res.Entry.Accessed() {
			t.Fatalf("A bit not cleared at %#x", va)
		}
	}
	// Second pass: unreferenced pages are evicted.
	evicted, err = o.ReclaimScan(1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if evicted != 8 {
		t.Fatalf("second pass evicted %d, want 8", evicted)
	}
	if got := p.PT.CountLeaves(); got != 0 {
		t.Errorf("%d pages survive eviction", got)
	}
	s := o.Stats()
	if s.ReclaimScanned != 16 || s.ReclaimEvicted != 8 {
		t.Errorf("reclaim stats = %+v", s)
	}
	// Reclaim on empty table is a no-op.
	if _, err := o.ReclaimScan(1, 4); err != nil {
		t.Fatal(err)
	}
}

func TestContextSwitch(t *testing.T) {
	o, _ := newOS(t)
	if _, err := o.CreateProcess(2, 2); err != nil {
		t.Fatal(err)
	}
	p, err := o.ContextSwitch(2)
	if err != nil || p.PID != 2 || o.Current() != p {
		t.Fatalf("ContextSwitch: %v %v", p, err)
	}
	// Switching to the current process is free.
	o.ContextSwitch(2)
	if o.Stats().CtxSwitches != 1 {
		t.Errorf("CtxSwitches = %d", o.Stats().CtxSwitches)
	}
	if _, err := o.ContextSwitch(42); err == nil {
		t.Error("switch to unknown pid accepted")
	}
}

func TestRegionQueries(t *testing.T) {
	o, _ := newOS(t)
	o.Mmap(1, 0x1000_0000, 1<<20, pagetable.Size4K, true)
	o.Mmap(1, 0x4000_0000, 2<<20, pagetable.Size2M, false)
	p, _ := o.Process(1)
	rs := p.Regions()
	if len(rs) != 2 || rs[0].Base != 0x1000_0000 || rs[1].Base != 0x4000_0000 {
		t.Fatalf("Regions = %+v", rs)
	}
	if _, ok := p.RegionContaining(0x1008_0000); !ok {
		t.Error("interior address not found")
	}
	if _, ok := p.RegionContaining(0x3000_0000); ok {
		t.Error("gap address found")
	}
	if _, ok := p.RegionContaining(0x1000_0000 + 1<<20); ok {
		t.Error("end address should be exclusive")
	}
}

func Test2MRegionFault(t *testing.T) {
	o, _ := newOS(t)
	r, _ := o.Mmap(1, 0x4000_0000, 4<<21, pagetable.Size2M, true)
	if err := o.HandlePageFault(1, r.Base+0x123456, true); err != nil {
		t.Fatal(err)
	}
	p, _ := o.Process(1)
	res, err := p.PT.Lookup(r.Base)
	if err != nil {
		t.Fatal(err)
	}
	if res.Size != pagetable.Size2M {
		t.Errorf("mapped size = %v", res.Size)
	}
	if !res.Entry.Dirty() {
		t.Error("write fault should pre-set dirty")
	}
}

func TestStatsReset(t *testing.T) {
	o, _ := newOS(t)
	o.Mmap(1, 0x1000_0000, 1<<12, pagetable.Size4K, true)
	o.HandlePageFault(1, 0x1000_0000, false)
	o.ResetStats()
	if o.Stats() != (Stats{}) {
		t.Error("ResetStats")
	}
}

func TestCollapseTHP(t *testing.T) {
	o, plat := newOS(t)
	base := uint64(0x4000_0000) // 2M-aligned
	if _, err := o.Mmap(1, base, 2<<20, pagetable.Size4K, true); err != nil {
		t.Fatal(err)
	}
	if err := o.Populate(1, base); err != nil {
		t.Fatal(err)
	}
	p, _ := o.Process(1)
	if got := p.PT.CountLeaves(); got != 512 {
		t.Fatalf("populated %d leaves", got)
	}
	if err := o.Collapse(1, base+0x1234); err != nil {
		t.Fatalf("Collapse: %v", err)
	}
	res, err := p.PT.Lookup(base + 0x123456)
	if err != nil {
		t.Fatal(err)
	}
	if res.Size != pagetable.Size2M {
		t.Fatalf("post-collapse size = %v", res.Size)
	}
	if got := p.PT.CountLeaves(); got != 1 {
		t.Errorf("leaves after collapse = %d", got)
	}
	if o.Stats().Collapses != 1 {
		t.Errorf("Collapses = %d", o.Stats().Collapses)
	}
	// All 512 old backing pages freed.
	if len(plat.freed) != 512 {
		t.Errorf("freed %d pages, want 512", len(plat.freed))
	}
	// Munmap handles the mixed-size region.
	if err := o.Munmap(1, base); err != nil {
		t.Fatalf("Munmap after collapse: %v", err)
	}
	if got := p.PT.CountLeaves(); got != 0 {
		t.Errorf("leaves after munmap = %d", got)
	}
}

func TestCollapseErrors(t *testing.T) {
	o, _ := newOS(t)
	base := uint64(0x4000_0000)
	if err := o.Collapse(1, base); !errors.Is(err, ErrNoRegion) {
		t.Errorf("collapse outside region: %v", err)
	}
	if _, err := o.Mmap(1, base, 2<<20, pagetable.Size4K, true); err != nil {
		t.Fatal(err)
	}
	// Partially mapped range refuses to collapse.
	if err := o.HandlePageFault(1, base, true); err != nil {
		t.Fatal(err)
	}
	if err := o.Collapse(1, base); err == nil {
		t.Error("collapse of partially-mapped range accepted")
	}
	// Already-2M range refuses too.
	base2 := uint64(0x5000_0000)
	if _, err := o.Mmap(1, base2, 2<<20, pagetable.Size2M, true); err != nil {
		t.Fatal(err)
	}
	if err := o.Populate(1, base2); err != nil {
		t.Fatal(err)
	}
	if err := o.Collapse(1, base2); err == nil {
		t.Error("collapse of 2M mapping accepted")
	}
}
