package walker

import (
	"errors"
	"math/rand"
	"testing"

	"agilepaging/internal/memsim"
	"agilepaging/internal/pagetable"
	"agilepaging/internal/ptwc"
)

// vmFixture wires up a minimal virtual machine by hand: a host page table,
// a guest page table living in guest-physical space, and a shadow table.
// The VMM package builds these for real; here we build them directly so the
// walker is tested in isolation.
type vmFixture struct {
	t    testing.TB
	mem  *memsim.Memory
	hpt  *pagetable.Table // gPA ⇒ hPA
	gpt  *pagetable.Table // gVA ⇒ gPA
	spt  *pagetable.Table // gVA ⇒ hPA
	gs   *guestSpace
	gpaB uint64 // bump allocator for data gPAs
}

// guestSpace implements pagetable.Space for the guest page table: table
// pages are allocated at fresh guest-physical addresses, backed by host
// frames, and entered into the host page table.
type guestSpace struct {
	mem  *memsim.Memory
	hpt  *pagetable.Table
	next uint64
	back map[uint64]memsim.Frame
}

func (g *guestSpace) FrameFor(pa uint64) (memsim.Frame, bool) {
	f, ok := g.back[pa&^uint64(0xfff)]
	return f, ok
}

func (g *guestSpace) AllocTablePage() (uint64, error) {
	f, err := g.mem.AllocTable()
	if err != nil {
		return 0, err
	}
	gpa := g.next
	g.next += 4096
	g.back[gpa] = f
	if err := g.hpt.Map(gpa, f.Addr(), pagetable.Size4K, pagetable.FlagWrite); err != nil {
		return 0, err
	}
	return gpa, nil
}

func (g *guestSpace) FreeTablePage(pa uint64) error {
	f, ok := g.back[pa]
	if !ok {
		return errors.New("unknown guest table page")
	}
	delete(g.back, pa)
	_ = g.hpt.Unmap(pa, pagetable.Size4K)
	return g.mem.FreeFrame(f)
}

func newVM(t testing.TB) *vmFixture {
	t.Helper()
	mem := memsim.New(256 << 20)
	hpt, err := pagetable.New(mem, pagetable.HostSpace{Mem: mem})
	if err != nil {
		t.Fatal(err)
	}
	gs := &guestSpace{mem: mem, hpt: hpt, next: 0x1000_0000, back: map[uint64]memsim.Frame{}}
	gpt, err := pagetable.New(mem, gs)
	if err != nil {
		t.Fatal(err)
	}
	spt, err := pagetable.New(mem, pagetable.HostSpace{Mem: mem})
	if err != nil {
		t.Fatal(err)
	}
	return &vmFixture{t: t, mem: mem, hpt: hpt, gpt: gpt, spt: spt, gs: gs, gpaB: 0x2000_0000}
}

// mapGuest installs gva⇒gpa⇒hpa at the given size in gPT and hPT and
// returns (gpa, hpa).
func (v *vmFixture) mapGuest(gva uint64, size pagetable.Size) (gpa, hpa uint64) {
	v.t.Helper()
	n := int(size.Bytes() / 4096)
	f, err := v.mem.AllocContiguousAligned(n, n)
	if err != nil {
		v.t.Fatal(err)
	}
	hpa = f.Addr()
	gpa = (v.gpaB + size.Bytes() - 1) &^ size.Mask()
	v.gpaB = gpa + size.Bytes()
	if err := v.gpt.Map(gva, gpa, size, pagetable.FlagWrite|pagetable.FlagUser); err != nil {
		v.t.Fatal(err)
	}
	if err := v.hpt.Map(gpa, hpa, size, pagetable.FlagWrite); err != nil {
		v.t.Fatal(err)
	}
	return gpa, hpa
}

// shadowFill installs the full shadow mapping gva⇒hpa.
func (v *vmFixture) shadowFill(gva, hpa uint64, size pagetable.Size) {
	v.t.Helper()
	if err := v.spt.Map(gva, hpa, size, pagetable.FlagWrite|pagetable.FlagUser); err != nil {
		v.t.Fatal(err)
	}
}

// guestTableHPA returns the host-physical address of the guest table page
// at the given level (0=root) along gva's walk path.
func (v *vmFixture) guestTableHPA(gva uint64, level int) uint64 {
	v.t.Helper()
	gpa := v.gpt.Root()
	for l := 0; l < level; l++ {
		e, err := v.gpt.EntryAt(gva, l)
		if err != nil {
			v.t.Fatal(err)
		}
		gpa = e.Addr()
	}
	r, err := v.hpt.Lookup(gpa)
	if err != nil {
		v.t.Fatal(err)
	}
	return r.PA
}

// plantSwitch builds a partial shadow table for gva that walks
// 3-d levels in shadow mode then switches: d trailing guest levels run
// nested. d must be 1..3 here (d=4 is the RootSwitch register case).
func (v *vmFixture) plantSwitch(gva uint64, d int) {
	v.t.Helper()
	switchLevel := 3 - d // sPT level whose entry carries the switching bit
	if _, err := v.spt.EnsurePath(gva, switchLevel); err != nil {
		v.t.Fatal(err)
	}
	target := v.guestTableHPA(gva, switchLevel+1)
	e := pagetable.MakeEntry(target, pagetable.FlagPresent|pagetable.FlagSwitch)
	if err := v.spt.SetEntryAt(gva, switchLevel, e); err != nil {
		v.t.Fatal(err)
	}
}

func (v *vmFixture) regs(mode Mode) Regs {
	return Regs{
		Mode:    mode,
		Root:    v.spt.Root(),
		GPTRoot: v.gpt.Root(),
		HPTRoot: v.hpt.Root(),
		ASID:    1,
		VMID:    1,
	}
}

func TestNativeWalkRefs(t *testing.T) {
	mem := memsim.New(64 << 20)
	pt, err := pagetable.New(mem, pagetable.HostSpace{Mem: mem})
	if err != nil {
		t.Fatal(err)
	}
	if err := pt.Map(0x7f00_0000_1000, 0xabc000, pagetable.Size4K, pagetable.FlagWrite); err != nil {
		t.Fatal(err)
	}
	w := New(mem, nil, nil)
	r, f := w.Walk(Regs{Mode: ModeNative, Root: pt.Root(), ASID: 1}, 0x7f00_0000_1234, false)
	if f != nil {
		t.Fatalf("fault: %v", f)
	}
	if r.Refs != 4 {
		t.Errorf("native refs = %d, want 4 (paper Table II)", r.Refs)
	}
	if r.HPA != 0xabc234 {
		t.Errorf("HPA = %#x", r.HPA)
	}
	if r.NestedLevels != 0 || r.LeafShadow {
		t.Errorf("classification: %+v", r)
	}
}

func TestNativeWalk2M(t *testing.T) {
	mem := memsim.New(64 << 20)
	pt, _ := pagetable.New(mem, pagetable.HostSpace{Mem: mem})
	if err := pt.Map(0x4020_0000, 0x8020_0000, pagetable.Size2M, 0); err != nil {
		t.Fatal(err)
	}
	w := New(mem, nil, nil)
	r, f := w.Walk(Regs{Mode: ModeNative, Root: pt.Root()}, 0x4020_0000+0x12345, false)
	if f != nil {
		t.Fatalf("fault: %v", f)
	}
	if r.Refs != 3 {
		t.Errorf("2M native refs = %d, want 3", r.Refs)
	}
	if r.Size != pagetable.Size2M || r.HPA != 0x8020_0000+0x12345 {
		t.Errorf("result = %+v", r)
	}
}

func TestNestedWalk24Refs(t *testing.T) {
	v := newVM(t)
	gva := uint64(0x7f00_0000_0000)
	_, hpa := v.mapGuest(gva, pagetable.Size4K)
	w := New(v.mem, nil, nil)
	r, f := w.Walk(v.regs(ModeNested), gva|0x42, true)
	if f != nil {
		t.Fatalf("fault: %v", f)
	}
	if r.Refs != 24 {
		t.Errorf("nested refs = %d, want 24 (paper §II-A)", r.Refs)
	}
	if r.HPA != hpa|0x42 {
		t.Errorf("HPA = %#x, want %#x", r.HPA, hpa|0x42)
	}
	if r.NestedLevels != 4 || !r.GptrTranslated {
		t.Errorf("classification: nestedLevels=%d gptr=%v", r.NestedLevels, r.GptrTranslated)
	}
	// Hardware must have set guest A and D bits (write access).
	gr, err := v.gpt.Lookup(gva)
	if err != nil {
		t.Fatal(err)
	}
	if !gr.Entry.Accessed() || !gr.Entry.Dirty() {
		t.Errorf("guest A/D not set by nested walker: %v", gr.Entry)
	}
}

func TestNestedWalkReadDoesNotSetDirty(t *testing.T) {
	v := newVM(t)
	gva := uint64(0x1000)
	v.mapGuest(gva, pagetable.Size4K)
	w := New(v.mem, nil, nil)
	if _, f := w.Walk(v.regs(ModeNested), gva, false); f != nil {
		t.Fatalf("fault: %v", f)
	}
	gr, _ := v.gpt.Lookup(gva)
	if !gr.Entry.Accessed() || gr.Entry.Dirty() {
		t.Errorf("A/D after read = %v", gr.Entry)
	}
}

func TestShadowWalkRefs(t *testing.T) {
	v := newVM(t)
	gva := uint64(0x5555_5000)
	_, hpa := v.mapGuest(gva, pagetable.Size4K)
	v.shadowFill(gva, hpa, pagetable.Size4K)
	w := New(v.mem, nil, nil)
	r, f := w.Walk(v.regs(ModeShadow), gva|0x7, false)
	if f != nil {
		t.Fatalf("fault: %v", f)
	}
	if r.Refs != 4 {
		t.Errorf("shadow refs = %d, want 4", r.Refs)
	}
	if r.HPA != hpa|0x7 || !r.LeafShadow {
		t.Errorf("result = %+v", r)
	}
}

// TestAgileWalkDegreesOfNesting reproduces the reference counts of paper
// Table II / Table VI: shadow=4, then 8, 12, 16, 20 for switches with 1..4
// trailing nested levels, and 24 for full nested.
func TestAgileWalkDegreesOfNesting(t *testing.T) {
	wantRefs := map[int]int{1: 8, 2: 12, 3: 16, 4: 20}
	for d := 1; d <= 3; d++ {
		v := newVM(t)
		gva := uint64(0x7f12_3456_7000)
		_, hpa := v.mapGuest(gva, pagetable.Size4K)
		v.plantSwitch(gva, d)
		w := New(v.mem, nil, nil)
		r, f := w.Walk(v.regs(ModeAgile), gva|0x99, false)
		if f != nil {
			t.Fatalf("d=%d fault: %v", d, f)
		}
		if r.Refs != wantRefs[d] {
			t.Errorf("d=%d refs = %d, want %d", d, r.Refs, wantRefs[d])
		}
		if r.HPA != hpa|0x99 {
			t.Errorf("d=%d HPA = %#x, want %#x", d, r.HPA, hpa|0x99)
		}
		if r.NestedLevels != d || r.LeafShadow || r.GptrTranslated {
			t.Errorf("d=%d classification: %+v", d, r)
		}
	}

	// d=4: RootSwitch — walk starts nested at the guest root, 20 refs.
	v := newVM(t)
	gva := uint64(0x7f12_3456_7000)
	_, hpa := v.mapGuest(gva, pagetable.Size4K)
	regs := v.regs(ModeAgile)
	regs.RootSwitch = true
	regs.Root = v.guestTableHPA(gva, 0)
	w := New(v.mem, nil, nil)
	r, f := w.Walk(regs, gva, false)
	if f != nil {
		t.Fatalf("d=4 fault: %v", f)
	}
	if r.Refs != 20 || r.NestedLevels != 4 || r.GptrTranslated {
		t.Errorf("d=4: refs=%d nested=%d gptr=%v, want 20/4/false", r.Refs, r.NestedLevels, r.GptrTranslated)
	}
	if r.HPA != hpa {
		t.Errorf("d=4 HPA = %#x", r.HPA)
	}

	// Full nested through the agile state machine (sptr==gptr in Fig. 4).
	regs = v.regs(ModeAgile)
	regs.FullNested = true
	r, f = w.Walk(regs, gva, false)
	if f != nil {
		t.Fatalf("full-nested fault: %v", f)
	}
	if r.Refs != 24 || !r.GptrTranslated {
		t.Errorf("full nested refs = %d gptr=%v, want 24/true", r.Refs, r.GptrTranslated)
	}
}

func TestAgileFullShadow(t *testing.T) {
	v := newVM(t)
	gva := uint64(0x1234_5000)
	_, hpa := v.mapGuest(gva, pagetable.Size4K)
	v.shadowFill(gva, hpa, pagetable.Size4K)
	w := New(v.mem, nil, nil)
	r, f := w.Walk(v.regs(ModeAgile), gva, false)
	if f != nil {
		t.Fatalf("fault: %v", f)
	}
	if r.Refs != 4 || r.NestedLevels != 0 || !r.LeafShadow {
		t.Errorf("full-shadow agile walk: %+v", r)
	}
}

func TestWalkFaults(t *testing.T) {
	v := newVM(t)
	w := New(v.mem, nil, nil)

	// Unmapped gVA under shadow: not-present fault at the root.
	_, f := w.Walk(v.regs(ModeShadow), 0xdead_0000, false)
	if f == nil || f.Kind != FaultNotPresent || f.Level != 0 {
		t.Errorf("shadow fault = %+v", f)
	}
	if f.Refs != 1 {
		t.Errorf("shadow fault refs = %d, want 1", f.Refs)
	}

	// Unmapped gVA under nested: guest fault after gptr translation.
	_, f = w.Walk(v.regs(ModeNested), 0xdead_0000, false)
	if f == nil || f.Kind != FaultGuest || f.Level != 0 {
		t.Errorf("nested fault = %+v", f)
	}
	if f.Refs != 5 { // 4 for gptr + 1 guest root read
		t.Errorf("nested fault refs = %d, want 5", f.Refs)
	}

	// Mapped in gPT but hole in hPT: host fault carrying the gPA.
	gva := uint64(0x9000)
	gpa := uint64(0x7777_7000)
	if err := v.gpt.Map(gva, gpa, pagetable.Size4K, pagetable.FlagWrite); err != nil {
		t.Fatal(err)
	}
	_, f = w.Walk(v.regs(ModeNested), gva, true)
	if f == nil || f.Kind != FaultHost || f.GPA != gpa {
		t.Errorf("host fault = %+v", f)
	}
	if f.Error() == "" {
		t.Error("fault Error() empty")
	}
}

func TestPWCAcceleratesWalks(t *testing.T) {
	v := newVM(t)
	gva := uint64(0x7f00_0000_1000)
	_, hpa := v.mapGuest(gva, pagetable.Size4K)
	v.shadowFill(gva, hpa, pagetable.Size4K)
	w := New(v.mem, ptwc.New(ptwc.DefaultConfig()), nil)
	r1, f := w.Walk(v.regs(ModeShadow), gva, false)
	if f != nil {
		t.Fatal(f)
	}
	if r1.Refs != 4 {
		t.Fatalf("cold shadow refs = %d", r1.Refs)
	}
	r2, f := w.Walk(v.regs(ModeShadow), gva, false)
	if f != nil {
		t.Fatal(f)
	}
	if r2.Refs != 1 {
		t.Errorf("warm shadow refs = %d, want 1 (skip-3 PWC hit)", r2.Refs)
	}
}

func TestNTLBAcceleratesNestedWalks(t *testing.T) {
	v := newVM(t)
	gva := uint64(0x7f00_0000_1000)
	v.mapGuest(gva, pagetable.Size4K)
	w := New(v.mem, ptwc.New(ptwc.DefaultConfig()), ptwc.NewNestedTLB(64, 4))
	r1, f := w.Walk(v.regs(ModeNested), gva, false)
	if f != nil {
		t.Fatal(f)
	}
	if r1.Refs != 24 {
		t.Fatalf("cold nested refs = %d", r1.Refs)
	}
	// Warm: PWC resumes at the guest leaf table and the leaf gPA hits the
	// nested TLB: 1 reference.
	r2, f := w.Walk(v.regs(ModeNested), gva, false)
	if f != nil {
		t.Fatal(f)
	}
	if r2.Refs != 1 {
		t.Errorf("warm nested refs = %d, want 1", r2.Refs)
	}
	// A neighbouring page in the same leaf table reuses the PWC pointer but
	// must host-translate its own leaf gPA: 1 + 4 refs.
	gva2 := gva + 0x1000
	v.mapGuest(gva2, pagetable.Size4K)
	r3, f := w.Walk(v.regs(ModeNested), gva2, false)
	if f != nil {
		t.Fatal(f)
	}
	if r3.Refs != 5 {
		t.Errorf("neighbour nested refs = %d, want 5", r3.Refs)
	}
}

func TestAgilePWCResumesInCorrectMode(t *testing.T) {
	v := newVM(t)
	gva := uint64(0x7f12_3456_7000)
	v.mapGuest(gva, pagetable.Size4K)
	v.plantSwitch(gva, 1) // leaf level nested
	w := New(v.mem, ptwc.New(ptwc.DefaultConfig()), ptwc.NewNestedTLB(64, 4))
	r1, f := w.Walk(v.regs(ModeAgile), gva, false)
	if f != nil {
		t.Fatal(f)
	}
	if r1.Refs != 8 {
		t.Fatalf("cold agile refs = %d, want 8", r1.Refs)
	}
	r2, f := w.Walk(v.regs(ModeAgile), gva, false)
	if f != nil {
		t.Fatal(f)
	}
	// PWC hit at the guest leaf table (nested bit set) + NTLB hit for the
	// data page: 1 reference.
	if r2.Refs != 1 {
		t.Errorf("warm agile refs = %d, want 1", r2.Refs)
	}
	if r2.NestedLevels != 1 {
		t.Errorf("warm agile resumed in wrong mode: %+v", r2)
	}
}

func TestNestedWalk2MGuestAndHost(t *testing.T) {
	v := newVM(t)
	gva := uint64(0x4000_0000)
	_, hpa := v.mapGuest(gva, pagetable.Size2M)
	w := New(v.mem, nil, nil)
	r, f := w.Walk(v.regs(ModeNested), gva|0x12345, false)
	if f != nil {
		t.Fatalf("fault: %v", f)
	}
	// gptr: 4 host refs (guest root is a 4K page in hPT); guest levels
	// 0,1 interior: each 1 + 4; guest level 2 leaf (2M): 1 + 3 host refs
	// (host maps the data as a 2M page).
	want := 4 + (1 + 4) + (1 + 4) + (1 + 3)
	if r.Refs != want {
		t.Errorf("2M nested refs = %d, want %d", r.Refs, want)
	}
	if r.Size != pagetable.Size2M || r.HPA != hpa|0x12345 {
		t.Errorf("result = %+v", r)
	}
}

func TestRecordingNestedTrace(t *testing.T) {
	v := newVM(t)
	gva := uint64(0x7f00_0000_0000)
	v.mapGuest(gva, pagetable.Size4K)
	w := New(v.mem, nil, nil)
	w.SetRecording(true)
	r, f := w.Walk(v.regs(ModeNested), gva, false)
	if f != nil {
		t.Fatal(f)
	}
	if len(r.Accesses) != 24 {
		t.Fatalf("recorded %d accesses, want 24", len(r.Accesses))
	}
	// Chronology of Figure 1(b): 4 hPT refs (gptr), then per guest level:
	// 1 gPT ref + 4 hPT refs.
	for i := 0; i < 4; i++ {
		if r.Accesses[i].Table != TableHost || r.Accesses[i].Level != i {
			t.Errorf("access %d = %+v, want hPT level %d", i, r.Accesses[i], i)
		}
	}
	for g := 0; g < 4; g++ {
		base := 4 + g*5
		if r.Accesses[base].Table != TableGuest || r.Accesses[base].Level != g {
			t.Errorf("access %d = %+v, want gPT level %d", base, r.Accesses[base], g)
		}
		for i := 1; i <= 4; i++ {
			if r.Accesses[base+i].Table != TableHost {
				t.Errorf("access %d = %+v, want hPT", base+i, r.Accesses[base+i])
			}
		}
	}
}

func TestRecordingAgileTrace(t *testing.T) {
	v := newVM(t)
	gva := uint64(0x7f12_3456_7000)
	v.mapGuest(gva, pagetable.Size4K)
	v.plantSwitch(gva, 1)
	w := New(v.mem, nil, nil)
	w.SetRecording(true)
	r, f := w.Walk(v.regs(ModeAgile), gva, false)
	if f != nil {
		t.Fatal(f)
	}
	// Figure 3(b): 3 sPT refs, 1 gPT leaf ref, 4 hPT refs.
	if len(r.Accesses) != 8 {
		t.Fatalf("recorded %d accesses, want 8", len(r.Accesses))
	}
	wantKinds := []TableKind{TableShadow, TableShadow, TableShadow, TableGuest, TableHost, TableHost, TableHost, TableHost}
	for i, k := range wantKinds {
		if r.Accesses[i].Table != k {
			t.Errorf("access %d = %v, want %v", i, r.Accesses[i].Table, k)
		}
	}
}

func TestHostWritabilityMergedIntoFlags(t *testing.T) {
	v := newVM(t)
	gva := uint64(0x6000)
	gpa, _ := v.mapGuest(gva, pagetable.Size4K)
	// VMM write-protects the host page (content-based sharing, paper §V).
	if err := v.hpt.ClearFlags(gpa, pagetable.FlagWrite); err != nil {
		t.Fatal(err)
	}
	w := New(v.mem, nil, nil)
	r, f := w.Walk(v.regs(ModeNested), gva, false)
	if f != nil {
		t.Fatal(f)
	}
	if r.Flags.Writable() {
		t.Error("host read-only page surfaced as writable")
	}
	// Guest dirty bit must not be set by a read of a host-RO page.
	gr, _ := v.gpt.Lookup(gva)
	if gr.Entry.Dirty() {
		t.Error("dirty set despite host write protection")
	}
}

func TestWalkerStats(t *testing.T) {
	v := newVM(t)
	gva := uint64(0x1000)
	_, hpa := v.mapGuest(gva, pagetable.Size4K)
	v.shadowFill(gva, hpa, pagetable.Size4K)
	w := New(v.mem, nil, nil)
	w.Walk(v.regs(ModeShadow), gva, false)
	w.Walk(v.regs(ModeNested), gva, false)
	w.Walk(v.regs(ModeShadow), 0xdead000, false) // faults
	s := w.Stats()
	if s.Walks != 2 {
		t.Errorf("Walks = %d, want 2 (faulting walk not counted)", s.Walks)
	}
	if s.Refs != 28 {
		t.Errorf("Refs = %d, want 28", s.Refs)
	}
	if s.Faults[FaultNotPresent] != 1 {
		t.Errorf("Faults = %v", s.Faults)
	}
	if s.ByNestedLevels[0] != 1 || s.ByNestedLevels[4] != 1 || s.FullNested != 1 {
		t.Errorf("classification counters = %+v", s)
	}
	w.ResetStats()
	if w.Stats().Walks != 0 {
		t.Error("ResetStats")
	}
}

func TestModeAndKindStrings(t *testing.T) {
	for m, want := range map[Mode]string{ModeNative: "native", ModeNested: "nested", ModeShadow: "shadow", ModeAgile: "agile"} {
		if m.String() != want {
			t.Errorf("%d.String() = %s", int(m), m.String())
		}
	}
	for k, want := range map[TableKind]string{TableNative: "PT", TableShadow: "sPT", TableGuest: "gPT", TableHost: "hPT"} {
		if k.String() != want {
			t.Errorf("TableKind %d = %s, want %s", int(k), k.String(), want)
		}
	}
	for f, want := range map[FaultKind]string{FaultNotPresent: "not-present", FaultGuest: "guest-not-present", FaultHost: "host-not-present"} {
		if f.String() != want {
			t.Errorf("FaultKind %d = %s, want %s", int(f), f.String(), want)
		}
	}
}

func TestNativeWalk1G(t *testing.T) {
	mem := memsim.New(64 << 20)
	pt, _ := pagetable.New(mem, pagetable.HostSpace{Mem: mem})
	if err := pt.Map(0x40000000, 0x80000000, pagetable.Size1G, pagetable.FlagWrite); err != nil {
		t.Fatal(err)
	}
	w := New(mem, nil, nil)
	r, f := w.Walk(Regs{Mode: ModeNative, Root: pt.Root()}, 0x40000000+0x1234567, true)
	if f != nil {
		t.Fatalf("fault: %v", f)
	}
	if r.Refs != 2 {
		t.Errorf("1G native refs = %d, want 2 (levels 0 and 1)", r.Refs)
	}
	if r.Size != pagetable.Size1G || r.HPA != 0x80000000+0x1234567 {
		t.Errorf("result = %+v", r)
	}
	// Hardware set A and D on the 1G leaf.
	res, _ := pt.Lookup(0x40000000)
	if !res.Entry.Accessed() || !res.Entry.Dirty() {
		t.Errorf("1G leaf A/D = %v", res.Entry)
	}
}

func TestShadowWalk1G(t *testing.T) {
	mem := memsim.New(64 << 20)
	spt, _ := pagetable.New(mem, pagetable.HostSpace{Mem: mem})
	if err := spt.Map(0x40000000, 0x80000000, pagetable.Size1G, pagetable.FlagWrite); err != nil {
		t.Fatal(err)
	}
	w := New(mem, nil, nil)
	r, f := w.Walk(Regs{Mode: ModeShadow, Root: spt.Root()}, 0x40000000, false)
	if f != nil {
		t.Fatalf("fault: %v", f)
	}
	if r.Refs != 2 || r.Size != pagetable.Size1G || !r.LeafShadow {
		t.Errorf("1G shadow walk = %+v", r)
	}
}

func TestNestedWalk1GGuestAndHost(t *testing.T) {
	// 1G guest page backed by a 1G host page: guest walk terminates at
	// level 1, and each host translation also terminates at level 1.
	mem := memsim.New(16 << 30)
	hpt, err := pagetable.New(mem, pagetable.HostSpace{Mem: mem})
	if err != nil {
		t.Fatal(err)
	}
	gs := &guestSpace{mem: mem, hpt: hpt, next: 0x4000_0000_0000, back: map[uint64]memsim.Frame{}}
	gpt, err := pagetable.New(mem, gs)
	if err != nil {
		t.Fatal(err)
	}
	gva := uint64(0x40000000)
	gpa := uint64(1 << 30) // 1G-aligned guest-physical
	frames := int(pagetable.Size1G.Bytes() / memsim.FrameSize)
	f1, err := mem.AllocContiguousAligned(frames, frames)
	if err != nil {
		t.Fatal(err)
	}
	if err := gpt.Map(gva, gpa, pagetable.Size1G, pagetable.FlagWrite); err != nil {
		t.Fatal(err)
	}
	if err := hpt.Map(gpa, f1.Addr(), pagetable.Size1G, pagetable.FlagWrite); err != nil {
		t.Fatal(err)
	}
	w := New(mem, nil, nil)
	regs := Regs{Mode: ModeNested, GPTRoot: gpt.Root(), HPTRoot: hpt.Root(), VMID: 1}
	r, fault := w.Walk(regs, gva|0x7654321, false)
	if fault != nil {
		t.Fatalf("fault: %v", fault)
	}
	// gptr: 4 host refs (guest root is a 4K page); guest level 0: 1 + 4;
	// guest level 1 leaf (1G): 1 + 2 host refs (host 1G leaf at level 1).
	want := 4 + (1 + 4) + (1 + 2)
	if r.Refs != want {
		t.Errorf("1G nested refs = %d, want %d", r.Refs, want)
	}
	if r.Size != pagetable.Size1G || r.HPA != f1.Addr()|0x7654321 {
		t.Errorf("result = %+v", r)
	}
}

// TestWalkMatchesSoftwareLookupProperty: across hundreds of random sparse
// mappings at random sizes, every hardware walk (all techniques, with and
// without MMU caches) must agree with the software page-table walks.
func TestWalkMatchesSoftwareLookupProperty(t *testing.T) {
	v := newVM(t)
	rng := rand.New(rand.NewSource(31))
	type mapping struct {
		gva  uint64
		size pagetable.Size
	}
	var maps []mapping
	overlaps := func(gva uint64, size pagetable.Size) bool {
		for _, m := range maps {
			lo, hi := m.gva, m.gva+m.size.Bytes()
			if gva < hi && gva+size.Bytes() > lo {
				return true
			}
		}
		return false
	}
	for len(maps) < 150 {
		size := pagetable.Size4K
		if rng.Intn(4) == 0 {
			size = pagetable.Size2M
		}
		gva := (rng.Uint64() % (1 << 40)) &^ size.Mask()
		if overlaps(gva, size) {
			continue
		}
		if err := v.gpt.Map(gva, 0, size, pagetable.FlagWrite); err != nil {
			v.gpt.Unmap(gva, size) // best effort; skip conflicts
			continue
		}
		v.gpt.Unmap(gva, size)
		gpa, _ := v.mapGuest(gva, size)
		_ = gpa
		maps = append(maps, mapping{gva, size})
	}
	// Build full shadow state for every mapping.
	for _, m := range maps {
		r, err := v.gpt.Lookup(m.gva)
		if err != nil {
			t.Fatal(err)
		}
		hr, err := v.hpt.Lookup(r.PA)
		if err != nil {
			t.Fatal(err)
		}
		if err := v.spt.Map(m.gva, pagetable.PageBase(hr.PA, m.size), m.size, pagetable.FlagWrite); err != nil {
			t.Fatal(err)
		}
	}
	for _, withCaches := range []bool{false, true} {
		var w *Walker
		if withCaches {
			w = New(v.mem, ptwc.New(ptwc.DefaultConfig()), ptwc.NewNestedTLB(32, 4))
		} else {
			w = New(v.mem, nil, nil)
		}
		for _, m := range maps {
			off := rng.Uint64() & m.size.Mask()
			gva := m.gva + off
			gr, err := v.gpt.Lookup(gva)
			if err != nil {
				t.Fatal(err)
			}
			hr, err := v.hpt.Lookup(gr.PA)
			if err != nil {
				t.Fatal(err)
			}
			want := hr.PA
			for _, mode := range []Mode{ModeNested, ModeShadow, ModeAgile} {
				r, fault := w.Walk(v.regs(mode), gva, false)
				if fault != nil {
					t.Fatalf("%v walk(%#x) faulted: %v", mode, gva, fault)
				}
				if r.HPA != want {
					t.Fatalf("%v walk(%#x) = %#x, software oracle %#x (caches=%v)",
						mode, gva, r.HPA, want, withCaches)
				}
			}
		}
	}
}
