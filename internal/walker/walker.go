// Package walker implements the hardware page-walk state machines of the
// paper: the native 1D walk, the nested 2D walk, the shadow walk (paper
// Figure 2), and the agile walk that starts in shadow mode and may switch
// mid-walk to nested mode when it encounters an entry with the switching
// bit set (paper Figure 4).
//
// The walker is "hardware": it dereferences raw table pages in simulated
// physical memory and charges one memory reference per entry read, which is
// the currency the paper's evaluation is denominated in (Tables II and VI).
// Page walk caches and the nested TLB (package ptwc) remove references the
// way the real MMU structures do.
package walker

import (
	"fmt"
	"strings"

	"agilepaging/internal/memsim"
	"agilepaging/internal/pagetable"
	"agilepaging/internal/ptwc"
)

// Mode selects the memory-virtualization technique for a walk.
type Mode int

// The four techniques compared throughout the paper (Table I).
const (
	ModeNative Mode = iota // base native: 1D walk of a single page table
	ModeNested             // 2D walk of guest + host tables
	ModeShadow             // 1D walk of the VMM's shadow table
	ModeAgile              // shadow walk with mid-walk switch to nested
)

// String returns the paper's name for the mode.
func (m Mode) String() string {
	switch m {
	case ModeNative:
		return "native"
	case ModeNested:
		return "nested"
	case ModeShadow:
		return "shadow"
	case ModeAgile:
		return "agile"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// ParseMode parses a technique name as written by Mode.String, case
// insensitively, with the single-letter and "base" aliases the CLI tools
// have always taken. It is the one parser every flag and JSON decoder in
// the repository routes through.
func ParseMode(s string) (Mode, error) {
	switch strings.ToLower(s) {
	case "native", "base", "b":
		return ModeNative, nil
	case "nested", "n":
		return ModeNested, nil
	case "shadow", "s":
		return ModeShadow, nil
	case "agile", "a":
		return ModeAgile, nil
	}
	return 0, fmt.Errorf("unknown technique %q (native|nested|shadow|agile)", s)
}

// TableKind identifies which page-table structure a walk reference touched,
// matching the structures in the paper's Figure 1.
type TableKind int

// Table kinds.
const (
	TableNative TableKind = iota // base-native page table
	TableShadow                  // sPT
	TableGuest                   // gPT
	TableHost                    // hPT (accessed as part of nested translation)
)

// String names the table kind as in the paper's figures.
func (k TableKind) String() string {
	switch k {
	case TableNative:
		return "PT"
	case TableShadow:
		return "sPT"
	case TableGuest:
		return "gPT"
	case TableHost:
		return "hPT"
	}
	return fmt.Sprintf("TableKind(%d)", int(k))
}

// Access records one memory reference of a recorded walk, in chronological
// order — the numbered arrows of the paper's Figures 1 and 3.
type Access struct {
	Table TableKind
	Level int    // level within that table (0 = root)
	Addr  uint64 // host-physical address of the entry read
}

// FaultKind classifies page faults raised by the walker.
type FaultKind int

// Fault kinds. Who handles each depends on the mode: a not-present fault in
// native mode goes to the OS, in shadow/agile mode to the VMM (hidden
// shadow fill); guest faults go to the guest OS; host faults are VM exits.
const (
	FaultNotPresent FaultKind = iota // 1D table (native PT or sPT) entry not present
	FaultGuest                       // guest page table entry not present
	FaultHost                        // host page table entry not present
)

// String names the fault kind.
func (k FaultKind) String() string {
	switch k {
	case FaultNotPresent:
		return "not-present"
	case FaultGuest:
		return "guest-not-present"
	case FaultHost:
		return "host-not-present"
	}
	return fmt.Sprintf("FaultKind(%d)", int(k))
}

// Fault describes a page fault encountered during a walk.
type Fault struct {
	Kind     FaultKind
	VA       uint64 // faulting virtual (or guest-virtual) address
	Level    int    // table level at which the walk stopped
	GPA      uint64 // for FaultHost: the guest-physical address that missed
	Write    bool   // the faulting access was a write
	Refs     int    // memory references consumed before faulting
	HostRefs int    // subset of Refs touching the host page table
}

// Error implements the error interface.
func (f *Fault) Error() string {
	return fmt.Sprintf("page fault: %s at va=%#x level=%d gpa=%#x write=%v", f.Kind, f.VA, f.Level, f.GPA, f.Write)
}

// Regs is the architectural register state consumed by a walk — the three
// page table pointers of agile paging (paper §III-A) plus tags for the
// translation caches.
type Regs struct {
	Mode Mode

	// Root is the 1D root: the native page table root in ModeNative, the
	// shadow page table root (hPA) in ModeShadow and ModeAgile. Unused in
	// ModeNested.
	Root uint64

	// RootSwitch marks the agile "switched at 1st level" configuration
	// (paper Figure 3e): the walk starts directly in nested mode and Root
	// holds the host-physical address of the guest root table.
	RootSwitch bool

	// FullNested marks an agile process currently running fully nested
	// (the paper's sptr==gptr encoding in Figure 4): the walk is a plain
	// nested walk including the gptr translation.
	FullNested bool

	// GPTRoot is gptr: the guest-physical address of the guest page table
	// root. HPTRoot is hptr: the host-physical address of the host page
	// table root.
	GPTRoot uint64
	HPTRoot uint64

	// ASID tags PWC entries (per guest process); VMID tags nested-TLB
	// entries (per virtual machine).
	ASID uint16
	VMID uint16
}

// Result describes a completed walk.
type Result struct {
	HPA   uint64          // translated host-physical address of va
	Size  pagetable.Size  // page size of the final mapping
	Flags pagetable.Entry // effective leaf permissions for the TLB entry
	GPA   uint64          // guest-physical address of the page (virtualized modes)
	Refs  int             // memory references charged to this walk
	// HostRefs is the subset of Refs that touched the host page table.
	// Host-table entries are few and extremely hot, so on real hardware
	// they hit in the data caches far more often than guest/shadow/native
	// entries do; the cycle model prices them separately (paper §II-A's
	// caching discussion).
	HostRefs int

	// NestedLevels is the number of guest page-table levels handled in
	// nested mode: 0 for full shadow, 1..4 for agile switches (paper
	// Table VI columns L4..L1), 4 with GptrTranslated for full nested.
	NestedLevels int
	// GptrTranslated reports that the walk paid the gptr translation
	// (only full nested walks do).
	GptrTranslated bool
	// LeafShadow reports that the leaf translation came from the shadow
	// table (the VMM manages A/D bits for it).
	LeafShadow bool

	// Accesses holds the chronological reference trace when recording is
	// enabled.
	Accesses []Access
}

// Stats accumulates walker counters.
type Stats struct {
	Walks  uint64
	Refs   uint64
	Faults [3]uint64 // by FaultKind

	// ByNestedLevels[d] counts completed walks with d guest levels handled
	// nested, d in 0..4; FullNested counts walks that also translated
	// gptr. Together these are the paper's Table VI classification.
	ByNestedLevels [5]uint64
	FullNested     uint64

	// RefsByNestedLevels and FullNestedRefs split the reference volume the
	// same way, so telemetry epochs can decompose refs/walk by switch
	// depth without per-walk callbacks.
	RefsByNestedLevels [5]uint64
	FullNestedRefs     uint64
}

// Walker executes hardware page walks against simulated physical memory.
type Walker struct {
	mem    *memsim.Memory
	pwc    *ptwc.PWC       // optional
	ntlb   *ptwc.NestedTLB // optional
	record bool
	stats  Stats
	// scratch is reused across walks so the per-access hot path performs no
	// heap allocation; walks on one Walker never overlap. Its accesses
	// buffer only grows while recording is enabled.
	scratch walkState
}

// New creates a walker. pwc and ntlb may be nil to model a machine without
// those structures (as Table VI's "no page walk caches" column requires).
func New(mem *memsim.Memory, pwc *ptwc.PWC, ntlb *ptwc.NestedTLB) *Walker {
	return &Walker{mem: mem, pwc: pwc, ntlb: ntlb}
}

// SetRecording toggles per-walk access traces (Figures 1 and 3).
func (w *Walker) SetRecording(on bool) { w.record = on }

// Stats returns the accumulated counters.
func (w *Walker) Stats() Stats { return w.stats }

// ResetStats zeroes the counters.
func (w *Walker) ResetStats() { w.stats = Stats{} }

// Reset restores the walker to its post-construction state: counters
// zeroed, recording off, scratch truncated. The scratch buffer's capacity
// is retained — it is reused allocation-free by the next recorded walk.
func (w *Walker) Reset() {
	w.stats = Stats{}
	w.record = false
	w.scratch.refs = 0
	w.scratch.hostRefs = 0
	w.scratch.accesses = w.scratch.accesses[:0]
}

// PWC returns the walker's page walk cache (may be nil).
func (w *Walker) PWC() *ptwc.PWC { return w.pwc }

// NTLB returns the walker's nested TLB (may be nil).
func (w *Walker) NTLB() *ptwc.NestedTLB { return w.ntlb }

// readEntry dereferences one page-table entry at host-physical table page
// tableHPA, charging one memory reference.
func (w *Walker) readEntry(st *walkState, kind TableKind, level int, tableHPA uint64, idx int) pagetable.Entry {
	st.refs++
	if kind == TableHost {
		st.hostRefs++
	}
	addr := tableHPA + uint64(idx)*8
	if w.record {
		st.accesses = append(st.accesses, Access{Table: kind, Level: level, Addr: addr})
	}
	return pagetable.Entry(w.mem.ReadEntry(memsim.FrameOf(tableHPA), idx))
}

// writeEntry lets the hardware update A/D bits in guest tables it walked in
// nested mode. Hardware writes do not trap (those table pages are not
// write-protected when under nested mode).
func (w *Walker) writeEntry(tableHPA uint64, idx int, val pagetable.Entry) {
	w.mem.WriteEntry(memsim.FrameOf(tableHPA), idx, uint64(val))
}

// walkState carries per-walk accounting.
type walkState struct {
	refs     int
	hostRefs int
	accesses []Access
}

func (w *Walker) finish(st *walkState, r Result) Result {
	r.Refs = st.refs
	r.HostRefs = st.hostRefs
	if w.record {
		// The scratch buffer is clobbered by the next walk; hand the
		// caller its own copy. Recording is off on the measurement path.
		r.Accesses = append([]Access(nil), st.accesses...)
	}
	w.stats.Walks++
	w.stats.Refs += uint64(st.refs)
	if r.GptrTranslated {
		w.stats.FullNested++
		w.stats.FullNestedRefs += uint64(st.refs)
	}
	if r.NestedLevels >= 0 && r.NestedLevels <= 4 {
		w.stats.ByNestedLevels[r.NestedLevels]++
		w.stats.RefsByNestedLevels[r.NestedLevels] += uint64(st.refs)
	}
	return r
}

func (w *Walker) fault(st *walkState, f *Fault) *Fault {
	f.Refs = st.refs
	f.HostRefs = st.hostRefs
	w.stats.Faults[f.Kind]++
	return f
}

// Walk translates va under the technique selected by regs.Mode, charging
// memory references as the corresponding state machine does. write marks
// the access a store (the hardware then sets dirty bits it is responsible
// for). On fault the partial reference count is reported in the fault.
func (w *Walker) Walk(regs Regs, va uint64, write bool) (Result, *Fault) {
	st := &w.scratch
	st.refs = 0
	st.hostRefs = 0
	st.accesses = st.accesses[:0]
	switch regs.Mode {
	case ModeNative:
		return w.nativeWalk(st, regs, va, write)
	case ModeNested:
		return w.nestedWalk(st, regs, va, write)
	case ModeShadow:
		return w.shadowWalk(st, regs, va)
	case ModeAgile:
		return w.agileWalk(st, regs, va, write)
	}
	panic(fmt.Sprintf("walker: invalid mode %d", int(regs.Mode)))
}
