package walker

import (
	"testing"

	"agilepaging/internal/memsim"
	"agilepaging/internal/pagetable"
	"agilepaging/internal/ptwc"
)

// benchResult defeats dead-code elimination of the walk loops.
var benchResult Result

// BenchmarkWalk4K measures a full cold 1D walk of a 4K mapping (4 memory
// references, paper Table II row 1) with no MMU caches.
func BenchmarkWalk4K(b *testing.B) {
	mem := memsim.New(64 << 20)
	pt, err := pagetable.New(mem, pagetable.HostSpace{Mem: mem})
	if err != nil {
		b.Fatal(err)
	}
	if err := pt.Map(0x7f00_0000_1000, 0xabc000, pagetable.Size4K, pagetable.FlagWrite); err != nil {
		b.Fatal(err)
	}
	w := New(mem, nil, nil)
	regs := Regs{Mode: ModeNative, Root: pt.Root(), ASID: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, f := w.Walk(regs, 0x7f00_0000_1234, false)
		if f != nil {
			b.Fatal(f)
		}
		benchResult = r
	}
}

// BenchmarkWalk2M measures a cold 1D walk terminating at a 2M leaf (3
// references).
func BenchmarkWalk2M(b *testing.B) {
	mem := memsim.New(64 << 20)
	pt, err := pagetable.New(mem, pagetable.HostSpace{Mem: mem})
	if err != nil {
		b.Fatal(err)
	}
	if err := pt.Map(0x4020_0000, 0x8020_0000, pagetable.Size2M, pagetable.FlagWrite); err != nil {
		b.Fatal(err)
	}
	w := New(mem, nil, nil)
	regs := Regs{Mode: ModeNative, Root: pt.Root(), ASID: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, f := w.Walk(regs, 0x4020_0000+0x12345, false)
		if f != nil {
			b.Fatal(f)
		}
		benchResult = r
	}
}

// BenchmarkWalkNested measures the full 2D nested walk (24 references,
// paper §II-A) with no MMU caches — the worst-case state machine.
func BenchmarkWalkNested(b *testing.B) {
	v := newVM(b)
	gva := uint64(0x7f00_0000_0000)
	v.mapGuest(gva, pagetable.Size4K)
	w := New(v.mem, nil, nil)
	regs := v.regs(ModeNested)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, f := w.Walk(regs, gva|0x42, false)
		if f != nil {
			b.Fatal(f)
		}
		benchResult = r
	}
}

// BenchmarkWalkAgile measures the agile state machine with the leaf level
// switched to nested (8 references, paper Table II "switched at 4th
// level") with no MMU caches.
func BenchmarkWalkAgile(b *testing.B) {
	v := newVM(b)
	gva := uint64(0x7f12_3456_7000)
	v.mapGuest(gva, pagetable.Size4K)
	v.plantSwitch(gva, 1)
	w := New(v.mem, nil, nil)
	regs := v.regs(ModeAgile)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, f := w.Walk(regs, gva|0x99, false)
		if f != nil {
			b.Fatal(f)
		}
		benchResult = r
	}
}

// BenchmarkWalkPWCHit measures the common warm case: a shadow walk resumed
// from a skip-3 PWC hit (1 reference).
func BenchmarkWalkPWCHit(b *testing.B) {
	v := newVM(b)
	gva := uint64(0x7f00_0000_1000)
	_, hpa := v.mapGuest(gva, pagetable.Size4K)
	v.shadowFill(gva, hpa, pagetable.Size4K)
	w := New(v.mem, ptwc.New(ptwc.DefaultConfig()), nil)
	regs := v.regs(ModeShadow)
	if _, f := w.Walk(regs, gva, false); f != nil {
		b.Fatal(f)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, f := w.Walk(regs, gva, false)
		if f != nil {
			b.Fatal(f)
		}
		benchResult = r
	}
}

// TestWalkPWCHitZeroAllocs guards the zero-allocation property of the walk
// hot path: a completed walk (here a PWC-accelerated shadow walk, the most
// common warm case) must not allocate. If this fails, a change re-introduced
// a per-walk heap allocation — see DESIGN.md "Performance engineering".
func TestWalkPWCHitZeroAllocs(t *testing.T) {
	v := newVM(t)
	gva := uint64(0x7f00_0000_1000)
	_, hpa := v.mapGuest(gva, pagetable.Size4K)
	v.shadowFill(gva, hpa, pagetable.Size4K)
	w := New(v.mem, ptwc.New(ptwc.DefaultConfig()), nil)
	regs := v.regs(ModeShadow)
	if _, f := w.Walk(regs, gva, false); f != nil {
		t.Fatal(f)
	}
	allocs := testing.AllocsPerRun(200, func() {
		r, f := w.Walk(regs, gva, false)
		if f != nil {
			t.Fatal(f)
		}
		benchResult = r
	})
	if allocs != 0 {
		t.Errorf("PWC-hit walk allocates %.1f objects/op, want 0", allocs)
	}
}

// TestWalkColdZeroAllocs extends the guard to full cold walks of every
// state machine: with recording off, no walk may allocate.
func TestWalkColdZeroAllocs(t *testing.T) {
	v := newVM(t)
	gva := uint64(0x7f12_3456_7000)
	_, hpa := v.mapGuest(gva, pagetable.Size4K)
	v.shadowFill(gva, hpa, pagetable.Size4K)
	w := New(v.mem, nil, nil)
	for _, mode := range []Mode{ModeShadow, ModeNested, ModeAgile} {
		regs := v.regs(mode)
		allocs := testing.AllocsPerRun(200, func() {
			r, f := w.Walk(regs, gva, false)
			if f != nil {
				t.Fatal(f)
			}
			benchResult = r
		})
		if allocs != 0 {
			t.Errorf("%v walk allocates %.1f objects/op, want 0", mode, allocs)
		}
	}
}
