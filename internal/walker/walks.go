package walker

import "agilepaging/internal/pagetable"

// nativeWalk is the base-native 1D state machine (paper Figure 2a).
func (w *Walker) nativeWalk(st *walkState, regs Regs, va uint64, write bool) (Result, *Fault) {
	return w.oneDWalk(st, regs, va, write, TableNative)
}

// shadowWalk is the shadow-paging state machine (paper Figure 2c): a native
// walk over the shadow page table. The VMM manages A/D bits for shadow
// entries (set at fill time / via write protection), so the hardware does
// not write them here.
func (w *Walker) shadowWalk(st *walkState, regs Regs, va uint64) (Result, *Fault) {
	return w.oneDWalk(st, regs, va, false, TableShadow)
}

// oneDWalk walks a single host-space table rooted at regs.Root. For native
// tables the hardware sets accessed (and on stores, dirty) bits in the leaf.
func (w *Walker) oneDWalk(st *walkState, regs Regs, va uint64, write bool, kind TableKind) (Result, *Fault) {
	ptr := regs.Root
	level := 0
	if w.pwc != nil {
		if p, l, nested, ok := w.pwc.Lookup(regs.ASID, va); ok && !nested {
			ptr, level = p, l
		}
	}
	for ; level < pagetable.NumLevels; level++ {
		e := w.readEntry(st, kind, level, ptr, pagetable.IndexAt(va, level))
		if !e.Present() {
			return Result{}, w.fault(st, &Fault{Kind: FaultNotPresent, VA: va, Level: level})
		}
		size, leafOK := pagetable.SizeAtLevel(level)
		if level == pagetable.NumLevels-1 || (e.Huge() && leafOK) {
			if kind == TableNative {
				ne := e.WithFlags(pagetable.FlagAccessed)
				if write && e.Writable() {
					ne = ne.WithFlags(pagetable.FlagDirty)
				}
				if ne != e {
					w.writeEntry(ptr, pagetable.IndexAt(va, level), ne)
					e = ne
				}
			}
			return w.finish(st, Result{
				HPA:        e.Addr() | va&size.Mask(),
				Size:       size,
				Flags:      e.Flags(),
				LeafShadow: kind == TableShadow,
			}), nil
		}
		ptr = e.Addr()
		if w.pwc != nil {
			w.pwc.Insert(regs.ASID, va, level+1, ptr, false)
		}
	}
	panic("walker: unreachable")
}

// hostTranslate translates a guest-physical address through the host page
// table (paper Figure 2d/e helper), charging up to NumLevels references.
// The nested TLB short-circuits repeats (paper §II-A).
func (w *Walker) hostTranslate(st *walkState, regs Regs, gpa uint64) (hpa uint64, writable bool, hostSize pagetable.Size, fault *Fault) {
	if w.ntlb != nil {
		if base, wb, ok := w.ntlb.Lookup(regs.VMID, gpa); ok {
			// The nested TLB caches at 4K granularity; report 4K so callers
			// never assume contiguity beyond the cached page.
			return base | gpa&(memFrameMask), wb, pagetable.Size4K, nil
		}
	}
	ptr := regs.HPTRoot
	for level := 0; level < pagetable.NumLevels; level++ {
		e := w.readEntry(st, TableHost, level, ptr, pagetable.IndexAt(gpa, level))
		if !e.Present() {
			return 0, false, pagetable.Size4K, w.fault(st, &Fault{Kind: FaultHost, VA: gpa, GPA: gpa, Level: level})
		}
		size, leafOK := pagetable.SizeAtLevel(level)
		if level == pagetable.NumLevels-1 || (e.Huge() && leafOK) {
			hpa = e.Addr() | gpa&size.Mask()
			if w.ntlb != nil {
				w.ntlb.Insert(regs.VMID, gpa, hpa&^memFrameMask, e.Writable())
			}
			return hpa, e.Writable(), size, nil
		}
		ptr = e.Addr()
	}
	panic("walker: unreachable")
}

const memFrameMask = uint64(1<<12) - 1

// nestedWalk is the 2D state machine (paper Figure 2b): it first translates
// gptr through the host table, then walks the guest table, translating
// every guest-physical pointer it loads — up to 24 references with 4K pages
// at both levels.
func (w *Walker) nestedWalk(st *walkState, regs Regs, va uint64, write bool) (Result, *Fault) {
	level := 0
	var ptr uint64 // host-physical address of the current guest table page
	gptrPaid := false
	resumed := false
	if w.pwc != nil {
		if p, l, nested, ok := w.pwc.Lookup(regs.ASID, va); ok && nested {
			ptr, level, resumed = p, l, true
		}
	}
	if !resumed {
		hpa, _, _, f := w.hostTranslate(st, regs, regs.GPTRoot)
		if f != nil {
			return Result{}, f
		}
		ptr = hpa
		gptrPaid = true
	}
	nestedLevels := 0
	for ; level < pagetable.NumLevels; level++ {
		idx := pagetable.IndexAt(va, level)
		e := w.readEntry(st, TableGuest, level, ptr, idx)
		nestedLevels++
		if !e.Present() {
			return Result{}, w.fault(st, &Fault{Kind: FaultGuest, VA: va, Level: level, Write: write})
		}
		size, leafOK := pagetable.SizeAtLevel(level)
		if level == pagetable.NumLevels-1 || (e.Huge() && leafOK) {
			return w.nestedLeaf(st, regs, va, write, ptr, idx, e, size, nestedLevels, gptrPaid)
		}
		hpa, _, _, f := w.hostTranslate(st, regs, e.Addr())
		if f != nil {
			return Result{}, f
		}
		ptr = hpa
		if w.pwc != nil {
			w.pwc.Insert(regs.ASID, va, level+1, ptr, true)
		}
	}
	panic("walker: unreachable")
}

// nestedLeaf completes a walk whose leaf was found in the guest table: the
// hardware sets guest accessed/dirty bits directly (paper §III-B, "Pages
// that end in nested mode instead use the hardware page walker ... to
// update guest page table accessed and dirty bits") and translates the
// final guest-physical address.
func (w *Walker) nestedLeaf(st *walkState, regs Regs, va uint64, write bool, tableHPA uint64, idx int, e pagetable.Entry, size pagetable.Size, nestedLevels int, gptrPaid bool) (Result, *Fault) {
	ne := e.WithFlags(pagetable.FlagAccessed)
	if write && e.Writable() {
		ne = ne.WithFlags(pagetable.FlagDirty)
	}
	if ne != e {
		w.writeEntry(tableHPA, idx, ne)
	}
	gpa := e.Addr() | va&size.Mask()
	hpa, hostW, hostSize, f := w.hostTranslate(st, regs, gpa)
	if f != nil {
		return Result{}, f
	}
	flags := e.Flags()
	if !hostW {
		flags = flags.WithoutFlags(pagetable.FlagWrite)
	}
	// When the host backs this guest page at a smaller size, the TLB entry
	// splinters to the host size (paper §V, "Large Page Support").
	if hostSize.Bytes() < size.Bytes() {
		size = hostSize
	}
	return w.finish(st, Result{
		HPA:            hpa,
		Size:           size,
		Flags:          flags,
		GPA:            gpa,
		NestedLevels:   nestedLevels,
		GptrTranslated: gptrPaid,
	}), nil
}

// agileWalk is the paper's Figure 4 state machine: start in shadow mode at
// the shadow root (or directly in nested mode under RootSwitch/FullNested)
// and switch to nested mode when an entry with the switching bit is read.
func (w *Walker) agileWalk(st *walkState, regs Regs, va uint64, write bool) (Result, *Fault) {
	if regs.FullNested {
		// The paper encodes this as sptr == gptr.
		return w.nestedWalk(st, regs, va, write)
	}
	nested := regs.RootSwitch
	ptr := regs.Root
	level := 0
	if w.pwc != nil {
		if p, l, n, ok := w.pwc.Lookup(regs.ASID, va); ok {
			ptr, level, nested = p, l, n
		}
	}
	nestedLevels := 0
	for ; level < pagetable.NumLevels; level++ {
		idx := pagetable.IndexAt(va, level)
		if nested {
			e := w.readEntry(st, TableGuest, level, ptr, idx)
			nestedLevels++
			if !e.Present() {
				return Result{}, w.fault(st, &Fault{Kind: FaultGuest, VA: va, Level: level, Write: write})
			}
			size, leafOK := pagetable.SizeAtLevel(level)
			if level == pagetable.NumLevels-1 || (e.Huge() && leafOK) {
				return w.nestedLeaf(st, regs, va, write, ptr, idx, e, size, nestedLevels, false)
			}
			hpa, _, _, f := w.hostTranslate(st, regs, e.Addr())
			if f != nil {
				return Result{}, f
			}
			ptr = hpa
			if w.pwc != nil {
				w.pwc.Insert(regs.ASID, va, level+1, ptr, true)
			}
			continue
		}
		e := w.readEntry(st, TableShadow, level, ptr, idx)
		if !e.Present() {
			return Result{}, w.fault(st, &Fault{Kind: FaultNotPresent, VA: va, Level: level, Write: write})
		}
		if e.Switching() {
			// Switch to nested mode: the entry holds the host-physical
			// address of the next *guest* table level (paper §III-A).
			nested = true
			ptr = e.Addr()
			if w.pwc != nil && level < pagetable.NumLevels-1 {
				w.pwc.Insert(regs.ASID, va, level+1, ptr, true)
			}
			continue
		}
		size, leafOK := pagetable.SizeAtLevel(level)
		if level == pagetable.NumLevels-1 || (e.Huge() && leafOK) {
			return w.finish(st, Result{
				HPA:        e.Addr() | va&size.Mask(),
				Size:       size,
				Flags:      e.Flags(),
				LeafShadow: true,
			}), nil
		}
		ptr = e.Addr()
		if w.pwc != nil {
			w.pwc.Insert(regs.ASID, va, level+1, ptr, false)
		}
	}
	panic("walker: unreachable")
}
