// Package stats provides the small statistics containers the simulator's
// reports build on: fixed-bucket histograms for per-event quantities
// (memory references per walk, exits per interval) and streaming summary
// accumulators.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Hist is a histogram over small non-negative integer values with an
// overflow bucket, sized for quantities like "memory references per walk"
// (0..24 and a tail).
type Hist struct {
	buckets  []uint64
	overflow uint64
	count    uint64
	sum      uint64
	max      int
}

// NewHist creates a histogram with exact buckets for values 0..limit-1;
// larger values land in the overflow bucket.
func NewHist(limit int) *Hist {
	if limit < 1 {
		limit = 1
	}
	return &Hist{buckets: make([]uint64, limit)}
}

// Add records one observation.
func (h *Hist) Add(v int) {
	if v < 0 {
		v = 0
	}
	h.count++
	h.sum += uint64(v)
	if v > h.max {
		h.max = v
	}
	if v < len(h.buckets) {
		h.buckets[v]++
		return
	}
	h.overflow++
}

// Count returns the number of observations.
func (h *Hist) Count() uint64 { return h.count }

// Mean returns the arithmetic mean of the observations.
func (h *Hist) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Max returns the largest observation.
func (h *Hist) Max() int { return h.max }

// Bucket returns the count for exact value v (0 for overflow range).
func (h *Hist) Bucket(v int) uint64 {
	if v < 0 || v >= len(h.buckets) {
		return 0
	}
	return h.buckets[v]
}

// Overflow returns the count of observations at or above the bucket limit.
func (h *Hist) Overflow() uint64 { return h.overflow }

// Fraction returns the share of observations with exact value v.
func (h *Hist) Fraction(v int) float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.Bucket(v)) / float64(h.count)
}

// Percentile returns the smallest value x such that at least p (0..1) of
// the observations are <= x. Overflow observations report the bucket limit.
func (h *Hist) Percentile(p float64) int {
	if h.count == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	target := uint64(math.Ceil(p * float64(h.count)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for v, c := range h.buckets {
		cum += c
		if cum >= target {
			return v
		}
	}
	return len(h.buckets)
}

// Merge adds the contents of other into h. Both histograms must have the
// same bucket limit.
func (h *Hist) Merge(other *Hist) error {
	if len(h.buckets) != len(other.buckets) {
		return fmt.Errorf("stats: merging histograms with limits %d and %d", len(h.buckets), len(other.buckets))
	}
	for i, c := range other.buckets {
		h.buckets[i] += c
	}
	h.overflow += other.overflow
	h.count += other.count
	h.sum += other.sum
	if other.max > h.max {
		h.max = other.max
	}
	return nil
}

// Reset zeroes the histogram.
func (h *Hist) Reset() {
	for i := range h.buckets {
		h.buckets[i] = 0
	}
	h.overflow, h.count, h.sum = 0, 0, 0
	h.max = 0
}

// String renders the non-empty buckets compactly.
func (h *Hist) String() string {
	var parts []string
	for v, c := range h.buckets {
		if c > 0 {
			parts = append(parts, fmt.Sprintf("%d:%d", v, c))
		}
	}
	if h.overflow > 0 {
		parts = append(parts, fmt.Sprintf(">=%d:%d", len(h.buckets), h.overflow))
	}
	return "Hist{" + strings.Join(parts, " ") + "}"
}

// Summary is a streaming accumulator for mean and extrema of float series
// (Welford's algorithm for variance).
type Summary struct {
	n        uint64
	mean, m2 float64
	min, max float64
}

// Add records one observation.
func (s *Summary) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// N returns the number of observations.
func (s *Summary) N() uint64 { return s.n }

// Mean returns the running mean.
func (s *Summary) Mean() float64 { return s.mean }

// Min returns the smallest observation.
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation.
func (s *Summary) Max() float64 { return s.max }

// StdDev returns the sample standard deviation.
func (s *Summary) StdDev() float64 {
	if s.n < 2 {
		return 0
	}
	return math.Sqrt(s.m2 / float64(s.n-1))
}

// Geomean computes the geometric mean of xs (which must be positive).
func Geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	acc := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		acc += math.Log(x)
	}
	return math.Exp(acc / float64(len(xs)))
}

// Percentiles computes the given quantiles (0..1) of xs by sorting a copy.
func Percentiles(xs []float64, qs ...float64) []float64 {
	out := make([]float64, len(qs))
	if len(xs) == 0 {
		return out
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	for i, q := range qs {
		if q < 0 {
			q = 0
		}
		if q > 1 {
			q = 1
		}
		idx := int(math.Ceil(q*float64(len(sorted)))) - 1
		if idx < 0 {
			idx = 0
		}
		out[i] = sorted[idx]
	}
	return out
}
