package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHistBasics(t *testing.T) {
	h := NewHist(25)
	for _, v := range []int{4, 4, 8, 24, 24, 24, 30} {
		h.Add(v)
	}
	if h.Count() != 7 {
		t.Errorf("Count = %d", h.Count())
	}
	if h.Bucket(4) != 2 || h.Bucket(24) != 3 || h.Bucket(8) != 1 {
		t.Errorf("buckets: %s", h)
	}
	if h.Overflow() != 1 {
		t.Errorf("Overflow = %d", h.Overflow())
	}
	if h.Max() != 30 {
		t.Errorf("Max = %d", h.Max())
	}
	want := float64(4+4+8+24+24+24+30) / 7
	if math.Abs(h.Mean()-want) > 1e-9 {
		t.Errorf("Mean = %v, want %v", h.Mean(), want)
	}
	if f := h.Fraction(4); math.Abs(f-2.0/7) > 1e-9 {
		t.Errorf("Fraction(4) = %v", f)
	}
	if h.String() == "Hist{}" {
		t.Error("empty String for populated hist")
	}
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 || h.Overflow() != 0 {
		t.Error("Reset incomplete")
	}
}

func TestHistNegativeAndZeroLimit(t *testing.T) {
	h := NewHist(0) // clamps to 1 bucket
	h.Add(-5)       // clamps to 0
	if h.Bucket(0) != 1 {
		t.Errorf("negative add: %s", h)
	}
}

func TestHistPercentile(t *testing.T) {
	h := NewHist(10)
	for i := 0; i < 90; i++ {
		h.Add(1)
	}
	for i := 0; i < 10; i++ {
		h.Add(9)
	}
	if p := h.Percentile(0.5); p != 1 {
		t.Errorf("p50 = %d", p)
	}
	if p := h.Percentile(0.95); p != 9 {
		t.Errorf("p95 = %d", p)
	}
	if p := h.Percentile(1.0); p != 9 {
		t.Errorf("p100 = %d", p)
	}
	if (&Hist{}).Percentile(0.5) != 0 {
		t.Error("empty percentile")
	}
	// Overflow observations report the limit.
	h2 := NewHist(4)
	h2.Add(100)
	if p := h2.Percentile(1.0); p != 4 {
		t.Errorf("overflow percentile = %d", p)
	}
}

func TestHistMerge(t *testing.T) {
	a, b := NewHist(8), NewHist(8)
	a.Add(1)
	a.Add(2)
	b.Add(2)
	b.Add(9)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Count() != 4 || a.Bucket(2) != 2 || a.Overflow() != 1 || a.Max() != 9 {
		t.Errorf("merged: %s max=%d", a, a.Max())
	}
	if err := a.Merge(NewHist(4)); err == nil {
		t.Error("mismatched merge accepted")
	}
}

// TestHistMeanProperty: histogram mean equals the true mean for any input
// within the bucket range.
func TestHistMeanProperty(t *testing.T) {
	err := quick.Check(func(vals []uint8) bool {
		h := NewHist(256)
		sum := 0
		for _, v := range vals {
			h.Add(int(v))
			sum += int(v)
		}
		if len(vals) == 0 {
			return h.Mean() == 0
		}
		return math.Abs(h.Mean()-float64(sum)/float64(len(vals))) < 1e-9
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestSummary(t *testing.T) {
	var s Summary
	if s.StdDev() != 0 || s.Mean() != 0 {
		t.Error("zero-value summary")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 || s.Mean() != 5 || s.Min() != 2 || s.Max() != 9 {
		t.Errorf("summary: n=%d mean=%v min=%v max=%v", s.N(), s.Mean(), s.Min(), s.Max())
	}
	// Known sample stddev of this classic data set: sqrt(32/7).
	if want := math.Sqrt(32.0 / 7); math.Abs(s.StdDev()-want) > 1e-9 {
		t.Errorf("StdDev = %v, want %v", s.StdDev(), want)
	}
}

func TestSummaryMatchesDirectComputation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var s Summary
	var xs []float64
	for i := 0; i < 1000; i++ {
		x := rng.NormFloat64()*10 + 50
		s.Add(x)
		xs = append(xs, x)
	}
	mean := 0.0
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	if math.Abs(s.Mean()-mean) > 1e-9 {
		t.Errorf("streaming mean %v vs direct %v", s.Mean(), mean)
	}
	varSum := 0.0
	for _, x := range xs {
		varSum += (x - mean) * (x - mean)
	}
	want := math.Sqrt(varSum / float64(len(xs)-1))
	if math.Abs(s.StdDev()-want) > 1e-6 {
		t.Errorf("streaming stddev %v vs direct %v", s.StdDev(), want)
	}
}

func TestGeomean(t *testing.T) {
	if g := Geomean([]float64{2, 8}); math.Abs(g-4) > 1e-9 {
		t.Errorf("Geomean = %v", g)
	}
	if Geomean(nil) != 0 {
		t.Error("empty geomean")
	}
	if Geomean([]float64{1, -1}) != 0 {
		t.Error("non-positive geomean should be 0")
	}
}

func TestPercentiles(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	ps := Percentiles(xs, 0, 0.5, 1)
	if ps[0] != 1 || ps[1] != 3 || ps[2] != 5 {
		t.Errorf("percentiles = %v", ps)
	}
	// Input must not be mutated.
	if xs[0] != 5 {
		t.Error("Percentiles mutated input")
	}
	if got := Percentiles(nil, 0.5); got[0] != 0 {
		t.Error("empty percentiles")
	}
}

// TestHistPercentileOverflowCrossing: once the cumulative in-range counts
// fall short of the target rank, Percentile must report the bucket limit —
// not the last in-range value — so overflow-heavy distributions (e.g.
// pathological refs-per-walk tails) are not silently understated.
func TestHistPercentileOverflowCrossing(t *testing.T) {
	h := NewHist(4)
	for i := 0; i < 60; i++ {
		h.Add(2)
	}
	for i := 0; i < 40; i++ {
		h.Add(7) // overflow: >= limit 4
	}
	if p := h.Percentile(0.6); p != 2 {
		t.Errorf("p60 = %d, want in-range 2", p)
	}
	// p61 crosses into the overflow mass.
	if p := h.Percentile(0.61); p != 4 {
		t.Errorf("p61 = %d, want bucket limit 4", p)
	}
	// Out-of-range p clamps to [0, 1].
	if p := h.Percentile(-0.5); p != 2 {
		t.Errorf("clamped p<0 = %d", p)
	}
	if p := h.Percentile(2.0); p != 4 {
		t.Errorf("clamped p>1 = %d", p)
	}
	// All-overflow histogram: every percentile is the limit.
	all := NewHist(3)
	all.Add(50)
	if p := all.Percentile(0.01); p != 3 {
		t.Errorf("all-overflow p1 = %d", p)
	}
}

// TestHistMergeOverflowAndMaxPropagation: Merge must combine the overflow
// mass of both histograms and keep the larger max, whichever side holds it,
// and the merged mean must reflect the true combined sum.
func TestHistMergeOverflowAndMaxPropagation(t *testing.T) {
	a, b := NewHist(4), NewHist(4)
	a.Add(10) // a overflow, a.max = 10
	a.Add(1)
	b.Add(6) // b overflow, smaller max
	b.Add(2)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Overflow() != 2 {
		t.Errorf("merged overflow = %d, want 2", a.Overflow())
	}
	if a.Max() != 10 {
		t.Errorf("merged max = %d, want receiver's 10 retained", a.Max())
	}
	if a.Mean() != (10+1+6+2)/4.0 {
		t.Errorf("merged mean = %v", a.Mean())
	}
	// The other direction: the argument's larger max wins.
	c, d := NewHist(4), NewHist(4)
	c.Add(5)
	d.Add(20)
	if err := c.Merge(d); err != nil {
		t.Fatal(err)
	}
	if c.Max() != 20 || c.Overflow() != 2 {
		t.Errorf("merged max/overflow = %d/%d, want 20/2", c.Max(), c.Overflow())
	}
}
