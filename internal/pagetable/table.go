package pagetable

import (
	"errors"
	"fmt"

	"agilepaging/internal/memsim"
)

// Errors returned by table operations.
//
// Concurrency contract: these are the package's only package-level
// variables; they are assigned once at init and never written again.
// Table instances themselves are not goroutine-safe — each parallel sweep
// job builds its tables inside its own cpu.Machine and never shares them.
var (
	ErrNotMapped     = errors.New("pagetable: address not mapped")
	ErrAlreadyMapped = errors.New("pagetable: address already mapped")
	ErrMisaligned    = errors.New("pagetable: misaligned address")
	ErrSplinter      = errors.New("pagetable: mapping conflicts with existing large page")
	ErrSwitching     = errors.New("pagetable: walk path blocked by a switching entry")
)

// Space abstracts the address space the table's pointers are expressed in.
//
// A native or host page table stores host-physical addresses, so its Space
// is the identity over host frames. A *guest* page table stores
// guest-physical addresses and its own pages live at guest-physical
// addresses; its Space translates gPA to the backing host frame via the
// VM's host page table. This separation is what lets the nested walker
// charge host-walk references for each guest-table access while the
// software code paths share one implementation.
type Space interface {
	// FrameFor returns the host frame backing the table page that starts
	// at in-space physical address pa.
	FrameFor(pa uint64) (memsim.Frame, bool)
	// AllocTablePage allocates a zeroed table page in this space and
	// returns its in-space physical address.
	AllocTablePage() (uint64, error)
	// FreeTablePage releases a table page previously returned by
	// AllocTablePage.
	FreeTablePage(pa uint64) error
}

// HostSpace is the identity Space over host physical memory.
type HostSpace struct {
	Mem *memsim.Memory
}

// FrameFor implements Space.
func (h HostSpace) FrameFor(pa uint64) (memsim.Frame, bool) {
	f := memsim.FrameOf(pa)
	if !h.Mem.IsTable(f) {
		return 0, false
	}
	return f, true
}

// AllocTablePage implements Space.
func (h HostSpace) AllocTablePage() (uint64, error) {
	f, err := h.Mem.AllocTable()
	if err != nil {
		return 0, err
	}
	return f.Addr(), nil
}

// FreeTablePage implements Space.
func (h HostSpace) FreeTablePage(pa uint64) error {
	return h.Mem.FreeFrame(memsim.FrameOf(pa))
}

// WriteHook observes every entry write performed through a Table. The VMM
// installs one on each guest page table to model write-protection traps and
// shadow-page-table coherence (paper §III-B): pageAddr is the in-space
// address of the table page written, level its depth (0 = root), idx the
// entry index, and old/new the entry values.
type WriteHook func(pageAddr uint64, level, idx int, old, new Entry)

// FreeHook observes every table page released back to the Space by a
// structural prune (FreeEmpty) or teardown (Destroy). The VMM installs one
// on each guest page table so it can tear down write-protect tracking and
// the covering shadow subtree *before* the guest table page is freed — the
// shadow-invalidation contract for structural guest page-table edits. The
// hook fires with the page still registered (Info still answers for it) and
// before the Space reclaims it.
type FreeHook func(pageAddr uint64, level int, vaBase uint64)

// Table is a four-level hierarchical page table.
type Table struct {
	mem   *memsim.Memory
	space Space
	root  uint64
	hook  WriteHook
	fhook FreeHook

	// levelOf records the depth of every table page so hooks and scans can
	// attribute writes to a page-table level, keyed by in-space address.
	levelOf map[uint64]int
	// vaBaseOf records the lowest virtual address each table page covers,
	// so the VMM can map a PT-page write back to the gVA range it affects.
	vaBaseOf map[uint64]uint64
}

// PageInfo describes one of the table's own pages.
type PageInfo struct {
	Level  int
	VABase uint64
}

// Info returns the level and covered VA base of the table page at in-space
// address pa.
func (t *Table) Info(pa uint64) (PageInfo, bool) {
	l, ok := t.levelOf[pa]
	if !ok {
		return PageInfo{}, false
	}
	return PageInfo{Level: l, VABase: t.vaBaseOf[pa]}, true
}

// SpanAtLevel returns the number of bytes of virtual address space covered
// by one entry at the given level: a level-3 (leaf) entry covers 4 KiB, a
// level-0 entry covers 512 GiB.
func SpanAtLevel(level int) uint64 {
	return 1 << (39 - uint(level)*9)
}

// New allocates an empty table in the given space.
func New(mem *memsim.Memory, space Space) (*Table, error) {
	root, err := space.AllocTablePage()
	if err != nil {
		return nil, fmt.Errorf("pagetable: allocating root: %w", err)
	}
	t := &Table{
		mem:      mem,
		space:    space,
		root:     root,
		levelOf:  map[uint64]int{root: 0},
		vaBaseOf: map[uint64]uint64{root: 0},
	}
	return t, nil
}

// Root returns the in-space physical address of the root table page (the
// value loaded into the corresponding page-table pointer register).
func (t *Table) Root() uint64 { return t.root }

// Space returns the table's address space.
func (t *Table) Space() Space { return t.space }

// SetWriteHook installs h as the observer of all entry writes. Passing nil
// removes the hook.
func (t *Table) SetWriteHook(h WriteHook) { t.hook = h }

// SetFreeHook installs h as the observer of all table-page frees performed
// by FreeEmpty and Destroy. Passing nil removes the hook.
func (t *Table) SetFreeHook(h FreeHook) { t.fhook = h }

// LevelOf reports the level of the table page at in-space address pa, or
// -1 if pa is not one of this table's pages.
func (t *Table) LevelOf(pa uint64) int {
	if l, ok := t.levelOf[pa]; ok {
		return l
	}
	return -1
}

// TablePages returns the in-space addresses of all the table's pages along
// with their levels. The VMM's dirty-bit policy scans these (paper §III-C).
func (t *Table) TablePages() map[uint64]int {
	out := make(map[uint64]int, len(t.levelOf))
	for pa, l := range t.levelOf {
		out[pa] = l
	}
	return out
}

// frame resolves an in-space table-page address to its host frame.
func (t *Table) frame(pa uint64) memsim.Frame {
	f, ok := t.space.FrameFor(pa)
	if !ok {
		panic(fmt.Sprintf("pagetable: table page %#x not backed", pa))
	}
	return f
}

// readEntry reads an entry of the table page at in-space address pageAddr.
func (t *Table) readEntry(pageAddr uint64, idx int) Entry {
	return Entry(t.mem.ReadEntry(t.frame(pageAddr), idx))
}

// writeEntry writes an entry and fires the write hook.
func (t *Table) writeEntry(pageAddr uint64, level, idx int, val Entry) {
	f := t.frame(pageAddr)
	old := Entry(t.mem.ReadEntry(f, idx))
	t.mem.WriteEntry(f, idx, uint64(val))
	if t.hook != nil {
		t.hook(pageAddr, level, idx, old, val)
	}
}

// ensureTable walks one level down from the entry at (pageAddr, level, idx),
// allocating the next-level table if absent, and returns its address.
// vaBase is the lowest VA covered by the table page at pageAddr.
func (t *Table) ensureTable(pageAddr uint64, level, idx int, vaBase uint64) (uint64, error) {
	e := t.readEntry(pageAddr, idx)
	if e.Present() {
		if e.Huge() {
			return 0, ErrSplinter
		}
		if e.Switching() {
			// A switching entry's address is a *guest* table pointer in
			// another physical space (paper §III-A); descending through it
			// would walk foreign memory.
			return 0, ErrSwitching
		}
		return e.Addr(), nil
	}
	next, err := t.space.AllocTablePage()
	if err != nil {
		return 0, err
	}
	t.levelOf[next] = level + 1
	t.vaBaseOf[next] = vaBase | uint64(idx)*SpanAtLevel(level)
	t.writeEntry(pageAddr, level, idx, MakeEntry(next, FlagPresent|FlagWrite|FlagUser))
	return next, nil
}

// Map installs a translation va⇒pa of the given size with the given leaf
// flags (FlagPresent is implied; FlagHuge is implied for 2M/1G sizes).
// Both va and pa must be size-aligned. Mapping over an existing present
// leaf returns ErrAlreadyMapped.
func (t *Table) Map(va, pa uint64, size Size, flags Entry) error {
	if va&size.Mask() != 0 || pa&size.Mask() != 0 {
		return fmt.Errorf("%w: va=%#x pa=%#x size=%s", ErrMisaligned, va, pa, size)
	}
	leaf := size.LeafLevel()
	pageAddr := t.root
	for level := 0; level < leaf; level++ {
		next, err := t.ensureTable(pageAddr, level, IndexAt(va, level), va&^(SpanAtLevel(level)-1))
		if err != nil {
			return err
		}
		pageAddr = next
	}
	idx := IndexAt(va, leaf)
	if t.readEntry(pageAddr, idx).Present() {
		return fmt.Errorf("%w: va=%#x", ErrAlreadyMapped, va)
	}
	if size != Size4K {
		flags |= FlagHuge
	}
	t.writeEntry(pageAddr, leaf, idx, MakeEntry(pa, flags|FlagPresent))
	return nil
}

// Remap replaces the leaf entry for va (which must exist at exactly the
// given size) with a mapping to pa carrying the given flags. Used for COW
// resolution and page migration.
func (t *Table) Remap(va, pa uint64, size Size, flags Entry) error {
	pageAddr, idx, level, err := t.leafSlot(va, size)
	if err != nil {
		return err
	}
	if size != Size4K {
		flags |= FlagHuge
	}
	t.writeEntry(pageAddr, level, idx, MakeEntry(pa, flags|FlagPresent))
	return nil
}

// Unmap removes the translation for va at the given size. The intermediate
// tables are retained (as OS kernels typically do on munmap of small
// ranges); FreeEmpty prunes them explicitly.
func (t *Table) Unmap(va uint64, size Size) error {
	pageAddr, idx, level, err := t.leafSlot(va, size)
	if err != nil {
		return err
	}
	t.writeEntry(pageAddr, level, idx, 0)
	return nil
}

// leafSlot locates the present leaf entry mapping va at exactly the given
// size and returns its slot.
func (t *Table) leafSlot(va uint64, size Size) (pageAddr uint64, idx, level int, err error) {
	if va&size.Mask() != 0 {
		return 0, 0, 0, fmt.Errorf("%w: va=%#x size=%s", ErrMisaligned, va, size)
	}
	leaf := size.LeafLevel()
	pageAddr = t.root
	for level = 0; level < leaf; level++ {
		e := t.readEntry(pageAddr, IndexAt(va, level))
		if !e.Present() {
			return 0, 0, 0, fmt.Errorf("%w: va=%#x (no level-%d table)", ErrNotMapped, va, level+1)
		}
		if e.Huge() {
			return 0, 0, 0, fmt.Errorf("%w: va=%#x mapped by level-%d large page", ErrSplinter, va, level)
		}
		if e.Switching() {
			return 0, 0, 0, fmt.Errorf("%w: va=%#x at level %d", ErrSwitching, va, level)
		}
		pageAddr = e.Addr()
	}
	idx = IndexAt(va, leaf)
	if !t.readEntry(pageAddr, idx).Present() {
		return 0, 0, 0, fmt.Errorf("%w: va=%#x", ErrNotMapped, va)
	}
	return pageAddr, idx, leaf, nil
}

// WalkResult describes a successful software lookup.
type WalkResult struct {
	Entry Entry  // the leaf entry
	Level int    // level of the leaf entry (0 = root)
	Size  Size   // page size of the mapping
	PA    uint64 // translated physical address of va (page base + offset)
}

// Lookup performs a software walk of the table (no hardware accounting) and
// returns the leaf translation for va.
func (t *Table) Lookup(va uint64) (WalkResult, error) {
	r, level, ok := t.lookup(va)
	if !ok {
		return WalkResult{}, fmt.Errorf("%w: va=%#x at level %d", ErrNotMapped, va, level)
	}
	return r, nil
}

// TryLookup is Lookup for callers that treat a miss as a boolean condition
// rather than an error: the software fault and shadow-fill paths probe
// tables constantly, and constructing a descriptive error for every miss
// was a measurable share of the simulation loop.
func (t *Table) TryLookup(va uint64) (WalkResult, bool) {
	r, _, ok := t.lookup(va)
	return r, ok
}

// lookup walks the table; on a miss it reports the level that terminated
// the walk.
func (t *Table) lookup(va uint64) (WalkResult, int, bool) {
	pageAddr := t.root
	for level := 0; level < NumLevels; level++ {
		e := t.readEntry(pageAddr, IndexAt(va, level))
		if !e.Present() {
			return WalkResult{}, level, false
		}
		size, leafOK := SizeAtLevel(level)
		if level == NumLevels-1 || (e.Huge() && leafOK) {
			return WalkResult{
				Entry: e,
				Level: level,
				Size:  size,
				PA:    e.Addr() | va&size.Mask(),
			}, level, true
		}
		if e.Switching() {
			// The translation continues in another table (nested mode); it
			// does not terminate in this one.
			return WalkResult{}, level, false
		}
		pageAddr = e.Addr()
	}
	panic("pagetable: unreachable")
}

// SetFlags ORs flags into the leaf entry mapping va (any size).
func (t *Table) SetFlags(va uint64, flags Entry) error {
	return t.updateLeaf(va, func(e Entry) Entry { return e.WithFlags(flags) })
}

// ClearFlags removes flags from the leaf entry mapping va (any size).
func (t *Table) ClearFlags(va uint64, flags Entry) error {
	return t.updateLeaf(va, func(e Entry) Entry { return e.WithoutFlags(flags) })
}

// updateLeaf applies fn to the leaf entry mapping va at whatever size it is
// mapped.
func (t *Table) updateLeaf(va uint64, fn func(Entry) Entry) error {
	pageAddr := t.root
	for level := 0; level < NumLevels; level++ {
		idx := IndexAt(va, level)
		e := t.readEntry(pageAddr, idx)
		if !e.Present() {
			return fmt.Errorf("%w: va=%#x at level %d", ErrNotMapped, va, level)
		}
		_, leafOK := SizeAtLevel(level)
		if level == NumLevels-1 || (e.Huge() && leafOK) {
			t.writeEntry(pageAddr, level, idx, fn(e))
			return nil
		}
		if e.Switching() {
			return fmt.Errorf("%w: va=%#x at level %d", ErrSwitching, va, level)
		}
		pageAddr = e.Addr()
	}
	panic("pagetable: unreachable")
}

// EntryAt returns the raw entry at the given level along va's walk path,
// without requiring the walk to terminate there.
func (t *Table) EntryAt(va uint64, level int) (Entry, error) {
	if level < 0 || level >= NumLevels {
		return 0, fmt.Errorf("pagetable: invalid level %d", level)
	}
	pageAddr := t.root
	for l := 0; l < level; l++ {
		e := t.readEntry(pageAddr, IndexAt(va, l))
		if !e.Present() || e.Huge() {
			return 0, fmt.Errorf("%w: va=%#x has no level-%d entry", ErrNotMapped, va, level)
		}
		if e.Switching() {
			return 0, fmt.Errorf("%w: va=%#x at level %d", ErrSwitching, va, l)
		}
		pageAddr = e.Addr()
	}
	return t.readEntry(pageAddr, IndexAt(va, level)), nil
}

// SetEntryAt overwrites the raw entry at the given level along va's walk
// path. It is used by the VMM to plant switching-bit entries in shadow
// tables; the intermediate path must already exist.
func (t *Table) SetEntryAt(va uint64, level int, val Entry) error {
	if level < 0 || level >= NumLevels {
		return fmt.Errorf("pagetable: invalid level %d", level)
	}
	pageAddr := t.root
	for l := 0; l < level; l++ {
		e := t.readEntry(pageAddr, IndexAt(va, l))
		if !e.Present() || e.Huge() {
			return fmt.Errorf("%w: va=%#x has no level-%d entry", ErrNotMapped, va, level)
		}
		if e.Switching() {
			return fmt.Errorf("%w: va=%#x at level %d", ErrSwitching, va, l)
		}
		pageAddr = e.Addr()
	}
	t.writeEntry(pageAddr, level, IndexAt(va, level), val)
	return nil
}

// EnsurePath materializes intermediate tables so that a level-`level` entry
// exists along va's walk path, and returns the address of the table page
// holding that entry. Used by the VMM when building partial shadow tables.
func (t *Table) EnsurePath(va uint64, level int) (uint64, error) {
	if level < 0 || level >= NumLevels {
		return 0, fmt.Errorf("pagetable: invalid level %d", level)
	}
	pageAddr := t.root
	for l := 0; l < level; l++ {
		next, err := t.ensureTable(pageAddr, l, IndexAt(va, l), va&^(SpanAtLevel(l)-1))
		if err != nil {
			return 0, err
		}
		pageAddr = next
	}
	return pageAddr, nil
}

// Leaf describes one present leaf mapping encountered by VisitLeaves.
type Leaf struct {
	VA    uint64
	Entry Entry
	Size  Size
}

// VisitLeaves calls fn for every present leaf mapping in the table, in
// ascending VA order. If fn returns false the walk stops.
func (t *Table) VisitLeaves(fn func(Leaf) bool) {
	t.visit(t.root, 0, 0, fn)
}

func (t *Table) visit(pageAddr uint64, level int, vaBase uint64, fn func(Leaf) bool) bool {
	for idx := 0; idx < memsim.EntriesPerTable; idx++ {
		e := t.readEntry(pageAddr, idx)
		if !e.Present() {
			continue
		}
		va := vaBase | uint64(idx)<<(39-uint(level)*9)
		size, leafOK := SizeAtLevel(level)
		if level == NumLevels-1 || (e.Huge() && leafOK) {
			if !fn(Leaf{VA: va, Entry: e, Size: size}) {
				return false
			}
			continue
		}
		if e.Switching() {
			continue // translation continues in another table; no leaf here
		}
		if !t.visit(e.Addr(), level+1, va, fn) {
			return false
		}
	}
	return true
}

// CountLeaves returns the number of present leaf mappings.
func (t *Table) CountLeaves() int {
	n := 0
	t.VisitLeaves(func(Leaf) bool { n++; return true })
	return n
}

// FreeEmpty prunes interior table pages that no longer contain any present
// entries, returning the number of pages freed. The root is never freed.
// Each freed page is announced through the free hook first, so a VMM can
// invalidate derived shadow state before the page returns to the Space.
func (t *Table) FreeEmpty() int {
	freed := 0
	var prune func(pageAddr uint64, level int) bool // returns "page is empty"
	prune = func(pageAddr uint64, level int) bool {
		empty := true
		for idx := 0; idx < memsim.EntriesPerTable; idx++ {
			e := t.readEntry(pageAddr, idx)
			if !e.Present() {
				continue
			}
			_, leafOK := SizeAtLevel(level)
			if level == NumLevels-1 || (e.Huge() && leafOK) {
				empty = false
				continue
			}
			if e.Switching() {
				// The target is a table page of another space; it is not
				// ours to scan or free.
				empty = false
				continue
			}
			if prune(e.Addr(), level+1) {
				child := e.Addr()
				t.writeEntry(pageAddr, level, idx, 0)
				freed += t.freePage(child)
			} else {
				empty = false
			}
		}
		return empty
	}
	prune(t.root, 0)
	return freed
}

// freePage announces and releases one of the table's own pages, returning 1
// if the Space accepted the free. The hook fires while the page is still
// registered, so Info answers for it inside the callback.
func (t *Table) freePage(pageAddr uint64) int {
	if t.fhook != nil {
		t.fhook(pageAddr, t.levelOf[pageAddr], t.vaBaseOf[pageAddr])
	}
	delete(t.levelOf, pageAddr)
	delete(t.vaBaseOf, pageAddr)
	if err := t.space.FreeTablePage(pageAddr); err != nil {
		return 0
	}
	return 1
}

// ZapSubtree clears the entry at the given level along va's walk path and
// releases every page of this table reachable only through it. It is the
// subtree form of shadow invalidation: when a guest prunes a table page, the
// VMM must drop the whole covering shadow subtree, not just one entry.
//
// A switching entry at the target slot is cleared without being
// dereferenced (its address belongs to another table). A switching entry or
// hole anywhere above the target means no state of this table covers va at
// that level, so there is nothing to zap. It reports whether an entry was
// cleared and how many table pages were freed.
func (t *Table) ZapSubtree(va uint64, level int) (zapped bool, freed int) {
	if level < 0 || level >= NumLevels {
		return false, 0
	}
	pageAddr := t.root
	for l := 0; l < level; l++ {
		e := t.readEntry(pageAddr, IndexAt(va, l))
		if !e.Present() || e.Huge() || e.Switching() {
			return false, 0
		}
		pageAddr = e.Addr()
	}
	idx := IndexAt(va, level)
	e := t.readEntry(pageAddr, idx)
	if !e.Present() {
		return false, 0
	}
	if !e.Switching() {
		_, leafOK := SizeAtLevel(level)
		if level != NumLevels-1 && !(e.Huge() && leafOK) {
			freed = t.freeSubtree(e.Addr(), level+1)
		}
	}
	t.writeEntry(pageAddr, level, idx, 0)
	return true, freed
}

// freeSubtree releases the table page at pageAddr and everything below it
// (the slot pointing at it has already been, or is about to be, cleared).
// Switching entries are left alone: their targets live in another table.
func (t *Table) freeSubtree(pageAddr uint64, level int) int {
	freed := 0
	for idx := 0; idx < memsim.EntriesPerTable; idx++ {
		e := t.readEntry(pageAddr, idx)
		if !e.Present() || e.Switching() {
			continue
		}
		_, leafOK := SizeAtLevel(level)
		if level == NumLevels-1 || (e.Huge() && leafOK) {
			continue
		}
		freed += t.freeSubtree(e.Addr(), level+1)
	}
	return freed + t.freePage(pageAddr)
}

// Reset discards every mapping and re-roots the table on a freshly
// allocated page, restoring the state New left it in. The write hook is
// retained (it is part of the table's wiring, not its run state). Callers
// that reset the underlying Memory wholesale may skip per-page frees and
// call Reset directly; the stale frames were already reclaimed.
func (t *Table) Reset() error {
	clear(t.levelOf)
	clear(t.vaBaseOf)
	root, err := t.space.AllocTablePage()
	if err != nil {
		return fmt.Errorf("pagetable: reallocating root: %w", err)
	}
	t.root = root
	t.levelOf[root] = 0
	t.vaBaseOf[root] = 0
	return nil
}

// Destroy releases every table page including the root. The table must not
// be used afterwards.
func (t *Table) Destroy() {
	var free func(pageAddr uint64, level int)
	free = func(pageAddr uint64, level int) {
		for idx := 0; idx < memsim.EntriesPerTable; idx++ {
			e := t.readEntry(pageAddr, idx)
			if !e.Present() || e.Switching() {
				continue
			}
			_, leafOK := SizeAtLevel(level)
			if level == NumLevels-1 || (e.Huge() && leafOK) {
				continue
			}
			free(e.Addr(), level+1)
		}
		if t.fhook != nil {
			t.fhook(pageAddr, level, t.vaBaseOf[pageAddr])
		}
		delete(t.levelOf, pageAddr)
		delete(t.vaBaseOf, pageAddr)
		_ = t.space.FreeTablePage(pageAddr)
	}
	free(t.root, 0)
	t.root = 0
}
