// Package pagetable implements x86-64-style four-level hierarchical page
// tables over simulated physical memory (package memsim).
//
// The same implementation serves all four table roles the paper uses:
//
//   - native page table (VA⇒PA), walked by the hardware 1D walker
//   - guest page table gPT (gVA⇒gPA), maintained by the guest OS
//   - host page table hPT (gPA⇒hPA), maintained by the VMM per VM
//   - shadow page table sPT (gVA⇒hPA), built by the VMM by merging gPT+hPT
//
// Entries follow the x86-64 layout, extended with the paper's *switching
// bit* in the software-available range: when set in a shadow-table entry,
// the hardware page walk switches from shadow to nested mode at that point
// (paper §III-A, Figure 4).
package pagetable

import "fmt"

// Entry is a single 8-byte page-table entry.
type Entry uint64

// Architectural and software-defined entry bits.
const (
	FlagPresent  Entry = 1 << 0 // P: translation valid
	FlagWrite    Entry = 1 << 1 // R/W: writable
	FlagUser     Entry = 1 << 2 // U/S: user accessible
	FlagAccessed Entry = 1 << 5 // A: set by hardware on first access
	FlagDirty    Entry = 1 << 6 // D: set by hardware on first write (leaf only)
	FlagHuge     Entry = 1 << 7 // PS: entry maps a large page (levels 2 and 3)
	FlagGlobal   Entry = 1 << 8 // G: survives non-PCID TLB flushes

	// FlagSwitch is the agile-paging switching bit (paper §III-A). It lives
	// in the ignored bit range (bit 52). When set in a shadow page table
	// entry, the entry's address field holds the host-physical address of
	// the next *guest* page table level and the walk continues in nested
	// mode.
	FlagSwitch Entry = 1 << 52

	// FlagNX marks the mapping non-executable.
	FlagNX Entry = 1 << 63
)

// addrMask selects the physical-address field of an entry (bits 12..51).
const addrMask Entry = 0x000FFFFFFFFFF000

// MakeEntry builds an entry pointing at physical address pa with the given
// flag bits. The low 12 bits of pa are discarded.
func MakeEntry(pa uint64, flags Entry) Entry {
	return Entry(pa)&addrMask | (flags &^ addrMask)
}

// Addr returns the physical address field of the entry.
func (e Entry) Addr() uint64 { return uint64(e & addrMask) }

// Present reports whether the entry is valid.
func (e Entry) Present() bool { return e&FlagPresent != 0 }

// Writable reports whether the entry permits writes.
func (e Entry) Writable() bool { return e&FlagWrite != 0 }

// User reports whether the entry permits user-mode access.
func (e Entry) User() bool { return e&FlagUser != 0 }

// Accessed reports whether the accessed bit is set.
func (e Entry) Accessed() bool { return e&FlagAccessed != 0 }

// Dirty reports whether the dirty bit is set.
func (e Entry) Dirty() bool { return e&FlagDirty != 0 }

// Huge reports whether the PS bit is set (the entry maps a large page).
func (e Entry) Huge() bool { return e&FlagHuge != 0 }

// Switching reports whether the agile-paging switching bit is set.
func (e Entry) Switching() bool { return e&FlagSwitch != 0 }

// WithFlags returns the entry with the given flags added.
func (e Entry) WithFlags(f Entry) Entry { return e | (f &^ addrMask) }

// WithoutFlags returns the entry with the given flags removed.
func (e Entry) WithoutFlags(f Entry) Entry { return e &^ (f &^ addrMask) }

// Flags returns the non-address bits of the entry.
func (e Entry) Flags() Entry { return e &^ addrMask }

// String renders the entry for debugging.
func (e Entry) String() string {
	if !e.Present() {
		return fmt.Sprintf("Entry{not present, raw=%#x}", uint64(e))
	}
	s := fmt.Sprintf("Entry{addr=%#x", e.Addr())
	for _, f := range []struct {
		bit  Entry
		name string
	}{
		{FlagWrite, "W"}, {FlagUser, "U"}, {FlagAccessed, "A"},
		{FlagDirty, "D"}, {FlagHuge, "PS"}, {FlagGlobal, "G"},
		{FlagSwitch, "SW"}, {FlagNX, "NX"},
	} {
		if e&f.bit != 0 {
			s += " " + f.name
		}
	}
	return s + "}"
}
