package pagetable

import (
	"fmt"
	"strings"
)

// Size identifies a translation page size.
type Size int

// Page sizes supported by the x86-64-style table (paper §V, "Large Page
// Support").
const (
	Size4K Size = iota
	Size2M
	Size1G
)

// Translation geometry. Levels are numbered from the root: level 0 is the
// top (PML4 in x86 terms, "L4" in the paper's Table II), level 3 is the
// leaf PTE level ("L1" in the paper). A 4K mapping terminates at level 3,
// a 2M mapping at level 2 (PS set), a 1G mapping at level 1 (PS set).
const (
	// NumLevels is the number of radix levels in the table.
	NumLevels = 4
	// IndexBits is the number of virtual-address bits consumed per level.
	IndexBits = 9
	// VABits is the number of translated virtual-address bits.
	VABits = 48
)

// Bytes returns the page size in bytes.
func (s Size) Bytes() uint64 {
	switch s {
	case Size4K:
		return 1 << 12
	case Size2M:
		return 1 << 21
	case Size1G:
		return 1 << 30
	}
	panic(fmt.Sprintf("pagetable: invalid size %d", int(s)))
}

// LeafLevel returns the table level (0 = root) at which a mapping of this
// size terminates.
func (s Size) LeafLevel() int {
	switch s {
	case Size4K:
		return 3
	case Size2M:
		return 2
	case Size1G:
		return 1
	}
	panic(fmt.Sprintf("pagetable: invalid size %d", int(s)))
}

// Mask returns the mask selecting the page-offset bits for this size.
func (s Size) Mask() uint64 { return s.Bytes() - 1 }

// String returns the conventional name of the size.
func (s Size) String() string {
	switch s {
	case Size4K:
		return "4K"
	case Size2M:
		return "2M"
	case Size1G:
		return "1G"
	}
	return fmt.Sprintf("Size(%d)", int(s))
}

// ParseSize parses a page-size name as written by Size.String, case
// insensitively, with the "KB"/"MB"/"GB" suffix forms. It is the one
// parser every flag and JSON decoder in the repository routes through.
func ParseSize(s string) (Size, error) {
	switch strings.ToUpper(s) {
	case "4K", "4KB":
		return Size4K, nil
	case "2M", "2MB":
		return Size2M, nil
	case "1G", "1GB":
		return Size1G, nil
	}
	return 0, fmt.Errorf("unknown page size %q (4K|2M|1G)", s)
}

// IndexAt extracts the radix index for the given level (0 = root) from a
// virtual address. Level 0 uses VA bits 47:39, level 3 bits 20:12.
func IndexAt(va uint64, level int) int {
	return int((va >> (39 - uint(level)*9)) & 0x1FF)
}

// PageBase returns va rounded down to a page boundary of size s.
func PageBase(va uint64, s Size) uint64 { return va &^ s.Mask() }

// SizeAtLevel returns the page size mapped by a leaf entry at the given
// level, and whether a leaf at that level is architecturally permitted.
func SizeAtLevel(level int) (Size, bool) {
	switch level {
	case 3:
		return Size4K, true
	case 2:
		return Size2M, true
	case 1:
		return Size1G, true
	}
	return Size4K, false
}
