package pagetable

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"agilepaging/internal/memsim"
)

func newHostTable(t *testing.T) (*Table, *memsim.Memory) {
	t.Helper()
	mem := memsim.New(64 << 20)
	tbl, err := New(mem, HostSpace{Mem: mem})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return tbl, mem
}

func TestIndexAt(t *testing.T) {
	// VA with distinct index at each level: L0=1, L1=2, L2=3, L3=4.
	va := uint64(1)<<39 | uint64(2)<<30 | uint64(3)<<21 | uint64(4)<<12
	for level, want := range []int{1, 2, 3, 4} {
		if got := IndexAt(va, level); got != want {
			t.Errorf("IndexAt(level %d) = %d, want %d", level, got, want)
		}
	}
}

func TestMapLookup4K(t *testing.T) {
	tbl, _ := newHostTable(t)
	va, pa := uint64(0x7f1234567000), uint64(0x00000abcd000)
	if err := tbl.Map(va, pa, Size4K, FlagWrite|FlagUser); err != nil {
		t.Fatalf("Map: %v", err)
	}
	r, err := tbl.Lookup(va | 0x123)
	if err != nil {
		t.Fatalf("Lookup: %v", err)
	}
	if r.PA != pa|0x123 {
		t.Errorf("PA = %#x, want %#x", r.PA, pa|0x123)
	}
	if r.Size != Size4K || r.Level != 3 {
		t.Errorf("size/level = %v/%d, want 4K/3", r.Size, r.Level)
	}
	if !r.Entry.Writable() || !r.Entry.User() {
		t.Errorf("flags not preserved: %v", r.Entry)
	}
}

func TestMapLookupLargePages(t *testing.T) {
	tbl, _ := newHostTable(t)
	if err := tbl.Map(0x40000000, 0x80000000, Size1G, FlagWrite); err != nil {
		t.Fatalf("Map 1G: %v", err)
	}
	if err := tbl.Map(0x7f0000200000, 0x100200000, Size2M, FlagWrite); err != nil {
		t.Fatalf("Map 2M: %v", err)
	}
	r, err := tbl.Lookup(0x40000000 + 0x12345678)
	if err != nil {
		t.Fatalf("Lookup 1G: %v", err)
	}
	if r.Size != Size1G || r.PA != 0x80000000+0x12345678 {
		t.Errorf("1G lookup = %+v", r)
	}
	if !r.Entry.Huge() {
		t.Error("1G entry missing PS bit")
	}
	r, err = tbl.Lookup(0x7f0000200000 + 0x54321)
	if err != nil {
		t.Fatalf("Lookup 2M: %v", err)
	}
	if r.Size != Size2M || r.PA != 0x100200000+0x54321 {
		t.Errorf("2M lookup = %+v", r)
	}
}

func TestMapErrors(t *testing.T) {
	tbl, _ := newHostTable(t)
	if err := tbl.Map(0x1001, 0x2000, Size4K, 0); !errors.Is(err, ErrMisaligned) {
		t.Errorf("misaligned va: err = %v", err)
	}
	if err := tbl.Map(0x1000, 0x2001, Size4K, 0); !errors.Is(err, ErrMisaligned) {
		t.Errorf("misaligned pa: err = %v", err)
	}
	if err := tbl.Map(0x1000, 0x2000, Size4K, 0); err != nil {
		t.Fatalf("Map: %v", err)
	}
	if err := tbl.Map(0x1000, 0x3000, Size4K, 0); !errors.Is(err, ErrAlreadyMapped) {
		t.Errorf("double map: err = %v", err)
	}
	// Mapping a 4K page under an existing 1G page must fail.
	if err := tbl.Map(0x40000000, 0x80000000, Size1G, 0); err != nil {
		t.Fatalf("Map 1G: %v", err)
	}
	if err := tbl.Map(0x40000000+0x5000, 0x9000, Size4K, 0); !errors.Is(err, ErrSplinter) {
		t.Errorf("map under huge: err = %v", err)
	}
}

func TestLookupNotMapped(t *testing.T) {
	tbl, _ := newHostTable(t)
	if _, err := tbl.Lookup(0xdead000); !errors.Is(err, ErrNotMapped) {
		t.Errorf("err = %v, want ErrNotMapped", err)
	}
	if err := tbl.Map(0x1000, 0x2000, Size4K, 0); err != nil {
		t.Fatal(err)
	}
	// Same L3 table, different slot.
	if _, err := tbl.Lookup(0x2000); !errors.Is(err, ErrNotMapped) {
		t.Errorf("err = %v, want ErrNotMapped", err)
	}
}

func TestUnmap(t *testing.T) {
	tbl, _ := newHostTable(t)
	if err := tbl.Map(0x1000, 0x2000, Size4K, FlagWrite); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Unmap(0x1000, Size4K); err != nil {
		t.Fatalf("Unmap: %v", err)
	}
	if _, err := tbl.Lookup(0x1000); !errors.Is(err, ErrNotMapped) {
		t.Errorf("after unmap: err = %v", err)
	}
	if err := tbl.Unmap(0x1000, Size4K); !errors.Is(err, ErrNotMapped) {
		t.Errorf("double unmap: err = %v", err)
	}
}

func TestRemap(t *testing.T) {
	tbl, _ := newHostTable(t)
	if err := tbl.Map(0x1000, 0x2000, Size4K, 0); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Remap(0x1000, 0x9000, Size4K, FlagWrite); err != nil {
		t.Fatalf("Remap: %v", err)
	}
	r, err := tbl.Lookup(0x1000)
	if err != nil {
		t.Fatal(err)
	}
	if r.PA != 0x9000 || !r.Entry.Writable() {
		t.Errorf("remapped entry = %+v", r)
	}
	if err := tbl.Remap(0x5000, 0x9000, Size4K, 0); !errors.Is(err, ErrNotMapped) {
		t.Errorf("remap unmapped: err = %v", err)
	}
}

func TestSetClearFlags(t *testing.T) {
	tbl, _ := newHostTable(t)
	if err := tbl.Map(0x1000, 0x2000, Size4K, 0); err != nil {
		t.Fatal(err)
	}
	if err := tbl.SetFlags(0x1000, FlagAccessed|FlagDirty); err != nil {
		t.Fatal(err)
	}
	r, _ := tbl.Lookup(0x1000)
	if !r.Entry.Accessed() || !r.Entry.Dirty() {
		t.Errorf("flags not set: %v", r.Entry)
	}
	if err := tbl.ClearFlags(0x1000, FlagAccessed); err != nil {
		t.Fatal(err)
	}
	r, _ = tbl.Lookup(0x1000)
	if r.Entry.Accessed() || !r.Entry.Dirty() {
		t.Errorf("after clear: %v", r.Entry)
	}
	// Flags on a large page leaf.
	if err := tbl.Map(0x200000, 0x400000, Size2M, 0); err != nil {
		t.Fatal(err)
	}
	if err := tbl.SetFlags(0x200000+0x1000, FlagDirty); err != nil {
		t.Fatalf("SetFlags on 2M interior va: %v", err)
	}
	r, _ = tbl.Lookup(0x200000)
	if !r.Entry.Dirty() {
		t.Error("dirty bit not set on 2M leaf")
	}
}

func TestWriteHookObservesWrites(t *testing.T) {
	tbl, _ := newHostTable(t)
	type rec struct {
		level, idx int
		old, new   Entry
	}
	var got []rec
	tbl.SetWriteHook(func(pageAddr uint64, level, idx int, old, new Entry) {
		got = append(got, rec{level, idx, old, new})
	})
	if err := tbl.Map(0x1000, 0x2000, Size4K, 0); err != nil {
		t.Fatal(err)
	}
	// Fresh map touches levels 0,1,2 (intermediate installs) and 3 (leaf).
	if len(got) != 4 {
		t.Fatalf("hook fired %d times, want 4", len(got))
	}
	for i, r := range got {
		if r.level != i {
			t.Errorf("write %d at level %d, want %d", i, r.level, i)
		}
		if r.old != 0 || !r.new.Present() {
			t.Errorf("write %d old/new = %v/%v", i, r.old, r.new)
		}
	}
	got = got[:0]
	// Second map in the same leaf table touches only the leaf level.
	if err := tbl.Map(0x2000, 0x3000, Size4K, 0); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].level != 3 {
		t.Fatalf("second map hook = %+v, want single level-3 write", got)
	}
	tbl.SetWriteHook(nil)
	got = got[:0]
	if err := tbl.Unmap(0x2000, Size4K); err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Error("hook fired after removal")
	}
}

func TestLevelOfAndTablePages(t *testing.T) {
	tbl, _ := newHostTable(t)
	if got := tbl.LevelOf(tbl.Root()); got != 0 {
		t.Errorf("root level = %d", got)
	}
	if err := tbl.Map(0x1000, 0x2000, Size4K, 0); err != nil {
		t.Fatal(err)
	}
	pages := tbl.TablePages()
	if len(pages) != 4 {
		t.Fatalf("TablePages has %d pages, want 4", len(pages))
	}
	counts := map[int]int{}
	for _, l := range pages {
		counts[l]++
	}
	for l := 0; l < 4; l++ {
		if counts[l] != 1 {
			t.Errorf("level %d has %d pages, want 1", l, counts[l])
		}
	}
	if tbl.LevelOf(0xdeadbeef000) != -1 {
		t.Error("LevelOf unknown page should be -1")
	}
}

func TestEntryAtAndSetEntryAt(t *testing.T) {
	tbl, _ := newHostTable(t)
	if err := tbl.Map(0x1000, 0x2000, Size4K, 0); err != nil {
		t.Fatal(err)
	}
	e, err := tbl.EntryAt(0x1000, 2)
	if err != nil {
		t.Fatalf("EntryAt: %v", err)
	}
	if !e.Present() {
		t.Error("level-2 entry not present")
	}
	// Plant a switching-bit entry at level 2 (what the VMM does to shadow
	// tables).
	sw := MakeEntry(0xabc000, FlagPresent|FlagSwitch)
	if err := tbl.SetEntryAt(0x1000, 2, sw); err != nil {
		t.Fatalf("SetEntryAt: %v", err)
	}
	e, _ = tbl.EntryAt(0x1000, 2)
	if !e.Switching() || e.Addr() != 0xabc000 {
		t.Errorf("switch entry = %v", e)
	}
	if _, err := tbl.EntryAt(0x1000, 9); err == nil {
		t.Error("EntryAt invalid level should fail")
	}
	if _, err := tbl.EntryAt(0xffff00000000, 3); !errors.Is(err, ErrNotMapped) {
		t.Errorf("EntryAt on absent path: %v", err)
	}
}

func TestEnsurePath(t *testing.T) {
	tbl, _ := newHostTable(t)
	pageAddr, err := tbl.EnsurePath(0x7000, 3)
	if err != nil {
		t.Fatalf("EnsurePath: %v", err)
	}
	if tbl.LevelOf(pageAddr) != 3 {
		t.Errorf("EnsurePath returned page at level %d", tbl.LevelOf(pageAddr))
	}
	// The path now exists: EntryAt at level 3 works.
	if _, err := tbl.EntryAt(0x7000, 3); err != nil {
		t.Errorf("EntryAt after EnsurePath: %v", err)
	}
}

func TestVisitLeavesOrderAndContent(t *testing.T) {
	tbl, _ := newHostTable(t)
	vas := []uint64{0x7f0000001000, 0x1000, 0x40000000, 0x7f0000000000}
	for i, va := range vas {
		if err := tbl.Map(va, uint64(i+1)<<12, Size4K, 0); err != nil {
			t.Fatal(err)
		}
	}
	var seen []uint64
	tbl.VisitLeaves(func(l Leaf) bool {
		seen = append(seen, l.VA)
		return true
	})
	want := []uint64{0x1000, 0x40000000, 0x7f0000000000, 0x7f0000001000}
	if len(seen) != len(want) {
		t.Fatalf("visited %d leaves, want %d", len(seen), len(want))
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Errorf("leaf %d = %#x, want %#x (ascending VA order)", i, seen[i], want[i])
		}
	}
	// Early stop.
	n := 0
	tbl.VisitLeaves(func(Leaf) bool { n++; return false })
	if n != 1 {
		t.Errorf("early-stop visit saw %d leaves", n)
	}
	if got := tbl.CountLeaves(); got != 4 {
		t.Errorf("CountLeaves = %d", got)
	}
}

func TestFreeEmptyPrunes(t *testing.T) {
	tbl, mem := newHostTable(t)
	before := mem.AllocatedFrames()
	if err := tbl.Map(0x7f0000000000, 0x2000, Size4K, 0); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Unmap(0x7f0000000000, Size4K); err != nil {
		t.Fatal(err)
	}
	freed := tbl.FreeEmpty()
	if freed != 3 {
		t.Errorf("FreeEmpty freed %d pages, want 3 (L1..L3 chain)", freed)
	}
	if mem.AllocatedFrames() != before {
		t.Errorf("frames leaked: %d -> %d", before, mem.AllocatedFrames())
	}
	// Root is never freed and table still usable.
	if err := tbl.Map(0x1000, 0x2000, Size4K, 0); err != nil {
		t.Fatalf("Map after prune: %v", err)
	}
}

func TestDestroyReleasesAllFrames(t *testing.T) {
	mem := memsim.New(64 << 20)
	base := mem.AllocatedFrames()
	tbl, err := New(mem, HostSpace{Mem: mem})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 32; i++ {
		if err := tbl.Map(i<<30|0x1000, 0x2000, Size4K, 0); err != nil {
			t.Fatal(err)
		}
	}
	tbl.Destroy()
	if mem.AllocatedFrames() != base {
		t.Errorf("Destroy leaked frames: %d -> %d", base, mem.AllocatedFrames())
	}
}

// TestMapLookupProperty checks the fundamental invariant va⇒pa round-trips
// across random sparse mappings at random sizes.
func TestMapLookupProperty(t *testing.T) {
	tbl, _ := newHostTable(t)
	rng := rand.New(rand.NewSource(7))
	type m struct {
		va, pa uint64
		size   Size
	}
	var maps []m
	covered := func(va uint64, size Size) bool {
		for _, x := range maps {
			lo, hi := x.va, x.va+x.size.Bytes()
			if va < hi && va+size.Bytes() > lo {
				return true
			}
		}
		return false
	}
	for len(maps) < 200 {
		size := Size(rng.Intn(3))
		va := (rng.Uint64() % (1 << 47)) &^ size.Mask()
		pa := (rng.Uint64() % (1 << 40)) &^ size.Mask()
		if covered(va, size) {
			continue
		}
		if err := tbl.Map(va, pa, size, FlagWrite); err != nil {
			// Conflicts with an interior table of a prior mapping are
			// legitimate (e.g. 1G over a region holding 4K tables).
			if errors.Is(err, ErrSplinter) || errors.Is(err, ErrAlreadyMapped) {
				continue
			}
			t.Fatalf("Map(%#x,%#x,%v): %v", va, pa, size, err)
		}
		maps = append(maps, m{va, pa, size})
	}
	for _, x := range maps {
		off := rng.Uint64() & x.size.Mask()
		r, err := tbl.Lookup(x.va + off)
		if err != nil {
			t.Fatalf("Lookup(%#x): %v", x.va+off, err)
		}
		if r.PA != x.pa+off {
			t.Fatalf("Lookup(%#x) = %#x, want %#x", x.va+off, r.PA, x.pa+off)
		}
	}
	if got := tbl.CountLeaves(); got != len(maps) {
		t.Errorf("CountLeaves = %d, want %d", got, len(maps))
	}
}

func TestEntryEncodingProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 500}
	if err := quick.Check(func(pa uint64, w, u, a, d bool) bool {
		var f Entry
		if w {
			f |= FlagWrite
		}
		if u {
			f |= FlagUser
		}
		if a {
			f |= FlagAccessed
		}
		if d {
			f |= FlagDirty
		}
		e := MakeEntry(pa, f|FlagPresent)
		return e.Addr() == pa&uint64(addrMask) &&
			e.Writable() == w && e.User() == u &&
			e.Accessed() == a && e.Dirty() == d && e.Present()
	}, cfg); err != nil {
		t.Error(err)
	}
}

func TestEntryFlagManipulation(t *testing.T) {
	e := MakeEntry(0x1234000, FlagPresent|FlagWrite)
	e = e.WithFlags(FlagSwitch | FlagDirty)
	if !e.Switching() || !e.Dirty() || e.Addr() != 0x1234000 {
		t.Errorf("WithFlags: %v", e)
	}
	e = e.WithoutFlags(FlagWrite)
	if e.Writable() {
		t.Errorf("WithoutFlags: %v", e)
	}
	if e.Flags()&addrMask != 0 {
		t.Error("Flags leaked address bits")
	}
	// WithFlags must not corrupt the address field even if caller passes
	// address-range bits.
	e2 := MakeEntry(0x5000, FlagPresent).WithFlags(Entry(0xfff000))
	if e2.Addr() != 0x5000 {
		t.Errorf("WithFlags corrupted address: %v", e2)
	}
}

func TestEntryString(t *testing.T) {
	if s := Entry(0).String(); s == "" {
		t.Error("empty String for zero entry")
	}
	e := MakeEntry(0x1000, FlagPresent|FlagWrite|FlagSwitch)
	s := e.String()
	if s == "" {
		t.Error("empty String")
	}
}

func TestSizeGeometry(t *testing.T) {
	cases := []struct {
		s     Size
		bytes uint64
		leaf  int
		name  string
	}{
		{Size4K, 4096, 3, "4K"},
		{Size2M, 2 << 20, 2, "2M"},
		{Size1G, 1 << 30, 1, "1G"},
	}
	for _, c := range cases {
		if c.s.Bytes() != c.bytes || c.s.LeafLevel() != c.leaf || c.s.String() != c.name {
			t.Errorf("size %v: bytes=%d leaf=%d name=%s", c.s, c.s.Bytes(), c.s.LeafLevel(), c.s)
		}
		if PageBase(c.bytes+123, c.s) != c.bytes {
			t.Errorf("PageBase(%v)", c.s)
		}
	}
	if _, ok := SizeAtLevel(0); ok {
		t.Error("level 0 must not allow leaves")
	}
	for l := 1; l <= 3; l++ {
		if _, ok := SizeAtLevel(l); !ok {
			t.Errorf("level %d should allow leaves", l)
		}
	}
}

func TestSpanAtLevel(t *testing.T) {
	want := map[int]uint64{0: 1 << 39, 1: 1 << 30, 2: 1 << 21, 3: 1 << 12}
	for l, w := range want {
		if got := SpanAtLevel(l); got != w {
			t.Errorf("SpanAtLevel(%d) = %#x, want %#x", l, got, w)
		}
	}
}

func TestInfoTracksVABase(t *testing.T) {
	tbl, _ := newHostTable(t)
	va := uint64(0x7f12_3456_7000)
	if err := tbl.Map(va, 0x2000, Size4K, 0); err != nil {
		t.Fatal(err)
	}
	wantBases := map[int]uint64{
		0: 0,
		1: va &^ (SpanAtLevel(0) - 1),
		2: va &^ (SpanAtLevel(1) - 1),
		3: va &^ (SpanAtLevel(2) - 1),
	}
	found := map[int]bool{}
	for pa := range tbl.TablePages() {
		info, ok := tbl.Info(pa)
		if !ok {
			t.Fatalf("Info(%#x) missing", pa)
		}
		if want := wantBases[info.Level]; info.VABase != want {
			t.Errorf("level %d VABase = %#x, want %#x", info.Level, info.VABase, want)
		}
		found[info.Level] = true
	}
	for l := 0; l < 4; l++ {
		if !found[l] {
			t.Errorf("no page recorded at level %d", l)
		}
	}
	if _, ok := tbl.Info(0xdead000); ok {
		t.Error("Info of unknown page should fail")
	}
}
