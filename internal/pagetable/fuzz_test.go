package pagetable

import (
	"testing"

	"agilepaging/internal/memsim"
)

// FuzzTableOps drives a table with a byte-coded op sequence: no input may
// panic it or break the map/lookup/unmap contract.
func FuzzTableOps(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7})
	f.Add([]byte{0xff, 0x00, 0x80, 0x40})
	f.Fuzz(func(t *testing.T, data []byte) {
		mem := memsim.New(32 << 20)
		tbl, err := New(mem, HostSpace{Mem: mem})
		if err != nil {
			t.Skip()
		}
		mapped := map[uint64]Size{}
		for i := 0; i+3 < len(data); i += 4 {
			op := data[i] % 5
			size := Size(data[i+1] % 3)
			va := (uint64(data[i+2])<<30 | uint64(data[i+3])<<12) &^ size.Mask()
			switch op {
			case 0:
				if err := tbl.Map(va, va+(1<<20)&^size.Mask(), size, FlagWrite); err == nil {
					mapped[va] = size
				}
			case 1:
				if sz, ok := mapped[va]; ok && sz == size {
					if err := tbl.Unmap(va, size); err != nil {
						t.Fatalf("unmap of known mapping failed: %v", err)
					}
					delete(mapped, va)
				} else {
					_ = tbl.Unmap(va, size)
				}
			case 2:
				_, _ = tbl.Lookup(va)
			case 3:
				_ = tbl.SetFlags(va, FlagAccessed)
			case 4:
				tbl.FreeEmpty()
			}
		}
		// Every live mapping must still resolve.
		for va := range mapped {
			if _, err := tbl.Lookup(va); err != nil {
				t.Fatalf("live mapping %#x lost: %v", va, err)
			}
		}
	})
}
