package pagetable

import (
	"errors"
	"testing"

	"agilepaging/internal/memsim"
)

// plantSwitch writes a switching entry at (va, level) pointing at target —
// an address that belongs to another physical space and must never be
// dereferenced through this table.
func plantSwitch(t *testing.T, tbl *Table, va uint64, level int, target uint64) {
	t.Helper()
	if _, err := tbl.EnsurePath(va, level); err != nil {
		t.Fatalf("EnsurePath: %v", err)
	}
	if err := tbl.SetEntryAt(va, level, MakeEntry(target, FlagPresent|FlagSwitch)); err != nil {
		t.Fatalf("SetEntryAt: %v", err)
	}
}

// TestSwitchingEntryBlocksTraversal pins the root-cause fix of the
// collapse-under-agile panic: no table traversal may dereference a switching
// entry's address, because it points into a different physical space. The
// bogus target here is not a table frame — any dereference panics.
func TestSwitchingEntryBlocksTraversal(t *testing.T) {
	va := uint64(0x7f00_0000_0000)
	bogus := uint64(0xdead_f000)

	tbl, _ := newHostTable(t)
	plantSwitch(t, tbl, va, 1, bogus)

	if _, err := tbl.EntryAt(va, 2); !errors.Is(err, ErrSwitching) {
		t.Errorf("EntryAt below switch: %v, want ErrSwitching", err)
	}
	if err := tbl.SetEntryAt(va, 2, 0); !errors.Is(err, ErrSwitching) {
		t.Errorf("SetEntryAt below switch: %v, want ErrSwitching", err)
	}
	if _, err := tbl.EnsurePath(va, 3); !errors.Is(err, ErrSwitching) {
		t.Errorf("EnsurePath below switch: %v, want ErrSwitching", err)
	}
	if err := tbl.Map(va, 0x2000, Size4K, 0); !errors.Is(err, ErrSwitching) {
		t.Errorf("Map below switch: %v, want ErrSwitching", err)
	}
	if err := tbl.Unmap(va, Size4K); !errors.Is(err, ErrSwitching) {
		t.Errorf("Unmap below switch: %v, want ErrSwitching", err)
	}
	if _, ok := tbl.TryLookup(va); ok {
		t.Error("TryLookup resolved through a switching entry")
	}
	leaves := 0
	tbl.VisitLeaves(func(l Leaf) bool { leaves++; return true })
	if leaves != 0 {
		t.Errorf("VisitLeaves found %d leaves under a switching entry", leaves)
	}
	if tbl.FreeEmpty() != 0 {
		t.Error("FreeEmpty pruned the path holding a switching entry")
	}
	tbl.Destroy() // must not dereference the switching target
}

// TestFreeHookFiresBeforeRelease checks the FreeEmpty half of the contract:
// the hook sees each pruned page while Info still answers for it, before the
// Space reclaims it, in bottom-up order.
func TestFreeHookFiresBeforeRelease(t *testing.T) {
	tbl, _ := newHostTable(t)
	va := uint64(0x7f00_0000_0000)
	if err := tbl.Map(va, 0x2000, Size4K, 0); err != nil {
		t.Fatal(err)
	}
	type ev struct {
		page   uint64
		level  int
		vaBase uint64
	}
	var events []ev
	tbl.SetFreeHook(func(page uint64, level int, vaBase uint64) {
		if _, ok := tbl.Info(page); !ok {
			t.Errorf("page %#x already unregistered inside the hook", page)
		}
		events = append(events, ev{page, level, vaBase})
	})
	if err := tbl.Unmap(va, Size4K); err != nil {
		t.Fatal(err)
	}
	if n := tbl.FreeEmpty(); n != 3 {
		t.Fatalf("FreeEmpty freed %d, want 3", n)
	}
	if len(events) != 3 {
		t.Fatalf("hook fired %d times, want 3: %+v", len(events), events)
	}
	// Pruning is bottom-up: leaf (level 3) first, then L2, then L1.
	for i, wantLevel := range []int{3, 2, 1} {
		if events[i].level != wantLevel {
			t.Errorf("event %d level = %d, want %d", i, events[i].level, wantLevel)
		}
		span := SpanAtLevel(wantLevel - 1)
		if events[i].vaBase != va&^(span-1) {
			t.Errorf("event %d vaBase = %#x, want %#x", i, events[i].vaBase, va&^(span-1))
		}
	}
}

// TestZapSubtreeFreesCoveredPages checks the shadow-invalidation primitive:
// zapping an interior entry clears it and frees every page underneath.
func TestZapSubtreeFreesCoveredPages(t *testing.T) {
	tbl, mem := newHostTable(t)
	va := uint64(0x7f00_0000_0000)
	// Two leaves in one 2M span plus one in a sibling 1G span.
	for _, m := range []uint64{va, va + 0x1000, va + (1 << 30)} {
		if err := tbl.Map(m, 0x2000, Size4K, 0); err != nil {
			t.Fatal(err)
		}
	}
	before := mem.AllocatedFrames()
	var hooked []uint64
	tbl.SetFreeHook(func(page uint64, level int, vaBase uint64) { hooked = append(hooked, page) })

	// Zap the level-1 entry covering va's 1G span: its L2 and L3 pages go.
	zapped, freed := tbl.ZapSubtree(va, 1)
	if !zapped || freed != 2 {
		t.Fatalf("ZapSubtree = (%v, %d), want (true, 2)", zapped, freed)
	}
	if len(hooked) != 2 {
		t.Errorf("free hook fired %d times, want 2", len(hooked))
	}
	if mem.AllocatedFrames() != before-2 {
		t.Errorf("frames not released: %d -> %d", before, mem.AllocatedFrames())
	}
	if _, ok := tbl.TryLookup(va); ok {
		t.Error("zapped translation still resolves")
	}
	if _, ok := tbl.TryLookup(va + (1 << 30)); !ok {
		t.Error("sibling span lost its translation")
	}
	// Nothing left to zap on the same path.
	if zapped, _ := tbl.ZapSubtree(va, 1); zapped {
		t.Error("second zap of the same entry reported work")
	}
}

// TestZapSubtreeSwitchingEntry checks that a switching entry at the target
// slot is cleared without being dereferenced, and that a switching entry
// above the target blocks the zap entirely.
func TestZapSubtreeSwitchingEntry(t *testing.T) {
	va := uint64(0x7f00_0000_0000)
	bogus := uint64(0xdead_f000)

	tbl, _ := newHostTable(t)
	plantSwitch(t, tbl, va, 2, bogus)
	zapped, freed := tbl.ZapSubtree(va, 2)
	if !zapped || freed != 0 {
		t.Errorf("zap of switching entry = (%v, %d), want (true, 0)", zapped, freed)
	}
	if e, err := tbl.EntryAt(va, 2); err != nil || e.Present() {
		t.Errorf("switching entry not cleared: e=%v err=%v", e, err)
	}

	// Blocked above: a switch at level 1 means levels 2+ are another
	// table's business.
	tbl2, _ := newHostTable(t)
	plantSwitch(t, tbl2, va, 1, bogus)
	if zapped, _ := tbl2.ZapSubtree(va, 3); zapped {
		t.Error("zap below a switching entry reported work")
	}
}

// TestGuestSpaceRecycledTablePageIsZeroed pins the allocator half of the
// contract: a guest table page freed with entries still visible in guest RAM
// comes back zeroed when the gPA is recycled, like an OS zeroing a new PT
// page. (FreeEmpty only frees all-empty pages, so this is belt-and-braces
// for future free paths; the host frame stays materialized throughout.)
func TestGuestSpaceRecycledTablePageIsZeroed(t *testing.T) {
	mem := memsim.New(64 << 20)
	// A tiny stand-in for vmm.guestPhysSpace: identity gPA->hPA over a
	// bump allocator with a LIFO free list.
	sp := &recycleSpace{mem: mem}
	tbl, err := New(mem, sp)
	if err != nil {
		t.Fatal(err)
	}
	va := uint64(0x7f00_0000_0000)
	if err := tbl.Map(va, 0x2000, Size4K, 0); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Unmap(va, Size4K); err != nil {
		t.Fatal(err)
	}
	if n := tbl.FreeEmpty(); n != 3 {
		t.Fatalf("FreeEmpty freed %d, want 3", n)
	}
	// Scribble on a freed-but-still-materialized page, as a stale-state bug
	// would leave entries behind.
	dirty := sp.freed[len(sp.freed)-1]
	mem.WriteEntry(memsim.FrameOf(dirty), 7, uint64(MakeEntry(0xdead_f000, FlagPresent)))
	// Recycling must hand the page back zeroed.
	if err := tbl.Map(va, 0x2000, Size4K, 0); err != nil {
		t.Fatal(err)
	}
	if _, ok := tbl.TryLookup(va | (7 << 12)); ok {
		t.Error("stale entry visible through recycled table page")
	}
}

type recycleSpace struct {
	mem   *memsim.Memory
	freed []uint64
}

func (s *recycleSpace) FrameFor(pa uint64) (memsim.Frame, bool) {
	f := memsim.FrameOf(pa)
	if !s.mem.IsTable(f) {
		return 0, false
	}
	return f, true
}

func (s *recycleSpace) AllocTablePage() (uint64, error) {
	var pa uint64
	if n := len(s.freed); n > 0 {
		pa = s.freed[n-1]
		s.freed = s.freed[:n-1]
	} else {
		f, err := s.mem.AllocFrame()
		if err != nil {
			return 0, err
		}
		pa = f.Addr()
	}
	if err := s.mem.MaterializeTable(memsim.FrameOf(pa)); err != nil {
		return 0, err
	}
	s.mem.ZeroTable(memsim.FrameOf(pa))
	return pa, nil
}

func (s *recycleSpace) FreeTablePage(pa uint64) error {
	s.freed = append(s.freed, pa)
	return nil
}
