package memsim

import (
	"testing"
	"testing/quick"
)

func TestNewReservesNilFrame(t *testing.T) {
	m := New(1 << 20)
	f, err := m.AllocFrame()
	if err != nil {
		t.Fatalf("AllocFrame: %v", err)
	}
	if f == 0 {
		t.Fatal("first allocated frame is the reserved nil frame")
	}
}

func TestAllocFrameDistinct(t *testing.T) {
	m := New(1 << 20)
	seen := make(map[Frame]bool)
	for i := 0; i < 100; i++ {
		f, err := m.AllocFrame()
		if err != nil {
			t.Fatalf("AllocFrame %d: %v", i, err)
		}
		if seen[f] {
			t.Fatalf("frame %#x allocated twice", uint64(f))
		}
		seen[f] = true
	}
	if got := m.AllocatedFrames(); got != 100 {
		t.Fatalf("AllocatedFrames = %d, want 100", got)
	}
}

func TestOutOfMemory(t *testing.T) {
	m := New(4 * FrameSize) // frames 0..3, frame 0 reserved => 3 usable
	var frames []Frame
	for {
		f, err := m.AllocFrame()
		if err != nil {
			break
		}
		frames = append(frames, f)
	}
	if len(frames) != 3 {
		t.Fatalf("allocated %d frames, want 3", len(frames))
	}
	if _, err := m.AllocFrame(); err != ErrOutOfMemory {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
	// Freeing makes allocation possible again.
	if err := m.FreeFrame(frames[0]); err != nil {
		t.Fatalf("FreeFrame: %v", err)
	}
	if _, err := m.AllocFrame(); err != nil {
		t.Fatalf("AllocFrame after free: %v", err)
	}
}

func TestFreeFrameErrors(t *testing.T) {
	m := New(1 << 20)
	if err := m.FreeFrame(0); err == nil {
		t.Error("freeing nil frame should fail")
	}
	f, _ := m.AllocFrame()
	if err := m.FreeFrame(f); err != nil {
		t.Fatalf("FreeFrame: %v", err)
	}
	if err := m.FreeFrame(f); err == nil {
		t.Error("double free should fail")
	}
}

func TestAllocContiguous(t *testing.T) {
	m := New(1 << 20)
	first, err := m.AllocContiguous(8)
	if err != nil {
		t.Fatalf("AllocContiguous: %v", err)
	}
	// The next single allocation must not land inside the contiguous run.
	f, _ := m.AllocFrame()
	if f >= first && f < first+8 {
		t.Fatalf("single frame %#x allocated inside contiguous run [%#x,%#x)", uint64(f), uint64(first), uint64(first)+8)
	}
	if _, err := m.AllocContiguous(0); err == nil {
		t.Error("AllocContiguous(0) should fail")
	}
}

func TestAllocContiguousExhaustion(t *testing.T) {
	m := New(8 * FrameSize)
	if _, err := m.AllocContiguous(100); err != ErrOutOfMemory {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
}

func TestTableReadWrite(t *testing.T) {
	m := New(1 << 20)
	f, err := m.AllocTable()
	if err != nil {
		t.Fatalf("AllocTable: %v", err)
	}
	if !m.IsTable(f) {
		t.Fatal("IsTable = false for table frame")
	}
	for i := 0; i < EntriesPerTable; i++ {
		if v := m.ReadEntry(f, i); v != 0 {
			t.Fatalf("new table entry %d = %#x, want 0", i, v)
		}
	}
	m.WriteEntry(f, 7, 0xdeadbeef)
	if v := m.ReadEntry(f, 7); v != 0xdeadbeef {
		t.Fatalf("entry 7 = %#x, want 0xdeadbeef", v)
	}
	snap := m.TableSnapshot(f)
	if snap[7] != 0xdeadbeef {
		t.Fatal("snapshot does not reflect write")
	}
	// Mutating the snapshot must not touch the table.
	snap[7] = 1
	if v := m.ReadEntry(f, 7); v != 0xdeadbeef {
		t.Fatal("snapshot aliases table storage")
	}
}

func TestNonTableAccessPanics(t *testing.T) {
	m := New(1 << 20)
	f, _ := m.AllocFrame()
	if m.IsTable(f) {
		t.Fatal("data frame reported as table")
	}
	assertPanics(t, "ReadEntry", func() { m.ReadEntry(f, 0) })
	assertPanics(t, "WriteEntry", func() { m.WriteEntry(f, 0, 1) })
	assertPanics(t, "TableSnapshot", func() { m.TableSnapshot(f) })
}

func TestFreeTableFrameDropsContent(t *testing.T) {
	m := New(1 << 20)
	f, _ := m.AllocTable()
	m.WriteEntry(f, 1, 42)
	if err := m.FreeFrame(f); err != nil {
		t.Fatalf("FreeFrame: %v", err)
	}
	if m.IsTable(f) {
		t.Fatal("freed frame still a table")
	}
}

func TestFrameAddrRoundTrip(t *testing.T) {
	if err := quick.Check(func(n uint32) bool {
		f := Frame(n)
		return FrameOf(f.Addr()) == f
	}, nil); err != nil {
		t.Error(err)
	}
	if err := quick.Check(func(pa uint64) bool {
		f := FrameOf(pa)
		return f.Addr() == pa&^uint64(FrameSize-1)
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestReuseAfterFreePrefersFreeList(t *testing.T) {
	m := New(1 << 20)
	a, _ := m.AllocFrame()
	b, _ := m.AllocFrame()
	if err := m.FreeFrame(a); err != nil {
		t.Fatal(err)
	}
	c, _ := m.AllocFrame()
	if c != a {
		t.Fatalf("expected reuse of freed frame %#x, got %#x", uint64(a), uint64(c))
	}
	_ = b
}

func assertPanics(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", name)
		}
	}()
	fn()
}

func TestAllocContiguousAligned(t *testing.T) {
	m := New(64 << 20)
	if _, err := m.AllocFrame(); err != nil { // misalign the bump pointer
		t.Fatal(err)
	}
	f, err := m.AllocContiguousAligned(512, 512) // one 2M chunk
	if err != nil {
		t.Fatalf("AllocContiguousAligned: %v", err)
	}
	if uint64(f)%512 != 0 {
		t.Errorf("frame %#x not 512-frame aligned", uint64(f))
	}
	// Skipped frames must be reusable.
	g, err := m.AllocFrame()
	if err != nil {
		t.Fatal(err)
	}
	if g >= f {
		t.Errorf("alignment gap not recycled: got frame %#x >= %#x", uint64(g), uint64(f))
	}
	// Align 1 behaves like plain contiguous.
	if _, err := m.AllocContiguousAligned(4, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AllocContiguousAligned(1<<30, 512); err != ErrOutOfMemory {
		t.Errorf("err = %v, want ErrOutOfMemory", err)
	}
}
