package memsim

import (
	"testing"
	"testing/quick"
)

func TestNewReservesNilFrame(t *testing.T) {
	m := New(1 << 20)
	f, err := m.AllocFrame()
	if err != nil {
		t.Fatalf("AllocFrame: %v", err)
	}
	if f == 0 {
		t.Fatal("first allocated frame is the reserved nil frame")
	}
}

func TestAllocFrameDistinct(t *testing.T) {
	m := New(1 << 20)
	seen := make(map[Frame]bool)
	for i := 0; i < 100; i++ {
		f, err := m.AllocFrame()
		if err != nil {
			t.Fatalf("AllocFrame %d: %v", i, err)
		}
		if seen[f] {
			t.Fatalf("frame %#x allocated twice", uint64(f))
		}
		seen[f] = true
	}
	if got := m.AllocatedFrames(); got != 100 {
		t.Fatalf("AllocatedFrames = %d, want 100", got)
	}
}

func TestOutOfMemory(t *testing.T) {
	m := New(4 * FrameSize) // frames 0..3, frame 0 reserved => 3 usable
	var frames []Frame
	for {
		f, err := m.AllocFrame()
		if err != nil {
			break
		}
		frames = append(frames, f)
	}
	if len(frames) != 3 {
		t.Fatalf("allocated %d frames, want 3", len(frames))
	}
	if _, err := m.AllocFrame(); err != ErrOutOfMemory {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
	// Freeing makes allocation possible again.
	if err := m.FreeFrame(frames[0]); err != nil {
		t.Fatalf("FreeFrame: %v", err)
	}
	if _, err := m.AllocFrame(); err != nil {
		t.Fatalf("AllocFrame after free: %v", err)
	}
}

func TestFreeFrameErrors(t *testing.T) {
	m := New(1 << 20)
	if err := m.FreeFrame(0); err == nil {
		t.Error("freeing nil frame should fail")
	}
	f, _ := m.AllocFrame()
	if err := m.FreeFrame(f); err != nil {
		t.Fatalf("FreeFrame: %v", err)
	}
	if err := m.FreeFrame(f); err == nil {
		t.Error("double free should fail")
	}
}

func TestAllocContiguous(t *testing.T) {
	m := New(1 << 20)
	first, err := m.AllocContiguous(8)
	if err != nil {
		t.Fatalf("AllocContiguous: %v", err)
	}
	// The next single allocation must not land inside the contiguous run.
	f, _ := m.AllocFrame()
	if f >= first && f < first+8 {
		t.Fatalf("single frame %#x allocated inside contiguous run [%#x,%#x)", uint64(f), uint64(first), uint64(first)+8)
	}
	if _, err := m.AllocContiguous(0); err == nil {
		t.Error("AllocContiguous(0) should fail")
	}
}

func TestAllocContiguousExhaustion(t *testing.T) {
	m := New(8 * FrameSize)
	if _, err := m.AllocContiguous(100); err != ErrOutOfMemory {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
}

func TestTableReadWrite(t *testing.T) {
	m := New(1 << 20)
	f, err := m.AllocTable()
	if err != nil {
		t.Fatalf("AllocTable: %v", err)
	}
	if !m.IsTable(f) {
		t.Fatal("IsTable = false for table frame")
	}
	for i := 0; i < EntriesPerTable; i++ {
		if v := m.ReadEntry(f, i); v != 0 {
			t.Fatalf("new table entry %d = %#x, want 0", i, v)
		}
	}
	m.WriteEntry(f, 7, 0xdeadbeef)
	if v := m.ReadEntry(f, 7); v != 0xdeadbeef {
		t.Fatalf("entry 7 = %#x, want 0xdeadbeef", v)
	}
	snap := m.TableSnapshot(f)
	if snap[7] != 0xdeadbeef {
		t.Fatal("snapshot does not reflect write")
	}
	// Mutating the snapshot must not touch the table.
	snap[7] = 1
	if v := m.ReadEntry(f, 7); v != 0xdeadbeef {
		t.Fatal("snapshot aliases table storage")
	}
}

func TestNonTableAccessPanics(t *testing.T) {
	m := New(1 << 20)
	f, _ := m.AllocFrame()
	if m.IsTable(f) {
		t.Fatal("data frame reported as table")
	}
	assertPanics(t, "ReadEntry", func() { m.ReadEntry(f, 0) })
	assertPanics(t, "WriteEntry", func() { m.WriteEntry(f, 0, 1) })
	assertPanics(t, "TableSnapshot", func() { m.TableSnapshot(f) })
}

func TestFreeTableFrameDropsContent(t *testing.T) {
	m := New(1 << 20)
	f, _ := m.AllocTable()
	m.WriteEntry(f, 1, 42)
	if err := m.FreeFrame(f); err != nil {
		t.Fatalf("FreeFrame: %v", err)
	}
	if m.IsTable(f) {
		t.Fatal("freed frame still a table")
	}
}

func TestFrameAddrRoundTrip(t *testing.T) {
	if err := quick.Check(func(n uint32) bool {
		f := Frame(n)
		return FrameOf(f.Addr()) == f
	}, nil); err != nil {
		t.Error(err)
	}
	if err := quick.Check(func(pa uint64) bool {
		f := FrameOf(pa)
		return f.Addr() == pa&^uint64(FrameSize-1)
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestReuseAfterFreePrefersFreeList(t *testing.T) {
	m := New(1 << 20)
	a, _ := m.AllocFrame()
	b, _ := m.AllocFrame()
	if err := m.FreeFrame(a); err != nil {
		t.Fatal(err)
	}
	c, _ := m.AllocFrame()
	if c != a {
		t.Fatalf("expected reuse of freed frame %#x, got %#x", uint64(a), uint64(c))
	}
	_ = b
}

func assertPanics(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", name)
		}
	}()
	fn()
}

func TestAllocContiguousAligned(t *testing.T) {
	m := New(64 << 20)
	if _, err := m.AllocFrame(); err != nil { // misalign the bump pointer
		t.Fatal(err)
	}
	f, err := m.AllocContiguousAligned(512, 512) // one 2M chunk
	if err != nil {
		t.Fatalf("AllocContiguousAligned: %v", err)
	}
	if uint64(f)%512 != 0 {
		t.Errorf("frame %#x not 512-frame aligned", uint64(f))
	}
	// Skipped frames must be reusable.
	g, err := m.AllocFrame()
	if err != nil {
		t.Fatal(err)
	}
	if g >= f {
		t.Errorf("alignment gap not recycled: got frame %#x >= %#x", uint64(g), uint64(f))
	}
	// Align 1 behaves like plain contiguous.
	if _, err := m.AllocContiguousAligned(4, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AllocContiguousAligned(1<<30, 512); err != ErrOutOfMemory {
		t.Errorf("err = %v, want ErrOutOfMemory", err)
	}
}

func TestMaterializeTable(t *testing.T) {
	m := New(1 << 20)
	f, _ := m.AllocFrame()
	if m.IsTable(f) {
		t.Fatal("data frame reported as table before materialization")
	}
	if err := m.MaterializeTable(f); err != nil {
		t.Fatalf("MaterializeTable: %v", err)
	}
	if !m.IsTable(f) {
		t.Fatal("IsTable = false after MaterializeTable")
	}
	m.WriteEntry(f, 3, 0x77)
	// Idempotence: re-materializing must keep existing entries, not re-zero.
	if err := m.MaterializeTable(f); err != nil {
		t.Fatalf("second MaterializeTable: %v", err)
	}
	if v := m.ReadEntry(f, 3); v != 0x77 {
		t.Fatalf("entry lost on re-materialize: got %#x, want 0x77", v)
	}
	// Unallocated frames cannot be materialized.
	if err := m.MaterializeTable(Frame(200)); err == nil {
		t.Error("MaterializeTable of unallocated frame should fail")
	}
	if err := m.MaterializeTable(Frame(1 << 40)); err == nil {
		t.Error("MaterializeTable of out-of-range frame should fail")
	}
}

func TestReallocReusesFreedTableAsDataFrame(t *testing.T) {
	m := New(1 << 20)
	f, _ := m.AllocTable()
	m.WriteEntry(f, 0, 0xfeed)
	if err := m.FreeFrame(f); err != nil {
		t.Fatal(err)
	}
	g, err := m.AllocFrame()
	if err != nil {
		t.Fatal(err)
	}
	if g != f {
		t.Fatalf("expected freed table frame %#x to be reused, got %#x", uint64(f), uint64(g))
	}
	// The recycled frame is a plain data frame: the table identity (and its
	// old contents) must not leak across the free/realloc cycle.
	if m.IsTable(g) {
		t.Fatal("recycled frame still carries table identity")
	}
	if err := m.MaterializeTable(g); err != nil {
		t.Fatal(err)
	}
	if v := m.ReadEntry(g, 0); v != 0 {
		t.Fatalf("stale entry %#x visible after realloc+materialize, want 0", v)
	}
}

func TestAllocContiguousAlignedFreelistReturns(t *testing.T) {
	m := New(64 << 20)
	for i := 0; i < 3; i++ { // push the bump pointer 3 frames past alignment
		if _, err := m.AllocFrame(); err != nil {
			t.Fatal(err)
		}
	}
	before := m.AllocatedFrames()
	f, err := m.AllocContiguousAligned(512, 512)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.AllocatedFrames(); got != before+512 {
		t.Fatalf("AllocatedFrames = %d after aligned alloc, want %d (skipped frames must not count)", got, before+512)
	}
	// All 508 frames skipped for alignment land on the free list and are
	// handed out before the bump pointer moves again.
	for i := 0; i < 508; i++ {
		g, err := m.AllocFrame()
		if err != nil {
			t.Fatal(err)
		}
		if g >= f {
			t.Fatalf("alloc %d: frame %#x is past the aligned run start %#x", i, uint64(g), uint64(f))
		}
	}
	g, err := m.AllocFrame()
	if err != nil {
		t.Fatal(err)
	}
	if g < f+512 {
		t.Fatalf("free list should be drained, got frame %#x inside/before the run", uint64(g))
	}
}

func TestOOMAtExactCapacity(t *testing.T) {
	const frames = 16
	m := New(frames * FrameSize)
	// Frame 0 is reserved, so exactly frames-1 are usable.
	if _, err := m.AllocContiguous(frames - 1); err != nil {
		t.Fatalf("AllocContiguous at exact capacity: %v", err)
	}
	if got := m.AllocatedFrames(); got != frames-1 {
		t.Fatalf("AllocatedFrames = %d, want %d", got, frames-1)
	}
	if _, err := m.AllocFrame(); err != ErrOutOfMemory {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
	if _, err := m.AllocContiguous(1); err != ErrOutOfMemory {
		t.Fatalf("AllocContiguous err = %v, want ErrOutOfMemory", err)
	}
	if _, err := m.AllocContiguousAligned(1, 8); err != ErrOutOfMemory {
		t.Fatalf("AllocContiguousAligned err = %v, want ErrOutOfMemory", err)
	}
}

// TestPanicMessagesPreserved pins the exact panic text of the table
// accessors: debugging scripts and the walker's invariants reference these
// strings, and the dense-backing refactor must not have changed them.
func TestPanicMessagesPreserved(t *testing.T) {
	m := New(1 << 20)
	f, _ := m.AllocFrame() // data frame, not a table
	cases := []struct {
		name string
		fn   func()
		want string
	}{
		{"ReadEntry", func() { m.ReadEntry(f, 0) }, "memsim: read of non-table frame 0x1"},
		{"WriteEntry", func() { m.WriteEntry(f, 0, 1) }, "memsim: write of non-table frame 0x1"},
		{"TableSnapshot", func() { m.TableSnapshot(f) }, "memsim: snapshot of non-table frame 0x1"},
		{"ReadEntryOutOfRange", func() { m.ReadEntry(Frame(1<<40), 0) }, "memsim: read of non-table frame 0x10000000000"},
	}
	for _, c := range cases {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Errorf("%s did not panic", c.name)
					return
				}
				if msg, ok := r.(string); !ok || msg != c.want {
					t.Errorf("%s panic = %v, want %q", c.name, r, c.want)
				}
			}()
			c.fn()
		}()
	}
}
