package memsim

import "testing"

// BenchmarkReadEntry measures the page-walker's single most frequent
// operation: dereferencing one entry of a table page. This must stay at a
// couple of bounds-checked array indexes with zero allocations — it runs
// once per simulated page-walk memory reference.
func BenchmarkReadEntry(b *testing.B) {
	m := New(64 << 20)
	f, err := m.AllocTable()
	if err != nil {
		b.Fatal(err)
	}
	m.WriteEntry(f, 7, 0xabc007)
	b.ReportAllocs()
	b.ResetTimer()
	var sum uint64
	for i := 0; i < b.N; i++ {
		sum += m.ReadEntry(f, i&(EntriesPerTable-1))
	}
	sink = sum
}

// BenchmarkWriteEntry measures the matching store path (A/D bit updates,
// table construction).
func BenchmarkWriteEntry(b *testing.B) {
	m := New(64 << 20)
	f, err := m.AllocTable()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.WriteEntry(f, i&(EntriesPerTable-1), uint64(i))
	}
}

// BenchmarkAllocFreeFrame measures data-frame allocator turnaround (the
// mmap-churn path).
func BenchmarkAllocFreeFrame(b *testing.B) {
	m := New(64 << 20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := m.AllocFrame()
		if err != nil {
			b.Fatal(err)
		}
		if err := m.FreeFrame(f); err != nil {
			b.Fatal(err)
		}
	}
}

// sink defeats dead-code elimination of benchmark loops.
var sink uint64
