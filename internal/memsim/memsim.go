// Package memsim models the host physical memory of the simulated machine.
//
// Physical memory is divided into 4 KiB frames. Frames are allocated from a
// simple bump-plus-freelist allocator. Frames that hold page-table pages have
// their 512 eight-byte entries materialized so the hardware walk state
// machines (package walker) and the software page-table code (package
// pagetable) can read and write individual entries; data frames carry no
// content, only identity, because the simulator accounts for translation
// behaviour rather than data values.
//
// The backing structures are dense and pointer-free: allocation state lives
// in a bitmap, and table pages live in a pooled arena addressed through an
// int32 frame-number index, both grown lazily to the allocation high-water
// mark. ReadEntry/WriteEntry — executed once per simulated page-walk memory
// reference, the currency of the paper's evaluation — are therefore a few
// bounds-checked array indexes with no hashing and no allocation, and none
// of the backing arrays contain pointers the garbage collector would have
// to scan. See DESIGN.md "Performance engineering".
package memsim

import (
	"errors"
	"fmt"
)

const (
	// FrameSize is the size of a physical frame in bytes.
	FrameSize = 4096
	// FrameShift is log2(FrameSize).
	FrameShift = 12
	// EntriesPerTable is the number of 8-byte entries in one page-table page.
	EntriesPerTable = 512
)

// Frame identifies a physical frame by its frame number (physical address
// right-shifted by FrameShift).
type Frame uint64

// Addr returns the base physical address of the frame.
func (f Frame) Addr() uint64 { return uint64(f) << FrameShift }

// FrameOf returns the frame containing physical address pa.
func FrameOf(pa uint64) Frame { return Frame(pa >> FrameShift) }

// ErrOutOfMemory is returned when the physical memory is exhausted.
var ErrOutOfMemory = errors.New("memsim: out of physical memory")

// Memory is a simulated bank of host physical memory.
//
// The zero value is not usable; create instances with New.
type Memory struct {
	totalFrames uint64
	nextFrame   Frame
	freeList    []Frame
	// tableIdx[f] is 1 + the pool slot of the materialized page-table page
	// in frame f, or 0 for data and unallocated frames. Sized lazily to the
	// allocation high-water mark; int32 slots keep it compact and free of
	// pointers, so the garbage collector never scans it.
	tableIdx []int32
	// pool is the arena of materialized table pages; slots freed when a
	// table frame is released are recycled through poolFree. The element
	// type carries no pointers, so the backing array is invisible to the
	// garbage collector.
	pool     [][EntriesPerTable]uint64
	poolFree []int32
	// allocated is a bitmap over frame numbers (bit f of word f/64), sized
	// lazily like tableIdx.
	allocated  []uint64
	allocCount int
}

// New creates a Memory holding the given number of bytes, rounded down to a
// whole number of frames. Frame 0 is reserved (a zero frame number means
// "no frame" throughout the simulator).
func New(bytes uint64) *Memory {
	frames := bytes / FrameSize
	if frames < 2 {
		frames = 2
	}
	return &Memory{
		totalFrames: frames,
		nextFrame:   1, // frame 0 reserved as the nil frame
	}
}

// grow extends the frame-indexed structures to cover frame f. The bump
// allocator hands out frames in increasing order, so doubling amortizes the
// copies; both slices are capped at the configured frame count.
func (m *Memory) grow(f Frame) {
	if need := uint64(f) + 1; uint64(len(m.tableIdx)) < need {
		n := 2 * uint64(cap(m.tableIdx))
		if n < need {
			n = need
		}
		if n < 1024 {
			n = 1024
		}
		if n > m.totalFrames {
			n = m.totalFrames
		}
		ti := make([]int32, n)
		copy(ti, m.tableIdx)
		m.tableIdx = ti
	}
	if words := (uint64(f) >> 6) + 1; uint64(len(m.allocated)) < words {
		n := 2 * uint64(cap(m.allocated))
		if n < words {
			n = words
		}
		if max := (m.totalFrames + 63) / 64; n > max {
			n = max
		}
		al := make([]uint64, n)
		copy(al, m.allocated)
		m.allocated = al
	}
}

// isAllocated reports whether frame f is currently allocated.
func (m *Memory) isAllocated(f Frame) bool {
	w := uint64(f) >> 6
	if uint64(f) >= m.totalFrames || w >= uint64(len(m.allocated)) {
		return false
	}
	return m.allocated[w]&(1<<(f&63)) != 0
}

// setAllocated marks frame f allocated.
func (m *Memory) setAllocated(f Frame) {
	m.grow(f)
	m.allocated[f>>6] |= 1 << (f & 63)
	m.allocCount++
}

// clearAllocated marks frame f free.
func (m *Memory) clearAllocated(f Frame) {
	m.allocated[f>>6] &^= 1 << (f & 63)
	m.allocCount--
}

// TotalFrames reports the number of frames the memory holds, including the
// reserved nil frame.
func (m *Memory) TotalFrames() uint64 { return m.totalFrames }

// AllocatedFrames reports the number of currently allocated frames.
func (m *Memory) AllocatedFrames() int { return m.allocCount }

// AllocFrame allocates one data frame.
func (m *Memory) AllocFrame() (Frame, error) {
	if n := len(m.freeList); n > 0 {
		f := m.freeList[n-1]
		m.freeList = m.freeList[:n-1]
		m.setAllocated(f)
		return f, nil
	}
	if uint64(m.nextFrame) >= m.totalFrames {
		return 0, ErrOutOfMemory
	}
	f := m.nextFrame
	m.nextFrame++
	m.setAllocated(f)
	return f, nil
}

// AllocContiguous allocates n physically contiguous frames and returns the
// first. Contiguity only matters for large-page backing; the allocator
// satisfies it from the bump pointer, never the free list.
func (m *Memory) AllocContiguous(n int) (Frame, error) {
	if n <= 0 {
		return 0, fmt.Errorf("memsim: invalid contiguous allocation of %d frames", n)
	}
	if uint64(m.nextFrame)+uint64(n) > m.totalFrames {
		return 0, ErrOutOfMemory
	}
	first := m.nextFrame
	for i := 0; i < n; i++ {
		m.setAllocated(m.nextFrame)
		m.nextFrame++
	}
	return first, nil
}

// AllocContiguousAligned allocates n physically contiguous frames whose
// first frame number is a multiple of alignFrames, as large-page backing
// requires. Frames skipped for alignment are returned to the free list.
func (m *Memory) AllocContiguousAligned(n, alignFrames int) (Frame, error) {
	if alignFrames <= 1 {
		return m.AllocContiguous(n)
	}
	a := uint64(alignFrames)
	start := (uint64(m.nextFrame) + a - 1) / a * a
	if start+uint64(n) > m.totalFrames {
		return 0, ErrOutOfMemory
	}
	for f := m.nextFrame; uint64(f) < start; f++ {
		m.freeList = append(m.freeList, f)
	}
	m.nextFrame = Frame(start)
	return m.AllocContiguous(n)
}

// materialize installs a zeroed table page for the (already allocated,
// already covered by tableIdx) frame f, recycling a pooled page when one is
// free.
func (m *Memory) materialize(f Frame) {
	var slot int32
	if n := len(m.poolFree); n > 0 {
		slot = m.poolFree[n-1]
		m.poolFree = m.poolFree[:n-1]
		m.pool[slot] = [EntriesPerTable]uint64{}
	} else {
		m.pool = append(m.pool, [EntriesPerTable]uint64{})
		slot = int32(len(m.pool) - 1)
	}
	m.tableIdx[f] = slot + 1
}

// AllocTable allocates a frame and materializes it as a zeroed page-table
// page.
func (m *Memory) AllocTable() (Frame, error) {
	f, err := m.AllocFrame()
	if err != nil {
		return 0, err
	}
	m.materialize(f)
	return f, nil
}

// MaterializeTable converts an already-allocated data frame into a zeroed
// page-table page. The VMM uses this when a guest OS repurposes a page of
// its (pre-backed) RAM as a page-table page. Materializing a frame that is
// already a table is a no-op.
func (m *Memory) MaterializeTable(f Frame) error {
	if !m.isAllocated(f) {
		return fmt.Errorf("memsim: materialize of unallocated frame %#x", uint64(f))
	}
	if m.tableIdx[f] == 0 {
		m.materialize(f)
	}
	return nil
}

// FreeFrame returns a frame to the allocator. Freeing the nil frame or an
// unallocated frame is an error.
func (m *Memory) FreeFrame(f Frame) error {
	if f == 0 {
		return errors.New("memsim: free of nil frame")
	}
	if !m.isAllocated(f) {
		return fmt.Errorf("memsim: double free of frame %#x", uint64(f))
	}
	m.clearAllocated(f)
	if ti := m.tableIdx[f]; ti != 0 {
		m.poolFree = append(m.poolFree, ti-1)
		m.tableIdx[f] = 0
	}
	m.freeList = append(m.freeList, f)
	return nil
}

// IsTable reports whether frame f holds a materialized page-table page.
func (m *Memory) IsTable(f Frame) bool {
	return uint64(f) < uint64(len(m.tableIdx)) && m.tableIdx[f] != 0
}

// ReadEntry reads entry idx of the page-table page in frame f.
// It panics if f is not a table frame or idx is out of range: the hardware
// walker only ever dereferences pointers the simulator itself installed, so
// a violation is a simulator bug, not a guest error.
func (m *Memory) ReadEntry(f Frame, idx int) uint64 {
	if uint64(f) >= uint64(len(m.tableIdx)) || m.tableIdx[f] == 0 {
		panic(fmt.Sprintf("memsim: read of non-table frame %#x", uint64(f)))
	}
	return m.pool[m.tableIdx[f]-1][idx]
}

// WriteEntry writes entry idx of the page-table page in frame f.
func (m *Memory) WriteEntry(f Frame, idx int, val uint64) {
	if uint64(f) >= uint64(len(m.tableIdx)) || m.tableIdx[f] == 0 {
		panic(fmt.Sprintf("memsim: write of non-table frame %#x", uint64(f)))
	}
	m.pool[m.tableIdx[f]-1][idx] = val
}

// ZeroTable clears every entry of the page-table page in frame f — the OS
// zeroing a page before linking it into a page table. Frames freed while
// still holding entries would otherwise resurface with stale contents when
// the allocator recycles them.
func (m *Memory) ZeroTable(f Frame) {
	if uint64(f) >= uint64(len(m.tableIdx)) || m.tableIdx[f] == 0 {
		panic(fmt.Sprintf("memsim: zero of non-table frame %#x", uint64(f)))
	}
	m.pool[m.tableIdx[f]-1] = [EntriesPerTable]uint64{}
}

// Reset returns the memory to its pristine post-New state without
// releasing any backing capacity: every frame is freed, the bump pointer
// restarts at frame 1, and all arena slots become available for recycling.
// Because allocation order after Reset replays exactly as after New (bump
// from frame 1, empty free list), a reset machine hands out identical frame
// numbers to an identical request sequence — the property the Reset-vs-
// fresh equivalence suite pins.
func (m *Memory) Reset() {
	m.nextFrame = 1
	m.freeList = m.freeList[:0]
	clear(m.tableIdx)
	clear(m.allocated)
	m.allocCount = 0
	m.poolFree = m.poolFree[:0]
	for i := range m.pool {
		m.poolFree = append(m.poolFree, int32(i))
	}
}

// TableSnapshot returns a copy of the 512 entries of table frame f, for
// tests and debugging.
func (m *Memory) TableSnapshot(f Frame) [EntriesPerTable]uint64 {
	if uint64(f) >= uint64(len(m.tableIdx)) || m.tableIdx[f] == 0 {
		panic(fmt.Sprintf("memsim: snapshot of non-table frame %#x", uint64(f)))
	}
	return m.pool[m.tableIdx[f]-1]
}
