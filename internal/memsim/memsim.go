// Package memsim models the host physical memory of the simulated machine.
//
// Physical memory is divided into 4 KiB frames. Frames are allocated from a
// simple bump-plus-freelist allocator. Frames that hold page-table pages have
// their 512 eight-byte entries materialized so the hardware walk state
// machines (package walker) and the software page-table code (package
// pagetable) can read and write individual entries; data frames carry no
// content, only identity, because the simulator accounts for translation
// behaviour rather than data values.
package memsim

import (
	"errors"
	"fmt"
)

const (
	// FrameSize is the size of a physical frame in bytes.
	FrameSize = 4096
	// FrameShift is log2(FrameSize).
	FrameShift = 12
	// EntriesPerTable is the number of 8-byte entries in one page-table page.
	EntriesPerTable = 512
)

// Frame identifies a physical frame by its frame number (physical address
// right-shifted by FrameShift).
type Frame uint64

// Addr returns the base physical address of the frame.
func (f Frame) Addr() uint64 { return uint64(f) << FrameShift }

// FrameOf returns the frame containing physical address pa.
func FrameOf(pa uint64) Frame { return Frame(pa >> FrameShift) }

// ErrOutOfMemory is returned when the physical memory is exhausted.
var ErrOutOfMemory = errors.New("memsim: out of physical memory")

// Memory is a simulated bank of host physical memory.
//
// The zero value is not usable; create instances with New.
type Memory struct {
	totalFrames uint64
	nextFrame   Frame
	freeList    []Frame
	tables      map[Frame]*[EntriesPerTable]uint64
	allocated   map[Frame]bool
}

// New creates a Memory holding the given number of bytes, rounded down to a
// whole number of frames. Frame 0 is reserved (a zero frame number means
// "no frame" throughout the simulator).
func New(bytes uint64) *Memory {
	frames := bytes / FrameSize
	if frames < 2 {
		frames = 2
	}
	return &Memory{
		totalFrames: frames,
		nextFrame:   1, // frame 0 reserved as the nil frame
		tables:      make(map[Frame]*[EntriesPerTable]uint64),
		allocated:   make(map[Frame]bool),
	}
}

// TotalFrames reports the number of frames the memory holds, including the
// reserved nil frame.
func (m *Memory) TotalFrames() uint64 { return m.totalFrames }

// AllocatedFrames reports the number of currently allocated frames.
func (m *Memory) AllocatedFrames() int { return len(m.allocated) }

// AllocFrame allocates one data frame.
func (m *Memory) AllocFrame() (Frame, error) {
	if n := len(m.freeList); n > 0 {
		f := m.freeList[n-1]
		m.freeList = m.freeList[:n-1]
		m.allocated[f] = true
		return f, nil
	}
	if uint64(m.nextFrame) >= m.totalFrames {
		return 0, ErrOutOfMemory
	}
	f := m.nextFrame
	m.nextFrame++
	m.allocated[f] = true
	return f, nil
}

// AllocContiguous allocates n physically contiguous frames and returns the
// first. Contiguity only matters for large-page backing; the allocator
// satisfies it from the bump pointer, never the free list.
func (m *Memory) AllocContiguous(n int) (Frame, error) {
	if n <= 0 {
		return 0, fmt.Errorf("memsim: invalid contiguous allocation of %d frames", n)
	}
	if uint64(m.nextFrame)+uint64(n) > m.totalFrames {
		return 0, ErrOutOfMemory
	}
	first := m.nextFrame
	for i := 0; i < n; i++ {
		m.allocated[m.nextFrame] = true
		m.nextFrame++
	}
	return first, nil
}

// AllocContiguousAligned allocates n physically contiguous frames whose
// first frame number is a multiple of alignFrames, as large-page backing
// requires. Frames skipped for alignment are returned to the free list.
func (m *Memory) AllocContiguousAligned(n, alignFrames int) (Frame, error) {
	if alignFrames <= 1 {
		return m.AllocContiguous(n)
	}
	a := uint64(alignFrames)
	start := (uint64(m.nextFrame) + a - 1) / a * a
	if start+uint64(n) > m.totalFrames {
		return 0, ErrOutOfMemory
	}
	for f := m.nextFrame; uint64(f) < start; f++ {
		m.freeList = append(m.freeList, f)
	}
	m.nextFrame = Frame(start)
	return m.AllocContiguous(n)
}

// AllocTable allocates a frame and materializes it as a zeroed page-table
// page.
func (m *Memory) AllocTable() (Frame, error) {
	f, err := m.AllocFrame()
	if err != nil {
		return 0, err
	}
	m.tables[f] = new([EntriesPerTable]uint64)
	return f, nil
}

// MaterializeTable converts an already-allocated data frame into a zeroed
// page-table page. The VMM uses this when a guest OS repurposes a page of
// its (pre-backed) RAM as a page-table page. Materializing a frame that is
// already a table is a no-op.
func (m *Memory) MaterializeTable(f Frame) error {
	if !m.allocated[f] {
		return fmt.Errorf("memsim: materialize of unallocated frame %#x", uint64(f))
	}
	if _, ok := m.tables[f]; !ok {
		m.tables[f] = new([EntriesPerTable]uint64)
	}
	return nil
}

// FreeFrame returns a frame to the allocator. Freeing the nil frame or an
// unallocated frame is an error.
func (m *Memory) FreeFrame(f Frame) error {
	if f == 0 {
		return errors.New("memsim: free of nil frame")
	}
	if !m.allocated[f] {
		return fmt.Errorf("memsim: double free of frame %#x", uint64(f))
	}
	delete(m.allocated, f)
	delete(m.tables, f)
	m.freeList = append(m.freeList, f)
	return nil
}

// IsTable reports whether frame f holds a materialized page-table page.
func (m *Memory) IsTable(f Frame) bool {
	_, ok := m.tables[f]
	return ok
}

// ReadEntry reads entry idx of the page-table page in frame f.
// It panics if f is not a table frame or idx is out of range: the hardware
// walker only ever dereferences pointers the simulator itself installed, so
// a violation is a simulator bug, not a guest error.
func (m *Memory) ReadEntry(f Frame, idx int) uint64 {
	t, ok := m.tables[f]
	if !ok {
		panic(fmt.Sprintf("memsim: read of non-table frame %#x", uint64(f)))
	}
	return t[idx]
}

// WriteEntry writes entry idx of the page-table page in frame f.
func (m *Memory) WriteEntry(f Frame, idx int, val uint64) {
	t, ok := m.tables[f]
	if !ok {
		panic(fmt.Sprintf("memsim: write of non-table frame %#x", uint64(f)))
	}
	t[idx] = val
}

// TableSnapshot returns a copy of the 512 entries of table frame f, for
// tests and debugging.
func (m *Memory) TableSnapshot(f Frame) [EntriesPerTable]uint64 {
	t, ok := m.tables[f]
	if !ok {
		panic(fmt.Sprintf("memsim: snapshot of non-table frame %#x", uint64(f)))
	}
	return *t
}
