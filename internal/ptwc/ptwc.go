// Package ptwc models the MMU translation-acceleration structures the paper
// accounts for: Intel-style page walk caches (PWCs) that skip upper levels
// of a walk, and the nested TLB that caches gPA⇒hPA translations during 2D
// walks (paper §II-A, §III-A "Page Walk Caches").
//
// The agile-paging extension from the paper is included: every PWC entry
// carries one extra bit recording whether the cached pointer refers to a
// shadow page table page or a guest page table page, so an agile walk can
// resume in the correct mode.
package ptwc

import "fmt"

// pwcLine is one cached partial translation.
type pwcLine struct {
	valid   bool
	asid    uint16
	tag     uint64
	ptr     uint64 // host-physical address of the next table page
	nested  bool   // agile extension: pointer is into the guest page table
	lastUse uint64
}

// pwcArray is a small set-associative cache for one skip depth.
type pwcArray struct {
	sets  int
	ways  int
	lines []pwcLine
	clock uint64
	// Set counts are powers of two for every realistic geometry, letting
	// the per-reference set index be a mask instead of a division; the
	// modulo fallback keeps odd test geometries working.
	setMask  uint64 // sets-1 when sets is a power of two
	setsPow2 bool
}

func newPWCArray(entries, ways int) *pwcArray {
	if entries < 1 {
		entries = 1
	}
	if ways < 1 {
		ways = 1
	}
	if ways > entries {
		ways = entries
	}
	sets := entries / ways
	if sets < 1 {
		sets = 1
	}
	a := &pwcArray{sets: sets, ways: ways, lines: make([]pwcLine, sets*ways)}
	if sets&(sets-1) == 0 {
		a.setsPow2 = true
		a.setMask = uint64(sets - 1)
	}
	return a
}

func (a *pwcArray) set(tag uint64) []pwcLine {
	var s int
	if a.setsPow2 {
		s = int(tag & a.setMask)
	} else {
		s = int(tag % uint64(a.sets))
	}
	return a.lines[s*a.ways : (s+1)*a.ways]
}

func (a *pwcArray) lookup(asid uint16, tag uint64) (ptr uint64, nested, ok bool) {
	a.clock++
	set := a.set(tag)
	for i := range set {
		l := &set[i]
		if l.valid && l.asid == asid && l.tag == tag {
			l.lastUse = a.clock
			return l.ptr, l.nested, true
		}
	}
	return 0, false, false
}

func (a *pwcArray) insert(asid uint16, tag, ptr uint64, nested bool) {
	a.clock++
	set := a.set(tag)
	victim := 0
	for i := range set {
		l := &set[i]
		if l.valid && l.asid == asid && l.tag == tag {
			victim = i
			break
		}
		if !l.valid {
			victim = i
			break
		}
		if l.lastUse < set[victim].lastUse {
			victim = i
		}
	}
	set[victim] = pwcLine{valid: true, asid: asid, tag: tag, ptr: ptr, nested: nested, lastUse: a.clock}
}

func (a *pwcArray) invalidate(asid uint16, tag uint64) {
	set := a.set(tag)
	for i := range set {
		l := &set[i]
		if l.valid && l.asid == asid && l.tag == tag {
			l.valid = false
		}
	}
}

// reset empties the array and rewinds the LRU clock to its
// post-construction state, so replacement decisions replay as on a fresh
// array.
func (a *pwcArray) reset() {
	clear(a.lines)
	a.clock = 0
}

func (a *pwcArray) flush(asid uint16, all bool) {
	for i := range a.lines {
		if a.lines[i].valid && (all || a.lines[i].asid == asid) {
			a.lines[i].valid = false
		}
	}
}

// Config sizes the three PWC arrays, indexed by the number of levels the
// entry lets the walk skip (1, 2, or 3). Defaults mirror the three partial
// translation tables in Intel parts (paper §III-A, [15, 21]).
type Config struct {
	Entries [3]int // skip-1, skip-2, skip-3 arrays
	Ways    int
}

// DefaultConfig returns a PWC geometry in line with published MMU-cache
// sizes (Barr et al., Bhattacharjee): 3 arrays of 32 entries, 4-way.
func DefaultConfig() Config {
	return Config{Entries: [3]int{32, 32, 32}, Ways: 4}
}

// Stats counts PWC events.
type Stats struct {
	Lookups uint64
	Hits    uint64
	// HitDepth[d] counts hits that skipped d+1 levels.
	HitDepth [3]uint64
}

// PWC is a set of page walk caches covering skip depths 1..3.
type PWC struct {
	arrays [3]*pwcArray // index d => skip d+1 levels
	stats  Stats
}

// New builds the PWC from cfg.
func New(cfg Config) *PWC {
	p := &PWC{}
	for d := 0; d < 3; d++ {
		p.arrays[d] = newPWCArray(cfg.Entries[d], cfg.Ways)
	}
	return p
}

// tagFor computes the tag covering walk levels 0..skip-1 of va.
func tagFor(va uint64, skip int) uint64 {
	return va >> (48 - 9*uint(skip))
}

// Lookup returns the deepest cached partial translation for va: ptr is the
// host-physical address of the table page at level `level` (so levels
// 0..level-1 are skipped), and nested reports whether that page belongs to
// the guest page table (resume in nested mode) or the shadow/native table.
func (p *PWC) Lookup(asid uint16, va uint64) (ptr uint64, level int, nested, ok bool) {
	p.stats.Lookups++
	for d := 2; d >= 0; d-- {
		if ptr, nested, ok := p.arrays[d].lookup(asid, tagFor(va, d+1)); ok {
			p.stats.Hits++
			p.stats.HitDepth[d]++
			return ptr, d + 1, nested, true
		}
	}
	return 0, 0, false, false
}

// Insert caches ptr as the table page reached after walking levels
// 0..level-1 of va. level must be 1..3.
func (p *PWC) Insert(asid uint16, va uint64, level int, ptr uint64, nested bool) {
	if level < 1 || level > 3 {
		panic(fmt.Sprintf("ptwc: invalid insert level %d", level))
	}
	p.arrays[level-1].insert(asid, tagFor(va, level), ptr, nested)
}

// InvalidateVA drops all partial translations covering va for asid, as the
// VMM must when it changes the mode or structure of upper-level entries.
func (p *PWC) InvalidateVA(asid uint16, va uint64) {
	for d := 0; d < 3; d++ {
		p.arrays[d].invalidate(asid, tagFor(va, d+1))
	}
}

// FlushASID drops all entries of one address space.
func (p *PWC) FlushASID(asid uint16) {
	for d := 0; d < 3; d++ {
		p.arrays[d].flush(asid, false)
	}
}

// FlushAll empties the PWC.
func (p *PWC) FlushAll() {
	for d := 0; d < 3; d++ {
		p.arrays[d].flush(0, true)
	}
}

// Stats returns the accumulated counters.
func (p *PWC) Stats() Stats { return p.stats }

// ResetStats zeroes the counters.
func (p *PWC) ResetStats() { p.stats = Stats{} }

// Reset restores the PWC to its post-construction state: all arrays
// emptied with their LRU clocks rewound, statistics zeroed.
func (p *PWC) Reset() {
	for d := 0; d < 3; d++ {
		p.arrays[d].reset()
	}
	p.stats = Stats{}
}
