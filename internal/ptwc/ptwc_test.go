package ptwc

import (
	"math/rand"
	"testing"
)

func TestPWCDeepestHitWins(t *testing.T) {
	p := New(DefaultConfig())
	va := uint64(0x7f12_3456_7000)
	p.Insert(1, va, 1, 0x1000, false)
	p.Insert(1, va, 2, 0x2000, false)
	p.Insert(1, va, 3, 0x3000, true)
	ptr, level, nested, ok := p.Lookup(1, va)
	if !ok || level != 3 || ptr != 0x3000 || !nested {
		t.Fatalf("Lookup = ptr %#x level %d nested %v ok %v; want deepest", ptr, level, nested, ok)
	}
	// A different VA sharing only the top-level prefix hits the skip-1 array.
	va2 := va ^ (1 << 30) // change the level-1 index
	ptr, level, nested, ok = p.Lookup(1, va2)
	if !ok || level != 1 || ptr != 0x1000 || nested {
		t.Fatalf("prefix lookup = ptr %#x level %d nested %v ok %v", ptr, level, nested, ok)
	}
}

func TestPWCPrefixSharing(t *testing.T) {
	p := New(DefaultConfig())
	va := uint64(0x7f12_3456_7000)
	p.Insert(1, va, 3, 0x3000, false)
	// Same 2M region (same indices at levels 0..2) must hit skip-3.
	same := va | 0x1ff000
	if _, level, _, ok := p.Lookup(1, same); !ok || level != 3 {
		t.Errorf("same-region lookup level=%d ok=%v, want 3/true", level, ok)
	}
	// Different level-2 index must miss entirely.
	diff := va ^ (1 << 21)
	if _, _, _, ok := p.Lookup(1, diff); ok {
		t.Error("different PD index should miss")
	}
}

func TestPWCASIDSeparationAndFlush(t *testing.T) {
	p := New(DefaultConfig())
	va := uint64(0x1000)
	p.Insert(1, va, 2, 0xaaa000, false)
	p.Insert(2, va, 2, 0xbbb000, false)
	ptr, _, _, ok := p.Lookup(2, va)
	if !ok || ptr != 0xbbb000 {
		t.Fatalf("asid 2 lookup = %#x ok=%v", ptr, ok)
	}
	p.FlushASID(2)
	if _, _, _, ok := p.Lookup(2, va); ok {
		t.Error("asid 2 survived FlushASID")
	}
	if _, _, _, ok := p.Lookup(1, va); !ok {
		t.Error("asid 1 dropped by FlushASID(2)")
	}
	p.FlushAll()
	if _, _, _, ok := p.Lookup(1, va); ok {
		t.Error("entry survived FlushAll")
	}
}

func TestPWCInvalidateVA(t *testing.T) {
	p := New(DefaultConfig())
	va := uint64(0x7f12_3456_7000)
	for l := 1; l <= 3; l++ {
		p.Insert(1, va, l, uint64(l)<<12, false)
	}
	p.InvalidateVA(1, va)
	if _, _, _, ok := p.Lookup(1, va); ok {
		t.Error("entries survived InvalidateVA")
	}
}

func TestPWCStats(t *testing.T) {
	p := New(DefaultConfig())
	p.Lookup(1, 0x1000) // miss
	p.Insert(1, 0x1000, 2, 0x2000, false)
	p.Lookup(1, 0x1000) // hit at depth 2
	s := p.Stats()
	if s.Lookups != 2 || s.Hits != 1 || s.HitDepth[1] != 1 {
		t.Errorf("stats = %+v", s)
	}
	p.ResetStats()
	if p.Stats() != (Stats{}) {
		t.Error("ResetStats")
	}
}

func TestPWCInsertInvalidLevelPanics(t *testing.T) {
	p := New(DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Error("Insert level 0 did not panic")
		}
	}()
	p.Insert(1, 0, 0, 0, false)
}

func TestPWCEvictionLRU(t *testing.T) {
	p := New(Config{Entries: [3]int{4, 4, 4}, Ways: 4})
	// Fill the skip-3 array (single set of 4 ways) with 4 distinct tags.
	vas := []uint64{0, 1 << 21, 2 << 21, 3 << 21}
	for i, va := range vas {
		p.Insert(1, va, 3, uint64(i+1)<<12, false)
	}
	// Touch first three, then insert a fifth: the fourth is evicted.
	for _, va := range vas[:3] {
		if _, _, _, ok := p.Lookup(1, va); !ok {
			t.Fatal("warm entry missing")
		}
	}
	p.Insert(1, 4<<21, 3, 0x9000, false)
	if _, _, _, ok := p.Lookup(1, vas[3]); ok {
		t.Error("LRU victim survived")
	}
	for _, va := range vas[:3] {
		if _, _, _, ok := p.Lookup(1, va); !ok {
			t.Errorf("recently used entry %#x evicted", va)
		}
	}
}

func TestNestedTLBBasic(t *testing.T) {
	n := NewNestedTLB(16, 4)
	if _, _, ok := n.Lookup(1, 0x5123); ok {
		t.Fatal("hit in empty NTLB")
	}
	n.Insert(1, 0x5123, 0xabc000, true)
	hpa, w, ok := n.Lookup(1, 0x5fff) // same 4K gPA page
	if !ok || hpa != 0xabc000 || !w {
		t.Fatalf("lookup = %#x writable=%v ok=%v", hpa, w, ok)
	}
	if _, _, ok := n.Lookup(1, 0x6000); ok {
		t.Error("adjacent page should miss")
	}
	if _, _, ok := n.Lookup(2, 0x5123); ok {
		t.Error("cross-VM hit")
	}
	s := n.Stats()
	if s.Lookups != 4 || s.Hits != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestNestedTLBWritableBit(t *testing.T) {
	n := NewNestedTLB(16, 4)
	n.Insert(1, 0x1000, 0x2000, false) // host COW-protected page
	_, w, ok := n.Lookup(1, 0x1000)
	if !ok || w {
		t.Fatalf("writable=%v ok=%v, want read-only hit", w, ok)
	}
	n.Insert(1, 0x1000, 0x2000, true) // after host COW resolution
	_, w, _ = n.Lookup(1, 0x1000)
	if !w {
		t.Error("writable bit not refreshed")
	}
}

func TestNestedTLBInvalidateAndFlush(t *testing.T) {
	n := NewNestedTLB(16, 4)
	n.Insert(1, 0x1000, 0x2000, true)
	n.Insert(1, 0x3000, 0x4000, true)
	n.Insert(2, 0x1000, 0x9000, true)
	n.InvalidateGPA(1, 0x1000)
	if _, _, ok := n.Lookup(1, 0x1000); ok {
		t.Error("survived InvalidateGPA")
	}
	if _, _, ok := n.Lookup(1, 0x3000); !ok {
		t.Error("unrelated entry dropped")
	}
	n.FlushVM(1)
	if _, _, ok := n.Lookup(1, 0x3000); ok {
		t.Error("survived FlushVM")
	}
	if _, _, ok := n.Lookup(2, 0x1000); !ok {
		t.Error("other VM dropped by FlushVM(1)")
	}
	n.FlushAll()
	if _, _, ok := n.Lookup(2, 0x1000); ok {
		t.Error("survived FlushAll")
	}
	n.ResetStats()
	if n.Stats() != (Stats{}) {
		t.Error("ResetStats")
	}
}

// TestPWCCoherenceProperty: lookups never return a pointer that was not the
// most recent insert for that (asid, prefix, level).
func TestPWCCoherenceProperty(t *testing.T) {
	p := New(Config{Entries: [3]int{8, 8, 8}, Ways: 2})
	rng := rand.New(rand.NewSource(11))
	type key struct {
		level int
		tag   uint64
	}
	truth := map[key]uint64{}
	for i := 0; i < 3000; i++ {
		va := uint64(rng.Intn(64)) << 21 // vary level-0..2 indices a little
		level := 1 + rng.Intn(3)
		switch rng.Intn(3) {
		case 0:
			ptr := uint64(rng.Intn(1<<20)) << 12
			p.Insert(1, va, level, ptr, rng.Intn(2) == 0)
			truth[key{level, tagFor(va, level)}] = ptr
		case 1:
			p.InvalidateVA(1, va)
			for l := 1; l <= 3; l++ {
				delete(truth, key{l, tagFor(va, l)})
			}
		case 2:
			ptr, lvl, _, ok := p.Lookup(1, va)
			if !ok {
				continue
			}
			want, live := truth[key{lvl, tagFor(va, lvl)}]
			if !live {
				t.Fatalf("hit on invalidated prefix (va %#x level %d)", va, lvl)
			}
			if ptr != want {
				t.Fatalf("stale pointer %#x, want %#x", ptr, want)
			}
		}
	}
}
