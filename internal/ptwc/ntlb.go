package ptwc

// NestedTLB caches gPA⇒hPA page translations consumed inside 2D page walks
// (paper §II-A: AMD's nested TLB / Intel's EPT cache, [19, 20]). A hit
// removes the up-to-4 host-table references otherwise needed to translate a
// guest-physical pointer during a nested or agile walk.
type NestedTLB struct {
	arr   *pwcArray
	stats Stats
}

// NewNestedTLB builds a nested TLB with the given capacity and
// associativity. Published designs use small structures (16-32 entries).
func NewNestedTLB(entries, ways int) *NestedTLB {
	return &NestedTLB{arr: newPWCArray(entries, ways)}
}

// Lookup probes for the host-physical base of the guest-physical page
// containing gpa. vmid tags entries per virtual machine. writable carries
// the host page table's write permission so write accesses can detect
// host-level copy-on-write protection without a walk.
func (n *NestedTLB) Lookup(vmid uint16, gpa uint64) (hpaBase uint64, writable, ok bool) {
	n.stats.Lookups++
	ptr, writable, ok := n.arr.lookup(vmid, gpa>>12)
	if ok {
		n.stats.Hits++
	}
	return ptr, writable, ok
}

// Insert caches the translation of the 4K guest-physical page containing
// gpa to host-physical base hpaBase with the host write permission.
func (n *NestedTLB) Insert(vmid uint16, gpa, hpaBase uint64, writable bool) {
	n.arr.insert(vmid, gpa>>12, hpaBase, writable)
}

// InvalidateGPA drops the entry for the guest-physical page containing gpa,
// required when the VMM changes the host page table.
func (n *NestedTLB) InvalidateGPA(vmid uint16, gpa uint64) {
	n.arr.invalidate(vmid, gpa>>12)
}

// FlushVM drops all entries of one VM.
func (n *NestedTLB) FlushVM(vmid uint16) { n.arr.flush(vmid, false) }

// FlushAll empties the nested TLB.
func (n *NestedTLB) FlushAll() { n.arr.flush(0, true) }

// Stats returns the accumulated counters.
func (n *NestedTLB) Stats() Stats { return n.stats }

// ResetStats zeroes the counters.
func (n *NestedTLB) ResetStats() { n.stats = Stats{} }

// Reset restores the nested TLB to its post-construction state: array
// emptied with its LRU clock rewound, statistics zeroed.
func (n *NestedTLB) Reset() {
	n.arr.reset()
	n.stats = Stats{}
}
