package tlb

import (
	"math/rand"
	"testing"

	"agilepaging/internal/pagetable"
)

func newSB() *Hierarchy { return NewHierarchy(SandyBridgeConfig()) }

func TestMissThenHit(t *testing.T) {
	h := newSB()
	if _, ok := h.Lookup(1, 0x1234, false); ok {
		t.Fatal("hit in empty TLB")
	}
	h.Insert(1, 0x1000, pagetable.Size4K, 0xabcd000, pagetable.FlagWrite, false)
	r, ok := h.Lookup(1, 0x1234, false)
	if !ok {
		t.Fatal("miss after insert")
	}
	if r.PA != 0xabcd234 {
		t.Errorf("PA = %#x, want 0xabcd234", r.PA)
	}
	if r.Size != pagetable.Size4K || r.Level != 1 {
		t.Errorf("size/level = %v/%d", r.Size, r.Level)
	}
	s := h.Stats()
	if s.Lookups != 2 || s.Misses != 1 || s.L1Hits != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestASIDSeparation(t *testing.T) {
	h := newSB()
	h.Insert(1, 0x1000, pagetable.Size4K, 0x2000, 0, false)
	if _, ok := h.Lookup(2, 0x1000, false); ok {
		t.Error("cross-ASID hit")
	}
	if _, ok := h.Lookup(1, 0x1000, false); !ok {
		t.Error("same-ASID miss")
	}
}

func TestGlobalEntriesCrossASID(t *testing.T) {
	h := newSB()
	h.Insert(1, 0xffff000, pagetable.Size4K, 0x2000, pagetable.FlagGlobal, false)
	if _, ok := h.Lookup(2, 0xffff000, false); !ok {
		t.Error("global entry should hit from any ASID")
	}
	h.FlushASID(2)
	if _, ok := h.Lookup(1, 0xffff000, false); !ok {
		t.Error("global entry should survive FlushASID")
	}
	h.FlushAll()
	if _, ok := h.Lookup(1, 0xffff000, false); ok {
		t.Error("global entry should not survive FlushAll")
	}
}

func TestLargePageHit(t *testing.T) {
	h := newSB()
	h.Insert(1, 0x40000000, pagetable.Size2M, 0x80000000, 0, false)
	r, ok := h.Lookup(1, 0x40000000+0x12345, false)
	if !ok {
		t.Fatal("2M miss")
	}
	if r.PA != 0x80012345 {
		t.Errorf("PA = %#x", r.PA)
	}
	if r.Size != pagetable.Size2M {
		t.Errorf("size = %v", r.Size)
	}
	h.Insert(1, 0x80000000, pagetable.Size1G, 0x100000000, 0, false)
	r, ok = h.Lookup(1, 0x80000000+0x3fffffff&^0x3, false)
	if !ok || r.Size != pagetable.Size1G {
		t.Errorf("1G lookup: ok=%v r=%+v", ok, r)
	}
}

func TestL2RefillsL1(t *testing.T) {
	h := newSB()
	// Fill the 4-way L1D set for vpn class of 0x1000 with conflicting VPNs,
	// then verify the displaced entry hits in L2 and refills L1.
	sets := 64 / 4
	h.Insert(1, 0x1000, pagetable.Size4K, 0x2000, 0, false)
	for i := 1; i <= 4; i++ {
		va := uint64(0x1000) + uint64(i*sets)*4096
		h.Insert(1, va, pagetable.Size4K, 0x3000, 0, false)
	}
	r, ok := h.Lookup(1, 0x1000, false)
	if !ok {
		t.Fatal("expected L2 hit after L1 eviction")
	}
	if r.Level != 2 {
		t.Fatalf("hit level = %d, want 2", r.Level)
	}
	r, ok = h.Lookup(1, 0x1000, false)
	if !ok || r.Level != 1 {
		t.Errorf("after refill: ok=%v level=%d, want L1 hit", ok, r.Level)
	}
}

func TestInstructionSideSeparate(t *testing.T) {
	h := newSB()
	h.Insert(1, 0x1000, pagetable.Size4K, 0x2000, 0, true)
	// I-side insert fills L2 too, so a data lookup hits at L2, not L1.
	r, ok := h.Lookup(1, 0x1000, false)
	if !ok {
		t.Fatal("data lookup should hit unified L2")
	}
	if r.Level != 1+1 {
		t.Errorf("data hit level = %d, want 2", r.Level)
	}
	r, ok = h.Lookup(1, 0x1000, true)
	if !ok || r.Level != 1 {
		t.Errorf("fetch hit: ok=%v level=%d, want L1", ok, r.Level)
	}
}

func TestInvalidatePage(t *testing.T) {
	h := newSB()
	h.Insert(1, 0x1000, pagetable.Size4K, 0x2000, 0, false)
	h.Insert(1, 0x200000, pagetable.Size2M, 0x400000, 0, false)
	h.InvalidatePage(1, 0x1000)
	if _, ok := h.Lookup(1, 0x1000, false); ok {
		t.Error("4K entry survived INVLPG")
	}
	if _, ok := h.Lookup(1, 0x200000, false); !ok {
		t.Error("unrelated 2M entry dropped")
	}
	h.InvalidatePage(1, 0x200000+0x1999)
	if _, ok := h.Lookup(1, 0x200000, false); ok {
		t.Error("2M entry survived INVLPG of interior address")
	}
}

func TestLRUReplacement(t *testing.T) {
	c := newSetAssoc(pagetable.Size4K, 4, 4) // one set, 4 ways
	for i := uint64(0); i < 4; i++ {
		c.insert(1, i*4096, i*4096+0x100000, 0)
	}
	// Touch entries 0..2 so entry 3 is LRU.
	for i := uint64(0); i < 3; i++ {
		if _, _, ok := c.lookup(1, i*4096); !ok {
			t.Fatalf("entry %d missing", i)
		}
	}
	c.insert(1, 5*4096, 0x500000, 0)
	if _, _, ok := c.lookup(1, 3*4096); ok {
		t.Error("LRU entry 3 should have been evicted")
	}
	for i := uint64(0); i < 3; i++ {
		if _, _, ok := c.lookup(1, i*4096); !ok {
			t.Errorf("recently used entry %d evicted", i)
		}
	}
}

func TestInsertRefreshesExisting(t *testing.T) {
	c := newSetAssoc(pagetable.Size4K, 4, 4)
	c.insert(1, 0x1000, 0x2000, 0)
	c.insert(1, 0x1000, 0x9000, pagetable.FlagDirty) // update in place
	if c.occupancy() != 1 {
		t.Fatalf("occupancy = %d after duplicate insert, want 1", c.occupancy())
	}
	pa, flags, ok := c.lookup(1, 0x1000)
	if !ok || pa != 0x9000 || flags&pagetable.FlagDirty == 0 {
		t.Errorf("refreshed entry: pa=%#x flags=%v ok=%v", pa, flags, ok)
	}
}

func TestScaledConfig(t *testing.T) {
	cfg := SandyBridgeConfig().Scaled(4)
	if cfg.L1D4K.Entries != 16 || cfg.L24K.Entries != 128 {
		t.Errorf("scaled config = %+v", cfg)
	}
	// Large-page arrays scale by factor/4: unchanged at factor 4.
	if cfg.L1D2M.Entries != 32 || cfg.L1D1G.Entries != 4 {
		t.Errorf("large-page scaling = %+v / %+v", cfg.L1D2M, cfg.L1D1G)
	}
	cfg8 := SandyBridgeConfig().Scaled(8)
	if cfg8.L1D4K.Entries != 8 || cfg8.L1D2M.Entries != 16 || cfg8.L1D1G.Entries != 2 {
		t.Errorf("factor-8 scaling = %+v", cfg8)
	}
	if got := SandyBridgeConfig().Scaled(1); got != SandyBridgeConfig() {
		t.Error("Scaled(1) should be identity")
	}
	h := NewHierarchy(cfg)
	h.Insert(1, 0, pagetable.Size4K, 0, 0, false)
	if _, ok := h.Lookup(1, 0, false); !ok {
		t.Error("scaled hierarchy broken")
	}
}

func TestAbsentArrayNeverHits(t *testing.T) {
	cfg := Config{L1D4K: ArrayConfig{Entries: 8, Ways: 2}} // everything else absent
	h := NewHierarchy(cfg)
	h.Insert(1, 0x200000, pagetable.Size2M, 0x400000, 0, false)
	if _, ok := h.Lookup(1, 0x200000, false); ok {
		t.Error("hit in absent 2M array")
	}
	h.Insert(1, 0x1000, pagetable.Size4K, 0x2000, 0, false)
	if _, ok := h.Lookup(1, 0x1000, false); !ok {
		t.Error("present 4K array should hit")
	}
}

func TestMissRatioAndReset(t *testing.T) {
	h := newSB()
	h.Insert(1, 0x1000, pagetable.Size4K, 0x2000, 0, false)
	h.Lookup(1, 0x1000, false)
	h.Lookup(1, 0x5000, false)
	if got := h.Stats().MissRatio(); got != 0.5 {
		t.Errorf("MissRatio = %v, want 0.5", got)
	}
	h.ResetStats()
	if h.Stats() != (Stats{}) {
		t.Error("ResetStats did not zero counters")
	}
	if (Stats{}).MissRatio() != 0 {
		t.Error("MissRatio of zero stats should be 0")
	}
}

// TestCoherenceProperty: after any interleaving of inserts/invalidates, a
// lookup never returns a translation that was invalidated after its last
// insert.
func TestCoherenceProperty(t *testing.T) {
	h := newSB()
	rng := rand.New(rand.NewSource(42))
	live := map[uint64]uint64{} // va -> pa of most recent insert, deleted on invalidate
	for i := 0; i < 5000; i++ {
		va := uint64(rng.Intn(256)) * 4096
		switch rng.Intn(3) {
		case 0:
			pa := uint64(rng.Intn(1<<20)) * 4096
			h.Insert(1, va, pagetable.Size4K, pa, 0, false)
			live[va] = pa
		case 1:
			h.InvalidatePage(1, va)
			delete(live, va)
		case 2:
			r, ok := h.Lookup(1, va, false)
			if !ok {
				continue
			}
			want, stillLive := live[va]
			if !stillLive {
				t.Fatalf("lookup(%#x) hit a stale/invalidated entry", va)
			}
			if r.PA != want {
				t.Fatalf("lookup(%#x) = %#x, want %#x", va, r.PA, want)
			}
		}
	}
}

func TestOccupancyAndString(t *testing.T) {
	h := newSB()
	if l1, l2 := h.Occupancy(); l1 != 0 || l2 != 0 {
		t.Errorf("empty occupancy = %d/%d", l1, l2)
	}
	h.Insert(1, 0x1000, pagetable.Size4K, 0x2000, 0, false)
	l1, l2 := h.Occupancy()
	if l1 != 1 || l2 != 1 {
		t.Errorf("occupancy = %d/%d, want 1/1", l1, l2)
	}
	if h.String() == "" {
		t.Error("empty String")
	}
}

// TestScaledNormalizesAbsentArrays pins the Scaled contract for extreme
// factors: an array whose entry count scales to zero must come back as the
// canonical zero ArrayConfig (Ways included, not a stale associativity), and
// surviving arrays keep at least one way. Factor 64 drives every Sandy
// Bridge array through one of the two regimes.
func TestScaledNormalizesAbsentArrays(t *testing.T) {
	c := SandyBridgeConfig().Scaled(64)
	// factor 64 → large-page factor 16.
	want := Config{
		L1D4K: ArrayConfig{Entries: 1, Ways: 1}, // 64/64
		L1D2M: ArrayConfig{Entries: 2, Ways: 2}, // 32/16
		L1D1G: ArrayConfig{},                    // 4/16 → absent
		L1I4K: ArrayConfig{Entries: 2, Ways: 2}, // 128/64
		L1I2M: ArrayConfig{},                    // 8/16 → absent
		L24K:  ArrayConfig{Entries: 8, Ways: 4}, // 512/64
		L22M:  ArrayConfig{},                    // absent stays absent
	}
	if c != want {
		t.Errorf("SandyBridgeConfig().Scaled(64) = %+v, want %+v", c, want)
	}
	// A hierarchy built from the scaled config must treat the zeroed
	// arrays as absent rather than materializing degenerate caches.
	h := NewHierarchy(c)
	if h.d1[pagetable.Size1G] != nil || h.i1[pagetable.Size2M] != nil || h.l2[pagetable.Size2M] != nil {
		t.Error("arrays scaled to zero entries were materialized")
	}
	if _, ok := h.Lookup(1, 1<<30, false); ok {
		t.Error("lookup hit in an empty scaled hierarchy")
	}
}

func TestGenerationCounter(t *testing.T) {
	h := newSB()
	if h.Gen() != 0 {
		t.Fatalf("fresh hierarchy gen = %d, want 0", h.Gen())
	}
	h.Insert(1, 0x1000, pagetable.Size4K, 0x2000, 0, false)
	h.Lookup(1, 0x1000, false)
	h.Lookup(1, 0x9999000, false) // miss
	h.NoteRepeatL1Hit()
	if h.Gen() != 0 {
		t.Errorf("gen = %d after inserts/lookups, want 0 (only invalidations advance it)", h.Gen())
	}
	h.InvalidatePage(1, 0x1000)
	if h.Gen() != 1 {
		t.Errorf("gen = %d after InvalidatePage, want 1", h.Gen())
	}
	h.FlushASID(1)
	if h.Gen() != 2 {
		t.Errorf("gen = %d after FlushASID, want 2", h.Gen())
	}
	h.FlushAll()
	if h.Gen() != 3 {
		t.Errorf("gen = %d after FlushAll, want 3", h.Gen())
	}
}

func TestNoteRepeatL1HitStats(t *testing.T) {
	h := newSB()
	h.Insert(1, 0x1000, pagetable.Size4K, 0x2000, 0, false)
	if _, ok := h.Lookup(1, 0x1000, false); !ok {
		t.Fatal("miss after insert")
	}
	before := h.Stats()
	h.NoteRepeatL1Hit()
	after := h.Stats()
	if after.Lookups != before.Lookups+1 || after.L1Hits != before.L1Hits+1 {
		t.Errorf("NoteRepeatL1Hit: stats %+v -> %+v, want exactly one Lookup and one L1Hit more", before, after)
	}
	if after.Misses != before.Misses || after.L2Hits != before.L2Hits {
		t.Errorf("NoteRepeatL1Hit touched miss/L2 counters: %+v -> %+v", before, after)
	}
	// The memoized entry must still be resident and unchanged afterwards.
	if r, ok := h.Lookup(1, 0x1000, false); !ok || r.Level != 1 {
		t.Errorf("entry not an L1 hit after NoteRepeatL1Hit: ok=%v r=%+v", ok, r)
	}
}
