// Package tlb models the per-core TLB hierarchy of the evaluation machine
// (paper Table III: Intel Sandy Bridge): split L1 instruction/data TLBs with
// separate arrays per page size, backed by a unified L2 TLB. Entries map a
// virtual page directly to a host-physical page — under virtualization the
// cached translation is gVA⇒hPA regardless of technique (paper Table I).
package tlb

import (
	"math/bits"

	"agilepaging/internal/pagetable"
)

// line is one TLB entry.
type line struct {
	valid   bool
	asid    uint16
	global  bool
	vpn     uint64
	paBase  uint64
	flags   pagetable.Entry
	lastUse uint64
}

// setAssoc is a set-associative translation cache with LRU replacement for
// a single page size.
type setAssoc struct {
	size  pagetable.Size
	sets  int
	ways  int
	lines []line // sets*ways, row-major by set
	clock uint64

	// Hot-path indexing state, precomputed at construction: page sizes are
	// powers of two, so the VPN is a shift; set counts usually are too, so
	// the set index is usually a mask (with a modulo fallback otherwise).
	pageShift uint   // log2(size.Bytes())
	setMask   uint64 // sets-1 when sets is a power of two
	setsPow2  bool
}

// newSetAssoc builds a cache with the given total entries and associativity.
// entries is rounded up so that sets = entries/ways >= 1; ways > entries
// degenerates into a fully-associative cache.
func newSetAssoc(size pagetable.Size, entries, ways int) *setAssoc {
	if entries < 1 {
		entries = 1
	}
	if ways < 1 {
		ways = 1
	}
	if ways > entries {
		ways = entries
	}
	sets := entries / ways
	if sets < 1 {
		sets = 1
	}
	c := &setAssoc{
		size:  size,
		sets:  sets,
		ways:  ways,
		lines: make([]line, sets*ways),
	}
	c.pageShift = uint(bits.TrailingZeros64(size.Bytes()))
	if sets&(sets-1) == 0 {
		c.setsPow2 = true
		c.setMask = uint64(sets - 1)
	}
	return c
}

func (c *setAssoc) vpn(va uint64) uint64 {
	return va >> c.pageShift
}

func (c *setAssoc) set(vpn uint64) []line {
	var s int
	if c.setsPow2 {
		s = int(vpn & c.setMask)
	} else {
		s = int(vpn % uint64(c.sets))
	}
	return c.lines[s*c.ways : (s+1)*c.ways]
}

// lookup probes the cache. On hit it refreshes LRU state and returns the
// cached entry.
func (c *setAssoc) lookup(asid uint16, va uint64) (paBase uint64, flags pagetable.Entry, ok bool) {
	c.clock++
	vpn := c.vpn(va)
	set := c.set(vpn)
	for i := range set {
		l := &set[i]
		if l.valid && l.vpn == vpn && (l.global || l.asid == asid) {
			l.lastUse = c.clock
			return l.paBase, l.flags, true
		}
	}
	return 0, 0, false
}

// insert fills the cache, evicting the LRU way of the set if needed.
func (c *setAssoc) insert(asid uint16, va, paBase uint64, flags pagetable.Entry) {
	c.clock++
	vpn := c.vpn(va)
	set := c.set(vpn)
	victim := 0
	for i := range set {
		l := &set[i]
		if l.valid && l.vpn == vpn && (l.global || l.asid == asid) {
			victim = i // refresh existing entry in place
			break
		}
		if !l.valid {
			victim = i
			break
		}
		if l.lastUse < set[victim].lastUse {
			victim = i
		}
	}
	set[victim] = line{
		valid:   true,
		asid:    asid,
		global:  flags&pagetable.FlagGlobal != 0,
		vpn:     vpn,
		paBase:  paBase,
		flags:   flags,
		lastUse: c.clock,
	}
}

// invalidate drops any entry covering va in the given address space.
func (c *setAssoc) invalidate(asid uint16, va uint64) {
	vpn := c.vpn(va)
	set := c.set(vpn)
	for i := range set {
		l := &set[i]
		if l.valid && l.vpn == vpn && (l.global || l.asid == asid) {
			l.valid = false
		}
	}
}

// flush drops entries. If keepGlobal, global entries survive (a CR3 write
// without PGE flush); if asid != flushAllASIDs only that space is dropped.
func (c *setAssoc) flush(asid uint16, all bool, keepGlobal bool) {
	for i := range c.lines {
		l := &c.lines[i]
		if !l.valid {
			continue
		}
		if !all && l.asid != asid {
			continue
		}
		if keepGlobal && l.global {
			continue
		}
		l.valid = false
	}
}

// reset restores the cache to its post-construction state: every line
// invalid and zeroed, the LRU clock at zero. Restoring the clock (not just
// validity) makes replacement decisions after a reset replay exactly as on
// a fresh cache.
func (c *setAssoc) reset() {
	clear(c.lines)
	c.clock = 0
}

// entries reports the cache capacity.
func (c *setAssoc) entries() int { return c.sets * c.ways }

// occupancy reports the number of valid lines.
func (c *setAssoc) occupancy() int {
	n := 0
	for i := range c.lines {
		if c.lines[i].valid {
			n++
		}
	}
	return n
}
