package tlb

import (
	"testing"

	"agilepaging/internal/pagetable"
)

// benchHit defeats dead-code elimination.
var benchHit bool

// BenchmarkTLBLookup measures an L1 hit — the single most executed
// operation of the whole simulator (once per simulated access).
func BenchmarkTLBLookup(b *testing.B) {
	h := NewHierarchy(SandyBridgeConfig())
	va := uint64(0x7f00_0000_1000)
	h.Insert(1, va, pagetable.Size4K, 0xabc000, pagetable.FlagPresent|pagetable.FlagWrite, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, ok := h.Lookup(1, va|0x234, false)
		benchHit = ok
	}
	if !benchHit {
		b.Fatal("lookup missed")
	}
}

// BenchmarkTLBLookupMiss measures a full-hierarchy miss (every array
// probed, no hit) — the fixed probe cost preceding each page walk.
func BenchmarkTLBLookupMiss(b *testing.B) {
	h := NewHierarchy(SandyBridgeConfig())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, ok := h.Lookup(1, uint64(i)<<12, false)
		benchHit = ok
	}
}

// BenchmarkTLBInsert measures the post-walk fill path (L1 + L2).
func BenchmarkTLBInsert(b *testing.B) {
	h := NewHierarchy(SandyBridgeConfig())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		va := uint64(i&1023) << 12
		h.Insert(1, va, pagetable.Size4K, va|1<<30, pagetable.FlagPresent, false)
	}
}

// BenchmarkTLBInvalidatePage measures the shootdown path, which PR 2 made
// allocation-free.
func BenchmarkTLBInvalidatePage(b *testing.B) {
	h := NewHierarchy(SandyBridgeConfig())
	va := uint64(0x7f00_0000_1000)
	h.Insert(1, va, pagetable.Size4K, 0xabc000, pagetable.FlagPresent, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.InvalidatePage(1, va)
	}
}
