package tlb

import (
	"fmt"

	"agilepaging/internal/pagetable"
)

// ArrayConfig sizes one TLB array. Entries <= 0 means the array is absent
// from the hierarchy (it is never probed and never hits); an absent array is
// normalized to the zero ArrayConfig, Ways included.
type ArrayConfig struct {
	Entries int
	Ways    int // Ways >= Entries means fully associative
}

// Config describes the whole per-core hierarchy. The zero value is not
// useful; start from SandyBridgeConfig.
type Config struct {
	L1D4K ArrayConfig
	L1D2M ArrayConfig
	L1D1G ArrayConfig
	L1I4K ArrayConfig
	L1I2M ArrayConfig
	L24K  ArrayConfig // unified second level, 4K pages
	L22M  ArrayConfig // unified second level, 2M pages (0 = absent, as on Sandy Bridge)
}

// SandyBridgeConfig reproduces the per-core TLB geometry of the paper's
// evaluation machine (Table III, dual-socket Xeon E5-2430).
func SandyBridgeConfig() Config {
	return Config{
		L1D4K: ArrayConfig{Entries: 64, Ways: 4},
		L1D2M: ArrayConfig{Entries: 32, Ways: 4},
		L1D1G: ArrayConfig{Entries: 4, Ways: 4}, // fully associative
		L1I4K: ArrayConfig{Entries: 128, Ways: 4},
		L1I2M: ArrayConfig{Entries: 8, Ways: 8}, // fully associative
		L24K:  ArrayConfig{Entries: 512, Ways: 4},
		L22M:  ArrayConfig{}, // Sandy Bridge's L2 TLB holds 4K entries only
	}
}

// Scaled returns the configuration shrunk for scaled-down footprints,
// keeping associativity. Workload footprints in this reproduction are
// scaled down from the paper's multi-GB originals; shrinking the 4K TLB
// arrays by the same factor preserves the 4K miss ratios that drive the
// results (substitution #2 in DESIGN.md). Large-page arrays are already
// tiny (4-32 entries), so they shrink by factor/4 to keep the relation
// between 2M TLB reach and footprint in the published regime.
func (c Config) Scaled(factor int) Config {
	if factor <= 1 {
		return c
	}
	s := func(a ArrayConfig, f int) ArrayConfig {
		a.Entries /= f
		if a.Entries <= 0 {
			// Scaled out of existence: normalize to the canonical
			// "array absent" form rather than keeping a stale Ways.
			return ArrayConfig{}
		}
		if a.Entries < a.Ways {
			a.Ways = a.Entries
		}
		if a.Ways < 1 {
			a.Ways = 1
		}
		return a
	}
	large := factor / 4
	if large < 1 {
		large = 1
	}
	return Config{
		L1D4K: s(c.L1D4K, factor), L1D2M: s(c.L1D2M, large), L1D1G: s(c.L1D1G, large),
		L1I4K: s(c.L1I4K, factor), L1I2M: s(c.L1I2M, large),
		L24K: s(c.L24K, factor), L22M: s(c.L22M, large),
	}
}

// Stats counts hierarchy events.
type Stats struct {
	Lookups  uint64
	L1Hits   uint64
	L2Hits   uint64
	Misses   uint64
	Flushes  uint64
	Invalids uint64
}

// MissRatio returns Misses/Lookups.
func (s Stats) MissRatio() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Lookups)
}

// Result is a successful TLB translation.
type Result struct {
	PA    uint64 // full translated physical address
	Size  pagetable.Size
	Flags pagetable.Entry
	Level int // 1 = L1 hit, 2 = L2 hit
}

// probe pairs an array with its page size, so Lookup walks a precomputed
// dense list of present arrays instead of re-testing nil slots per access.
type probe struct {
	c    *setAssoc
	size pagetable.Size
}

// Hierarchy is a per-core two-level TLB.
type Hierarchy struct {
	cfg   Config
	d1    [3]*setAssoc // indexed by pagetable.Size
	i1    [3]*setAssoc
	l2    [3]*setAssoc
	stats Stats

	// Precomputed hot-path views (built once in NewHierarchy): per-side
	// probe order and the flat list of every present array for the
	// invalidate/flush broadcasts. These remove the per-call slice-literal
	// allocations and nil re-checks from the access path.
	d1probe []probe
	i1probe []probe
	l2probe []probe
	all     []*setAssoc

	// gen is the invalidation generation: it advances on every
	// InvalidatePage/FlushASID/FlushAll, never on lookups or inserts. A
	// caller-held memo of a positive lookup tagged with the generation it
	// was made at is therefore still resident (and unchanged) as long as
	// the generation matches and the caller made no intervening lookups —
	// the contract behind the per-core L0 translation memo (see
	// DESIGN.md "Performance engineering").
	gen uint64
}

// NewHierarchy builds the hierarchy from cfg. Arrays with zero entries are
// absent and never hit.
func NewHierarchy(cfg Config) *Hierarchy {
	mk := func(size pagetable.Size, a ArrayConfig) *setAssoc {
		if a.Entries <= 0 {
			return nil
		}
		return newSetAssoc(size, a.Entries, a.Ways)
	}
	h := &Hierarchy{
		cfg: cfg,
		d1: [3]*setAssoc{
			pagetable.Size4K: mk(pagetable.Size4K, cfg.L1D4K),
			pagetable.Size2M: mk(pagetable.Size2M, cfg.L1D2M),
			pagetable.Size1G: mk(pagetable.Size1G, cfg.L1D1G),
		},
		i1: [3]*setAssoc{
			pagetable.Size4K: mk(pagetable.Size4K, cfg.L1I4K),
			pagetable.Size2M: mk(pagetable.Size2M, cfg.L1I2M),
		},
		l2: [3]*setAssoc{
			pagetable.Size4K: mk(pagetable.Size4K, cfg.L24K),
			pagetable.Size2M: mk(pagetable.Size2M, cfg.L22M),
		},
	}
	probes := func(group *[3]*setAssoc) []probe {
		var ps []probe
		for sz, c := range group {
			if c != nil {
				ps = append(ps, probe{c: c, size: pagetable.Size(sz)})
				h.all = append(h.all, c)
			}
		}
		return ps
	}
	h.d1probe = probes(&h.d1)
	h.i1probe = probes(&h.i1)
	h.l2probe = probes(&h.l2)
	return h
}

// Stats returns a copy of the accumulated counters.
func (h *Hierarchy) Stats() Stats { return h.stats }

// Gen returns the invalidation generation. It advances on every
// InvalidatePage, FlushASID, and FlushAll — any operation that can remove
// or narrow a cached translation — and never on lookups or inserts.
func (h *Hierarchy) Gen() uint64 { return h.gen }

// NoteRepeatL1Hit accounts an L1 hit served from a caller-held memo of the
// immediately-preceding successful lookup on this hierarchy. It performs
// exactly the statistics updates a Lookup L1 hit would. The LRU touch is
// deliberately skipped: the memoized entry was the hierarchy's most recent
// lookup or insert, so it is already most-recent in its set, and per-array
// clocks only order entries relative to one another — skipping uniform
// clock advances cannot change any future victim choice.
func (h *Hierarchy) NoteRepeatL1Hit() {
	h.stats.Lookups++
	h.stats.L1Hits++
}

// ResetStats zeroes the counters without touching cache contents.
func (h *Hierarchy) ResetStats() { h.stats = Stats{} }

// Reset restores the hierarchy to its post-construction state: every array
// emptied with its LRU clock rewound, statistics zeroed. The invalidation
// generation advances (it is monotonic for the hierarchy's lifetime), so
// any caller-held memo tagged with an older generation is invalid by
// construction — exactly as after a FlushAll.
func (h *Hierarchy) Reset() {
	for _, c := range h.all {
		c.reset()
	}
	h.stats = Stats{}
	h.gen++
}

// Lookup probes the hierarchy for va in address space asid. fetch selects
// the instruction side. An L2 hit refills the appropriate L1 array.
func (h *Hierarchy) Lookup(asid uint16, va uint64, fetch bool) (Result, bool) {
	h.stats.Lookups++
	l1, l1probe := &h.d1, h.d1probe
	if fetch {
		l1, l1probe = &h.i1, h.i1probe
	}
	for _, p := range l1probe {
		if pa, flags, ok := p.c.lookup(asid, va); ok {
			h.stats.L1Hits++
			return Result{PA: pa | va&p.size.Mask(), Size: p.size, Flags: flags, Level: 1}, true
		}
	}
	for _, p := range h.l2probe {
		if pa, flags, ok := p.c.lookup(asid, va); ok {
			h.stats.L2Hits++
			if refill := l1[p.size]; refill != nil {
				refill.insert(asid, pagetable.PageBase(va, p.size), pa, flags)
			}
			return Result{PA: pa | va&p.size.Mask(), Size: p.size, Flags: flags, Level: 2}, true
		}
	}
	h.stats.Misses++
	return Result{}, false
}

// Insert fills the translation for va into the L1 (and L2 when present)
// arrays for its page size, as a hardware walker does after a walk.
func (h *Hierarchy) Insert(asid uint16, va uint64, size pagetable.Size, paBase uint64, flags pagetable.Entry, fetch bool) {
	base := pagetable.PageBase(va, size)
	l1 := &h.d1
	if fetch {
		l1 = &h.i1
	}
	if c := l1[size]; c != nil {
		c.insert(asid, base, paBase, flags)
	}
	if c := h.l2[size]; c != nil {
		c.insert(asid, base, paBase, flags)
	}
}

// InvalidatePage drops translations covering va for asid in every array
// (all page sizes, both L1 sides and L2), modeling INVLPG.
func (h *Hierarchy) InvalidatePage(asid uint16, va uint64) {
	h.stats.Invalids++
	h.gen++
	for _, c := range h.all {
		c.invalidate(asid, va)
	}
}

// FlushASID drops all non-global translations belonging to asid, modeling a
// CR3 write with PGE enabled.
func (h *Hierarchy) FlushASID(asid uint16) {
	h.stats.Flushes++
	h.gen++
	for _, c := range h.all {
		c.flush(asid, false, true)
	}
}

// FlushAll drops every translation including globals.
func (h *Hierarchy) FlushAll() {
	h.stats.Flushes++
	h.gen++
	for _, c := range h.all {
		c.flush(0, true, false)
	}
}

// Occupancy reports valid entries per level for debugging.
func (h *Hierarchy) Occupancy() (l1, l2 int) {
	for _, c := range h.d1 {
		if c != nil {
			l1 += c.occupancy()
		}
	}
	for _, c := range h.i1 {
		if c != nil {
			l1 += c.occupancy()
		}
	}
	for _, c := range h.l2 {
		if c != nil {
			l2 += c.occupancy()
		}
	}
	return l1, l2
}

// String summarizes the configuration.
func (h *Hierarchy) String() string {
	return fmt.Sprintf("TLB{L1D 4K:%d 2M:%d 1G:%d, L1I 4K:%d 2M:%d, L2 4K:%d 2M:%d}",
		h.cfg.L1D4K.Entries, h.cfg.L1D2M.Entries, h.cfg.L1D1G.Entries,
		h.cfg.L1I4K.Entries, h.cfg.L1I2M.Entries, h.cfg.L24K.Entries, h.cfg.L22M.Entries)
}
