package repcache

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"agilepaging/internal/cpu"
	"agilepaging/internal/pagetable"
	"agilepaging/internal/workload"
)

// sampleReport builds a report with enough distinct state to catch a field
// that fails to round-trip. IdealCycles deliberately exceeds 2^53 — the
// precision cliff a float64 (JSON) encoding would fall off.
func sampleReport(i int) cpu.Report {
	var rep cpu.Report
	rep.Workload = fmt.Sprintf("sample-%d", i)
	rep.PageSize = pagetable.Size4K
	rep.Machine.Accesses = uint64(1_000_000 + i)
	rep.Machine.TLBMisses = uint64(5_000 + i)
	rep.IdealCycles = (1 << 54) + uint64(i)
	rep.WalkCycles = uint64(77_777 + i)
	rep.VMMCycles = uint64(3_333 + i)
	rep.RefsP50 = 4
	rep.RefsP95 = 24
	rep.RefsMax = 35 + i
	return rep
}

func sampleConfig() cpu.Config {
	return cpu.Config{Technique: 1, PageSize: pagetable.Size4K, MemBytes: 1 << 30}
}

func sampleProfile() workload.Profile {
	return workload.Profile{Name: "t", FootprintBytes: 1 << 24, Processes: 1, Threads: 1}
}

// reset restores pristine default cache state for a test and registers the
// same restoration as cleanup so tests never leak state into each other.
func reset(t *testing.T) {
	t.Helper()
	restore := func() {
		Reset()
		SetBudget(DefaultBudgetBytes)
		SetDir("")
	}
	restore()
	t.Cleanup(restore)
}

func TestKeyForDistinguishesInputs(t *testing.T) {
	cfg, prof := sampleConfig(), sampleProfile()
	base := KeyFor(cfg, prof, 1000, 500, 42)

	perturb := map[string]string{}
	add := func(name, key string) {
		if key == base {
			t.Errorf("%s: key did not change", name)
		}
		if prev, ok := perturb[key]; ok {
			t.Errorf("%s collides with %s", name, prev)
		}
		perturb[key] = name
	}

	c := cfg
	c.Technique = 2
	add("technique", KeyFor(c, prof, 1000, 500, 42))
	c = cfg
	c.PageSize = pagetable.Size2M
	add("page size", KeyFor(c, prof, 1000, 500, 42))
	c = cfg
	c.HardwareAD = !c.HardwareAD
	add("hardware A/D", KeyFor(c, prof, 1000, 500, 42))
	c = cfg
	c.TrapCosts.Cycles[0] += 100
	add("trap cost", KeyFor(c, prof, 1000, 500, 42))
	p := prof
	p.ZipfS = 1.25
	add("profile zipf", KeyFor(cfg, p, 1000, 500, 42))
	p = prof
	p.Name = "other"
	add("profile name", KeyFor(cfg, p, 1000, 500, 42))
	add("accesses", KeyFor(cfg, prof, 2000, 500, 42))
	add("warmup", KeyFor(cfg, prof, 1000, 0, 42))
	add("seed", KeyFor(cfg, prof, 1000, 500, 43))
}

func TestKeyForNormalizes(t *testing.T) {
	cfg, prof := sampleConfig(), sampleProfile()
	base := KeyFor(cfg, prof, 1000, 500, 42)

	// Zero Cores/Processes/Threads normalize to 1: the machines and streams
	// built from either form are identical, so the cells must share a key.
	c := cfg
	c.Cores = 0
	cz := cfg
	cz.Cores = 1
	if KeyFor(c, prof, 1000, 500, 42) != KeyFor(cz, prof, 1000, 500, 42) {
		t.Error("Cores 0 and 1 should share a key")
	}
	p := prof
	p.Processes, p.Threads = 0, 0
	if KeyFor(cfg, p, 1000, 500, 42) != base {
		t.Error("Processes/Threads 0 and 1 should share a key")
	}
}

func TestDoHitMissStats(t *testing.T) {
	reset(t)
	var computes atomic.Int64
	compute := func() (cpu.Report, error) {
		computes.Add(1)
		return sampleReport(1), nil
	}

	first, err := Do("k1", compute)
	if err != nil {
		t.Fatal(err)
	}
	second, err := Do("k1", compute)
	if err != nil {
		t.Fatal(err)
	}
	if n := computes.Load(); n != 1 {
		t.Fatalf("compute ran %d times, want 1", n)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatal("cached report differs from computed report")
	}
	if _, err := Do("k2", compute); err != nil {
		t.Fatal(err)
	}
	hits, misses, deduped := Stats()
	if hits != 1 || misses != 2 || deduped != 0 {
		t.Fatalf("stats = %d hits / %d misses / %d deduped, want 1/2/0", hits, misses, deduped)
	}
	if info := Info(); info.Reports != 2 || info.Bytes <= 0 {
		t.Fatalf("footprint = %d reports / %d bytes", info.Reports, info.Bytes)
	}
}

func TestDoErrorNotCached(t *testing.T) {
	reset(t)
	fail := errors.New("boom")
	var computes atomic.Int64
	_, err := Do("k", func() (cpu.Report, error) {
		computes.Add(1)
		return cpu.Report{}, fail
	})
	if !errors.Is(err, fail) {
		t.Fatalf("err = %v, want %v", err, fail)
	}
	rep, err := Do("k", func() (cpu.Report, error) {
		computes.Add(1)
		return sampleReport(7), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep != sampleReport(7) {
		t.Fatal("retry after error returned wrong report")
	}
	if n := computes.Load(); n != 2 {
		t.Fatalf("compute ran %d times, want 2 (error must not be cached)", n)
	}
}

func TestBudgetZeroDisables(t *testing.T) {
	reset(t)
	SetBudget(0)
	var computes atomic.Int64
	for i := 0; i < 3; i++ {
		if _, err := Do("k", func() (cpu.Report, error) {
			computes.Add(1)
			return sampleReport(0), nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if n := computes.Load(); n != 3 {
		t.Fatalf("compute ran %d times with cache disabled, want 3", n)
	}
	if info := Info(); info.Reports != 0 || info.Hits != 0 {
		t.Fatalf("disabled cache stored %d reports, %d hits", info.Reports, info.Hits)
	}
}

func TestEvictionLRU(t *testing.T) {
	reset(t)
	perEntry := reportBaseBytes + entryOverhead + 64 // generous per-entry estimate
	SetBudget(3 * perEntry)

	store := func(key string, i int) {
		t.Helper()
		if _, err := Do(key, func() (cpu.Report, error) { return sampleReport(i), nil }); err != nil {
			t.Fatal(err)
		}
	}
	store("a", 1)
	store("b", 2)
	store("c", 3)
	store("a", 1) // touch a: b is now least recently used
	store("d", 4) // must evict b
	var computes atomic.Int64
	store("d", 4)
	if _, err := Do("b", func() (cpu.Report, error) {
		computes.Add(1)
		return sampleReport(2), nil
	}); err != nil {
		t.Fatal(err)
	}
	if computes.Load() != 1 {
		t.Fatal("b should have been evicted as LRU and recomputed")
	}
	if info := Info(); info.Bytes > 3*perEntry {
		t.Fatalf("cache holds %d bytes over budget %d", info.Bytes, 3*perEntry)
	}
}

func TestResetClearsEverything(t *testing.T) {
	reset(t)
	if _, err := Do("k", func() (cpu.Report, error) { return sampleReport(0), nil }); err != nil {
		t.Fatal(err)
	}
	Reset()
	if info := Info(); info != (Snapshot{}) {
		t.Fatalf("after Reset, Info() = %+v, want zero", info)
	}
	var computes atomic.Int64
	if _, err := Do("k", func() (cpu.Report, error) {
		computes.Add(1)
		return sampleReport(0), nil
	}); err != nil {
		t.Fatal(err)
	}
	if computes.Load() != 1 {
		t.Fatal("Reset did not drop the stored report")
	}
}

// TestConcurrentSingleflight is the singleflight contract under -race: many
// goroutines asking for the same small key set run exactly one simulation
// per key and all observe identical reports.
func TestConcurrentSingleflight(t *testing.T) {
	reset(t)
	const goroutines, keys = 32, 4
	var computes [keys]atomic.Int64
	var wg sync.WaitGroup
	results := make([][keys]cpu.Report, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := 0; k < keys; k++ {
				rep, err := Do(fmt.Sprintf("key-%d", k), func() (cpu.Report, error) {
					computes[k].Add(1)
					return sampleReport(k), nil
				})
				if err != nil {
					t.Error(err)
					return
				}
				results[g][k] = rep
			}
		}(g)
	}
	wg.Wait()
	for k := 0; k < keys; k++ {
		if n := computes[k].Load(); n != 1 {
			t.Errorf("key %d computed %d times, want 1", k, n)
		}
		for g := 0; g < goroutines; g++ {
			if results[g][k] != sampleReport(k) {
				t.Errorf("goroutine %d key %d got wrong report", g, k)
			}
		}
	}
	info := Info()
	if info.Misses != keys {
		t.Errorf("misses = %d, want %d", info.Misses, keys)
	}
	if info.Hits+info.Deduped != goroutines*keys-keys {
		t.Errorf("hits+deduped = %d, want %d", info.Hits+info.Deduped, goroutines*keys-keys)
	}
}
