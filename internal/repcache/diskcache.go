package repcache

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"

	"agilepaging/internal/cpu"
)

// Persistent on-disk report cache.
//
// Opt-in via SetDir (the CLIs' -report-cache-dir flag): reports are written
// to <dir>/report-<key>.apr after simulation and read back on later runs,
// so a repeated paperbench/agilesim invocation skips simulation entirely.
// The filename is the cell's content key (KeyFor), which already covers
// every simulation input, so a parameter change simply misses; nothing is
// ever reused across keys.
//
// Files are validated defensively, following the stream cache's discipline:
// magic, version, and schema checks, a CRC-32C over the entire payload, and
// a full gob decode before anything is returned. Any mismatch — truncation,
// bit rot, a stale or hostile file — silently falls back to re-simulation
// (removing the bad file) and never panics: a corrupt cache must cost one
// simulation, not a crash.
//
// The payload is gob, not JSON: Report counters are uint64 cycle totals
// that exceed 2^53 on long runs, and the round trip must be exact for the
// cache to preserve bit-identity. gob, however, silently zero-fills fields
// absent from the wire — a file written before Report gained a field would
// decode "successfully" into a wrong report. The header therefore embeds a
// fingerprint of Report's reflected structure (reportSchema); adding,
// removing, retyping, or reordering fields changes it and stale files
// regenerate instead of misdecoding.

// reportFileMagic heads every cache file; it keeps utterly foreign files
// from even reaching the parser.
var reportFileMagic = [8]byte{'A', 'G', 'P', 'R', 'E', 'P', 'T', '1'}

// reportFileVersion identifies the container layout below. The Report
// struct itself is covered by the schema fingerprint, not this.
const reportFileVersion = 1

// maxReportFileBytes caps how much of a cache file is read and decoded. A
// genuine report file is well under a kilobyte; the cap keeps a hostile or
// misplaced multi-gigabyte file from becoming an allocation bomb.
const maxReportFileBytes = 1 << 20

// reportSchema fingerprints cpu.Report's reflected structure: every field's
// name and full type, recursively, in declaration order.
var reportSchema = schemaOf(reflect.TypeOf(cpu.Report{}))

func schemaOf(t reflect.Type) string {
	var b bytes.Buffer
	writeSchema(&b, t)
	return b.String()
}

func writeSchema(b *bytes.Buffer, t reflect.Type) {
	switch t.Kind() {
	case reflect.Struct:
		fmt.Fprintf(b, "struct{")
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			fmt.Fprintf(b, "%s ", f.Name)
			writeSchema(b, f.Type)
			b.WriteByte(';')
		}
		b.WriteByte('}')
	case reflect.Array:
		fmt.Fprintf(b, "[%d]", t.Len())
		writeSchema(b, t.Elem())
	case reflect.Slice:
		b.WriteString("[]")
		writeSchema(b, t.Elem())
	default:
		b.WriteString(t.Kind().String())
	}
}

// encodeReportFile serializes one report:
//
//	magic[8] | u32 version | u32 schemaLen | schema | u32 gobLen | gob |
//	u32 CRC-32C of everything before it
func encodeReportFile(rep cpu.Report) ([]byte, error) {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(rep); err != nil {
		return nil, err
	}
	buf := make([]byte, 0, 8+4+4+len(reportSchema)+4+payload.Len()+4)
	buf = append(buf, reportFileMagic[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, reportFileVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(reportSchema)))
	buf = append(buf, reportSchema...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(payload.Len()))
	buf = append(buf, payload.Bytes()...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, crcTable))
	return buf, nil
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// decodeReportFile parses and fully validates a cache file. Every byte is
// covered by the checksum, the schema fingerprint must match this binary's
// Report exactly, and the gob payload must decode to precisely its recorded
// length — so a report accepted here is bit-identical to the one written.
func decodeReportFile(data []byte) (cpu.Report, error) {
	var rep cpu.Report
	const fixed = 8 + 4 + 4
	if len(data) > maxReportFileBytes {
		return rep, fmt.Errorf("oversized file (%d bytes)", len(data))
	}
	if len(data) < fixed+4+4 {
		return rep, fmt.Errorf("truncated header (%d bytes)", len(data))
	}
	if [8]byte(data[:8]) != reportFileMagic {
		return rep, fmt.Errorf("bad magic")
	}
	body, sum := data[:len(data)-4], binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.Checksum(body, crcTable) != sum {
		return rep, fmt.Errorf("checksum mismatch")
	}
	if version := binary.LittleEndian.Uint32(data[8:]); version != reportFileVersion {
		return rep, fmt.Errorf("file version %d, want %d", version, reportFileVersion)
	}
	schemaLen := int(binary.LittleEndian.Uint32(data[12:]))
	if schemaLen < 0 || fixed+schemaLen+4 > len(body) {
		return rep, fmt.Errorf("truncated schema")
	}
	if string(data[fixed:fixed+schemaLen]) != reportSchema {
		return rep, fmt.Errorf("report schema mismatch")
	}
	off := fixed + schemaLen
	gobLen := int(binary.LittleEndian.Uint32(data[off:]))
	off += 4
	if gobLen < 0 || off+gobLen != len(body) {
		return rep, fmt.Errorf("payload length %d does not match file", gobLen)
	}
	dec := gob.NewDecoder(bytes.NewReader(data[off : off+gobLen]))
	if err := dec.Decode(&rep); err != nil {
		return rep, fmt.Errorf("gob: %w", err)
	}
	return rep, nil
}

// reportFileName returns the file name for a cell key (already a hex
// content hash from KeyFor).
func reportFileName(key string) string {
	return fmt.Sprintf("report-%s.apr", key)
}

// loadReportFromDisk tries to satisfy a cell from the disk cache. On any
// validation failure the stale file is removed so the re-simulated report
// replaces it.
func loadReportFromDisk(dir, key string) (cpu.Report, bool) {
	path := filepath.Join(dir, reportFileName(key))
	if fi, err := os.Stat(path); err != nil || fi.Size() > maxReportFileBytes {
		// Size-check before reading so an oversized (hostile or misplaced)
		// file is never loaded into memory; decode re-checks the cap for
		// callers that hand bytes in directly.
		return cpu.Report{}, false
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return cpu.Report{}, false
	}
	rep, err := decodeReportFile(data)
	if err != nil {
		os.Remove(path)
		return cpu.Report{}, false
	}
	return rep, true
}

// writeReportToDisk persists a report atomically (temp file + rename, so a
// concurrent or killed writer can never leave a torn file at the final
// path). Failures are reported to the caller for stats but are otherwise
// silent: the disk cache is an optimization, not a dependency.
func writeReportToDisk(dir, key string, rep cpu.Report) error {
	data, err := encodeReportFile(rep)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	name := reportFileName(key)
	tmp, err := os.CreateTemp(dir, name+".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, name)); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}
