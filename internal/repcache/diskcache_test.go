package repcache

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"

	"agilepaging/internal/cpu"
)

func TestReportFileRoundTrip(t *testing.T) {
	rep := sampleReport(3)
	data, err := encodeReportFile(rep)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeReportFile(data)
	if err != nil {
		t.Fatal(err)
	}
	if got != rep {
		t.Fatalf("round trip changed report:\n got %+v\nwant %+v", got, rep)
	}
}

func TestDiskTierHitAcrossReset(t *testing.T) {
	reset(t)
	dir := t.TempDir()
	SetDir(dir)

	rep := sampleReport(9)
	var computes atomic.Int64
	compute := func() (cpu.Report, error) {
		computes.Add(1)
		return rep, nil
	}
	if _, err := Do("cell", compute); err != nil {
		t.Fatal(err)
	}
	// Reset drops the in-memory tier but not the files — this models a new
	// process pointed at the same -report-cache-dir.
	Reset()
	got, err := Do("cell", compute)
	if err != nil {
		t.Fatal(err)
	}
	if n := computes.Load(); n != 1 {
		t.Fatalf("compute ran %d times, want 1 (second run must load from disk)", n)
	}
	if got != rep {
		t.Fatal("disk-loaded report differs from original")
	}
	// Reset rewound the counters with the in-memory tier, so only the
	// post-reset disk hit is visible.
	info := Info()
	if info.DiskHits != 1 || info.DiskMisses != 0 {
		t.Fatalf("disk stats = %d hits / %d misses, want 1/0", info.DiskHits, info.DiskMisses)
	}
}

// corruptions enumerate the hostile-input cases: each must make the load
// miss, remove the bad file, and regenerate it by re-simulation.
func TestDiskTierHostileFiles(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(data []byte) []byte
	}{
		{"truncated", func(d []byte) []byte { return d[:len(d)/2] }},
		{"empty", func(d []byte) []byte { return nil }},
		{"bad magic", func(d []byte) []byte { d[0] ^= 0xFF; return d }},
		{"flipped payload bit", func(d []byte) []byte { d[len(d)/2] ^= 0x01; return d }},
		{"stale container version", func(d []byte) []byte {
			// Rewrite the version field and re-seal the CRC so only the
			// version check can reject it.
			binary.LittleEndian.PutUint32(d[8:], reportFileVersion+1)
			return resealCRC(d)
		}},
		{"schema mismatch", func(d []byte) []byte {
			// Flip a schema byte and re-seal: models a file written by a
			// binary whose Report struct differed.
			d[8+4+4] ^= 0x01
			return resealCRC(d)
		}},
		{"trailing garbage", func(d []byte) []byte {
			return append(d, 0xAA, 0xBB)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			reset(t)
			dir := t.TempDir()
			SetDir(dir)
			rep := sampleReport(5)
			if _, err := Do("cell", func() (cpu.Report, error) { return rep, nil }); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(dir, reportFileName("cell"))
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, tc.corrupt(append([]byte(nil), data...)), 0o644); err != nil {
				t.Fatal(err)
			}

			Reset()
			var computes atomic.Int64
			got, err := Do("cell", func() (cpu.Report, error) {
				computes.Add(1)
				return rep, nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if computes.Load() != 1 {
				t.Fatal("corrupt file was accepted instead of re-simulating")
			}
			if got != rep {
				t.Fatal("regenerated report differs")
			}
			// The corrupt file must have been replaced by a valid one.
			fresh, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("cache file not regenerated: %v", err)
			}
			if _, err := decodeReportFile(fresh); err != nil {
				t.Fatalf("regenerated file invalid: %v", err)
			}
		})
	}
}

// resealCRC recomputes the trailing checksum after a deliberate header
// mutation, so the test exercises the semantic check rather than the CRC.
func resealCRC(d []byte) []byte {
	body := d[:len(d)-4]
	binary.LittleEndian.PutUint32(d[len(d)-4:], crc32.Checksum(body, crcTable))
	return d
}

func TestOversizedFileRejected(t *testing.T) {
	reset(t)
	dir := t.TempDir()
	SetDir(dir)
	path := filepath.Join(dir, reportFileName("cell"))
	if err := os.WriteFile(path, make([]byte, maxReportFileBytes+1), 0o644); err != nil {
		t.Fatal(err)
	}
	var computes atomic.Int64
	if _, err := Do("cell", func() (cpu.Report, error) {
		computes.Add(1)
		return sampleReport(0), nil
	}); err != nil {
		t.Fatal(err)
	}
	if computes.Load() != 1 {
		t.Fatal("oversized file should be ignored")
	}
}

func TestDiskWriteFailureCounted(t *testing.T) {
	reset(t)
	dir := filepath.Join(t.TempDir(), "blocked")
	// A regular file where the cache directory should be makes MkdirAll
	// fail, exercising the write-error path without permissions games.
	if err := os.WriteFile(dir, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	SetDir(dir)
	rep, err := Do("cell", func() (cpu.Report, error) { return sampleReport(2), nil })
	if err != nil {
		t.Fatal(err)
	}
	if rep != sampleReport(2) {
		t.Fatal("write failure must not affect the returned report")
	}
	if info := Info(); info.DiskErrors != 1 {
		t.Fatalf("DiskErrors = %d, want 1", info.DiskErrors)
	}
}

// FuzzReportFileDecode asserts the decoder never panics and never accepts
// bytes that fail to reproduce an exact report: any input it does accept
// must re-encode to a decode-equal value.
func FuzzReportFileDecode(f *testing.F) {
	valid, err := encodeReportFile(sampleReport(1))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte{})
	f.Add(valid[:20])
	truncated := append([]byte(nil), valid...)
	f.Add(truncated[:len(truncated)-5])
	flipped := append([]byte(nil), valid...)
	flipped[12] ^= 0xFF
	f.Add(flipped)
	f.Fuzz(func(t *testing.T, data []byte) {
		rep, err := decodeReportFile(data)
		if err != nil {
			return
		}
		reenc, err := encodeReportFile(rep)
		if err != nil {
			t.Fatalf("accepted report failed to re-encode: %v", err)
		}
		back, err := decodeReportFile(reenc)
		if err != nil || back != rep {
			t.Fatalf("accepted report not stable under round trip: %v", err)
		}
	})
}
