// Package repcache memoizes whole simulation cells: it maps the canonical
// content key of one run — (machine configuration, workload, run length,
// warmup split, seed) — to the cpu.Report that run produces.
//
// The paper's evaluation is a grid of such cells, and the drivers revisit
// the same cells constantly: every Figure 5 agile/4K cell reappears as the
// baseline of the ablations, the sensitivity sweep, the SHSP comparison and
// the model validation, and RunAll over a config list repeats cells
// verbatim. Below the cell boundary that redundancy is already gone
// (workload.SharedStream shares op streams, cpu.AcquireMachine reuses
// machines); this package removes it above: a cell simulates once per
// process — or, with the disk tier, once per machine — and every later ask
// returns the stored report.
//
// Correctness rests on the simulator being a pure function of the key
// (pinned by the experiments golden test and the serial/parallel
// equivalence suite): cpu.Report is a plain value struct — counters, fixed
// arrays and one string, no pointers — so a stored report handed to a
// second caller is bit-identical to re-simulating. The key covers every
// input that can alter the report; anything it cannot see (an attached
// miss/trap log, a telemetry recorder) must bypass the cache entirely —
// the experiments layer enforces that by construction, and instrumented
// runs never reach Do.
//
// Three layers, mirroring workload's stream cache:
//
//   - an in-memory LRU (byte budget, default DefaultBudgetBytes) with
//     per-key sync.Once singleflight, so concurrent sweeps asking for the
//     same cell run one simulation and share the result;
//   - an opt-in disk tier (SetDir / the CLIs' -report-cache-dir flag):
//     content-addressed files with defensive validation, so repeated CLI
//     or bench invocations skip simulation entirely;
//   - statistics (Info) the CLIs print under -progress.
//
// Concurrency contract: all exported functions are safe for concurrent
// use. Do never calls compute twice for one key unless the first compute
// failed or the entry was evicted or Reset in between.
package repcache

import (
	"crypto/sha256"
	"fmt"
	"reflect"
	"sync"

	"agilepaging/internal/cpu"
	"agilepaging/internal/workload"
)

// keyFormatVersion invalidates every key when the key derivation itself
// changes shape. It is hashed into each key.
const keyFormatVersion = 1

// KeyFor derives the canonical content key of one simulation cell. The key
// covers, via a sha256 over a canonical rendering:
//
//   - the normalized machine configuration (technique, page size, every
//     geometry and cost-model knob — cpu.Config is a pure value struct, so
//     the %#v rendering is canonical and automatically tracks new fields);
//   - the normalized workload profile, the generated-stream parameters
//     (accesses incl. warmup, seed) and the packed stream encoder version
//     (a format change that altered decoded ops must miss);
//   - the warmup split (measurement starts after `warmup` accesses).
//
// Two cells with equal keys produce bit-identical reports; two cells that
// could differ in any counter hash differently. Callers must pass the
// configuration actually handed to the machine (after any driver
// adjustments such as the one-core-per-thread bump).
func KeyFor(cfg cpu.Config, prof workload.Profile, accesses, warmup int, seed int64) string {
	cfg = cfg.Normalized()
	// Normalize the profile the way workload.SharedStream does, so
	// trivially-different profiles (Processes 0 versus 1) share a cell.
	if prof.Processes < 1 {
		prof.Processes = 1
	}
	if prof.Threads < 1 {
		prof.Threads = 1
	}
	h := sha256.New()
	fmt.Fprintf(h, "repcache/v%d|enc%d|%#v|%#v|n%d|w%d|s%d",
		keyFormatVersion, workload.PackedEncoderVersion(), cfg, prof, accesses, warmup, seed)
	return fmt.Sprintf("%x", h.Sum(nil)[:16])
}

// KeyForOps derives the content key of a fixed-op-stream cell — a scenario
// replay, where the caller supplies the exact op list rather than a
// generated profile. The key covers the normalized machine configuration
// and every op verbatim, so two scenarios are cache-equal exactly when they
// replay the same ops on the same machine.
func KeyForOps(cfg cpu.Config, name string, ops []workload.Op) string {
	cfg = cfg.Normalized()
	h := sha256.New()
	fmt.Fprintf(h, "repcache/ops/v%d|%#v|%q|n%d", keyFormatVersion, cfg, name, len(ops))
	for i := range ops {
		op := &ops[i]
		fmt.Fprintf(h, "|%d,%d,%d,%d,%d,%d,%t,%t,%d",
			op.Kind, op.PID, op.Core, op.VA, op.Len, op.Size, op.Write, op.Fetch, op.N)
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:16])
}

// entry is one cache slot. once gates the single computation; bytes stays 0
// until the report is stored and charged against the budget (eviction skips
// uncharged entries — a waiter holds a reference anyway).
type entry struct {
	once    sync.Once
	rep     cpu.Report
	err     error
	bytes   int64
	lastUse uint64
}

// entryOverhead approximates the fixed per-entry cost (map slot, entry
// struct, key string) charged on top of the report's own size.
const entryOverhead = 256

// reportBaseBytes is the in-memory size of one cpu.Report value; the
// workload-name string's bytes are charged separately per entry.
var reportBaseBytes = int64(reflect.TypeOf(cpu.Report{}).Size())

// DefaultBudgetBytes bounds the in-memory report cache. Reports are a few
// hundred bytes each, so the default retains on the order of ten thousand
// full Figure 5 sweeps; it exists to bound pathological key churn, not to
// be reached in normal use.
const DefaultBudgetBytes = 16 << 20

// cache is the process-wide report cache.
var cache = struct {
	mu         sync.Mutex
	entries    map[string]*entry
	clock      uint64
	bytes      int64
	budget     int64
	dir        string // disk tier directory ("" = disabled)
	hits       uint64
	misses     uint64
	deduped    uint64
	diskHits   uint64
	diskMisses uint64
	diskErrs   uint64
}{
	entries: make(map[string]*entry),
	budget:  DefaultBudgetBytes,
}

// Snapshot is a point-in-time copy of the cache's counters. Hits counts
// asks answered by a stored report; Misses counts asks that computed (or
// loaded from disk); Deduped counts asks that attached to a computation
// already in flight — the singleflight savings a concurrent sweep sees.
// DiskHits counts misses satisfied by a valid -report-cache-dir file
// instead of simulation, DiskMisses misses that simulated, DiskErrors
// failed cache-file writes. Bytes/Reports describe the current in-memory
// footprint.
type Snapshot struct {
	Hits, Misses, Deduped            uint64
	DiskHits, DiskMisses, DiskErrors uint64
	Bytes                            int64
	Reports                          int
}

// Info reports cache effectiveness and current footprint.
func Info() Snapshot {
	c := &cache
	c.mu.Lock()
	defer c.mu.Unlock()
	return Snapshot{
		Hits: c.hits, Misses: c.misses, Deduped: c.deduped,
		DiskHits: c.diskHits, DiskMisses: c.diskMisses, DiskErrors: c.diskErrs,
		Bytes: c.bytes, Reports: len(c.entries),
	}
}

// Stats reports the in-memory counters (see Info for the full snapshot
// including the disk tier).
func Stats() (hits, misses, deduped uint64) {
	info := Info()
	return info.Hits, info.Misses, info.Deduped
}

// SetBudget sets the in-memory byte budget. budget == 0 disables
// memoization entirely (every Do computes); budget < 0 removes the bound.
// Shrinking evicts immediately.
func SetBudget(budget int64) {
	cache.mu.Lock()
	cache.budget = budget
	evictLocked(nil)
	cache.mu.Unlock()
}

// SetDir sets the persistent report-cache directory. When non-empty,
// computed reports are written there and later misses are satisfied from
// valid files instead of simulating. "" (the default) disables the disk
// tier.
func SetDir(dir string) {
	cache.mu.Lock()
	cache.dir = dir
	cache.mu.Unlock()
}

// Reset drops every stored report and rewinds all cache state — statistics
// and the LRU clock included — so behaviour after a reset is exactly that
// of a fresh process. The disk directory setting and budget survive; disk
// files are never removed (they are the point of the disk tier).
func Reset() {
	c := &cache
	c.mu.Lock()
	c.entries = make(map[string]*entry)
	c.clock = 0
	c.bytes = 0
	c.hits, c.misses, c.deduped = 0, 0, 0
	c.diskHits, c.diskMisses, c.diskErrs = 0, 0, 0
	c.mu.Unlock()
}

// evictLocked drops stored reports, least recently used first, until the
// cache fits its budget. keep, if non-nil, is never evicted. Uncharged
// entries (still computing) are skipped.
func evictLocked(keep *entry) {
	c := &cache
	if c.budget < 0 {
		return
	}
	for c.bytes > c.budget {
		var victimKey string
		var victim *entry
		for k, e := range c.entries {
			if e == keep || e.bytes == 0 {
				continue
			}
			if victim == nil || e.lastUse < victim.lastUse {
				victim, victimKey = e, k
			}
		}
		if victim == nil {
			return
		}
		delete(c.entries, victimKey)
		c.bytes -= victim.bytes
	}
}

// Do returns the memoized report for key, calling compute at most once per
// key across all concurrent callers (later callers block on the first's
// sync.Once and share its result). A failed compute is never cached: the
// entry is removed, every waiter attached to that flight receives the
// error, and the next Do retries. With the cache disabled (budget 0) Do
// degenerates to calling compute.
func Do(key string, compute func() (cpu.Report, error)) (cpu.Report, error) {
	c := &cache
	c.mu.Lock()
	if c.budget == 0 {
		c.misses++
		c.mu.Unlock()
		return compute()
	}
	e, ok := c.entries[key]
	if ok {
		if e.bytes != 0 {
			c.hits++
		} else {
			// The first asker is still simulating; we will share its run.
			c.deduped++
		}
	} else {
		c.misses++
		e = &entry{}
		c.entries[key] = e
	}
	c.clock++
	e.lastUse = c.clock
	dir := c.dir
	c.mu.Unlock()

	e.once.Do(func() {
		if dir != "" {
			if rep, ok := loadReportFromDisk(dir, key); ok {
				e.finish(key, rep, nil, true, dir != "")
				return
			}
		}
		rep, err := compute()
		diskErr := false
		if err == nil && dir != "" {
			diskErr = writeReportToDisk(dir, key, rep) != nil
		}
		e.finishWithDiskErr(key, rep, err, false, dir != "", diskErr)
	})
	return e.rep, e.err
}

// finish stores the computation's outcome and settles statistics and the
// budget; see finishWithDiskErr.
func (e *entry) finish(key string, rep cpu.Report, err error, fromDisk, diskEnabled bool) {
	e.finishWithDiskErr(key, rep, err, fromDisk, diskEnabled, false)
}

// finishWithDiskErr records the report (or error) on the entry, updates the
// disk-tier counters, and either charges the completed entry against the
// budget or — on error — removes it so the key can be retried.
func (e *entry) finishWithDiskErr(key string, rep cpu.Report, err error, fromDisk, diskEnabled, diskErr bool) {
	e.rep, e.err = rep, err
	size := reportBaseBytes + int64(len(rep.Workload)) + int64(len(key)) + entryOverhead

	c := &cache
	c.mu.Lock()
	defer c.mu.Unlock()
	if diskEnabled {
		if err == nil {
			if fromDisk {
				c.diskHits++
			} else {
				c.diskMisses++
			}
		}
		if diskErr {
			c.diskErrs++
		}
	}
	// The entry may have been evicted or the cache Reset while we computed;
	// only charge (or remove) entries still in the map.
	if c.entries[key] != e {
		return
	}
	if err != nil {
		delete(c.entries, key)
		return
	}
	e.bytes = size
	c.bytes += size
	evictLocked(e)
}
