package cpu

import (
	"agilepaging/internal/telemetry"
	"agilepaging/internal/vmm"
)

// SetTelemetry attaches an epoch recorder. The recorder is rebased to the
// machine's current counters so its first epoch starts here; pass nil to
// detach. Per access the attached recorder costs one branch and one
// increment; counter assembly runs only at epoch boundaries (and the
// TLB-hit path stays at 0 allocs/op — see TestAccessHitZeroAllocs).
func (m *Machine) SetTelemetry(rec *telemetry.Recorder) {
	m.tel = rec
	if rec != nil {
		rec.Rebase(m.TelemetryCounters())
	}
}

// SetWalkEventRing attaches a bounded per-walk event ring (nil detaches).
// Recording is one array-slot copy per completed walk; the ring never
// grows.
func (m *Machine) SetWalkEventRing(ring *telemetry.EventRing) { m.walkEvents = ring }

// FlushTelemetry closes the partial epoch in progress, if any. Runs call
// it once after the op stream ends so the series covers the full tail.
func (m *Machine) FlushTelemetry() {
	if m.tel != nil {
		m.tel.Flush(m.TelemetryCounters())
	}
}

// TelemetryCounters assembles one flat counter snapshot across every layer
// of the machine: per-core TLBs, walkers and MMU caches, the VMM's trap
// accounting, the guest OS, and the agile managers' policy state. It only
// reads — attaching telemetry must leave simulated results bit-identical.
func (m *Machine) TelemetryCounters() telemetry.Counters {
	var c telemetry.Counters
	c.Clock = m.clock
	c.Accesses = m.stats.Accesses
	c.Writes = m.stats.Writes
	c.TLBMisses = m.stats.TLBMisses
	c.WalkRefs = m.stats.WalkRefs
	c.GuestPageFaults = m.stats.GuestPageFaults
	c.WriteProtFaults = m.stats.WriteProtFaults
	c.IdealCycles = m.stats.IdealCycles
	c.WalkCycles = m.stats.WalkCycles

	for _, core := range m.cores {
		ts := core.tlbs.Stats()
		c.TLBLookups += ts.Lookups
		c.TLBL1Hits += ts.L1Hits
		c.TLBL2Hits += ts.L2Hits
		ws := core.walker.Stats()
		c.Walks += ws.Walks
		for i := range ws.ByNestedLevels {
			c.WalksByNestedLevels[i] += ws.ByNestedLevels[i]
			c.RefsByNestedLevels[i] += ws.RefsByNestedLevels[i]
		}
		c.FullNestedWalks += ws.FullNested
		c.FullNestedRefs += ws.FullNestedRefs
		if core.pwc != nil {
			ps := core.pwc.Stats()
			c.PWCLookups += ps.Lookups
			c.PWCHits += ps.Hits
		}
		if core.ntlb != nil {
			ns := core.ntlb.Stats()
			c.NTLBLookups += ns.Lookups
			c.NTLBHits += ns.Hits
		}
	}

	if m.VM != nil {
		vs := m.VM.Stats()
		c.VMExits = vs.Traps
		c.TrapCycles = vs.TrapCycles
		c.PTUpdateTrapCycles = vs.Traps[vmm.TrapPTWrite]*m.cfg.TrapCosts.Cycles[vmm.TrapPTWrite] +
			vs.Traps[vmm.TrapTLBFlush]*m.cfg.TrapCosts.Cycles[vmm.TrapTLBFlush]
		m.VM.EachContext(func(ctx *vmm.Context) {
			c.ProtectedPages += ctx.ProtectedPages()
			byLevel := ctx.ProtectedPagesByLevel()
			for l := range byLevel {
				c.ProtectedByLevel[l] += byLevel[l]
			}
		})
	}

	os := m.OS.Stats()
	c.MapsInstalled = os.MapsInstalled
	c.Unmapped = os.Unmapped

	for _, mgr := range m.managers {
		s := mgr.Stats()
		c.SwitchesToNested += s.SwitchesToNested
		c.SwitchesToShadow += s.SwitchesToShadow
		c.DirtyScans += s.DirtyScans
		c.NestedNodes += mgr.NestedNodes()
		byLevel := mgr.NestedNodesByLevel()
		for l := range byLevel {
			c.NestedNodesByLevel[l] += byLevel[l]
		}
	}
	return c
}
