package cpu

import (
	"math/rand"
	"testing"

	"agilepaging/internal/pagetable"
	"agilepaging/internal/walker"
	"agilepaging/internal/workload"
)

// TestTranslationOracle is the end-to-end correctness invariant of the
// whole simulator: for every TLB miss the hardware walk services, the
// host-physical address it produces must equal what a software walk of the
// current guest and host page tables yields — regardless of technique,
// page size, policy decisions, zaps, switches, or cache state.
func TestTranslationOracle(t *testing.T) {
	for _, tech := range []walker.Mode{walker.ModeNative, walker.ModeNested, walker.ModeShadow, walker.ModeAgile} {
		for _, ps := range []pagetable.Size{pagetable.Size4K, pagetable.Size2M} {
			t.Run(tech.String()+"/"+ps.String(), func(t *testing.T) {
				cfg := smallConfig(tech, ps)
				m := newMachine(t, cfg)
				checked := 0
				m.SetMissObserver(func(va uint64, write, retry bool, res walker.Result) {
					cur := m.OS.Current()
					if cur == nil {
						return
					}
					gr, err := cur.PT.Lookup(va)
					if err != nil {
						t.Fatalf("walk succeeded for va %#x the OS never mapped: %v", va, err)
					}
					want := gr.PA
					if m.VM != nil {
						hpa, _, err := m.VM.TranslateGPA(gr.PA)
						if err != nil {
							t.Fatalf("gpa %#x unbacked: %v", gr.PA, err)
						}
						want = hpa
					}
					if res.HPA != want {
						t.Fatalf("%v/%v: walk(%#x) = hpa %#x, oracle %#x (nestedLevels=%d)",
							tech, ps, va, res.HPA, want, res.NestedLevels)
					}
					checked++
				})
				prof, _ := workload.ProfileByName("dedup")
				gen := workload.New(prof, ps, 8_000, 99)
				if err := m.Run(gen); err != nil {
					t.Fatal(err)
				}
				if checked == 0 {
					t.Fatal("oracle never exercised")
				}
			})
		}
	}
}

// TestRandomOpSoup drives the machine with a randomized, adversarial op
// stream (interleaved maps, unmaps, snapshots, collapses, reclaims,
// context switches, and accesses) under every technique and checks that
// execution always converges and never corrupts translation state.
func TestRandomOpSoup(t *testing.T) {
	for _, tech := range []walker.Mode{walker.ModeNative, walker.ModeNested, walker.ModeShadow, walker.ModeAgile} {
		t.Run(tech.String(), func(t *testing.T) {
			m := newMachine(t, smallConfig(tech, pagetable.Size4K))
			rng := rand.New(rand.NewSource(7))

			const regions = 6
			const regionPages = 64
			base := func(pid, r int) uint64 {
				return uint64(pid+1)<<40 | uint64(r+1)<<30
			}
			mapped := map[[2]int]bool{}

			ops := []workload.Op{
				{Kind: workload.OpCreateProcess, PID: 0},
				{Kind: workload.OpCreateProcess, PID: 1},
				{Kind: workload.OpCtxSwitch, PID: 0},
			}
			pid := 0
			for i := 0; i < 4_000; i++ {
				r := rng.Intn(regions)
				key := [2]int{pid, r}
				switch rng.Intn(10) {
				case 0:
					if !mapped[key] {
						ops = append(ops, workload.Op{Kind: workload.OpMmap, PID: pid, VA: base(pid, r), Len: regionPages << 12, Size: pagetable.Size4K})
						mapped[key] = true
					}
				case 1:
					if mapped[key] {
						ops = append(ops, workload.Op{Kind: workload.OpMunmap, PID: pid, VA: base(pid, r)})
						mapped[key] = false
					}
				case 2:
					if mapped[key] {
						ops = append(ops, workload.Op{Kind: workload.OpPopulate, PID: pid, VA: base(pid, r)})
					}
				case 3:
					if mapped[key] {
						ops = append(ops, workload.Op{Kind: workload.OpMarkCOW, PID: pid, VA: base(pid, r)})
					}
				case 4:
					ops = append(ops, workload.Op{Kind: workload.OpReclaim, PID: pid, N: 16})
				case 5:
					pid = 1 - pid
					ops = append(ops, workload.Op{Kind: workload.OpCtxSwitch, PID: pid})
				default:
					if mapped[key] {
						va := base(pid, r) + uint64(rng.Intn(regionPages))<<12
						ops = append(ops, workload.Op{Kind: workload.OpAccess, PID: pid, VA: va, Write: rng.Intn(2) == 0})
					}
				}
			}
			if err := m.Run(workload.NewFromOps("soup", ops)); err != nil {
				t.Fatal(err)
			}
			if m.Stats().Accesses == 0 {
				t.Fatal("soup produced no accesses")
			}
		})
	}
}

// TestOpSoupDeterministic: the same soup gives identical counters.
func TestOpSoupDeterministic(t *testing.T) {
	run := func() Stats {
		m := newMachine(t, smallConfig(walker.ModeAgile, pagetable.Size4K))
		prof, _ := workload.ProfileByName("gcc")
		if err := m.Run(workload.New(prof, pagetable.Size4K, 10_000, 5)); err != nil {
			t.Fatal(err)
		}
		return m.Stats()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("nondeterministic run:\n%+v\n%+v", a, b)
	}
}

// TestSMPSharedAddressSpace: threads of one process on different cores have
// private TLBs (a translation cached on core 0 misses on core 1) but share
// page-table state, and TLB shootdowns reach every core.
func TestSMPSharedAddressSpace(t *testing.T) {
	cfg := smallConfig(walker.ModeShadow, pagetable.Size4K)
	cfg.Cores = 2
	m := newMachine(t, cfg)
	base := uint64(0x4000_0000)
	ops := []workload.Op{
		{Kind: workload.OpCreateProcess, PID: 0},
		{Kind: workload.OpMmap, PID: 0, VA: base, Len: 16 << 12, Size: pagetable.Size4K},
		{Kind: workload.OpPopulate, PID: 0, VA: base},
		{Kind: workload.OpCtxSwitch, PID: 0, Core: 0},
		{Kind: workload.OpCtxSwitch, PID: 0, Core: 1},
	}
	mustRun(t, m, ops)
	if m.Cores() != 2 {
		t.Fatalf("cores = %d", m.Cores())
	}
	// Same VA touched on both cores: each core takes its own TLB miss.
	mustRun(t, m, []workload.Op{
		{Kind: workload.OpAccess, PID: 0, Core: 0, VA: base},
		{Kind: workload.OpAccess, PID: 0, Core: 1, VA: base},
	})
	// Core 0 pays 2 probes (fault + refill walk), core 1 one: the shadow
	// fill from core 0 is visible to core 1's walk, but not its TLB entry.
	if got := m.Stats().TLBMisses; got != 3 {
		t.Errorf("TLB misses = %d, want 3 (per-core TLBs)", got)
	}
	// Re-touching hits on both cores.
	pre := m.Stats().TLBMisses
	mustRun(t, m, []workload.Op{
		{Kind: workload.OpAccess, PID: 0, Core: 0, VA: base},
		{Kind: workload.OpAccess, PID: 0, Core: 1, VA: base},
	})
	if got := m.Stats().TLBMisses - pre; got != 0 {
		t.Errorf("warm misses = %d", got)
	}
	// A guest unmap shoots down both cores' TLBs: both re-miss (and the
	// page is gone, so both fault to the OS as a segfault-free remap).
	mustRun(t, m, []workload.Op{{Kind: workload.OpMunmap, PID: 0, VA: base}})
	ops = []workload.Op{
		{Kind: workload.OpMmap, PID: 0, VA: base, Len: 16 << 12, Size: pagetable.Size4K},
		{Kind: workload.OpAccess, PID: 0, Core: 0, VA: base},
		{Kind: workload.OpAccess, PID: 0, Core: 1, VA: base},
	}
	pre = m.Stats().TLBMisses
	mustRun(t, m, ops)
	// Core 0: demand fault + shadow refill + hit-after-fill probes (3);
	// core 1: one cold probe. Both cores missing proves the shootdown
	// reached every private TLB.
	if got := m.Stats().TLBMisses - pre; got != 4 {
		t.Errorf("post-shootdown misses = %d, want 4", got)
	}
}

// TestSMPOracleMultithreaded runs the translation oracle over a
// multithreaded profile on 4 cores.
func TestSMPOracleMultithreaded(t *testing.T) {
	cfg := smallConfig(walker.ModeAgile, pagetable.Size4K)
	cfg.Cores = 4
	m := newMachine(t, cfg)
	checked := 0
	m.SetMissObserver(func(va uint64, write, retry bool, res walker.Result) {
		cur := m.OS.Current()
		if cur == nil {
			return
		}
		gr, err := cur.PT.Lookup(va)
		if err != nil {
			t.Fatalf("walk for unmapped va %#x", va)
		}
		hpa, _, err := m.VM.TranslateGPA(gr.PA)
		if err != nil {
			t.Fatal(err)
		}
		if res.HPA != hpa {
			t.Fatalf("walk(%#x) = %#x, oracle %#x", va, res.HPA, hpa)
		}
		checked++
	})
	prof, _ := workload.ProfileByName("canneal") // Threads: 4
	if err := m.Run(workload.New(prof, pagetable.Size4K, 12_000, 3)); err != nil {
		t.Fatal(err)
	}
	if checked == 0 {
		t.Fatal("oracle never exercised")
	}
}
