package cpu

import (
	"fmt"

	"agilepaging/internal/core"
	"agilepaging/internal/guest"
	"agilepaging/internal/pagetable"
	"agilepaging/internal/tlb"
	"agilepaging/internal/vmm"
	"agilepaging/internal/walker"
)

// Report is the full measurement record of one run — the counters the
// paper's performance model (Table IV) consumes plus the derived cycle
// decomposition that Figure 5 plots.
type Report struct {
	Workload  string
	Technique walker.Mode
	PageSize  pagetable.Size

	Machine Stats
	TLB     tlb.Stats
	Walker  walker.Stats
	VMM     vmm.Stats // zero for base native
	OS      guest.Stats
	Agile   core.Stats     // aggregated over processes; zero unless agile
	SHSP    core.SHSPStats // aggregated; zero unless the SHSP baseline runs

	// Cycle decomposition.
	IdealCycles uint64 // E_ideal: execution with zero translation overhead
	WalkCycles  uint64 // PW: page-walk memory references (incl. hw A/D walks)
	VMMCycles   uint64 // VMM: VM-exit servicing

	// Per-miss walk-reference distribution (completed walks only).
	RefsP50 int
	RefsP95 int
	RefsMax int
}

// ExecCycles is total modeled execution time.
func (r Report) ExecCycles() uint64 { return r.IdealCycles + r.WalkCycles + r.VMMCycles }

// WalkOverhead is page-walk cycles relative to ideal execution (the bottom
// bar segment in Figure 5).
func (r Report) WalkOverhead() float64 {
	if r.IdealCycles == 0 {
		return 0
	}
	return float64(r.WalkCycles) / float64(r.IdealCycles)
}

// VMMOverhead is VMM-intervention cycles relative to ideal execution (the
// dashed top bar segment in Figure 5).
func (r Report) VMMOverhead() float64 {
	if r.IdealCycles == 0 {
		return 0
	}
	return float64(r.VMMCycles) / float64(r.IdealCycles)
}

// TotalOverhead is the combined execution-time overhead.
func (r Report) TotalOverhead() float64 { return r.WalkOverhead() + r.VMMOverhead() }

// AvgRefsPerMiss is the average number of page-walk memory references per
// TLB miss (paper Table VI's final column).
func (r Report) AvgRefsPerMiss() float64 {
	if r.Machine.TLBMisses == 0 {
		return 0
	}
	return float64(r.Machine.WalkRefs) / float64(r.Machine.TLBMisses)
}

// MPKI returns TLB misses per thousand accesses (the paper selects
// workloads above 5 MPKI).
func (r Report) MPKI() float64 {
	if r.Machine.Accesses == 0 {
		return 0
	}
	return 1000 * float64(r.Machine.TLBMisses) / float64(r.Machine.Accesses)
}

// String summarizes the report in one line.
func (r Report) String() string {
	return fmt.Sprintf("%s/%s/%s: walk %.1f%% vmm %.1f%% (misses %d, traps %d)",
		r.Workload, r.Technique, r.PageSize,
		100*r.WalkOverhead(), 100*r.VMMOverhead(),
		r.Machine.TLBMisses, r.VMM.TotalTraps())
}

// Report assembles the measurement record for everything run so far.
func (m *Machine) Report(workloadName string) Report {
	r := Report{
		Workload:  workloadName,
		Technique: m.cfg.Technique,
		PageSize:  m.cfg.PageSize,
		Machine:   m.stats,
		OS:        m.OS.Stats(),
	}
	for _, c := range m.cores {
		ts := c.tlbs.Stats()
		r.TLB.Lookups += ts.Lookups
		r.TLB.L1Hits += ts.L1Hits
		r.TLB.L2Hits += ts.L2Hits
		r.TLB.Misses += ts.Misses
		r.TLB.Flushes += ts.Flushes
		r.TLB.Invalids += ts.Invalids
		ws := c.walker.Stats()
		r.Walker.Walks += ws.Walks
		r.Walker.Refs += ws.Refs
		for i := range ws.Faults {
			r.Walker.Faults[i] += ws.Faults[i]
		}
		for i := range ws.ByNestedLevels {
			r.Walker.ByNestedLevels[i] += ws.ByNestedLevels[i]
			r.Walker.RefsByNestedLevels[i] += ws.RefsByNestedLevels[i]
		}
		r.Walker.FullNested += ws.FullNested
		r.Walker.FullNestedRefs += ws.FullNestedRefs
	}
	r.IdealCycles = m.stats.IdealCycles
	r.WalkCycles = m.stats.WalkCycles
	r.RefsP50 = m.refsHist.Percentile(0.5)
	r.RefsP95 = m.refsHist.Percentile(0.95)
	r.RefsMax = m.refsHist.Max()
	if m.VM != nil {
		r.VMM = m.VM.Stats()
		r.VMMCycles = r.VMM.TrapCycles
		// The §IV hardware A/D optimization converts VM exits into extra
		// page-walk references; charge them to the walk bucket.
		r.WalkCycles += r.VMM.HWADRefs * m.cfg.MemRefCycles
	}
	for _, mgr := range m.managers {
		s := mgr.Stats()
		r.Agile.SwitchesToNested += s.SwitchesToNested
		r.Agile.SwitchesToShadow += s.SwitchesToShadow
		r.Agile.RootSwitches += s.RootSwitches
		r.Agile.IntervalResets += s.IntervalResets
		r.Agile.DirtyScans += s.DirtyScans
		r.Agile.AgileEnabled += s.AgileEnabled
	}
	for _, ctl := range m.shsp {
		s := ctl.Stats()
		r.SHSP.ToShadow += s.ToShadow
		r.SHSP.ToNested += s.ToNested
		r.SHSP.Rebuilds += s.Rebuilds
	}
	return r
}
