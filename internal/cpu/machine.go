// Package cpu assembles the full simulated machine: physical memory, the
// TLB hierarchy, page walk caches, the hardware walker, the guest OS, and —
// for virtualized configurations — the VMM and the agile paging manager.
// It executes workload op streams and produces the cycle accounting that
// the paper's evaluation (Figure 5) is built from.
package cpu

import (
	"errors"
	"fmt"

	"agilepaging/internal/core"
	"agilepaging/internal/guest"
	"agilepaging/internal/memsim"
	"agilepaging/internal/pagetable"
	"agilepaging/internal/ptwc"
	"agilepaging/internal/stats"
	"agilepaging/internal/telemetry"
	"agilepaging/internal/tlb"
	"agilepaging/internal/vmm"
	"agilepaging/internal/walker"
	"agilepaging/internal/workload"
)

// Config describes one machine configuration — a column of the paper's
// Figure 5 (technique × page size), plus the structural knobs the
// experiments vary.
type Config struct {
	// Technique selects base native, nested, shadow, or agile paging.
	Technique walker.Mode
	// PageSize is the page-size policy used by the guest OS and, in
	// virtualized configurations, by the VMM's host table (the paper uses
	// the same size at both levels, §VI).
	PageSize pagetable.Size

	// MemBytes sizes host physical memory; GuestRAMBytes the VM.
	MemBytes      uint64
	GuestRAMBytes uint64

	// TLB geometry; TLBScale shrinks it to match scaled-down footprints.
	TLB      tlb.Config
	TLBScale int

	// EnablePWC/EnableNTLB toggle the MMU caches (Table VI runs without).
	EnablePWC   bool
	PWC         ptwc.Config
	EnableNTLB  bool
	NTLBEntries int

	// Cycle model: AccessCycles is the ideal cost of one access op;
	// MemRefCycles the cost of one page-walk memory reference to native,
	// guest, or shadow tables; HostRefCycles the (lower) cost of host-table
	// references, which are few, hot, and mostly served by the data caches
	// on real hardware (paper §II-A's caching discussion).
	AccessCycles  uint64
	MemRefCycles  uint64
	HostRefCycles uint64

	// Virtualization options (paper §IV hardware optimizations included).
	HardwareAD     bool
	CtxSwitchCache int
	TrapCosts      vmm.CostModel
	Agile          core.PolicyConfig
	PolicyTickOps  int

	// Cores is the number of simulated CPU cores. Each core has private
	// TLBs, page walk caches and a nested TLB (as real parts do); the VMM,
	// guest OS and physical memory are shared, and TLB shootdowns broadcast
	// to every core. Cores interleave on one simulated timeline — the model
	// captures per-core translation state and shared-VMM costs, not
	// parallel throughput. 0 or 1 = uniprocessor.
	Cores int

	// UseSHSP replaces the agile manager with the prior-work baseline of
	// paper §VII.C: selective hardware/software paging, which switches the
	// whole process between nested and shadow mode (requires Technique ==
	// walker.ModeAgile for the underlying mechanisms).
	UseSHSP bool
	SHSP    core.SHSPConfig

	// DisableL0Memo turns off the per-core generation-checked translation
	// memo. The memo is semantically transparent — reports are bit-identical
	// either way (see TestBatchedExecutionEquivalence) — so this exists only
	// for equivalence tests and before/after microbenchmarks.
	DisableL0Memo bool
}

// normalize applies the defaults New guarantees, in place. New and Reset
// both store the normalized config, so Machine.Config() round-trips: feeding
// it back to New (or Reset) yields an identical machine.
func (cfg *Config) normalize() {
	if cfg.PolicyTickOps <= 0 {
		cfg.PolicyTickOps = 20_000
	}
	if cfg.Cores < 1 {
		cfg.Cores = 1
	}
	if cfg.NTLBEntries <= 0 {
		cfg.NTLBEntries = 32
	}
}

// Normalized returns the config with the defaults New guarantees applied —
// the exact config a machine built from cfg would report via Config().
// Configs that build identical machines have identical Normalized values,
// which makes it the canonical form for content keys over machine behaviour.
func (cfg Config) Normalized() Config {
	cfg.normalize()
	return cfg
}

// Geometry is the immutable skeleton of a machine: every Config field that
// determines the shape or capacity of a structure built by New. Two configs
// with equal geometry describe machines whose difference is run state and
// cost accounting only, so one can be Reset into the other; differing
// geometry requires a fresh New. The struct is comparable and is the
// machine pool's key.
type Geometry struct {
	Technique     walker.Mode
	PageSize      pagetable.Size
	MemBytes      uint64
	GuestRAMBytes uint64
	TLB           tlb.Config
	TLBScale      int
	EnablePWC     bool
	PWC           ptwc.Config
	EnableNTLB    bool
	NTLBEntries   int
	Cores         int
}

// Geometry extracts the geometry of a config. Call on a normalized config
// (Machine.Config() already is) for a canonical key.
func (cfg Config) Geometry() Geometry {
	cfg.normalize()
	return Geometry{
		Technique:     cfg.Technique,
		PageSize:      cfg.PageSize,
		MemBytes:      cfg.MemBytes,
		GuestRAMBytes: cfg.GuestRAMBytes,
		TLB:           cfg.TLB,
		TLBScale:      cfg.TLBScale,
		EnablePWC:     cfg.EnablePWC,
		PWC:           cfg.PWC,
		EnableNTLB:    cfg.EnableNTLB,
		NTLBEntries:   cfg.NTLBEntries,
		Cores:         cfg.Cores,
	}
}

// DefaultConfig returns the baseline machine for a technique and page size:
// Sandy-Bridge TLBs scaled 8× down (footprints are ~1000× down; the scale
// keeps miss ratios in the published band), MMU caches on, no optional
// hardware optimizations.
func DefaultConfig(technique walker.Mode, pageSize pagetable.Size) Config {
	return Config{
		Technique:     technique,
		PageSize:      pageSize,
		MemBytes:      8 << 30,
		GuestRAMBytes: 4 << 30,
		TLB:           tlb.SandyBridgeConfig(),
		TLBScale:      8,
		EnablePWC:     true,
		PWC:           ptwc.DefaultConfig(),
		EnableNTLB:    true,
		NTLBEntries:   32,
		AccessCycles:  50,
		MemRefCycles:  40,
		HostRefCycles: 10,
		TrapCosts:     vmm.DefaultCostModel(),
		Agile:         core.DefaultPolicy(),
		PolicyTickOps: 5_000,
	}
}

// Stats accumulates machine-level counters.
type Stats struct {
	Accesses    uint64
	Writes      uint64
	TLBMisses   uint64
	WalkRefs    uint64
	IdealCycles uint64
	WalkCycles  uint64

	GuestPageFaults uint64 // faults delivered to the guest OS
	WriteProtFaults uint64 // write-permission upgrades (dirty/COW paths)
	CtxSwitches     uint64
}

// l0Memo caches one core's last successful translation — the "L0 TLB". A
// run of accesses to the same page short-circuits the full hierarchy probe
// while performing exactly the counter updates the probe would (see
// Machine.translate). Validity is generation-checked: the memo is usable
// only while the core's TLB hierarchy has seen no invalidation or flush
// since the memo was recorded (tlb.Hierarchy.Gen). Because the memo always
// describes the core's most recent lookup, the entry is necessarily still
// most-recent in its TLB set, so no intervening insert can have evicted it
// and skipping the LRU touch is unobservable.
type l0Memo struct {
	gen      uint64 // tlbs.Gen() when recorded
	base     uint64 // VA page base
	mask     uint64 // page-size offset mask
	asid     uint16
	fetch    bool // instruction-side translation
	writable bool
	valid    bool
}

// coreState is the translation state private to one CPU core.
type coreState struct {
	idx    int
	tlbs   *tlb.Hierarchy
	pwc    *ptwc.PWC
	ntlb   *ptwc.NestedTLB
	walker *walker.Walker
	regs   walker.Regs
	cur    *guest.Process
	// ctx caches the VMM context of the scheduled process (nil when
	// unvirtualized or idle) so the fault and policy paths do not resolve
	// the ASID→context map on every access.
	ctx *vmm.Context
	l0  l0Memo
}

// Machine is the assembled simulator.
type Machine struct {
	cfg Config

	Mem *memsim.Memory
	// TLBs, PWC, NTLB and Walker alias core 0's structures for convenience
	// (most experiments are uniprocessor).
	TLBs   *tlb.Hierarchy
	PWC    *ptwc.PWC
	NTLB   *ptwc.NestedTLB
	Walker *walker.Walker
	OS     *guest.OS
	VM     *vmm.VM // nil for base native

	cores []*coreState

	managers map[uint16]*core.Manager
	shsp     map[uint16]*core.SHSP

	clock     uint64
	stats     Stats
	refsHist  *stats.Hist // completed-walk memory references per TLB miss
	missObs   func(va uint64, write, retry bool, res walker.Result)
	accessObs func(va uint64, write bool, pa uint64, size pagetable.Size)

	// Optional telemetry (nil when disabled; see internal/telemetry). tel
	// costs one branch + one increment per access; walkEvents one array
	// copy per completed walk. Neither allocates on the access path.
	tel        *telemetry.Recorder
	walkEvents *telemetry.EventRing

	// Policy-tick window for TLB-miss-overhead estimation.
	sinceTickAccesses  uint64
	sinceTickIdeal     uint64
	sinceTickWalk      uint64
	lastTickTrapCycles uint64
	lastTickFaults     uint64
}

// New builds a machine from cfg.
func New(cfg Config) (*Machine, error) {
	cfg.normalize()
	m := &Machine{
		cfg:      cfg,
		Mem:      memsim.New(cfg.MemBytes),
		managers: make(map[uint16]*core.Manager),
		shsp:     make(map[uint16]*core.SHSP),
		refsHist: stats.NewHist(25),
	}
	for i := 0; i < cfg.Cores; i++ {
		c := &coreState{idx: i, tlbs: tlb.NewHierarchy(cfg.TLB.Scaled(cfg.TLBScale))}
		if cfg.EnablePWC {
			c.pwc = ptwc.New(cfg.PWC)
		}
		if cfg.EnableNTLB && cfg.Technique != walker.ModeNative {
			c.ntlb = ptwc.NewNestedTLB(cfg.NTLBEntries, 4)
		}
		c.walker = walker.New(m.Mem, c.pwc, c.ntlb)
		m.cores = append(m.cores, c)
	}
	m.TLBs = m.cores[0].tlbs
	m.PWC = m.cores[0].pwc
	m.NTLB = m.cores[0].ntlb
	m.Walker = m.cores[0].walker

	if cfg.Technique == walker.ModeNative {
		m.OS = guest.New(nativePlatform{m})
		return m, nil
	}
	vm, err := vmm.New(m.Mem, (*machineMMU)(m), 1, cfg.vmConfig())
	if err != nil {
		return nil, err
	}
	m.VM = vm
	m.OS = guest.New(virtPlatform{m})
	return m, nil
}

// vmConfig derives the VM configuration embedded in a machine config.
func (cfg Config) vmConfig() vmm.Config {
	return vmm.Config{
		Technique:             cfg.Technique,
		RAMBytes:              cfg.GuestRAMBytes,
		HostPageSize:          cfg.PageSize,
		HardwareAD:            cfg.HardwareAD,
		CtxSwitchCacheEntries: cfg.CtxSwitchCache,
		Costs:                 cfg.TrapCosts,
	}
}

// Config returns the machine configuration (normalized: defaults applied).
func (m *Machine) Config() Config { return m.cfg }

// ErrGeometryChange is returned by Reset when the requested configuration
// differs from the machine's in a structural field; such changes require a
// fresh New.
var ErrGeometryChange = errors.New("cpu: config geometry differs; Reset cannot resize structures, use New")

// Reset restores the machine to the pristine state New(cfg) would produce,
// without releasing any backing capacity: memory frames recycle to the
// allocator's high-water mark, TLB/PWC/nested-TLB arrays empty with their
// LRU clocks rewound, and all guest, VMM, and policy state tears down. cfg
// must match the machine's geometry (Config.Geometry) — non-structural
// fields (cycle and trap cost models, §IV optimization toggles, policy
// parameters) are adopted from cfg, which is what lets sensitivity sweeps
// reuse pooled machines across cost-model perturbations.
//
// A reset machine is deterministically equivalent to a fresh one: frame
// allocation order, replacement decisions, and policy state all replay
// identically, so an identical op stream produces a bit-identical Report
// (pinned by TestResetVsFreshEquivalence). Observers and telemetry are
// detached; reattach per run. Reset performs no heap allocation.
func (m *Machine) Reset(cfg Config) error {
	cfg.normalize()
	if cfg.Geometry() != m.cfg.Geometry() {
		return ErrGeometryChange
	}
	m.cfg = cfg
	m.Mem.Reset()
	for _, c := range m.cores {
		c.tlbs.Reset()
		if c.pwc != nil {
			c.pwc.Reset()
		}
		if c.ntlb != nil {
			c.ntlb.Reset()
		}
		c.walker.Reset()
		c.regs = walker.Regs{}
		c.cur = nil
		c.ctx = nil
		c.l0 = l0Memo{}
	}
	clear(m.managers)
	clear(m.shsp)
	m.OS.Reset()
	if m.VM != nil {
		// After Mem.Reset the VM's fresh host-table root draws the same
		// frame number vmm.New drew, keeping frame numbering bit-identical.
		if err := m.VM.Reset(cfg.vmConfig()); err != nil {
			return err
		}
	}
	m.clock = 0
	m.stats = Stats{}
	m.refsHist.Reset()
	m.missObs = nil
	m.accessObs = nil
	m.tel = nil
	m.walkEvents = nil
	m.sinceTickAccesses, m.sinceTickIdeal, m.sinceTickWalk = 0, 0, 0
	m.lastTickTrapCycles = 0
	m.lastTickFaults = 0
	return nil
}

// Clock returns the simulated cycle count.
func (m *Machine) Clock() uint64 { return m.clock }

// Stats returns machine counters.
func (m *Machine) Stats() Stats { return m.stats }

// Managers returns the agile managers by ASID (empty unless agile).
func (m *Machine) Managers() map[uint16]*core.Manager { return m.managers }

// SHSPControllers returns the SHSP controllers by ASID (empty unless the
// SHSP baseline is enabled).
func (m *Machine) SHSPControllers() map[uint16]*core.SHSP { return m.shsp }

// SetMissObserver installs a callback invoked on every completed TLB-miss
// walk — the analog of the paper's BadgerTrap instrumentation (§VI step 2).
// write is the access's store bit; retry reports that the same logical
// access already produced a record (a store re-walks after its
// write-protection upgrade).
func (m *Machine) SetMissObserver(fn func(va uint64, write, retry bool, res walker.Result)) {
	m.missObs = fn
}

// SetAccessObserver installs a callback invoked once per successful data or
// fetch access with the final translated host-physical address. Every
// successful access terminates in a TLB hit (walks insert and re-probe), so
// the hook sees exactly one event per access, in program order, regardless
// of technique. It requires DisableL0Memo: the L0 repeat path short-circuits
// before the physical address is recomputed. The differential-equivalence
// harness uses it to track per-frame memory contents.
func (m *Machine) SetAccessObserver(fn func(va uint64, write bool, pa uint64, size pagetable.Size)) {
	m.accessObs = fn
}

// ResetMeasurement zeroes every statistics counter while leaving all
// architectural and policy state (TLB contents, shadow tables, mode
// decisions) intact. Experiments call it after warmup so measurements
// reflect steady-state behaviour, as the paper's to-completion runs do.
func (m *Machine) ResetMeasurement() {
	m.stats = Stats{}
	for _, c := range m.cores {
		c.tlbs.ResetStats()
		c.walker.ResetStats()
		if c.pwc != nil {
			c.pwc.ResetStats()
		}
		if c.ntlb != nil {
			c.ntlb.ResetStats()
		}
	}
	if m.VM != nil {
		m.VM.ResetStats()
	}
	m.OS.ResetStats()
	m.sinceTickAccesses, m.sinceTickIdeal, m.sinceTickWalk = 0, 0, 0
	m.lastTickTrapCycles = 0
	m.lastTickFaults = 0
	m.refsHist.Reset()
	if m.tel != nil {
		// Epochs must never straddle a counter reset: rebase the recorder
		// so the next epoch diffs against the zeroed counter space.
		m.tel.Rebase(m.TelemetryCounters())
	}
}

// Regs exposes core 0's current hardware register state (for experiments).
func (m *Machine) Regs() walker.Regs { return m.cores[0].regs }

// Cores reports the number of simulated CPU cores.
func (m *Machine) Cores() int { return len(m.cores) }

// RefsHist exposes the per-miss memory-reference histogram.
func (m *Machine) RefsHist() *stats.Hist { return m.refsHist }

// asidFor maps a PID to its hardware ASID (0 is reserved).
func asidFor(pid int) uint16 { return uint16(pid + 1) }

// Run executes the generator's op stream to completion. Errors carry the
// zero-based index of the failing op within the stream so deterministic
// workloads can be replayed up to the failure point. Fixed op lists
// (FromOps, including shared workload streams) take the batched in-place
// path; live generators fall back to op-at-a-time dispatch.
func (m *Machine) Run(gen workload.Generator) error {
	if f, ok := gen.(*workload.FromOps); ok {
		base := f.Pos()
		return m.RunOps(f.TakeRest(), base)
	}
	for i := 0; ; i++ {
		op, ok := gen.Next()
		if !ok {
			return nil
		}
		if err := m.Exec(op); err != nil {
			return fmt.Errorf("op %d (%v) pid=%d va=%#x: %w", i, op.Kind, op.PID, op.VA, err)
		}
	}
}

// RunOps executes a fixed op slice with batched dispatch: a run of
// consecutive plain accesses on the same core executes in a tight loop
// that resolves the core and scheduled process once, instead of paying the
// op-kind switch, core clamp, and process lookup per op. Execution is
// op-for-op identical to Exec-ing each element (see
// TestBatchedExecutionEquivalence). base is the stream index of ops[0],
// used to label errors with stream-absolute op indices. The slice is never
// written to and may be shared with concurrent runs.
func (m *Machine) RunOps(ops []workload.Op, base int) error {
	for i := 0; i < len(ops); {
		op := &ops[i]
		if op.Kind != workload.OpAccess {
			if err := m.Exec(*op); err != nil {
				return fmt.Errorf("op %d (%v) pid=%d va=%#x: %w", base+i, op.Kind, op.PID, op.VA, err)
			}
			i++
			continue
		}
		j := i + 1
		for j < len(ops) && ops[j].Kind == workload.OpAccess && ops[j].Core == op.Core {
			j++
		}
		if k, err := m.accessRun(m.coreIndex(op.Core), ops[i:j]); err != nil {
			fail := &ops[i+k]
			return fmt.Errorf("op %d (%v) pid=%d va=%#x: %w", base+i+k, fail.Kind, fail.PID, fail.VA, err)
		}
		i = j
	}
	return nil
}

// RunChunks drains a chunked op source — typically the Next method of a
// workload.StreamReader replaying a packed shared stream — executing each
// decoded batch through the RunOps batched fast path. base is the stream
// index of the first op the source will yield; error labels stay
// stream-absolute across chunks. Because the source may still be
// generating its tail, execution of early chunks overlaps generation of
// later ones.
func (m *Machine) RunChunks(next func() ([]workload.Op, bool), base int) error {
	for {
		ops, ok := next()
		if !ok {
			return nil
		}
		if err := m.RunOps(ops, base); err != nil {
			return err
		}
		base += len(ops)
	}
}

// accessRun executes a run of same-core access ops. On error it returns
// the run-relative index of the failing op.
func (m *Machine) accessRun(coreIdx int, ops []workload.Op) (int, error) {
	c := m.cores[coreIdx]
	cur := c.cur
	if cur == nil || c.regs.ASID == 0 {
		return 0, errNoProcess
	}
	for k := range ops {
		op := &ops[k]
		// Same structure as accessOn: the policy tick and telemetry sample
		// run even when the access errors.
		err := m.translate(c, cur, op.VA, op.Write, op.Fetch)
		m.policyTick()
		if m.tel != nil && m.tel.OnAccess() {
			m.tel.Sample(m.TelemetryCounters())
		}
		if err != nil {
			return k, err
		}
	}
	return 0, nil
}

// coreIndex clamps an op's core selector to a valid core.
func (m *Machine) coreIndex(core int) int {
	if core < 0 || core >= len(m.cores) {
		return 0
	}
	return core
}

// coreFor resolves an op's core index.
func (m *Machine) coreFor(op workload.Op) int {
	return m.coreIndex(op.Core)
}

// Exec executes one op.
func (m *Machine) Exec(op workload.Op) error {
	switch op.Kind {
	case workload.OpCreateProcess:
		_, err := m.OS.CreateProcess(op.PID, asidFor(op.PID))
		return err
	case workload.OpCtxSwitch:
		return m.ContextSwitchOn(m.coreFor(op), op.PID)
	case workload.OpMmap:
		_, err := m.OS.Mmap(op.PID, op.VA, op.Len, op.Size, true)
		return err
	case workload.OpPopulate:
		return m.OS.Populate(op.PID, op.VA)
	case workload.OpMunmap:
		return m.OS.Munmap(op.PID, op.VA)
	case workload.OpMarkCOW:
		return m.OS.MarkCOW(op.PID, op.VA)
	case workload.OpAccess:
		return m.accessOn(m.coreFor(op), op.VA, op.Write, op.Fetch)
	case workload.OpReclaim:
		_, err := m.OS.ReclaimScan(op.PID, op.N)
		return err
	case workload.OpCollapse:
		if err := m.OS.Collapse(op.PID, op.VA); err != nil && !errors.Is(err, guest.ErrCollapseUnsuitable) {
			return err
		}
		// An unsuitable range (partially mapped, already huge, crossing a
		// region boundary) is skipped, as khugepaged skips it. The refusal
		// is decided before any state changes, so the skip is deterministic
		// across techniques.
		return nil
	}
	return fmt.Errorf("cpu: unknown op kind %v", op.Kind)
}

// ContextSwitch schedules pid on core 0 (uniprocessor convenience).
func (m *Machine) ContextSwitch(pid int) error { return m.ContextSwitchOn(0, pid) }

// ContextSwitchOn schedules pid on the given core: the guest OS switches
// and the CR3 write is handled natively or by the VMM.
func (m *Machine) ContextSwitchOn(coreIdx, pid int) error {
	p, err := m.OS.ContextSwitch(pid)
	if err != nil {
		return err
	}
	c := m.cores[coreIdx]
	m.stats.CtxSwitches++
	c.cur = p
	if m.VM == nil {
		c.regs = walker.Regs{Mode: walker.ModeNative, Root: p.PT.Root(), ASID: p.ASID}
		c.ctx = nil
		return nil
	}
	regs, err := m.VM.ContextSwitch(p.ASID)
	if err != nil {
		return err
	}
	c.regs = regs
	ctx, ok := m.VM.Context(p.ASID)
	if !ok {
		return fmt.Errorf("cpu: no VMM context for asid %d", p.ASID)
	}
	c.ctx = ctx
	return nil
}

// errNoProcess guards accesses before any context is installed.
var errNoProcess = errors.New("cpu: no process scheduled")

// Access performs one load or store on core 0 (uniprocessor convenience).
func (m *Machine) Access(va uint64, write bool) error { return m.accessOn(0, va, write, false) }

// AccessOn performs one load or store at va on the given core.
func (m *Machine) AccessOn(coreIdx int, va uint64, write bool) error {
	return m.accessOn(coreIdx, va, write, false)
}

// Fetch performs one instruction fetch at va on the given core, translated
// by the instruction-side TLBs.
func (m *Machine) Fetch(coreIdx int, va uint64) error {
	return m.accessOn(coreIdx, va, false, true)
}

// accessOn performs one load, store, or fetch at va in the core's current
// process, exercising the full translation path: TLB, hardware walk, fault
// servicing, permission upgrades, and retry.
func (m *Machine) accessOn(coreIdx int, va uint64, write, fetch bool) error {
	c := m.cores[coreIdx]
	cur := c.cur
	if cur == nil || c.regs.ASID == 0 {
		return errNoProcess
	}
	// translate + an unconditional policyTick call, split out so the hot
	// path pays a direct call rather than a deferred one.
	err := m.translate(c, cur, va, write, fetch)
	m.policyTick()
	if m.tel != nil && m.tel.OnAccess() {
		m.tel.Sample(m.TelemetryCounters())
	}
	return err
}

// translate runs the translation loop of one access: TLB probe, hardware
// walk, fault servicing, permission upgrades, and retry.
func (m *Machine) translate(c *coreState, cur *guest.Process, va uint64, write, fetch bool) error {
	m.stats.Accesses++
	if write {
		m.stats.Writes++
	}
	m.charge(&m.stats.IdealCycles, &m.sinceTickIdeal, m.cfg.AccessCycles)

	// L0 memo: a repeat of the core's previous translation (same page, same
	// address space, same TLB side, sufficient permission) is provably still
	// an L1 hit as long as the hierarchy has seen no invalidation since —
	// the entry was most-recent in its set and nothing evicted it. Account
	// it exactly as the full probe would and skip the probe.
	if l0 := &c.l0; l0.valid && l0.gen == c.tlbs.Gen() &&
		va&^l0.mask == l0.base && l0.asid == c.regs.ASID && l0.fetch == fetch &&
		(!write || l0.writable) && !m.cfg.DisableL0Memo {
		c.tlbs.NoteRepeatL1Hit()
		return nil
	}

	// logged tracks whether this logical access already produced a miss
	// record: a store that walks, hits a read-only entry, and re-walks
	// after the write-protection upgrade logs again, and that second
	// record is marked as a retry rather than silently duplicated.
	logged := false
	for attempt := 0; attempt < 32; attempt++ {
		if r, ok := c.tlbs.Lookup(c.regs.ASID, va, fetch); ok {
			if write && !r.Flags.Writable() {
				if err := m.writeProtFault(c, cur, va); err != nil {
					return err
				}
				continue
			}
			c.l0 = l0Memo{
				gen:      c.tlbs.Gen(),
				base:     va &^ r.Size.Mask(),
				mask:     r.Size.Mask(),
				asid:     c.regs.ASID,
				fetch:    fetch,
				writable: r.Flags.Writable(),
				valid:    true,
			}
			if m.accessObs != nil {
				m.accessObs(va, write, r.PA, r.Size)
			}
			return nil
		}
		m.stats.TLBMisses++
		res, fault := c.walker.Walk(c.regs, va, write)
		if fault == nil {
			cycles := m.chargeWalk(res.Refs, res.HostRefs)
			m.refsHist.Add(res.Refs)
			if m.missObs != nil {
				m.missObs(va, write, logged, res)
			}
			logged = true
			if m.walkEvents != nil {
				m.walkEvents.Record(telemetry.WalkEvent{
					Clock:        m.clock,
					Core:         c.idx,
					VA:           va,
					Refs:         res.Refs,
					HostRefs:     res.HostRefs,
					NestedLevels: res.NestedLevels,
					FullNested:   res.GptrTranslated,
					Write:        write,
					Cycles:       cycles,
				})
			}
			c.tlbs.Insert(c.regs.ASID, va, res.Size, res.HPA&^res.Size.Mask(), res.Flags, fetch)
			if write && !res.Flags.Writable() {
				if err := m.writeProtFault(c, cur, va); err != nil {
					return err
				}
			}
			continue // re-probe the TLB (entry may have been upgraded)
		}
		m.chargeWalk(fault.Refs, fault.HostRefs)
		if err := m.handleFault(c, cur, va, write, fault); err != nil {
			return err
		}
	}
	return fmt.Errorf("cpu: access %#x did not converge", va)
}

// handleFault dispatches a hardware walk fault to its handler.
func (m *Machine) handleFault(c *coreState, cur *guest.Process, va uint64, write bool, fault *walker.Fault) error {
	switch fault.Kind {
	case walker.FaultNotPresent:
		if m.VM == nil {
			m.stats.GuestPageFaults++
			return m.OS.HandlePageFault(cur.PID, va, write)
		}
		ctx := c.ctx
		if ctx == nil {
			return fmt.Errorf("cpu: no VMM context for asid %d", cur.ASID)
		}
		out, err := ctx.HandleShadowFault(va, write)
		if err != nil {
			return err
		}
		c.regs = ctx.Regs() // fill may have planted a root switch
		if out == vmm.OutcomeGuestFault {
			m.stats.GuestPageFaults++
			return m.OS.HandlePageFault(cur.PID, va, write)
		}
		return nil
	case walker.FaultGuest:
		m.stats.GuestPageFaults++
		return m.OS.HandlePageFault(cur.PID, va, write)
	case walker.FaultHost:
		return m.VM.HandleHostFault(fault.GPA, write)
	}
	return fmt.Errorf("cpu: unknown fault %v", fault.Kind)
}

// writeProtFault upgrades write permission at va: dirty-bit tracking or COW.
func (m *Machine) writeProtFault(c *coreState, cur *guest.Process, va uint64) error {
	m.stats.WriteProtFaults++
	if m.VM == nil {
		m.invalidateAllCores(c.regs.ASID, va)
		m.stats.GuestPageFaults++
		return m.OS.HandlePageFault(cur.PID, va, true)
	}
	ctx := c.ctx
	if ctx == nil {
		return fmt.Errorf("cpu: no VMM context for asid %d", cur.ASID)
	}
	resolved, err := ctx.HandleWriteProtect(va)
	if err != nil {
		return err
	}
	if !resolved {
		m.invalidateAllCores(c.regs.ASID, va)
		m.stats.GuestPageFaults++
		return m.OS.HandlePageFault(cur.PID, va, true)
	}
	return nil
}

// invalidateAllCores performs a TLB shootdown of va across every core.
func (m *Machine) invalidateAllCores(asid uint16, va uint64) {
	for _, c := range m.cores {
		c.tlbs.InvalidatePage(asid, va)
	}
}

func (m *Machine) charge(total *uint64, window *uint64, cycles uint64) {
	*total += cycles
	*window += cycles
	m.clock += cycles
}

func (m *Machine) chargeWalk(refs, hostRefs int) uint64 {
	m.stats.WalkRefs += uint64(refs)
	cycles := uint64(refs-hostRefs)*m.cfg.MemRefCycles + uint64(hostRefs)*m.cfg.HostRefCycles
	m.charge(&m.stats.WalkCycles, &m.sinceTickWalk, cycles)
	return cycles
}

// policyTick drives the agile managers with the observed TLB-miss overhead
// of the recent window (the paper's performance-counter feedback, §III-C).
func (m *Machine) policyTick() {
	m.sinceTickAccesses++
	if m.sinceTickAccesses < uint64(m.cfg.PolicyTickOps) {
		return
	}
	var trapDelta uint64
	if m.VM != nil {
		cur := m.VM.Stats().TrapCycles
		trapDelta = cur - m.lastTickTrapCycles
		m.lastTickTrapCycles = cur
	}
	missOverhead := 0.0
	trapOverhead := 0.0
	if denom := m.sinceTickIdeal + m.sinceTickWalk + trapDelta; denom > 0 {
		missOverhead = float64(m.sinceTickWalk) / float64(denom)
		trapOverhead = float64(trapDelta) / float64(denom)
	}
	for _, mgr := range m.managers {
		mgr.Tick(m.clock, missOverhead)
	}
	faultRate := 0.0
	if m.sinceTickAccesses > 0 {
		faultRate = float64(m.stats.GuestPageFaults-m.lastTickFaults) / float64(m.sinceTickAccesses)
	}
	m.lastTickFaults = m.stats.GuestPageFaults
	for _, ctl := range m.shsp {
		ctl.Tick(m.clock, missOverhead, trapOverhead, faultRate)
	}
	for _, c := range m.cores {
		if c.ctx != nil {
			c.regs = c.ctx.Regs() // policies may have changed mode state
		}
	}
	m.sinceTickAccesses = 0
	m.sinceTickIdeal = 0
	m.sinceTickWalk = 0
}

// machineMMU implements vmm.MMU over the machine's hardware structures.
type machineMMU Machine

func (mm *machineMMU) InvalidatePage(asid uint16, gva uint64) {
	for _, c := range mm.cores {
		c.tlbs.InvalidatePage(asid, gva)
	}
}

func (mm *machineMMU) FlushASID(asid uint16) {
	for _, c := range mm.cores {
		c.tlbs.FlushASID(asid)
	}
}

func (mm *machineMMU) PWCInvalidateVA(asid uint16, gva uint64) {
	for _, c := range mm.cores {
		if c.pwc != nil {
			c.pwc.InvalidateVA(asid, gva)
		}
	}
}

func (mm *machineMMU) PWCFlushASID(asid uint16) {
	for _, c := range mm.cores {
		if c.pwc != nil {
			c.pwc.FlushASID(asid)
		}
	}
}

func (mm *machineMMU) NTLBInvalidateGPA(vmid uint16, gpa uint64) {
	for _, c := range mm.cores {
		if c.ntlb != nil {
			c.ntlb.InvalidateGPA(vmid, gpa)
		}
	}
}

// nativePlatform implements guest.Platform for the unvirtualized machine.
type nativePlatform struct{ m *Machine }

func (p nativePlatform) NewProcessTable(asid uint16) (*pagetable.Table, error) {
	return pagetable.New(p.m.Mem, pagetable.HostSpace{Mem: p.m.Mem})
}

func (p nativePlatform) AllocPage(size pagetable.Size) (uint64, error) {
	n := int(size.Bytes() / memsim.FrameSize)
	f, err := p.m.Mem.AllocContiguousAligned(n, n)
	if err != nil {
		return 0, err
	}
	return f.Addr(), nil
}

func (p nativePlatform) FreePage(pa uint64, size pagetable.Size) {
	for off := uint64(0); off < size.Bytes(); off += memsim.FrameSize {
		_ = p.m.Mem.FreeFrame(memsim.FrameOf(pa + off))
	}
}

func (p nativePlatform) TLBInvalidate(asid uint16, va uint64) {
	for _, c := range p.m.cores {
		c.tlbs.InvalidatePage(asid, va)
		if c.pwc != nil {
			c.pwc.InvalidateVA(asid, va)
		}
	}
}

func (p nativePlatform) TLBInvalidateSpan(asid uint16, va uint64, size pagetable.Size) {
	// Natively a huge page is cached as one TLB entry and its walk shares
	// one set of PWC entries, so the span invalidation is a single INVLPG.
	p.TLBInvalidate(asid, va)
}

func (p nativePlatform) TLBFlush(asid uint16) {
	for _, c := range p.m.cores {
		c.tlbs.FlushASID(asid)
		if c.pwc != nil {
			c.pwc.FlushASID(asid)
		}
	}
}

func (p nativePlatform) StructuralEdit(asid uint16, va uint64, size pagetable.Size) {
	// A 2M rebuild invalidates 512 pages; Linux flushes the whole TLB once
	// a range invalidation exceeds its batching ceiling (33 pages), so
	// model the range invalidation as one full flush.
	p.TLBFlush(asid)
}

// virtPlatform implements guest.Platform inside the VM.
type virtPlatform struct{ m *Machine }

func (p virtPlatform) NewProcessTable(asid uint16) (*pagetable.Table, error) {
	ctx, err := p.m.VM.NewProcess(asid)
	if err != nil {
		return nil, err
	}
	if p.m.cfg.Technique == walker.ModeAgile {
		if p.m.cfg.UseSHSP {
			ctl, err := core.NewSHSP(ctx, p.m.cfg.SHSP)
			if err != nil {
				return nil, err
			}
			p.m.shsp[asid] = ctl
		} else {
			mgr, err := core.NewManager(ctx, p.m.cfg.Agile)
			if err != nil {
				return nil, err
			}
			p.m.managers[asid] = mgr
		}
	}
	return ctx.GPT(), nil
}

func (p virtPlatform) AllocPage(size pagetable.Size) (uint64, error) {
	return p.m.VM.AllocGPA(size)
}

func (p virtPlatform) FreePage(pa uint64, size pagetable.Size) {
	p.m.VM.FreeGPA(pa, size)
}

func (p virtPlatform) TLBInvalidate(asid uint16, va uint64) {
	if ctx, ok := p.m.VM.Context(asid); ok {
		ctx.GuestTLBFlush(va, false)
	}
}

func (p virtPlatform) TLBInvalidateSpan(asid uint16, va uint64, size pagetable.Size) {
	if ctx, ok := p.m.VM.Context(asid); ok {
		ctx.GuestTLBFlushSpan(va, size)
	}
}

func (p virtPlatform) TLBFlush(asid uint16) {
	if ctx, ok := p.m.VM.Context(asid); ok {
		ctx.GuestTLBFlush(0, true)
	}
}

func (p virtPlatform) StructuralEdit(asid uint16, va uint64, size pagetable.Size) {
	if ctx, ok := p.m.VM.Context(asid); ok {
		ctx.StructuralEdit(va, size)
	}
}
