package cpu

import (
	"testing"

	"agilepaging/internal/pagetable"
	"agilepaging/internal/walker"
	"agilepaging/internal/workload"
)

// TestCollapseUnderVirtualization is the regression pin for the
// collapse-under-shadow/agile panic ("memsim: read of non-table frame"): a
// THP collapse pruned a guest leaf table page while the VMM still held
// write-protect tracking and a shadow subtree for it, so the next guest-table
// allocation recycled the gPA into a half-shadowed, stale-tracked page and a
// later access dereferenced a switching entry into a foreign frame. The
// scripted recipe below reproduced the panic before the invalidation
// contract existed: hammer writes over a 2M span (accumulating shadow
// write-protect traps and, under agile, per-node write counts that plant
// switching entries at policy ticks), collapse the span, then force fresh
// guest-table allocations with a second region and touch everything again.
func TestCollapseUnderVirtualization(t *testing.T) {
	base := uint64(0x4000_0000)
	second := uint64(0x6000_0000)
	span := pagetable.Size2M.Bytes()

	script := setupOps(base, 2*span, pagetable.Size4K)
	// Write every 4K page of the first 2M span: each write is a shadow
	// write-protect trap, and under agile the trap counts drive the policy
	// toward planting switching entries on this very path.
	for off := uint64(0); off < span; off += 4096 {
		script = append(script, workload.Op{Kind: workload.OpAccess, PID: 0, VA: base + off, Write: true})
	}
	// COW the span and write half of it again so unsynced-COW bookkeeping is
	// live when the structural edit lands.
	script = append(script, workload.Op{Kind: workload.OpMarkCOW, PID: 0, VA: base})
	for off := uint64(0); off < span/2; off += 4096 {
		script = append(script, workload.Op{Kind: workload.OpAccess, PID: 0, VA: base + off, Write: true})
	}
	script = append(script, workload.Op{Kind: workload.OpCollapse, PID: 0, VA: base})
	// A second region forces fresh guest page-table pages, recycling the gPAs
	// the collapse freed — the pre-fix recipe for tripping stale tracking.
	script = append(script,
		workload.Op{Kind: workload.OpMmap, PID: 0, VA: second, Len: span, Size: pagetable.Size4K},
		workload.Op{Kind: workload.OpPopulate, PID: 0, VA: second},
	)
	for off := uint64(0); off < span; off += 4096 {
		script = append(script,
			workload.Op{Kind: workload.OpAccess, PID: 0, VA: second + off, Write: true},
			workload.Op{Kind: workload.OpAccess, PID: 0, VA: base + off, Write: off%8192 == 0},
		)
	}
	// Collapse the second span too, now that recycled pages back its tables.
	script = append(script, workload.Op{Kind: workload.OpCollapse, PID: 0, VA: second})
	for off := uint64(0); off < span; off += 4096 {
		script = append(script, workload.Op{Kind: workload.OpAccess, PID: 0, VA: second + off})
	}

	for _, tech := range []walker.Mode{walker.ModeNative, walker.ModeNested, walker.ModeShadow, walker.ModeAgile} {
		tech := tech
		t.Run(tech.String(), func(t *testing.T) {
			t.Parallel()
			cfg := smallConfig(tech, pagetable.Size4K)
			cfg.PolicyTickOps = 200 // several agile adaptation ticks before the collapse
			m := newMachine(t, cfg)
			mustRun(t, m, script)

			// Both collapses must have really happened, not been refused.
			if got := m.OS.Stats().Collapses; got != 2 {
				t.Fatalf("Collapses = %d, want 2", got)
			}
			for _, va := range []uint64{base, second} {
				p, err := m.OS.Process(0)
				if err != nil {
					t.Fatal(err)
				}
				res, ok := p.PT.TryLookup(va)
				if !ok || res.Size != pagetable.Size2M {
					t.Errorf("VA %#x not mapped as 2M after collapse (ok=%v size=%v)", va, ok, res.Size)
				}
			}
			// Under shadow-covered techniques the contract must have torn down
			// shadow state when the guest leaf tables were pruned.
			if tech == walker.ModeShadow || tech == walker.ModeAgile {
				if m.VM.Stats().ShadowEntriesZapped == 0 {
					t.Error("collapse pruned guest tables but zapped no shadow entries")
				}
			}
		})
	}
}
