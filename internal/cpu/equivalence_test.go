package cpu

import (
	"reflect"
	"testing"

	"agilepaging/internal/pagetable"
	"agilepaging/internal/telemetry"
	"agilepaging/internal/walker"
	"agilepaging/internal/workload"
)

// runUnbatched executes ops one Exec call at a time — the pre-batching
// reference path — on a machine with the L0 memo disabled.
func runUnbatched(t testing.TB, cfg Config, cores int, ops []workload.Op, epochLen int) (Report, *telemetry.Series) {
	t.Helper()
	cfg.DisableL0Memo = true
	if cores > cfg.Cores {
		cfg.Cores = cores
	}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rec := telemetry.NewRecorder(epochLen)
	m.SetTelemetry(rec)
	for i := range ops {
		if err := m.Exec(ops[i]); err != nil {
			t.Fatalf("unbatched op %d: %v", i, err)
		}
	}
	m.FlushTelemetry()
	return m.Report("ref"), rec.Series()
}

// runBatched executes the same ops through RunOps with the memo enabled —
// the production fast path.
func runBatched(t testing.TB, cfg Config, cores int, ops []workload.Op, epochLen int) (Report, *telemetry.Series) {
	t.Helper()
	if cores > cfg.Cores {
		cfg.Cores = cores
	}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rec := telemetry.NewRecorder(epochLen)
	m.SetTelemetry(rec)
	if err := m.RunOps(ops, 0); err != nil {
		t.Fatal(err)
	}
	m.FlushTelemetry()
	return m.Report("ref"), rec.Series()
}

func checkEquivalence(t testing.TB, cfg Config, prof workload.Profile, accesses int, seed int64) {
	t.Helper()
	ops := workload.Collect(workload.New(prof, cfg.PageSize, accesses, seed), -1)
	const epochLen = 97 // prime, so epoch edges land mid-burst
	want, wantSeries := runUnbatched(t, cfg, prof.Threads, ops, epochLen)
	got, gotSeries := runBatched(t, cfg, prof.Threads, ops, epochLen)
	if !reflect.DeepEqual(want, got) {
		t.Errorf("%s/%v: batched+memo report differs from per-op reference\nref:     %+v\nbatched: %+v",
			prof.Name, cfg.Technique, want, got)
	}
	if !reflect.DeepEqual(wantSeries.Epochs, gotSeries.Epochs) {
		t.Errorf("%s/%v: telemetry epoch series differ (ref %d epochs, batched %d)",
			prof.Name, cfg.Technique, len(wantSeries.Epochs), len(gotSeries.Epochs))
	}
}

// TestBatchedExecutionEquivalence pins the PR's core safety property: the
// batched dispatch loop plus the L0 translation memo produce reports and
// telemetry series bit-identical to per-op execution with the memo off, for
// every technique and for workloads that hammer each invalidation path
// (context-switch flushes, mmap churn unmaps, COW write-protects, reclaim).
func TestBatchedExecutionEquivalence(t *testing.T) {
	profiles := []workload.Profile{
		{
			Name: "zipf-hot", FootprintBytes: 4 << 20, Pattern: workload.PatternZipf,
			ZipfS: 1.2, WriteRatio: 0.3, PrePopulate: true,
		},
		{
			Name: "flush-heavy", FootprintBytes: 2 << 20, Pattern: workload.PatternUniform,
			WriteRatio: 0.5, Processes: 3, CtxSwitchEvery: 40,
		},
		{
			Name: "churn-cow", FootprintBytes: 2 << 20, Pattern: workload.PatternZipf,
			ZipfS: 1.1, WriteRatio: 0.4, MmapChurnEvery: 150, ChurnRegionBytes: 64 << 10,
			ChurnRegions: 3, CowEvery: 300, CowRegionBytes: 64 << 10,
		},
		{
			Name: "threaded", FootprintBytes: 2 << 20, Pattern: workload.PatternZipf,
			ZipfS: 1.0, WriteRatio: 0.2, Threads: 3, ReclaimEvery: 250, ReclaimPages: 16,
		},
		{
			Name: "thp-collapse", FootprintBytes: 4 << 20, Pattern: workload.PatternZipf,
			ZipfS: 1.1, WriteRatio: 0.3, CollapseEvery: 400, CowEvery: 550, CowRegionBytes: 64 << 10,
		},
	}
	for _, tech := range []walker.Mode{walker.ModeNative, walker.ModeNested, walker.ModeShadow, walker.ModeAgile} {
		for _, prof := range profiles {
			prof := prof
			t.Run(tech.String()+"/"+prof.Name, func(t *testing.T) {
				t.Parallel()
				cfg := smallConfig(tech, pagetable.Size4K)
				cfg.PolicyTickOps = 500 // exercise policy switching mid-stream
				checkEquivalence(t, cfg, prof, 4000, 42)
			})
		}
	}
}

// FuzzBatchedExecutionEquivalence drives the same property over fuzzer-chosen
// profile knobs and seeds.
func FuzzBatchedExecutionEquivalence(f *testing.F) {
	f.Add(int64(1), uint16(800), uint8(0), uint8(30), uint8(1), uint8(1), uint16(0), uint16(0), uint16(0), uint16(0))
	f.Add(int64(7), uint16(1200), uint8(3), uint8(60), uint8(2), uint8(2), uint16(50), uint16(200), uint16(300), uint16(0))
	f.Add(int64(99), uint16(600), uint8(2), uint8(10), uint8(3), uint8(1), uint16(25), uint16(0), uint16(150), uint16(0))
	f.Add(int64(21), uint16(1000), uint8(3), uint8(50), uint8(1), uint8(1), uint16(0), uint16(0), uint16(250), uint16(350))
	f.Fuzz(func(t *testing.T, seed int64, accesses uint16, techSel, writePct, procs, threads uint8, ctxEvery, churnEvery, cowEvery, collapseEvery uint16) {
		techs := []walker.Mode{walker.ModeNative, walker.ModeNested, walker.ModeShadow, walker.ModeAgile}
		tech := techs[int(techSel)%len(techs)]
		prof := workload.Profile{
			Name:           "fuzz",
			FootprintBytes: 2 << 20,
			Pattern:        workload.PatternZipf,
			ZipfS:          1.1,
			WriteRatio:     float64(writePct%101) / 100,
			Processes:      1 + int(procs%4),
			Threads:        1 + int(threads%4),
			CtxSwitchEvery: int(ctxEvery % 512),
			MmapChurnEvery: int(churnEvery % 1024),
			CowEvery:       int(cowEvery % 1024),
			CollapseEvery:  int(collapseEvery % 1024),
		}
		if prof.MmapChurnEvery > 0 {
			prof.ChurnRegionBytes, prof.ChurnRegions = 32<<10, 2
		}
		if prof.CowEvery > 0 {
			prof.CowRegionBytes = 32 << 10
		}
		if prof.Processes > 1 && prof.CtxSwitchEvery == 0 {
			prof.CtxSwitchEvery = 64
		}
		cfg := smallConfig(tech, pagetable.Size4K)
		cfg.PolicyTickOps = 400
		checkEquivalence(t, cfg, prof, 200+int(accesses%1200), seed)
	})
}

// TestL0MemoInvalidation checks every path that can retire a cached
// translation bumps the hierarchy generation and so makes the per-core memo
// stale before the next access could consult it.
func TestL0MemoInvalidation(t *testing.T) {
	base := uint64(0x4000_0000)
	setup := func(t *testing.T, tech walker.Mode) *Machine {
		t.Helper()
		m := newMachine(t, smallConfig(tech, pagetable.Size4K))
		mustRun(t, m, setupOps(base, 16<<12, pagetable.Size4K))
		if err := m.Access(base|0x40, false); err != nil {
			t.Fatal(err)
		}
		c := m.cores[0]
		if !c.l0.valid || c.l0.gen != c.tlbs.Gen() {
			t.Fatalf("memo not live after access: %+v gen=%d", c.l0, c.tlbs.Gen())
		}
		return m
	}

	t.Run("unmap", func(t *testing.T) {
		m := setup(t, walker.ModeNative)
		c := m.cores[0]
		if err := m.Exec(workload.Op{Kind: workload.OpMunmap, PID: 0, VA: base}); err != nil {
			t.Fatal(err)
		}
		if c.l0.gen == c.tlbs.Gen() {
			t.Error("munmap did not advance the TLB generation; memo would serve a stale page")
		}
	})

	t.Run("ctxswitch-asid", func(t *testing.T) {
		// TLB entries are ASID-tagged, so a context switch flushes nothing;
		// the memo's ASID guard is what keeps it from answering for the
		// wrong address space.
		m := setup(t, walker.ModeNative)
		c := m.cores[0]
		mustRun(t, m, []workload.Op{
			{Kind: workload.OpCreateProcess, PID: 1},
			{Kind: workload.OpCtxSwitch, PID: 1},
		})
		if c.l0.asid == c.regs.ASID {
			t.Error("memo ASID still matches after a context switch; it could answer for the wrong process")
		}
	})

	t.Run("write-protect-cow", func(t *testing.T) {
		m := setup(t, walker.ModeNative)
		c := m.cores[0]
		if err := m.Exec(workload.Op{Kind: workload.OpMarkCOW, PID: 0, VA: base}); err != nil {
			t.Fatal(err)
		}
		if c.l0.gen == c.tlbs.Gen() {
			t.Error("COW write-protect did not advance the TLB generation")
		}
		// A write through the stale memo must take the full path and succeed.
		if err := m.Access(base|0x80, true); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("tlb-gen-is-per-core", func(t *testing.T) {
		cfg := smallConfig(walker.ModeNative, pagetable.Size4K)
		cfg.Cores = 2
		m := newMachine(t, cfg)
		mustRun(t, m, []workload.Op{
			{Kind: workload.OpCreateProcess, PID: 0},
			{Kind: workload.OpMmap, PID: 0, VA: base, Len: 16 << 12, Size: pagetable.Size4K},
			{Kind: workload.OpPopulate, PID: 0, VA: base},
			{Kind: workload.OpCtxSwitch, PID: 0, Core: 0},
			{Kind: workload.OpCtxSwitch, PID: 0, Core: 1},
			{Kind: workload.OpAccess, PID: 0, Core: 0, VA: base | 0x40},
			{Kind: workload.OpAccess, PID: 0, Core: 1, VA: base | 0x40},
		})
		// A shootdown hits every core's hierarchy, so both memos go stale.
		if err := m.Exec(workload.Op{Kind: workload.OpMunmap, PID: 0, VA: base}); err != nil {
			t.Fatal(err)
		}
		for i, c := range m.cores {
			if c.l0.gen == c.tlbs.Gen() {
				t.Errorf("core %d memo survived a cross-core shootdown", i)
			}
		}
	})

	// Agile policy switches rebuild translation state; the memo must not
	// carry across one. Equivalence over an adaptation-heavy run proves it:
	// the memo-on batched run must match per-op memo-off bit for bit while
	// real mode switches happen.
	t.Run("agile-policy-switch", func(t *testing.T) {
		prof := workload.Profile{
			Name: "adapt", FootprintBytes: 4 << 20, Pattern: workload.PatternZipf,
			ZipfS: 0.8, WriteRatio: 0.4, MmapChurnEvery: 200,
			ChurnRegionBytes: 64 << 10, ChurnRegions: 2,
		}
		cfg := smallConfig(walker.ModeAgile, pagetable.Size4K)
		cfg.PolicyTickOps = 300
		ops := workload.Collect(workload.New(prof, cfg.PageSize, 6000, 7), -1)
		want, _ := runUnbatched(t, cfg, 1, ops, 1<<30)
		got, _ := runBatched(t, cfg, 1, ops, 1<<30)
		if !reflect.DeepEqual(want, got) {
			t.Errorf("agile adaptation run diverged with memo on:\nref:     %+v\nbatched: %+v", want, got)
		}
		if got.Agile.SwitchesToShadow+got.Agile.SwitchesToNested == 0 {
			t.Error("adaptation run exercised no policy switches; tighten the workload")
		}
	})
}
