//go:build !race

// Allocation guards for the construct-once/reset-many lifecycle. Excluded
// under the race detector, whose instrumentation perturbs allocation counts.

package cpu

import (
	"runtime"
	"testing"

	"agilepaging/internal/pagetable"
	"agilepaging/internal/walker"
	"agilepaging/internal/workload"
)

// allocOps is a short run that touches every run-state container: process
// creation, mapping, demand faults, writes, a context switch, an unmap.
func allocOps() []workload.Op {
	base := uint64(0x4000_0000)
	ops := append(setupOps(base, 32<<12, pagetable.Size4K),
		workload.Op{Kind: workload.OpCreateProcess, PID: 1},
		workload.Op{Kind: workload.OpMmap, PID: 1, VA: base, Len: 8 << 12, Size: pagetable.Size4K},
	)
	for i := uint64(0); i < 32; i++ {
		ops = append(ops, workload.Op{Kind: workload.OpAccess, PID: 0, VA: base + i<<12, Write: i%2 == 0})
	}
	ops = append(ops,
		workload.Op{Kind: workload.OpCtxSwitch, PID: 1},
		workload.Op{Kind: workload.OpAccess, PID: 1, VA: base + 0x80, Write: true},
		workload.Op{Kind: workload.OpCtxSwitch, PID: 0},
		workload.Op{Kind: workload.OpMunmap, PID: 1, VA: base},
	)
	return ops
}

// measuredAllocs runs dirty then op for iters iterations and returns the
// total mallocs charged to op alone. The dirtying work (which legitimately
// allocates — process structs, regions, table bookkeeping) happens outside
// the measured window, unlike testing.AllocsPerRun, which cannot split a
// cycle that way.
func measuredAllocs(iters int, dirty, op func()) uint64 {
	var before, after runtime.MemStats
	var total uint64
	for i := 0; i < iters; i++ {
		dirty()
		runtime.ReadMemStats(&before)
		op()
		runtime.ReadMemStats(&after)
		total += after.Mallocs - before.Mallocs
	}
	return total
}

// TestResetAllocFree pins the Reset() contract: once a machine's internal
// buffers have grown to a workload's high-water mark, Reset of the dirtied
// machine performs zero heap allocations.
func TestResetAllocFree(t *testing.T) {
	for _, tech := range []walker.Mode{walker.ModeNative, walker.ModeAgile} {
		t.Run(tech.String(), func(t *testing.T) {
			cfg := smallConfig(tech, pagetable.Size4K)
			m := newMachine(t, cfg)
			ops := allocOps()
			dirty := func() {
				for i := range ops {
					if err := m.Exec(ops[i]); err != nil {
						t.Fatalf("op %d: %v", i, err)
					}
				}
			}
			reset := func() {
				if err := m.Reset(cfg); err != nil {
					t.Fatal(err)
				}
			}
			// Warm-up cycle: grow maps, freelists, and scratch to capacity.
			dirty()
			reset()
			if allocs := measuredAllocs(10, dirty, reset); allocs != 0 {
				t.Errorf("%v: Reset of a dirtied machine allocated %d objects over 10 cycles, want 0", tech, allocs)
			}
		})
	}
}

// TestPooledReacquireAllocFree pins the pool's steady state: releasing a
// dirtied machine and reacquiring its geometry (which resets it) allocates
// nothing.
func TestPooledReacquireAllocFree(t *testing.T) {
	ResetMachinePool()
	t.Cleanup(func() {
		ResetMachinePool()
		SetMachinePoolCapacity(DefaultMachinePoolCapacity)
	})
	cfg := smallConfig(walker.ModeNested, pagetable.Size4K)
	m, err := AcquireMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ops := allocOps()
	dirty := func() {
		for i := range ops {
			if err := m.Exec(ops[i]); err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
		}
	}
	cycle := func() {
		ReleaseMachine(m)
		var aerr error
		if m, aerr = AcquireMachine(cfg); aerr != nil {
			t.Fatal(aerr)
		}
	}
	// Warm-up: the first release grows the idle slice, the first reacquire
	// grows reset-path buffers to this workload's high-water mark.
	dirty()
	cycle()
	if allocs := measuredAllocs(10, dirty, cycle); allocs != 0 {
		t.Errorf("release+reacquire of a dirtied machine allocated %d objects over 10 cycles, want 0", allocs)
	}
	if hits, misses, _, _ := MachinePoolStats(); misses != 1 || hits < 11 {
		t.Errorf("pool stats after steady-state loop: hits=%d misses=%d, want 1 miss and ≥11 hits", hits, misses)
	}
}
