package cpu

import (
	"errors"
	"reflect"
	"testing"

	"agilepaging/internal/pagetable"
	"agilepaging/internal/telemetry"
	"agilepaging/internal/walker"
	"agilepaging/internal/workload"
)

// runRecorded executes ops on m under a fresh telemetry recorder and returns
// the report plus the recorded epoch series.
func runRecorded(t testing.TB, m *Machine, ops []workload.Op, epochLen int) (Report, *telemetry.Series) {
	t.Helper()
	rec := telemetry.NewRecorder(epochLen)
	m.SetTelemetry(rec)
	if err := m.RunOps(ops, 0); err != nil {
		t.Fatal(err)
	}
	m.FlushTelemetry()
	return m.Report("lifecycle"), rec.Series()
}

// lifecycleProfiles stress every run-state container Reset must restore:
// flush-heavy multi-process switching (ASID churn, ctx-switch cache), mmap
// churn plus COW (unsynced-page state, shadow teardown), and threaded
// reclaim (per-core TLB state, clock reclaimer position).
var lifecycleProfiles = []workload.Profile{
	{
		Name: "zipf-hot", FootprintBytes: 4 << 20, Pattern: workload.PatternZipf,
		ZipfS: 1.2, WriteRatio: 0.3, PrePopulate: true,
	},
	{
		Name: "flush-heavy", FootprintBytes: 2 << 20, Pattern: workload.PatternUniform,
		WriteRatio: 0.5, Processes: 3, CtxSwitchEvery: 40,
	},
	{
		Name: "churn-cow", FootprintBytes: 2 << 20, Pattern: workload.PatternZipf,
		ZipfS: 1.1, WriteRatio: 0.4, MmapChurnEvery: 150, ChurnRegionBytes: 64 << 10,
		ChurnRegions: 3, CowEvery: 300, CowRegionBytes: 64 << 10,
	},
	{
		Name: "threaded", FootprintBytes: 2 << 20, Pattern: workload.PatternZipf,
		ZipfS: 1.0, WriteRatio: 0.2, Threads: 3, ReclaimEvery: 250, ReclaimPages: 16,
	},
	{
		Name: "thp-collapse", FootprintBytes: 4 << 20, Pattern: workload.PatternZipf,
		ZipfS: 1.1, WriteRatio: 0.3, CollapseEvery: 400, CowEvery: 550, CowRegionBytes: 64 << 10,
		ReclaimEvery: 700, ReclaimPages: 24,
	},
}

// checkResetEquivalence pins the Reset contract: a machine that already ran
// an arbitrary dirtying stream, once Reset, replays ops to a report and
// telemetry epoch series bit-identical to a freshly constructed machine's.
func checkResetEquivalence(t testing.TB, cfg Config, ops, dirty []workload.Op) {
	t.Helper()
	const epochLen = 97 // prime, so epoch edges land mid-burst
	fresh, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantRep, wantSeries := runRecorded(t, fresh, ops, epochLen)

	reused, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	runRecorded(t, reused, dirty, 64)
	if err := reused.Reset(cfg); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	gotRep, gotSeries := runRecorded(t, reused, ops, epochLen)
	if wantRep != gotRep {
		t.Errorf("%v: post-Reset report differs from fresh machine\nfresh: %+v\nreset: %+v",
			cfg.Technique, wantRep, gotRep)
	}
	if !reflect.DeepEqual(wantSeries.Epochs, gotSeries.Epochs) {
		t.Errorf("%v: post-Reset telemetry epochs differ (fresh %d epochs, reset %d)",
			cfg.Technique, len(wantSeries.Epochs), len(gotSeries.Epochs))
	}

	// Reset is idempotent over the machine's lifetime: a second
	// reset-and-replay must reproduce the same run again.
	if err := reused.Reset(cfg); err != nil {
		t.Fatalf("second Reset: %v", err)
	}
	againRep, againSeries := runRecorded(t, reused, ops, epochLen)
	if wantRep != againRep {
		t.Errorf("%v: second post-Reset replay drifted\nfresh:  %+v\nsecond: %+v",
			cfg.Technique, wantRep, againRep)
	}
	if !reflect.DeepEqual(wantSeries.Epochs, againSeries.Epochs) {
		t.Errorf("%v: second post-Reset telemetry epochs drifted", cfg.Technique)
	}
}

// TestResetVsFreshEquivalence is the correctness pin of the
// construct-once/reset-many lifecycle: New→Run ≡ New→Run→Reset→Run,
// bit-identically, for every technique and for workloads that populate every
// piece of run state Reset tears down.
func TestResetVsFreshEquivalence(t *testing.T) {
	for _, tech := range []walker.Mode{walker.ModeNative, walker.ModeNested, walker.ModeShadow, walker.ModeAgile} {
		for _, prof := range lifecycleProfiles {
			prof := prof
			tech := tech
			t.Run(tech.String()+"/"+prof.Name, func(t *testing.T) {
				t.Parallel()
				cfg := smallConfig(tech, pagetable.Size4K)
				cfg.PolicyTickOps = 500 // exercise policy switching mid-stream
				ops := workload.Collect(workload.New(prof, cfg.PageSize, 3000, 42), -1)
				// Dirty with a different stream than the one replayed, so
				// leftover state cannot hide by coincidence.
				dirtyProf := lifecycleProfiles[0]
				if prof.Name == dirtyProf.Name {
					dirtyProf = lifecycleProfiles[1]
				}
				dirty := workload.Collect(workload.New(dirtyProf, cfg.PageSize, 1500, 99), -1)
				checkResetEquivalence(t, cfg, ops, dirty)
			})
		}
	}
}

// TestResetVsFreshScriptedReplay drives the same property over a scripted
// scenario-style op list (explicit COW snapshots, reclaim, THP collapse,
// multi-process switching) rather than a generated stream — the op kinds a
// Scenario replay exercises.
func TestResetVsFreshScriptedReplay(t *testing.T) {
	base := uint64(0x4000_0000)
	other := uint64(0x7f00_0000_0000)
	dirty := append(setupOps(base, 32<<12, pagetable.Size4K), workload.Op{Kind: workload.OpAccess, PID: 0, VA: base})
	for _, tech := range []walker.Mode{walker.ModeNative, walker.ModeNested, walker.ModeShadow, walker.ModeAgile} {
		tech := tech
		t.Run(tech.String(), func(t *testing.T) {
			t.Parallel()
			checkResetEquivalence(t, smallConfig(tech, pagetable.Size4K), scriptedReplayOps(base, other), dirty)
		})
	}
}

// scriptedReplayOps builds a deterministic scenario-style op list exercising
// explicit COW snapshots, reclaim, THP collapse, and multi-process switching.
func scriptedReplayOps(base, other uint64) []workload.Op {
	script := []workload.Op{
		{Kind: workload.OpCreateProcess, PID: 0},
		{Kind: workload.OpMmap, PID: 0, VA: base, Len: 512 << 12, Size: pagetable.Size4K},
		{Kind: workload.OpPopulate, PID: 0, VA: base},
		{Kind: workload.OpCreateProcess, PID: 1},
		{Kind: workload.OpMmap, PID: 1, VA: other, Len: 64 << 12, Size: pagetable.Size4K},
		{Kind: workload.OpCtxSwitch, PID: 0},
	}
	for i := uint64(0); i < 64; i++ {
		script = append(script, workload.Op{Kind: workload.OpAccess, PID: 0, VA: base + i<<12, Write: i%3 == 0})
	}
	script = append(script,
		workload.Op{Kind: workload.OpMarkCOW, PID: 0, VA: base},
		workload.Op{Kind: workload.OpAccess, PID: 0, VA: base + 5<<12, Write: true}, // COW break
		workload.Op{Kind: workload.OpCtxSwitch, PID: 1},
		workload.Op{Kind: workload.OpAccess, PID: 1, VA: other + 0x40, Write: true},
		workload.Op{Kind: workload.OpCtxSwitch, PID: 0},
		workload.Op{Kind: workload.OpCollapse, PID: 0, VA: base &^ (uint64(1)<<21 - 1)},
		workload.Op{Kind: workload.OpAccess, PID: 0, VA: base + 9<<12},
		workload.Op{Kind: workload.OpReclaim, PID: 0, N: 32},
		workload.Op{Kind: workload.OpAccess, PID: 0, VA: base + 17<<12, Write: true},
		workload.Op{Kind: workload.OpMunmap, PID: 1, VA: other},
	)
	return script
}

// FuzzResetVsFreshEquivalence drives the Reset contract over fuzzer-chosen
// profile knobs, seeds, and techniques.
func FuzzResetVsFreshEquivalence(f *testing.F) {
	f.Add(int64(1), uint16(800), uint8(3), uint8(30), uint8(1), uint16(0), uint16(0), uint16(0))
	f.Add(int64(7), uint16(1200), uint8(1), uint8(60), uint8(3), uint16(50), uint16(200), uint16(0))
	f.Add(int64(99), uint16(600), uint8(2), uint8(10), uint8(2), uint16(25), uint16(150), uint16(0))
	f.Add(int64(13), uint16(900), uint8(3), uint8(40), uint8(2), uint16(40), uint16(0), uint16(300))
	f.Fuzz(func(t *testing.T, seed int64, accesses uint16, techSel, writePct, procs uint8, ctxEvery, churnEvery, collapseEvery uint16) {
		techs := []walker.Mode{walker.ModeNative, walker.ModeNested, walker.ModeShadow, walker.ModeAgile}
		tech := techs[int(techSel)%len(techs)]
		prof := workload.Profile{
			Name:           "fuzz",
			FootprintBytes: 2 << 20,
			Pattern:        workload.PatternZipf,
			ZipfS:          1.1,
			WriteRatio:     float64(writePct%101) / 100,
			Processes:      1 + int(procs%4),
			CtxSwitchEvery: int(ctxEvery % 512),
			MmapChurnEvery: int(churnEvery % 1024),
			CollapseEvery:  int(collapseEvery % 1024),
		}
		if prof.MmapChurnEvery > 0 {
			prof.ChurnRegionBytes, prof.ChurnRegions = 32<<10, 2
		}
		if prof.Processes > 1 && prof.CtxSwitchEvery == 0 {
			prof.CtxSwitchEvery = 64
		}
		cfg := smallConfig(tech, pagetable.Size4K)
		cfg.PolicyTickOps = 400
		n := 200 + int(accesses%1200)
		ops := workload.Collect(workload.New(prof, cfg.PageSize, n, seed), -1)
		dirty := workload.Collect(workload.New(prof, cfg.PageSize, n/2+1, seed+1), -1)
		checkResetEquivalence(t, cfg, ops, dirty)
	})
}

// TestResetRejectsGeometryChange pins the Reset/New boundary: any field that
// sizes an immutable structure forces a rebuild.
func TestResetRejectsGeometryChange(t *testing.T) {
	cfg := smallConfig(walker.ModeAgile, pagetable.Size4K)
	m := newMachine(t, cfg)
	mutations := map[string]func(*Config){
		"technique":    func(c *Config) { c.Technique = walker.ModeNested },
		"pagesize":     func(c *Config) { c.PageSize = pagetable.Size2M },
		"membytes":     func(c *Config) { c.MemBytes *= 2 },
		"guestram":     func(c *Config) { c.GuestRAMBytes *= 2 },
		"tlb-shape":    func(c *Config) { c.TLB.L1D4K.Entries *= 2 },
		"tlb-scale":    func(c *Config) { c.TLBScale *= 2 },
		"pwc-toggle":   func(c *Config) { c.EnablePWC = !c.EnablePWC },
		"ntlb-entries": func(c *Config) { c.NTLBEntries = 64 },
		"cores":        func(c *Config) { c.Cores += 2 },
	}
	for name, mutate := range mutations {
		changed := cfg
		mutate(&changed)
		if err := m.Reset(changed); !errors.Is(err, ErrGeometryChange) {
			t.Errorf("%s: Reset = %v, want ErrGeometryChange", name, err)
		}
	}
	// A rejected Reset leaves the machine untouched and usable.
	base := uint64(0x4000_0000)
	mustRun(t, m, append(setupOps(base, 4<<12, pagetable.Size4K),
		workload.Op{Kind: workload.OpAccess, PID: 0, VA: base}))
	if m.Stats().Accesses != 1 {
		t.Errorf("machine unusable after rejected Reset: %+v", m.Stats())
	}
}

// TestResetAdoptsRunParameters checks Reset takes over every non-geometry
// knob — the sensitivity sweeps revisit one geometry with different cost
// models and policies, so pooled machines must honor the new values.
func TestResetAdoptsRunParameters(t *testing.T) {
	cfg := smallConfig(walker.ModeAgile, pagetable.Size4K)
	m := newMachine(t, cfg)
	changed := cfg
	changed.AccessCycles = cfg.AccessCycles + 3
	changed.MemRefCycles = cfg.MemRefCycles + 10
	changed.HardwareAD = !cfg.HardwareAD
	changed.PolicyTickOps = 0 // must normalize to the documented default
	if err := m.Reset(changed); err != nil {
		t.Fatalf("Reset with run-parameter changes: %v", err)
	}
	got := m.Config()
	if got.AccessCycles != changed.AccessCycles || got.MemRefCycles != changed.MemRefCycles || got.HardwareAD != changed.HardwareAD {
		t.Errorf("Config() after Reset = %+v, want adopted run parameters", got)
	}
	if got.PolicyTickOps != 20_000 {
		t.Errorf("PolicyTickOps not normalized on Reset: %d", got.PolicyTickOps)
	}
}

// TestConfigNormalizationRoundTrip pins the satellite fix: New stores the
// normalized config, so Machine.Config() round-trips through New and Reset
// with every default materialized.
func TestConfigNormalizationRoundTrip(t *testing.T) {
	cfg := smallConfig(walker.ModeNested, pagetable.Size4K)
	cfg.NTLBEntries = 0
	cfg.PolicyTickOps = 0
	cfg.Cores = 0
	m := newMachine(t, cfg)
	got := m.Config()
	if got.NTLBEntries != 32 || got.PolicyTickOps != 20_000 || got.Cores != 1 {
		t.Errorf("Config() defaults not materialized: NTLBEntries=%d PolicyTickOps=%d Cores=%d",
			got.NTLBEntries, got.PolicyTickOps, got.Cores)
	}
	// Round-trip: rebuilding from the returned config is a no-op change.
	m2 := newMachine(t, got)
	if m2.Config() != got {
		t.Errorf("Config() does not round-trip:\nfirst:  %+v\nsecond: %+v", got, m2.Config())
	}
	if got.Geometry() != cfg.Geometry() {
		t.Error("normalization changed the geometry key")
	}
}

// TestMachinePool exercises the acquire/release/stats lifecycle of the
// geometry-keyed pool.
func TestMachinePool(t *testing.T) {
	ResetMachinePool()
	t.Cleanup(func() {
		ResetMachinePool()
		SetMachinePoolCapacity(DefaultMachinePoolCapacity)
	})
	cfg := smallConfig(walker.ModeNested, pagetable.Size4K)

	m1, err := AcquireMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if hits, misses, _, idle := MachinePoolStats(); hits != 0 || misses != 1 || idle != 0 {
		t.Fatalf("after first acquire: hits=%d misses=%d idle=%d", hits, misses, idle)
	}

	// Dirty the machine, release it, and reacquire: same object, reset state.
	base := uint64(0x4000_0000)
	mustRun(t, m1, append(setupOps(base, 8<<12, pagetable.Size4K),
		workload.Op{Kind: workload.OpAccess, PID: 0, VA: base}))
	ReleaseMachine(m1)
	if _, _, _, idle := MachinePoolStats(); idle != 1 {
		t.Fatalf("idle after release = %d, want 1", idle)
	}
	m2, err := AcquireMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m2 != m1 {
		t.Error("matching-geometry acquire did not reuse the pooled machine")
	}
	if m2.Stats() != (Stats{}) {
		t.Errorf("pooled machine not reset: %+v", m2.Stats())
	}
	if hits, misses, _, _ := MachinePoolStats(); hits != 1 || misses != 1 {
		t.Errorf("after reacquire: hits=%d misses=%d", hits, misses)
	}

	// A different geometry misses even with an idle machine pooled.
	ReleaseMachine(m2)
	other := cfg
	other.PageSize = pagetable.Size2M
	m3, err := AcquireMachine(other)
	if err != nil {
		t.Fatal(err)
	}
	if m3 == m1 {
		t.Error("acquire with different geometry returned the pooled machine")
	}
	if hits, misses, _, idle := MachinePoolStats(); hits != 1 || misses != 2 || idle != 1 {
		t.Errorf("after cross-geometry acquire: hits=%d misses=%d idle=%d", hits, misses, idle)
	}

	// Capacity 0 disables pooling: idle machines are evicted and further
	// releases are retired.
	SetMachinePoolCapacity(0)
	if _, _, _, idle := MachinePoolStats(); idle != 0 {
		t.Errorf("idle after disabling pool = %d, want 0", idle)
	}
	ReleaseMachine(m3)
	if _, _, retired, idle := MachinePoolStats(); retired != 1 || idle != 0 {
		t.Errorf("release into disabled pool: retired=%d idle=%d", retired, idle)
	}
	ReleaseMachine(nil) // no-op
}

// TestPooledRunEquivalence pins the end-to-end pool contract: a run on a
// reacquired machine reports bit-identically to a run on a fresh one.
func TestPooledRunEquivalence(t *testing.T) {
	ResetMachinePool()
	t.Cleanup(func() {
		ResetMachinePool()
		SetMachinePoolCapacity(DefaultMachinePoolCapacity)
	})
	cfg := smallConfig(walker.ModeAgile, pagetable.Size4K)
	ops := workload.Collect(workload.New(lifecycleProfiles[1], cfg.PageSize, 2000, 7), -1)

	fresh := newMachine(t, cfg)
	want, _ := runRecorded(t, fresh, ops, 97)

	m1, err := AcquireMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	runRecorded(t, m1, ops, 97)
	ReleaseMachine(m1)
	m2, err := AcquireMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m2 != m1 {
		t.Fatal("expected pooled reuse")
	}
	got, _ := runRecorded(t, m2, ops, 97)
	if want != got {
		t.Errorf("pooled rerun differs from fresh machine\nfresh:  %+v\npooled: %+v", want, got)
	}
}
