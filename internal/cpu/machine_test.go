package cpu

import (
	"testing"

	"agilepaging/internal/core"
	"agilepaging/internal/pagetable"
	"agilepaging/internal/walker"
	"agilepaging/internal/workload"
)

// smallConfig returns a machine config with modest memory for tests.
func smallConfig(t walker.Mode, ps pagetable.Size) Config {
	cfg := DefaultConfig(t, ps)
	cfg.MemBytes = 512 << 20
	cfg.GuestRAMBytes = 128 << 20
	return cfg
}

// setupOps creates process 0 with one mapped region and switches to it.
func setupOps(base, length uint64, ps pagetable.Size) []workload.Op {
	return []workload.Op{
		{Kind: workload.OpCreateProcess, PID: 0},
		{Kind: workload.OpMmap, PID: 0, VA: base, Len: length, Size: ps},
		{Kind: workload.OpPopulate, PID: 0, VA: base},
		{Kind: workload.OpCtxSwitch, PID: 0},
	}
}

func mustRun(t *testing.T, m *Machine, ops []workload.Op) {
	t.Helper()
	if err := m.Run(workload.NewFromOps("test", ops)); err != nil {
		t.Fatal(err)
	}
}

func newMachine(t *testing.T, cfg Config) *Machine {
	t.Helper()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNativeAccessLifecycle(t *testing.T) {
	m := newMachine(t, smallConfig(walker.ModeNative, pagetable.Size4K))
	base := uint64(0x4000_0000)
	ops := append(setupOps(base, 16<<12, pagetable.Size4K),
		workload.Op{Kind: workload.OpAccess, PID: 0, VA: base + 0x123},
		workload.Op{Kind: workload.OpAccess, PID: 0, VA: base + 0x456}, // TLB hit
		workload.Op{Kind: workload.OpAccess, PID: 0, VA: base + 0x1000, Write: true},
	)
	mustRun(t, m, ops)
	s := m.Stats()
	if s.Accesses != 3 || s.Writes != 1 {
		t.Errorf("accesses/writes = %d/%d", s.Accesses, s.Writes)
	}
	if s.TLBMisses != 2 {
		t.Errorf("TLB misses = %d, want 2", s.TLBMisses)
	}
	// First miss: cold walk, 4 refs. Second miss: PWC hit, 1 ref.
	if s.WalkRefs != 5 {
		t.Errorf("walk refs = %d, want 5", s.WalkRefs)
	}
	r := m.Report("t")
	if r.WalkCycles != 5*m.Config().MemRefCycles {
		t.Errorf("walk cycles = %d", r.WalkCycles)
	}
	if r.VMMCycles != 0 {
		t.Errorf("native run charged VMM cycles: %d", r.VMMCycles)
	}
	// Hardware set A on the touched page and D on the written one.
	p, _ := m.OS.Process(0)
	res, _ := p.PT.Lookup(base)
	if !res.Entry.Accessed() {
		t.Error("A bit not set by native walker")
	}
	res, _ = p.PT.Lookup(base + 0x1000)
	if !res.Entry.Dirty() {
		t.Error("D bit not set by native walker on store")
	}
}

func TestAccessBeforeScheduleFails(t *testing.T) {
	m := newMachine(t, smallConfig(walker.ModeNative, pagetable.Size4K))
	if err := m.Access(0x1000, false); err == nil {
		t.Fatal("access with no process should fail")
	}
}

func TestNativeDemandFaultAndSegfault(t *testing.T) {
	m := newMachine(t, smallConfig(walker.ModeNative, pagetable.Size4K))
	base := uint64(0x4000_0000)
	ops := []workload.Op{
		{Kind: workload.OpCreateProcess, PID: 0},
		{Kind: workload.OpMmap, PID: 0, VA: base, Len: 8 << 12, Size: pagetable.Size4K},
		{Kind: workload.OpCtxSwitch, PID: 0},
		{Kind: workload.OpAccess, PID: 0, VA: base}, // demand fault
	}
	mustRun(t, m, ops)
	if m.Stats().GuestPageFaults != 1 {
		t.Errorf("page faults = %d", m.Stats().GuestPageFaults)
	}
	if err := m.Access(0xdead_0000_0000, false); err == nil {
		t.Fatal("segfault not reported")
	}
}

func TestVirtualizedTechniques(t *testing.T) {
	base := uint64(0x4000_0000)
	for _, tech := range []walker.Mode{walker.ModeNested, walker.ModeShadow, walker.ModeAgile} {
		t.Run(tech.String(), func(t *testing.T) {
			m := newMachine(t, smallConfig(tech, pagetable.Size4K))
			ops := append(setupOps(base, 64<<12, pagetable.Size4K),
				workload.Op{Kind: workload.OpAccess, PID: 0, VA: base},
				workload.Op{Kind: workload.OpAccess, PID: 0, VA: base + 0x2000, Write: true},
				workload.Op{Kind: workload.OpAccess, PID: 0, VA: base + 0x2100, Write: true},
			)
			mustRun(t, m, ops)
			s := m.Stats()
			if s.Accesses != 3 {
				t.Errorf("accesses = %d", s.Accesses)
			}
			r := m.Report("t")
			if tech == walker.ModeNested && r.VMM.TotalTraps() != 0 {
				t.Errorf("nested run trapped: %+v", r.VMM.Traps)
			}
			if tech != walker.ModeNested {
				if r.VMM.Traps[1] == 0 && r.VMM.Traps[0] == 0 {
					t.Errorf("shadow-family run has no fills/PT traps: %+v", r.VMM.Traps)
				}
				if r.VMMCycles == 0 {
					t.Error("no VMM cycles charged")
				}
			}
		})
	}
}

func TestShadowCOWCostsTwoTrapsPerPage(t *testing.T) {
	m := newMachine(t, smallConfig(walker.ModeShadow, pagetable.Size4K))
	base := uint64(0x4000_0000)
	pages := uint64(4)
	ops := setupOps(base, pages<<12, pagetable.Size4K)
	// Touch every page so the shadow table covers it (and traps are from
	// COW, not initial fills).
	for i := uint64(0); i < pages; i++ {
		ops = append(ops, workload.Op{Kind: workload.OpAccess, PID: 0, VA: base + i<<12})
	}
	mustRun(t, m, ops)
	pre := m.VM.Stats()
	mustRun(t, m, []workload.Op{{Kind: workload.OpMarkCOW, PID: 0, VA: base}})
	post := m.VM.Stats()
	ptw := post.Traps[1] - pre.Traps[1]   // TrapPTWrite
	flush := post.Traps[4] - pre.Traps[4] // TrapTLBFlush
	if ptw != uint64(pages) || flush != uint64(pages) {
		t.Errorf("COW marking: %d PT-write + %d flush traps, want %d+%d (paper §II-B)", ptw, flush, pages, pages)
	}
	// Writing a COW page now: guest fault, COW break, more traps, and the
	// data converges to a writable mapping.
	mustRun(t, m, []workload.Op{{Kind: workload.OpAccess, PID: 0, VA: base, Write: true}})
	if m.OS.Stats().COWBreaks != 1 {
		t.Errorf("COW breaks = %d", m.OS.Stats().COWBreaks)
	}
}

func TestAgileConvergesToCheapWalks(t *testing.T) {
	cfg := smallConfig(walker.ModeAgile, pagetable.Size4K)
	cfg.EnablePWC = false
	cfg.EnableNTLB = false
	m := newMachine(t, cfg)
	base := uint64(0x4000_0000)
	ops := setupOps(base, 256<<12, pagetable.Size4K)
	mustRun(t, m, ops)
	// Phase 1: repeated accesses, no churn => stays in shadow: walks cost 4.
	for i := 0; i < 3; i++ {
		mustRun(t, m, []workload.Op{{Kind: workload.OpAccess, PID: 0, VA: base + uint64(i)<<12}})
	}
	w := m.Walker.Stats()
	if w.ByNestedLevels[0] == 0 {
		t.Error("no full-shadow walks")
	}
	// Phase 2: demand faults in an unpopulated region keep writing PTEs in
	// one leaf table; the write threshold flips it to nested mode.
	churn := uint64(0x9000_0000)
	mustRun(t, m, []workload.Op{{Kind: workload.OpMmap, PID: 0, VA: churn, Len: 16 << 12, Size: pagetable.Size4K}})
	for i := 0; i < 6; i++ {
		mustRun(t, m, []workload.Op{{Kind: workload.OpAccess, PID: 0, VA: churn + uint64(i)<<12, Write: true}})
	}
	mgr := m.Managers()[asidFor(0)]
	if mgr == nil {
		t.Fatal("no agile manager")
	}
	if mgr.NestedNodes() == 0 {
		t.Error("agile manager never switched any node to nested")
	}
	// Walks in the churned region now switch at the leaf (8 refs each).
	if m.Walker.Stats().ByNestedLevels[1] == 0 {
		t.Error("no switched walks observed")
	}
}

func TestContextSwitchUpdatesRegs(t *testing.T) {
	m := newMachine(t, smallConfig(walker.ModeShadow, pagetable.Size4K))
	ops := []workload.Op{
		{Kind: workload.OpCreateProcess, PID: 0},
		{Kind: workload.OpCreateProcess, PID: 1},
		{Kind: workload.OpMmap, PID: 0, VA: 0x1000_0000, Len: 1 << 12, Size: pagetable.Size4K},
		{Kind: workload.OpMmap, PID: 1, VA: 0x2000_0000, Len: 1 << 12, Size: pagetable.Size4K},
		{Kind: workload.OpCtxSwitch, PID: 0},
		{Kind: workload.OpAccess, PID: 0, VA: 0x1000_0000},
		{Kind: workload.OpCtxSwitch, PID: 1},
		{Kind: workload.OpAccess, PID: 1, VA: 0x2000_0000},
	}
	mustRun(t, m, ops)
	if m.Stats().CtxSwitches != 2 {
		t.Errorf("ctx switches = %d", m.Stats().CtxSwitches)
	}
	if got := m.VM.Stats().Traps[3]; got < 2 { // TrapContextSwitch
		t.Errorf("context switch traps = %d, want >= 2", got)
	}
	if m.Regs().ASID != asidFor(1) {
		t.Errorf("regs.ASID = %d", m.Regs().ASID)
	}
}

func TestProfilesRunAllTechniques(t *testing.T) {
	if testing.Short() {
		t.Skip("full profile sweep in long mode only")
	}
	prof, _ := workload.ProfileByName("dedup")
	for _, tech := range []walker.Mode{walker.ModeNative, walker.ModeNested, walker.ModeShadow, walker.ModeAgile} {
		for _, ps := range []pagetable.Size{pagetable.Size4K, pagetable.Size2M} {
			m := newMachine(t, smallConfig(tech, ps))
			gen := workload.New(prof, ps, 5_000, 42)
			if err := m.Run(gen); err != nil {
				t.Fatalf("%v/%v: %v", tech, ps, err)
			}
			r := m.Report(prof.Name)
			if r.Machine.Accesses == 0 || r.IdealCycles == 0 {
				t.Fatalf("%v/%v: empty report", tech, ps)
			}
		}
	}
}

func TestReportDerivations(t *testing.T) {
	r := Report{IdealCycles: 1000, WalkCycles: 300, VMMCycles: 200}
	if r.ExecCycles() != 1500 {
		t.Error("ExecCycles")
	}
	if r.WalkOverhead() != 0.3 || r.VMMOverhead() != 0.2 || r.TotalOverhead() != 0.5 {
		t.Error("overheads")
	}
	r.Machine.TLBMisses = 10
	r.Machine.WalkRefs = 45
	if r.AvgRefsPerMiss() != 4.5 {
		t.Error("AvgRefsPerMiss")
	}
	r.Machine.Accesses = 1000
	if r.MPKI() != 10 {
		t.Error("MPKI")
	}
	if r.String() == "" {
		t.Error("String")
	}
	if (Report{}).WalkOverhead() != 0 || (Report{}).AvgRefsPerMiss() != 0 || (Report{}).MPKI() != 0 {
		t.Error("zero-value derivations should be 0")
	}
}

func TestReclaimUnderShadowTrapsButNotNested(t *testing.T) {
	base := uint64(0x4000_0000)
	traps := map[walker.Mode]uint64{}
	for _, tech := range []walker.Mode{walker.ModeNested, walker.ModeShadow} {
		m := newMachine(t, smallConfig(tech, pagetable.Size4K))
		ops := setupOps(base, 32<<12, pagetable.Size4K)
		for i := uint64(0); i < 32; i++ {
			ops = append(ops, workload.Op{Kind: workload.OpAccess, PID: 0, VA: base + i<<12})
		}
		ops = append(ops, workload.Op{Kind: workload.OpReclaim, PID: 0, N: 32})
		mustRun(t, m, ops)
		traps[tech] = m.VM.Stats().TotalTraps()
	}
	if traps[walker.ModeNested] != 0 {
		t.Errorf("nested reclaim trapped %d times", traps[walker.ModeNested])
	}
	if traps[walker.ModeShadow] == 0 {
		t.Error("shadow reclaim did not trap")
	}
}

func Test2MConfigsWork(t *testing.T) {
	base := uint64(0x4000_0000)
	for _, tech := range []walker.Mode{walker.ModeNative, walker.ModeNested, walker.ModeShadow, walker.ModeAgile} {
		m := newMachine(t, smallConfig(tech, pagetable.Size2M))
		ops := append(setupOps(base, 8<<21, pagetable.Size2M),
			workload.Op{Kind: workload.OpAccess, PID: 0, VA: base + 0x12345, Write: true},
		)
		mustRun(t, m, ops)
		if m.Stats().Accesses != 1 {
			t.Fatalf("%v: run failed", tech)
		}
	}
}

func TestRefsHistogramTracksWalks(t *testing.T) {
	cfg := smallConfig(walker.ModeNested, pagetable.Size4K)
	cfg.EnablePWC = false
	cfg.EnableNTLB = false
	m := newMachine(t, cfg)
	base := uint64(0x4000_0000)
	ops := setupOps(base, 512<<12, pagetable.Size4K)
	for i := uint64(0); i < 512; i++ {
		ops = append(ops, workload.Op{Kind: workload.OpAccess, PID: 0, VA: base + i<<12})
	}
	mustRun(t, m, ops)
	h := m.RefsHist()
	if h.Count() == 0 {
		t.Fatal("histogram empty")
	}
	// All cold nested walks without MMU caches cost exactly 24 references.
	if h.Fraction(24) != 1.0 {
		t.Errorf("nested no-cache walks: %s", h)
	}
	r := m.Report("t")
	if r.RefsP50 != 24 || r.RefsP95 != 24 || r.RefsMax != 24 {
		t.Errorf("report percentiles = %d/%d/%d", r.RefsP50, r.RefsP95, r.RefsMax)
	}
	m.ResetMeasurement()
	if m.RefsHist().Count() != 0 {
		t.Error("histogram survived measurement reset")
	}
}

func TestSHSPBaselineMachine(t *testing.T) {
	cfg := smallConfig(walker.ModeAgile, pagetable.Size4K)
	cfg.UseSHSP = true
	m := newMachine(t, cfg)
	base := uint64(0x4000_0000)
	ops := setupOps(base, 64<<12, pagetable.Size4K)
	for i := uint64(0); i < 64; i++ {
		ops = append(ops, workload.Op{Kind: workload.OpAccess, PID: 0, VA: base + i<<12})
	}
	mustRun(t, m, ops)
	ctls := m.SHSPControllers()
	if len(ctls) != 1 {
		t.Fatalf("SHSP controllers = %d", len(ctls))
	}
	if len(m.Managers()) != 0 {
		t.Error("agile manager created alongside SHSP")
	}
	// SHSP starts the process fully nested: 24-ref cold walks (with MMU
	// caches partial, but the first walk is fully cold).
	if m.RefsHist().Max() != 24 {
		t.Errorf("max refs = %d, want 24 (nested start)", m.RefsHist().Max())
	}
	if m.Clock() == 0 {
		t.Error("clock did not advance")
	}
	rep := m.Report("t")
	if rep.SHSP.ToShadow+rep.SHSP.ToNested+rep.SHSP.Rebuilds != ctlsTotal(ctls) {
		t.Error("report does not aggregate SHSP stats")
	}
}

func ctlsTotal(ctls map[uint16]*core.SHSP) uint64 {
	var n uint64
	for _, c := range ctls {
		s := c.Stats()
		n += s.ToShadow + s.ToNested + s.Rebuilds
	}
	return n
}

func TestContextSwitchConvenienceWrapper(t *testing.T) {
	m := newMachine(t, smallConfig(walker.ModeNative, pagetable.Size4K))
	if _, err := m.OS.CreateProcess(0, asidFor(0)); err != nil {
		t.Fatal(err)
	}
	if err := m.ContextSwitch(0); err != nil {
		t.Fatal(err)
	}
	if m.Regs().ASID != asidFor(0) {
		t.Error("ContextSwitch did not install regs on core 0")
	}
}

func TestInstructionFetchUsesITLB(t *testing.T) {
	m := newMachine(t, smallConfig(walker.ModeNative, pagetable.Size4K))
	code := uint64(0x0040_0000)
	ops := setupOps(code, 8<<12, pagetable.Size4K)
	mustRun(t, m, ops)
	// A fetch misses, walks, and fills the I-side arrays.
	if err := m.Fetch(0, code); err != nil {
		t.Fatal(err)
	}
	if m.Stats().TLBMisses != 1 {
		t.Fatalf("fetch misses = %d", m.Stats().TLBMisses)
	}
	// Re-fetch hits the ITLB; a data access to the same page still misses
	// in L1 (separate arrays) but hits the unified L2.
	if err := m.Fetch(0, code); err != nil {
		t.Fatal(err)
	}
	if m.Stats().TLBMisses != 1 {
		t.Error("warm fetch missed")
	}
	pre := m.Report("t").TLB
	if err := m.Access(code, false); err != nil {
		t.Fatal(err)
	}
	post := m.Report("t").TLB
	if post.L2Hits != pre.L2Hits+1 {
		t.Errorf("data access after fetch: L2 hits %d -> %d, want unified-L2 hit", pre.L2Hits, post.L2Hits)
	}
}

// TestWriteProtectRetryMarksSecondRecord pins the miss-record semantics of
// the write-protect retry path: a store that walks, hits a read-only entry,
// upgrades permission, and re-walks produces TWO records — both carrying
// the store's write bit — and only the second is marked Retry. Records are
// deliberately not deduplicated (both walks happened and both are charged),
// so consumers that want logical misses filter on !Retry.
func TestWriteProtectRetryMarksSecondRecord(t *testing.T) {
	m := newMachine(t, smallConfig(walker.ModeNative, pagetable.Size4K))
	base := uint64(0x4000_0000)
	mustRun(t, m, setupOps(base, 4<<12, pagetable.Size4K))
	mustRun(t, m, []workload.Op{{Kind: workload.OpMarkCOW, PID: 0, VA: base}})
	type rec struct {
		va           uint64
		write, retry bool
	}
	var recs []rec
	m.SetMissObserver(func(va uint64, write, retry bool, res walker.Result) {
		recs = append(recs, rec{va, write, retry})
	})
	// One store to the COW page: cold walk finds the read-only entry, the
	// COW break upgrades it, and the re-walk logs the retry record.
	mustRun(t, m, []workload.Op{{Kind: workload.OpAccess, PID: 0, VA: base, Write: true}})
	if len(recs) != 2 {
		t.Fatalf("records = %+v, want exactly 2 (no dedup, no extras)", recs)
	}
	if !recs[0].write || recs[0].retry {
		t.Errorf("first record = %+v, want write-flagged non-retry", recs[0])
	}
	if !recs[1].write || !recs[1].retry {
		t.Errorf("second record = %+v, want write-flagged retry", recs[1])
	}
	if recs[0].va != base || recs[1].va != base {
		t.Errorf("record VAs = %+v", recs)
	}
	// A plain read miss elsewhere logs a single non-retry, non-write record.
	recs = recs[:0]
	mustRun(t, m, []workload.Op{{Kind: workload.OpAccess, PID: 0, VA: base + 0x2000}})
	if len(recs) != 1 || recs[0].write || recs[0].retry {
		t.Errorf("read-miss records = %+v, want one clean record", recs)
	}
}
