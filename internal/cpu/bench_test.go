package cpu

import (
	"testing"

	"agilepaging/internal/pagetable"
	"agilepaging/internal/telemetry"
	"agilepaging/internal/walker"
	"agilepaging/internal/workload"
)

// benchMachine builds a machine with one process and a populated region of
// `pages` 4K pages, context-switched in and ready for accesses.
func benchMachine(b *testing.B, tech walker.Mode, pages int) (*Machine, uint64) {
	b.Helper()
	cfg := smallConfig(tech, pagetable.Size4K)
	m, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	base := uint64(0x4000_0000)
	ops := setupOps(base, uint64(pages)<<12, pagetable.Size4K)
	if err := m.Run(workload.NewFromOps("bench", ops)); err != nil {
		b.Fatal(err)
	}
	return m, base
}

// BenchmarkAccessHit measures the end-to-end cost of one simulated access
// that hits the L1 TLB — the simulator's absolute hot path. Must be
// allocation-free (see TestAccessHitZeroAllocs).
func BenchmarkAccessHit(b *testing.B) {
	for _, tech := range []walker.Mode{walker.ModeNative, walker.ModeAgile} {
		b.Run(tech.String(), func(b *testing.B) {
			m, base := benchMachine(b, tech, 16)
			if err := m.Access(base|0x123, false); err != nil { // warm the TLB
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := m.Access(base|0x123, false); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAccessSamePageRun measures a run of accesses that stay within
// one page (varying offsets), the pattern a core hammering a hot page
// produces. This is the L0 translation memo's fast path: after the first
// access the remaining ones short-circuit the TLB probe entirely while
// keeping every counter identical. Must be allocation-free.
func BenchmarkAccessSamePageRun(b *testing.B) {
	for _, tech := range []walker.Mode{walker.ModeNative, walker.ModeAgile} {
		b.Run(tech.String(), func(b *testing.B) {
			m, base := benchMachine(b, tech, 16)
			if err := m.Access(base|0x123, false); err != nil { // warm TLB + memo
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := m.Access(base|uint64(i&0xfff), false); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAccessMiss measures an access whose translation misses the whole
// TLB hierarchy and pays a hardware walk. The footprint cycles through 4×
// the total TLB capacity so practically every access misses.
func BenchmarkAccessMiss(b *testing.B) {
	for _, tech := range []walker.Mode{walker.ModeNative, walker.ModeAgile} {
		b.Run(tech.String(), func(b *testing.B) {
			const pages = 4096
			m, base := benchMachine(b, tech, pages)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				va := base + uint64(i%pages)<<12
				if err := m.Access(va, false); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestAccessHitZeroAllocs guards the zero-allocation property of a TLB-hit
// access end to end (TLB probe, cycle accounting, policy-tick bookkeeping)
// for both an unvirtualized and an agile machine. If this fails, a change
// re-introduced a per-access allocation — see DESIGN.md "Performance
// engineering".
func TestAccessHitZeroAllocs(t *testing.T) {
	for _, tech := range []walker.Mode{walker.ModeNative, walker.ModeAgile} {
		cfg := smallConfig(tech, pagetable.Size4K)
		// Keep the periodic policy tick out of the measured window; its
		// (rare) mode-switch work is allowed to allocate.
		cfg.PolicyTickOps = 1 << 30
		m, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		base := uint64(0x4000_0000)
		if err := m.Run(workload.NewFromOps("guard", setupOps(base, 16<<12, pagetable.Size4K))); err != nil {
			t.Fatal(err)
		}
		if err := m.Access(base|0x123, false); err != nil {
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(200, func() {
			if err := m.Access(base|0x123, false); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("%v TLB-hit access allocates %.1f objects/op, want 0", tech, allocs)
		}

		// The telemetry layer must not regress the guarantee: with a
		// recorder and an event ring attached, the per-access work is one
		// increment and one compare (epoch assembly happens only at
		// boundaries, kept out of the window like the policy tick).
		m.SetTelemetry(telemetry.NewRecorder(1 << 30))
		m.SetWalkEventRing(telemetry.NewEventRing(1024))
		allocs = testing.AllocsPerRun(200, func() {
			if err := m.Access(base|0x123, false); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("%v TLB-hit access with telemetry allocates %.1f objects/op, want 0", tech, allocs)
		}

		// The L0 memo fast path (repeat access to the same page) and the
		// full-probe path it falls back to on a page change must both stay
		// allocation-free.
		off := uint64(0)
		allocs = testing.AllocsPerRun(200, func() {
			off = (off + 64) & 0xfff
			if err := m.Access(base|off, false); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("%v memo-hit access allocates %.1f objects/op, want 0", tech, allocs)
		}
		page := uint64(0)
		allocs = testing.AllocsPerRun(200, func() {
			page = (page + 1) & 0xf // alternate pages: TLB hit, memo miss
			if err := m.Access(base|page<<12|0x123, false); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("%v alternating-page TLB-hit access allocates %.1f objects/op, want 0", tech, allocs)
		}
	}
}

// BenchmarkMachineConstruct prices the construct-per-run lifecycle the
// machine pool exists to avoid: a full New per sweep cell (memsim arena,
// per-core TLB hierarchies, PWCs, walkers, VMM, guest OS).
func BenchmarkMachineConstruct(b *testing.B) {
	cfg := smallConfig(walker.ModeAgile, pagetable.Size4K)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := New(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMachinePooledReacquire prices the construct-once/reset-many
// replacement: release a machine that just ran a short workload and
// reacquire its geometry, which resets it to New state. Steady state must
// be allocation-free.
func BenchmarkMachinePooledReacquire(b *testing.B) {
	ResetMachinePool()
	b.Cleanup(ResetMachinePool)
	cfg := smallConfig(walker.ModeAgile, pagetable.Size4K)
	m, err := AcquireMachine(cfg)
	if err != nil {
		b.Fatal(err)
	}
	base := uint64(0x4000_0000)
	ops := setupOps(base, 32<<12, pagetable.Size4K)
	for i := uint64(0); i < 32; i++ {
		ops = append(ops, workload.Op{Kind: workload.OpAccess, PID: 0, VA: base + i<<12, Write: i%2 == 0})
	}
	run := func() {
		for i := range ops {
			if err := m.Exec(ops[i]); err != nil {
				b.Fatal(err)
			}
		}
	}
	run()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ReleaseMachine(m)
		if m, err = AcquireMachine(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
