package cpu

import "sync"

// Machine pooling: sweeps run thousands of cells over a handful of machine
// geometries, and full construction (memsim arena, per-core TLB hierarchies,
// PWCs, walkers, VMM, guest OS) is identical work per cell. The pool keeps
// retired machines keyed by their Geometry and hands them back through
// Machine.Reset, which restores pristine post-New state allocation-free —
// so a pooled reacquire costs a reset instead of a rebuild, and the GC
// never sees the discarded stack. Modeled on the shared stream cache
// (workload.SharedStream): process-wide, mutex-guarded, stats-reporting.

// DefaultMachinePoolCapacity bounds the number of idle machines retained
// across all geometries. A Compare sweep touches 4 techniques × 2 page
// sizes plus multicore variants; 16 keeps every geometry of the standard
// sweeps warm without holding arenas for unbounded one-off shapes.
const DefaultMachinePoolCapacity = 16

// machinePool is the process-wide idle-machine pool.
var machinePool = struct {
	mu       sync.Mutex
	idle     map[Geometry][]*Machine
	count    int // total idle machines across all geometries
	capacity int
	hits     uint64
	misses   uint64
	retired  uint64 // machines handed to Release but dropped (pool full or disabled)
}{
	idle:     make(map[Geometry][]*Machine),
	capacity: DefaultMachinePoolCapacity,
}

// AcquireMachine returns a machine for cfg: a pooled machine of matching
// geometry reset to New(cfg) state when one is idle, a freshly built one
// otherwise. Pass the machine to ReleaseMachine when the run is done.
func AcquireMachine(cfg Config) (*Machine, error) {
	cfg.normalize()
	geo := cfg.Geometry()
	p := &machinePool
	p.mu.Lock()
	var m *Machine
	if ms := p.idle[geo]; len(ms) > 0 {
		m = ms[len(ms)-1]
		ms[len(ms)-1] = nil
		p.idle[geo] = ms[:len(ms)-1]
		p.count--
		p.hits++
	} else {
		p.misses++
	}
	p.mu.Unlock()
	if m == nil {
		return New(cfg)
	}
	if err := m.Reset(cfg); err != nil {
		// Geometry was verified equal, so this is unreachable in practice;
		// fall back to a fresh build rather than return a half-reset machine.
		return New(cfg)
	}
	return m, nil
}

// ReleaseMachine returns a machine to the pool for later reuse. The caller
// must not touch m afterwards. Machines beyond the pool's capacity (or all
// machines, when the capacity is 0) are dropped to the garbage collector.
// Passing nil is a no-op.
func ReleaseMachine(m *Machine) {
	if m == nil {
		return
	}
	geo := m.cfg.Geometry()
	p := &machinePool
	p.mu.Lock()
	if p.count < p.capacity {
		p.idle[geo] = append(p.idle[geo], m)
		p.count++
	} else {
		p.retired++
	}
	p.mu.Unlock()
}

// MachinePoolStats reports pool effectiveness: hits are acquisitions served
// by resetting an idle machine, misses built fresh, retired counts machines
// dropped at Release because the pool was full or disabled, and idle is the
// current pooled-machine count.
func MachinePoolStats() (hits, misses, retired uint64, idle int) {
	p := &machinePool
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.hits, p.misses, p.retired, p.count
}

// SetMachinePoolCapacity bounds the number of idle machines retained.
// capacity <= 0 disables pooling: acquisitions always build fresh and
// releases drop immediately (existing idle machines are freed).
func SetMachinePoolCapacity(capacity int) {
	if capacity < 0 {
		capacity = 0
	}
	p := &machinePool
	p.mu.Lock()
	p.capacity = capacity
	for geo, ms := range p.idle {
		for p.count > capacity && len(ms) > 0 {
			ms[len(ms)-1] = nil
			ms = ms[:len(ms)-1]
			p.count--
		}
		if len(ms) == 0 {
			delete(p.idle, geo)
		} else {
			p.idle[geo] = ms
		}
	}
	p.mu.Unlock()
}

// ResetMachinePool drops every idle machine and zeroes the statistics
// (tests and memory-sensitive callers).
func ResetMachinePool() {
	p := &machinePool
	p.mu.Lock()
	p.idle = make(map[Geometry][]*Machine)
	p.count = 0
	p.hits = 0
	p.misses = 0
	p.retired = 0
	p.mu.Unlock()
}
