package agilepaging_test

import (
	"fmt"
	"log"

	"agilepaging"
)

// ExampleRun measures one workload under agile paging and reports which
// cost components appear.
func ExampleRun() {
	res, err := agilepaging.Run(agilepaging.Config{
		Workload:  "mcf", // static footprint: shadow-friendly
		Technique: agilepaging.Agile,
		PageSize:  agilepaging.Page4K,
		Accesses:  60_000,
		Seed:      1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("technique: %s\n", res.Technique)
	fmt.Printf("avg walk refs per TLB miss: %.0f\n", res.AvgRefsPerMiss)
	fmt.Printf("VM exits in steady state: %d\n", res.VMExits)
	// Output:
	// technique: agile
	// avg walk refs per TLB miss: 1
	// VM exits in steady state: 0
}

// ExampleCompare reproduces the paper's headline on its worst shadow-paging
// case: agile paging beats both constituent techniques.
func ExampleCompare() {
	results, err := agilepaging.Compare("dedup", agilepaging.Page4K, 60_000, 42)
	if err != nil {
		log.Fatal(err)
	}
	native, nested, shadow, agile := results[0], results[1], results[2], results[3]
	best := nested.TotalOverhead
	if shadow.TotalOverhead < best {
		best = shadow.TotalOverhead
	}
	fmt.Printf("agile beats best constituent: %v\n", agile.TotalOverhead < best)
	fmt.Printf("agile within 25%% of native:   %v\n",
		(1+agile.TotalOverhead)/(1+native.TotalOverhead) < 1.25)
	fmt.Printf("shadow pays VM exits:         %v\n", shadow.VMExits > 1000)
	fmt.Printf("agile mostly avoids them:     %v\n", agile.VMExits < shadow.VMExits/10)
	// Output:
	// agile beats best constituent: true
	// agile within 25% of native:   true
	// shadow pays VM exits:         true
	// agile mostly avoids them:     true
}

// ExampleScenario scripts the paper's copy-on-write example (§II-B): under
// shadow paging, marking pages copy-on-write costs at least two VM exits
// per page.
func ExampleScenario() {
	base := uint64(0x4000_0000)
	const pages = 32
	s := agilepaging.NewScenario()
	s.Map(0, base, pages<<12, agilepaging.Page4K).Populate(0, base)
	s.TouchRange(0, base, pages<<12, agilepaging.Page4K)
	s.Snapshot(0, base)

	res, err := s.Run(agilepaging.ScenarioConfig{
		Technique: agilepaging.Shadow,
		PageSize:  agilepaging.Page4K,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("snapshot of %d pages cost >= %d VM exits: %v\n",
		pages, 2*pages, res.VMExits >= 2*pages)
	// Output:
	// snapshot of 32 pages cost >= 64 VM exits: true
}
