package agilepaging

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (see DESIGN.md's per-experiment index):
//
//	go test -bench BenchmarkTableI -benchmem        # Table I
//	go test -bench BenchmarkTableII .               # Table II / Figure 3
//	go test -bench BenchmarkFigure5 .               # Figure 5 (all 64 bars)
//	go test -bench BenchmarkTableVI .               # Table VI
//	go test -bench BenchmarkHeadline .              # §VII.A summary numbers
//	go test -bench BenchmarkAblations .             # §III-C/§IV design choices
//	go test -bench BenchmarkWalk .                  # per-walk hardware costs
//
// Each benchmark reports the paper's metric via b.ReportMetric so the
// regenerated rows appear directly in benchmark output; cmd/paperbench
// prints the same data as formatted tables.

import (
	"context"
	"flag"
	"fmt"
	"strings"
	"sync"
	"testing"

	"agilepaging/internal/cpu"
	"agilepaging/internal/experiments"
	"agilepaging/internal/memsim"
	"agilepaging/internal/pagetable"
	"agilepaging/internal/repcache"
	"agilepaging/internal/sweep"
	"agilepaging/internal/vmm"
	"agilepaging/internal/walker"
	"agilepaging/internal/workload"
)

const (
	benchAccesses = 120_000
	benchSeed     = 42
)

// -machine-pool-off reruns the sweep benchmarks with machine pooling
// disabled — the construct-per-run lifecycle — so the pool's win can be
// measured as an A/B on one tree:
//
//	go test -bench CompareSweep -benchmem -run '^$' .                    # pooled
//	go test -bench CompareSweep -benchmem -run '^$' . -machine-pool-off  # fresh builds
var machinePoolOff = flag.Bool("machine-pool-off", false,
	"disable the machine pool (construct-per-run baseline for the sweep benchmarks)")

// -stream-cold drops the shared stream cache before every sweep iteration,
// so each one pays full workload generation — the cold path a fresh process
// hits. The default (warm) keeps streams cached across iterations:
//
//	go test -bench Figure5Serial -benchmem -run '^$' .               # warm
//	go test -bench Figure5Serial -benchmem -run '^$' . -stream-cold  # cold
var streamCold = flag.Bool("stream-cold", false,
	"reset the shared workload stream cache every sweep iteration (cold-generation baseline)")

// applyPoolMode configures the machine pool per the -machine-pool-off flag
// and starts the benchmark from a cold pool either way, so pooled runs
// measure the steady state a sweep reaches rather than leftovers of the
// previous benchmark.
func applyPoolMode(b *testing.B) {
	b.Helper()
	cpu.ResetMachinePool()
	if *machinePoolOff {
		cpu.SetMachinePoolCapacity(0)
		b.Cleanup(func() { cpu.SetMachinePoolCapacity(cpu.DefaultMachinePoolCapacity) })
	}
}

// BenchmarkTableI regenerates paper Table I: per-technique walk cost and
// page-table update cost.
func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.TableI()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.ReportMetric(float64(r.MaxRefs), r.Technique.String()+"_max_refs")
				b.ReportMetric(r.UpdateCycles, r.Technique.String()+"_update_cycles")
			}
		}
	}
}

// BenchmarkTableII regenerates paper Table II: memory references per walk
// at each degree of nesting (4, 8, 12, 16, 20, 24).
func BenchmarkTableII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.TableII()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for d, r := range rows {
				b.ReportMetric(float64(r.Refs), fmt.Sprintf("degree%d_refs", d))
			}
		}
	}
}

// figure5Cache shares one full sweep across the Figure 5 sub-benchmarks.
var figure5Cache struct {
	once sync.Once
	res  *experiments.Figure5Result
	err  error
}

func figure5(b *testing.B) *experiments.Figure5Result {
	b.Helper()
	figure5Cache.once.Do(func() {
		figure5Cache.res, figure5Cache.err = experiments.Figure5(nil, benchAccesses, benchSeed)
	})
	if figure5Cache.err != nil {
		b.Fatal(figure5Cache.err)
	}
	return figure5Cache.res
}

// BenchmarkFigure5 regenerates paper Figure 5: one sub-benchmark per bar
// (workload × page size × technique), reporting the two overhead components
// as percentages.
func BenchmarkFigure5(b *testing.B) {
	res := figure5(b)
	for _, name := range workload.Names() {
		for _, ps := range experiments.PageSizes() {
			for _, tech := range experiments.Techniques() {
				row, ok := res.Get(name, ps, tech)
				if !ok {
					b.Fatalf("missing row %s/%v/%v", name, ps, tech)
				}
				b.Run(fmt.Sprintf("%s/%s:%s", name, ps, tech), func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						_ = row.TotalOv()
					}
					b.ReportMetric(100*row.WalkOv, "walk_ov_%")
					b.ReportMetric(100*row.VMMOv, "vmm_ov_%")
				})
			}
		}
	}
}

// BenchmarkFigure5Serial and BenchmarkFigure5Parallel time the full
// 64-simulation Figure 5 sweep end to end with one worker versus one worker
// per CPU. Identical parameters, so the ratio is the sweep speedup (compare
// with `go test -bench 'BenchmarkFigure5(Serial|Parallel)' -cpu N`).
func BenchmarkFigure5Serial(b *testing.B)   { benchFigure5Sweep(b, 1) }
func BenchmarkFigure5Parallel(b *testing.B) { benchFigure5Sweep(b, 0) }

func benchFigure5Sweep(b *testing.B, workers int) {
	applyPoolMode(b)
	for i := 0; i < b.N; i++ {
		// Drop memoized reports so every iteration simulates: these
		// benchmarks track simulation cost across PRs, not cache lookups
		// (BenchmarkFigure5SweepWarm measures the memoized path).
		repcache.Reset()
		if *streamCold {
			workload.ResetStreamCache()
		}
		res, err := experiments.Figure5Sweep(context.Background(), sweep.Config{Workers: workers}, nil, benchAccesses, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) == 0 {
			b.Fatal("empty sweep")
		}
	}
}

// BenchmarkCompareSweep times a serial multi-technique comparison of one
// workload — both page sizes under all four techniques, the shape of the
// Compare/RunAll facade. All eight simulations replay the same two
// (page-size) op streams, so this benchmark isolates the benefit of
// op-stream sharing across techniques.
func BenchmarkCompareSweep(b *testing.B) {
	applyPoolMode(b)
	for i := 0; i < b.N; i++ {
		repcache.Reset()
		res, err := experiments.Figure5Sweep(context.Background(), sweep.Config{Workers: 1}, []string{"dedup"}, benchAccesses, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 8 {
			b.Fatalf("rows = %d, want 8", len(res.Rows))
		}
	}
}

// BenchmarkHeadline reports the §VII.A headline numbers derived from the
// Figure 5 sweep: agile's geometric-mean improvement over the best
// constituent and its slowdown versus native.
func BenchmarkHeadline(b *testing.B) {
	res := figure5(b)
	var h experiments.HeadlineResult
	for i := 0; i < b.N; i++ {
		h = experiments.Headline(res)
	}
	b.ReportMetric(100*h.GeoAgileVsBest4K, "agile_vs_best_4K_%")
	b.ReportMetric(100*h.GeoAgileVsNative4K, "agile_vs_native_4K_%")
	b.ReportMetric(100*h.GeoAgileVsBest2M, "agile_vs_best_2M_%")
	b.ReportMetric(100*h.GeoAgileVsNative2M, "agile_vs_native_2M_%")
}

// BenchmarkTableVI regenerates paper Table VI: the fraction of TLB misses
// served in each agile mode (4K pages, no MMU caches) per workload.
func BenchmarkTableVI(b *testing.B) {
	var rows []experiments.TableVIRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.TableVI(nil, benchAccesses, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(100*r.Fractions[0], r.Workload+"_shadow_%")
		b.ReportMetric(r.AvgRefs, r.Workload+"_avg_refs")
	}
}

// BenchmarkAblations regenerates the design-choice ablations (§III-C
// policies and §IV hardware optimizations).
func BenchmarkAblations(b *testing.B) {
	var rows []experiments.AblationRow
	var err error
	for i := 0; i < b.N; i++ {
		repcache.Reset()
		rows, err = experiments.Ablations(40_000, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(100*(r.WalkOv+r.VMMOv), metricName(r.Name)+"_total_%")
	}
}

// metricName makes an ablation label usable as a benchmark metric unit
// (no whitespace allowed).
func metricName(s string) string {
	s = strings.ReplaceAll(s, " ", "")
	s = strings.ReplaceAll(s, ",", "_")
	return s
}

// BenchmarkModelValidation runs the paper's two-step Table IV methodology
// against direct simulation for one workload.
func BenchmarkModelValidation(b *testing.B) {
	var v experiments.ModelValidation
	var err error
	for i := 0; i < b.N; i++ {
		repcache.Reset()
		v, err = experiments.ValidateModel("canneal", 60_000, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*v.DirectWalkOv, "direct_walk_%")
	b.ReportMetric(100*v.ProjectedWalkOv, "projected_walk_%")
}

// walkBench builds a single-translation fixture and measures the raw
// per-walk cost of one technique's state machine (no MMU caches).
func walkBench(b *testing.B, technique walker.Mode, agileNestedLevels int, fullNested bool) {
	mem := memsim.New(256 << 20)
	vmCfg := vmm.DefaultConfig(walker.ModeAgile)
	vmCfg.RAMBytes = 64 << 20
	vm, err := vmm.New(mem, vmm.NopMMU{}, 1, vmCfg)
	if err != nil {
		b.Fatal(err)
	}
	ctx, err := vm.NewProcess(1)
	if err != nil {
		b.Fatal(err)
	}
	gva := uint64(0x7f12_3456_7000)
	gpa, err := vm.AllocGPA(pagetable.Size4K)
	if err != nil {
		b.Fatal(err)
	}
	if err := ctx.GPT().Map(gva, gpa, pagetable.Size4K, pagetable.FlagWrite); err != nil {
		b.Fatal(err)
	}
	switch {
	case fullNested:
		ctx.SetFullNested(true)
	case agileNestedLevels > 0:
		if _, err := ctx.HandleShadowFault(gva, false); err != nil {
			b.Fatal(err)
		}
		nodeLevel := 4 - agileNestedLevels
		var node uint64
		if nodeLevel == 0 {
			node = ctx.GPT().Root()
		} else {
			e, err := ctx.GPT().EntryAt(gva, nodeLevel-1)
			if err != nil {
				b.Fatal(err)
			}
			node = e.Addr()
		}
		if err := ctx.PlantSwitch(node); err != nil {
			b.Fatal(err)
		}
	default:
		if _, err := ctx.HandleShadowFault(gva, false); err != nil {
			b.Fatal(err)
		}
	}
	regs := ctx.Regs()
	regs.Mode = technique
	if technique == walker.ModeNative {
		regs.Root = ctx.SPT().Root()
	}
	w := walker.New(mem, nil, nil)
	b.ResetTimer()
	refs := 0
	for i := 0; i < b.N; i++ {
		res, fault := w.Walk(regs, gva, false)
		if fault != nil {
			b.Fatal(fault)
		}
		refs = res.Refs
	}
	b.ReportMetric(float64(refs), "mem_refs")
}

// BenchmarkWalk measures the simulator's raw per-walk cost for each state
// machine, reporting the architectural reference count alongside.
func BenchmarkWalk(b *testing.B) {
	b.Run("native", func(b *testing.B) { walkBench(b, walker.ModeNative, 0, false) })
	b.Run("shadow", func(b *testing.B) { walkBench(b, walker.ModeShadow, 0, false) })
	b.Run("nested", func(b *testing.B) { walkBench(b, walker.ModeNested, 0, false) })
	b.Run("agile-full-shadow", func(b *testing.B) { walkBench(b, walker.ModeAgile, 0, false) })
	b.Run("agile-leaf-nested", func(b *testing.B) { walkBench(b, walker.ModeAgile, 1, false) })
	b.Run("agile-full-nested", func(b *testing.B) { walkBench(b, walker.ModeAgile, 4, true) })
}

// BenchmarkSimulationThroughput measures end-to-end simulated accesses per
// second for one representative configuration, for tracking simulator
// performance itself.
func BenchmarkSimulationThroughput(b *testing.B) {
	prof, _ := workload.ProfileByName("astar")
	for i := 0; i < b.N; i++ {
		repcache.Reset()
		o := experiments.DefaultOptions(walker.ModeAgile, pagetable.Size4K)
		o.Accesses = 20_000
		o.Warmup = -1
		rep, err := runProfileForBench(prof.Name, o)
		if err != nil {
			b.Fatal(err)
		}
		if rep == 0 {
			b.Fatal("no accesses simulated")
		}
	}
}

func runProfileForBench(name string, o experiments.Options) (uint64, error) {
	rep, err := experiments.RunProfile(name, o)
	if err != nil {
		return 0, err
	}
	return rep.Machine.Accesses, nil
}

// BenchmarkSHSP regenerates the §VII.C comparison against selective
// hardware/software paging.
func BenchmarkSHSP(b *testing.B) {
	var rows []experiments.SHSPRow
	var err error
	for i := 0; i < b.N; i++ {
		repcache.Reset()
		rows, err = experiments.SHSPComparison([]string{"dedup", "mcf"}, 60_000, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(100*r.SHSP, r.Workload+"_shsp_%")
		b.ReportMetric(100*r.Agile, r.Workload+"_agile_%")
	}
}

// runAllBenchConfigs builds a RunAll config list with 2x overlap: every
// unique (workload, technique) cell appears twice, the shape of a config
// list assembled from several experiment fragments. Sweep-level dedup folds
// the duplicates, so a cold run pays one simulation per unique cell.
func runAllBenchConfigs() []Config {
	var unique []Config
	for _, wl := range []string{"dedup", "mcf"} {
		for _, tech := range []Technique{Native, Nested, Shadow, Agile} {
			unique = append(unique, Config{
				Workload: wl, Technique: tech, PageSize: Page4K,
				Accesses: benchAccesses, Seed: benchSeed,
			})
		}
	}
	return append(append([]Config{}, unique...), unique...)
}

// BenchmarkRunAllDeduped times RunAll over a config list where every cell
// appears twice (see runAllBenchConfigs).
//
//   - cold drops the report cache each iteration, so it measures dedup-only
//     scheduling: 8 simulations for 16 configs.
//   - warm keeps the cache primed, so every ask is a stored-report lookup —
//     the steady state of repeated evaluation runs in one process.
func BenchmarkRunAllDeduped(b *testing.B) {
	cfgs := runAllBenchConfigs()
	run := func(b *testing.B) {
		res, err := RunAllContext(context.Background(), 0, cfgs)
		if err != nil {
			b.Fatal(err)
		}
		if len(res) != len(cfgs) {
			b.Fatalf("results = %d, want %d", len(res), len(cfgs))
		}
	}
	b.Run("cold", func(b *testing.B) {
		applyPoolMode(b)
		for i := 0; i < b.N; i++ {
			repcache.Reset()
			run(b)
		}
	})
	b.Run("warm", func(b *testing.B) {
		applyPoolMode(b)
		repcache.Reset()
		run(b) // prime
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			run(b)
		}
	})
}

// BenchmarkFigure5SweepWarm times a repeated Figure 5 sweep with the report
// cache primed — the cost of regenerating the figure after any other driver
// already simulated its cells. Compare against BenchmarkFigure5Parallel
// (same sweep, cache dropped per iteration) for the memoization win.
func BenchmarkFigure5SweepWarm(b *testing.B) {
	applyPoolMode(b)
	repcache.Reset()
	sweepOnce := func() {
		res, err := experiments.Figure5Sweep(context.Background(), sweep.Config{}, nil, benchAccesses, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) == 0 {
			b.Fatal("empty sweep")
		}
	}
	sweepOnce() // prime
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sweepOnce()
	}
}
