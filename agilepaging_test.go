package agilepaging

import (
	"context"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"agilepaging/internal/repcache"
)

const testAccesses = 30_000

func TestRunBasic(t *testing.T) {
	res, err := Run(Config{
		Workload: "mcf", Technique: Shadow, PageSize: Page4K,
		Accesses: testAccesses, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accesses == 0 || res.TLBMisses == 0 {
		t.Fatalf("empty result: %+v", res)
	}
	if res.AvgRefsPerMiss < 1 || res.AvgRefsPerMiss > 4 {
		t.Errorf("shadow avg refs/miss = %.2f", res.AvgRefsPerMiss)
	}
	if res.TotalOverhead != res.WalkOverhead+res.VMMOverhead {
		t.Error("overhead decomposition inconsistent")
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := Run(Config{Workload: "unknown"}); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestRunDeterminism(t *testing.T) {
	cfg := Config{Workload: "astar", Technique: Agile, PageSize: Page4K, Accesses: testAccesses, Seed: 3}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("same seed, different results:\n%+v\n%+v", a, b)
	}
}

func TestCompareOrderingAndShape(t *testing.T) {
	rs, err := Compare("dedup", Page4K, testAccesses, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 4 {
		t.Fatalf("results = %d", len(rs))
	}
	for i, tech := range Techniques() {
		if rs[i].Technique != tech {
			t.Errorf("result %d technique = %v, want %v", i, rs[i].Technique, tech)
		}
	}
	native, nested, shadow, agile := rs[0], rs[1], rs[2], rs[3]
	if native.VMExits != 0 || nested.VMExits != 0 {
		t.Error("native/nested must not exit to a VMM")
	}
	if shadow.VMExits == 0 {
		t.Error("shadow dedup should exit to the VMM")
	}
	if agile.VMExits >= shadow.VMExits {
		t.Errorf("agile exits %d not below shadow %d", agile.VMExits, shadow.VMExits)
	}
}

func TestRunAllMatchesSerialRuns(t *testing.T) {
	cfgs := []Config{
		{Workload: "dedup", Technique: Shadow, PageSize: Page4K, Accesses: testAccesses, Seed: 5},
		{Workload: "mcf", Technique: Agile, PageSize: Page2M, Accesses: testAccesses, Seed: 5},
		{Workload: "astar", Technique: Nested, PageSize: Page4K, Accesses: testAccesses, Seed: 5},
	}
	got, err := RunAll(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(cfgs) {
		t.Fatalf("results = %d, want %d", len(got), len(cfgs))
	}
	for i, cfg := range cfgs {
		want, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got[i] != want {
			t.Errorf("RunAll[%d] differs from serial Run:\n%+v\n%+v", i, got[i], want)
		}
	}
}

func TestRunAllValidation(t *testing.T) {
	_, err := RunAll([]Config{
		{Workload: "dedup", Technique: Shadow},
		{Workload: ""},
		{Workload: "mcf", Accesses: -5},
	})
	if err == nil {
		t.Fatal("invalid configs accepted")
	}
	msg := err.Error()
	for _, want := range []string{"job 1", "empty workload", "job 2", "negative accesses"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q missing %q", msg, want)
		}
	}
	// Valid empty list is a no-op, not an error.
	if rs, err := RunAll(nil); err != nil || len(rs) != 0 {
		t.Errorf("RunAll(nil) = %v, %v", rs, err)
	}
}

func TestRunAllUnknownWorkloadNamesJob(t *testing.T) {
	// Unknown workloads pass validation (the registry owns that check) but
	// must fail with the job key attached for attribution.
	_, err := RunAll([]Config{
		{Workload: "dedup", Technique: Native, Accesses: 2000},
		{Workload: "nope", Technique: Native, Accesses: 2000},
	})
	if err == nil {
		t.Fatal("unknown workload accepted")
	}
	if !strings.Contains(err.Error(), "job 1") || !strings.Contains(err.Error(), "nope") {
		t.Errorf("error %q does not attribute the failing job", err)
	}
}

func TestRunAllWithCollectAll(t *testing.T) {
	cfgs := []Config{
		{Workload: "dedup", Technique: Shadow, PageSize: Page4K, Accesses: testAccesses, Seed: 5},
		{Workload: "nosuchworkload", Technique: Native, Accesses: 2000},
		{Workload: "mcf", Technique: Agile, PageSize: Page2M, Accesses: testAccesses, Seed: 5},
	}
	results, completed, err := RunAllWith(context.Background(), RunAllOptions{CollectAll: true}, cfgs)
	if err == nil {
		t.Fatal("bad cell not reported")
	}
	if !strings.Contains(err.Error(), "nosuchworkload") {
		t.Errorf("error %q does not name the failed cell", err)
	}
	if want := []bool{true, false, true}; !reflect.DeepEqual(completed, want) {
		t.Fatalf("completed = %v, want %v", completed, want)
	}
	// Healthy cells survive the bad one and match serial Run exactly.
	for _, i := range []int{0, 2} {
		want, err := Run(cfgs[i])
		if err != nil {
			t.Fatal(err)
		}
		if results[i] != want {
			t.Errorf("results[%d] differs from serial Run:\n%+v\n%+v", i, results[i], want)
		}
	}
	if (results[1] != Result{}) {
		t.Errorf("failed slot holds a result: %+v", results[1])
	}

	// The default fail-fast policy reports the failure too, just without
	// the guarantee that the other cells ran.
	if _, _, err := RunAllWith(context.Background(), RunAllOptions{}, cfgs); err == nil {
		t.Error("fail-fast run did not report the bad cell")
	}
}

func TestCompareWithShape(t *testing.T) {
	results, completed, err := CompareWith(context.Background(), RunAllOptions{Workers: 2},
		"dedup", Page4K, testAccesses, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 || len(completed) != 4 {
		t.Fatalf("shape = %d results, %d completed", len(results), len(completed))
	}
	for i, ok := range completed {
		if !ok {
			t.Errorf("cell %d not completed on a clean run", i)
		}
		if results[i].Technique != Techniques()[i] {
			t.Errorf("cell %d technique = %v", i, results[i].Technique)
		}
	}
}

func TestTechniqueAndPageSizeStrings(t *testing.T) {
	names := map[Technique]string{Native: "native", Nested: "nested", Shadow: "shadow", Agile: "agile"}
	for tech, want := range names {
		if tech.String() != want {
			t.Errorf("%d.String() = %s", int(tech), tech.String())
		}
	}
	if Page4K.String() != "4K" || Page2M.String() != "2M" {
		t.Error("page size strings")
	}
	if len(Workloads()) != 8 {
		t.Errorf("workloads = %v", Workloads())
	}
	if !strings.Contains(strings.Join(Workloads(), ","), "dedup") {
		t.Error("dedup missing")
	}
}

func TestScenarioCOWSnapshot(t *testing.T) {
	build := func() *Scenario {
		s := NewScenario()
		base := uint64(0x4000_0000)
		s.Map(0, base, 64<<12, Page4K).Populate(0, base)
		s.TouchRange(0, base, 64<<12, Page4K) // build translation state
		s.Snapshot(0, base)                   // mark COW
		s.WriteRange(0, base, 64<<12, Page4K) // break every page
		return s
	}
	shadow, err := build().Run(ScenarioConfig{Technique: Shadow, PageSize: Page4K})
	if err != nil {
		t.Fatal(err)
	}
	agile, err := build().Run(ScenarioConfig{Technique: Agile, PageSize: Page4K})
	if err != nil {
		t.Fatal(err)
	}
	nested, err := build().Run(ScenarioConfig{Technique: Nested, PageSize: Page4K})
	if err != nil {
		t.Fatal(err)
	}
	// The paper's COW example: >= 2 VM exits per page under shadow paging;
	// none under nested; agile adapts away most of them.
	if shadow.VMExits < 2*64 {
		t.Errorf("shadow snapshot exits = %d, want >= 128", shadow.VMExits)
	}
	if nested.VMExits != 0 {
		t.Errorf("nested snapshot exits = %d", nested.VMExits)
	}
	if agile.VMExits*2 > shadow.VMExits {
		t.Errorf("agile exits %d not well below shadow %d", agile.VMExits, shadow.VMExits)
	}
	if agile.SwitchesToNested == 0 {
		t.Error("agile never adapted")
	}
}

func TestScenarioMultiProcess(t *testing.T) {
	s := NewScenario()
	s.AddProcess(1)
	s.Map(0, 0x1000_0000, 8<<12, Page4K).Populate(0, 0x1000_0000)
	s.Map(1, 0x2000_0000, 8<<12, Page4K).Populate(1, 0x2000_0000)
	for i := 0; i < 10; i++ {
		s.Switch(0).Touch(0, 0x1000_0000)
		s.Switch(1).Touch(1, 0x2000_0000)
	}
	res, err := s.Run(ScenarioConfig{Technique: Shadow, PageSize: Page4K})
	if err != nil {
		t.Fatal(err)
	}
	if res.VMExits < 20 {
		t.Errorf("context switching under shadow should exit: %d", res.VMExits)
	}
	// The §IV context-switch cache removes those exits.
	s2 := NewScenario()
	s2.AddProcess(1)
	s2.Map(0, 0x1000_0000, 8<<12, Page4K).Populate(0, 0x1000_0000)
	s2.Map(1, 0x2000_0000, 8<<12, Page4K).Populate(1, 0x2000_0000)
	for i := 0; i < 10; i++ {
		s2.Switch(0).Touch(0, 0x1000_0000)
		s2.Switch(1).Touch(1, 0x2000_0000)
	}
	cached, err := s2.Run(ScenarioConfig{Technique: Shadow, PageSize: Page4K, CtxSwitchCacheEntries: 8})
	if err != nil {
		t.Fatal(err)
	}
	if cached.VMExits >= res.VMExits {
		t.Errorf("ctx cache did not help: %d vs %d", cached.VMExits, res.VMExits)
	}
}

func TestScenarioLen(t *testing.T) {
	s := NewScenario()
	if s.Len() != 2 {
		t.Errorf("fresh scenario has %d ops", s.Len())
	}
	s.Reclaim(0, 4).Unmap(0, 0x1000)
	if s.Len() != 4 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestScenarioTHPPromotion(t *testing.T) {
	base := uint64(0x4000_0000)
	build := func() *Scenario {
		s := NewScenario()
		s.Map(0, base, 2<<20, Page4K).Populate(0, base)
		s.TouchRange(0, base, 2<<20, Page4K) // build translation state
		s.Promote(0, base)                   // THP collapse: 512 unmaps + 1 2M map
		s.TouchRange(0, base, 2<<20, Page4K)
		return s
	}
	shadow, err := build().Run(ScenarioConfig{Technique: Shadow, PageSize: Page4K})
	if err != nil {
		t.Fatal(err)
	}
	nested, err := build().Run(ScenarioConfig{Technique: Nested, PageSize: Page4K})
	if err != nil {
		t.Fatal(err)
	}
	if nested.VMExits != 0 {
		t.Errorf("nested THP promotion exited %d times", nested.VMExits)
	}
	// Shadow pays for the page-table rewrite: hundreds of exits.
	if shadow.VMExits < 256 {
		t.Errorf("shadow THP promotion exits = %d, want many", shadow.VMExits)
	}
}

func TestScenario1GPages(t *testing.T) {
	base := uint64(1 << 30) // 1G-aligned
	s := NewScenario()
	s.Map(0, base, 1<<30, Page1G).Populate(0, base)
	for i := uint64(0); i < 16; i++ {
		s.Touch(0, base+i<<20)
	}
	res, err := s.Run(ScenarioConfig{Technique: Shadow, PageSize: Page1G, DisableMMUCaches: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accesses != 16 {
		t.Fatalf("accesses = %d", res.Accesses)
	}
	// A 1G shadow walk costs 2 references.
	if res.AvgRefsPerMiss > 2.01 {
		t.Errorf("1G shadow avg refs/miss = %.2f, want 2", res.AvgRefsPerMiss)
	}
	if Page1G.String() != "1G" {
		t.Error("Page1G string")
	}
}

func TestSHSPBaselineConfig(t *testing.T) {
	res, err := Run(Config{
		Workload: "mcf", Technique: Agile, PageSize: Page4K,
		Accesses: 120_000, Warmup: 120_000, SHSPBaseline: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// SHSP on a static workload converges to whole-process shadow paging.
	if res.SwitchesToShadow == 0 {
		t.Error("SHSP never switched the process to shadow")
	}
	if res.AvgRefsPerMiss > 2 { // with PWC, shadow misses average ~1 ref
		t.Errorf("avg refs/miss = %.2f, expected shadow-like", res.AvgRefsPerMiss)
	}
}

func TestScenarioSMPShootdown(t *testing.T) {
	base := uint64(0x4000_0000)
	s := NewScenario()
	s.Map(0, base, 4<<12, Page4K).Populate(0, base)
	s.SwitchOn(1, 0) // install the process on a second core too
	s.TouchOn(0, 0, base)
	s.TouchOn(1, 0, base)
	s.Snapshot(0, base) // COW marking shoots down both cores
	s.WriteOn(1, 0, base)
	res, err := s.Run(ScenarioConfig{Technique: Nested, PageSize: Page4K, Cores: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accesses != 3 {
		t.Errorf("accesses = %d", res.Accesses)
	}
	if res.GuestFaults == 0 {
		t.Error("COW break should fault")
	}
}

func TestScenarioInstructionFetch(t *testing.T) {
	code := uint64(0x0040_0000)
	s := NewScenario()
	s.Map(0, code, 16<<12, Page4K).Populate(0, code)
	for i := uint64(0); i < 16; i++ {
		s.Fetch(0, code+i<<12)
	}
	res, err := s.Run(ScenarioConfig{Technique: Shadow, PageSize: Page4K})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accesses != 16 || res.TLBMisses == 0 {
		t.Fatalf("fetch scenario: %+v", res)
	}
}

func TestResultJSONEncodesNames(t *testing.T) {
	res := Result{Workload: "mcf", Technique: Agile, PageSize: Page2M}
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"Technique":"agile"`) ||
		!strings.Contains(string(data), `"PageSize":"2M"`) {
		t.Errorf("json = %s", data)
	}
}

// TestRunAllDeduplicatesIdenticalConfigs verifies a config list with
// repeated cells runs each unique cell once: duplicates come back
// bit-identical, and the cache records exactly one simulation per cell.
func TestRunAllDeduplicatesIdenticalConfigs(t *testing.T) {
	repcache.Reset()
	cfgs := []Config{
		{Workload: "dedup", Technique: Shadow, PageSize: Page4K, Accesses: 4000, Seed: 5},
		{Workload: "mcf", Technique: Agile, PageSize: Page4K, Accesses: 4000, Seed: 5},
		{Workload: "dedup", Technique: Shadow, PageSize: Page4K, Accesses: 4000, Seed: 5}, // dup of 0
		{Workload: "dedup", Technique: Shadow, PageSize: Page4K, Accesses: 4000, Seed: 6}, // distinct seed
		{Workload: "mcf", Technique: Agile, PageSize: Page4K, Accesses: 4000, Seed: 5},    // dup of 1
	}
	got, err := RunAll(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if got[2] != got[0] || got[4] != got[1] {
		t.Error("duplicate configs returned different results")
	}
	if got[3] == got[0] {
		t.Error("configs differing only in Seed were aliased")
	}
	_, misses, _ := repcache.Stats()
	if misses != 3 {
		t.Errorf("simulated %d unique cells, want 3", misses)
	}
	// Spelled defaults share cells with explicit defaults: Seed 0 means 42.
	repcache.Reset()
	pair := []Config{
		{Workload: "astar", Technique: Nested, PageSize: Page4K, Accesses: 4000},
		{Workload: "astar", Technique: Nested, PageSize: Page4K, Accesses: 4000, Seed: 42},
	}
	res, err := RunAll(pair)
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != res[1] {
		t.Error("default-seed spellings returned different results")
	}
	if _, misses, _ := repcache.Stats(); misses != 1 {
		t.Errorf("default-seed spellings cost %d simulations, want 1", misses)
	}
}
