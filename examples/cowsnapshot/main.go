// COW snapshot: reproduce the paper's copy-on-write example (§II-B, §V).
//
// Marking a page copy-on-write under shadow paging costs at least two VM
// exits per page — one for the guest page-table write and one for the TLB
// shootdown — and breaking the COW costs more. Nested paging does it all
// with direct updates. Agile paging detects the page-table churn and moves
// the affected subtree to nested mode, keeping fast TLB misses everywhere
// else.
//
//	go run ./examples/cowsnapshot
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"agilepaging"
)

const (
	base  = uint64(0x4000_0000)
	pages = 256
	size  = uint64(pages) << 12
)

// buildScenario models a process that snapshots its heap (fork, or a
// storage engine checkpoint) and then writes through the whole snapshot.
func buildScenario() *agilepaging.Scenario {
	s := agilepaging.NewScenario()
	s.Map(0, base, size, agilepaging.Page4K).Populate(0, base)
	// Warm the translation state so snapshot costs are isolated.
	s.TouchRange(0, base, size, agilepaging.Page4K)
	s.TouchRange(0, base, size, agilepaging.Page4K)
	// Snapshot, then write every page (breaking COW page by page), twice —
	// the second round shows steady-state adaptation.
	for round := 0; round < 2; round++ {
		s.Snapshot(0, base)
		s.WriteRange(0, base, size, agilepaging.Page4K)
	}
	return s
}

func main() {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "technique\tVM exits\texits/page\tVMM overhead\ttotal overhead\n")
	for _, tech := range agilepaging.Techniques() {
		if tech == agilepaging.Native {
			continue // COW costs identical to any unvirtualized OS
		}
		res, err := buildScenario().Run(agilepaging.ScenarioConfig{
			Technique: tech,
			PageSize:  agilepaging.Page4K,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(w, "%s\t%d\t%.2f\t%.1f%%\t%.1f%%\n",
			tech, res.VMExits, float64(res.VMExits)/(2*pages),
			100*res.VMMOverhead, 100*res.TotalOverhead)
	}
	w.Flush()
	fmt.Println("\nShadow paging pays >=2 VM exits per snapshotted page (paper §II-B);")
	fmt.Println("agile paging converts the churning subtree to nested mode and keeps")
	fmt.Println("direct updates (paper §V, \"Content-Based Page Sharing\").")
}
