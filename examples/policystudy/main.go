// Policy study: compare the agile paging policy and hardware options of
// paper §III-C and §IV on one dynamic workload.
//
//	go run ./examples/policystudy
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"agilepaging"
)

func main() {
	const workloadName = "memcached"
	const accesses = 120_000

	type variant struct {
		name string
		cfg  agilepaging.Config
	}
	baseCfg := agilepaging.Config{
		Workload:  workloadName,
		Technique: agilepaging.Agile,
		PageSize:  agilepaging.Page4K,
		Accesses:  accesses,
	}
	variants := []variant{
		{"dirty-scan revert (paper default)", baseCfg},
		{"periodic reset revert", withRevert(baseCfg, agilepaging.RevertReset)},
		{"no revert", withRevert(baseCfg, agilepaging.RevertNone)},
		{"+ hardware A/D (§IV)", withHWAD(baseCfg)},
		{"+ ctx-switch cache (§IV)", withCtxCache(baseCfg, 8)},
		{"no MMU caches (Table VI setting)", withNoCaches(baseCfg)},
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "variant\twalk%%\tvmm%%\ttotal%%\texits\tswitches(n/s)\n")
	for _, v := range variants {
		res, err := agilepaging.Run(v.cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(w, "%s\t%.1f\t%.1f\t%.1f\t%d\t%d/%d\n",
			v.name, 100*res.WalkOverhead, 100*res.VMMOverhead, 100*res.TotalOverhead,
			res.VMExits, res.SwitchesToNested, res.SwitchesToShadow)
	}
	w.Flush()

	fmt.Println("\nThe dirty-bit scan keeps quiescent page-table regions in shadow mode")
	fmt.Println("(fast 4-reference misses) while the dynamic parts stay nested; the")
	fmt.Println("simple reset policy churns between modes, and never reverting leaves")
	fmt.Println("cold regions paying nested walk costs (paper §III-C).")
}

func withRevert(c agilepaging.Config, p agilepaging.RevertPolicy) agilepaging.Config {
	c.Revert = p
	return c
}

func withHWAD(c agilepaging.Config) agilepaging.Config {
	c.HardwareAD = true
	return c
}

func withCtxCache(c agilepaging.Config, n int) agilepaging.Config {
	c.CtxSwitchCacheEntries = n
	return c
}

func withNoCaches(c agilepaging.Config) agilepaging.Config {
	c.DisableMMUCaches = true
	return c
}
