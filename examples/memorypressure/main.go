// Memory pressure: reproduce the paper's §V reclaim scenario.
//
// When free memory is scarce the guest OS runs its clock algorithm,
// clearing referenced bits in page-table entries. Under shadow paging every
// cleared bit is a VM exit on an already-stressed system; under agile
// paging the VMM notices the page-table writes and converts the scanned
// leaf tables to nested mode, absorbing the scan with direct updates.
//
//	go run ./examples/memorypressure
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"agilepaging"
)

const (
	base  = uint64(0x4000_0000)
	pages = 512
	size  = uint64(pages) << 12
)

func buildScenario(scans int) *agilepaging.Scenario {
	s := agilepaging.NewScenario()
	s.Map(0, base, size, agilepaging.Page4K).Populate(0, base)
	s.TouchRange(0, base, size, agilepaging.Page4K)
	for i := 0; i < scans; i++ {
		// The clock hand sweeps, then the workload re-touches its pages
		// (restoring referenced bits and faulting back anything evicted).
		s.Reclaim(0, pages/4)
		s.TouchRange(0, base, size, agilepaging.Page4K)
	}
	return s
}

func main() {
	const scans = 8
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "technique\tVM exits\tVMM overhead\twalk overhead\ttotal")
	for _, tech := range []agilepaging.Technique{agilepaging.Nested, agilepaging.Shadow, agilepaging.Agile} {
		res, err := buildScenario(scans).Run(agilepaging.ScenarioConfig{
			Technique: tech,
			PageSize:  agilepaging.Page4K,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(w, "%s\t%d\t%.1f%%\t%.1f%%\t%.1f%%\n",
			tech, res.VMExits, 100*res.VMMOverhead, 100*res.WalkOverhead, 100*res.TotalOverhead)
	}
	w.Flush()
	fmt.Println("\nPaper §V: \"With agile paging, though, the VMM detects the page-table")
	fmt.Println("writes to clear referenced bits and converts leaf-level page tables to")
	fmt.Println("nested mode to avoid the VMtraps.\"")
}
