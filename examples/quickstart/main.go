// Quickstart: run one of the paper's workloads under all four
// memory-virtualization techniques and see agile paging exceed the best of
// nested and shadow paging (paper §VII.A).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"agilepaging"
)

func main() {
	const workload = "dedup" // the paper's worst case for shadow paging

	fmt.Printf("Simulating %q (%d available workloads: %v)\n\n",
		workload, len(agilepaging.Workloads()), agilepaging.Workloads())

	results, err := agilepaging.Compare(workload, agilepaging.Page4K, 120_000, 42)
	if err != nil {
		log.Fatal(err)
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "technique\twalk overhead\tVMM overhead\ttotal\tVM exits")
	for _, r := range results {
		fmt.Fprintf(w, "%s\t%.1f%%\t%.1f%%\t%.1f%%\t%d\n",
			r.Technique, 100*r.WalkOverhead, 100*r.VMMOverhead, 100*r.TotalOverhead, r.VMExits)
	}
	w.Flush()

	native, nested, shadow, agile := results[0], results[1], results[2], results[3]
	best := nested
	if shadow.TotalOverhead < nested.TotalOverhead {
		best = shadow
	}
	fmt.Printf("\nAgile paging vs best constituent (%s): %+.1f%%\n",
		best.Technique, 100*((1+best.TotalOverhead)/(1+agile.TotalOverhead)-1))
	fmt.Printf("Agile paging vs unvirtualized native:  %+.1f%% slower\n",
		100*((1+agile.TotalOverhead)/(1+native.TotalOverhead)-1))
	fmt.Printf("Agile mode switches: %d to nested, %d back to shadow\n",
		agile.SwitchesToNested, agile.SwitchesToShadow)
}
