// Prior work: compare agile paging against SHSP — selective
// hardware/software paging (Wang et al., VEE 2011), the prior work the
// paper extends (§I, §VII.C).
//
// SHSP switches an *entire* guest process between nested and shadow paging
// over time; agile paging switches *parts of a single page walk*. On a
// workload whose address space has both static and dynamic regions, SHSP
// can only pick the lesser evil, while agile paging gets native-speed
// misses for the static parts and direct updates for the dynamic ones.
//
//	go run ./examples/priorwork
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"agilepaging"
)

func main() {
	const accesses = 120_000
	workloads := []string{"dedup", "gcc", "mcf", "graph500"}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "workload\tnested\tshadow\tSHSP\tagile")
	for _, name := range workloads {
		row := []string{name}
		for _, cfg := range []agilepaging.Config{
			{Workload: name, Technique: agilepaging.Nested},
			{Workload: name, Technique: agilepaging.Shadow},
			{Workload: name, Technique: agilepaging.Agile, SHSPBaseline: true, Warmup: accesses},
			{Workload: name, Technique: agilepaging.Agile},
		} {
			cfg.PageSize = agilepaging.Page4K
			cfg.Accesses = accesses
			res, err := agilepaging.Run(cfg)
			if err != nil {
				log.Fatal(err)
			}
			row = append(row, fmt.Sprintf("%.1f%%", 100*res.TotalOverhead))
		}
		fmt.Fprintln(w, row[0]+"\t"+row[1]+"\t"+row[2]+"\t"+row[3]+"\t"+row[4])
	}
	w.Flush()
	fmt.Println("\nSHSP (temporal-only) approximates the best of nested and shadow;")
	fmt.Println("agile paging (temporal + spatial) exceeds it — paper §VII.C.")
}
