package main

import (
	"fmt"
	"io"
	"os"
	"strings"

	"agilepaging/internal/experiments"
	"agilepaging/internal/pagetable"
	"agilepaging/internal/telemetry"
	"agilepaging/internal/walker"
)

// telemetryRun bundles the flag values a -metrics / -walk-trace run uses.
type telemetryRun struct {
	workload  string
	technique string
	pageSize  string
	accesses  int
	warmup    int
	seed      int64
	noCaches  bool
	hwAD      bool
	ctxCache  int
	shsp      bool
	metrics   string
	epochLen  int
	walkTrace string
}

// runWithTelemetry runs one workload with the epoch recorder (and,
// optionally, the walk-event ring) attached, prints the adaptation table,
// and writes the requested export files.
func runWithTelemetry(r telemetryRun) error {
	mode, err := walker.ParseMode(r.technique)
	if err != nil {
		return err
	}
	size, err := pagetable.ParseSize(r.pageSize)
	if err != nil {
		return err
	}
	o := experiments.DefaultOptions(mode, size)
	o.Accesses = r.accesses
	o.Warmup = r.warmup
	o.Seed = r.seed
	o.DisablePWC = r.noCaches
	o.DisableNTLB = r.noCaches
	o.HardwareAD = r.hwAD
	o.CtxSwitchCache = r.ctxCache
	o.UseSHSP = r.shsp

	rec := telemetry.NewRecorder(r.epochLen)
	o.Metrics = rec
	var ring *telemetry.EventRing
	if r.walkTrace != "" {
		ring = telemetry.NewEventRing(0)
		o.WalkEvents = ring
	}

	rep, err := experiments.RunProfile(r.workload, o)
	if err != nil {
		return err
	}
	fmt.Println(rep.String())
	s := rec.Series()
	fmt.Print(s.Table())

	if r.metrics != "" {
		if err := writeSeries(r.metrics, s); err != nil {
			return err
		}
		fmt.Printf("wrote %d epochs to %s\n", len(s.Epochs), r.metrics)
	}
	if r.walkTrace != "" {
		if err := writeFile(r.walkTrace, ring.WriteChromeTrace); err != nil {
			return err
		}
		fmt.Printf("wrote %d walk events to %s (chrome://tracing)\n", len(ring.Events()), r.walkTrace)
	}
	return nil
}

// writeSeries exports the series by extension: .csv selects CSV, anything
// else the self-describing JSON form.
func writeSeries(path string, s *telemetry.Series) error {
	write := s.WriteJSON
	if strings.HasSuffix(path, ".csv") {
		write = s.WriteCSV
	}
	return writeFile(path, write)
}

func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return write(f)
}
