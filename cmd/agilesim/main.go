// Command agilesim runs one workload under one memory-virtualization
// configuration and prints the measurement report.
//
// Usage:
//
//	agilesim -workload dedup -technique agile -pagesize 4K
//	agilesim -workload mcf -compare            # all four techniques
//	agilesim -workload mcf -compare -fail collect -retries 2
//	agilesim -list                             # available workloads
//
// In -compare, SIGINT/SIGTERM interrupt gracefully: in-flight simulations
// finish, the completed-cell count and cache statistics go to stderr, and
// the process exits with status 130.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"text/tabwriter"
	"time"

	"agilepaging"
	"agilepaging/internal/cpu"
	"agilepaging/internal/repcache"
	"agilepaging/internal/workload"
)

func main() {
	var (
		workloadName = flag.String("workload", "dedup", "workload name (see -list)")
		technique    = flag.String("technique", "agile", "native | nested | shadow | agile")
		pageSize     = flag.String("pagesize", "4K", "4K | 2M")
		accesses     = flag.Int("accesses", 120_000, "measured steady-phase accesses")
		warmup       = flag.Int("warmup", 0, "warmup accesses (0 = accesses/2, -1 = none)")
		seed         = flag.Int64("seed", 42, "random seed")
		compare      = flag.Bool("compare", false, "run all four techniques and compare")
		parallel     = flag.Int("parallel", 0, "simulations to run concurrently in -compare (0 = one per CPU, 1 = serial)")
		failPolicy   = flag.String("fail", "fast", "-compare error policy: 'fast' stops at the first failed cell, 'collect' runs every cell and reports all failures")
		retries      = flag.Int("retries", 0, "re-run a failed -compare cell up to this many extra times")
		list         = flag.Bool("list", false, "list available workloads")
		noCaches     = flag.Bool("no-mmu-caches", false, "disable page walk caches and nested TLB")
		hwAD         = flag.Bool("hw-ad", false, "enable the §IV hardware A/D optimization")
		ctxCache     = flag.Int("ctx-cache", 0, "entries in the §IV context-switch cache (0 = off)")
		shsp         = flag.Bool("shsp", false, "use the SHSP prior-work baseline instead of the agile manager (technique must be agile)")
		jsonOut      = flag.Bool("json", false, "emit the result as JSON")
		metrics      = flag.String("metrics", "", "write the epoch telemetry series to this file (.csv for CSV, else JSON)")
		metricsEpoch = flag.Int("metrics-epoch", 2000, "telemetry sampling interval in accesses")
		walkTrace    = flag.String("walk-trace", "", "write the last page walks as Chrome trace-event JSON to this file")
		cpuProfile   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile   = flag.String("memprofile", "", "write a heap profile to this file on exit")
		streamCache  = flag.Int64("stream-cache", workload.DefaultStreamCacheBytes>>20, "shared workload stream cache budget in MiB (0 disables sharing, -1 unbounded)")
		streamDir    = flag.String("stream-cache-dir", "", "persist generated workload streams in this directory and reuse them across runs")
		reportCache  = flag.Int64("report-cache", repcache.DefaultBudgetBytes>>20, "memoized simulation report cache budget in MiB (0 disables memoization, -1 unbounded)")
		reportDir    = flag.String("report-cache-dir", "", "persist simulation reports in this directory and reuse them across runs")
		machinePool  = flag.Int("machine-pool", cpu.DefaultMachinePoolCapacity, "idle simulated machines kept for reuse across runs (0 disables pooling)")
		progress     = flag.Bool("progress", false, "print stream-cache and machine-pool statistics to stderr on exit")
	)
	flag.Parse()

	if *failPolicy != "fast" && *failPolicy != "collect" {
		fatal(fmt.Errorf("-fail %q: want 'fast' or 'collect'", *failPolicy))
	}
	if *retries < 0 {
		fatal(fmt.Errorf("-retries %d: want >= 0", *retries))
	}

	if *streamCache < 0 {
		workload.SetStreamCacheBudget(-1)
	} else {
		workload.SetStreamCacheBudget(*streamCache << 20)
	}
	workload.SetStreamCacheDir(*streamDir)
	if *reportCache < 0 {
		repcache.SetBudget(-1)
	} else {
		repcache.SetBudget(*reportCache << 20)
	}
	repcache.SetDir(*reportDir)
	cpu.SetMachinePoolCapacity(*machinePool)
	printCacheStats := func() {
		hits, misses, retired, idle := cpu.MachinePoolStats()
		fmt.Fprintf(os.Stderr, "machine pool: %d reused, %d built, %d retired, %d idle\n", hits, misses, retired, idle)
		info := workload.StreamCacheInfo()
		fmt.Fprintf(os.Stderr, "stream cache: %d hits, %d generated, %d streams, %.1f MiB packed\n",
			info.Hits, info.Misses, info.Streams, float64(info.Bytes)/(1<<20))
		if *streamDir != "" {
			fmt.Fprintf(os.Stderr, "stream disk cache: %d loaded, %d generated, %d write errors\n",
				info.DiskHits, info.DiskMisses, info.DiskErrors)
		}
		rinfo := repcache.Info()
		fmt.Fprintf(os.Stderr, "report cache: %d hits, %d simulated, %d deduped, %d reports\n",
			rinfo.Hits, rinfo.Misses, rinfo.Deduped, rinfo.Reports)
		if *reportDir != "" {
			fmt.Fprintf(os.Stderr, "report disk cache: %d loaded, %d simulated, %d write errors\n",
				rinfo.DiskHits, rinfo.DiskMisses, rinfo.DiskErrors)
		}
	}
	if *progress {
		defer printCacheStats()
	}

	if *list {
		fmt.Println(strings.Join(agilepaging.Workloads(), "\n"))
		return
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(fmt.Errorf("-cpuprofile: %w", err))
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(fmt.Errorf("-cpuprofile: %w", err))
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "agilesim: -memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "agilesim: -memprofile:", err)
			}
		}()
	}

	tech, err := agilepaging.ParseTechnique(*technique)
	if err != nil {
		fatal(err)
	}
	ps, err := agilepaging.ParsePageSize(*pageSize)
	if err != nil {
		fatal(err)
	}

	if *compare {
		// SIGINT/SIGTERM cancel the sweep; once the context is canceled the
		// handler is released so a second signal kills the process the
		// default way.
		ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stopSignals()
		go func() {
			<-ctx.Done()
			stopSignals()
		}()
		opts := agilepaging.RunAllOptions{
			Workers:    *parallel,
			CollectAll: *failPolicy == "collect",
			Retries:    *retries,
		}
		if opts.Retries > 0 {
			opts.RetryBackoff = 50 * time.Millisecond
		}
		results, completed, err := agilepaging.CompareWith(ctx, opts, *workloadName, ps, *accesses, *seed)
		if err != nil {
			if errors.Is(err, ctx.Err()) && ctx.Err() != nil {
				done := 0
				for _, ok := range completed {
					if ok {
						done++
					}
				}
				fmt.Fprintf(os.Stderr, "agilesim: interrupted after %d of %d completed simulations\n",
					done, len(completed))
				printCacheStats()
				os.Exit(130)
			}
			// Under -fail collect the healthy cells still compare; print
			// them before reporting the failures.
			printComparison(results, completed)
			fatal(err)
		}
		printComparison(results, completed)
		return
	}

	if *metrics != "" || *walkTrace != "" {
		// Telemetry needs the experiments layer directly: the facade's
		// Result is an end-of-run aggregate, while the recorder and the
		// walk-event ring attach to the machine for the measured window.
		err := runWithTelemetry(telemetryRun{
			workload:  *workloadName,
			technique: *technique,
			pageSize:  *pageSize,
			accesses:  *accesses,
			warmup:    *warmup,
			seed:      *seed,
			noCaches:  *noCaches,
			hwAD:      *hwAD,
			ctxCache:  *ctxCache,
			shsp:      *shsp,
			metrics:   *metrics,
			epochLen:  *metricsEpoch,
			walkTrace: *walkTrace,
		})
		if err != nil {
			fatal(err)
		}
		return
	}

	res, err := agilepaging.Run(agilepaging.Config{
		Workload:              *workloadName,
		Technique:             tech,
		PageSize:              ps,
		Accesses:              *accesses,
		Warmup:                *warmup,
		Seed:                  *seed,
		DisableMMUCaches:      *noCaches,
		HardwareAD:            *hwAD,
		CtxSwitchCacheEntries: *ctxCache,
		SHSPBaseline:          *shsp,
	})
	if err != nil {
		fatal(err)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fatal(err)
		}
		return
	}
	printResult(res)
}

func printResult(r agilepaging.Result) {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "workload\t%s\n", r.Workload)
	fmt.Fprintf(w, "configuration\t%s pages, %s paging\n", r.PageSize, r.Technique)
	fmt.Fprintf(w, "page-walk overhead\t%.1f%%\n", 100*r.WalkOverhead)
	fmt.Fprintf(w, "VMM overhead\t%.1f%%\n", 100*r.VMMOverhead)
	fmt.Fprintf(w, "total overhead\t%.1f%%\n", 100*r.TotalOverhead)
	fmt.Fprintf(w, "accesses\t%d\n", r.Accesses)
	fmt.Fprintf(w, "TLB misses\t%d (%.1f MPKI)\n", r.TLBMisses, r.MPKI)
	fmt.Fprintf(w, "walk refs/miss\t%.2f (p50 %d, p95 %d)\n", r.AvgRefsPerMiss, r.RefsP50, r.RefsP95)
	fmt.Fprintf(w, "VM exits\t%d\n", r.VMExits)
	fmt.Fprintf(w, "guest page faults\t%d\n", r.GuestFaults)
	if r.Technique == agilepaging.Agile {
		fmt.Fprintf(w, "agile switches\t%d to nested, %d to shadow\n", r.SwitchesToNested, r.SwitchesToShadow)
	}
	w.Flush()
}

// printComparison renders the -compare table. completed masks which slots
// hold real measurements (nil = all); slots without one — failed, or never
// run after a fail-fast stop — are marked rather than printed as a row of
// misleading zeros (the returned error attributes the actual failures).
func printComparison(results []agilepaging.Result, completed []bool) {
	if len(results) == 0 {
		return
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "technique\twalk%\tvmm%\ttotal%\tmisses\trefs/miss\tvm-exits")
	for i, r := range results {
		if completed != nil && !completed[i] {
			fmt.Fprintf(w, "%s\t(no result)\t\t\t\t\t\n", agilepaging.Techniques()[i])
			continue
		}
		fmt.Fprintf(w, "%s\t%.1f\t%.1f\t%.1f\t%d\t%.2f\t%d\n",
			r.Technique, 100*r.WalkOverhead, 100*r.VMMOverhead, 100*r.TotalOverhead,
			r.TLBMisses, r.AvgRefsPerMiss, r.VMExits)
	}
	w.Flush()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "agilesim:", err)
	os.Exit(1)
}
