package main

import (
	"testing"

	"agilepaging"
)

// The -technique and -pagesize flags route through the facade's shared
// parsers; these tests pin the alias set the CLI documents.

func TestParseTechnique(t *testing.T) {
	for in, want := range map[string]string{
		"native": "native", "B": "native", "nested": "nested", "n": "nested",
		"Shadow": "shadow", "agile": "agile", "A": "agile",
	} {
		got, err := agilepaging.ParseTechnique(in)
		if err != nil {
			t.Errorf("ParseTechnique(%q): %v", in, err)
			continue
		}
		if got.String() != want {
			t.Errorf("ParseTechnique(%q) = %v, want %s", in, got, want)
		}
	}
	if _, err := agilepaging.ParseTechnique("zen"); err == nil {
		t.Error("bad technique accepted")
	}
}

func TestParsePageSize(t *testing.T) {
	for in, want := range map[string]string{
		"4K": "4K", "4kb": "4K", "2M": "2M", "2mb": "2M", "1g": "1G",
	} {
		got, err := agilepaging.ParsePageSize(in)
		if err != nil {
			t.Errorf("ParsePageSize(%q): %v", in, err)
			continue
		}
		if got.String() != want {
			t.Errorf("ParsePageSize(%q) = %v", in, got)
		}
	}
	if _, err := agilepaging.ParsePageSize("8M"); err == nil {
		t.Error("bad page size accepted")
	}
}
