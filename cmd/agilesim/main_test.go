package main

import "testing"

func TestParseTechnique(t *testing.T) {
	cases := map[string]struct {
		want agilepagingTechnique
		ok   bool
	}{}
	_ = cases
	for in, want := range map[string]string{
		"native": "native", "B": "native", "nested": "nested", "n": "nested",
		"Shadow": "shadow", "agile": "agile", "A": "agile",
	} {
		got, err := parseTechnique(in)
		if err != nil {
			t.Errorf("parseTechnique(%q): %v", in, err)
			continue
		}
		if got.String() != want {
			t.Errorf("parseTechnique(%q) = %v, want %s", in, got, want)
		}
	}
	if _, err := parseTechnique("zen"); err == nil {
		t.Error("bad technique accepted")
	}
}

// agilepagingTechnique is a local alias to keep the test table readable.
type agilepagingTechnique = interface{ String() string }

func TestParsePageSize(t *testing.T) {
	for in, want := range map[string]string{"4K": "4K", "4kb": "4K", "2M": "2M", "2mb": "2M"} {
		got, err := parsePageSize(in)
		if err != nil {
			t.Errorf("parsePageSize(%q): %v", in, err)
			continue
		}
		if got.String() != want {
			t.Errorf("parsePageSize(%q) = %v", in, got)
		}
	}
	if _, err := parsePageSize("1G"); err == nil {
		t.Error("agilesim does not expose 1G; should reject")
	}
}
