// Command benchbaseline replays the benchmark results recorded in
// BENCH_PR9.json as standard Go benchmark output, so the committed baseline
// can be fed straight to benchstat:
//
//	go run ./cmd/benchbaseline > old.txt
//	go test -bench . -run '^$' -count 5 ./internal/... > new.txt
//	benchstat old.txt new.txt
//
// By default it emits the "after" lines (the baseline the current tree is
// expected to match); -which before emits the pre-optimization numbers that
// motivated the recording. Earlier baselines stay in the tree as history
// (-file BENCH_PR7.json replays the PR 7 numbers, -file BENCH_PR6.json the
// PR 6 numbers, and so on).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
)

// Baseline is the schema of the BENCH_PR*.json files.
type Baseline struct {
	Recorded string `json:"recorded"` // ISO date the numbers were captured
	Goos     string `json:"goos"`
	Goarch   string `json:"goarch"`
	CPU      string `json:"cpu"`
	Notes    string `json:"notes"`
	// Before/After hold verbatim `go test -bench` result lines
	// ("BenchmarkX-N  iters  ns/op ..."), suitable for benchstat.
	Before []string `json:"before"`
	After  []string `json:"after"`
}

func main() {
	var (
		path  = flag.String("file", "BENCH_PR9.json", "baseline file to replay")
		which = flag.String("which", "after", "which recording to emit: before | after")
	)
	flag.Parse()

	f := *path
	if _, err := os.Stat(f); os.IsNotExist(err) {
		// Allow running from anywhere inside the repo.
		if root, rerr := findUp(filepath.Base(f)); rerr == nil {
			f = root
		}
	}
	data, err := os.ReadFile(f)
	if err != nil {
		fatal(err)
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		fatal(fmt.Errorf("%s: %w", f, err))
	}
	var lines []string
	switch *which {
	case "before":
		lines = b.Before
	case "after":
		lines = b.After
	default:
		fatal(fmt.Errorf("unknown -which %q (before|after)", *which))
	}
	if len(lines) == 0 {
		fatal(fmt.Errorf("%s: no %q lines recorded", f, *which))
	}
	// benchstat reads goos/goarch/cpu as configuration labels.
	if b.Goos != "" {
		fmt.Printf("goos: %s\n", b.Goos)
	}
	if b.Goarch != "" {
		fmt.Printf("goarch: %s\n", b.Goarch)
	}
	if b.CPU != "" {
		fmt.Printf("cpu: %s\n", b.CPU)
	}
	for _, l := range lines {
		fmt.Println(l)
	}
}

// findUp walks from the working directory toward the root looking for name.
func findUp(name string) (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		p := filepath.Join(dir, name)
		if _, err := os.Stat(p); err == nil {
			return p, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", os.ErrNotExist
		}
		dir = parent
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchbaseline:", err)
	os.Exit(1)
}
