// Command tracegen records, replays, and analyzes simulation traces — the
// reproduction of the paper's two-step trace methodology (§VI).
//
// Usage:
//
//	tracegen -record ops.trace -workload dedup -accesses 100000
//	    Record the deterministic op stream of a workload.
//
//	tracegen -replay ops.trace -technique agile -pagesize 4K
//	    Replay a recorded stream on a machine configuration and report.
//
//	tracegen -misslog miss.trace -workload dedup -technique agile
//	    Run with TLB-miss classification recording (BadgerTrap analog) and
//	    save the per-miss log.
//
//	tracegen -analyze miss.trace
//	    Summarize a saved miss log into the paper's Table VI row.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"agilepaging/internal/cpu"
	"agilepaging/internal/experiments"
	"agilepaging/internal/pagetable"
	"agilepaging/internal/trace"
	"agilepaging/internal/walker"
	"agilepaging/internal/workload"
)

func main() {
	var (
		record    = flag.String("record", "", "record the workload's op stream to this file")
		replay    = flag.String("replay", "", "replay an op stream from this file")
		misslog   = flag.String("misslog", "", "run the workload and save the TLB-miss log to this file")
		analyze   = flag.String("analyze", "", "summarize a saved TLB-miss log")
		name      = flag.String("workload", "dedup", "workload name")
		technique = flag.String("technique", "agile", "native | nested | shadow | agile")
		pageSize  = flag.String("pagesize", "4K", "4K | 2M")
		accesses  = flag.Int("accesses", 120_000, "steady-phase accesses")
		seed      = flag.Int64("seed", 42, "random seed")
	)
	flag.Parse()

	switch {
	case *record != "":
		fatalIf(doRecord(*record, *name, *pageSize, *accesses, *seed))
	case *replay != "":
		fatalIf(doReplay(*replay, *technique, *pageSize))
	case *misslog != "":
		fatalIf(doMissLog(*misslog, *name, *technique, *pageSize, *accesses, *seed))
	case *analyze != "":
		fatalIf(doAnalyze(*analyze))
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func parseMode(s string) (walker.Mode, error) {
	switch strings.ToLower(s) {
	case "native":
		return walker.ModeNative, nil
	case "nested":
		return walker.ModeNested, nil
	case "shadow":
		return walker.ModeShadow, nil
	case "agile":
		return walker.ModeAgile, nil
	}
	return 0, fmt.Errorf("unknown technique %q", s)
}

func parseSize(s string) (pagetable.Size, error) {
	switch strings.ToUpper(s) {
	case "4K":
		return pagetable.Size4K, nil
	case "2M":
		return pagetable.Size2M, nil
	}
	return 0, fmt.Errorf("unknown page size %q", s)
}

func doRecord(path, name, ps string, accesses int, seed int64) error {
	prof, ok := workload.ProfileByName(name)
	if !ok {
		return fmt.Errorf("unknown workload %q", name)
	}
	size, err := parseSize(ps)
	if err != nil {
		return err
	}
	ops := workload.Collect(workload.New(prof, size, accesses, seed), 0)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := trace.WriteOps(f, ops); err != nil {
		return err
	}
	fmt.Printf("recorded %d ops of %s to %s\n", len(ops), name, path)
	return nil
}

func doReplay(path, technique, ps string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	ops, err := trace.ReadOps(f)
	if err != nil {
		return err
	}
	mode, err := parseMode(technique)
	if err != nil {
		return err
	}
	size, err := parseSize(ps)
	if err != nil {
		return err
	}
	m, err := cpu.New(cpu.DefaultConfig(mode, size))
	if err != nil {
		return err
	}
	if err := m.Run(workload.NewFromOps(path, ops)); err != nil {
		return err
	}
	rep := m.Report(path)
	fmt.Printf("replayed %d ops: %s\n", len(ops), rep.String())
	return nil
}

func doMissLog(path, name, technique, ps string, accesses int, seed int64) error {
	mode, err := parseMode(technique)
	if err != nil {
		return err
	}
	size, err := parseSize(ps)
	if err != nil {
		return err
	}
	var log trace.MissLog
	o := experiments.DefaultOptions(mode, size)
	o.Accesses = accesses
	o.Seed = seed
	o.MissLog = &log
	if _, err := experiments.RunProfile(name, o); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := log.Save(f); err != nil {
		return err
	}
	fmt.Printf("saved %d miss records to %s\n", len(log.Records), path)
	return printSummary(log.Summary())
}

func doAnalyze(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	log, err := trace.LoadMissLog(f)
	if err != nil {
		return err
	}
	return printSummary(log.Summary())
}

func printSummary(s trace.MissSummary) error {
	fmt.Printf("misses: %d\n", s.Total)
	labels := []string{"full shadow (4)", "switch L4 (8)", "switch L3 (12)", "switch L2 (16)", "switch L1 (20)", "full nested (24)"}
	for c, label := range labels {
		fmt.Printf("  %-18s %6.2f%%\n", label, 100*s.Fraction(c))
	}
	fmt.Printf("avg refs/miss: %.2f\n", s.AvgRefs())
	fmt.Printf("write misses: %.2f%%  (%d of %d)\n", 100*s.WriteFraction(), s.Writes, s.Total)
	fmt.Printf("retry records: %.2f%%  (%d write-protect re-walks)\n", 100*s.RetryFraction(), s.Retries)
	return nil
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}
