package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestParseHelpers(t *testing.T) {
	for _, s := range []string{"native", "nested", "shadow", "agile"} {
		if _, err := parseMode(s); err != nil {
			t.Errorf("parseMode(%q): %v", s, err)
		}
	}
	if _, err := parseMode("x"); err == nil {
		t.Error("bad mode accepted")
	}
	for _, s := range []string{"4K", "2M"} {
		if _, err := parseSize(s); err != nil {
			t.Errorf("parseSize(%q): %v", s, err)
		}
	}
	if _, err := parseSize("3M"); err == nil {
		t.Error("bad size accepted")
	}
}

func TestRecordReplayAnalyzeRoundTrip(t *testing.T) {
	dir := t.TempDir()
	ops := filepath.Join(dir, "ops.trace")
	if err := doRecord(ops, "astar", "4K", 2000, 1); err != nil {
		t.Fatalf("record: %v", err)
	}
	if _, err := os.Stat(ops); err != nil {
		t.Fatal(err)
	}
	if err := doReplay(ops, "shadow", "4K"); err != nil {
		t.Fatalf("replay: %v", err)
	}
	miss := filepath.Join(dir, "miss.trace")
	if err := doMissLog(miss, "astar", "agile", "4K", 2000, 1); err != nil {
		t.Fatalf("misslog: %v", err)
	}
	if err := doAnalyze(miss); err != nil {
		t.Fatalf("analyze: %v", err)
	}
	if err := doRecord(ops, "nope", "4K", 10, 1); err == nil {
		t.Error("unknown workload accepted")
	}
}
