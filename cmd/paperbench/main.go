// Command paperbench regenerates the tables and figures of "Agile Paging:
// Exceeding the Best of Nested and Shadow Paging" (ISCA 2016) from the
// simulator.
//
// Usage:
//
//	paperbench -all                  # everything
//	paperbench -table 1              # Table I
//	paperbench -table 2              # Table II (+ Figure 3 sequences)
//	paperbench -table 6              # Table VI
//	paperbench -figure 1             # Figure 1 walk traces
//	paperbench -figure 5             # Figure 5 sweep + §VII.A headline
//	paperbench -ablations            # §III-C / §IV design-choice ablations
//	paperbench -validate canneal     # Table IV model vs direct simulation
//	paperbench -metrics out.json     # adaptation-curve epoch telemetry
//	paperbench -run mcf -technique shadow -pagesize 2M   # one sweep cell
//	paperbench -all -parallel 8      # same results, 8 simulations at a time
//	paperbench -all -fail collect -retries 2   # run past bad cells, retry flakes
//
// SIGINT/SIGTERM interrupt gracefully: in-flight simulations finish, the
// completed-cell count and cache statistics go to stderr, and the process
// exits with status 130.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"agilepaging/internal/cpu"
	"agilepaging/internal/experiments"
	"agilepaging/internal/pagetable"
	"agilepaging/internal/repcache"
	"agilepaging/internal/sweep"
	"agilepaging/internal/telemetry"
	"agilepaging/internal/walker"
	"agilepaging/internal/workload"
)

// options holds the parsed command line. Parsing is separated from main so
// it can be tested without executing simulations.
type options struct {
	table      int
	figure     int
	ablations  bool
	shsp       bool
	sens       bool
	validate   string
	all        bool
	accesses   int
	seed       int64
	workloads  []string
	csvDir     string
	parallel   int
	progress   bool
	fail       string
	retries    int
	cpuProfile string
	memProfile string

	metrics      string
	metricsEpoch int
	walkTrace    string

	runWorkload string
	technique   string
	pageSize    string

	streamCacheMB  int64
	streamCacheDir string
	reportCacheMB  int64
	reportCacheDir string
	machinePool    int
}

// parseArgs parses the paperbench command line (without the program name).
func parseArgs(args []string, stderr io.Writer) (options, error) {
	fs := flag.NewFlagSet("paperbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		o         options
		workloads string
	)
	fs.IntVar(&o.table, "table", 0, "regenerate table 1, 2, 3, 5, or 6")
	fs.IntVar(&o.figure, "figure", 0, "regenerate figure 1 or 5")
	fs.BoolVar(&o.ablations, "ablations", false, "run the design-choice ablations")
	fs.BoolVar(&o.shsp, "shsp", false, "compare against the SHSP prior-work baseline (§VII.C)")
	fs.BoolVar(&o.sens, "sensitivity", false, "sweep the cost-model calibration and check robustness")
	fs.StringVar(&o.validate, "validate", "", "validate the Table IV model on a workload")
	fs.BoolVar(&o.all, "all", false, "regenerate everything")
	fs.IntVar(&o.accesses, "accesses", 120_000, "measured accesses per run")
	fs.Int64Var(&o.seed, "seed", 42, "random seed")
	fs.StringVar(&workloads, "workloads", "", "comma-separated workload subset (default: all)")
	fs.StringVar(&o.csvDir, "csv", "", "also write figure5.csv / table6.csv into this directory")
	fs.IntVar(&o.parallel, "parallel", 0, "simulations to run concurrently (0 = one per CPU, 1 = serial)")
	fs.BoolVar(&o.progress, "progress", false, "print per-simulation progress to stderr")
	fs.StringVar(&o.fail, "fail", "fast", "error policy: 'fast' stops at the first failed cell, 'collect' runs every cell and reports all failures")
	fs.IntVar(&o.retries, "retries", 0, "re-run a failed simulation cell up to this many extra times")
	fs.StringVar(&o.cpuProfile, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&o.memProfile, "memprofile", "", "write a heap profile to this file on exit")
	fs.StringVar(&o.metrics, "metrics", "", "run the adaptation-curve experiment and write its epoch series to this file (.csv for CSV, else JSON)")
	fs.IntVar(&o.metricsEpoch, "metrics-epoch", 2000, "telemetry sampling interval in accesses for -metrics")
	fs.StringVar(&o.walkTrace, "walk-trace", "", "with -metrics: also write the last page walks as Chrome trace-event JSON to this file")
	fs.Int64Var(&o.streamCacheMB, "stream-cache", workload.DefaultStreamCacheBytes>>20, "shared workload stream cache budget in MiB (0 disables sharing, -1 unbounded)")
	fs.StringVar(&o.streamCacheDir, "stream-cache-dir", "", "persist generated workload streams in this directory and reuse them across runs")
	fs.Int64Var(&o.reportCacheMB, "report-cache", repcache.DefaultBudgetBytes>>20, "memoized simulation report cache budget in MiB (0 disables memoization, -1 unbounded)")
	fs.StringVar(&o.reportCacheDir, "report-cache-dir", "", "persist simulation reports in this directory and reuse them across runs")
	fs.IntVar(&o.machinePool, "machine-pool", cpu.DefaultMachinePoolCapacity, "idle simulated machines kept for reuse across sweep cells (0 disables pooling)")
	fs.StringVar(&o.runWorkload, "run", "", "run one sweep cell: this workload under -technique and -pagesize")
	fs.StringVar(&o.technique, "technique", "agile", "technique for -run (native | nested | shadow | agile)")
	fs.StringVar(&o.pageSize, "pagesize", "4K", "page size for -run (4K | 2M | 1G)")
	if err := fs.Parse(args); err != nil {
		return options{}, err
	}
	if fs.NArg() > 0 {
		return options{}, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if o.fail != "fast" && o.fail != "collect" {
		return options{}, fmt.Errorf("-fail %q: want 'fast' or 'collect'", o.fail)
	}
	if o.retries < 0 {
		return options{}, fmt.Errorf("-retries %d: want >= 0", o.retries)
	}
	if workloads != "" {
		o.workloads = strings.Split(workloads, ",")
	}
	return o, nil
}

// completedSims counts successfully finished simulations across every sweep
// of the invocation, for the interrupt report.
var completedSims atomic.Int64

// sweepConfig builds the shared sweep configuration: the requested worker
// count, error policy, and retry budget. OnProgress is always installed to
// feed the interrupt report's completed-simulation counter; it prints a
// stderr line per finished simulation only when -progress is set.
func (o options) sweepConfig(stderr io.Writer) sweep.Config {
	cfg := sweep.Config{Workers: o.parallel}
	progress := o.progress
	cfg.OnProgress = func(p sweep.Progress) {
		completedSims.Add(1)
		if progress {
			fmt.Fprintf(stderr, "  [%d/%d] %s (%.2fs)\n", p.Done, p.Total, p.Key, p.Elapsed.Seconds())
		}
	}
	if o.fail == "collect" {
		cfg.ErrorPolicy = sweep.CollectAll
	}
	if o.retries > 0 {
		cfg.Retry = sweep.Retry{Attempts: o.retries, Backoff: 50 * time.Millisecond}
	}
	return cfg
}

// startProfiles begins CPU profiling (when cpuPath is non-empty) and returns
// a stop function that finishes the CPU profile and writes the heap profile
// (when memPath is non-empty). The stop function must run before the process
// exits, including on error paths.
func startProfiles(cpuPath, memPath string) (func(), error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("-cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("-cpuprofile: %w", err)
		}
		cpuFile = f
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "-memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "-memprofile:", err)
			}
		}
	}, nil
}

func main() {
	opts, err := parseArgs(os.Args[1:], os.Stderr)
	if err != nil {
		if err == flag.ErrHelp {
			os.Exit(2)
		}
		fmt.Fprintln(os.Stderr, "paperbench:", err)
		os.Exit(2)
	}

	applyStreamCacheBudget(opts.streamCacheMB)
	workload.SetStreamCacheDir(opts.streamCacheDir)
	applyReportCacheBudget(opts.reportCacheMB)
	repcache.SetDir(opts.reportCacheDir)
	cpu.SetMachinePoolCapacity(opts.machinePool)

	stopProfiles, err := startProfiles(opts.cpuProfile, opts.memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "paperbench:", err)
		os.Exit(2)
	}
	defer stopProfiles()

	// SIGINT/SIGTERM cancel the context: in-flight simulations finish, no
	// new ones start, and the run() wrapper reports what completed before
	// exiting nonzero. A second signal kills the process the default way.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	go func() {
		// Once the first signal cancels the context, release the handler so
		// a second signal terminates immediately.
		<-ctx.Done()
		stopSignals()
	}()
	scfg := opts.sweepConfig(os.Stderr)
	names := opts.workloads

	ran := false
	run := func(name string, fn func() error) {
		ran = true
		fmt.Printf("==> %s\n", name)
		if err := fn(); err != nil {
			if ctx.Err() != nil {
				fmt.Fprintf(os.Stderr, "paperbench: %s: interrupted after %d completed simulations\n",
					name, completedSims.Load())
				printCacheStats(os.Stderr, opts)
				stopProfiles()
				os.Exit(130)
			}
			fmt.Fprintf(os.Stderr, "paperbench: %s: %v\n", name, err)
			stopProfiles()
			os.Exit(1)
		}
		fmt.Println()
	}

	if opts.all || opts.table == 1 {
		run("Table I", func() error {
			// Each sweep driver returns whatever rows completed even on
			// error (-fail collect keeps going past bad cells), so the
			// partial table always prints before the failure is reported.
			rows, err := experiments.TableISweep(ctx, scfg)
			if len(rows) > 0 {
				fmt.Print(experiments.FormatTableI(rows))
			}
			return err
		})
	}
	if opts.all || opts.table == 3 {
		run("Table III (system configuration)", func() error {
			fmt.Print(experiments.TableIII())
			return nil
		})
	}
	if opts.all || opts.table == 5 {
		run("Table V (workload characteristics)", func() error {
			rows, err := experiments.TableVSweep(ctx, scfg, opts.accesses, opts.seed)
			if len(rows) > 0 {
				fmt.Print(experiments.FormatTableV(rows))
			}
			return err
		})
	}
	if opts.all || opts.table == 2 {
		run("Table II / Figure 3", func() error {
			rows, err := experiments.TableIISweep(ctx, scfg)
			if len(rows) > 0 {
				fmt.Print(experiments.FormatTableII(rows))
			}
			return err
		})
	}
	if opts.all || opts.figure == 1 {
		run("Figure 1 walk traces", func() error {
			traces, err := experiments.WalkTraces()
			if err != nil {
				return err
			}
			fmt.Print(experiments.FormatWalkTraces(traces))
			return nil
		})
	}
	if opts.all || opts.figure == 5 {
		run("Figure 5 + headline", func() error {
			res, err := experiments.Figure5Sweep(ctx, scfg, names, opts.accesses, opts.seed)
			if err != nil {
				// Partial figure: print completed cells with failures marked,
				// skip the chart/headline/CSV derived views.
				if res != nil && len(res.Rows)+len(res.Failed) > 0 {
					fmt.Print(experiments.FormatFigure5(res))
				}
				return err
			}
			fmt.Print(experiments.FormatFigure5(res))
			fmt.Println()
			fmt.Print(experiments.FormatFigure5Chart(res))
			fmt.Println()
			fmt.Print(experiments.FormatHeadline(experiments.Headline(res)))
			if opts.csvDir != "" {
				f, err := os.Create(filepath.Join(opts.csvDir, "figure5.csv"))
				if err != nil {
					return err
				}
				defer f.Close()
				if err := experiments.WriteFigure5CSV(f, res); err != nil {
					return err
				}
				fmt.Printf("wrote %s\n", f.Name())
			}
			return nil
		})
	}
	if opts.all || opts.table == 6 {
		run("Table VI", func() error {
			rows, err := experiments.TableVISweep(ctx, scfg, names, opts.accesses, opts.seed)
			if err != nil {
				if len(rows) > 0 {
					fmt.Print(experiments.FormatTableVI(rows))
				}
				return err
			}
			fmt.Print(experiments.FormatTableVI(rows))
			if opts.csvDir != "" {
				f, err := os.Create(filepath.Join(opts.csvDir, "table6.csv"))
				if err != nil {
					return err
				}
				defer f.Close()
				if err := experiments.WriteTableVICSV(f, rows); err != nil {
					return err
				}
				fmt.Printf("wrote %s\n", f.Name())
			}
			return nil
		})
	}
	if opts.all || opts.shsp {
		run("SHSP comparison", func() error {
			rows, err := experiments.SHSPComparisonSweep(ctx, scfg, names, opts.accesses, opts.seed)
			if len(rows) > 0 {
				fmt.Print(experiments.FormatSHSP(rows))
			}
			return err
		})
	}
	if opts.all || opts.sens {
		run("Cost-model sensitivity", func() error {
			rows, err := experiments.SensitivitySweep(ctx, scfg, opts.accesses, opts.seed)
			if len(rows) > 0 {
				fmt.Print(experiments.FormatSensitivity(rows))
			}
			return err
		})
	}
	if opts.all || opts.ablations {
		run("Ablations", func() error {
			rows, err := experiments.AblationsSweep(ctx, scfg, opts.accesses/2, opts.seed)
			if err != nil {
				if len(rows) > 0 {
					fmt.Print(experiments.FormatAblations(rows))
				}
				return err
			}
			fmt.Print(experiments.FormatAblations(rows))
			fmt.Println()
			fmt.Print(experiments.FormatTrapCosts())
			return nil
		})
	}
	if opts.validate != "" || opts.all {
		wl := opts.validate
		if wl == "" {
			wl = "canneal"
		}
		run("Table IV model validation ("+wl+")", func() error {
			v, err := experiments.ValidateModelSweep(ctx, scfg, wl, opts.accesses, opts.seed)
			if err != nil {
				return err
			}
			fmt.Print(experiments.FormatModelValidation(v))
			return nil
		})
	}

	if opts.runWorkload != "" {
		run("Single cell ("+opts.runWorkload+")", func() error {
			return runCell(opts)
		})
	}

	if opts.metrics != "" {
		run("Adaptation curve (Table I in time)", func() error {
			var ring *telemetry.EventRing
			if opts.walkTrace != "" {
				ring = telemetry.NewEventRing(0)
			}
			s, err := experiments.AdaptationCurve(opts.metricsEpoch, 0, ring)
			if err != nil {
				return err
			}
			fmt.Print(experiments.FormatAdaptation(s))
			if err := writeSeries(opts.metrics, s); err != nil {
				return err
			}
			fmt.Printf("wrote %d epochs to %s\n", len(s.Epochs), opts.metrics)
			if ring != nil {
				f, err := os.Create(opts.walkTrace)
				if err != nil {
					return err
				}
				defer f.Close()
				if err := ring.WriteChromeTrace(f); err != nil {
					return err
				}
				fmt.Printf("wrote %d walk events to %s (chrome://tracing)\n", len(ring.Events()), opts.walkTrace)
			}
			return nil
		})
	}

	if !ran {
		fmt.Fprintln(os.Stderr, "paperbench: nothing selected; pass -all, -table N, -figure N, -ablations, -shsp, -sensitivity, -validate W, -run W, or -metrics FILE")
		os.Exit(2)
	}
	if opts.progress {
		printCacheStats(os.Stderr, opts)
	}
}

// printCacheStats writes the machine-pool and cache summaries — the
// -progress epilogue, also printed when an interrupt cuts a run short.
func printCacheStats(w io.Writer, opts options) {
	hits, misses, retired, idle := cpu.MachinePoolStats()
	fmt.Fprintf(w, "machine pool: %d reused, %d built, %d retired, %d idle\n", hits, misses, retired, idle)
	fmt.Fprint(w, formatStreamCacheStats(workload.StreamCacheInfo(), opts.streamCacheDir != ""))
	fmt.Fprint(w, formatReportCacheStats(repcache.Info(), opts.reportCacheDir != ""))
}

// formatStreamCacheStats renders the -progress stream-cache summary line(s).
// The disk line appears only when -stream-cache-dir was given.
func formatStreamCacheStats(info workload.StreamCacheSnapshot, disk bool) string {
	out := fmt.Sprintf("stream cache: %d hits, %d generated, %d streams, %.1f MiB packed\n",
		info.Hits, info.Misses, info.Streams, float64(info.Bytes)/(1<<20))
	if disk {
		out += fmt.Sprintf("stream disk cache: %d loaded, %d generated, %d write errors\n",
			info.DiskHits, info.DiskMisses, info.DiskErrors)
	}
	return out
}

// formatReportCacheStats renders the -progress report-cache summary line(s).
// The disk line appears only when -report-cache-dir was given.
func formatReportCacheStats(info repcache.Snapshot, disk bool) string {
	out := fmt.Sprintf("report cache: %d hits, %d simulated, %d deduped, %d reports\n",
		info.Hits, info.Misses, info.Deduped, info.Reports)
	if disk {
		out += fmt.Sprintf("report disk cache: %d loaded, %d simulated, %d write errors\n",
			info.DiskHits, info.DiskMisses, info.DiskErrors)
	}
	return out
}

// runCell simulates one (workload, technique, page size) cell and prints
// its report, the quick way to re-measure a single bar of Figure 5. The
// -technique/-pagesize strings parse through the same walker.ParseMode /
// pagetable.ParseSize parsers every tool shares.
func runCell(opts options) error {
	mode, err := walker.ParseMode(opts.technique)
	if err != nil {
		return err
	}
	size, err := pagetable.ParseSize(opts.pageSize)
	if err != nil {
		return err
	}
	o := experiments.DefaultOptions(mode, size)
	o.Accesses = opts.accesses
	o.Seed = opts.seed
	rep, err := experiments.RunProfile(opts.runWorkload, o)
	if err != nil {
		return err
	}
	fmt.Printf("%s / %s pages / %s paging\n", opts.runWorkload, size, mode)
	fmt.Printf("  walk overhead   %6.1f%%\n", 100*rep.WalkOverhead())
	fmt.Printf("  VMM overhead    %6.1f%%\n", 100*rep.VMMOverhead())
	fmt.Printf("  total overhead  %6.1f%%\n", 100*rep.TotalOverhead())
	fmt.Printf("  TLB misses      %d (%.1f MPKI, %.2f refs/miss)\n",
		rep.Machine.TLBMisses, rep.MPKI(), rep.AvgRefsPerMiss())
	fmt.Printf("  VM exits        %d\n", rep.VMM.TotalTraps())
	return nil
}

// applyStreamCacheBudget translates the -stream-cache MiB flag into the
// workload package's byte budget (negative passes through as unbounded).
func applyStreamCacheBudget(mib int64) {
	if mib < 0 {
		workload.SetStreamCacheBudget(-1)
		return
	}
	workload.SetStreamCacheBudget(mib << 20)
}

// applyReportCacheBudget translates the -report-cache MiB flag into the
// repcache package's byte budget (negative passes through as unbounded).
func applyReportCacheBudget(mib int64) {
	if mib < 0 {
		repcache.SetBudget(-1)
		return
	}
	repcache.SetBudget(mib << 20)
}

// writeSeries exports the epoch series by extension: .csv selects CSV,
// anything else the self-describing JSON form.
func writeSeries(path string, s *telemetry.Series) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".csv") {
		return s.WriteCSV(f)
	}
	return s.WriteJSON(f)
}
