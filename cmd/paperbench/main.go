// Command paperbench regenerates the tables and figures of "Agile Paging:
// Exceeding the Best of Nested and Shadow Paging" (ISCA 2016) from the
// simulator.
//
// Usage:
//
//	paperbench -all                  # everything
//	paperbench -table 1              # Table I
//	paperbench -table 2              # Table II (+ Figure 3 sequences)
//	paperbench -table 6              # Table VI
//	paperbench -figure 1             # Figure 1 walk traces
//	paperbench -figure 5             # Figure 5 sweep + §VII.A headline
//	paperbench -ablations            # §III-C / §IV design-choice ablations
//	paperbench -validate canneal     # Table IV model vs direct simulation
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"agilepaging/internal/experiments"
)

func main() {
	var (
		table     = flag.Int("table", 0, "regenerate table 1, 2, 3, 5, or 6")
		figure    = flag.Int("figure", 0, "regenerate figure 1 or 5")
		ablations = flag.Bool("ablations", false, "run the design-choice ablations")
		shsp      = flag.Bool("shsp", false, "compare against the SHSP prior-work baseline (§VII.C)")
		sens      = flag.Bool("sensitivity", false, "sweep the cost-model calibration and check robustness")
		validate  = flag.String("validate", "", "validate the Table IV model on a workload")
		all       = flag.Bool("all", false, "regenerate everything")
		accesses  = flag.Int("accesses", 120_000, "measured accesses per run")
		seed      = flag.Int64("seed", 42, "random seed")
		workloads = flag.String("workloads", "", "comma-separated workload subset (default: all)")
		csvDir    = flag.String("csv", "", "also write figure5.csv / table6.csv into this directory")
	)
	flag.Parse()

	var names []string
	if *workloads != "" {
		names = strings.Split(*workloads, ",")
	}

	ran := false
	run := func(name string, fn func() error) {
		ran = true
		fmt.Printf("==> %s\n", name)
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	if *all || *table == 1 {
		run("Table I", func() error {
			rows, err := experiments.TableI()
			if err != nil {
				return err
			}
			fmt.Print(experiments.FormatTableI(rows))
			return nil
		})
	}
	if *all || *table == 3 {
		run("Table III (system configuration)", func() error {
			fmt.Print(experiments.TableIII())
			return nil
		})
	}
	if *all || *table == 5 {
		run("Table V (workload characteristics)", func() error {
			rows, err := experiments.TableV(*accesses, *seed)
			if err != nil {
				return err
			}
			fmt.Print(experiments.FormatTableV(rows))
			return nil
		})
	}
	if *all || *table == 2 {
		run("Table II / Figure 3", func() error {
			rows, err := experiments.TableII()
			if err != nil {
				return err
			}
			fmt.Print(experiments.FormatTableII(rows))
			return nil
		})
	}
	if *all || *figure == 1 {
		run("Figure 1 walk traces", func() error {
			traces, err := experiments.WalkTraces()
			if err != nil {
				return err
			}
			fmt.Print(experiments.FormatWalkTraces(traces))
			return nil
		})
	}
	if *all || *figure == 5 {
		run("Figure 5 + headline", func() error {
			res, err := experiments.Figure5(names, *accesses, *seed)
			if err != nil {
				return err
			}
			fmt.Print(experiments.FormatFigure5(res))
			fmt.Println()
			fmt.Print(experiments.FormatFigure5Chart(res))
			fmt.Println()
			fmt.Print(experiments.FormatHeadline(experiments.Headline(res)))
			if *csvDir != "" {
				f, err := os.Create(filepath.Join(*csvDir, "figure5.csv"))
				if err != nil {
					return err
				}
				defer f.Close()
				if err := experiments.WriteFigure5CSV(f, res); err != nil {
					return err
				}
				fmt.Printf("wrote %s\n", f.Name())
			}
			return nil
		})
	}
	if *all || *table == 6 {
		run("Table VI", func() error {
			rows, err := experiments.TableVI(names, *accesses, *seed)
			if err != nil {
				return err
			}
			fmt.Print(experiments.FormatTableVI(rows))
			if *csvDir != "" {
				f, err := os.Create(filepath.Join(*csvDir, "table6.csv"))
				if err != nil {
					return err
				}
				defer f.Close()
				if err := experiments.WriteTableVICSV(f, rows); err != nil {
					return err
				}
				fmt.Printf("wrote %s\n", f.Name())
			}
			return nil
		})
	}
	if *all || *shsp {
		run("SHSP comparison", func() error {
			rows, err := experiments.SHSPComparison(names, *accesses, *seed)
			if err != nil {
				return err
			}
			fmt.Print(experiments.FormatSHSP(rows))
			return nil
		})
	}
	if *all || *sens {
		run("Cost-model sensitivity", func() error {
			rows, err := experiments.Sensitivity(*accesses, *seed)
			if err != nil {
				return err
			}
			fmt.Print(experiments.FormatSensitivity(rows))
			return nil
		})
	}
	if *all || *ablations {
		run("Ablations", func() error {
			rows, err := experiments.Ablations(*accesses/2, *seed)
			if err != nil {
				return err
			}
			fmt.Print(experiments.FormatAblations(rows))
			fmt.Println()
			fmt.Print(experiments.FormatTrapCosts())
			return nil
		})
	}
	if *validate != "" || *all {
		wl := *validate
		if wl == "" {
			wl = "canneal"
		}
		run("Table IV model validation ("+wl+")", func() error {
			v, err := experiments.ValidateModel(wl, *accesses, *seed)
			if err != nil {
				return err
			}
			fmt.Print(experiments.FormatModelValidation(v))
			return nil
		})
	}

	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}
