package main

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"time"

	"agilepaging/internal/cpu"
	"agilepaging/internal/pagetable"
	"agilepaging/internal/repcache"
	"agilepaging/internal/sweep"
	"agilepaging/internal/workload"
)

func TestParseArgsDefaults(t *testing.T) {
	var errBuf bytes.Buffer
	o, err := parseArgs(nil, &errBuf)
	if err != nil {
		t.Fatal(err)
	}
	if o.parallel != 0 {
		t.Errorf("default parallel = %d, want 0 (one worker per CPU)", o.parallel)
	}
	if o.progress {
		t.Error("progress defaults to true")
	}
	if o.accesses != 120_000 || o.seed != 42 {
		t.Errorf("defaults: accesses=%d seed=%d", o.accesses, o.seed)
	}
	if o.workloads != nil {
		t.Errorf("default workloads = %v, want nil", o.workloads)
	}
}

func TestParseArgsParallelAndProgress(t *testing.T) {
	var errBuf bytes.Buffer
	o, err := parseArgs([]string{"-figure", "5", "-parallel", "8", "-progress",
		"-workloads", "dedup,mcf", "-accesses", "5000", "-seed", "7"}, &errBuf)
	if err != nil {
		t.Fatal(err)
	}
	if o.parallel != 8 {
		t.Errorf("parallel = %d, want 8", o.parallel)
	}
	if !o.progress {
		t.Error("progress not set")
	}
	if o.figure != 5 || o.accesses != 5000 || o.seed != 7 {
		t.Errorf("parsed %+v", o)
	}
	if want := []string{"dedup", "mcf"}; !reflect.DeepEqual(o.workloads, want) {
		t.Errorf("workloads = %v, want %v", o.workloads, want)
	}
}

func TestParseArgsRejectsPositionalArgs(t *testing.T) {
	var errBuf bytes.Buffer
	if _, err := parseArgs([]string{"-all", "stray"}, &errBuf); err == nil {
		t.Fatal("positional argument accepted")
	}
}

func TestParseArgsRejectsUnknownFlag(t *testing.T) {
	var errBuf bytes.Buffer
	if _, err := parseArgs([]string{"-bogus"}, &errBuf); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

func TestSweepConfigProgressWiring(t *testing.T) {
	var errBuf bytes.Buffer
	o, err := parseArgs([]string{"-all", "-parallel", "3"}, &errBuf)
	if err != nil {
		t.Fatal(err)
	}
	var quiet bytes.Buffer
	cfg := o.sweepConfig(&quiet)
	if cfg.Workers != 3 {
		t.Errorf("Workers = %d, want 3", cfg.Workers)
	}
	// OnProgress is always installed (it feeds the interrupt report's
	// completion counter) but stays silent without -progress.
	if cfg.OnProgress == nil {
		t.Fatal("OnProgress nil; the interrupt report needs its counter")
	}
	before := completedSims.Load()
	cfg.OnProgress(sweep.Progress{Done: 1, Total: 4, Key: "x"})
	if quiet.Len() != 0 {
		t.Errorf("progress line printed without -progress: %q", quiet.String())
	}
	if got := completedSims.Load(); got != before+1 {
		t.Errorf("completedSims advanced by %d, want 1", got-before)
	}

	o2, err := parseArgs([]string{"-all", "-progress"}, &errBuf)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	cfg2 := o2.sweepConfig(&out)
	if cfg2.OnProgress == nil {
		t.Fatal("OnProgress nil with -progress")
	}
	cfg2.OnProgress(sweep.Progress{Done: 3, Total: 64, Key: "dedup/4K/agile", Elapsed: 1500 * time.Millisecond})
	if got := out.String(); !strings.Contains(got, "[3/64]") || !strings.Contains(got, "dedup/4K/agile") {
		t.Errorf("progress line = %q", got)
	}
}

func TestParseArgsFailAndRetries(t *testing.T) {
	var errBuf bytes.Buffer
	o, err := parseArgs([]string{"-all"}, &errBuf)
	if err != nil {
		t.Fatal(err)
	}
	if o.fail != "fast" || o.retries != 0 {
		t.Errorf("defaults: fail=%q retries=%d, want fast/0", o.fail, o.retries)
	}
	cfg := o.sweepConfig(&errBuf)
	if cfg.ErrorPolicy != sweep.FailFast || cfg.Retry.Attempts != 0 {
		t.Errorf("default sweep config: policy=%v retry=%+v", cfg.ErrorPolicy, cfg.Retry)
	}

	o, err = parseArgs([]string{"-all", "-fail", "collect", "-retries", "2"}, &errBuf)
	if err != nil {
		t.Fatal(err)
	}
	cfg = o.sweepConfig(&errBuf)
	if cfg.ErrorPolicy != sweep.CollectAll {
		t.Errorf("-fail collect: policy = %v", cfg.ErrorPolicy)
	}
	if cfg.Retry.Attempts != 2 || cfg.Retry.Backoff <= 0 {
		t.Errorf("-retries 2: retry = %+v", cfg.Retry)
	}

	if _, err := parseArgs([]string{"-all", "-fail", "eventually"}, &errBuf); err == nil {
		t.Error("-fail eventually accepted")
	}
	if _, err := parseArgs([]string{"-all", "-retries", "-3"}, &errBuf); err == nil {
		t.Error("-retries -3 accepted")
	}
}

func TestParseArgsStreamCache(t *testing.T) {
	var errBuf bytes.Buffer
	o, err := parseArgs(nil, &errBuf)
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(workload.DefaultStreamCacheBytes >> 20); o.streamCacheMB != want {
		t.Errorf("default stream-cache = %d MiB, want %d", o.streamCacheMB, want)
	}
	o, err = parseArgs([]string{"-all", "-stream-cache", "0"}, &errBuf)
	if err != nil {
		t.Fatal(err)
	}
	if o.streamCacheMB != 0 {
		t.Errorf("stream-cache = %d, want 0", o.streamCacheMB)
	}

	// The budget must round-trip into the workload package: 0 disables
	// sharing, positive budgets enable it.
	defer workload.SetStreamCacheBudget(workload.DefaultStreamCacheBytes)
	defer workload.ResetStreamCache()
	prof, _ := workload.ProfileByName("dedup")
	applyStreamCacheBudget(0)
	if workload.SharedStream(prof, pagetable.Size4K, 50, 1) == workload.SharedStream(prof, pagetable.Size4K, 50, 1) {
		t.Error("-stream-cache 0 did not disable sharing")
	}
	applyStreamCacheBudget(64)
	if workload.SharedStream(prof, pagetable.Size4K, 50, 1) != workload.SharedStream(prof, pagetable.Size4K, 50, 1) {
		t.Error("-stream-cache 64 did not enable sharing")
	}
}

func TestParseArgsStreamCacheDir(t *testing.T) {
	var errBuf bytes.Buffer
	o, err := parseArgs(nil, &errBuf)
	if err != nil {
		t.Fatal(err)
	}
	if o.streamCacheDir != "" {
		t.Errorf("default stream-cache-dir = %q, want disabled", o.streamCacheDir)
	}
	o, err = parseArgs([]string{"-all", "-stream-cache-dir", "/tmp/streams"}, &errBuf)
	if err != nil {
		t.Fatal(err)
	}
	if o.streamCacheDir != "/tmp/streams" {
		t.Errorf("stream-cache-dir = %q", o.streamCacheDir)
	}
}

func TestFormatStreamCacheStats(t *testing.T) {
	info := workload.StreamCacheSnapshot{
		Hits: 12, Misses: 4, Streams: 4, Bytes: 3 << 20,
		DiskHits: 2, DiskMisses: 2, DiskErrors: 1,
	}
	got := formatStreamCacheStats(info, false)
	if !strings.Contains(got, "12 hits") || !strings.Contains(got, "4 generated") ||
		!strings.Contains(got, "3.0 MiB") {
		t.Errorf("memory line = %q", got)
	}
	if strings.Contains(got, "disk") {
		t.Errorf("disk line present without -stream-cache-dir: %q", got)
	}
	got = formatStreamCacheStats(info, true)
	if !strings.Contains(got, "2 loaded") || !strings.Contains(got, "1 write errors") {
		t.Errorf("disk line = %q", got)
	}
}

func TestParseArgsReportCache(t *testing.T) {
	var errBuf bytes.Buffer
	o, err := parseArgs(nil, &errBuf)
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(repcache.DefaultBudgetBytes >> 20); o.reportCacheMB != want {
		t.Errorf("default report-cache = %d MiB, want %d", o.reportCacheMB, want)
	}
	if o.reportCacheDir != "" {
		t.Errorf("default report-cache-dir = %q, want disabled", o.reportCacheDir)
	}
	o, err = parseArgs([]string{"-all", "-report-cache", "0", "-report-cache-dir", "/tmp/reports"}, &errBuf)
	if err != nil {
		t.Fatal(err)
	}
	if o.reportCacheMB != 0 {
		t.Errorf("report-cache = %d, want 0", o.reportCacheMB)
	}
	if o.reportCacheDir != "/tmp/reports" {
		t.Errorf("report-cache-dir = %q", o.reportCacheDir)
	}

	// The budget must round-trip into the repcache package: 0 disables
	// memoization (every Do computes), positive budgets enable it,
	// negative is unbounded.
	defer func() {
		repcache.Reset()
		repcache.SetBudget(repcache.DefaultBudgetBytes)
	}()
	repcache.Reset()
	applyReportCacheBudget(0)
	calls := 0
	compute := func() (cpu.Report, error) { calls++; return cpu.Report{}, nil }
	repcache.Do("paperbench-test", compute)
	repcache.Do("paperbench-test", compute)
	if calls != 2 {
		t.Errorf("-report-cache 0: %d computes, want 2 (memoization disabled)", calls)
	}
	applyReportCacheBudget(64)
	calls = 0
	repcache.Do("paperbench-test", compute)
	repcache.Do("paperbench-test", compute)
	if calls != 1 {
		t.Errorf("-report-cache 64: %d computes, want 1", calls)
	}
}

func TestFormatReportCacheStats(t *testing.T) {
	info := repcache.Snapshot{
		Hits: 9, Misses: 3, Deduped: 2, Reports: 3,
		DiskHits: 1, DiskMisses: 2, DiskErrors: 1,
	}
	got := formatReportCacheStats(info, false)
	if !strings.Contains(got, "9 hits") || !strings.Contains(got, "3 simulated") ||
		!strings.Contains(got, "2 deduped") {
		t.Errorf("memory line = %q", got)
	}
	if strings.Contains(got, "disk") {
		t.Errorf("disk line present without -report-cache-dir: %q", got)
	}
	got = formatReportCacheStats(info, true)
	if !strings.Contains(got, "report disk cache: 1 loaded, 2 simulated, 1 write errors") {
		t.Errorf("disk line = %q", got)
	}
}
