module agilepaging

go 1.22
